package mpmc

import (
	"context"
	"math"
	"testing"
)

// TestFacadeEndToEnd exercises the README quick-start path through the
// public API only.
func TestFacadeEndToEnd(t *testing.T) {
	m := TwoCoreWorkstation()
	opts := ProfileOptions{Warmup: 1, Duration: 2, Seed: 7}
	fa, err := Profile(m, WorkloadByName("twolf"), opts)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Profile(m, WorkloadByName("mcf"), ProfileOptions{Warmup: 1, Duration: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	preds, err := PredictGroup([]*FeatureVector{fa, fb}, m.Assoc, SolverAuto)
	if err != nil {
		t.Fatal(err)
	}
	if s := preds[0].S + preds[1].S; math.Abs(s-float64(m.Assoc)) > 0.2 {
		t.Fatalf("effective sizes sum to %.2f", s)
	}
	// Verify against the substrate.
	res, err := Run(m, SingleAssignment(WorkloadByName("twolf"), WorkloadByName("mcf")),
		SimOptions{Warmup: 2, Duration: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"twolf", "mcf"} {
		meas := res.ProcByName(name)
		if d := math.Abs(preds[i].MPA - meas.MPA()); d > 0.08 {
			t.Errorf("%s MPA predicted %.3f measured %.3f", name, preds[i].MPA, meas.MPA())
		}
	}
}

func TestFacadePresets(t *testing.T) {
	if FourCoreServer().NumCores != 4 || TwoCoreWorkstation().NumCores != 2 || TwoCoreLaptop().Assoc != 12 {
		t.Fatal("machine presets wrong")
	}
	if len(WorkloadSuite()) != 10 || len(ModelSet()) != 8 {
		t.Fatal("workload suite wrong")
	}
	if Stressmark(4) == nil || WorkloadByName("equake") == nil {
		t.Fatal("workload constructors broken")
	}
}

func TestFacadeBaselines(t *testing.T) {
	m := TwoCoreWorkstation()
	fs := []*FeatureVector{
		TruthFeature(WorkloadByName("mcf"), m),
		TruthFeature(WorkloadByName("gzip"), m),
	}
	foa, err := FOA(fs, m.Assoc)
	if err != nil {
		t.Fatal(err)
	}
	sdc, err := SDC(fs, m.Assoc)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := Prob(fs, m.Assoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(foa) != 2 || len(sdc) != 2 || len(prob) != 2 {
		t.Fatal("baseline outputs malformed")
	}
}

func TestFacadePowerPipeline(t *testing.T) {
	m := TwoCoreWorkstation()
	ds, err := CollectPowerDataset(m, ModelSet()[:3], PowerTrainOptions{
		Warmup: 0.5, Duration: 1.5, Seed: 3, MicrobenchWindows: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := FitPowerModel(ds)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := TrainNNModel(ds, NNOptions{Seed: 3, Epochs: 300})
	if err != nil {
		t.Fatal(err)
	}
	idle := Rates{}
	if pm.CorePower(idle) <= 0 || nn.CorePower(idle) <= 0 {
		t.Fatal("idle power estimates non-positive")
	}
	cm := NewCombinedModel(m, pm)
	watts, err := cm.EstimateAssignment(ModelAssignment{
		{TruthFeature(WorkloadByName("vpr"), m)}, nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	if watts <= 0 {
		t.Fatal("non-positive assignment estimate")
	}
}

func TestFacadeManager(t *testing.T) {
	m := TwoCoreWorkstation()
	pm, err := TrainPowerModel(m, ModelSet()[:3], PowerTrainOptions{
		Warmup: 0.5, Duration: 1.5, Seed: 3, MicrobenchWindows: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := map[string]*FeatureVector{}
	mgr := NewManager(m, pm, ManagerOptions{
		Policy:         PowerAware,
		Profile:        ProfileOptions{Warmup: 1, Duration: 2, Seed: 9},
		SharedProfiles: cache,
	})
	name, core0, watts, err := mgr.Place(context.Background(), WorkloadByName("vpr"))
	if err != nil {
		t.Fatal(err)
	}
	if name == "" || core0 < 0 || watts <= 0 {
		t.Fatalf("placement %q/%d/%.2f", name, core0, watts)
	}
	if len(cache) != 1 {
		t.Fatalf("shared cache holds %d profiles", len(cache))
	}
	if err := mgr.Remove(name); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePhaseDetection(t *testing.T) {
	series := make([]float64, 200)
	for i := range series {
		if i < 120 {
			series[i] = 0.2
		} else {
			series[i] = 0.7
		}
	}
	segs := DetectPhases(series, PhaseOptions{})
	if len(segs) != 2 {
		t.Fatalf("detected %d phases", len(segs))
	}
	// Boundary detection lags by up to MinLen windows.
	if dom := DominantPhase(segs); dom.Len() < 112 || dom.Len() > 128 {
		t.Fatalf("dominant phase length %d, want ~120", dom.Len())
	}
}
