#!/usr/bin/env bash
# Kill/restart recovery smoke: boot the real serve binary with a WAL
# state directory, commit placements and queued work over HTTP, SIGKILL
# the process mid-flight (no graceful drain, no compaction), restart it
# from the same directory, and require /v1/fleet/state to come back
# byte-identical. This is the end-to-end projection of the chaos
# kill/restart fault class (internal/chaos TestKillRestartRecovery)
# through the actual binary, WAL directory, and HTTP surface.
#
#   ./scripts/smoke_recovery.sh [port]
#
# Synthetic mode keeps the whole drill under a few seconds: the
# closed-form power model and truth-table features stand in for
# training and profiling without changing any placement mechanics.
set -euo pipefail
cd "$(dirname "$0")/.."

port=${1:-18090}
addr="127.0.0.1:$port"
dir=$(mktemp -d)
bin=$(mktemp)
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$dir" "$bin"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/serve

start() {
  "$bin" -synthetic -addr "$addr" -state-dir "$dir" -shards 2 \
    -fleet "workstation,workstation,server,server" -fleet-queue-cap 8 2>/dev/null &
  pid=$!
  disown "$pid" 2>/dev/null || true # keep bash from reporting the SIGKILL
  for _ in $(seq 1 100); do
    curl -sf "http://$addr/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$pid" 2>/dev/null || { echo "smoke_recovery: serve exited during startup" >&2; exit 1; }
    sleep 0.1
  done
  echo "smoke_recovery: serve did not become healthy" >&2
  exit 1
}

start
# Residents on several nodes, then enough synchronous placements to
# leave queued work behind too (queue mode waits for capacity, so the
# queue is exercised via an async ticket that stays pending).
curl -sf -XPOST "http://$addr/v1/fleet/place" -d '{"benches":["mcf","gzip","vpr","art","swim","ammp","applu","twolf","equake","bzip2"]}' >/dev/null
curl -sf -XPOST "http://$addr/v1/fleet/place" -d '{"benches":["mcf","gzip","vpr","art","swim","ammp"]}' >/dev/null
before=$(curl -sf "http://$addr/v1/fleet/state")

kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

start
after=$(curl -sf "http://$addr/v1/fleet/state")
kill "$pid" 2>/dev/null; wait "$pid" 2>/dev/null || true
pid=""

if [ "$before" != "$after" ]; then
  echo "smoke_recovery: FAIL — /v1/fleet/state diverged across kill/restart" >&2
  diff <(printf '%s' "$before") <(printf '%s' "$after") >&2 || true
  exit 1
fi
echo "smoke_recovery: OK — state byte-identical across SIGKILL restart ($(printf '%s' "$before" | wc -c) bytes)"
