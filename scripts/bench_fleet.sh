#!/usr/bin/env bash
# Fleet placement benchmark runner.
#
#   ./scripts/bench_fleet.sh          # run at a fixed -benchtime, append the
#                                     # stamped result block to BENCH_fleet.json
#   ./scripts/bench_fleet.sh -check   # same, plus a warn-only mean-ns/op diff
#                                     # against the committed BENCH_fleet.json
#
# The fixed iteration count (-benchtime 20000x) makes runs benchstat-
# comparable across commits and keeps the p99-ns/op metric stable: the
# cache-speedup acceptance number is BenchmarkFleetPlace's p99 against
# BenchmarkFleetPlaceCold's in one block. BENCH_fleet.json is an
# append-only log — each block is one commit's numbers under a `# ...`
# stamp line — so the history of the placement path rides with the repo.
# The -check diff never fails the build: benchmarks on shared CI runners
# are advisory, and regressions are for a human to read in the uploaded
# artifact.
#
# The scale-stress benchmarks (BenchmarkFleetStress*) run in their own
# single-iteration lane: each iteration is a full churn run over a large
# fleet, so the 20000x microbench lane would take days on them. The
# default point is 100 machines / 10k arrivals; STRESS_FULL=1 adds the
# headline 1000-machine / 1M-arrival BenchmarkFleetStressFull (minutes).
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_fleet.json
benchtime=${BENCHTIME:-20000x}
count=${COUNT:-3}
stress_bench='BenchmarkFleetStress$'
if [ "${STRESS_FULL:-0}" = "1" ]; then
  stress_bench='BenchmarkFleetStress(Full)?$'
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test ./internal/fleet/ -run '^$' -bench 'BenchmarkFleet(Place|Rebalance)' -benchmem \
  -benchtime "$benchtime" -count "$count" | tee "$tmp"

go test ./internal/fleet/ -run '^$' -bench "$stress_bench" -benchmem \
  -benchtime 1x -count 1 -timeout 60m | tee -a "$tmp"

if [ "${1:-}" = "-check" ] && git show "HEAD:$out" >/dev/null 2>&1; then
  git show "HEAD:$out" | awk -v cur="$tmp" '
    function mean(sum, n) { return n ? sum / n : 0 }
    # BENCH_fleet.json is append-only; each "# ..." stamp starts a block.
    # Only the newest committed FLEET-lane block is the comparison
    # baseline: serve-stress stamps and report lines must not reset it,
    # or a serve run appended after the last fleet run would erase the
    # baseline entirely.
    /^# / && !/serve-stress/ { delete bsum; delete bn }
    /^Benchmark/ { bsum[$1] += $3; bn[$1]++ }
    END {
      while ((getline line < cur) > 0) {
        split(line, f, /[ \t]+/)
        if (f[1] !~ /^Benchmark/) continue
        csum[f[1]] += f[3]; cn[f[1]]++
      }
      for (b in csum) {
        if (!(b in bsum)) continue
        base = mean(bsum[b], bn[b]); now = mean(csum[b], cn[b])
        printf "bench-diff: %-28s baseline %12.0f ns/op  now %12.0f ns/op  (%+.1f%%)\n",
          b, base, now, base ? (now - base) * 100 / base : 0
        if (base && now > base * 1.2)
          printf "bench-diff: WARNING: %s regressed more than 20%% vs committed baseline\n", b
      }
    }'
fi

# Keyed stamp: every block records the exact commit and toolchain that
# produced it, parseable without positional guessing. The "# " prefix is
# load-bearing — the -check parsers key block boundaries on it.
{
  echo "# commit=$(git rev-parse --short HEAD 2>/dev/null || echo worktree) go=$(go version | awk '{print $3}') lane=fleet benchtime=$benchtime count=$count"
  cat "$tmp"
} >> "$out"
echo "appended to $out"
