#!/usr/bin/env bash
# Sustained-load benchmark for the sharded serving tier.
#
#   ./scripts/bench_serve.sh          # run the serve-stress lane, append the
#                                     # stamped result block to BENCH_fleet.json
#   ./scripts/bench_serve.sh -check   # same, plus a warn-only placements/sec
#                                     # diff against the committed baseline
#
# Two artifacts per run, both appended under one stamp:
#
#   * BenchmarkServeSustained at a fixed -benchtime (iterations are
#     placements, so the count pins the measured op mix), reporting
#     placements/s and the p50/p99 latency tail as benchmark metrics.
#   * One `fleet -serve-stress` JSON report (the CLI lane CI uploads),
#     flattened onto a single `# serve-stress` line so the append-only
#     log stays line-oriented.
#
# Throughput here is wall-clock and machine-dependent; like bench_fleet.sh
# the -check diff warns and never fails the build. Decision correctness
# under sharding is pinned separately by the equivalence sweep in
# internal/fleet, not by this lane.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_fleet.json
benchtime=${BENCHTIME:-40000x}
count=${COUNT:-3}
ops=${SERVE_OPS:-40000}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test ./internal/fleet/ -run '^$' -bench 'BenchmarkServeSustained' -benchmem \
  -benchtime "$benchtime" -count "$count" -timeout 30m | tee "$tmp"

report=$(go run ./cmd/fleet -serve-stress "$ops" | tr -d '\n' | tr -s ' ')

if [ "${1:-}" = "-check" ] && git show "HEAD:$out" >/dev/null 2>&1; then
  git show "HEAD:$out" | awk -v cur="$tmp" '
    function mean(sum, n) { return n ? sum / n : 0 }
    # placements/s rides as a custom metric: "<value> placements/s" pairs
    # on each BenchmarkServeSustained line of the newest committed block.
    # Only SERVE-lane stamps reset the accumulator: the block/s own
    # trailing "# serve-stress" report line (and any fleet-lane block
    # appended later) must not wipe the baseline before END reads it.
    /^# .*(serve-stress benchtime=|lane=serve-stress)/ { bsum = 0; bn = 0 }
    /^BenchmarkServeSustained/ {
      for (i = 2; i < NF; i++) if ($(i + 1) == "placements/s") { bsum += $i; bn++ }
    }
    END {
      csum = 0; cn = 0
      while ((getline line < cur) > 0) {
        n = split(line, f, /[ \t]+/)
        if (f[1] !~ /^BenchmarkServeSustained/) continue
        for (i = 2; i < n; i++) if (f[i + 1] == "placements/s") { csum += f[i]; cn++ }
      }
      base = mean(bsum, bn); now = mean(csum, cn)
      if (base && now) {
        printf "bench-diff: BenchmarkServeSustained baseline %10.0f placements/s  now %10.0f placements/s  (%+.1f%%)\n",
          base, now, (now - base) * 100 / base
        if (now < base * 0.8)
          printf "bench-diff: WARNING: sustained throughput regressed more than 20%% vs committed baseline\n"
      }
    }'
fi

# Keyed stamp: every block — and the flattened report line — records the
# exact commit and toolchain that produced it. The "# " prefix is
# load-bearing for the -check block parsers in both bench scripts.
commit=$(git rev-parse --short HEAD 2>/dev/null || echo worktree)
gover=$(go version | awk '{print $3}')
{
  echo "# commit=$commit go=$gover lane=serve-stress benchtime=$benchtime count=$count ops=$ops"
  cat "$tmp"
  echo "# serve-stress commit=$commit go=$gover $report"
} >> "$out"
echo "appended to $out"
