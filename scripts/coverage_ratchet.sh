#!/usr/bin/env bash
# Per-package coverage ratchet for the fast deterministic lane.
#
#   ./scripts/coverage_ratchet.sh            # fail if any package drops
#                                            # below its recorded floor
#   ./scripts/coverage_ratchet.sh -update    # rewrite the floor from the
#                                            # current run (minus a
#                                            # 2-point interleaving margin)
#
# The floor file (scripts/coverage_floor.txt) only ever moves up: raising
# it is a deliberate `-update` commit, and CI fails any change that slides
# a package below its floor. The run also leaves the raw per-package
# report in coverage_report.txt for artifact upload.
set -euo pipefail
cd "$(dirname "$0")/.."

floor_file=scripts/coverage_floor.txt
report=coverage_report.txt

go test -short -count=1 -cover ./... | tee "$report"

if [ "${1:-}" = "-update" ]; then
  awk '$1 == "ok" && /coverage:/ {
    for (i = 1; i <= NF; i++) if ($i == "coverage:") {
      pct = $(i + 1); sub(/%/, "", pct)
      floor = pct - 2; if (floor < 0) floor = 0
      printf "%s %.1f\n", $2, floor
    }
  }' "$report" | sort > "$floor_file"
  echo "wrote $floor_file"
  exit 0
fi

awk -v floor_file="$floor_file" '
  $1 == "ok" && /coverage:/ {
    for (i = 1; i <= NF; i++) if ($i == "coverage:") {
      pct = $(i + 1); sub(/%/, "", pct); cur[$2] = pct + 0
    }
  }
  END {
    bad = 0
    while ((getline line < floor_file) > 0) {
      n = split(line, a, " ")
      if (n != 2) continue
      pkg = a[1]; floor = a[2] + 0
      if (!(pkg in cur)) {
        printf "RATCHET: no coverage reported for %s (floor %.1f%%)\n", pkg, floor
        bad = 1
      } else if (cur[pkg] < floor) {
        printf "RATCHET: %s coverage %.1f%% fell below floor %.1f%%\n", pkg, cur[pkg], floor
        bad = 1
      }
    }
    if (!bad) print "coverage ratchet: all packages at or above their floors"
    exit bad
  }' "$report"
