module mpmc

go 1.22
