package chaos

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mpmc/internal/cli"
	"mpmc/internal/core"
	"mpmc/internal/fleet"
	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/workload"
)

// newTestFleet builds a deterministic fleet over the analytic truth
// oracle: no real profiling, no wall time, so every test replays exactly.
func newTestFleet(t *testing.T, intercept func(site, key string) error) *fleet.Fleet {
	t.Helper()
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatalf("SyntheticPowerModel: %v", err)
	}
	ws, err := cli.MachineByName("workstation")
	if err != nil {
		t.Fatalf("MachineByName: %v", err)
	}
	f, err := fleet.New(fleet.Config{
		Nodes: []fleet.NodeConfig{
			{Name: "m0", Machine: ws, Power: pm, MaxPerCore: 2},
			{Name: "m1", Machine: ws, Power: pm, MaxPerCore: 2},
		},
		Policy:    fleet.LeastDegradation,
		QueueCap:  4,
		Intercept: intercept,
		Profile: func(ctx context.Context, m *machine.Machine, spec *workload.Spec, opts core.ProfileOptions) (*core.FeatureVector, error) {
			return core.TruthFeature(spec, m), nil
		},
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	return f
}

func mustPlace(t *testing.T, f *fleet.Fleet, name string) fleet.Placed {
	t.Helper()
	p, err := f.Place(context.Background(), workload.ByName(name))
	if err != nil {
		t.Fatalf("Place(%s): %v", name, err)
	}
	return p
}

func requireClean(t *testing.T, f *fleet.Fleet) {
	t.Helper()
	c := &Checker{}
	if vs := c.CheckFleet(context.Background(), f); len(vs) > 0 {
		t.Fatalf("invariant violations on healthy fleet: %v", vs)
	}
}

func TestCheckFleetHealthyStatesClean(t *testing.T) {
	f := newTestFleet(t, nil)
	requireClean(t, f) // empty fleet
	for _, w := range []string{"gzip", "mcf", "art", "gzip", "equake", "mcf"} {
		mustPlace(t, f, w)
		requireClean(t, f) // after every mutation
	}
	ins := f.Inspect()
	if Terms(ins) != 6 {
		t.Fatalf("Terms = %d, want 6", Terms(ins))
	}
}

func TestCheckManagerHealthyIsClean(t *testing.T) {
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := cli.MachineByName("workstation")
	if err != nil {
		t.Fatal(err)
	}
	mgr := manager.New(ws, pm, manager.Options{
		Policy:     manager.PowerAware,
		MaxPerCore: 2,
		Features:   truthFeatures{m: ws},
	})
	ctx := context.Background()
	for _, w := range []string{"gzip", "mcf", "art", "swim"} {
		if _, _, _, err := mgr.Place(ctx, workload.ByName(w)); err != nil {
			t.Fatalf("Place(%s): %v", w, err)
		}
		c := &Checker{}
		if vs := c.CheckManager(ctx, "solo", mgr); len(vs) > 0 {
			t.Fatalf("violations after placing %s: %v", w, vs)
		}
	}
}

type truthFeatures struct{ m *machine.Machine }

func (s truthFeatures) FeatureOf(ctx context.Context, spec *workload.Spec) (*core.FeatureVector, error) {
	return core.TruthFeature(spec, s.m), nil
}

func TestCheckNodeDetectsViolations(t *testing.T) {
	ws, err := cli.MachineByName("workstation")
	if err != nil {
		t.Fatal(err)
	}
	feat := core.TruthFeature(workload.ByName("gzip"), ws)
	ctx := context.Background()
	c := &Checker{}

	cases := []struct {
		name string
		ni   fleet.NodeInspection
		want string
	}{
		{
			name: "down node holding residents",
			ni: fleet.NodeInspection{
				Name: "bad", Machine: ws, Down: true,
				Residents: []manager.Resident{{Name: "gzip#1", Core: 0, Feature: feat}},
			},
			want: "capacity/down-node-empty",
		},
		{
			name: "core out of range",
			ni: fleet.NodeInspection{
				Name: "bad", Machine: ws,
				Residents: []manager.Resident{{Name: "gzip#1", Core: ws.NumCores, Feature: feat}},
			},
			want: "capacity/core-range",
		},
		{
			name: "per-core cap exceeded",
			ni: fleet.NodeInspection{
				Name: "bad", Machine: ws, MaxPerCore: 1,
				Residents: []manager.Resident{
					{Name: "gzip#1", Core: 0, Feature: feat},
					{Name: "gzip#2", Core: 0, Feature: feat},
				},
			},
			want: "capacity/max-per-core",
		},
		{
			name: "missing feature vector",
			ni: fleet.NodeInspection{
				Name: "bad", Machine: ws,
				Residents: []manager.Resident{{Name: "gzip#1", Core: 0}},
			},
			want: "capacity/feature",
		},
	}
	for _, tc := range cases {
		vs := c.CheckNode(ctx, tc.ni)
		found := false
		for _, v := range vs {
			if v.Invariant == tc.want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v missing %q", tc.name, vs, tc.want)
		}
	}
}

func TestInjectedPlaceFaultLeavesFleetUnchanged(t *testing.T) {
	// Fault the commit (manager.place_at) after scoring succeeded: the
	// error must surface, nothing may mutate, and a retry must succeed.
	// Occurrence 2: the first consult is the setup placement below.
	script := NewScript().Fail("manager.place_at", "", 2)
	f := newTestFleet(t, script.Intercept)
	mustPlace(t, f, "gzip")
	before := f.Inspect()

	_, err := f.Place(context.Background(), workload.ByName("mcf"))
	if !IsFault(err) {
		t.Fatalf("Place under injection: %v, want injected fault", err)
	}
	if !reflect.DeepEqual(before, f.Inspect()) {
		t.Fatal("injected place fault mutated fleet state")
	}
	requireClean(t, f)
	mustPlace(t, f, "mcf") // seam disarmed; retry commits
	requireClean(t, f)
}

func TestInjectedScoreFaultLeavesFleetUnchanged(t *testing.T) {
	script := NewScript().Fail("fleet.score", "", 1)
	f := newTestFleet(t, script.Intercept)
	before := f.Inspect()
	_, err := f.Place(context.Background(), workload.ByName("gzip"))
	if !IsFault(err) {
		t.Fatalf("Place under score injection: %v, want injected fault", err)
	}
	if !reflect.DeepEqual(before, f.Inspect()) {
		t.Fatal("injected score fault mutated fleet state")
	}
	requireClean(t, f)
}

func TestInjectedProfileFaultIsNotCached(t *testing.T) {
	// A profiling failure must poison nothing: the next resolve of the
	// same (machine, workload) pair re-profiles and succeeds.
	script := NewScript().Fail("fleet.profile", "", 1)
	f := newTestFleet(t, script.Intercept)
	_, err := f.Place(context.Background(), workload.ByName("gzip"))
	if !IsFault(err) {
		t.Fatalf("Place under profile injection: %v, want injected fault", err)
	}
	requireClean(t, f)
	mustPlace(t, f, "gzip")
	requireClean(t, f)
}

func TestInjectedRebalanceFaultLeavesFleetUnchanged(t *testing.T) {
	script := NewScript().Fail("fleet.rebalance", "", 1)
	f := newTestFleet(t, script.Intercept)
	for _, w := range []string{"gzip", "mcf", "art", "equake"} {
		mustPlace(t, f, w)
	}
	before := f.Inspect()
	_, err := f.Rebalance(context.Background(), 0)
	if !IsFault(err) {
		t.Fatalf("Rebalance under injection: %v, want injected fault", err)
	}
	if !reflect.DeepEqual(before, f.Inspect()) {
		t.Fatal("injected rebalance fault mutated fleet state")
	}
	requireClean(t, f)
}

func TestFailNodeEvictsAndRestoreRecovers(t *testing.T) {
	f := newTestFleet(t, nil)
	ctx := context.Background()
	var onM0 int
	for _, w := range []string{"gzip", "mcf", "art", "equake", "swim", "ammp"} {
		p := mustPlace(t, f, w)
		if p.Node == "m0" {
			onM0++
		}
	}
	requireClean(t, f)
	evicted, err := f.FailNode("m0")
	if err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	if len(evicted) != onM0 {
		t.Fatalf("evicted %d residents, want %d", len(evicted), onM0)
	}
	requireClean(t, f)
	for _, ni := range f.Inspect() {
		if ni.Name == "m0" && (!ni.Down || len(ni.Residents) != 0) {
			t.Fatalf("m0 after FailNode: down=%v residents=%d", ni.Down, len(ni.Residents))
		}
	}
	// Placement while down must avoid the dead machine.
	p := mustPlace(t, f, "gzip")
	if p.Node == "m0" {
		t.Fatal("placed onto a down node")
	}
	requireClean(t, f)
	if _, err := f.FailNode("m0"); err == nil {
		t.Fatal("FailNode twice succeeded")
	}
	if _, err := f.RestoreNode(ctx, "m0"); err != nil {
		t.Fatalf("RestoreNode: %v", err)
	}
	requireClean(t, f)
	if _, err := f.RestoreNode(ctx, "m0"); err == nil {
		t.Fatal("RestoreNode of an up node succeeded")
	}
}

func TestTermsFixedUnderRebalance(t *testing.T) {
	// Eq. 10 fixedness: a cross-machine migration moves an expectation
	// term between machines but never creates or destroys one.
	f := newTestFleet(t, nil)
	ctx := context.Background()
	for _, w := range []string{"mcf", "mcf", "art", "gzip", "swim"} {
		mustPlace(t, f, w)
	}
	before := Terms(f.Inspect())
	_, err := f.Rebalance(ctx, 0)
	if err != nil && !errors.Is(err, manager.ErrNoImprovement) {
		t.Fatalf("Rebalance: %v", err)
	}
	if after := Terms(f.Inspect()); after != before {
		t.Fatalf("terms changed across rebalance: %d -> %d", before, after)
	}
	requireClean(t, f)
}

func TestCombinationsMatchAssignmentShape(t *testing.T) {
	srv, err := cli.MachineByName("server")
	if err != nil {
		t.Fatal(err)
	}
	feat := core.TruthFeature(workload.ByName("gzip"), srv)
	ni := fleet.NodeInspection{
		Name: "n", Machine: srv,
		Residents: []manager.Resident{
			// Group {0,1}: 2 choices on core 0 × 1 on core 1 = 2 combos.
			{Name: "a", Core: 0, Feature: feat},
			{Name: "b", Core: 0, Feature: feat},
			{Name: "c", Core: 1, Feature: feat},
			// Group {2,3}: core 3 alone = 1 combo.
			{Name: "d", Core: 3, Feature: feat},
		},
	}
	if got := Combinations(ni); got != 3 {
		t.Fatalf("Combinations = %d, want 3", got)
	}
}
