package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"

	"mpmc/internal/cli"
	"mpmc/internal/core"
	"mpmc/internal/fleet"
	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/workload"
	"mpmc/internal/xrand"
)

// Options configures a chaos run.
type Options struct {
	// Seed drives every chaos decision. The same (scenario, Seed, Rate)
	// replays the identical fault schedule.
	Seed uint64
	// Rate is the fault intensity in [0, 1]: the probability that an
	// arrival's operation is faulted, that a node suffers an outage, and
	// the scale of the queue-pressure burst count.
	Rate float64
	// Workers caps scoring concurrency (0 = GOMAXPROCS). It affects
	// speed, never the transcript.
	Workers int
	// ColdScore disables the fleet's score memo and solver state, forcing
	// every scoring pass to solve cold. Like Workers it affects speed,
	// never the transcript: the differential suite replays chaos runs
	// cold and cached and asserts the transcripts are byte-identical.
	ColdScore bool
	// PreemptRate in (0, 1] enables the preemption fault class: the
	// schedule gains high-priority arrivals (some with a commit fault
	// armed, exercising the preemption rollback), every process is tagged
	// so victims stay tracked across eviction and requeue, and the run
	// ends with a settle phase asserting no priority inversion survives a
	// fault-free pump. 0 (the default) leaves the schedule — and every
	// pre-existing golden — untouched: the extra random stream is only
	// split off when the class is enabled.
	PreemptRate float64
	// CapRate in (0, 1] enables the cap-flip fault class: the schedule
	// gains power-budget flips that alternately engage a tight fleet-wide
	// watt cap (forcing an enforcement pass that down-clocks or migrates
	// residents) and lift it again. After every event the harness checks
	// the budget holds (unless the last enforcement reported the floor
	// exceeds it) and that the watt ledger never drifts from a fresh
	// fleet-wide estimate. Like PreemptRate, 0 leaves the schedule and
	// every pre-existing golden untouched.
	CapRate float64
	// CapWatts is the budget an engaged flip imposes (jittered ±25% per
	// flip), in watts. Required when CapRate > 0.
	CapWatts float64
}

// Injection is one scheduled fault, recorded before the run executes. The
// schedule is a pure function of (scenario, chaos seed, rate) and is
// shared by every policy, so the transcript names the exact injections a
// failure replays from.
type Injection struct {
	Time   float64 `json:"time"`
	Kind   string  `json:"kind"`
	Target string  `json:"target"`
}

// PolicyOutcome is one policy's bookkeeping over the chaotic replay.
// Every count is deterministic for a fixed (scenario, seed, rate) at any
// worker count; scheduling-dependent metrics (profile run/dedup counters)
// are deliberately excluded.
type PolicyOutcome struct {
	Policy string `json:"policy"`
	// Placed counts direct admissions; QueueAdmitted counts arrivals that
	// waited in the queue first. Faulted arrivals hit an injected error,
	// Cancelled ones a cancelled context; Killed residents died with their
	// machine.
	Placed          int    `json:"placed"`
	Faulted         int    `json:"faulted"`
	Cancelled       int    `json:"cancelled"`
	Killed          int    `json:"killed"`
	QueueAdmitted   uint64 `json:"queue_admitted"`
	QueueAbandoned  uint64 `json:"queue_abandoned"`
	QueueDropped    uint64 `json:"queue_dropped"`
	QueueRejected   uint64 `json:"queue_rejected"`
	Moves           uint64 `json:"moves"`
	RebalanceFaults int    `json:"rebalance_faults"`
	// Preemption accounting (present only when the preemption fault class
	// is enabled). PreemptPlaced counts priority arrivals admitted
	// directly; Preemptions..PreemptAborted mirror the fleet's
	// fleet_preempt_* counters at the end of the run.
	PreemptPlaced   int      `json:"preempt_placed,omitempty"`
	Preemptions     uint64   `json:"preemptions,omitempty"`
	PreemptRequeued uint64   `json:"preempt_requeued,omitempty"`
	PreemptDropped  uint64   `json:"preempt_dropped,omitempty"`
	PreemptAborted  uint64   `json:"preempt_aborted,omitempty"`
	// Cap-flip accounting (present only when the cap fault class is
	// enabled): enforcement actions taken and how many enforcement passes
	// ended still over budget (the idle floor alone exceeded the cap).
	CapFlips       int `json:"cap_flips,omitempty"`
	CapDownclocks  int `json:"cap_downclocks,omitempty"`
	CapMigrations  int `json:"cap_migrations,omitempty"`
	CapUnsatisfied int `json:"cap_unsatisfied,omitempty"`
	NodesLost       int      `json:"nodes_lost"`
	NodesRestored   int      `json:"nodes_restored"`
	InvariantChecks int      `json:"invariant_checks"`
	Violations      []string `json:"violations,omitempty"`
	AvgSPI          float64  `json:"avg_spi"`
	AvgWatts        float64  `json:"avg_watts"`
	FinalResidents  int      `json:"final_residents"`
}

// Transcript is the full chaos-run record: the fault schedule plus one
// outcome per policy. Marshalled with json.MarshalIndent it is the golden
// artifact CI pins.
type Transcript struct {
	ScenarioSeed uint64          `json:"scenario_seed"`
	ChaosSeed    uint64          `json:"chaos_seed"`
	Rate         float64         `json:"rate"`
	PreemptRate  float64         `json:"preempt_rate,omitempty"`
	CapRate      float64         `json:"cap_rate,omitempty"`
	CapWatts     float64         `json:"cap_watts,omitempty"`
	Machines     []string        `json:"machines"`
	Processes    int             `json:"processes"`
	BurstProcs   int             `json:"burst_procs"`
	PreemptProcs int             `json:"preempt_procs,omitempty"`
	Horizon      float64         `json:"horizon"`
	Injections   []Injection     `json:"injections"`
	Policies     []PolicyOutcome `json:"policies"`
}

// Harness replays a fleet scenario under a deterministic fault schedule,
// checking every model invariant after every event.
//
// Determinism contract: every chaos decision is drawn serially from
// seeded streams while the schedule is built — never inside concurrent
// code — and faults are armed per sim event, applying uniformly to every
// seam consult during that one operation. Together with the parallel
// engine's serial-order first-error rule, the transcript is byte-identical
// across runs and across worker counts. (A per-consult injector such as
// Seeded cannot make that promise: under early abort, whether a given
// consult happens at all depends on the worker count.)
type Harness struct {
	sc   *fleet.Scenario
	opts Options
}

// NewHarness builds a chaos harness over a validated scenario.
func NewHarness(sc *fleet.Scenario, opts Options) *Harness {
	return &Harness{sc: sc, opts: opts}
}

// Fault classes armed on arrivals, drawn per process up front.
const (
	classNone = iota
	classProfile
	classScore
	classPlace
	classCancel
)

var className = map[int]string{
	classProfile: "profile_error",
	classScore:   "score_error",
	classPlace:   "place_error",
	classCancel:  "cancel",
}

// armer is the event-scoped fault switch behind the Intercept seam: the
// serial event loop arms one fault class for the duration of one fleet
// operation, and every seam consult at the matching site — from any
// worker — observes the same injected failure.
type armer struct{ v atomic.Int32 }

func (a *armer) arm(class int) { a.v.Store(int32(class)) }

func (a *armer) intercept(site, key string) error {
	var want string
	switch a.v.Load() {
	case classProfile:
		want = "fleet.profile"
	case classScore:
		want = "fleet.score"
	case classPlace, classPreemptFault:
		want = "manager.place_at"
	case classRebalance:
		want = "fleet.rebalance"
	default:
		return nil
	}
	if site == want {
		return &Fault{Site: site, Key: key}
	}
	return nil
}

const (
	classRebalance = classCancel + 1
	// classPreemptFault faults the placement commit of a high-priority
	// arrival: on a full fleet that lands mid-preemption — after the
	// victim's eviction — forcing the transactional rollback path.
	classPreemptFault = classRebalance + 1
)

// Event kinds in same-timestamp order: departures free capacity first,
// outages resolve next, then rebalancing sees the layout, then arrivals
// and bursts claim slots.
const (
	evDepart = iota
	evFail
	evRestore
	evRebalance
	evArrive
	evBurst
	// evPreempt sorts after ordinary arrivals at the same timestamp, so a
	// priority arrival always contends against the fullest fleet.
	evPreempt
	// evCapFlip sorts last: a budget change always sees the timestamp's
	// final layout, mirroring the sim's cap-event ordering.
	evCapFlip
)

type event struct {
	time float64
	kind int
	seq  int
	proc int // trace index (arrive/depart/burst)
	node int // node index (fail/restore)
}

// schedule is the precomputed chaos plan for one run.
type schedule struct {
	nodeNames  []string
	trace      []fleet.TraceProc // scenario procs, then bursts, then preempt procs
	bursts     int               // count of burst procs appended to trace
	preempts   int               // count of priority procs appended after the bursts
	classes    []int             // per trace proc: armed fault class
	prios      []int             // per trace proc: priority class (0 except preempt procs)
	capFlips   []float64         // cap-flip budgets in schedule order (0 = lift the cap)
	events     []event
	rebalFault map[int]bool // rebalance event seq -> inject
	horizon    float64
	injections []Injection
}

func (h *Harness) buildSchedule() *schedule {
	sc := h.sc
	s := &schedule{rebalFault: map[int]bool{}}
	for i, m := range sc.Machines {
		name := m.Name
		if name == "" {
			name = fmt.Sprintf("m%d", i)
		}
		s.nodeNames = append(s.nodeNames, name)
	}
	s.trace = sc.Trace()
	traceHorizon := 0.0
	for _, p := range s.trace {
		if p.Depart > traceHorizon {
			traceHorizon = p.Depart
		}
	}

	base := xrand.New(h.opts.Seed)
	outR, burstR, arriveR, rebalR := base.Split(), base.Split(), base.Split(), base.Split()
	rate := h.opts.Rate

	// Node outages: at most one per node, down inside the first 60% of
	// the trace so the recovery (and the pump into it) lands in-run.
	type outage struct {
		node     int
		down, up float64
	}
	var outages []outage
	for i := range s.nodeNames {
		if outR.Float64() >= rate {
			continue
		}
		down := outR.Float64() * traceHorizon * 0.6
		up := down + (0.1+0.3*outR.Float64())*traceHorizon
		outages = append(outages, outage{node: i, down: down, up: up})
	}

	// Queue-pressure bursts: clusters of simultaneous submissions, sized
	// to overflow a small queue. Burst processes get ordinary lifetimes
	// so every one departs (or abandons the queue) before the horizon
	// accounting closes.
	pool := h.workloadPool()
	nBursts := int(rate*8 + 0.5)
	for b := 0; b < nBursts; b++ {
		at := burstR.Float64() * traceHorizon * 0.8
		size := 1 + burstR.Intn(3)
		for j := 0; j < size; j++ {
			spec := pool[burstR.Intn(len(pool))]
			life := -sc.MeanLifetime * math.Log(1-burstR.Float64())
			id := len(s.trace)
			s.trace = append(s.trace, fleet.TraceProc{ID: id, Spec: spec, Arrive: at, Depart: at + life})
			s.bursts++
			s.injections = append(s.injections, Injection{
				Time: at, Kind: "burst", Target: fmt.Sprintf("%s#%d", spec.Name, id),
			})
		}
	}

	// Per-arrival fault classes for the scenario procs (bursts bypass
	// placement, so they draw no class). Exactly two uniforms per proc,
	// so the stream layout is stable under scenario edits elsewhere.
	s.classes = make([]int, len(s.trace))
	for i := 0; i < len(s.trace)-s.bursts; i++ {
		u, pick := arriveR.Float64(), arriveR.Float64()
		if u >= rate {
			continue
		}
		class := classProfile + int(pick*4)
		if class > classCancel {
			class = classCancel
		}
		s.classes[i] = class
		s.injections = append(s.injections, Injection{
			Time: s.trace[i].Arrive, Kind: className[class],
			Target: fmt.Sprintf("%s#%d", s.trace[i].Spec.Name, i),
		})
	}

	// High-priority arrivals for the preemption fault class. The fifth
	// stream is only split off when the class is enabled, so a disabled
	// run draws the exact byte-identical schedule it always did. Some
	// priority arrivals additionally arm a commit fault, exercising the
	// preemption rollback under chaos.
	s.prios = make([]int, len(s.trace))
	if h.opts.PreemptRate > 0 {
		preR := base.Split()
		nPre := 2 + int(h.opts.PreemptRate*8+0.5)
		for k := 0; k < nPre; k++ {
			// Land inside the congested middle of the trace so the fleet
			// is plausibly full when the priority arrival hits it.
			at := (0.2 + 0.6*preR.Float64()) * traceHorizon
			spec := pool[preR.Intn(len(pool))]
			life := -sc.MeanLifetime * math.Log(1-preR.Float64())
			prio := 1 + preR.Intn(3)
			class := classNone
			if preR.Float64() < rate {
				class = classPreemptFault
			}
			id := len(s.trace)
			s.trace = append(s.trace, fleet.TraceProc{ID: id, Spec: spec, Arrive: at, Depart: at + life})
			s.classes = append(s.classes, class)
			s.prios = append(s.prios, prio)
			s.preempts++
			target := fmt.Sprintf("%s#%d:p%d", spec.Name, id, prio)
			s.injections = append(s.injections, Injection{Time: at, Kind: "preempt_arrival", Target: target})
			if class == classPreemptFault {
				s.injections = append(s.injections, Injection{Time: at, Kind: "preempt_commit_error", Target: target})
			}
		}
	}

	// Cap flips: alternately engage a jittered budget and lift it, inside
	// the populated middle of the trace so enforcement has residents to
	// shed. The stream is only split off when the class is enabled, so a
	// disabled run draws the exact schedule it always did.
	if h.opts.CapRate > 0 {
		capR := base.Split()
		nFlips := 1 + int(h.opts.CapRate*6+0.5)
		for k := 0; k < nFlips; k++ {
			at := (0.15 + 0.7*capR.Float64()) * traceHorizon
			watts := 0.0
			kind := "cap_off"
			if k%2 == 0 {
				watts = h.opts.CapWatts * (0.75 + 0.5*capR.Float64())
				kind = "cap_engage"
			} else {
				// Burn the second uniform anyway so engage/lift alternation
				// never shifts the stream layout.
				capR.Float64()
			}
			s.capFlips = append(s.capFlips, watts)
			s.events = append(s.events, event{time: at, kind: evCapFlip, seq: k, proc: k})
			s.injections = append(s.injections, Injection{
				Time: at, Kind: kind, Target: fmt.Sprintf("%.4g W", watts),
			})
		}
	}

	s.horizon = 0
	for _, p := range s.trace {
		if p.Depart > s.horizon {
			s.horizon = p.Depart
		}
	}

	n0 := len(s.trace) - s.bursts - s.preempts
	for _, p := range s.trace[:n0] {
		s.events = append(s.events,
			event{time: p.Arrive, kind: evArrive, seq: p.ID, proc: p.ID},
			event{time: p.Depart, kind: evDepart, seq: p.ID, proc: p.ID},
		)
	}
	for _, p := range s.trace[n0 : n0+s.bursts] {
		s.events = append(s.events,
			event{time: p.Arrive, kind: evBurst, seq: p.ID, proc: p.ID},
			event{time: p.Depart, kind: evDepart, seq: p.ID, proc: p.ID},
		)
	}
	for _, p := range s.trace[n0+s.bursts:] {
		s.events = append(s.events,
			event{time: p.Arrive, kind: evPreempt, seq: p.ID, proc: p.ID},
			event{time: p.Depart, kind: evDepart, seq: p.ID, proc: p.ID},
		)
	}
	for _, o := range outages {
		s.events = append(s.events, event{time: o.down, kind: evFail, seq: o.node, node: o.node})
		s.injections = append(s.injections, Injection{Time: o.down, Kind: "node_down", Target: s.nodeNames[o.node]})
		if o.up < s.horizon {
			s.events = append(s.events, event{time: o.up, kind: evRestore, seq: o.node, node: o.node})
			s.injections = append(s.injections, Injection{Time: o.up, Kind: "node_up", Target: s.nodeNames[o.node]})
		}
	}
	if sc.RebalanceEvery > 0 {
		for k, t := 1, sc.RebalanceEvery; t < s.horizon; k, t = k+1, float64(k+1)*sc.RebalanceEvery {
			s.events = append(s.events, event{time: t, kind: evRebalance, seq: k})
			if rebalR.Float64() < rate {
				s.rebalFault[k] = true
				s.injections = append(s.injections, Injection{Time: t, Kind: "rebalance_error", Target: fmt.Sprintf("pass %d", k)})
			}
		}
	}
	sort.SliceStable(s.events, func(i, j int) bool {
		a, b := s.events[i], s.events[j]
		if a.time != b.time {
			return a.time < b.time
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.seq < b.seq
	})
	sort.SliceStable(s.injections, func(i, j int) bool {
		a, b := s.injections[i], s.injections[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Target < b.Target
	})
	return s
}

func (h *Harness) workloadPool() []*workload.Spec {
	if len(h.sc.Workloads) > 0 {
		out := make([]*workload.Spec, len(h.sc.Workloads))
		for i, n := range h.sc.Workloads {
			out[i] = workload.ByName(n)
		}
		return out
	}
	return workload.Suite()
}

func (h *Harness) policies() []string {
	if len(h.sc.Policies) > 0 {
		return h.sc.Policies
	}
	var out []string
	for _, p := range fleet.Policies() {
		out = append(out, p.String())
	}
	return out
}

func (h *Harness) buildFleet(pname string, arm *armer) (*fleet.Fleet, error) {
	policy, err := fleet.ParsePolicy(pname)
	if err != nil {
		return nil, err
	}
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		return nil, err
	}
	var nodes []fleet.NodeConfig
	for _, m := range h.sc.Machines {
		preset, err := cli.MachineByName(m.Preset)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, fleet.NodeConfig{
			Name:       m.Name,
			Machine:    preset,
			Power:      pm,
			MaxPerCore: m.MaxPerCore,
		})
	}
	scoreCap := 0
	if h.opts.ColdScore {
		scoreCap = -1
	}
	return fleet.New(fleet.Config{
		Nodes:          nodes,
		Policy:         policy,
		BinPackCeiling: h.sc.BinPackCeiling,
		QueueCap:       h.sc.QueueCap,
		Seed:           h.sc.Seed,
		Workers:        h.opts.Workers,
		ScoreCacheCap:  scoreCap,
		Intercept:      arm.intercept,
		Profile: func(ctx context.Context, m *machine.Machine, spec *workload.Spec, opts core.ProfileOptions) (*core.FeatureVector, error) {
			return core.TruthFeature(spec, m), nil
		},
	})
}

// Run replays the scenario under every requested policy against the
// shared fault schedule.
func (h *Harness) Run(ctx context.Context) (*Transcript, error) {
	if h.opts.Rate < 0 || h.opts.Rate > 1 {
		return nil, fmt.Errorf("chaos: rate %v outside [0, 1]", h.opts.Rate)
	}
	if h.opts.PreemptRate < 0 || h.opts.PreemptRate > 1 {
		return nil, fmt.Errorf("chaos: preempt rate %v outside [0, 1]", h.opts.PreemptRate)
	}
	if h.opts.CapRate < 0 || h.opts.CapRate > 1 {
		return nil, fmt.Errorf("chaos: cap rate %v outside [0, 1]", h.opts.CapRate)
	}
	if h.opts.CapRate > 0 && h.opts.CapWatts <= 0 {
		return nil, fmt.Errorf("chaos: cap rate %v needs a positive CapWatts budget", h.opts.CapRate)
	}
	if err := h.sc.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	s := h.buildSchedule()
	tr := &Transcript{
		ScenarioSeed: h.sc.Seed,
		ChaosSeed:    h.opts.Seed,
		Rate:         h.opts.Rate,
		PreemptRate:  h.opts.PreemptRate,
		CapRate:      h.opts.CapRate,
		CapWatts:     h.opts.CapWatts,
		Processes:    len(s.trace) - s.bursts - s.preempts,
		BurstProcs:   s.bursts,
		PreemptProcs: s.preempts,
		Horizon:      s.horizon,
		Injections:   append([]Injection{}, s.injections...),
	}
	for i, m := range h.sc.Machines {
		tr.Machines = append(tr.Machines, s.nodeNames[i]+":"+m.Preset)
	}
	for _, pname := range h.policies() {
		po, err := h.runPolicy(ctx, pname, s)
		if err != nil {
			return nil, fmt.Errorf("chaos: policy %s: %w", pname, err)
		}
		tr.Policies = append(tr.Policies, po)
	}
	return tr, nil
}

type procState struct {
	resident bool
	node     string
	instance string
	queued   bool
	ticket   int
}

func (h *Harness) runPolicy(ctx context.Context, pname string, s *schedule) (PolicyOutcome, error) {
	arm := &armer{}
	f, err := h.buildFleet(pname, arm)
	if err != nil {
		return PolicyOutcome{}, err
	}
	po := PolicyOutcome{Policy: pname}
	checker := &Checker{}
	states := make([]procState, len(s.trace))

	// With the preemption class enabled every process carries its trace ID
	// as its tag, so a victim stays tracked across eviction and requeue
	// (PreemptedInfo echoes the tag). Disabled runs keep the legacy
	// untagged placements and their byte-identical transcripts.
	tagOf := func(id int) string {
		if h.opts.PreemptRate > 0 {
			return strconv.Itoa(id)
		}
		return ""
	}

	// noteVictim re-points a preemption victim's state at its new life:
	// back in the queue under its fresh ticket, or gone (the drop is
	// counted by the fleet and checked against the ledger at the end).
	noteVictim := func(pi *fleet.PreemptedInfo) error {
		if pi == nil {
			return nil
		}
		if pi.Tag == "" {
			return fmt.Errorf("preemption victim %s/%s has no tag", pi.Node, pi.Name)
		}
		id, err := strconv.Atoi(pi.Tag)
		if err != nil {
			return fmt.Errorf("bad victim tag %q: %w", pi.Tag, err)
		}
		if pi.Requeued {
			states[id] = procState{queued: true, ticket: pi.Ticket}
		} else {
			states[id] = procState{}
		}
		return nil
	}

	admit := func(placed []fleet.Placed) error {
		for _, p := range placed {
			// A pumped high-priority entry may itself preempt: its victim
			// changes state in the same breath as the admission.
			if err := noteVictim(p.Preempted); err != nil {
				return err
			}
			if p.Tag == "" {
				continue
			}
			id, err := strconv.Atoi(p.Tag)
			if err != nil {
				return fmt.Errorf("bad queue tag %q: %w", p.Tag, err)
			}
			states[id] = procState{resident: true, node: p.Node, instance: p.Name}
		}
		return nil
	}

	prevT := 0.0
	var spiSec, wattSec float64
	integrate := func(now float64) error {
		if now <= prevT {
			return nil
		}
		spi, watts, err := f.Totals(ctx)
		if err != nil {
			return err
		}
		spiSec += spi * (now - prevT)
		wattSec += watts * (now - prevT)
		prevT = now
		return nil
	}

	// capSatisfied records whether the last enforcement pass got the fleet
	// under its budget; while it is false the "usage ≤ cap" law is waived
	// (the idle floor alone exceeds the cap) and only ledger consistency
	// is checked.
	capSatisfied := true
	check := func() {
		po.InvariantChecks++
		for _, v := range checker.CheckFleet(ctx, f) {
			if len(po.Violations) < 16 {
				po.Violations = append(po.Violations, v.String())
			}
		}
		for _, v := range CheckCap(ctx, f, capSatisfied) {
			if len(po.Violations) < 16 {
				po.Violations = append(po.Violations, v.String())
			}
		}
	}

	// enforce runs one cap-enforcement pass and folds its actions into the
	// outcome, re-pointing any resident the pass migrated.
	enforce := func() error {
		rep, err := f.EnforceCap(ctx)
		if err != nil {
			return err
		}
		po.CapDownclocks += rep.Downclocks
		po.CapMigrations += rep.Migrations
		if !rep.Satisfied {
			po.CapUnsatisfied++
		}
		capSatisfied = rep.Satisfied
		for _, mv := range rep.Moves {
			for i := range states {
				if states[i].resident && states[i].node == mv.From && states[i].instance == mv.Name {
					states[i].node, states[i].instance = mv.To, mv.NewName
					break
				}
			}
		}
		return nil
	}

	// Priority-inversion law: Remove and RestoreNode pump the queue, and
	// those pumps are always fault-free (faults are only armed on arrival
	// and rebalance operations). An entry inverted at one pump may simply
	// have been requeued mid-pump (its backoff starts next round); one
	// that stays inverted under the same ticket across two consecutive
	// pumps was eligible for a full pump while outranking a resident —
	// that pump should have preempted on its behalf.
	prevInverted := map[int]bool{}
	pumped := func() {
		if h.opts.PreemptRate <= 0 {
			return
		}
		cur := map[int]bool{}
		for _, q := range PriorityInversions(f) {
			cur[q.Ticket] = true
			if prevInverted[q.Ticket] && len(po.Violations) < 16 {
				po.Violations = append(po.Violations, fmt.Sprintf(
					"preempt/inversion: ticket %d (%s, class %d) still outranks a resident after consecutive fault-free pumps",
					q.Ticket, q.Workload, q.Priority))
			}
		}
		prevInverted = cur
	}

	for _, ev := range s.events {
		if err := ctx.Err(); err != nil {
			return PolicyOutcome{}, err
		}
		if err := integrate(ev.time); err != nil {
			return PolicyOutcome{}, err
		}
		switch ev.kind {
		case evArrive:
			p := s.trace[ev.proc]
			if s.classes[ev.proc] == classCancel {
				cctx, cancel := context.WithCancel(ctx)
				cancel()
				_, err := f.Place(cctx, p.Spec)
				if !errors.Is(err, context.Canceled) {
					return PolicyOutcome{}, fmt.Errorf("cancelled place of %s#%d: got %v", p.Spec.Name, p.ID, err)
				}
				po.Cancelled++
				break
			}
			arm.arm(s.classes[ev.proc])
			placed, err := f.PlaceWith(ctx, p.Spec, fleet.PlaceOptions{Tag: tagOf(p.ID)})
			arm.arm(classNone)
			switch {
			case err == nil:
				po.Placed++
				states[ev.proc] = procState{resident: true, node: placed.Node, instance: placed.Name}
			case IsFault(err):
				po.Faulted++
			case errors.Is(err, fleet.ErrFleetFull):
				ticket, qerr := f.Submit(p.Spec, strconv.Itoa(p.ID))
				if qerr == nil {
					states[ev.proc] = procState{queued: true, ticket: ticket}
				} else if !errors.Is(qerr, fleet.ErrQueueFull) {
					return PolicyOutcome{}, qerr
				}
			default:
				return PolicyOutcome{}, err
			}
		case evBurst:
			p := s.trace[ev.proc]
			ticket, qerr := f.Submit(p.Spec, strconv.Itoa(p.ID))
			if qerr == nil {
				states[ev.proc] = procState{queued: true, ticket: ticket}
			} else if !errors.Is(qerr, fleet.ErrQueueFull) {
				return PolicyOutcome{}, qerr
			}
		case evPreempt:
			p := s.trace[ev.proc]
			arm.arm(s.classes[ev.proc])
			placed, err := f.PlaceWith(ctx, p.Spec, fleet.PlaceOptions{
				Tag:      tagOf(p.ID),
				Priority: s.prios[ev.proc],
			})
			arm.arm(classNone)
			switch {
			case err == nil:
				po.PreemptPlaced++
				states[ev.proc] = procState{resident: true, node: placed.Node, instance: placed.Name}
				if err := noteVictim(placed.Preempted); err != nil {
					return PolicyOutcome{}, err
				}
			case IsFault(err):
				// The armed commit fault fired — possibly mid-preemption,
				// in which case the fleet just rolled the eviction back.
				po.Faulted++
			case errors.Is(err, fleet.ErrFleetFull):
				// Full and nothing outranked: wait in the queue at class;
				// a later pump may still preempt on its behalf.
				ticket, qerr := f.SubmitWith(p.Spec, strconv.Itoa(p.ID), s.prios[ev.proc])
				if qerr == nil {
					states[ev.proc] = procState{queued: true, ticket: ticket}
				} else if !errors.Is(qerr, fleet.ErrQueueFull) {
					return PolicyOutcome{}, qerr
				}
			default:
				return PolicyOutcome{}, err
			}
		case evDepart:
			st := states[ev.proc]
			switch {
			case st.resident:
				admitted, err := f.Remove(ctx, st.node, st.instance)
				if err != nil {
					return PolicyOutcome{}, err
				}
				states[ev.proc] = procState{}
				if err := admit(admitted); err != nil {
					return PolicyOutcome{}, err
				}
				pumped()
			case st.queued:
				f.CancelQueued(st.ticket)
				states[ev.proc] = procState{}
			}
		case evFail:
			name := s.nodeNames[ev.node]
			evicted, err := f.FailNode(name)
			if err != nil {
				return PolicyOutcome{}, err
			}
			po.NodesLost++
			byInstance := map[string]bool{}
			for _, r := range evicted {
				byInstance[r.Name] = true
			}
			for i := range states {
				if states[i].resident && states[i].node == name && byInstance[states[i].instance] {
					states[i] = procState{}
					po.Killed++
				}
			}
		case evRestore:
			admitted, err := f.RestoreNode(ctx, s.nodeNames[ev.node])
			if err != nil {
				return PolicyOutcome{}, err
			}
			po.NodesRestored++
			if err := admit(admitted); err != nil {
				return PolicyOutcome{}, err
			}
			pumped()
			// A restored machine adds its idle draw without passing the
			// admission gate; under an engaged budget the cap controller
			// reacts to the capacity event.
			if f.PowerCap() > 0 {
				if err := enforce(); err != nil {
					return PolicyOutcome{}, err
				}
			}
		case evRebalance:
			if s.rebalFault[ev.seq] {
				arm.arm(classRebalance)
			}
			mv, err := f.Rebalance(ctx, h.sc.RebalanceMinImprovement)
			arm.arm(classNone)
			switch {
			case err == nil:
				for i := range states {
					if states[i].resident && states[i].node == mv.From && states[i].instance == mv.Name {
						states[i].node, states[i].instance = mv.To, mv.NewName
						break
					}
				}
			case IsFault(err):
				po.RebalanceFaults++
			case !errors.Is(err, manager.ErrNoImprovement):
				return PolicyOutcome{}, err
			}
		case evCapFlip:
			watts := s.capFlips[ev.proc]
			if err := f.SetPowerCap(ctx, watts); err != nil {
				return PolicyOutcome{}, err
			}
			po.CapFlips++
			if watts > 0 {
				if err := enforce(); err != nil {
					return PolicyOutcome{}, err
				}
			} else {
				capSatisfied = true
			}
		}
		check()
	}
	if err := integrate(s.horizon); err != nil {
		return PolicyOutcome{}, err
	}

	reg := f.Registry()
	po.QueueAdmitted = reg.CounterValue("fleet_queue_admitted_total")
	po.QueueAbandoned = reg.CounterValue("fleet_queue_abandoned_total")
	po.QueueDropped = reg.CounterValue("fleet_queue_dropped_total")
	po.QueueRejected = reg.CounterValue("fleet_queue_rejected_total")
	po.Moves = reg.CounterValue("fleet_rebalance_moves_total")
	po.Preemptions = reg.CounterValue("fleet_preempt_total")
	po.PreemptRequeued = reg.CounterValue("fleet_preempt_requeued_total")
	po.PreemptDropped = reg.CounterValue("fleet_preempt_dropped_total")
	po.PreemptAborted = reg.CounterValue("fleet_preempt_aborted_total")
	po.AvgSPI = spiSec / s.horizon
	po.AvgWatts = wattSec / s.horizon
	for _, st := range states {
		if st.resident || st.queued {
			po.FinalResidents++
		}
	}

	// Ledger conservation: every process — scenario arrival, burst, or
	// priority arrival — must end in exactly one disposition. A preemption
	// victim is intentionally counted twice (once placed, once resubmitted
	// by its requeue), so the expected total grows by the requeue count.
	submitted := reg.CounterValue("fleet_queue_submitted_total")
	total := uint64(po.Placed+po.PreemptPlaced+po.Faulted+po.Cancelled) + submitted + po.QueueRejected
	want := uint64(len(s.trace)) + po.PreemptRequeued
	if total != want {
		po.Violations = append(po.Violations, fmt.Sprintf(
			"conservation/ledger: placed %d + preempt-placed %d + faulted %d + cancelled %d + queued %d + queue-rejected %d != %d processes + %d requeues",
			po.Placed, po.PreemptPlaced, po.Faulted, po.Cancelled, submitted, po.QueueRejected, len(s.trace), po.PreemptRequeued))
	}
	return po, nil
}
