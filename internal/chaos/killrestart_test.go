package chaos

// Kill/restart fault class: a seeded mutation storm journals every
// fleet operation to a real on-disk WAL, the process "dies" (no
// compaction, no clean close, sometimes a torn final record), and a
// freshly built fleet recovers from the directory. The sweep asserts
// the WAL's whole-record durability unit — recovered state is always
// "before the last operation" or "after it", never between — and that
// recovery reproduces the fleet byte-identically: same /v1/fleet/state
// JSON, same invariants, still serving.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mpmc/internal/core"
	"mpmc/internal/fleet"
	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/wal"
	"mpmc/internal/workload"
	"mpmc/internal/xrand"
)

// krBackend is the mutation surface the storm drives; *fleet.Fleet and
// *fleet.Sharded both satisfy it.
type krBackend interface {
	Place(ctx context.Context, spec *workload.Spec) (fleet.Placed, error)
	SubmitWith(spec *workload.Spec, tag string, priority int) (int, error)
	CancelQueued(ticket int) bool
	Pump(ctx context.Context) ([]fleet.Placed, error)
	Remove(ctx context.Context, node, instance string) ([]fleet.Placed, error)
	FailNode(name string) ([]manager.Resident, error)
	RestoreNode(ctx context.Context, name string) ([]fleet.Placed, error)
	Rebalance(ctx context.Context, minImprovement float64) (fleet.Move, error)
	Inspect() []fleet.NodeInspection
	QueueDepth() int
	State(ctx context.Context) (*fleet.State, error)
	Recover(ctx context.Context, st *wal.State) error
	EnforceCap(ctx context.Context) (fleet.CapReport, error)
	CapUsage() float64
	FreqStates() map[string]int
	Totals(ctx context.Context) (spi, watts float64, err error)
}

// krPool is the workload draw for the storm.
var krPool = []string{"gzip", "vpr", "mcf", "bzip2", "twolf", "art", "equake", "ammp", "swim", "applu"}

// buildKRFleet constructs the storm's fleet: identical configuration for
// the pre-crash and the recovered instance, so any observable divergence
// is recovery's fault.
func buildKRFleet(t *testing.T, shards int, journal func([]wal.Event)) krBackend {
	t.Helper()
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	var nodes []fleet.NodeConfig
	for i := 0; i < 5; i++ {
		nodes = append(nodes, fleet.NodeConfig{
			Name: fmt.Sprintf("m%d", i), Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 2,
		})
	}
	cfg := fleet.Config{
		Nodes:    nodes,
		Policy:   fleet.LeastDegradation,
		QueueCap: 8,
		// The watt budget is an operator knob (config/flag), not a journaled
		// fact, so pre-crash and recovered instances carry the same cap and
		// recovery only has to reinstate rungs and ledger rows. 40 W binds
		// against this 5-machine fleet's loaded draw, so storm enforcement
		// really down-clocks (journaling EvFreq records recovery must replay).
		PowerCap: 40,
		Profile: func(_ context.Context, m *machine.Machine, spec *workload.Spec, _ core.ProfileOptions) (*core.FeatureVector, error) {
			return core.TruthFeature(spec, m), nil
		},
		Journal: journal,
	}
	if shards > 1 {
		s, err := fleet.NewSharded(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	f, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestKillRestartRecovery(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runKillRestart(t, seed)
		})
	}
}

func runKillRestart(t *testing.T, seed uint64) {
	ctx := context.Background()
	rng := xrand.New(seed)
	dir := t.TempDir()

	log1, st0, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st0.Residents) != 0 || len(st0.Queue) != 0 {
		t.Fatalf("fresh dir recovered non-empty state: %+v", st0)
	}

	// The journal mirror: every batch deep-copied (the fleet reuses its
	// buffer) with its on-disk record length, so the sweep can predict
	// exactly which whole records survive a torn tail.
	var batches [][]wal.Event
	var recLens []int
	journal := func(events []wal.Event) {
		cp := append([]wal.Event(nil), events...)
		if err := log1.Append(cp); err != nil {
			t.Errorf("append: %v", err)
		}
		payload, err := json.Marshal(cp)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		batches = append(batches, cp)
		recLens = append(recLens, 8+len(payload)) // uint32 len + uint32 crc + payload
	}

	shards := 1
	if seed%2 == 0 {
		shards = 2
	}
	f1 := buildKRFleet(t, shards, journal)

	// The storm: a seeded mix of every journaled mutation. Individual
	// operations may legitimately fail (full fleet, full queue, node
	// down, no rebalance improvement) — the journal only records what
	// committed, which is exactly what recovery must reproduce.
	var tickets []int
	ops := 30 + rng.Intn(30)
	for op := 0; op < ops; op++ {
		spec := workload.ByName(krPool[rng.Intn(len(krPool))])
		switch r := rng.Float64(); {
		case r < 0.40:
			_, _ = f1.Place(ctx, spec)
		case r < 0.55:
			if tk, err := f1.SubmitWith(spec, fmt.Sprintf("t%d", op), rng.Intn(3)); err == nil {
				tickets = append(tickets, tk)
			}
		case r < 0.65:
			_, _ = f1.Pump(ctx)
		case r < 0.80:
			ins := f1.Inspect()
			ni := ins[rng.Intn(len(ins))]
			if len(ni.Residents) > 0 {
				_, _ = f1.Remove(ctx, ni.Name, ni.Residents[rng.Intn(len(ni.Residents))].Name)
			}
		case r < 0.85:
			if len(tickets) > 0 {
				f1.CancelQueued(tickets[rng.Intn(len(tickets))])
			}
		case r < 0.90:
			_, _ = f1.FailNode(fmt.Sprintf("m%d", rng.Intn(5)))
		case r < 0.95:
			_, _ = f1.RestoreNode(ctx, fmt.Sprintf("m%d", rng.Intn(5)))
		case r < 0.975:
			_, _ = f1.EnforceCap(ctx)
		default:
			_, _ = f1.Rebalance(ctx, 0)
		}
	}

	preState, err := f1.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	preJSON, err := json.Marshal(preState)
	if err != nil {
		t.Fatal(err)
	}

	// The kill: no Close, no Compact. Half the seeds additionally tear
	// the final record mid-write.
	logPath := filepath.Join(dir, "events.0.wal")
	survivors := len(batches)
	if len(recLens) > 0 && rng.Float64() < 0.5 {
		torn := 1 + rng.Intn(recLens[len(recLens)-1])
		info, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(logPath, info.Size()-int64(torn)); err != nil {
			t.Fatal(err)
		}
		survivors--
	}

	// The restart.
	log2, st2, err := wal.Open(dir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	expected := &wal.State{}
	for _, b := range batches[:survivors] {
		for _, e := range b {
			if err := expected.Apply(e); err != nil {
				t.Fatalf("shadow apply: %v", err)
			}
		}
	}
	gotJSON, _ := json.Marshal(st2)
	wantJSON, _ := json.Marshal(expected)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("recovered WAL state diverged from the surviving records:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	f2 := buildKRFleet(t, shards, func(events []wal.Event) {
		if err := log2.Append(events); err != nil {
			t.Errorf("post-recovery append: %v", err)
		}
	})
	if err := f2.Recover(ctx, st2); err != nil {
		t.Fatalf("recover: %v", err)
	}

	// Cap conservation across the crash: rungs replay from EvFreq records
	// and the ledger rebuilds from fresh estimates, so the recovered
	// tracked draw must agree with a live fleet-wide estimate, and on
	// full-history seeds the recovered rungs match the pre-crash ones
	// exactly.
	if survivors == len(batches) {
		pre, post := f1.FreqStates(), f2.FreqStates()
		preStr, _ := json.Marshal(pre)
		postStr, _ := json.Marshal(post)
		if string(preStr) != string(postStr) {
			t.Fatalf("recovered DVFS rungs diverged:\n pre %s\npost %s", preStr, postStr)
		}
	}
	if _, watts, err := f2.Totals(ctx); err != nil {
		t.Fatal(err)
	} else if usage := f2.CapUsage(); usage < watts-1e-6 || usage > watts+1e-6 {
		t.Fatalf("recovered ledger %.9g W drifts from fresh estimate %.9g W", usage, watts)
	}
	// Full-history seeds (no torn tail, and the last operation may have
	// been a no-op anyway): the recovered serving state must be
	// byte-identical to the pre-crash /v1/fleet/state payload.
	if survivors == len(batches) {
		postState, err := f2.State(ctx)
		if err != nil {
			t.Fatal(err)
		}
		postJSON, err := json.Marshal(postState)
		if err != nil {
			t.Fatal(err)
		}
		if string(preJSON) != string(postJSON) {
			t.Fatalf("recovered state not byte-identical:\n pre %s\npost %s", preJSON, postJSON)
		}
	}

	// Model invariants hold on the recovered fleet.
	if ff, ok := f2.(*fleet.Fleet); ok {
		checker := &Checker{}
		if vs := checker.CheckFleet(ctx, ff); len(vs) > 0 {
			t.Fatalf("invariant violations after recovery: %v", vs)
		}
	}

	// An enforcement pass on the recovered fleet restores the budget even
	// when the crash interrupted one (or a restore re-added idle draw).
	// Runs after the byte-identity comparison above — it may re-clock.
	if rep, err := f2.EnforceCap(ctx); err != nil {
		t.Fatalf("enforce after recovery: %v", err)
	} else if rep.Satisfied && f2.CapUsage() > rep.Cap*(1+1e-9) {
		t.Fatalf("satisfied enforcement left usage %.9g above cap %.9g", f2.CapUsage(), rep.Cap)
	}

	// The recovered fleet keeps serving and journaling: pump whatever
	// queue survived, compact, and a third open sees the compacted
	// state with nothing lost.
	if _, err := f2.Pump(ctx); err != nil {
		t.Fatalf("pump after recovery: %v", err)
	}
	if err := log2.Compact(); err != nil {
		t.Fatal(err)
	}
	log3, st3, err := wal.Open(dir)
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer log3.Close()
	if len(st3.Residents) < len(st2.Residents) {
		t.Fatalf("compaction lost residents: %d -> %d", len(st2.Residents), len(st3.Residents))
	}
	if st3.Seq < st2.Seq {
		t.Fatalf("compaction regressed ticket seq: %d -> %d", st2.Seq, st3.Seq)
	}
}
