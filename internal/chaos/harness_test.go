package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"mpmc/internal/fleet"
)

var update = flag.Bool("update", false, "rewrite golden files")

func chaosScenario(t *testing.T) *fleet.Scenario {
	t.Helper()
	sc, err := fleet.LoadScenario(filepath.Join("testdata", "scenario_chaos.json"))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func renderTranscript(t *testing.T, tr *Transcript) []byte {
	t.Helper()
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestChaosGolden is the acceptance pin: the transcript for a fixed
// (scenario, chaos seed, rate) must be byte-identical to the checked-in
// golden at every worker count.
func TestChaosGolden(t *testing.T) {
	sc := chaosScenario(t)
	golden := filepath.Join("testdata", "chaos_seed1.json")
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		tr, err := NewHarness(sc, Options{Seed: 1, Rate: 0.25, Workers: workers}).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := renderTranscript(t, tr)
		if *update && workers == 1 {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			dump := golden + fmt.Sprintf(".got-w%d.json", workers)
			os.WriteFile(dump, got, 0o644)
			t.Fatalf("workers=%d: transcript differs from golden; wrote %s", workers, dump)
		}
	}
}

// TestChaosTranscriptExercisesEveryFaultClass guards the schedule itself:
// a golden that injects nothing pins nothing.
func TestChaosTranscriptExercisesEveryFaultClass(t *testing.T) {
	sc := chaosScenario(t)
	tr, err := NewHarness(sc, Options{Seed: 1, Rate: 0.25, Workers: 2}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, inj := range tr.Injections {
		kinds[inj.Kind]++
	}
	for _, want := range []string{"node_down", "burst", "cancel"} {
		if kinds[want] == 0 {
			t.Errorf("schedule has no %q injection (kinds: %v)", want, kinds)
		}
	}
	// At least one of the placement-path error classes must be armed.
	if kinds["profile_error"]+kinds["score_error"]+kinds["place_error"] == 0 {
		t.Errorf("schedule arms no placement-path error (kinds: %v)", kinds)
	}
	if tr.BurstProcs == 0 {
		t.Error("no burst processes generated")
	}
	for _, po := range tr.Policies {
		if len(po.Violations) > 0 {
			t.Errorf("policy %s: invariant violations under chaos: %v", po.Policy, po.Violations)
		}
		if po.InvariantChecks == 0 {
			t.Errorf("policy %s: no invariant checks ran", po.Policy)
		}
		if po.FinalResidents != 0 {
			t.Errorf("policy %s: %d residents leaked past the horizon", po.Policy, po.FinalResidents)
		}
		if po.NodesLost == 0 {
			t.Errorf("policy %s: no machine loss exercised", po.Policy)
		}
		if po.Faulted+po.Cancelled == 0 {
			t.Errorf("policy %s: no arrival-path fault realized", po.Policy)
		}
	}
}

// TestChaosSeedsDiverge: different chaos seeds must produce different
// schedules — otherwise the seed plumbing is dead.
func TestChaosSeedsDiverge(t *testing.T) {
	sc := chaosScenario(t)
	a, err := NewHarness(sc, Options{Seed: 1, Rate: 0.25}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHarness(sc, Options{Seed: 2, Rate: 0.25}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(renderTranscript(t, a), renderTranscript(t, b)) {
		t.Fatal("seeds 1 and 2 produced identical transcripts")
	}
}

// TestChaosZeroRateMatchesCleanRun: rate 0 injects nothing and every
// policy completes with clean invariants.
func TestChaosZeroRateIsFaultFree(t *testing.T) {
	sc := chaosScenario(t)
	tr, err := NewHarness(sc, Options{Seed: 1, Rate: 0}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Injections) != 0 || tr.BurstProcs != 0 {
		t.Fatalf("rate 0 scheduled %d injections, %d bursts", len(tr.Injections), tr.BurstProcs)
	}
	for _, po := range tr.Policies {
		if po.Faulted+po.Cancelled+po.NodesLost != 0 {
			t.Errorf("policy %s: faults realized at rate 0: %+v", po.Policy, po)
		}
		if len(po.Violations) > 0 {
			t.Errorf("policy %s: violations: %v", po.Policy, po.Violations)
		}
	}
}

func TestHarnessRejectsBadRate(t *testing.T) {
	sc := chaosScenario(t)
	if _, err := NewHarness(sc, Options{Seed: 1, Rate: 1.5}).Run(context.Background()); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
}
