package chaos

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"mpmc/internal/fleet"
)

// TestGroupInvariantsAfterEverySimEvent is the per-group conservation
// acceptance test: the sharing scenario (mixed group sizes, sharing
// fractions 0/0.5/0.9, both sharer-aware policies plus a group-oblivious
// arm) is replayed with a CheckFleet sweep after EVERY sim event —
// arrivals, departures, rebalances. Any broken invariant (member
// occupancy split, coherence-when-colocated, group ledger) aborts the
// sim at the exact event time, at every worker count.
func TestGroupInvariantsAfterEverySimEvent(t *testing.T) {
	sc, err := fleet.LoadScenario("../fleet/testdata/scenario_threads.json")
	if err != nil {
		t.Fatal(err)
	}
	if sc.ThreadGroups == nil {
		t.Fatal("scenario_threads.json lost its thread_groups block")
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		var c Checker
		checks := 0
		sim := fleet.NewSim(sc, workers)
		sim.AfterEvent = func(f *fleet.Fleet) error {
			checks++
			if vs := c.CheckFleet(context.Background(), f); len(vs) > 0 {
				return fmt.Errorf("%d invariant violation(s), first: %v", len(vs), vs[0])
			}
			return nil
		}
		if _, err := sim.Run(context.Background()); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Every arrival and departure must have been swept; with three
		// policies and 14 processes that is at least 3×2×14 events.
		if min := 3 * 2 * sc.Processes; checks < min {
			t.Fatalf("workers=%d: only %d invariant sweeps ran, want >= %d", workers, checks, min)
		}
	}
}

// TestGroupLedgerViolationDetected proves the ledger check has teeth: a
// fleet whose spawned-members counter is bumped without a matching
// placement or fault must be flagged.
func TestGroupLedgerViolationDetected(t *testing.T) {
	f := newTestFleet(t, nil)
	f.Registry().Counter("fleet_group_spawned_members_total").Add(3)
	var c Checker
	vs := c.CheckFleet(context.Background(), f)
	found := false
	for _, v := range vs {
		if v.Invariant == "conservation/group-ledger" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unbalanced group ledger not flagged; violations: %v", vs)
	}
}
