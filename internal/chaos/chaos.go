// Package chaos is the fleet's deterministic fault-injection and
// invariant-checking subsystem.
//
// The scheduler stack (internal/fleet, internal/manager) exposes a single
// seam — an Intercept func consulted at named sites before each guarded
// operation — and this package supplies the injectors that drive it:
// Script injects faults at exact (site, key, occurrence) coordinates for
// unit tests, Seeded injects them pseudo-randomly but reproducibly from a
// seed for property tests, and the Harness (harness.go) replays a whole
// fleet scenario under scheduled fault classes — profiling errors and
// stalls, solver-path errors, machine loss mid-sim, context cancellation,
// queue pressure bursts — producing a transcript that is byte-identical
// across runs and worker counts for a fixed (seed, scenario).
//
// Everything an injector does is recorded in an event log, so a failing
// test names the exact injection sequence that produced it and the run
// replays from (seed, scenario) alone. The other half of the package is
// the Checker (invariants.go): the paper's model guarantees — Eq. 1 cache
// conservation, MPA monotonicity, Eq. 10 combination accounting — checked
// against live scheduler state after every event.
package chaos

import (
	"fmt"
	"sync"

	"mpmc/internal/xrand"
)

// Fault is an injected error. Injected failures are ordinary errors to the
// code under test — nothing in the scheduler stack is allowed to
// special-case them — but tests can tell them apart from organic failures
// with errors.As/IsFault.
type Fault struct {
	Site string // injection site, e.g. "fleet.profile"
	Key  string // operation key at the site, e.g. "m0/gzip"
}

func (f *Fault) Error() string {
	return fmt.Sprintf("chaos: injected fault at %s [%s]", f.Site, f.Key)
}

// IsFault reports whether err is, or wraps, an injected fault.
func IsFault(err error) bool {
	for err != nil {
		if _, ok := err.(*Fault); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Event is one recorded injection decision.
type Event struct {
	Seq  int    `json:"seq"`
	Site string `json:"site"`
	Key  string `json:"key"`
}

// Log records every injection an injector makes, in decision order. Safe
// for concurrent use; note that under concurrent callers the order of
// entries follows the actual interleaving, so tests asserting on a Log
// should compare sets or counts unless the calls are serial.
type Log struct {
	mu     sync.Mutex
	events []Event
}

func (l *Log) add(site, key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{Seq: len(l.events), Site: site, Key: key})
}

// Events returns a copy of the recorded injections.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Len returns the number of recorded injections.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Script injects faults at exact scripted coordinates: the n-th consult
// (1-based) of a given (site, key) fails. Unmatched consults pass. The
// zero key scripts every key at the site. Safe for concurrent use.
type Script struct {
	mu   sync.Mutex
	plan map[string]map[int]bool
	seen map[string]int
	log  Log
}

// NewScript returns an empty script: every consult passes until Fail adds
// coordinates.
func NewScript() *Script {
	return &Script{plan: map[string]map[int]bool{}, seen: map[string]int{}}
}

func scriptKey(site, key string) string { return site + "\x00" + key }

// Fail schedules the listed occurrences (1-based) of (site, key) to fail.
// key "" matches every key at the site; its occurrence counter then counts
// site consults regardless of key.
func (s *Script) Fail(site, key string, occurrences ...int) *Script {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := scriptKey(site, key)
	if s.plan[k] == nil {
		s.plan[k] = map[int]bool{}
	}
	for _, o := range occurrences {
		s.plan[k][o] = true
	}
	return s
}

// Intercept is the seam implementation; wire it as fleet.Config.Intercept
// or manager.Options.Intercept.
func (s *Script) Intercept(site, key string) error {
	s.mu.Lock()
	var hit bool
	var hitKey string
	for _, k := range []string{scriptKey(site, key), scriptKey(site, "")} {
		if s.plan[k] == nil {
			continue
		}
		s.seen[k]++
		if s.plan[k][s.seen[k]] {
			hit, hitKey = true, key
		}
	}
	s.mu.Unlock()
	if hit {
		s.log.add(site, hitKey)
		return &Fault{Site: site, Key: key}
	}
	return nil
}

// Log exposes the injections the script has made so far.
func (s *Script) Log() *Log { return &s.log }

// Seeded injects faults pseudo-randomly but reproducibly: the decision for
// the n-th consult of a given (site, key) is a pure function of (seed,
// site, key, n), so a test that fails replays identically from its seed —
// independent of goroutine interleaving, because each (site, key) stream
// counts its own consults. Safe for concurrent use.
//
// Seeded is for unit and property tests. It is NOT the harness's sim
// injector: under the parallel engine's early-abort semantics, whether a
// given consult happens at all can depend on the worker count, so
// per-consult decisions cannot promise worker-count-invariant outcomes.
// The Harness arms faults per sim event instead (see harness.go).
type Seeded struct {
	seed uint64
	rate float64

	mu   sync.Mutex
	seen map[string]int
	log  Log
}

// NewSeeded returns an injector failing roughly rate of consults
// (0 disables, 1 fails every consult), decided reproducibly from seed.
func NewSeeded(seed uint64, rate float64) *Seeded {
	return &Seeded{seed: seed, rate: rate, seen: map[string]int{}}
}

// Intercept is the seam implementation.
func (s *Seeded) Intercept(site, key string) error {
	if s.rate <= 0 {
		return nil
	}
	k := scriptKey(site, key)
	s.mu.Lock()
	s.seen[k]++
	n := s.seen[k]
	s.mu.Unlock()
	// One throwaway SplitMix64 stream per decision: mix the coordinate
	// into the seed, then draw a single uniform.
	h := s.seed
	for _, b := range []byte(k) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	r := xrand.New(h ^ uint64(n)*0x9e3779b97f4a7c15)
	if r.Float64() < s.rate {
		s.log.add(site, key)
		return &Fault{Site: site, Key: key}
	}
	return nil
}

// Log exposes the injections made so far.
func (s *Seeded) Log() *Log { return &s.log }
