package chaos

import (
	"context"
	"sync/atomic"
	"time"
)

// CancelAfter returns a context that cancels itself after the code under
// test has observed it checks times: each call to Err (the checkpoint
// every loop in the scheduler stack already makes through ctx.Err() or
// the parallel engine) decrements a countdown, and the context cancels
// when it reaches zero. Sweeping checks across 0..N in a test drives
// cancellation into every checkpoint of an operation deterministically —
// no timers, no sleeps.
//
// checks <= 0 cancels immediately. The returned CancelFunc releases the
// context's resources and must be called, as with context.WithCancel.
func CancelAfter(parent context.Context, checks int) (context.Context, context.CancelFunc) {
	inner, cancel := context.WithCancel(parent)
	c := &countdownCtx{Context: inner, cancel: cancel}
	c.remaining.Store(int64(checks))
	if checks <= 0 {
		cancel()
	}
	return c, cancel
}

type countdownCtx struct {
	context.Context
	remaining atomic.Int64
	cancel    context.CancelFunc
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) <= 0 {
		c.cancel()
	}
	return c.Context.Err()
}

// Deadline forwards to the inner context; the countdown has no deadline.
func (c *countdownCtx) Deadline() (time.Time, bool) { return c.Context.Deadline() }
