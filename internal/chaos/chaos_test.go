package chaos

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestScriptFailsExactOccurrences(t *testing.T) {
	s := NewScript().Fail("fleet.score", "m0", 2, 4)
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, s.Intercept("fleet.score", "m0") != nil)
	}
	want := []bool{false, true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("occurrence %d: injected=%v, want %v", i+1, got[i], want[i])
		}
	}
	if s.Intercept("fleet.score", "m1") != nil {
		t.Fatal("unscripted key injected")
	}
	if s.Intercept("manager.place", "m0") != nil {
		t.Fatal("unscripted site injected")
	}
	if n := s.Log().Len(); n != 2 {
		t.Fatalf("log recorded %d injections, want 2", n)
	}
}

func TestScriptWildcardKey(t *testing.T) {
	s := NewScript().Fail("fleet.profile", "", 1)
	if s.Intercept("fleet.profile", "anything") == nil {
		t.Fatal("wildcard did not inject on first consult")
	}
	if s.Intercept("fleet.profile", "anything") != nil {
		t.Fatal("wildcard injected twice")
	}
}

func TestSeededIsReproducible(t *testing.T) {
	decide := func(seed uint64) []bool {
		s := NewSeeded(seed, 0.5)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, s.Intercept("site", fmt.Sprintf("k%d", i%4)) != nil)
		}
		return out
	}
	a, b := decide(42), decide(42)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical seeds", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("rate 0.5 produced %d/%d injections", hits, len(a))
	}
	c := decide(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical decisions")
	}
}

func TestSeededZeroRateNeverInjects(t *testing.T) {
	s := NewSeeded(1, 0)
	for i := 0; i < 100; i++ {
		if s.Intercept("x", "y") != nil {
			t.Fatal("rate 0 injected")
		}
	}
}

func TestIsFault(t *testing.T) {
	f := &Fault{Site: "fleet.score", Key: "m0"}
	if !IsFault(f) {
		t.Fatal("bare fault not recognized")
	}
	if !IsFault(fmt.Errorf("wrapping: %w", f)) {
		t.Fatal("wrapped fault not recognized")
	}
	if IsFault(errors.New("organic")) {
		t.Fatal("organic error misclassified")
	}
	if IsFault(nil) {
		t.Fatal("nil misclassified")
	}
}

func TestCancelAfterCountsChecks(t *testing.T) {
	// The N-th Err call must observe cancellation, not before.
	for _, checks := range []int{1, 3, 10} {
		ctx, cancel := CancelAfter(context.Background(), checks)
		for i := 1; i < checks; i++ {
			if err := ctx.Err(); err != nil {
				t.Fatalf("checks=%d: cancelled at check %d: %v", checks, i, err)
			}
		}
		if ctx.Err() == nil {
			t.Fatalf("checks=%d: not cancelled at final check", checks)
		}
		if !errors.Is(ctx.Err(), context.Canceled) {
			t.Fatalf("checks=%d: %v, want Canceled", checks, ctx.Err())
		}
		cancel()
	}
}

func TestCancelAfterZeroIsImmediatelyCancelled(t *testing.T) {
	ctx, cancel := CancelAfter(context.Background(), 0)
	defer cancel()
	select {
	case <-ctx.Done():
	default:
		t.Fatal("checks=0 context not done")
	}
}
