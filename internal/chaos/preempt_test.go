package chaos

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mpmc/internal/fleet"
)

// preemptScenario is a deliberately tight fleet — 4 slots, arrivals twice
// as fast as the shared chaos scenario — so the fleet is actually full
// when the schedule's priority arrivals land and preemption must fire.
func preemptScenario(t *testing.T) *fleet.Scenario {
	t.Helper()
	sc, err := fleet.LoadScenario(filepath.Join("testdata", "scenario_preempt.json"))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestChaosPreemptGolden pins the preemption fault class: the transcript
// for a fixed (scenario, chaos seed, rate, preempt rate) must be
// byte-identical to the checked-in golden at both worker counts — the
// preemption scan, the transactional rollback, and the requeue/backoff
// ledger are all deterministic at any concurrency.
func TestChaosPreemptGolden(t *testing.T) {
	sc := preemptScenario(t)
	golden := filepath.Join("testdata", "chaos_preempt_seed1.json")
	for _, workers := range []int{1, 4} {
		tr, err := NewHarness(sc, Options{Seed: 1, Rate: 0.25, PreemptRate: 0.5, Workers: workers}).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := renderTranscript(t, tr)
		if *update && workers == 1 {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			dump := golden + fmt.Sprintf(".got-w%d.json", workers)
			os.WriteFile(dump, got, 0o644)
			t.Fatalf("workers=%d: transcript differs from golden; wrote %s", workers, dump)
		}
	}
}

// TestChaosPreemptLaws guards what the preemption golden actually pins:
// priority arrivals are scheduled, preemptions really happen, every
// victim is requeued or reported (the conservation/preemption invariant
// runs after every event), and no priority inversion survives
// consecutive fault-free pumps.
func TestChaosPreemptLaws(t *testing.T) {
	sc := preemptScenario(t)
	tr, err := NewHarness(sc, Options{Seed: 1, Rate: 0.25, PreemptRate: 0.5, Workers: 2}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tr.PreemptProcs == 0 {
		t.Fatal("preempt rate 0.5 scheduled no priority arrivals")
	}
	kinds := map[string]int{}
	for _, inj := range tr.Injections {
		kinds[inj.Kind]++
	}
	if kinds["preempt_arrival"] != tr.PreemptProcs {
		t.Errorf("injections list %d preempt_arrivals, schedule has %d", kinds["preempt_arrival"], tr.PreemptProcs)
	}
	if kinds["preempt_commit_error"] == 0 {
		t.Error("no preemption commit fault armed (rollback path not exercised)")
	}
	var preemptions, aborted uint64
	for _, po := range tr.Policies {
		if len(po.Violations) > 0 {
			t.Errorf("policy %s: invariant violations: %v", po.Policy, po.Violations)
		}
		if po.Preemptions != po.PreemptRequeued+po.PreemptDropped {
			t.Errorf("policy %s: %d preemptions != %d requeued + %d dropped",
				po.Policy, po.Preemptions, po.PreemptRequeued, po.PreemptDropped)
		}
		if po.FinalResidents != 0 {
			t.Errorf("policy %s: %d residents leaked past the horizon", po.Policy, po.FinalResidents)
		}
		preemptions += po.Preemptions
		aborted += po.PreemptAborted
	}
	if preemptions == 0 {
		t.Error("no policy realized a single preemption — the class pins nothing")
	}
	if aborted == 0 {
		t.Error("no preemption rollback realized — the commit fault never landed mid-preemption")
	}
}

// TestChaosPreemptDisabledIsInert: PreemptRate 0 must leave the schedule,
// and therefore every pre-existing golden, byte-identical — the fifth
// random stream is only split off when the class is enabled.
func TestChaosPreemptDisabledIsInert(t *testing.T) {
	sc := chaosScenario(t)
	tr, err := NewHarness(sc, Options{Seed: 1, Rate: 0.25, Workers: 2}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tr.PreemptProcs != 0 || tr.PreemptRate != 0 {
		t.Fatalf("disabled run scheduled %d preempt procs (rate %v)", tr.PreemptProcs, tr.PreemptRate)
	}
	for _, inj := range tr.Injections {
		if inj.Kind == "preempt_arrival" || inj.Kind == "preempt_commit_error" {
			t.Fatalf("disabled run scheduled %+v", inj)
		}
	}
	for _, po := range tr.Policies {
		if po.Preemptions+po.PreemptRequeued+po.PreemptDropped+po.PreemptAborted != 0 || po.PreemptPlaced != 0 {
			t.Errorf("policy %s: preemption counters nonzero on a disabled run: %+v", po.Policy, po)
		}
	}
}

func TestHarnessRejectsBadPreemptRate(t *testing.T) {
	sc := chaosScenario(t)
	if _, err := NewHarness(sc, Options{Seed: 1, PreemptRate: -0.1}).Run(context.Background()); err == nil {
		t.Fatal("preempt rate -0.1 accepted")
	}
}
