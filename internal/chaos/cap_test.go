package chaos

// The cap-flip fault class: power-budget flips under chaos, with the
// budget and ledger invariants checked after every event and the
// transcript pinned at two worker counts.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mpmc/internal/fleet"
)

// capScenario is a loaded fleet — arrivals faster than departures on
// three machines — so an engaged budget actually binds and enforcement
// has residents to down-clock or migrate.
func capScenario(t *testing.T) *fleet.Scenario {
	t.Helper()
	sc, err := fleet.LoadScenario(filepath.Join("testdata", "scenario_cap.json"))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// capOpts is the pinned cap-flip configuration: a budget around the
// fleet's loaded draw, so flips alternate between binding hard and
// barely at all.
func capOpts(workers int) Options {
	return Options{Seed: 1, Rate: 0.25, CapRate: 0.5, CapWatts: 26, Workers: workers}
}

// TestChaosCapGolden pins the cap-flip fault class: the transcript for a
// fixed (scenario, chaos seed, rate, cap rate, cap watts) must be
// byte-identical to the checked-in golden at both worker counts — the
// enforcement scan, its transactional application, and the watt ledger
// are all deterministic at any concurrency.
func TestChaosCapGolden(t *testing.T) {
	sc := capScenario(t)
	golden := filepath.Join("testdata", "chaos_cap_seed1.json")
	for _, workers := range []int{1, 4} {
		tr, err := NewHarness(sc, capOpts(workers)).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := renderTranscript(t, tr)
		if *update && workers == 1 {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			dump := golden + fmt.Sprintf(".got-w%d.json", workers)
			os.WriteFile(dump, got, 0o644)
			t.Fatalf("workers=%d: transcript differs from golden; wrote %s", workers, dump)
		}
	}
}

// TestChaosCapLaws guards what the cap golden actually pins: flips are
// scheduled in both directions, at least one engaged budget forces real
// enforcement actions, and no policy run breaks the budget or ledger
// invariants (checked after every event).
func TestChaosCapLaws(t *testing.T) {
	sc := capScenario(t)
	tr, err := NewHarness(sc, capOpts(2)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, inj := range tr.Injections {
		kinds[inj.Kind]++
	}
	if kinds["cap_engage"] == 0 {
		t.Fatal("cap rate 0.5 scheduled no engaging flip")
	}
	if kinds["cap_engage"]+kinds["cap_off"] == 0 {
		t.Fatal("no cap flips scheduled")
	}
	actions := 0
	for _, po := range tr.Policies {
		if len(po.Violations) > 0 {
			t.Errorf("policy %s: invariant violations: %v", po.Policy, po.Violations)
		}
		if po.CapFlips == 0 {
			t.Errorf("policy %s: no cap flips executed", po.Policy)
		}
		actions += po.CapDownclocks + po.CapMigrations
	}
	if actions == 0 {
		t.Error("no policy realized a single enforcement action — the class pins nothing")
	}
}

// TestChaosCapDisabledIsInert: CapRate 0 must leave the schedule, and
// therefore every pre-existing golden, byte-identical — the extra random
// stream is only split off when the class is enabled.
func TestChaosCapDisabledIsInert(t *testing.T) {
	sc := chaosScenario(t)
	tr, err := NewHarness(sc, Options{Seed: 1, Rate: 0.25, Workers: 2}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tr.CapRate != 0 || tr.CapWatts != 0 {
		t.Fatalf("disabled run reports cap rate %v watts %v", tr.CapRate, tr.CapWatts)
	}
	for _, inj := range tr.Injections {
		if inj.Kind == "cap_engage" || inj.Kind == "cap_off" {
			t.Fatalf("disabled run scheduled %+v", inj)
		}
	}
	for _, po := range tr.Policies {
		if po.CapFlips+po.CapDownclocks+po.CapMigrations+po.CapUnsatisfied != 0 {
			t.Errorf("policy %s: cap counters nonzero on a disabled run: %+v", po.Policy, po)
		}
	}
}

func TestHarnessRejectsBadCapOptions(t *testing.T) {
	sc := chaosScenario(t)
	if _, err := NewHarness(sc, Options{Seed: 1, CapRate: 1.5, CapWatts: 10}).Run(context.Background()); err == nil {
		t.Fatal("cap rate 1.5 accepted")
	}
	if _, err := NewHarness(sc, Options{Seed: 1, CapRate: 0.5}).Run(context.Background()); err == nil {
		t.Fatal("cap rate without a budget accepted")
	}
}
