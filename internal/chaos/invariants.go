package chaos

import (
	"context"
	"fmt"
	"math"

	"mpmc/internal/core"
	"mpmc/internal/fleet"
	"mpmc/internal/manager"
	"mpmc/internal/threads"
)

// Violation is one failed invariant check: which guarantee broke and the
// concrete numbers that broke it.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Checker verifies the paper's model guarantees against live scheduler
// state. A zero Checker is ready to use: SolverAuto, tolerance 1e-6.
//
// The invariants, by paper equation:
//   - Eq. 1: every co-run group's equilibrium sizes satisfy ΣS_i = A under
//     contention (each S_i = GMax_i when the appetites cannot fill the
//     cache), with 0 < S_i ≤ min(A, GMax_i) always.
//   - MPA(S) is monotonically non-increasing in S for every resident
//     feature vector (the stack-distance property behind Eq. 6).
//   - Eq. 10: the combination count of every cache group is exactly
//     Π|asg[c]| over its busy cores and divides evenly into per-resident
//     appearances; the fleet-wide expectation term count equals the
//     resident count (fixed under migration — see Terms).
//   - Capacity: no core holds more than MaxPerCore instances, no core
//     index is out of range, and a down node holds nothing.
//   - Conservation: every queue submission is admitted, abandoned,
//     dropped, or still pending — counters and queue depth always balance.
type Checker struct {
	// Solver selects the equilibrium algorithm (SolverAuto by default).
	Solver core.SolverMethod
	// Tol is the relative tolerance for Eq. 1 sums (0 = 1e-6).
	Tol float64
}

func (c *Checker) tol() float64 {
	if c.Tol > 0 {
		return c.Tol
	}
	return 1e-6
}

// CheckFleet runs every invariant against one consistent snapshot of the
// fleet. The returned slice is empty when all checks pass. Queue-counter
// conservation is only meaningful when no mutation is concurrently in
// flight; call it between operations (tests) or at quiescent points.
func (c *Checker) CheckFleet(ctx context.Context, f *fleet.Fleet) []Violation {
	var out []Violation
	for _, ni := range f.Inspect() {
		out = append(out, c.CheckNode(ctx, ni)...)
	}
	reg := f.Registry()
	submitted := reg.CounterValue("fleet_queue_submitted_total")
	admitted := reg.CounterValue("fleet_queue_admitted_total")
	abandoned := reg.CounterValue("fleet_queue_abandoned_total")
	dropped := reg.CounterValue("fleet_queue_dropped_total")
	depth := uint64(f.QueueDepth())
	if submitted != admitted+abandoned+dropped+depth {
		out = append(out, Violation{
			Invariant: "conservation/queue",
			Detail: fmt.Sprintf("submitted %d != admitted %d + abandoned %d + dropped %d + depth %d",
				submitted, admitted, abandoned, dropped, depth),
		})
	}
	// Preemption disposition: every committed preemption's victim is
	// either requeued or reported dropped — never lost silently. Aborted
	// (rolled-back) preemptions count in neither side. All three counters
	// read 0 on fleets that never preempt, so the law is vacuous there.
	preempts := reg.CounterValue("fleet_preempt_total")
	requeued := reg.CounterValue("fleet_preempt_requeued_total")
	vdropped := reg.CounterValue("fleet_preempt_dropped_total")
	if preempts != requeued+vdropped {
		out = append(out, Violation{
			Invariant: "conservation/preemption",
			Detail: fmt.Sprintf("preemptions %d != requeued %d + dropped %d (a victim vanished)",
				preempts, requeued, vdropped),
		})
	}
	// Thread-group member ledger: every spawned member is either placed
	// (its group admitted whole) or faulted (its group rolled back whole).
	// All three counters read 0 on fleets that never place a group, so the
	// law is vacuous there.
	spawned := reg.CounterValue("fleet_group_spawned_members_total")
	gplaced := reg.CounterValue("fleet_group_placed_members_total")
	faulted := reg.CounterValue("fleet_group_faulted_members_total")
	if spawned != gplaced+faulted {
		out = append(out, Violation{
			Invariant: "conservation/group-ledger",
			Detail: fmt.Sprintf("members spawned %d != placed %d + faulted %d (a member vanished)",
				spawned, gplaced, faulted),
		})
	}
	return out
}

// CheckCap verifies the watt-budget invariants at a quiescent point.
// Vacuous on uncapped fleets. Two laws:
//
//   - Budget: the ledger's tracked draw never exceeds the cap — admission
//     is cap-gated and enforcement sheds the rest. Waived while satisfied
//     is false: the last enforcement pass reported that even the floor
//     (every rung at minimum, no migration shedding watts) exceeds the
//     budget, so being over-cap is the reported, not silent, condition.
//   - Ledger: the tracked draw always agrees with a fresh fleet-wide
//     estimate — per-mutation row updates never drift from re-derivation.
func CheckCap(ctx context.Context, f *fleet.Fleet, satisfied bool) []Violation {
	cap := f.PowerCap()
	if cap <= 0 {
		return nil
	}
	var out []Violation
	usage := f.CapUsage()
	if satisfied && usage > cap*(1+1e-9) {
		out = append(out, Violation{
			Invariant: "cap/budget",
			Detail:    fmt.Sprintf("tracked draw %.9g W exceeds the %.9g W budget", usage, cap),
		})
	}
	_, watts, err := f.Totals(ctx)
	if err != nil {
		out = append(out, Violation{
			Invariant: "cap/ledger",
			Detail:    fmt.Sprintf("fresh estimate failed: %v", err),
		})
		return out
	}
	tol := 1e-6 * math.Max(1, usage)
	if math.Abs(watts-usage) > tol {
		out = append(out, Violation{
			Invariant: "cap/ledger",
			Detail:    fmt.Sprintf("ledger %.9g W drifts from fresh estimate %.9g W", usage, watts),
		})
	}
	return out
}

// PriorityInversions returns the queue entries that are currently both
// eligible (backoff served) and strictly outranking some resident on an
// up node — entries a preempting pump should have admitted. An inversion
// is legal transiently: a victim requeued during a pump only becomes
// eligible at the next round. The harness therefore only flags an entry
// that stays inverted, under the same ticket, across two consecutive
// fault-free pumps.
func PriorityInversions(f *fleet.Fleet) []fleet.QueuedEntry {
	minPrio, any := 0, false
	for _, ni := range f.Inspect() {
		if ni.Down {
			continue
		}
		for _, p := range ni.Priorities {
			if !any || p < minPrio {
				minPrio, any = p, true
			}
		}
	}
	if !any {
		return nil
	}
	var out []fleet.QueuedEntry
	for _, q := range f.QueuedInfo() {
		if q.Eligible && q.Priority > minPrio {
			out = append(out, q)
		}
	}
	return out
}

// CheckManager runs the per-machine invariants against one manager
// (name labels the violations).
func (c *Checker) CheckManager(ctx context.Context, name string, mgr *manager.Manager) []Violation {
	return c.CheckNode(ctx, fleet.NodeInspection{
		Name:       name,
		Machine:    mgr.Machine(),
		MaxPerCore: mgr.MaxPerCore(),
		Residents:  mgr.Residents(),
	})
}

// CheckNode runs the per-machine invariants against one inspected node.
func (c *Checker) CheckNode(ctx context.Context, ni fleet.NodeInspection) []Violation {
	var out []Violation
	bad := func(invariant, format string, args ...any) {
		out = append(out, Violation{
			Invariant: invariant,
			Detail:    fmt.Sprintf("node %s: ", ni.Name) + fmt.Sprintf(format, args...),
		})
	}

	if ni.Down && len(ni.Residents) > 0 {
		bad("capacity/down-node-empty", "down but holds %d resident(s)", len(ni.Residents))
		return out
	}

	perCore := make([]int, ni.Machine.NumCores)
	for _, r := range ni.Residents {
		if r.Core < 0 || r.Core >= ni.Machine.NumCores {
			bad("capacity/core-range", "resident %s on core %d of %d", r.Name, r.Core, ni.Machine.NumCores)
			return out
		}
		perCore[r.Core]++
		if r.Feature == nil {
			bad("capacity/feature", "resident %s has no feature vector", r.Name)
			return out
		}
	}
	if ni.MaxPerCore > 0 {
		for cix, n := range perCore {
			if n > ni.MaxPerCore {
				bad("capacity/max-per-core", "core %d holds %d > cap %d", cix, n, ni.MaxPerCore)
			}
		}
	}

	asg := ni.Assignment()
	a := float64(ni.Machine.Assoc)
	for gi, group := range ni.Machine.Groups {
		var busy []int
		for _, cix := range group {
			if len(asg[cix]) > 0 {
				busy = append(busy, cix)
			}
		}
		if len(busy) == 0 {
			continue
		}

		// Eq. 10 accounting: the combination count is the product of the
		// per-core choice counts, and every busy core's choice count must
		// divide it (per-resident appearances are integral).
		want := 1
		for _, cix := range busy {
			want *= len(asg[cix])
		}
		for _, cix := range busy {
			if want%len(asg[cix]) != 0 {
				bad("eq10/appearances", "group %d: %d combinations not divisible by %d choices on core %d",
					gi, want, len(asg[cix]), cix)
			}
		}

		// Eq. 1 over every Eq. 10 combination of this group.
		combo := make([]*core.FeatureVector, len(busy))
		combos := 0
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == len(busy) {
				combos++
				out = append(out, c.checkGroup(ctx, ni.Name, gi, combo, a)...)
				return len(out) < 32 // stop enumerating once clearly broken
			}
			for _, f := range asg[busy[i]] {
				combo[i] = f
				if !rec(i + 1) {
					return false
				}
			}
			return true
		}
		if rec(0) && combos != want {
			bad("eq10/combinations", "group %d: enumerated %d combinations, want %d", gi, combos, want)
		}
	}

	// MPA monotonicity per distinct resident feature vector.
	seen := map[*core.FeatureVector]bool{}
	for _, r := range ni.Residents {
		f := r.Feature
		if seen[f] {
			continue
		}
		seen[f] = true
		prev := math.Inf(1)
		for i := 0; i <= 16; i++ {
			m := f.MPA(a * float64(i) / 16)
			if m > prev+1e-9 {
				bad("mpa/monotone", "feature %s: MPA rises to %.9g at S=%.3g", f.Name, m, a*float64(i)/16)
				break
			}
			prev = m
		}
	}
	return out
}

// checkGroup verifies Eq. 1 for one co-run combination sharing an A-way
// cache.
func (c *Checker) checkGroup(ctx context.Context, node string, gi int, combo []*core.FeatureVector, a float64) []Violation {
	var out []Violation
	bad := func(invariant, format string, args ...any) {
		out = append(out, Violation{
			Invariant: invariant,
			Detail:    fmt.Sprintf("node %s group %d: ", node, gi) + fmt.Sprintf(format, args...),
		})
	}
	preds, err := core.PredictGroupContext(ctx, combo, int(a), c.Solver)
	if err != nil {
		bad("eq1/solve", "equilibrium solve failed: %v", err)
		return out
	}
	tol := c.tol() * a
	sum, appetite := 0.0, 0.0
	for i, p := range preds {
		lim := math.Min(a, combo[i].GMax())
		if p.S <= 0 || p.S > lim+tol {
			bad("eq1/bounds", "process %d (%s): S=%.9g outside (0, %.9g]", i, combo[i].Name, p.S, lim)
		}
		sum += p.S
		appetite += combo[i].GMax()
		out = append(out, c.checkBundle(node, gi, combo[i], p.S, tol)...)
	}
	switch {
	case len(preds) == 1:
		if math.Abs(sum-math.Min(a, combo[0].GMax())) > tol {
			bad("eq1/solo", "solo S=%.9g, want min(A, GMax)=%.9g", sum, math.Min(a, combo[0].GMax()))
		}
	case appetite <= a:
		if math.Abs(sum-appetite) > tol {
			bad("eq1/uncontended", "ΣS=%.9g, want ΣGMax=%.9g", sum, appetite)
		}
	default:
		if math.Abs(sum-a) > tol {
			bad("eq1/capacity", "ΣS=%.9g, want A=%g", sum, a)
		}
	}
	return out
}

// checkBundle verifies the thread-group contract for one resident whose
// name parses as a bundle (internal/threads); legacy residents pass
// through untouched. Three laws:
//
//   - The feature's Members width matches the local member count encoded
//     in the bundle name (otherwise per-group Eq. 1 terms are weighted
//     wrong).
//   - The coherence term is exactly zero when every sharer shares one
//     cache (remote = 0).
//   - Σ member occupancy = group occupancy: splitting the bundle's
//     solved Eq. 1 size S into the merged shared footprint plus the
//     per-member private footprints reconstructs S.
func (c *Checker) checkBundle(node string, gi int, f *core.FeatureVector, s, tol float64) []Violation {
	g, local, remote, ok := threads.ParseBundleName(f.Name)
	if !ok {
		return nil
	}
	var out []Violation
	bad := func(invariant, format string, args ...any) {
		out = append(out, Violation{
			Invariant: invariant,
			Detail:    fmt.Sprintf("node %s group %d bundle %s: ", node, gi, f.Name) + fmt.Sprintf(format, args...),
		})
	}
	if f.Members != local && !(local == 1 && f.Members <= 1) {
		bad("group/members", "feature Members=%d, name encodes local=%d", f.Members, local)
	}
	if remote == 0 {
		if coh := threads.Coherence(g.SharedFrac, g.WriteFrac, remote, g.Threads); coh != 0 {
			bad("group/coherence-colocated", "co-located sharers pay coherence %v, want 0", coh)
		}
	}
	shared, private := threads.SplitOccupancy(s, local, g.SharedFrac)
	got := shared
	for _, p := range private {
		if p < -tol {
			bad("group/occupancy-split", "negative private footprint %v", p)
		}
		got += p
	}
	if math.Abs(got-s) > tol {
		bad("group/occupancy-split", "shared %v + Σprivate = %v, want group S=%v", shared, got, s)
	}
	return out
}

// Terms counts the fleet-wide Eq. 10 expectation terms: one per resident.
// Migration moves terms between machines but never creates or destroys
// one, so this count is the fixedness invariant rebalance tests assert.
func Terms(ins []fleet.NodeInspection) int {
	n := 0
	for _, ni := range ins {
		n += len(ni.Residents)
	}
	return n
}

// Combinations returns one node's total Eq. 10 combination count across
// its cache groups (0 when idle).
func Combinations(ni fleet.NodeInspection) int {
	asg := ni.Assignment()
	total := 0
	for _, group := range ni.Machine.Groups {
		prod, busy := 1, false
		for _, cix := range group {
			if len(asg[cix]) > 0 {
				busy = true
				prod *= len(asg[cix])
			}
		}
		if busy {
			total += prod
		}
	}
	return total
}
