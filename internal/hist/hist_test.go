package hist

import (
	"math"
	"testing"
	"testing/quick"

	"mpmc/internal/xrand"
)

func TestNewNormalizes(t *testing.T) {
	h, err := New([]float64{2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.P(1)-0.25) > 1e-12 || math.Abs(h.P(2)-0.25) > 1e-12 {
		t.Fatalf("probabilities %v %v", h.P(1), h.P(2))
	}
	if math.Abs(h.Overflow()-0.5) > 1e-12 {
		t.Fatalf("overflow %v", h.Overflow())
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New([]float64{-1}, 0); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := New([]float64{0}, 0); err == nil {
		t.Fatal("zero mass accepted")
	}
	if _, err := New([]float64{math.NaN()}, 0); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := New([]float64{1}, math.Inf(1)); err == nil {
		t.Fatal("Inf overflow accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(nil, 0)
}

func TestPOutOfRange(t *testing.T) {
	h := MustNew([]float64{1, 1}, 0)
	if h.P(0) != 0 || h.P(3) != 0 || h.P(-1) != 0 {
		t.Fatal("out-of-range P should be 0")
	}
}

func TestMPAIntegerPoints(t *testing.T) {
	// h(1)=0.5, h(2)=0.3, overflow=0.2
	h := MustNew([]float64{0.5, 0.3}, 0.2)
	cases := []struct {
		s    float64
		want float64
	}{
		{0, 1},
		{1, 0.5},
		{2, 0.2},
		{3, 0.2},
		{100, 0.2},
	}
	for _, c := range cases {
		if got := h.MPA(c.s); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("MPA(%v) = %v want %v", c.s, got, c.want)
		}
	}
}

func TestMPAInterpolation(t *testing.T) {
	h := MustNew([]float64{0.5, 0.3}, 0.2)
	got := h.MPA(0.5)
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("MPA(0.5) = %v want 0.75", got)
	}
	got = h.MPA(1.5)
	if math.Abs(got-0.35) > 1e-12 {
		t.Fatalf("MPA(1.5) = %v want 0.35", got)
	}
}

func TestMPANonIncreasingProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(32)
		w := make([]float64, n)
		for i := range w {
			w[i] = r.Float64()
		}
		h, err := New(w, r.Float64())
		if err != nil {
			return true // all-zero draw; nothing to check
		}
		prev := h.MPA(0)
		if prev != 1 {
			return false
		}
		for s := 0.0; s <= float64(n)+2; s += 0.25 {
			m := h.MPA(s)
			if m > prev+1e-12 || m < h.Overflow()-1e-12 {
				return false
			}
			prev = m
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMPACurve(t *testing.T) {
	h := MustNew([]float64{0.5, 0.3}, 0.2)
	c := h.MPACurve(3)
	want := []float64{1, 0.5, 0.2, 0.2}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Fatalf("curve[%d] = %v want %v", i, c[i], want[i])
		}
	}
}

func TestFromMPACurveRoundTrip(t *testing.T) {
	// Histogram → MPA curve → histogram must be the identity (within
	// floating point) when the curve is exact.
	orig := MustNew([]float64{0.4, 0.25, 0.15, 0.05}, 0.15)
	curve := orig.MPACurve(4)
	rec, err := FromMPACurve(curve)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= 4; d++ {
		if math.Abs(rec.P(d)-orig.P(d)) > 1e-12 {
			t.Fatalf("P(%d): %v want %v", d, rec.P(d), orig.P(d))
		}
	}
	if math.Abs(rec.Overflow()-orig.Overflow()) > 1e-12 {
		t.Fatalf("overflow %v want %v", rec.Overflow(), orig.Overflow())
	}
}

func TestFromMPACurveClampsNoise(t *testing.T) {
	// A noisy, locally increasing MPA curve must not produce negative mass.
	curve := []float64{1, 0.5, 0.52, 0.2} // 0.5→0.52 is noise
	h, err := FromMPACurve(curve)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= h.MaxDistance(); d++ {
		if h.P(d) < 0 {
			t.Fatalf("negative mass at %d", d)
		}
	}
	// Distribution still normalized.
	total := h.Overflow()
	for d := 1; d <= h.MaxDistance(); d++ {
		total += h.P(d)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("total %v", total)
	}
}

func TestFromMPACurveRejects(t *testing.T) {
	if _, err := FromMPACurve([]float64{1}); err == nil {
		t.Fatal("short curve accepted")
	}
	if _, err := FromMPACurve([]float64{1, -0.1}); err == nil {
		t.Fatal("negative MPA accepted")
	}
	if _, err := FromMPACurve([]float64{1, 1.5}); err == nil {
		t.Fatal("MPA > 1 accepted")
	}
	if _, err := FromMPACurve([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Random histogram → curve → histogram round-trips for arbitrary masses.
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(16)
		w := make([]float64, n)
		for i := range w {
			w[i] = r.Float64()
		}
		h, err := New(w, r.Float64()*0.5)
		if err != nil {
			return true
		}
		rec, err := FromMPACurve(h.MPACurve(n))
		if err != nil {
			return false
		}
		for d := 1; d <= n; d++ {
			if math.Abs(rec.P(d)-h.P(d)) > 1e-9 {
				return false
			}
		}
		return math.Abs(rec.Overflow()-h.Overflow()) < 1e-9
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndClone(t *testing.T) {
	h := MustNew([]float64{0.5, 0.5}, 0)
	if math.Abs(h.Mean()-1.5) > 1e-12 {
		t.Fatalf("mean %v", h.Mean())
	}
	c := h.Clone()
	c.p[0] = 0
	if h.P(1) != 0.5 {
		t.Fatal("clone aliases parent")
	}
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}
