package hist

import (
	"math"
	"testing"
)

// FuzzFromMPACurve checks that histogram reconstruction never produces an
// invalid distribution for any byte-derived MPA curve: either it rejects
// the curve or the result is normalized with a monotone MPA.
func FuzzFromMPACurve(f *testing.F) {
	f.Add([]byte{255, 128, 64, 32})
	f.Add([]byte{255, 255})
	f.Add([]byte{255, 0})
	f.Add([]byte{255, 200, 210, 40}) // non-monotone (noise)
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 || len(raw) > 64 {
			t.Skip()
		}
		curve := make([]float64, len(raw))
		curve[0] = 1
		for i := 1; i < len(raw); i++ {
			curve[i] = float64(raw[i]) / 255
		}
		h, err := FromMPACurve(curve)
		if err != nil {
			return // rejection is fine
		}
		total := h.Overflow()
		for d := 1; d <= h.MaxDistance(); d++ {
			p := h.P(d)
			if p < 0 || math.IsNaN(p) {
				t.Fatalf("invalid mass %v at distance %d", p, d)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("total mass %v", total)
		}
		prev := h.MPA(0)
		for s := 0.0; s <= float64(h.MaxDistance())+1; s += 0.5 {
			m := h.MPA(s)
			if m > prev+1e-12 {
				t.Fatalf("MPA increased at %v", s)
			}
			prev = m
		}
	})
}
