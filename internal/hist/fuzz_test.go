package hist

import (
	"math"
	"sync"
	"testing"
)

// FuzzFromMPACurve checks that histogram reconstruction never produces an
// invalid distribution for any byte-derived MPA curve: either it rejects
// the curve or the result is normalized with a monotone MPA.
func FuzzFromMPACurve(f *testing.F) {
	f.Add([]byte{255, 128, 64, 32})
	f.Add([]byte{255, 255})
	f.Add([]byte{255, 0})
	f.Add([]byte{255, 200, 210, 40}) // non-monotone (noise)
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 || len(raw) > 64 {
			t.Skip()
		}
		curve := make([]float64, len(raw))
		curve[0] = 1
		for i := 1; i < len(raw); i++ {
			curve[i] = float64(raw[i]) / 255
		}
		h, err := FromMPACurve(curve)
		if err != nil {
			return // rejection is fine
		}
		total := h.Overflow()
		for d := 1; d <= h.MaxDistance(); d++ {
			p := h.P(d)
			if p < 0 || math.IsNaN(p) {
				t.Fatalf("invalid mass %v at distance %d", p, d)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("total mass %v", total)
		}
		prev := h.MPA(0)
		for s := 0.0; s <= float64(h.MaxDistance())+1; s += 0.5 {
			m := h.MPA(s)
			if m > prev+1e-12 {
				t.Fatalf("MPA increased at %v", s)
			}
			prev = m
		}
	})
}

// FuzzConcurrentMPA shares one reconstructed histogram across goroutines
// that read it through every accessor simultaneously. Run under -race it
// pins the immutability contract the parallel profiling sweeps depend on:
// concurrent readers must see identical values and no data race (this is
// what forced tail sums to be precomputed in the constructor rather than
// cached lazily on first read).
func FuzzConcurrentMPA(f *testing.F) {
	f.Add([]byte{255, 128, 64, 32})
	f.Add([]byte{255, 200, 210, 40})
	f.Add([]byte{255, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 || len(raw) > 64 {
			t.Skip()
		}
		curve := make([]float64, len(raw))
		curve[0] = 1
		for i := 1; i < len(raw); i++ {
			curve[i] = float64(raw[i]) / 255
		}
		h, err := FromMPACurve(curve)
		if err != nil {
			return
		}
		// Reference values read before any sharing.
		d := h.MaxDistance()
		want := make([]float64, 0, 2*d+4)
		for s := 0.0; s <= float64(d)+1; s += 0.5 {
			want = append(want, h.MPA(s))
		}
		wantMean, wantOver := h.Mean(), h.Overflow()

		const readers = 8
		var wg sync.WaitGroup
		errs := make(chan string, readers)
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				i := 0
				for s := 0.0; s <= float64(d)+1; s += 0.5 {
					if m := h.MPA(s); m != want[i] {
						errs <- "MPA diverged under concurrency"
						return
					}
					i++
				}
				if h.Mean() != wantMean || h.Overflow() != wantOver {
					errs <- "Mean/Overflow diverged under concurrency"
					return
				}
				for dd := 1; dd <= d; dd++ {
					_ = h.P(dd)
				}
				_ = h.Clone().MPA(float64(d) / 2)
			}()
		}
		wg.Wait()
		close(errs)
		for msg := range errs {
			t.Fatal(msg)
		}
	})
}
