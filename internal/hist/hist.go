// Package hist implements reuse-distance histograms, the central data
// structure of the paper's performance model (Section 3).
//
// The reuse distance of a cache access is the number of distinct cache
// lines in the same set touched between two consecutive accesses to the
// same line. For a process holding an effective cache size of S ways in a
// set under LRU, an access hits exactly when its reuse distance is ≤ S, so
// the misses-per-access curve is the tail mass of the histogram (Eq. 2):
//
//	MPA(S) = Σ_{d>S} h(d)
//
// Distances are 1-based: distance 1 means "the line touched most recently".
// Mass at distances beyond the tracked maximum — including compulsory
// misses to never-seen lines — lives in an overflow (∞) bucket and always
// misses.
package hist

import (
	"fmt"
	"math"
)

// Histogram is a probability distribution over reuse distances 1..D plus an
// overflow bucket. Probabilities are normalized to sum to 1.
//
// A histogram is immutable after construction, so a single instance may be
// read from any number of goroutines concurrently — the equilibrium solver
// and the parallel profiling sweeps rely on this. The tail sums MPA needs
// are therefore precomputed eagerly in the constructors rather than cached
// lazily on first use.
type Histogram struct {
	p        []float64 // p[d-1] = P(distance == d), d = 1..len(p)
	overflow float64   // P(distance > len(p)), includes compulsory misses
	tail     []float64 // tail[s] = Σ_{d>s} h(d) for s = 0..len(p) (Eq. 2)
}

// New builds a histogram from per-distance weights (weights[d-1] is the
// weight of distance d) and an overflow weight. Weights are normalized;
// they must be non-negative, finite, and not all zero.
func New(weights []float64, overflow float64) (*Histogram, error) {
	total := overflow
	if overflow < 0 || math.IsNaN(overflow) || math.IsInf(overflow, 0) {
		return nil, fmt.Errorf("hist: invalid overflow weight %v", overflow)
	}
	for d, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("hist: invalid weight %v at distance %d", w, d+1)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("hist: zero total mass")
	}
	h := &Histogram{
		p:        make([]float64, len(weights)),
		overflow: overflow / total,
	}
	for i, w := range weights {
		h.p[i] = w / total
	}
	h.computeTail()
	return h, nil
}

// computeTail fills the Eq. 2 tail-mass table. Each entry is summed in
// ascending distance order — the exact accumulation order the former
// on-demand loop used — so MPA values are bit-identical to what a fresh
// summation would produce.
func (h *Histogram) computeTail() {
	h.tail = make([]float64, len(h.p)+1)
	for s := 0; s <= len(h.p); s++ {
		m := h.overflow
		for d := s + 1; d <= len(h.p); d++ {
			m += h.p[d-1]
		}
		h.tail[s] = m
	}
}

// MustNew is New but panics on error; for static workload definitions.
func MustNew(weights []float64, overflow float64) *Histogram {
	h, err := New(weights, overflow)
	if err != nil {
		panic(err)
	}
	return h
}

// MaxDistance returns the largest explicitly tracked distance D.
func (h *Histogram) MaxDistance() int { return len(h.p) }

// P returns P(distance == d) for d in 1..MaxDistance; 0 otherwise.
func (h *Histogram) P(d int) float64 {
	if d < 1 || d > len(h.p) {
		return 0
	}
	return h.p[d-1]
}

// Overflow returns the probability mass beyond MaxDistance (always-miss).
func (h *Histogram) Overflow() float64 { return h.overflow }

// MPA returns the miss probability for an effective cache size of s ways
// (Eq. 2). Integer s counts exact tail mass; fractional s interpolates
// linearly between the neighbouring integers so that the equilibrium
// system stays continuous for Newton–Raphson. MPA(0) = 1 (an empty cache
// misses every access); MPA is non-increasing and ≥ Overflow().
func (h *Histogram) MPA(s float64) float64 {
	if s <= 0 {
		return 1
	}
	d := len(h.p)
	if s >= float64(d) {
		return h.overflow
	}
	lo := int(math.Floor(s))
	frac := s - float64(lo)
	mLo := h.mpaInt(lo)
	if frac == 0 {
		return mLo
	}
	mHi := h.mpaInt(lo + 1)
	return mLo + frac*(mHi-mLo)
}

// mpaInt returns Σ_{d>s} h(d) for integer s in 0..len(p).
func (h *Histogram) mpaInt(s int) float64 { return h.tail[s] }

// MPACurve returns MPA evaluated at s = 0..maxS (inclusive), a convenience
// for profiling comparisons and plotting.
func (h *Histogram) MPACurve(maxS int) []float64 {
	out := make([]float64, maxS+1)
	for s := 0; s <= maxS; s++ {
		out[s] = h.MPA(float64(s))
	}
	return out
}

// Mean returns the expected reuse distance counting overflow mass at
// penalty distance MaxDistance+1 (a lower bound on the true mean).
func (h *Histogram) Mean() float64 {
	m := h.overflow * float64(len(h.p)+1)
	for d, p := range h.p {
		m += p * float64(d+1)
	}
	return m
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{p: make([]float64, len(h.p)), overflow: h.overflow}
	copy(c.p, h.p)
	c.computeTail()
	return c
}

// FromMPACurve reconstructs a histogram from measured MPA values, the
// inversion the automated profiling procedure uses (Eq. 8):
//
//	h(d) ≈ MPA(d−1) − MPA(d)
//
// mpa[s] must be the measured misses-per-access with an effective cache
// size of s ways, for s = 0..A (so len(mpa) == A+1); mpa[0] is 1 by
// definition. The residual tail MPA(A) becomes the overflow bucket.
// Non-monotonicity from measurement noise is clamped to zero mass.
func FromMPACurve(mpa []float64) (*Histogram, error) {
	if len(mpa) < 2 {
		return nil, fmt.Errorf("hist: MPA curve needs at least 2 points, got %d", len(mpa))
	}
	for i, v := range mpa {
		if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
			return nil, fmt.Errorf("hist: MPA[%d] = %v outside [0,1]", i, v)
		}
	}
	a := len(mpa) - 1
	weights := make([]float64, a)
	for d := 1; d <= a; d++ {
		w := mpa[d-1] - mpa[d]
		if w < 0 {
			w = 0 // measurement noise; MPA must be non-increasing
		}
		weights[d-1] = w
	}
	overflow := mpa[a]
	if overflow < 0 {
		overflow = 0
	}
	return New(weights, overflow)
}

// String renders the histogram compactly for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{D=%d overflow=%.4f mean=%.2f}", len(h.p), h.overflow, h.Mean())
}
