package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -100} {
		if got := Workers(n); got != want {
			t.Fatalf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16, 0} {
		const n = 100
		var counts [n]int32
		err := ForEach(context.Background(), w, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	// Zero items: no calls, no error, even with a nil-hostile fn.
	called := false
	if err := ForEach(context.Background(), 4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n=0")
	}
	if err := ForEach(context.Background(), 4, -3, func(int) error { called = true; return nil }); err != nil || called {
		t.Fatalf("n<0: err=%v called=%v", err, called)
	}
	// Single item runs exactly once regardless of worker count.
	runs := 0
	if err := ForEach(context.Background(), 8, 1, func(i int) error {
		runs++
		if i != 0 {
			t.Fatalf("index %d", i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("single item ran %d times", runs)
	}
}

func TestForEachFirstErrorInSerialOrder(t *testing.T) {
	// Several tasks fail; the reported error must be the lowest index —
	// what the serial loop would have returned — at every worker count.
	fail := map[int]bool{3: true, 7: true, 40: true}
	for _, w := range []int{1, 2, 4, 16} {
		err := ForEach(context.Background(), w, 50, func(i int) error {
			if fail[i] {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: got %v, want task 3's error", w, err)
		}
	}
}

func TestForEachStopsSchedulingAfterError(t *testing.T) {
	// After index 0 fails, a 2-worker pool must not start all 1000
	// remaining tasks. (It may finish tasks already claimed.)
	var started int32
	err := ForEach(context.Background(), 2, 1000, func(i int) error {
		atomic.AddInt32(&started, 1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt32(&started); n > 100 {
		t.Fatalf("%d tasks started after early failure", n)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	err := ForEach(ctx, 2, 1000, func(i int) error {
		if atomic.AddInt32(&started, 1) == 5 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&started); n > 100 {
		t.Fatalf("%d tasks started after cancellation", n)
	}
	// A pre-cancelled context on the serial path too.
	if err := ForEach(ctx, 1, 10, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial pre-cancelled: %v", err)
	}
}

func TestForEachTaskErrorBeatsCancellation(t *testing.T) {
	// When a task fails and the context is cancelled, the task error wins:
	// that is what the serial loop reports.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEach(ctx, 4, 100, func(i int) error {
		if i == 2 {
			cancel()
			return errors.New("task error")
		}
		return nil
	})
	if err == nil || err.Error() != "task error" {
		t.Fatalf("err = %v, want the task error", err)
	}
}

func TestForEachPanicBecomesError(t *testing.T) {
	for _, w := range []int{1, 4} {
		err := ForEach(context.Background(), w, 10, func(i int) error {
			if i == 4 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic not surfaced", w)
		}
		if !strings.Contains(err.Error(), "task 4 panicked") || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("workers=%d: panic error %q lacks task id or value", w, err)
		}
	}
}

func TestMapCollectsByIndex(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		got, err := Map(context.Background(), w, 50, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", w, i, v)
			}
		}
	}
}

func TestMapContextCancellation(t *testing.T) {
	// The profiling sweep and training collection fan out through Map;
	// a cancelled request must surface ctx's error and no partial slice.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := Map(ctx, 4, 100, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got != nil {
		t.Fatalf("cancelled Map returned results %v", got)
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	got, err := Map(context.Background(), 4, 10, func(i int) (int, error) {
		if i == 6 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || got != nil {
		t.Fatalf("got %v, err %v", got, err)
	}
}

func TestSplitSeedDeterministicAndDistinct(t *testing.T) {
	const base = 42
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := SplitSeed(base, i)
		if s2 := SplitSeed(base, i); s2 != s {
			t.Fatalf("SplitSeed(%d, %d) unstable: %d vs %d", base, i, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("tasks %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("different bases collide at task 0")
	}
}

func TestSplitSeedMatchesStreamOutputs(t *testing.T) {
	// The documented identity: SplitSeed(base, i) is the (i+1)-th output
	// of the SplitMix64 stream seeded with base.
	r := SplitRand(0, 0)
	_ = r // SplitRand is just a seeded generator; its stream must start at the split seed
	stream := splitStream(97, 16)
	for i, want := range stream {
		if got := SplitSeed(97, i); got != want {
			t.Fatalf("SplitSeed(97, %d) = %d, want stream output %d", i, got, want)
		}
	}
}

func splitStream(base uint64, n int) []uint64 {
	r := newStream(base)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r()
	}
	return out
}

// newStream re-implements the xrand SplitMix64 stream independently so the
// jump-ahead identity is checked against first principles.
func newStream(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

func TestForEachParallelismIsBounded(t *testing.T) {
	var cur, peak int32
	err := ForEach(context.Background(), 3, 64, func(int) error {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt32(&peak); p > 3 {
		t.Fatalf("observed %d concurrent tasks with workers=3", p)
	}
}
