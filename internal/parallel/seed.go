package parallel

import "mpmc/internal/xrand"

// goldenGamma is SplitMix64's stream increment (see internal/xrand): the
// state distance between consecutive outputs of one generator.
const goldenGamma = 0x9e3779b97f4a7c15

// SplitSeed derives the RNG seed of sub-task `task` from a base seed.
//
// xrand's SplitMix64 generator is counter-based — output i of the stream
// seeded with base is the finalizer applied to base + (i+1)·gamma — so the
// i-th task's seed can be computed in O(1) as the (i+1)-th output of
// xrand.New(base), without advancing any shared generator. Each task
// therefore owns a decorrelated stream that depends only on (base, task),
// never on execution order or worker count: profiling sweep run i, or
// experiment co-run i, draws identical randomness at Workers=1 and
// Workers=64.
//
// This replaces the sequential-state idiom (a shared `seed++` or a
// generator handed from task to task) everywhere work fans out.
func SplitSeed(base uint64, task int) uint64 {
	return xrand.New(base + uint64(task)*goldenGamma).Uint64()
}

// SplitRand returns a generator seeded with SplitSeed(base, task): the
// per-task RNG stream for index-addressed work.
func SplitRand(base uint64, task int) *xrand.Rand {
	return xrand.New(SplitSeed(base, task))
}
