// Package parallel is the deterministic fan-out engine for the profiling
// sweeps and the experiment harness.
//
// Both workloads are embarrassingly parallel — the Section 3.4 profiling
// procedure is O(A) independent stressmark co-runs per process, and every
// experiment driver measures a set of independent simulated runs — but the
// reproduction's results must stay bit-identical whether those runs execute
// on one goroutine or sixteen. The package therefore enforces a contract
// rather than just offering a pool:
//
//   - Work is identified by index. Task i receives only i; anything else it
//     needs (seeds, specs, options) must be a pure function of i, so no
//     task can observe scheduling order.
//   - Randomness is split, not shared. A task deriving its RNG stream via
//     SplitSeed(base, i) gets the same stream at any worker count; handing
//     one sequential *xrand.Rand across tasks is exactly the sequential
//     state this package exists to eliminate.
//   - Results land in per-index slots (Map) and are reduced serially by
//     the caller, so floating-point accumulation order never changes.
//   - Errors match the serial loop: the error returned is the one the
//     equivalent `for` loop would have hit first.
//
// Under that contract, parallel execution at any worker count is
// observationally identical to the serial loop — the property the
// equivalence tests in internal/core and internal/exp pin down with golden
// files.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Workers resolves a requested worker count: n > 0 is taken as-is, any
// other value selects runtime.GOMAXPROCS(0). It is the shared convention
// behind every `-workers` flag and Workers option in the repository.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most Workers(workers)
// concurrent goroutines and returns the first error in serial order.
//
// Indices are claimed in ascending order. After any task fails, no new
// index is started; tasks already running are allowed to finish. Because
// every index below a failed one has necessarily been started, the lowest
// failed index — the one the serial loop would have reported — is always
// observed, and its error is the one returned.
//
// A cancelled ctx stops new indices from starting; ctx.Err() is returned
// only when no task error occurred. A panic in fn is recovered and
// surfaced as an error naming the index (a worker pool must not let one
// bad run kill the whole sweep's process).
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		// Serial path: byte-for-byte the loop the call sites replaced.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		next     int
		failIdx  = n   // lowest failed index so far
		failErr  error // its error
		canceled bool
	)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if failErr != nil || canceled || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if ctx.Err() != nil {
					mu.Lock()
					canceled = true
					mu.Unlock()
					return
				}
				if err := run(fn, i); err != nil {
					mu.Lock()
					if i < failIdx {
						failIdx, failErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		return failErr
	}
	if canceled {
		return ctx.Err()
	}
	return nil
}

// Map runs fn over [0, n) under the ForEach contract and collects the
// results by index, so the output slice is independent of scheduling. On
// error the partial results are discarded and the serial-order first error
// is returned.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// run invokes fn(i), converting a panic into an error that names the task.
func run(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: task %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}
