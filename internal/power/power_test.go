package power

import (
	"math"
	"testing"

	"mpmc/internal/hpc"
)

func testParams() OracleParams {
	return OracleParams{
		CoreIdle: 8,
		Uncore:   10,
		L1Ref:    1e-5,
		L2Ref:    2e-4,
		L2Miss:   -3e-4,
		Branch:   1e-5,
		FPOp:     8e-6,
		NoiseStd: 0,
	}
}

func TestCorePowerLinearPart(t *testing.T) {
	o := NewOracle(testParams(), 1)
	r := hpc.Rates{L1RPS: 1e5, L2RPS: 1e4, L2MPS: 5e3, BRPS: 2e4, FPPS: 1e4}
	want := 8 + 1e-5*1e5 + 2e-4*1e4 + -3e-4*5e3 + 1e-5*2e4 + 8e-6*1e4
	if got := o.CorePower(r); math.Abs(got-want) > 1e-9 {
		t.Fatalf("core power %v want %v", got, want)
	}
}

func TestIdleCorePower(t *testing.T) {
	o := NewOracle(testParams(), 1)
	if got := o.CorePower(hpc.Rates{}); got != 8 {
		t.Fatalf("idle core power %v want 8", got)
	}
}

func TestL2MissReducesPower(t *testing.T) {
	// The paper's observation: more misses → more stall → less power.
	o := NewOracle(testParams(), 1)
	base := o.CorePower(hpc.Rates{L1RPS: 1e5, L2RPS: 1e4})
	missy := o.CorePower(hpc.Rates{L1RPS: 1e5, L2RPS: 1e4, L2MPS: 8e3})
	if missy >= base {
		t.Fatalf("misses should reduce power: %v vs %v", missy, base)
	}
}

func TestProcessorPowerSumsCoresAndUncore(t *testing.T) {
	o := NewOracle(testParams(), 1)
	got := o.ProcessorPower([]hpc.Rates{{}, {}, {}, {}})
	if math.Abs(got-(10+4*8)) > 1e-9 {
		t.Fatalf("idle processor power %v want 42", got)
	}
}

func TestSaturationIsSubLinear(t *testing.T) {
	p := testParams()
	p.SatL1 = 2e5
	o := NewOracle(p, 1)
	low := o.CorePower(hpc.Rates{L1RPS: 1e5}) - p.CoreIdle
	high := o.CorePower(hpc.Rates{L1RPS: 2e5}) - p.CoreIdle
	if high >= 2*low {
		t.Fatalf("saturating term should be sub-linear: %v vs 2×%v", high, low)
	}
	// At the saturation knee the contribution is 2/3 of linear
	// (x/(1+x/(2k)) at x=k gives (2/3)·slope·k).
	atKnee := o.CorePower(hpc.Rates{L1RPS: 2e5}) - p.CoreIdle
	linear := p.L1Ref * 2e5
	if math.Abs(atKnee-linear*2.0/3.0) > 1e-9 {
		t.Fatalf("knee value %v want %v", atKnee, linear*2.0/3.0)
	}
}

func TestNoiseStatistics(t *testing.T) {
	p := testParams()
	p.NoiseStd = 0.5
	o := NewOracle(p, 7)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := o.CorePower(hpc.Rates{L1RPS: 1e5})
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	want := 8 + 1e-5*1e5
	if math.Abs(mean-want) > 0.02 {
		t.Fatalf("noisy mean %v want %v", mean, want)
	}
	if math.Abs(std-0.5) > 0.03 {
		t.Fatalf("noise std %v want 0.5", std)
	}
}

func TestPowerNeverNegative(t *testing.T) {
	p := testParams()
	p.L2Miss = -1 // absurdly strong negative coefficient
	o := NewOracle(p, 3)
	if got := o.CorePower(hpc.Rates{L2MPS: 1e6}); got < 0 {
		t.Fatalf("negative power %v", got)
	}
}

func TestSensorUnbiasedAndConverts(t *testing.T) {
	s := NewSensor(DefaultSensor(), 11)
	const truePower = 54.0 // watts → 5 A on the rail
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += s.MeasureWindow(truePower, 0.03)
	}
	mean := sum / n
	if math.Abs(mean-truePower) > 0.05 {
		t.Fatalf("sensor biased: mean %v want %v", mean, truePower)
	}
}

func TestSensorNoiseShrinksWithWindow(t *testing.T) {
	sp := DefaultSensor()
	sp.CurrentLSB = 0 // isolate the noise path
	measureStd := func(dt float64) float64 {
		s := NewSensor(sp, 13)
		var w []float64
		for i := 0; i < 3000; i++ {
			w = append(w, s.MeasureWindow(54, dt))
		}
		m := 0.0
		for _, v := range w {
			m += v
		}
		m /= float64(len(w))
		v := 0.0
		for _, x := range w {
			v += (x - m) * (x - m)
		}
		return math.Sqrt(v / float64(len(w)))
	}
	short := measureStd(0.001)
	long := measureStd(0.1)
	if long >= short/3 {
		t.Fatalf("longer windows should average noise down: %v vs %v", long, short)
	}
}

func TestSensorRegulatorConversion(t *testing.T) {
	// With zero noise and no quantization the sensor must return exactly
	// 10.8 · I where I = P / 10.8, i.e. the identity.
	s := NewSensor(SensorParams{SampleRate: 10000}, 1)
	if got := s.MeasureWindow(54, 0.03); math.Abs(got-54) > 1e-12 {
		t.Fatalf("conversion %v want 54", got)
	}
}

func TestSensorPanicsOnBadWindow(t *testing.T) {
	s := NewSensor(DefaultSensor(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.MeasureWindow(10, 0)
}

func TestTraceMean(t *testing.T) {
	tr := Trace{{0, 10}, {1, 20}, {2, 30}}
	if tr.Mean() != 20 {
		t.Fatalf("trace mean %v", tr.Mean())
	}
	if (Trace{}).Mean() != 0 {
		t.Fatal("empty trace mean")
	}
}

func TestOracleDeterministicPerSeed(t *testing.T) {
	p := testParams()
	p.NoiseStd = 0.3
	a := NewOracle(p, 99)
	b := NewOracle(p, 99)
	for i := 0; i < 100; i++ {
		r := hpc.Rates{L1RPS: float64(i) * 1e3}
		if a.CorePower(r) != b.CorePower(r) {
			t.Fatal("oracle not deterministic for equal seeds")
		}
	}
}

func TestWanderIsSlowAndBounded(t *testing.T) {
	p := testParams()
	p.WanderStd = 1.0
	p.WanderTau = 20
	o := NewOracle(p, 5)
	idle := []hpc.Rates{{}}
	base := 10.0 + 8.0 // uncore + 1 core idle
	// Collect the wander by subtracting the deterministic part.
	var w []float64
	for i := 0; i < 8000; i++ {
		w = append(w, o.ProcessorPower(idle)-base)
	}
	// Stationary variance ≈ WanderStd².
	var mean, varSum float64
	for _, v := range w {
		mean += v
	}
	mean /= float64(len(w))
	for _, v := range w {
		varSum += (v - mean) * (v - mean)
	}
	std := math.Sqrt(varSum / float64(len(w)))
	if math.Abs(std-1.0) > 0.15 {
		t.Fatalf("wander std %v want ~1", std)
	}
	// Lag-1 autocorrelation ≈ exp(-1/tau) ≈ 0.95: the wander is slow.
	var ac float64
	for i := 1; i < len(w); i++ {
		ac += (w[i] - mean) * (w[i-1] - mean)
	}
	ac /= varSum
	if ac < 0.9 {
		t.Fatalf("wander autocorrelation %v, want slow (~0.95)", ac)
	}
}

func TestOracleParamsAccessor(t *testing.T) {
	p := testParams()
	o := NewOracle(p, 1)
	if o.Params() != p {
		t.Fatal("Params round trip")
	}
}

// TestAtStateScalesOnlyDynamicTerms pins the DVFS oracle contract: every
// per-event energy (including the quadratic L2 queueing term) scales by
// the combined multiplier, the static floor and the noise/saturation
// shape parameters stay fixed, and d == 1 is a bitwise identity.
func TestAtStateScalesOnlyDynamicTerms(t *testing.T) {
	p := testParams()
	p.SatL1 = 4e5
	p.QuadL2 = 2e-9
	p.WanderStd, p.WanderTau = 0.5, 17

	if got := p.AtState(1); got != p {
		t.Fatalf("AtState(1) = %+v, want the receiver unchanged", got)
	}

	const d = 0.4335
	q := p.AtState(d)
	for _, c := range []struct {
		name       string
		base, want float64
	}{
		{"L1Ref", p.L1Ref, p.L1Ref * d},
		{"L2Ref", p.L2Ref, p.L2Ref * d},
		{"L2Miss", p.L2Miss, p.L2Miss * d},
		{"Branch", p.Branch, p.Branch * d},
		{"FPOp", p.FPOp, p.FPOp * d},
		{"QuadL2", p.QuadL2, p.QuadL2 * d},
	} {
		got := map[string]float64{
			"L1Ref": q.L1Ref, "L2Ref": q.L2Ref, "L2Miss": q.L2Miss,
			"Branch": q.Branch, "FPOp": q.FPOp, "QuadL2": q.QuadL2,
		}[c.name]
		if got != c.want {
			t.Fatalf("%s = %v, want %v", c.name, got, c.want)
		}
	}
	if q.CoreIdle != p.CoreIdle || q.Uncore != p.Uncore {
		t.Fatalf("static terms moved: %+v", q)
	}
	if q.SatL1 != p.SatL1 || q.NoiseStd != p.NoiseStd ||
		q.WanderStd != p.WanderStd || q.WanderTau != p.WanderTau {
		t.Fatalf("shape/noise parameters moved: %+v", q)
	}
}
