// Package power implements the ground-truth power oracle and the simulated
// measurement apparatus that replace the paper's physical setup (a Fluke
// i30 current clamp on the 12 V processor supply line, sampled by an NI
// USB-6210 DAQ card at 10 kHz, behind a 90%-efficient on-chip voltage
// regulator).
//
// The oracle defines what the processor "actually" consumes as a function
// of per-core activity. It is intentionally NOT a pure linear function of
// the five monitored event rates: a mild saturating nonlinearity and
// process variation noise are included so that the MVLR model (Eq. 9) fits
// with realistic residuals and the neural-network comparator has something
// to gain — reproducing the paper's 96.2% (MVLR) vs 96.8% (NN) accuracy
// comparison.
//
// The models under test never see the oracle's parameters; they are
// trained purely on the measured signal, exactly as on hardware.
package power

import (
	"math"

	"mpmc/internal/hpc"
	"mpmc/internal/xrand"
)

// Electrical constants of the measurement setup (Section 6.1).
const (
	// SupplyVoltage is the measured rail voltage in volts.
	SupplyVoltage = 12.0
	// RegulatorEfficiency is the assumed fixed regulator efficiency, so
	// P_proc = 0.9 · 12 V · I = 10.8 · I.
	RegulatorEfficiency = 0.9
)

// OracleParams defines the true (hidden) power behaviour of one machine.
type OracleParams struct {
	CoreIdle float64 // W consumed by an idle core (clock tree, leakage share)
	Uncore   float64 // W consumed by shared uncore logic, always on

	// Linear event energies, W per (event/second). L2Miss is negative:
	// while a core stalls on memory its execution units draw less power —
	// the effect the paper highlights for coefficient c3 of Eq. 9.
	L1Ref  float64
	L2Ref  float64
	L2Miss float64
	Branch float64
	FPOp   float64

	// SatL1 is the L1 reference rate (events/s) at which the L1
	// contribution has fallen to half its linear slope: the mild
	// nonlinearity MVLR cannot capture. Zero disables saturation.
	SatL1 float64

	// QuadL2 adds QuadL2·L2RPS² watts per core: queueing at the shared
	// L2 makes its dynamic power grow super-linearly with reference rate.
	// This is the curvature that lets the NN comparator edge out MVLR in
	// the Section 4.1 accuracy comparison.
	QuadL2 float64

	// NoiseStd is the standard deviation, in watts, of per-window
	// intrinsic power variation per core (temperature, voltage ripple).
	NoiseStd float64

	// WanderStd and WanderTau define a slow Ornstein–Uhlenbeck wander of
	// total processor power (thermal drift, VRM operating-point shifts):
	// stationary deviation WanderStd watts, decorrelating over WanderTau
	// ProcessorPower evaluations (one evaluation per sampling window).
	// This is activity the monitored events cannot explain, and it is
	// what keeps sample-based model errors realistic. Zero disables it.
	WanderStd float64
	WanderTau float64
}

// AtState returns the oracle parameters at a DVFS operating point whose
// combined dynamic multiplier is d (the core type's dynamic factor times
// the state's f·V², see internal/freq): every dynamic event energy —
// including the quadratic L2 queueing term — scales by d, while the
// static terms (CoreIdle, Uncore), the saturation threshold, and the
// noise processes stay fixed. Identity-gated: d == 1 returns p unchanged,
// so a machine at its base state has exactly its legacy oracle.
func (p OracleParams) AtState(d float64) OracleParams {
	if d == 1 {
		return p
	}
	q := p
	q.L1Ref *= d
	q.L2Ref *= d
	q.L2Miss *= d
	q.Branch *= d
	q.FPOp *= d
	q.QuadL2 *= d
	return q
}

// Oracle computes ground-truth processor power from per-core activity.
type Oracle struct {
	p      OracleParams
	rng    *xrand.Rand
	wander float64 // OU state, advanced once per ProcessorPower call
}

// NewOracle builds an oracle with its own noise stream.
func NewOracle(p OracleParams, seed uint64) *Oracle {
	return &Oracle{p: p, rng: xrand.New(seed ^ 0x9041)}
}

// Params returns the oracle parameters (used by tests; models must not
// call this).
func (o *Oracle) Params() OracleParams { return o.p }

// CorePower returns the true power of one core given its event rates over
// a window, including intrinsic noise. An idle core passes zero rates.
func (o *Oracle) CorePower(r hpc.Rates) float64 {
	p := o.p.CoreIdle
	l1 := o.p.L1Ref * r.L1RPS
	if o.p.SatL1 > 0 {
		l1 = o.p.L1Ref * r.L1RPS / (1 + r.L1RPS/(2*o.p.SatL1))
	}
	p += l1
	p += o.p.L2Ref * r.L2RPS
	p += o.p.QuadL2 * r.L2RPS * r.L2RPS
	p += o.p.L2Miss * r.L2MPS
	p += o.p.Branch * r.BRPS
	p += o.p.FPOp * r.FPPS
	p += o.p.NoiseStd * o.rng.NormFloat64()
	if p < 0 {
		p = 0
	}
	return p
}

// ProcessorPower returns total package power for a set of per-core rates
// (one entry per core; idle cores contribute their idle power). Each call
// represents one sampling window and advances the slow power wander.
func (o *Oracle) ProcessorPower(cores []hpc.Rates) float64 {
	p := o.p.Uncore
	for _, r := range cores {
		p += o.CorePower(r)
	}
	if o.p.WanderStd > 0 && o.p.WanderTau > 0 {
		decay := math.Exp(-1 / o.p.WanderTau)
		o.wander = o.wander*decay + o.p.WanderStd*math.Sqrt(1-decay*decay)*o.rng.NormFloat64()
		p += o.wander
	}
	if p < 0 {
		p = 0
	}
	return p
}

// SensorParams describes the measurement chain.
type SensorParams struct {
	// ClampNoiseStd is the current clamp's RMS noise in amperes per raw
	// DAQ sample.
	ClampNoiseStd float64
	// SampleRate is the DAQ sampling frequency in Hz (paper: 10 kHz).
	SampleRate float64
	// CurrentLSB is the DAQ quantization step in amperes; zero disables
	// quantization.
	CurrentLSB float64
}

// DefaultSensor mirrors the paper's apparatus: 10 kHz sampling, a clamp
// noise floor of about 30 mA RMS, and a 16-bit DAQ over a ±10 A range.
func DefaultSensor() SensorParams {
	return SensorParams{
		ClampNoiseStd: 0.03,
		SampleRate:    10_000,
		CurrentLSB:    20.0 / 65536,
	}
}

// Sensor converts true processor power into the measured value an
// experimenter records, via the current clamp model.
type Sensor struct {
	p   SensorParams
	rng *xrand.Rand
}

// NewSensor builds a sensor with its own noise stream.
func NewSensor(p SensorParams, seed uint64) *Sensor {
	return &Sensor{p: p, rng: xrand.New(seed ^ 0x5EA50)}
}

// MeasureWindow returns the measured average power over a window of dt
// seconds during which true power is truePower. The DAQ takes
// SampleRate·dt raw current samples whose noise averages down accordingly;
// quantization adds a deterministic floor. The returned value applies the
// paper's conversion P = RegulatorEfficiency · V · I = 10.8 · I.
func (s *Sensor) MeasureWindow(truePower, dt float64) float64 {
	if dt <= 0 {
		panic("power: non-positive measurement window")
	}
	trueCurrent := truePower / (RegulatorEfficiency * SupplyVoltage)
	n := s.p.SampleRate * dt
	if n < 1 {
		n = 1
	}
	// Mean of n iid noisy samples: noise std shrinks by √n.
	noisy := trueCurrent + s.p.ClampNoiseStd/math.Sqrt(n)*s.rng.NormFloat64()
	if s.p.CurrentLSB > 0 {
		noisy = math.Round(noisy/s.p.CurrentLSB) * s.p.CurrentLSB
	}
	if noisy < 0 {
		noisy = 0
	}
	return RegulatorEfficiency * SupplyVoltage * noisy
}

// TracePoint is one timestamped measured-power sample, the unit Figure 2
// plots.
type TracePoint struct {
	Time  float64 // seconds
	Power float64 // watts
}

// Trace is a measured (or estimated) power time series.
type Trace []TracePoint

// Mean returns the average power of the trace, or 0 when empty.
func (t Trace) Mean() float64 {
	if len(t) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range t {
		s += p.Power
	}
	return s / float64(len(t))
}
