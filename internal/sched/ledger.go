package sched

// Ledger is the fail/retry bookkeeping behind a scheduling queue: each
// key (the host uses queue ticket identities) accumulates requeue
// attempts, and each requeue earns an exponential backoff measured in
// pump rounds — a preempted process re-enters the queue immediately but
// only becomes *eligible* again once the round counter passes its
// NotBefore, so a high-priority arrival cannot thrash the same victim
// through an evict/requeue/evict cycle round after round.
//
// The ledger never drops silently: Record reports the drop decision to
// the caller, who must count it. Conservation — every recorded failure
// is either requeued (entry retained with a future NotBefore) or
// reported dropped (entry forgotten) — is fuzzed in FuzzSchedulePipeline.
//
// Ledger is not safe for concurrent use; the host serializes access
// under its scheduling lock (the fleet's placement mutex).
type Ledger struct {
	// MaxAttempts is the number of requeues a key is allowed before
	// Record reports it should be dropped (0 = 3).
	MaxAttempts int
	// MaxBackoff caps the per-retry backoff in rounds (0 = 8).
	MaxBackoff int

	entries map[string]ledgerEntry
}

type ledgerEntry struct {
	attempts  int
	notBefore int
}

func (l *Ledger) maxAttempts() int {
	if l.MaxAttempts > 0 {
		return l.MaxAttempts
	}
	return 3
}

func (l *Ledger) maxBackoff() int {
	if l.MaxBackoff > 0 {
		return l.MaxBackoff
	}
	return 8
}

// Record registers one scheduling failure (a preemption or a requeue) of
// key at the given pump round. It returns whether the key may be
// requeued and, if so, the round at which it becomes eligible again
// (exponential backoff: 1, 2, 4, ... rounds, capped at MaxBackoff).
// When the attempt budget is exhausted the entry is forgotten and the
// caller must report the drop — never swallow it.
func (l *Ledger) Record(key string, round int) (requeue bool, notBefore int) {
	if l.entries == nil {
		l.entries = map[string]ledgerEntry{}
	}
	e := l.entries[key]
	e.attempts++
	if e.attempts > l.maxAttempts() {
		delete(l.entries, key)
		return false, 0
	}
	backoff := 1 << (e.attempts - 1)
	if backoff > l.maxBackoff() {
		backoff = l.maxBackoff()
	}
	e.notBefore = round + backoff
	l.entries[key] = e
	return true, e.notBefore
}

// Attempts returns the recorded attempt count for key (0 if unknown).
func (l *Ledger) Attempts(key string) int { return l.entries[key].attempts }

// Eligible reports whether key may be tried at the given round. Unknown
// keys are always eligible.
func (l *Ledger) Eligible(key string, round int) bool {
	return round >= l.entries[key].notBefore
}

// Forget discharges a key (admitted, cancelled, or dropped elsewhere).
func (l *Ledger) Forget(key string) { delete(l.entries, key) }

// Len returns the number of live entries.
func (l *Ledger) Len() int { return len(l.entries) }

// Snapshot deep-copies the ledger state, for transactional hosts that
// must restore it when a preemption aborts.
func (l *Ledger) Snapshot() map[string]ledgerEntry {
	if len(l.entries) == 0 {
		return nil
	}
	out := make(map[string]ledgerEntry, len(l.entries))
	for k, v := range l.entries {
		out[k] = v
	}
	return out
}

// Restore replaces the ledger state with a Snapshot result.
func (l *Ledger) Restore(s map[string]ledgerEntry) {
	if s == nil {
		l.entries = nil
		return
	}
	out := make(map[string]ledgerEntry, len(s))
	for k, v := range s {
		out[k] = v
	}
	l.entries = out
}
