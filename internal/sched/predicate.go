package sched

// Predicate is a cheap boolean filter over candidates. Predicates run
// before any prioritizer, so an expensive model solve is never spent on a
// candidate a predicate can reject from the CandidateNode facts alone.
// Admit must be pure: same (arrival, candidate) facts, same answer.
//
// Soundness contract: a predicate may only reject candidates the
// pipeline's prioritizers would score infeasible (or score strictly worse
// than some admitted candidate). The built-in capacity predicates derive
// from exactly the facts admissibility checks use, so filtering with them
// never changes the decision — FuzzSchedulePipeline holds them to that.
type Predicate interface {
	// Name identifies the predicate (canonical ordering, diagnostics).
	Name() string
	// Admit reports whether the candidate stays in the running.
	Admit(a Arrival, n *CandidateNode) bool
}

// NodeUp filters candidates that are down.
type NodeUp struct{}

func (NodeUp) Name() string                           { return "node-up" }
func (NodeUp) Admit(_ Arrival, n *CandidateNode) bool { return n.Up }

// FreeSlot filters candidates with no remaining capacity. Unbounded
// candidates (FreeSlots < 0) always pass.
type FreeSlot struct{}

func (FreeSlot) Name() string { return "free-slot" }
func (FreeSlot) Admit(_ Arrival, n *CandidateNode) bool {
	return n.FreeSlots != 0
}

// PerCoreCap filters candidates where every core is at its time-sharing
// cap. It is FreeSlot's per-core refinement: a candidate can report free
// aggregate capacity while a host-specific invariant still pins each
// core, so this predicate re-derives admissibility from the PerCore
// counts themselves.
type PerCoreCap struct{}

func (PerCoreCap) Name() string { return "per-core-cap" }
func (PerCoreCap) Admit(_ Arrival, n *CandidateNode) bool {
	if n.MaxPerCore == 0 {
		return true
	}
	for _, c := range n.PerCore {
		if c < n.MaxPerCore {
			return true
		}
	}
	return false
}

// MaxDegradation filters candidates whose already-known relative SPI
// degradation for this arrival exceeds Ceiling. RelOf consults the
// host's memo (the fleet peeks its decision cache); when the degradation
// is not yet known the predicate fails open — filtering may only ever
// skip a solve, never force one.
type MaxDegradation struct {
	Ceiling float64
	// RelOf reports the candidate's memoized relative degradation for
	// the arrival, and whether it is known.
	RelOf func(a Arrival, n *CandidateNode) (rel float64, known bool)
}

func (MaxDegradation) Name() string { return "max-degradation" }
func (p MaxDegradation) Admit(a Arrival, n *CandidateNode) bool {
	if p.RelOf == nil {
		return true
	}
	rel, known := p.RelOf(a, n)
	return !known || rel <= p.Ceiling
}

// Taint filters candidates carrying a taint key the arrival does not
// tolerate.
type Taint struct{}

func (Taint) Name() string { return "taint" }
func (Taint) Admit(a Arrival, n *CandidateNode) bool {
	for _, t := range n.Taints {
		if !a.Tolerations[t] {
			return false
		}
	}
	return true
}

// LabelMatch filters candidates whose Labels[Key] differs from Value.
type LabelMatch struct {
	Key, Value string
}

func (p LabelMatch) Name() string { return "label-match:" + p.Key }
func (p LabelMatch) Admit(_ Arrival, n *CandidateNode) bool {
	return n.Labels[p.Key] == p.Value
}
