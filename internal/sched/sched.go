// Package sched is the pluggable scheduling pipeline the fleet places
// through: cheap boolean Predicates prune the candidate set, Prioritizers
// score what survives (the expensive model consults live here), and a
// Selector reduces the scores to one winner. The shape follows cluster
// schedulers like k8s-cluster-simulator — filter plugins, score plugins,
// a fail/retry queue with backoff — while the scoring substance stays the
// paper's: the fleet's prioritizers call the Eq. 1 equilibrium solver and
// the Eq. 10 power model, so predicates exist precisely to keep those
// solves off candidates that could never win.
//
// The package is deliberately host-agnostic: it knows nothing about
// machines, managers, or feature vectors. The host (internal/fleet)
// adapts its nodes into CandidateNode facts, wraps its model scoring in
// Prioritizer implementations, and injects concurrency through a Runner.
// That keeps the pipeline a pure, separately fuzzable decision procedure:
// FuzzSchedulePipeline proves predicate soundness, worker-count
// invariance, and registration-order invariance without ever touching a
// solver.
//
// Determinism contract: Decide's outcome is a pure function of
// (arrival, candidates, pipeline). Candidates are considered in slice
// order, scores land in index-addressed slots, and the selector reduces
// serially with strict less-than comparisons, so ties always resolve to
// the earliest candidate at any Runner concurrency. Predicates and
// prioritizers are canonicalized (sorted by name) at construction, so
// the order plugins were registered in never reaches a decision either.
package sched

import "context"

// Arrival is one unit of work asking for a slot.
type Arrival struct {
	// Key names the workload (the fleet uses the benchmark name).
	Key string
	// Priority is the arrival's priority class. Higher classes may preempt
	// residents of strictly lower classes when no candidate survives the
	// pipeline; class 0 (the default) never preempts.
	Priority int
	// Tolerations lists taint keys this arrival accepts (Taint predicate).
	Tolerations map[string]bool
	// Payload carries host data opaque to the pipeline (the fleet passes
	// the *workload.Spec its prioritizers score with).
	Payload any
}

// CandidateNode is one placement target as the predicates see it: the
// cheap, model-free facts. The host refreshes these from its own state;
// prioritizers that need expensive quantities compute them on demand.
type CandidateNode struct {
	// Index is the node's stable position in the host's node order; ties
	// resolve to the lowest index, so hosts must keep it consistent.
	Index int
	// Name is the node identity (diagnostics and taint/label targeting).
	Name string
	// Up is false while the node is unavailable (lost machine).
	Up bool
	// PerCore holds the resident count of each core.
	PerCore []int
	// MaxPerCore bounds time-sharing depth per core (0 = unbounded).
	MaxPerCore int
	// FreeSlots is the remaining capacity (-1 = unbounded).
	FreeSlots int
	// Labels are host-assigned key/value pairs (LabelMatch predicate).
	Labels map[string]string
	// Taints lists taint keys; arrivals must tolerate every one (Taint
	// predicate).
	Taints []string
}

// Score is one candidate's pipeline score. Lower Value is better.
type Score struct {
	// OK is false when the candidate has no admissible slot.
	OK bool
	// Core is the chosen core within the candidate.
	Core int
	// Value is the policy metric (lower is better).
	Value float64
	// Rel is the relative SPI degradation (CeilingFirstFit's metric).
	Rel float64
	// Freq, when positive, is the winning slot's target DVFS state index
	// + 1 on the host's frequency ladder. The +1 keeps the zero value —
	// which every frequency-blind prioritizer produces — meaning "keep
	// the node's current state".
	Freq int
}

// Decision is the pipeline's outcome for one arrival.
type Decision struct {
	// Node is the winner's Index, -1 when no candidate survived the
	// predicates and scored feasible.
	Node int
	// Score is the winner's combined score (zero value when Node < 0).
	Score Score
	// Feasible counts candidates that survived every predicate (after
	// the MaxFeasible cut).
	Feasible int
	// Scored counts prioritizer invocations (Feasible × prioritizers).
	Scored int
	// Truncated reports that the MaxFeasible cut stopped the predicate
	// scan before every candidate was considered.
	Truncated bool
}

// Runner fans fn(0..n-1) out across workers. Implementations must write
// results only through fn's index (no shared accumulation) and must
// return the first error in serial index order, so decisions and error
// identity are invariant under concurrency. A nil Runner runs serially.
// The fleet passes internal/parallel.ForEach, which honors both rules.
type Runner func(ctx context.Context, n int, fn func(i int) error) error

func serialRun(ctx context.Context, n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}
