package sched

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// reverseRun is a hostile Runner: it executes the fan-out in reverse index
// order, standing in for an arbitrary parallel schedule. Index-addressed
// result slots make execution order unobservable, so decisions under
// reverseRun must match serial decisions exactly.
func reverseRun(ctx context.Context, n int, fn func(i int) error) error {
	errs := make([]error, n)
	for i := n - 1; i >= 0; i-- {
		errs[i] = fn(i)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

func randomCandidates(r *rand.Rand, n int) []*CandidateNode {
	out := make([]*CandidateNode, n)
	for i := range out {
		cores := 1 + r.Intn(4)
		perCore := make([]int, cores)
		maxPerCore := r.Intn(4) // 0 = unbounded
		free := -1
		if maxPerCore != 0 {
			free = cores * maxPerCore
			for c := range perCore {
				perCore[c] = r.Intn(maxPerCore + 1)
				free -= perCore[c]
			}
		} else {
			for c := range perCore {
				perCore[c] = r.Intn(3)
			}
		}
		out[i] = &CandidateNode{
			Index:      i,
			Name:       fmt.Sprintf("n%02d", i),
			Up:         r.Intn(5) != 0,
			PerCore:    perCore,
			MaxPerCore: maxPerCore,
			FreeSlots:  free,
		}
	}
	return out
}

// FuzzSchedulePipeline fuzzes the three pipeline laws the fleet refactor
// rests on:
//
//	(a) soundness — the capacity predicates never filter a candidate the
//	    full scorer would have chosen, so a predicated decision equals the
//	    score-everything decision;
//	(b) invariance — decisions do not depend on worker count (Runner
//	    schedule) or on plugin registration order;
//	(c) conservation — every failure recorded in the Ledger is either
//	    requeued with a future eligibility round or reported dropped;
//	    nothing vanishes.
func FuzzSchedulePipeline(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(6))
	f.Add(int64(42), uint8(1), uint8(0))
	f.Add(int64(7), uint8(30), uint8(20))
	f.Fuzz(func(t *testing.T, seed int64, nNodes, nOps uint8) {
		r := rand.New(rand.NewSource(seed))
		cands := randomCandidates(r, 1+int(nNodes)%32)
		arrival := Arrival{Key: fmt.Sprintf("w%d", r.Intn(9))}
		scorer := Weighted{Prioritizer: loadScorer{name: "load"}, Weight: 1}
		tieBreak := Weighted{Prioritizer: loadScorer{name: "aux"}, Weight: 0.5}
		ctx := context.Background()

		// (a) Predicates only ever remove candidates the scorer finds
		// infeasible, so the decision with and without them is identical.
		bare, err := New("bare", nil, []Weighted{scorer}, MinValue{})
		if err != nil {
			t.Fatal(err)
		}
		preds := []Predicate{NodeUp{}, FreeSlot{}, PerCoreCap{}}
		full, err := New("full", preds, []Weighted{scorer}, MinValue{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := bare.Decide(ctx, arrival, cands, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := full.Decide(ctx, arrival, cands, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Node != want.Node || got.Score != want.Score {
			t.Fatalf("soundness: predicated decision %+v != score-everything decision %+v", got, want)
		}
		if got.Feasible > want.Feasible {
			t.Fatalf("predicates admitted %d candidates but only %d score feasible", got.Feasible, want.Feasible)
		}

		// (b) Registration order and Runner schedule are unobservable.
		shuffledPreds := append([]Predicate(nil), preds...)
		r.Shuffle(len(shuffledPreds), func(i, j int) {
			shuffledPreds[i], shuffledPreds[j] = shuffledPreds[j], shuffledPreds[i]
		})
		for _, prios := range [][]Weighted{
			{scorer, tieBreak},
			{tieBreak, scorer},
		} {
			p, err := New("inv", shuffledPreds, prios, MinValue{})
			if err != nil {
				t.Fatal(err)
			}
			p.MaxFeasible = int(nNodes) % 5 // exercise the cut too; 0 = off
			serial, err := p.Decide(ctx, arrival, cands, nil)
			if err != nil {
				t.Fatal(err)
			}
			parallelDec, err := p.Decide(ctx, arrival, cands, reverseRun)
			if err != nil {
				t.Fatal(err)
			}
			if serial != parallelDec {
				t.Fatalf("invariance: serial %+v != reordered-runner %+v", serial, parallelDec)
			}
			if got.Node >= 0 && p.MaxFeasible == 0 && serial.Node < 0 {
				t.Fatalf("invariance pipeline lost feasibility: %+v", serial)
			}
		}

		// (c) Ledger conservation: recorded = requeued + dropped, requeued
		// entries carry a future eligibility round, dropped keys are
		// forgotten, and Snapshot/Restore round-trips mid-sequence.
		l := &Ledger{MaxAttempts: 1 + r.Intn(4), MaxBackoff: 1 + r.Intn(8)}
		recorded, requeued, dropped := 0, 0, 0
		live := map[string]bool{}
		round := 0
		for op := 0; op < int(nOps)%64; op++ {
			key := fmt.Sprintf("t%d", r.Intn(6))
			switch r.Intn(4) {
			case 0:
				l.Forget(key)
				delete(live, key)
			case 1:
				snap := l.Snapshot()
				l.Record(key, round)
				l.Restore(snap)
				if (l.Attempts(key) > 0) != live[key] {
					t.Fatalf("restore did not roll back key %s", key)
				}
			default:
				recorded++
				ok, notBefore := l.Record(key, round)
				if ok {
					requeued++
					live[key] = true
					if notBefore <= round {
						t.Fatalf("requeue of %s has no backoff: notBefore %d at round %d", key, notBefore, round)
					}
					if l.Eligible(key, round) {
						t.Fatalf("%s eligible immediately after requeue", key)
					}
					if !l.Eligible(key, notBefore) {
						t.Fatalf("%s not eligible at its notBefore round", key)
					}
				} else {
					dropped++
					delete(live, key)
					if l.Attempts(key) != 0 {
						t.Fatalf("dropped key %s still has attempts", key)
					}
				}
			}
			round += r.Intn(3)
		}
		if recorded != requeued+dropped {
			t.Fatalf("conservation: recorded %d != requeued %d + dropped %d", recorded, requeued, dropped)
		}
		if l.Len() != len(live) {
			t.Fatalf("ledger holds %d entries, reference model %d", l.Len(), len(live))
		}
	})
}
