package sched

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// loadScorer is the capacity-respecting synthetic prioritizer the tests
// and the fuzzer score with: feasible iff some core is under the cap (and
// the node is up), core = least-loaded admissible (ties low), value from
// a deterministic mix of the arrival key, node name, and load — a stand-in
// for the fleet's model scorer with the same admissibility semantics.
type loadScorer struct{ name string }

func (s loadScorer) Name() string { return s.name }

func (s loadScorer) Score(_ context.Context, a Arrival, n *CandidateNode) (Score, error) {
	if !n.Up {
		return Score{}, nil
	}
	bestCore, bestLoad := -1, 0
	total := 0
	for c, load := range n.PerCore {
		total += load
		if n.MaxPerCore != 0 && load >= n.MaxPerCore {
			continue
		}
		if bestCore < 0 || load < bestLoad {
			bestCore, bestLoad = c, load
		}
	}
	if bestCore < 0 {
		return Score{}, nil
	}
	v := float64(total*31+bestCore*7) + float64(len(a.Key)+len(n.Name)*13+len(s.name))
	return Score{OK: true, Core: bestCore, Value: v, Rel: v / 100}, nil
}

func mustNew(t *testing.T, preds []Predicate, prios []Weighted, sel Selector) *Pipeline {
	t.Helper()
	p, err := New("test", preds, prios, sel)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func nodes(specs ...CandidateNode) []*CandidateNode {
	out := make([]*CandidateNode, len(specs))
	for i := range specs {
		specs[i].Index = i
		out[i] = &specs[i]
	}
	return out
}

func TestPredicates(t *testing.T) {
	up := CandidateNode{Up: true, PerCore: []int{1, 0}, MaxPerCore: 2, FreeSlots: 3}
	cases := []struct {
		name string
		pred Predicate
		node CandidateNode
		a    Arrival
		want bool
	}{
		{"node-up/up", NodeUp{}, up, Arrival{}, true},
		{"node-up/down", NodeUp{}, CandidateNode{Up: false}, Arrival{}, false},
		{"free-slot/has", FreeSlot{}, up, Arrival{}, true},
		{"free-slot/full", FreeSlot{}, CandidateNode{Up: true, FreeSlots: 0}, Arrival{}, false},
		{"free-slot/unbounded", FreeSlot{}, CandidateNode{Up: true, FreeSlots: -1}, Arrival{}, true},
		{"per-core/has", PerCoreCap{}, up, Arrival{}, true},
		{"per-core/full", PerCoreCap{}, CandidateNode{Up: true, PerCore: []int{2, 2}, MaxPerCore: 2}, Arrival{}, false},
		{"per-core/unbounded", PerCoreCap{}, CandidateNode{Up: true, PerCore: []int{9}}, Arrival{}, true},
		{"taint/none", Taint{}, up, Arrival{}, true},
		{"taint/untolerated", Taint{}, CandidateNode{Up: true, Taints: []string{"gpu"}}, Arrival{}, false},
		{"taint/tolerated", Taint{}, CandidateNode{Up: true, Taints: []string{"gpu"}},
			Arrival{Tolerations: map[string]bool{"gpu": true}}, true},
		{"label/match", LabelMatch{Key: "zone", Value: "a"},
			CandidateNode{Up: true, Labels: map[string]string{"zone": "a"}}, Arrival{}, true},
		{"label/miss", LabelMatch{Key: "zone", Value: "a"},
			CandidateNode{Up: true, Labels: map[string]string{"zone": "b"}}, Arrival{}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.pred.Admit(tc.a, &tc.node); got != tc.want {
				t.Fatalf("Admit = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestMaxDegradationFailsOpen(t *testing.T) {
	n := CandidateNode{Up: true}
	known := map[string]float64{"hot": 0.9}
	p := MaxDegradation{Ceiling: 0.5, RelOf: func(a Arrival, _ *CandidateNode) (float64, bool) {
		r, ok := known[a.Key]
		return r, ok
	}}
	if !p.Admit(Arrival{Key: "unknown"}, &n) {
		t.Fatal("unknown degradation must fail open")
	}
	if p.Admit(Arrival{Key: "hot"}, &n) {
		t.Fatal("known degradation above ceiling must filter")
	}
	if !(MaxDegradation{Ceiling: 0.5}).Admit(Arrival{Key: "hot"}, &n) {
		t.Fatal("nil RelOf must fail open")
	}
}

func TestSelectors(t *testing.T) {
	scores := []Score{
		{OK: false, Value: 0, Rel: 0},
		{OK: true, Value: 5, Rel: 0.9},
		{OK: true, Value: 2, Rel: 0.4},
		{OK: true, Value: 2, Rel: 0.1},
	}
	if got := (MinValue{}).Pick(scores); got != 2 {
		t.Fatalf("MinValue tie must resolve to the earliest: got %d, want 2", got)
	}
	if got := (CeilingFirstFit{Ceiling: 0.5}).Pick(scores); got != 2 {
		t.Fatalf("CeilingFirstFit first-under-ceiling: got %d, want 2", got)
	}
	if got := (CeilingFirstFit{Ceiling: 0.05}).Pick(scores); got != 3 {
		t.Fatalf("CeilingFirstFit fallback to min Rel: got %d, want 3", got)
	}
	if got := (MinValue{}).Pick([]Score{{}, {}}); got != -1 {
		t.Fatalf("all-infeasible must pick -1: got %d", got)
	}
}

func TestNewValidates(t *testing.T) {
	prio := Weighted{Prioritizer: loadScorer{name: "s"}, Weight: 1}
	for name, build := range map[string]func() (*Pipeline, error){
		"no-prioritizer": func() (*Pipeline, error) { return New("p", nil, nil, MinValue{}) },
		"no-selector":    func() (*Pipeline, error) { return New("p", nil, []Weighted{prio}, nil) },
		"zero-weight": func() (*Pipeline, error) {
			return New("p", nil, []Weighted{{Prioritizer: loadScorer{name: "s"}}}, MinValue{})
		},
		"nil-predicate": func() (*Pipeline, error) {
			return New("p", []Predicate{nil}, []Weighted{prio}, MinValue{})
		},
	} {
		if _, err := build(); err == nil {
			t.Errorf("%s: New accepted an invalid pipeline", name)
		}
	}
}

func TestDecideFiltersBeforeScoring(t *testing.T) {
	var scored []string
	count := countingScorer{inner: loadScorer{name: "s"}, scored: &scored}
	p := mustNew(t, []Predicate{NodeUp{}, FreeSlot{}, PerCoreCap{}},
		[]Weighted{{Prioritizer: count, Weight: 1}}, MinValue{})
	cands := nodes(
		CandidateNode{Name: "down", Up: false, FreeSlots: 4, PerCore: []int{0}},
		CandidateNode{Name: "full", Up: true, FreeSlots: 0, PerCore: []int{2}, MaxPerCore: 2},
		CandidateNode{Name: "open", Up: true, FreeSlots: 2, PerCore: []int{0}, MaxPerCore: 2},
	)
	dec, err := p.Decide(context.Background(), Arrival{Key: "w"}, cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Node != 2 || dec.Feasible != 1 {
		t.Fatalf("Decide = %+v, want node 2 with 1 feasible", dec)
	}
	if len(scored) != 1 || scored[0] != "open" {
		t.Fatalf("scored %v, want exactly [open]: predicates must prune before scoring", scored)
	}
}

type countingScorer struct {
	inner  Prioritizer
	scored *[]string
}

func (c countingScorer) Name() string { return c.inner.Name() }
func (c countingScorer) Score(ctx context.Context, a Arrival, n *CandidateNode) (Score, error) {
	*c.scored = append(*c.scored, n.Name)
	return c.inner.Score(ctx, a, n)
}

func TestDecideMaxFeasibleCut(t *testing.T) {
	p := mustNew(t, []Predicate{NodeUp{}}, []Weighted{{Prioritizer: loadScorer{name: "s"}, Weight: 1}}, MinValue{})
	p.MaxFeasible = 2
	var specs []CandidateNode
	for i := 0; i < 5; i++ {
		specs = append(specs, CandidateNode{Name: fmt.Sprintf("n%d", i), Up: true, PerCore: []int{i}, FreeSlots: -1})
	}
	dec, err := p.Decide(context.Background(), Arrival{Key: "w"}, nodes(specs...), nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Feasible != 2 || !dec.Truncated {
		t.Fatalf("Decide = %+v, want 2 feasible, truncated", dec)
	}
	if dec.Node != 0 {
		t.Fatalf("cut must keep the first K in candidate order: got node %d", dec.Node)
	}
}

func TestDecideNoFeasible(t *testing.T) {
	p := mustNew(t, []Predicate{NodeUp{}}, []Weighted{{Prioritizer: loadScorer{name: "s"}, Weight: 1}}, MinValue{})
	dec, err := p.Decide(context.Background(), Arrival{}, nodes(CandidateNode{Up: false}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Node != -1 || dec.Feasible != 0 {
		t.Fatalf("Decide = %+v, want none feasible", dec)
	}
}

type errScorer struct{ name string }

func (e errScorer) Name() string { return e.name }
func (e errScorer) Score(context.Context, Arrival, *CandidateNode) (Score, error) {
	return Score{}, errors.New("boom:" + e.name)
}

func TestDecidePropagatesScoreError(t *testing.T) {
	p := mustNew(t, nil, []Weighted{{Prioritizer: errScorer{name: "e"}, Weight: 1}}, MinValue{})
	_, err := p.Decide(context.Background(), Arrival{}, nodes(CandidateNode{Up: true}), nil)
	if err == nil || err.Error() != "boom:e" {
		t.Fatalf("err = %v, want boom:e", err)
	}
}

func TestDecideCancelled(t *testing.T) {
	p := mustNew(t, nil, []Weighted{{Prioritizer: loadScorer{name: "s"}, Weight: 1}}, MinValue{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Decide(ctx, Arrival{}, nodes(CandidateNode{Up: true, PerCore: []int{0}}), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWeightedCombination(t *testing.T) {
	// Two prioritizers, canonical (name-sorted) order fixes the sum order:
	// value = 2*a + 3*b regardless of registration order.
	a := constScorer{name: "a", value: 5, core: 1}
	b := constScorer{name: "b", value: 7, core: 2}
	for _, prios := range [][]Weighted{
		{{Prioritizer: a, Weight: 2}, {Prioritizer: b, Weight: 3}},
		{{Prioritizer: b, Weight: 3}, {Prioritizer: a, Weight: 2}},
	} {
		p := mustNew(t, nil, prios, MinValue{})
		dec, err := p.Decide(context.Background(), Arrival{}, nodes(CandidateNode{Up: true}), nil)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Score.Value != 2*5+3*7 {
			t.Fatalf("combined value = %v, want 31", dec.Score.Value)
		}
		if dec.Score.Core != 1 {
			t.Fatalf("core = %d, want the first canonical prioritizer's core 1", dec.Score.Core)
		}
	}
}

type constScorer struct {
	name  string
	value float64
	core  int
}

func (c constScorer) Name() string { return c.name }
func (c constScorer) Score(context.Context, Arrival, *CandidateNode) (Score, error) {
	return Score{OK: true, Core: c.core, Value: c.value}, nil
}

func TestLedgerBackoffAndDrop(t *testing.T) {
	l := &Ledger{MaxAttempts: 3, MaxBackoff: 4}
	round := 0
	// Attempts 1..3 requeue with backoff 1, 2, 4 (capped); attempt 4 drops.
	wantBackoff := []int{1, 2, 4}
	for i, wb := range wantBackoff {
		requeue, nb := l.Record("k", round)
		if !requeue {
			t.Fatalf("attempt %d: dropped early", i+1)
		}
		if nb != round+wb {
			t.Fatalf("attempt %d: notBefore = %d, want %d", i+1, nb, round+wb)
		}
		if l.Eligible("k", nb-1) {
			t.Fatalf("attempt %d: eligible before notBefore", i+1)
		}
		if !l.Eligible("k", nb) {
			t.Fatalf("attempt %d: not eligible at notBefore", i+1)
		}
		round = nb
	}
	if requeue, _ := l.Record("k", round); requeue {
		t.Fatal("attempt past MaxAttempts must report drop")
	}
	if l.Len() != 0 || l.Attempts("k") != 0 {
		t.Fatal("dropped key must be forgotten")
	}
}

func TestLedgerSnapshotRestore(t *testing.T) {
	l := &Ledger{}
	l.Record("a", 0)
	l.Record("b", 3)
	snap := l.Snapshot()
	l.Record("a", 5)
	l.Forget("b")
	l.Record("c", 1)
	l.Restore(snap)
	if l.Len() != 2 || l.Attempts("a") != 1 || l.Attempts("b") != 1 || l.Attempts("c") != 0 {
		t.Fatalf("restore did not round-trip: len=%d a=%d b=%d c=%d",
			l.Len(), l.Attempts("a"), l.Attempts("b"), l.Attempts("c"))
	}
	l.Restore(nil)
	if l.Len() != 0 {
		t.Fatal("Restore(nil) must empty the ledger")
	}
	if !l.Eligible("a", 0) {
		t.Fatal("unknown keys are always eligible")
	}
}
