package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Prioritizer scores one candidate for one arrival. Lower Value is
// better. Implementations may be expensive (the fleet's call the
// equilibrium solver) — that is exactly why predicates run first.
// Score must be a pure function of (arrival, candidate, host state the
// prioritizer reads under the host's lock).
type Prioritizer interface {
	// Name identifies the prioritizer (canonical ordering, diagnostics).
	Name() string
	// Score scores the candidate; OK=false marks it infeasible.
	Score(ctx context.Context, a Arrival, n *CandidateNode) (Score, error)
}

// Weighted attaches a positive weight to a prioritizer. The combined
// Value is the weight-scaled sum over every prioritizer (in canonical
// name order); a single prioritizer with weight 1 contributes its Value
// bit-identically.
type Weighted struct {
	Prioritizer Prioritizer
	Weight      float64
}

// Selector reduces scored candidates — in candidate order — to one
// winner. Pick returns an index into scores, or -1 when nothing is
// feasible. Implementations must reduce serially with strict less-than
// comparisons so ties resolve to the earliest candidate.
type Selector interface {
	Name() string
	Pick(scores []Score) int
}

// MinValue picks the feasible candidate with the smallest Value (ties to
// the earliest).
type MinValue struct{}

func (MinValue) Name() string { return "min-value" }
func (MinValue) Pick(scores []Score) int {
	best := -1
	for i, s := range scores {
		if s.OK && (best < 0 || s.Value < scores[best].Value) {
			best = i
		}
	}
	return best
}

// CeilingFirstFit picks the first feasible candidate whose Rel is within
// Ceiling (bin-packing: fill the earliest candidate until it is "full
// enough"); when every candidate exceeds the ceiling it falls back to
// the smallest Rel, never rejecting while capacity remains.
type CeilingFirstFit struct {
	Ceiling float64
}

func (CeilingFirstFit) Name() string { return "ceiling-first-fit" }
func (s CeilingFirstFit) Pick(scores []Score) int {
	for i, sc := range scores {
		if sc.OK && sc.Rel <= s.Ceiling {
			return i
		}
	}
	best := -1
	for i, sc := range scores {
		if sc.OK && (best < 0 || sc.Rel < scores[best].Rel) {
			best = i
		}
	}
	return best
}

// Pipeline is one assembled scheduling policy: predicates prune,
// prioritizers score, the selector reduces. Construct with New — the
// zero value is not usable.
type Pipeline struct {
	name         string
	predicates   []Predicate
	prioritizers []Weighted
	selector     Selector

	// MaxFeasible stops the predicate scan after this many candidates
	// survive (0 = no cut). The cut is deterministic — always the first
	// K feasible candidates in candidate order — and exists for scale:
	// scoring 50 of 1000 near-equivalent feasible machines is the
	// k8s-style "percentage of nodes to score" trade. Selectors that
	// fill in candidate order (CeilingFirstFit) are unaffected by the
	// cut; MinValue trades global optimality for bounded solve work.
	MaxFeasible int
}

// New canonicalizes and validates a pipeline. Predicates and
// prioritizers are sorted by name (stable), so two pipelines assembled
// from the same plugin set decide identically regardless of
// registration order.
func New(name string, preds []Predicate, prios []Weighted, sel Selector) (*Pipeline, error) {
	if len(prios) == 0 {
		return nil, errors.New("sched: pipeline needs at least one prioritizer")
	}
	if sel == nil {
		return nil, errors.New("sched: pipeline needs a selector")
	}
	for _, w := range prios {
		if w.Prioritizer == nil {
			return nil, errors.New("sched: nil prioritizer")
		}
		if w.Weight <= 0 {
			return nil, fmt.Errorf("sched: prioritizer %s: weight %v must be positive", w.Prioritizer.Name(), w.Weight)
		}
	}
	for _, p := range preds {
		if p == nil {
			return nil, errors.New("sched: nil predicate")
		}
	}
	p := &Pipeline{
		name:         name,
		predicates:   append([]Predicate(nil), preds...),
		prioritizers: append([]Weighted(nil), prios...),
		selector:     sel,
	}
	sort.SliceStable(p.predicates, func(i, j int) bool {
		return p.predicates[i].Name() < p.predicates[j].Name()
	})
	sort.SliceStable(p.prioritizers, func(i, j int) bool {
		return p.prioritizers[i].Prioritizer.Name() < p.prioritizers[j].Prioritizer.Name()
	})
	return p, nil
}

// Name returns the pipeline's configured name.
func (p *Pipeline) Name() string { return p.name }

// Selector returns the pipeline's selector (hosts replaying memoized
// scores reduce with it directly).
func (p *Pipeline) Selector() Selector { return p.selector }

// Admit runs every predicate over one candidate (canonical order).
func (p *Pipeline) Admit(a Arrival, n *CandidateNode) bool {
	for _, pred := range p.predicates {
		if !pred.Admit(a, n) {
			return false
		}
	}
	return true
}

// Decide runs the full pipeline for one arrival over the candidates, in
// order. run fans the prioritizer calls out (nil = serial); results land
// in index-addressed slots and the reduction is serial, so the decision
// is identical at any concurrency.
func (p *Pipeline) Decide(ctx context.Context, a Arrival, nodes []*CandidateNode, run Runner) (Decision, error) {
	if run == nil {
		run = serialRun
	}
	feasible := make([]*CandidateNode, 0, len(nodes))
	truncated := false
	for i, n := range nodes {
		if !p.Admit(a, n) {
			continue
		}
		feasible = append(feasible, n)
		if p.MaxFeasible > 0 && len(feasible) == p.MaxFeasible {
			truncated = i != len(nodes)-1
			break
		}
	}
	dec := Decision{Node: -1, Feasible: len(feasible), Truncated: truncated}
	if len(feasible) == 0 {
		return dec, nil
	}
	scores := make([]Score, len(feasible))
	err := run(ctx, len(feasible), func(i int) error {
		s, err := p.scoreOne(ctx, a, feasible[i])
		if err != nil {
			return err
		}
		scores[i] = s
		return nil
	})
	if err != nil {
		return Decision{Node: -1}, err
	}
	dec.Scored = len(feasible) * len(p.prioritizers)
	if pick := p.selector.Pick(scores); pick >= 0 {
		dec.Node = feasible[pick].Index
		dec.Score = scores[pick]
	}
	return dec, nil
}

// scoreOne combines every prioritizer's score for one candidate: OK only
// when all agree the candidate is feasible, Core and Rel from the first
// prioritizer in canonical order (the primary owns slot choice), Value
// the weight-scaled sum. A single weight-1 prioritizer passes through
// bit-identically.
func (p *Pipeline) scoreOne(ctx context.Context, a Arrival, n *CandidateNode) (Score, error) {
	first := p.prioritizers[0]
	s, err := first.Prioritizer.Score(ctx, a, n)
	if err != nil || !s.OK {
		return Score{}, err
	}
	if len(p.prioritizers) == 1 {
		if first.Weight != 1 {
			s.Value *= first.Weight
		}
		return s, nil
	}
	out := s
	out.Value = first.Weight * s.Value
	for _, w := range p.prioritizers[1:] {
		si, err := w.Prioritizer.Score(ctx, a, n)
		if err != nil {
			return Score{}, err
		}
		if !si.OK {
			return Score{}, nil
		}
		out.Value += w.Weight * si.Value
	}
	return out, nil
}
