package sim

import (
	"fmt"

	"mpmc/internal/hpc"
	"mpmc/internal/machine"
	"mpmc/internal/power"
)

// WindowRates regroups a Result's HPC sample stream into per-window,
// per-core rate vectors: out[w][c] is core c's rates in window w. numCores
// must be the machine's core count.
func (r *Result) WindowRates(numCores int) [][]hpc.Rates {
	if numCores <= 0 || len(r.HPCSamples)%numCores != 0 {
		panic(fmt.Sprintf("sim: %d HPC samples do not divide into cores of %d", len(r.HPCSamples), numCores))
	}
	windows := len(r.HPCSamples) / numCores
	out := make([][]hpc.Rates, windows)
	for w := 0; w < windows; w++ {
		out[w] = make([]hpc.Rates, numCores)
		for c := 0; c < numCores; c++ {
			s := r.HPCSamples[w*numCores+c]
			out[w][s.Core] = s.Rates
		}
	}
	return out
}

// MeasureSyntheticRates plays the power micro-benchmark role of
// Section 4.1: it drives all cores of m at the prescribed event rates for
// `windows` sampling windows and returns the measured processor power of
// each window, exactly as the DAQ would report it. The models in training
// only ever see (rates, measured power) pairs — the same observables a
// real micro-benchmark run provides.
func MeasureSyntheticRates(m *machine.Machine, rates hpc.Rates, windows int, seed uint64) []float64 {
	if windows <= 0 {
		panic("sim: non-positive window count")
	}
	oracle := power.NewOracle(m.Oracle, seed)
	sensor := power.NewSensor(m.Sensor, seed^0x7777)
	perCore := make([]hpc.Rates, m.NumCores)
	for i := range perCore {
		perCore[i] = rates
	}
	out := make([]float64, windows)
	for w := range out {
		out[w] = sensor.MeasureWindow(oracle.ProcessorPower(perCore), m.SamplePeriod)
	}
	return out
}
