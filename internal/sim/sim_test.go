package sim

import (
	"math"
	"testing"

	"mpmc/internal/hpc"
	"mpmc/internal/machine"
	"mpmc/internal/workload"
)

func TestSoloRunMatchesGroundTruth(t *testing.T) {
	// A process running alone on a die gets the whole cache: measured MPA
	// must match EffectiveMPA(assoc) and measured SPI must match Eq. 3
	// with α = MemLatency·L2RPI, β = BaseSPI.
	m := machine.TwoCoreWorkstation()
	for _, name := range []string{"gzip", "mcf", "twolf"} {
		spec := workload.ByName(name)
		res, err := Run(m, Single(spec, nil), Options{Warmup: 2, Duration: 6, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		p := res.Procs[0]
		wantMPA := spec.EffectiveMPA(float64(m.Assoc))
		if math.Abs(p.MPA()-wantMPA) > 0.02 {
			t.Errorf("%s: MPA %.4f want %.4f", name, p.MPA(), wantMPA)
		}
		wantSPI := spec.TrueSPI(m.MemLatency, m.MLPOverlap, p.MPA())
		if math.Abs(p.SPI()-wantSPI)/wantSPI > 0.01 {
			t.Errorf("%s: SPI %.4g want %.4g", name, p.SPI(), wantSPI)
		}
		if p.AvgWays <= 0 || p.AvgWays > float64(m.Assoc)+1e-9 {
			t.Errorf("%s: AvgWays %v outside (0, %d]", name, p.AvgWays, m.Assoc)
		}
	}
}

func TestCoRunPartitionsCache(t *testing.T) {
	// Two cache-hungry processes sharing a die: their effective sizes
	// must sum to ~the associativity (Eq. 1) and each must miss more than
	// when running alone.
	m := machine.TwoCoreWorkstation()
	mcf := workload.ByName("mcf")
	art := workload.ByName("art")

	solo, err := Run(m, Single(mcf, nil), Options{Warmup: 2, Duration: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	co, err := Run(m, Single(mcf, art), Options{Warmup: 2, Duration: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pm := co.ProcByName("mcf")
	pa := co.ProcByName("art")
	sum := pm.AvgWays + pa.AvgWays
	if math.Abs(sum-float64(m.Assoc)) > 0.5 {
		t.Fatalf("effective sizes sum to %.2f, want ~%d", sum, m.Assoc)
	}
	if pm.MPA() <= solo.Procs[0].MPA()+0.005 {
		t.Fatalf("contention did not raise mcf's MPA: solo %.4f co %.4f",
			solo.Procs[0].MPA(), pm.MPA())
	}
}

func TestCPUBoundUnaffectedByContention(t *testing.T) {
	// gzip barely uses the L2: co-running with mcf should not change its
	// SPI much — the heterogeneity the suite is designed to expose.
	m := machine.TwoCoreWorkstation()
	gzip := workload.ByName("gzip")
	mcf := workload.ByName("mcf")
	solo, err := Run(m, Single(gzip, nil), Options{Warmup: 2, Duration: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	co, err := Run(m, Single(gzip, mcf), Options{Warmup: 2, Duration: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s0 := solo.Procs[0].SPI()
	s1 := co.ProcByName("gzip").SPI()
	// gzip does lose ways to mcf (raising its miss rate), but its low L2
	// intensity bounds the damage — far below what a memory-bound
	// process suffers (mcf-vs-mcf degrades by ~2×).
	if math.Abs(s1-s0)/s0 > 0.20 {
		t.Fatalf("gzip SPI changed %.4g → %.4g under contention", s0, s1)
	}
}

func TestTimeSharingSplitsRunTime(t *testing.T) {
	// Two processes on one core each get ~half the wall clock.
	m := machine.TwoCoreWorkstation()
	a := workload.ByName("gzip")
	b := workload.ByName("vpr")
	asg := Assignment{Procs: [][]*workload.Spec{{a, b}, nil}}
	const dur = 8.0
	res, err := Run(m, asg, Options{Warmup: 2, Duration: dur, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Procs {
		share := p.RunTime / dur
		if math.Abs(share-0.5) > 0.1 {
			t.Fatalf("%s run-time share %.3f, want ~0.5", p.Spec.Name, share)
		}
	}
	// SPI under time sharing stays close to solo SPI (the paper's
	// context-switch observation: refill cost is small).
	solo, err := Run(m, Single(a, nil), Options{Warmup: 2, Duration: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ts := res.ProcByName("gzip").SPI()
	ss := solo.Procs[0].SPI()
	if math.Abs(ts-ss)/ss > 0.05 {
		t.Fatalf("time-shared SPI %.4g vs solo %.4g", ts, ss)
	}
}

func TestIdleMachinePower(t *testing.T) {
	m := machine.FourCoreServer()
	asg := Assignment{Procs: make([][]*workload.Spec, m.NumCores)}
	res, err := Run(m, asg, Options{Duration: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Oracle.Uncore + float64(m.NumCores)*m.Oracle.CoreIdle
	got := res.AvgMeasuredPower()
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("idle power %.2f W, want ~%.2f W", got, want)
	}
	if len(res.MeasuredPower) < 50 {
		t.Fatalf("only %d power samples", len(res.MeasuredPower))
	}
}

func TestBusyBeatsIdlePower(t *testing.T) {
	m := machine.FourCoreServer()
	idle := Assignment{Procs: make([][]*workload.Spec, m.NumCores)}
	ri, err := Run(m, idle, Options{Duration: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	busy := Single(workload.ByName("gzip"), workload.ByName("art"),
		workload.ByName("vpr"), workload.ByName("ammp"))
	rb, err := Run(m, busy, Options{Warmup: 1, Duration: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rb.AvgMeasuredPower() <= ri.AvgMeasuredPower()+2 {
		t.Fatalf("busy %.2f W not above idle %.2f W",
			rb.AvgMeasuredPower(), ri.AvgMeasuredPower())
	}
}

func TestHPCSamplesConsistent(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	spec := workload.ByName("twolf")
	res, err := Run(m, Single(spec, nil), Options{Warmup: 1, Duration: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// Average L1RPS over samples of core 0 must equal L1RPI / SPI.
	var sum float64
	var n int
	for _, s := range res.HPCSamples {
		if s.Core != 0 {
			continue
		}
		sum += s.Rates.L1RPS
		n++
	}
	got := sum / float64(n)
	want := spec.L1RPI / res.Procs[0].SPI()
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("avg L1RPS %.4g want %.4g", got, want)
	}
	// Idle core's samples must be all zero.
	for _, s := range res.HPCSamples {
		if s.Core == 1 && s.Rates != (res.HPCSamples[0].Rates.Scale(0)) {
			t.Fatalf("idle core shows activity: %+v", s.Rates)
		}
	}
}

func TestDeterminism(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	asg := Single(workload.ByName("vpr"), workload.ByName("bzip2"))
	opts := Options{Warmup: 1, Duration: 2, Seed: 42}
	r1, err := Run(m, asg, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(m, asg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Procs {
		if r1.Procs[i].L2Misses != r2.Procs[i].L2Misses ||
			r1.Procs[i].Instructions != r2.Procs[i].Instructions {
			t.Fatal("runs with equal seeds diverged")
		}
	}
	if r1.AvgMeasuredPower() != r2.AvgMeasuredPower() {
		t.Fatal("power traces diverged")
	}
}

func TestSeedChangesRun(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	asg := Single(workload.ByName("vpr"), nil)
	r1, _ := Run(m, asg, Options{Duration: 1, Seed: 1})
	r2, _ := Run(m, asg, Options{Duration: 1, Seed: 2})
	if r1.Procs[0].L2Misses == r2.Procs[0].L2Misses {
		t.Fatal("different seeds produced identical miss counts")
	}
}

func TestRunValidation(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	if _, err := Run(m, Assignment{Procs: [][]*workload.Spec{nil}}, Options{Duration: 1}); err == nil {
		t.Fatal("accepted assignment with wrong core count")
	}
	asg := Single(nil, nil)
	if _, err := Run(m, asg, Options{Duration: 0}); err == nil {
		t.Fatal("accepted zero duration")
	}
	if _, err := Run(m, asg, Options{Duration: 1, Warmup: -1}); err == nil {
		t.Fatal("accepted negative warmup")
	}
}

func TestProcSamplesCollected(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	asg := Assignment{Procs: [][]*workload.Spec{
		{workload.ByName("twolf"), workload.ByName("vpr")}, nil}}
	res, err := Run(m, asg, Options{Warmup: 1, Duration: 4, Seed: 3, CollectProcSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ProcSamples) == 0 {
		t.Fatal("no proc samples collected")
	}
	// Exactly one process is active on the core at any sample.
	byTime := map[float64]int{}
	for _, s := range res.ProcSamples {
		if s.Active {
			byTime[s.Time]++
		}
	}
	for tm, n := range byTime {
		if n != 1 {
			t.Fatalf("at t=%v, %d active processes on one core", tm, n)
		}
	}
}

func TestStressmarkCoRunPinsWays(t *testing.T) {
	// The profiling assumption: stressmark with i ways leaves A−i ways to
	// the co-runner. Verified here for the middle of the range.
	m := machine.TwoCoreWorkstation() // 8 ways
	stress := workload.Stressmark(5)
	vpr := workload.ByName("vpr")
	res, err := Run(m, Single(vpr, stress), Options{Warmup: 2, Duration: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sw := res.Procs[1].AvgWays
	if math.Abs(sw-5) > 0.6 {
		t.Fatalf("stressmark holds %.2f ways, want ~5", sw)
	}
	bw := res.Procs[0].AvgWays
	if math.Abs(bw-3) > 0.8 {
		t.Fatalf("vpr holds %.2f ways, want ~3", bw)
	}
}

func BenchmarkCoRunSecond(b *testing.B) {
	// Cost of one simulated second of a 2-process co-run.
	m := machine.TwoCoreWorkstation()
	asg := Single(workload.ByName("mcf"), workload.ByName("art"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, asg, Options{Duration: 1, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDieIsolation(t *testing.T) {
	// Processes on different dies of the 4-core server share nothing: a
	// heavy process on die 1 must not change a process's behaviour on
	// die 0 (beyond its own seeded randomness).
	m := machine.FourCoreServer()
	alone, err := Run(m, Single(workload.ByName("twolf"), nil, nil, nil),
		Options{Warmup: 2, Duration: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	crowded, err := Run(m, Single(workload.ByName("twolf"), nil, workload.ByName("mcf"), workload.ByName("art")),
		Options{Warmup: 2, Duration: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	a := alone.ProcByName("twolf")
	c := crowded.ProcByName("twolf")
	if math.Abs(a.MPA()-c.MPA()) > 0.01 {
		t.Fatalf("cross-die interference: MPA %.4f vs %.4f", a.MPA(), c.MPA())
	}
	if rel := math.Abs(a.SPI()-c.SPI()) / a.SPI(); rel > 0.01 {
		t.Fatalf("cross-die interference: SPI %.4g vs %.4g", a.SPI(), c.SPI())
	}
}

func TestWindowRatesPanicsOnMismatch(t *testing.T) {
	r := &Result{}
	r.HPCSamples = make([]hpc.Sample, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 3 samples across 2 cores")
		}
	}()
	r.WindowRates(2)
}

func TestMeasureSyntheticRatesPanics(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero windows")
		}
	}()
	MeasureSyntheticRates(m, hpc.Rates{}, 0, 1)
}

func TestMeasureSyntheticRatesIdle(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	watts := MeasureSyntheticRates(m, hpc.Rates{}, 50, 1)
	if len(watts) != 50 {
		t.Fatalf("got %d windows", len(watts))
	}
	want := m.Oracle.Uncore + 2*m.Oracle.CoreIdle
	var sum float64
	for _, w := range watts {
		sum += w
	}
	if got := sum / 50; math.Abs(got-want)/want > 0.05 {
		t.Fatalf("idle synthetic power %.2f want ~%.2f", got, want)
	}
}

func TestMemBandwidthThrottles(t *testing.T) {
	// A bounded bus must slow a memory-bound process down versus the
	// unconstrained machine, and an absurdly generous bus must not.
	spec := workload.ByName("mcf")
	run := func(bw float64) float64 {
		m := machine.TwoCoreWorkstation()
		m.MemBandwidth = bw
		res, err := Run(m, Single(spec, nil), Options{Warmup: 2, Duration: 4, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Procs[0].SPI()
	}
	free := run(0)
	generous := run(1e9)
	tight := run(8000) // mcf alone misses ~10k/s: the bus is the bottleneck
	if math.Abs(generous-free)/free > 0.01 {
		t.Fatalf("generous bus changed SPI: %.4g vs %.4g", generous, free)
	}
	if tight < free*1.2 {
		t.Fatalf("tight bus did not throttle: %.4g vs %.4g", tight, free)
	}
}
