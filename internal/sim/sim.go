// Package sim is the event-driven co-execution engine: it runs a set of
// synthetic processes on a simulated multi-core machine, with round-robin
// time sharing on each core, per-die shared L2 caches, HPC sampling, and
// the power oracle + sensor chain.
//
// It is the stand-in for "run these SPEC benchmarks on the Q6600 and
// record PAPI counters and the current clamp": every experiment in the
// reproduction obtains its measured data from this package, and the models
// under test never see anything the corresponding hardware experiment
// would not expose.
//
// Timing model: a process issues one L2 reference every 1/L2RPI
// instructions; the interval costs BaseSPI seconds per instruction (scaled
// by the core's speed factor on heterogeneous machines) plus the memory
// latency if the reference misses, with back-to-back misses overlapping by
// the machine's MLPOverlap factor. Steady-state SPI is therefore mildly
// concave in MPA — approximately the linear Eq. 3 relationship with
// α ≈ MemLatency·L2RPI and β ≈ BaseSPI, whose parameters the profiling
// stage must recover from measurements (see workload.Spec.TrueSPI for the
// exact expression).
package sim

import (
	"fmt"
	"math"

	"mpmc/internal/cache"
	"mpmc/internal/hpc"
	"mpmc/internal/machine"
	"mpmc/internal/power"
	"mpmc/internal/trace"
	"mpmc/internal/workload"
	"mpmc/internal/xrand"
)

// Assignment maps processes to cores: Procs[c] lists the specs
// time-sharing core c (empty slice = idle core).
type Assignment struct {
	Procs [][]*workload.Spec
}

// Single builds an assignment with at most one process per core; nil
// entries leave the core idle.
func Single(specs ...*workload.Spec) Assignment {
	a := Assignment{Procs: make([][]*workload.Spec, len(specs))}
	for i, s := range specs {
		if s != nil {
			a.Procs[i] = []*workload.Spec{s}
		}
	}
	return a
}

// Options controls a simulation run.
type Options struct {
	// Warmup is discarded simulated time before measurement starts.
	Warmup float64
	// Duration is the measured simulated time.
	Duration float64
	// Seed drives every random stream of the run.
	Seed uint64
	// CollectProcSamples records per-process per-window activity, used by
	// the context-switch refill study.
	CollectProcSamples bool
}

// ProcResult holds one process's measurements over the measured interval.
type ProcResult struct {
	Spec *workload.Spec
	Core int

	Instructions float64
	L2Refs       uint64
	L2Misses     uint64
	// RunTime is the time the process actually executed (excludes time
	// descheduled and context-switch overhead).
	RunTime float64
	// AvgWays is the mean number of ways per set the process occupied in
	// its shared cache, sampled on the HPC period: the measured effective
	// cache size S_i.
	AvgWays float64
}

// MPA returns measured misses per access.
func (p *ProcResult) MPA() float64 {
	if p.L2Refs == 0 {
		return 0
	}
	return float64(p.L2Misses) / float64(p.L2Refs)
}

// SPI returns measured seconds per instruction.
func (p *ProcResult) SPI() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return p.RunTime / p.Instructions
}

// APS returns measured cache accesses per second of run time.
func (p *ProcResult) APS() float64 {
	if p.RunTime == 0 {
		return 0
	}
	return float64(p.L2Refs) / p.RunTime
}

// ProcSample is one per-window observation of one process (only collected
// with Options.CollectProcSamples).
type ProcSample struct {
	Time     float64
	Proc     int
	L2Refs   uint64
	L2Misses uint64
	Active   bool // was the process scheduled at window end
}

// Result is everything a simulation run measured.
type Result struct {
	Procs []*ProcResult
	// HPCSamples holds per-core samples on the machine's sampling period
	// (the PAPI stream), measured-interval only.
	HPCSamples []hpc.Sample
	// MeasuredPower is the sensor's processor-power trace, one point per
	// sampling window.
	MeasuredPower power.Trace
	// TruePowerAvg is the oracle's average power (diagnostics only;
	// models must use MeasuredPower).
	TruePowerAvg float64
	// ProcSamples is per-process window activity when requested.
	ProcSamples []ProcSample
}

// AvgMeasuredPower returns the mean of the measured power trace.
func (r *Result) AvgMeasuredPower() float64 { return r.MeasuredPower.Mean() }

// ProcByName returns the first measured process with the given spec name.
func (r *Result) ProcByName(name string) *ProcResult {
	for _, p := range r.Procs {
		if p.Spec.Name == name {
			return p
		}
	}
	return nil
}

// proc is the internal runtime state of one process.
type proc struct {
	spec  *workload.Spec
	gen   trace.Generator
	core  int
	group int
	owner int

	instrPerAccess float64
	gapTime        float64 // instrPerAccess · BaseSPI

	counts   hpc.Counts
	runTime  float64
	lastMiss bool

	waysSum     float64
	waysSamples int

	prevWindow hpc.Counts // for per-proc window deltas
}

// coreState tracks scheduling on one core.
type coreState struct {
	queue    []*proc
	active   int // index into queue; -1 when idle
	sliceEnd float64
	nextTime float64 // next event time; +Inf when idle
	rotate   bool    // next event is a rotation, not an access

	counts hpc.Counts // cumulative core-level counters (what HPCs see)
	prev   hpc.Counts // counts at the previous sample boundary
}

// Run simulates asg on m and returns the measurements.
func Run(m *machine.Machine, asg Assignment, opts Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(asg.Procs) != m.NumCores {
		return nil, fmt.Errorf("sim: assignment covers %d cores, machine has %d", len(asg.Procs), m.NumCores)
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration")
	}
	if opts.Warmup < 0 {
		return nil, fmt.Errorf("sim: negative warmup")
	}

	rng := xrand.New(opts.Seed)
	caches := make([]*cache.Cache, len(m.Groups))
	busFreeAt := make([]float64, len(m.Groups)) // shared memory bus per group
	for gi := range m.Groups {
		caches[gi] = cache.New(m.CacheConfig(rng.Uint64()))
	}
	oracle := power.NewOracle(m.Oracle, rng.Uint64())
	sensor := power.NewSensor(m.Sensor, rng.Uint64())

	// Build process and core state.
	var procs []*proc
	cores := make([]*coreState, m.NumCores)
	for c := 0; c < m.NumCores; c++ {
		cs := &coreState{active: -1, nextTime: math.Inf(1)}
		for _, spec := range asg.Procs[c] {
			if err := spec.Validate(); err != nil {
				return nil, err
			}
			p := &proc{
				spec:           spec,
				gen:            spec.NewGenerator(m.NumSets, rng.Uint64()),
				core:           c,
				group:          m.GroupOf(c),
				owner:          len(procs),
				instrPerAccess: 1 / spec.L2RPI,
			}
			// Heterogeneous cores execute instructions faster or slower;
			// memory latency is shared and unchanged.
			p.gapTime = p.instrPerAccess * spec.BaseSPI / m.SpeedOf(c)
			procs = append(procs, p)
			cs.queue = append(cs.queue, p)
		}
		if len(cs.queue) > 0 {
			cs.active = 0
			cs.sliceEnd = m.Timeslice
			cs.nextTime = cs.queue[0].gapTime
		}
		cores[c] = cs
	}
	if len(procs) > cache.MaxOwners {
		return nil, fmt.Errorf("sim: %d processes exceed owner limit %d", len(procs), cache.MaxOwners)
	}

	res := &Result{}
	endTime := opts.Warmup + opts.Duration
	nextSample := m.SamplePeriod
	measuring := opts.Warmup == 0
	var truePowerSum float64
	var truePowerN int

	resetForMeasurement := func() {
		for _, p := range procs {
			p.counts = hpc.Counts{}
			p.runTime = 0
			p.waysSum = 0
			p.waysSamples = 0
			p.prevWindow = hpc.Counts{}
		}
		for _, cs := range cores {
			cs.counts = hpc.Counts{}
			cs.prev = hpc.Counts{}
		}
		for _, ch := range caches {
			ch.ResetStats()
		}
	}

	doSample := func(t float64) {
		for c, cs := range cores {
			delta := cs.counts.Sub(cs.prev)
			cs.prev = cs.counts
			rates := delta.RatesOver(m.SamplePeriod)
			if !measuring {
				continue
			}
			res.HPCSamples = append(res.HPCSamples, hpc.Sample{
				Time:  t,
				Core:  c,
				Rates: rates,
				IPS:   delta.Instructions / m.SamplePeriod,
			})
		}
		if measuring {
			// Oracle consumes the last window's per-core rates.
			n := len(res.HPCSamples)
			coreRates := make([]hpc.Rates, m.NumCores)
			for i := n - m.NumCores; i < n; i++ {
				coreRates[res.HPCSamples[i].Core] = res.HPCSamples[i].Rates
			}
			truP := oracle.ProcessorPower(coreRates)
			truePowerSum += truP
			truePowerN++
			res.MeasuredPower = append(res.MeasuredPower, power.TracePoint{
				Time:  t,
				Power: sensor.MeasureWindow(truP, m.SamplePeriod),
			})
			for _, p := range procs {
				p.waysSum += caches[p.group].AvgWays(p.owner)
				p.waysSamples++
			}
			if opts.CollectProcSamples {
				for i, p := range procs {
					d := p.counts.Sub(p.prevWindow)
					p.prevWindow = p.counts
					cs := cores[p.core]
					res.ProcSamples = append(res.ProcSamples, ProcSample{
						Time:     t,
						Proc:     i,
						L2Refs:   uint64(d.L2Refs),
						L2Misses: uint64(d.L2Misses),
						Active:   cs.active >= 0 && cs.queue[cs.active] == p,
					})
				}
			}
		}
	}

	warmupDone := opts.Warmup == 0
	for {
		// Next core event.
		minT := math.Inf(1)
		minC := -1
		for c, cs := range cores {
			if cs.nextTime < minT {
				minT = cs.nextTime
				minC = c
			}
		}
		// Interleave sampling, warmup reset, and termination in time order.
		for nextSample <= minT {
			if !warmupDone && nextSample > opts.Warmup {
				// Counters reset at this boundary; the straddling window
				// is discarded rather than reported as a zero sample.
				resetForMeasurement()
				measuring = true
				warmupDone = true
				nextSample += m.SamplePeriod
				continue
			}
			if nextSample > endTime {
				goto done
			}
			doSample(nextSample)
			nextSample += m.SamplePeriod
		}
		if minC < 0 {
			// No runnable processes; only sampling advances time.
			continue
		}
		cs := cores[minC]
		t := cs.nextTime
		if cs.rotate {
			cs.rotate = false
			cs.active = (cs.active + 1) % len(cs.queue)
			cs.sliceEnd = t + m.Timeslice
			cs.nextTime = t + m.CtxSwitch + cs.queue[cs.active].gapTime
			continue
		}
		p := cs.queue[cs.active]
		// Execute the access interval ending at t.
		p.counts.Instructions += p.instrPerAccess
		p.counts.L1Refs += p.spec.L1RPI * p.instrPerAccess
		p.counts.Branches += p.spec.BRPI * p.instrPerAccess
		p.counts.FPOps += p.spec.FPPI * p.instrPerAccess
		p.counts.L2Refs++
		hit := caches[p.group].Access(p.owner, p.gen.Next())
		dt := p.gapTime
		if !hit {
			p.counts.L2Misses++
			// Back-to-back misses overlap (memory-level parallelism).
			stall := m.MemLatency
			if p.lastMiss {
				stall *= 1 - m.MLPOverlap
			}
			if m.MemBandwidth > 0 {
				// The group's memory bus serves one miss per 1/bandwidth
				// seconds; queued misses wait behind in-flight ones.
				service := 1 / m.MemBandwidth
				start := t
				if busFreeAt[p.group] > start {
					stall += busFreeAt[p.group] - start
					start = busFreeAt[p.group]
				}
				busFreeAt[p.group] = start + service
			}
			dt += stall
		}
		p.lastMiss = !hit
		p.runTime += dt
		cs.counts.Instructions += p.instrPerAccess
		cs.counts.L1Refs += p.spec.L1RPI * p.instrPerAccess
		cs.counts.Branches += p.spec.BRPI * p.instrPerAccess
		cs.counts.FPOps += p.spec.FPPI * p.instrPerAccess
		cs.counts.L2Refs++
		if !hit {
			cs.counts.L2Misses++
		}
		nt := t + dt
		if nt >= cs.sliceEnd && len(cs.queue) > 1 {
			cs.rotate = true
			cs.nextTime = cs.sliceEnd
			if cs.sliceEnd < nt {
				// The preempted interval would have crossed the slice
				// boundary; run it to completion first (non-preemptible
				// memory stall), then rotate.
				cs.nextTime = nt
			}
		} else {
			cs.nextTime = nt
		}
	}

done:
	for _, p := range procs {
		pr := &ProcResult{
			Spec:         p.spec,
			Core:         p.core,
			Instructions: p.counts.Instructions,
			L2Refs:       uint64(p.counts.L2Refs),
			L2Misses:     uint64(p.counts.L2Misses),
			RunTime:      p.runTime,
		}
		if p.waysSamples > 0 {
			pr.AvgWays = p.waysSum / float64(p.waysSamples)
		}
		res.Procs = append(res.Procs, pr)
	}
	if truePowerN > 0 {
		res.TruePowerAvg = truePowerSum / float64(truePowerN)
	}
	return res, nil
}
