// Record framing: every durable write — a log batch or the snapshot —
// is one length- and CRC-prefixed frame, so a reader can tell a whole
// record from a torn one without trusting file size.

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	recordHeader = 8 // uint32 length + uint32 crc32, little-endian
	// maxRecord bounds one record's payload. Batches are a handful of
	// small events; anything near the cap is corruption, not data.
	maxRecord = 1 << 20
)

// errTornRecord reports a frame that is incomplete or fails its CRC —
// the expected shape of a crash-interrupted tail, not an I/O fault.
var errTornRecord = errors.New("wal: torn or corrupt record")

// encodeRecord frames payload into one record.
func encodeRecord(payload []byte) ([]byte, error) {
	if len(payload) > maxRecord {
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds cap %d", len(payload), maxRecord)
	}
	rec := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[recordHeader:], payload)
	return rec, nil
}

// decodeRecord reads one record from the head of data, returning the
// payload and the record's total encoded length. Any shortfall or CRC
// mismatch is errTornRecord.
func decodeRecord(data []byte) (payload []byte, n int, err error) {
	if len(data) < recordHeader {
		return nil, 0, errTornRecord
	}
	size := binary.LittleEndian.Uint32(data[0:4])
	if size > maxRecord {
		return nil, 0, errTornRecord
	}
	end := recordHeader + int(size)
	if len(data) < end {
		return nil, 0, errTornRecord
	}
	payload = data[recordHeader:end]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, 0, errTornRecord
	}
	return payload, end, nil
}
