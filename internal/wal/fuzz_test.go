package wal

import (
	"bytes"
	"testing"
)

// FuzzRecordDecode hammers the frame decoder with arbitrary bytes: it
// must never panic, never return a record longer than its input, and
// every decoded frame must re-encode to the exact bytes it came from.
func FuzzRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	if rec, err := encodeRecord([]byte(`[{"t":"submitted","bench":"mcf","ticket":1}]`)); err == nil {
		f.Add(rec)
		f.Add(rec[:len(rec)-1])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n < recordHeader || n > len(data) {
			t.Fatalf("decoded length %d out of range (input %d)", n, len(data))
		}
		if len(payload) != n-recordHeader {
			t.Fatalf("payload %d bytes vs frame %d", len(payload), n)
		}
		re, err := encodeRecord(payload)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encoded frame differs from input")
		}
	})
}
