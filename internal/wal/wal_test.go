package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func mustOpen(t *testing.T, dir string) (*Log, *State) {
	t.Helper()
	l, st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, st
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, st := mustOpen(t, dir)
	if len(st.Residents) != 0 || len(st.Queue) != 0 {
		t.Fatalf("fresh state not empty: %+v", st)
	}
	batches := [][]Event{
		{{Type: EvAdmitted, Node: "m0", Name: "mcf#1", Core: 0, Bench: "mcf"}},
		{{Type: EvSubmitted, Bench: "art", Tag: "t-1", Ticket: 1}},
		{{Type: EvAdmitted, Node: "m1", Name: "art#1", Core: 1, Bench: "art", Tag: "t-1", Ticket: 1}},
		{{Type: EvAdmitted, Node: "m0", Name: "gzip#2", Core: 1, Bench: "gzip", Priority: 2}},
		{{Type: EvDeparted, Node: "m0", Name: "mcf#1"}},
		{{Type: EvSubmitted, Bench: "mcf", Ticket: 2}, {Type: EvCancelled, Ticket: 2}},
	}
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, st2 := mustOpen(t, dir)
	defer l2.Close()
	want := &State{
		Residents: []Resident{
			{Node: "m1", Name: "art#1", Core: 1, Bench: "art", Tag: "t-1"},
			{Node: "m0", Name: "gzip#2", Core: 1, Bench: "gzip", Priority: 2},
		},
		Seq: 2,
	}
	if !reflect.DeepEqual(st2, want) {
		t.Fatalf("recovered state\n got %+v\nwant %+v", st2, want)
	}
}

func TestCompactStartsFreshGeneration(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Event{{Type: EvAdmitted, Node: "m0", Name: "mcf#1", Bench: "mcf"}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := l.Append([]Event{{Type: EvAdmitted, Node: "m0", Name: "art#2", Core: 1, Bench: "art"}}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// The old generation's log must be gone (and would be ignored anyway).
	if _, err := os.Stat(filepath.Join(dir, logName(0))); !os.IsNotExist(err) {
		t.Fatalf("generation-0 log survived compaction: %v", err)
	}
	l2, st := mustOpen(t, dir)
	defer l2.Close()
	if len(st.Residents) != 2 {
		t.Fatalf("recovered %d residents, want 2: %+v", len(st.Residents), st.Residents)
	}
	if st.Residents[0].Name != "mcf#1" || st.Residents[1].Name != "art#2" {
		t.Fatalf("bad admission order: %+v", st.Residents)
	}
}

func TestNodeDownEvictsAndNodeUpRestores(t *testing.T) {
	st := &State{}
	evs := []Event{
		{Type: EvAdmitted, Node: "m0", Name: "mcf#1", Bench: "mcf"},
		{Type: EvAdmitted, Node: "m1", Name: "art#1", Bench: "art"},
		{Type: EvNodeDown, Node: "m0"},
	}
	for _, e := range evs {
		if err := st.Apply(e); err != nil {
			t.Fatal(err)
		}
	}
	if len(st.Residents) != 1 || st.Residents[0].Node != "m1" {
		t.Fatalf("node_down did not evict: %+v", st.Residents)
	}
	if len(st.Down) != 1 || st.Down[0] != "m0" {
		t.Fatalf("down list wrong: %v", st.Down)
	}
	if err := st.Apply(Event{Type: EvNodeUp, Node: "m0"}); err != nil {
		t.Fatal(err)
	}
	if len(st.Down) != 0 {
		t.Fatalf("node_up did not clear: %v", st.Down)
	}
}

func TestApplyRejectsCorruption(t *testing.T) {
	cases := []struct {
		name string
		evs  []Event
	}{
		{"departed-unknown", []Event{{Type: EvDeparted, Node: "m0", Name: "x#1"}}},
		{"cancelled-unknown", []Event{{Type: EvCancelled, Ticket: 9}}},
		{"admit-duplicate", []Event{
			{Type: EvAdmitted, Node: "m0", Name: "x#1", Bench: "x"},
			{Type: EvAdmitted, Node: "m0", Name: "x#1", Bench: "x"},
		}},
		{"unknown-type", []Event{{Type: "bogus"}}},
		{"up-not-down", []Event{{Type: EvNodeUp, Node: "m0"}}},
	}
	for _, tc := range cases {
		st := &State{}
		var err error
		for _, e := range tc.evs {
			if err = st.Apply(e); err != nil {
				break
			}
		}
		if err == nil {
			t.Errorf("%s: Apply accepted corrupt sequence", tc.name)
		}
	}
}

// TestTornWriteEveryByteBoundary is the satellite's torn-write sweep:
// the log is truncated at every byte length of its final record, and
// recovery must yield either the pre-record state (partial frame
// dropped) or the post-record state (whole frame kept) — never a
// partial application, and never an error.
func TestTornWriteEveryByteBoundary(t *testing.T) {
	build := func(t *testing.T, dir string) {
		l, _ := mustOpen(t, dir)
		if err := l.Append([]Event{{Type: EvAdmitted, Node: "m0", Name: "mcf#1", Core: 0, Bench: "mcf"}}); err != nil {
			t.Fatal(err)
		}
		// The final record is a batch, so a torn tail would tear a
		// multi-event operation if recovery were per-event.
		if err := l.Append([]Event{
			{Type: EvSubmitted, Bench: "art", Tag: "last", Ticket: 7},
			{Type: EvAdmitted, Node: "m1", Name: "art#1", Core: 1, Bench: "art", Tag: "last", Ticket: 7},
		}); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}

	ref := t.TempDir()
	build(t, ref)
	logPath := filepath.Join(ref, logName(0))
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the final record's start offset by walking whole frames.
	lastStart := 0
	for off := 0; off < len(full); {
		_, n, derr := decodeRecord(full[off:])
		if derr != nil {
			t.Fatalf("reference log has torn record at %d", off)
		}
		lastStart = off
		off += n
	}

	preState := &State{
		Residents: []Resident{{Node: "m0", Name: "mcf#1", Core: 0, Bench: "mcf"}},
	}
	postState := &State{
		Residents: []Resident{
			{Node: "m0", Name: "mcf#1", Core: 0, Bench: "mcf"},
			{Node: "m1", Name: "art#1", Core: 1, Bench: "art", Tag: "last"},
		},
		Seq: 7,
	}

	for cut := lastStart; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, st, err := Open(dir)
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		want := preState
		if cut == len(full) {
			want = postState
		}
		if !reflect.DeepEqual(st, want) {
			t.Fatalf("cut=%d: recovered\n got %+v\nwant %+v", cut, st, want)
		}
		// The torn tail must be gone: appending and reopening replays
		// cleanly from the truncation point.
		if err := l.Append([]Event{{Type: EvSubmitted, Bench: "gzip", Ticket: 99}}); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		l.Close()
		l2, st2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		l2.Close()
		if len(st2.Queue) != 1 || st2.Queue[0].Ticket != 99 {
			t.Fatalf("cut=%d: post-truncation append lost: %+v", cut, st2)
		}
	}
}

// TestTornBitFlip corrupts one byte inside the last record: CRC must
// reject the frame and recovery falls back to the pre-record state.
func TestTornBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Event{{Type: EvAdmitted, Node: "m0", Name: "mcf#1", Bench: "mcf"}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Event{{Type: EvAdmitted, Node: "m1", Name: "art#1", Bench: "art"}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(dir, logName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, st := mustOpen(t, dir)
	l2.Close()
	if len(st.Residents) != 1 || st.Residents[0].Name != "mcf#1" {
		t.Fatalf("bit flip not contained to last record: %+v", st.Residents)
	}
}

func TestOversizeLengthHeaderIsTorn(t *testing.T) {
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxRecord+1)
	if _, _, err := decodeRecord(hdr[:]); err == nil {
		t.Fatal("oversize length accepted")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir())
	l.Close()
	if err := l.Append([]Event{{Type: EvSubmitted, Bench: "x", Ticket: 1}}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// TestFreqEvents pins the EvFreq state machinery: rungs fold into the
// Freq map, a node loss reboots the node to base (entry dropped, map
// nil'd when empty so pre-DVFS states stay byte-identical), a rungless
// event is corruption, Clone deep-copies the map, and the rungs survive
// a compaction + reopen round trip.
func TestFreqEvents(t *testing.T) {
	s := &State{}
	if err := s.Apply(Event{Type: EvFreq, Node: "m0"}); err == nil {
		t.Fatal("rungless freq event accepted")
	}
	for _, e := range []Event{
		{Type: EvAdmitted, Node: "m0", Name: "mcf#1", Bench: "mcf"},
		{Type: EvFreq, Node: "m0", Freq: 1},
		{Type: EvFreq, Node: "m1", Freq: 2},
		{Type: EvFreq, Node: "m0", Freq: 3},
	} {
		if err := s.Apply(e); err != nil {
			t.Fatalf("Apply(%+v): %v", e, err)
		}
	}
	if !reflect.DeepEqual(s.Freq, map[string]int{"m0": 3, "m1": 2}) {
		t.Fatalf("Freq map %+v", s.Freq)
	}

	c := s.Clone()
	c.Freq["m0"] = 1
	if s.Freq["m0"] != 3 {
		t.Fatal("Clone shares the Freq map with its source")
	}

	// Node loss reboots to base: the entry goes, and an empty map decays
	// to nil so a fleet that re-clocked once serializes like one that
	// never did.
	if err := s.Apply(Event{Type: EvNodeDown, Node: "m0"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Freq["m0"]; ok {
		t.Fatal("down node kept its rung")
	}
	if err := s.Apply(Event{Type: EvNodeDown, Node: "m1"}); err != nil {
		t.Fatal(err)
	}
	if s.Freq != nil {
		t.Fatalf("empty Freq map not nil'd: %+v", s.Freq)
	}

	// Durable round trip: rungs written, compacted into the snapshot, and
	// recovered across reopen.
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Event{
		{Type: EvAdmitted, Node: "m0", Name: "mcf#1", Bench: "mcf"},
		{Type: EvFreq, Node: "m0", Freq: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Event{{Type: EvFreq, Node: "m2", Freq: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, st := mustOpen(t, dir)
	defer l2.Close()
	if !reflect.DeepEqual(st.Freq, map[string]int{"m0": 2, "m2": 1}) {
		t.Fatalf("recovered Freq %+v", st.Freq)
	}
}
