// Package wal persists the fleet scheduler's placement state as a
// snapshot plus an append-only log of admission events, so a restarted
// server recovers its residents and pending queue byte-identically.
//
// The unit of durability is the *operation batch*: every fleet mutation
// (a placement, a departure with its cascade of queue admissions, a
// preemption exchange, a node loss) emits its events as one CRC-framed
// record written with a single write call. Recovery replays whole
// records only — a torn tail (the crash landed mid-write) fails the CRC
// and is truncated, so the recovered state is always "before the
// operation" or "after the operation", never between.
//
// Record framing, little-endian:
//
//	uint32 length | uint32 crc32(payload) | payload (JSON array of Event)
//
// The snapshot file uses the identical framing around one JSON State and
// is committed by atomic rename; a generation number links each snapshot
// to its log file so a crash between "snapshot renamed" and "old log
// removed" can never replay stale events against the new snapshot.
package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Event types. The set mirrors the fleet's mutation vocabulary; recovery
// replays them through State.Apply.
const (
	// EvAdmitted records one instance landing on a node. Ticket, when
	// positive, names the queue entry this admission consumed.
	EvAdmitted = "admitted"
	// EvDeparted records one instance leaving a node (process exit or a
	// rebalance move's source half).
	EvDeparted = "departed"
	// EvPreempted records an eviction by a higher-priority arrival; with
	// Requeued set the victim re-entered the queue under Ticket.
	EvPreempted = "preempted"
	// EvSubmitted records one entry joining the admission queue.
	EvSubmitted = "submitted"
	// EvCancelled records a queue entry withdrawn by its submitter.
	EvCancelled = "cancelled"
	// EvDropped records a queue entry discarded after a non-capacity
	// placement failure.
	EvDropped = "dropped"
	// EvNodeDown / EvNodeUp record machine loss and recovery. A down node
	// implicitly evicts every resident it held (and reboots to its base
	// DVFS state, so it also clears the node's recorded frequency rung).
	EvNodeDown = "node_down"
	EvNodeUp   = "node_up"
	// EvFreq records a node re-clocking to a DVFS rung (Freq = rung index
	// + 1, so the field stays omitempty-friendly).
	EvFreq = "freq"
)

// Event is one fleet mutation. Fields are sparse per type; omitempty
// keeps records small.
type Event struct {
	Type     string `json:"t"`
	Node     string `json:"node,omitempty"`
	Name     string `json:"name,omitempty"`
	Core     int    `json:"core,omitempty"`
	Bench    string `json:"bench,omitempty"`
	Tag      string `json:"tag,omitempty"`
	Priority int    `json:"prio,omitempty"`
	Ticket   int    `json:"ticket,omitempty"`
	Requeued bool   `json:"requeued,omitempty"`
	// Freq is the EvFreq target rung index + 1 (0 = field absent).
	Freq int `json:"freq,omitempty"`
}

// Resident is one recovered instance. Order in State.Residents is global
// admission order; replaying it with manager PlaceAt/Adopt semantics
// reproduces each core's arrival order (and therefore instance naming
// and model reduction order) exactly.
type Resident struct {
	Node     string `json:"node"`
	Name     string `json:"name"`
	Core     int    `json:"core"`
	Bench    string `json:"bench"`
	Tag      string `json:"tag,omitempty"`
	Priority int    `json:"prio,omitempty"`
}

// QueueEntry is one recovered pending arrival, in queue order.
type QueueEntry struct {
	Bench    string `json:"bench"`
	Tag      string `json:"tag,omitempty"`
	Ticket   int    `json:"ticket"`
	Priority int    `json:"prio,omitempty"`
}

// State is the materialized fleet placement state: what a snapshot
// stores and what replaying the log reconstructs.
type State struct {
	Residents []Resident   `json:"residents,omitempty"`
	Queue     []QueueEntry `json:"queue,omitempty"`
	// Down lists nodes that were down, in the order they went down.
	Down []string `json:"down,omitempty"`
	// Seq is the highest queue ticket ever issued (the fleet's ticket
	// source resumes above it so recovered tickets stay unique).
	Seq int `json:"seq,omitempty"`
	// Freq maps node name → current DVFS rung index + 1 for every node an
	// EvFreq ever re-clocked (a node loss reboots to base and drops the
	// entry). Fleets that never re-clock keep the map nil, so pre-DVFS
	// states serialize byte-identically.
	Freq map[string]int `json:"freq,omitempty"`
}

// Apply folds one event into the state. Unknown residents, tickets, or
// event types are errors: the log is written by the fleet under its own
// lock, so any mismatch means corruption, not a race.
func (s *State) Apply(e Event) error {
	if e.Ticket > s.Seq {
		s.Seq = e.Ticket
	}
	switch e.Type {
	case EvAdmitted:
		for _, r := range s.Residents {
			if r.Node == e.Node && r.Name == e.Name {
				return fmt.Errorf("wal: admitted duplicate %s/%s", e.Node, e.Name)
			}
		}
		s.Residents = append(s.Residents, Resident{
			Node: e.Node, Name: e.Name, Core: e.Core, Bench: e.Bench,
			Tag: e.Tag, Priority: e.Priority,
		})
		if e.Ticket > 0 {
			if !s.dropTicket(e.Ticket) {
				return fmt.Errorf("wal: admitted unknown ticket %d", e.Ticket)
			}
		}
		return nil
	case EvDeparted:
		if !s.dropResident(e.Node, e.Name) {
			return fmt.Errorf("wal: departed unknown resident %s/%s", e.Node, e.Name)
		}
		return nil
	case EvPreempted:
		if !s.dropResident(e.Node, e.Name) {
			return fmt.Errorf("wal: preempted unknown resident %s/%s", e.Node, e.Name)
		}
		if e.Requeued {
			s.Queue = append(s.Queue, QueueEntry{
				Bench: e.Bench, Tag: e.Tag, Ticket: e.Ticket, Priority: e.Priority,
			})
		}
		return nil
	case EvSubmitted:
		s.Queue = append(s.Queue, QueueEntry{
			Bench: e.Bench, Tag: e.Tag, Ticket: e.Ticket, Priority: e.Priority,
		})
		return nil
	case EvCancelled, EvDropped:
		if !s.dropTicket(e.Ticket) {
			return fmt.Errorf("wal: %s unknown ticket %d", e.Type, e.Ticket)
		}
		return nil
	case EvNodeDown:
		for _, d := range s.Down {
			if d == e.Node {
				return fmt.Errorf("wal: node %q already down", e.Node)
			}
		}
		s.Down = append(s.Down, e.Node)
		// A lost machine reboots at its base DVFS state.
		if s.Freq != nil {
			delete(s.Freq, e.Node)
			if len(s.Freq) == 0 {
				s.Freq = nil
			}
		}
		// Processes die with their machine; one event covers the cascade.
		kept := s.Residents[:0]
		for _, r := range s.Residents {
			if r.Node != e.Node {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			kept = nil
		}
		s.Residents = kept
		return nil
	case EvNodeUp:
		for i, d := range s.Down {
			if d == e.Node {
				s.Down = append(s.Down[:i], s.Down[i+1:]...)
				if len(s.Down) == 0 {
					s.Down = nil
				}
				return nil
			}
		}
		return fmt.Errorf("wal: node %q was not down", e.Node)
	case EvFreq:
		if e.Freq <= 0 {
			return fmt.Errorf("wal: freq event for %q without a rung", e.Node)
		}
		if s.Freq == nil {
			s.Freq = map[string]int{}
		}
		s.Freq[e.Node] = e.Freq
		return nil
	default:
		return fmt.Errorf("wal: unknown event type %q", e.Type)
	}
}

func (s *State) dropResident(node, name string) bool {
	for i, r := range s.Residents {
		if r.Node == node && r.Name == name {
			s.Residents = append(s.Residents[:i], s.Residents[i+1:]...)
			if len(s.Residents) == 0 {
				s.Residents = nil // keep empty == nil so recovered states DeepEqual fresh ones
			}
			return true
		}
	}
	return false
}

func (s *State) dropTicket(ticket int) bool {
	for i, q := range s.Queue {
		if q.Ticket == ticket {
			s.Queue = append(s.Queue[:i], s.Queue[i+1:]...)
			if len(s.Queue) == 0 {
				s.Queue = nil
			}
			return true
		}
	}
	return false
}

// Clone deep-copies the state (recovery hands the caller a copy it may
// mutate while the log keeps folding events into its own).
func (s *State) Clone() *State {
	c := &State{Seq: s.Seq}
	c.Residents = append([]Resident(nil), s.Residents...)
	c.Queue = append([]QueueEntry(nil), s.Queue...)
	c.Down = append([]string(nil), s.Down...)
	if s.Freq != nil {
		c.Freq = make(map[string]int, len(s.Freq))
		for k, v := range s.Freq {
			c.Freq[k] = v
		}
	}
	return c
}

// snapshot pairs the state with the generation that names its log file.
type snapshot struct {
	Gen   uint64 `json:"gen"`
	State *State `json:"state"`
}

const (
	snapshotFile = "snapshot.wal"
	logPrefix    = "events."
	logSuffix    = ".wal"
)

// Log is an open write-ahead log. Append is safe for concurrent use.
type Log struct {
	dir string

	mu  sync.Mutex
	f   *os.File
	gen uint64
	// applied mirrors everything durably recorded: the snapshot state
	// plus every appended batch. Compact persists it.
	applied *State
}

// Open loads (or initializes) the state under dir and opens the log for
// appending. The returned state is the caller's to mutate; a torn tail
// on the log is truncated in place (whole trailing records only).
func Open(dir string) (*Log, *State, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	st := &State{}
	var gen uint64
	snapPath := filepath.Join(dir, snapshotFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		payload, _, perr := decodeRecord(data)
		if perr != nil {
			return nil, nil, fmt.Errorf("wal: corrupt snapshot %s: %w", snapPath, perr)
		}
		var snap snapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, nil, fmt.Errorf("wal: corrupt snapshot %s: %w", snapPath, err)
		}
		if snap.State != nil {
			st = snap.State
		}
		gen = snap.Gen
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}

	logPath := filepath.Join(dir, logName(gen))
	if err := replayLog(logPath, st); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, f: f, gen: gen, applied: st.Clone()}
	l.removeStaleLogs()
	return l, st, nil
}

// replayLog folds every whole record of the log at path into st,
// truncating the file at the first torn or corrupt record.
func replayLog(path string, st *State) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	off := 0
	for off < len(data) {
		payload, n, perr := decodeRecord(data[off:])
		if perr != nil {
			// Torn tail: everything before off replayed cleanly; drop the
			// partial record so the next append starts on a frame boundary.
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", path, terr)
			}
			return nil
		}
		var events []Event
		if err := json.Unmarshal(payload, &events); err != nil {
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", path, terr)
			}
			return nil
		}
		for _, e := range events {
			if err := st.Apply(e); err != nil {
				return fmt.Errorf("wal: replaying %s: %w", path, err)
			}
		}
		off += n
	}
	return nil
}

// Append durably records one operation's events as a single framed
// record. An empty batch is a no-op.
func (l *Log) Append(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	payload, err := json.Marshal(events)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	rec, err := encodeRecord(payload)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range events {
		if err := l.applied.Apply(e); err != nil {
			return fmt.Errorf("wal: applying appended event: %w", err)
		}
	}
	return nil
}

// Compact snapshots the current applied state under a new generation and
// starts a fresh, empty log. The rename of the snapshot is the commit
// point: a crash anywhere else leaves either the old (snapshot, log)
// pair or the new one, both self-consistent.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	gen := l.gen + 1
	payload, err := json.Marshal(snapshot{Gen: gen, State: l.applied})
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	rec, err := encodeRecord(payload)
	if err != nil {
		return err
	}
	// The new generation's log must exist before the snapshot points at
	// it; an empty log replays as "nothing after the snapshot".
	newLog, err := os.OpenFile(filepath.Join(l.dir, logName(gen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmp := filepath.Join(l.dir, snapshotFile+".tmp")
	if err := os.WriteFile(tmp, rec, 0o644); err != nil {
		newLog.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotFile)); err != nil {
		newLog.Close()
		return fmt.Errorf("wal: %w", err)
	}
	old := l.f
	l.f, l.gen = newLog, gen
	old.Close()
	l.removeStaleLogs()
	return nil
}

// removeStaleLogs deletes log files from other generations (best
// effort; a leftover is ignored by every future Open).
func (l *Log) removeStaleLogs() {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, logPrefix) || !strings.HasSuffix(name, logSuffix) {
			continue
		}
		if name != logName(l.gen) {
			os.Remove(filepath.Join(l.dir, name))
		}
	}
}

// Close closes the log file. Further Appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

func logName(gen uint64) string {
	return logPrefix + strconv.FormatUint(gen, 10) + logSuffix
}
