package manager

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/workload"
)

// truthSource is an instant FeatureSource serving analytic oracle features,
// with optional per-workload overrides (e.g. an invalid vector to force
// estimation failures downstream of core selection).
type truthSource struct {
	m        *machine.Machine
	override map[string]*core.FeatureVector
}

func (s *truthSource) FeatureOf(_ context.Context, spec *workload.Spec) (*core.FeatureVector, error) {
	if f, ok := s.override[spec.Name]; ok {
		return f, nil
	}
	return core.TruthFeature(spec, s.m), nil
}

// blockingSource parks every caller until its ctx is cancelled, modeling a
// profiling sweep that outlives the request.
type blockingSource struct{}

func (blockingSource) FeatureOf(ctx context.Context, _ *workload.Spec) (*core.FeatureVector, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func truthManager(t *testing.T, m *machine.Machine, policy Policy, maxPerCore int, src FeatureSource) *Manager {
	t.Helper()
	if src == nil {
		src = &truthSource{m: m}
	}
	return New(m, sharedPowerModel(t, m), Options{
		Policy:     policy,
		MaxPerCore: maxPerCore,
		Features:   src,
	})
}

// TestPlaceAllRollbackOnMachineFull drives a batch into mid-batch
// ErrMachineFull and checks the transaction contract: the observable state
// is deep-equal to the pre-call snapshot, the cause stays testable with
// errors.Is, and the wrapper reports how many placements were undone.
func TestPlaceAllRollbackOnMachineFull(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	mgr := truthManager(t, m, PowerAware, 1, nil)
	ctx := context.Background()

	preName, _, _, err := mgr.Place(ctx, workload.ByName("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	runningBefore := mgr.Running()
	asgBefore := mgr.Assignment()

	// One free core, two arrivals: the second placement must fail and the
	// first must be undone.
	_, err = mgr.PlaceAll(ctx, []*workload.Spec{workload.ByName("mcf"), workload.ByName("art")})
	if err == nil {
		t.Fatal("PlaceAll succeeded with only one admissible slot")
	}
	if !errors.Is(err, ErrMachineFull) {
		t.Fatalf("error %v, want ErrMachineFull in the chain", err)
	}
	var rb *RollbackError
	if !errors.As(err, &rb) {
		t.Fatalf("error %v, want a *RollbackError wrapper", err)
	}
	if rb.Admitted != 1 {
		t.Fatalf("RollbackError.Admitted = %d, want 1", rb.Admitted)
	}
	if got := mgr.Running(); !reflect.DeepEqual(got, runningBefore) {
		t.Fatalf("Running() after rollback = %v, want pre-call %v", got, runningBefore)
	}
	if got := mgr.Assignment(); !reflect.DeepEqual(got, asgBefore) {
		t.Fatalf("Assignment() after rollback differs from pre-call snapshot")
	}
	// nextID was restored too: the next admitted instance gets the same
	// name it would have had if the failed batch never happened.
	if err := mgr.Remove(preName); err != nil {
		t.Fatal(err)
	}
	name, _, _, err := mgr.Place(ctx, workload.ByName("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if name != "mcf#2" {
		t.Fatalf("instance name %q after rollback, want mcf#2 (nextID leaked)", name)
	}
}

// TestPlaceAllNoRollbackWrapperWhenNothingAdmitted checks that a batch
// failing before any placement returns the bare cause: there is nothing to
// roll back, so no *RollbackError is fabricated.
func TestPlaceAllNoRollbackWrapperWhenNothingAdmitted(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	mgr := truthManager(t, m, PowerAware, 1, nil)
	ctx := context.Background()
	for _, n := range []string{"gzip", "mcf"} {
		if _, _, _, err := mgr.Place(ctx, workload.ByName(n)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := mgr.PlaceAll(ctx, []*workload.Spec{workload.ByName("art")})
	if !errors.Is(err, ErrMachineFull) {
		t.Fatalf("error %v, want ErrMachineFull", err)
	}
	var rb *RollbackError
	if errors.As(err, &rb) {
		t.Fatalf("got *RollbackError %v for a batch with zero admissions", rb)
	}
}

// TestPlaceAllCancelPrompt cancels a PlaceAll whose profiling blocks and
// checks the call returns promptly with zero admissions — the "bounded
// work per request" property the serving layer depends on.
func TestPlaceAllCancelPrompt(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	mgr := truthManager(t, m, PowerAware, 0, blockingSource{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := mgr.PlaceAll(ctx, []*workload.Spec{workload.ByName("gzip"), workload.ByName("mcf")})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("PlaceAll took %v after cancellation, want prompt return", elapsed)
	}
	for c, names := range mgr.Running() {
		if len(names) != 0 {
			t.Fatalf("core %d holds %v after a cancelled batch", c, names)
		}
	}
}

// TestPlaceErrorLeavesStateUntouched forces the post-selection power
// estimate to fail (invalid feature vector) and checks Place leaks
// nothing: no resident instance, and the round-robin cursor still points
// where the last successful placement left it.
func TestPlaceErrorLeavesStateUntouched(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	src := &truthSource{m: m, override: map[string]*core.FeatureVector{
		"art": {}, // fails Validate inside the power estimate
	}}
	mgr := truthManager(t, m, RoundRobin, 0, src)
	ctx := context.Background()

	_, c0, _, err := mgr.Place(ctx, workload.ByName("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	if c0 != 0 {
		t.Fatalf("first round-robin placement on core %d, want 0", c0)
	}
	runningBefore := mgr.Running()

	if _, _, _, err := mgr.Place(ctx, workload.ByName("art")); err == nil {
		t.Fatal("Place with an invalid feature vector succeeded")
	}
	if got := mgr.Running(); !reflect.DeepEqual(got, runningBefore) {
		t.Fatalf("Running() after failed Place = %v, want %v", got, runningBefore)
	}
	// The failed attempt must not have advanced the cursor: the next
	// success continues the rotation at core 1.
	_, c1, _, err := mgr.Place(ctx, workload.ByName("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if c1 != 1 {
		t.Fatalf("placement after failed attempt on core %d, want 1 (rrNext leaked)", c1)
	}
}

// TestRoundRobinCursorBounded places (and removes) more instances than a
// long-lived server has cores and checks the cursor stays reduced modulo
// NumCores instead of growing without bound.
func TestRoundRobinCursorBounded(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	mgr := truthManager(t, m, RoundRobin, 0, nil)
	ctx := context.Background()
	for i := 0; i < 5*m.NumCores; i++ {
		name, _, _, err := mgr.Place(ctx, workload.ByName("gzip"))
		if err != nil {
			t.Fatal(err)
		}
		mgr.mu.Lock()
		rr := mgr.rrNext
		mgr.mu.Unlock()
		if rr < 0 || rr >= m.NumCores {
			t.Fatalf("rrNext = %d after %d placements, want [0,%d)", rr, i+1, m.NumCores)
		}
		if err := mgr.Remove(name); err != nil {
			t.Fatal(err)
		}
	}
}
