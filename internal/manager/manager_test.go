package manager

import (
	"context"
	"errors"
	"math"
	"testing"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
)

// Power models and profiles are expensive; share them across the tests
// (the manager itself memoizes per instance, these caches memoize across
// manager instances).
var pmCache = map[string]*core.PowerModel{}

func sharedPowerModel(t *testing.T, m *machine.Machine) *core.PowerModel {
	t.Helper()
	if pm, ok := pmCache[m.Name]; ok {
		return pm
	}
	var pm *core.PowerModel
	var err error
	if testing.Short() {
		// The fast lane swaps the microbenchmark-trained model for the
		// synthetic fit: instant, deterministic, same shape.
		pm, err = core.SyntheticPowerModel()
	} else {
		pm, err = core.TrainPowerModel(context.Background(), m, workload.ModelSet(), core.PowerTrainOptions{
			Warmup: 1, Duration: 3, Seed: 7, MicrobenchWindows: 6,
		})
	}
	if err != nil {
		t.Fatal(err)
	}
	pmCache[m.Name] = pm
	return pm
}

// sharedFeatures gives every test manager for a machine the same profile
// cache, so each benchmark is profiled at most once per machine.
var featShared = map[string]map[string]*core.FeatureVector{}

// testManager builds a manager with a quickly trained power model and the
// machine's shared profile cache. Under -short the stressmark profiler is
// replaced by the analytic truth oracle, so the same scenarios run in
// milliseconds; tests whose subject is the profiler itself skip instead.
func testManager(t *testing.T, m *machine.Machine, policy Policy) *Manager {
	t.Helper()
	if testing.Short() {
		return New(m, sharedPowerModel(t, m), Options{
			Policy:   policy,
			Features: &truthSource{m: m},
		})
	}
	cache := featShared[m.Name]
	if cache == nil {
		cache = map[string]*core.FeatureVector{}
		featShared[m.Name] = cache
	}
	return New(m, sharedPowerModel(t, m), Options{
		Policy:         policy,
		Profile:        core.ProfileOptions{Warmup: 1.5, Duration: 3, Seed: 17},
		SharedProfiles: cache,
	})
}

func TestPlaceAndRemove(t *testing.T) {
	m := machine.FourCoreServer()
	mgr := testManager(t, m, PowerAware)
	name1, c1, w1, err := mgr.Place(context.Background(), workload.ByName("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if c1 < 0 || c1 >= m.NumCores || w1 <= 0 {
		t.Fatalf("placement (%d, %.2f) implausible", c1, w1)
	}
	name2, _, w2, err := mgr.Place(context.Background(), workload.ByName("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	if w2 <= w1 {
		t.Fatalf("adding a process reduced estimated power %.2f → %.2f", w1, w2)
	}
	if err := mgr.Remove(name2); err != nil {
		t.Fatal(err)
	}
	w3, err := mgr.EstimatedPower()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w3-w1) > 1e-9 {
		t.Fatalf("removal did not restore the estimate: %.4f vs %.4f", w3, w1)
	}
	if err := mgr.Remove(name1); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Remove("ghost"); err == nil {
		t.Fatal("removed a non-existent process")
	}
}

func TestProfilingIsMemoized(t *testing.T) {
	if testing.Short() {
		t.Skip("exercises the built-in stressmark profiler; fast variant: TestShortProfilerMemoized")
	}
	m := machine.TwoCoreWorkstation()
	mgr := testManager(t, m, PowerAware)
	f1, err := mgr.FeatureOf(context.Background(), workload.ByName("vpr"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := mgr.FeatureOf(context.Background(), workload.ByName("vpr"))
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("second FeatureOf re-profiled")
	}
}

func TestPowerAwareAvoidsHotPairing(t *testing.T) {
	// With mcf on die 0, placing art power-aware should make a deliberate
	// choice — and its estimate must be the minimum over cores.
	m := machine.FourCoreServer()
	mgr := testManager(t, m, PowerAware)
	if _, _, _, err := mgr.Place(context.Background(), workload.ByName("mcf")); err != nil {
		t.Fatal(err)
	}
	fArt, err := mgr.FeatureOf(context.Background(), workload.ByName("art"))
	if err != nil {
		t.Fatal(err)
	}
	asg := mgr.Assignment()
	_, chosenCore, chosenW, err := mgr.Place(context.Background(), workload.ByName("art"))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < m.NumCores; c++ {
		w, err := mgr.cm.EstimateAddition(asg, fArt, c)
		if err != nil {
			t.Fatal(err)
		}
		if w < chosenW-1e-9 {
			t.Fatalf("core %d (%.3f W) beats chosen core %d (%.3f W)", c, w, chosenCore, chosenW)
		}
	}
}

func TestRoundRobinRotates(t *testing.T) {
	m := machine.FourCoreServer()
	mgr := testManager(t, m, RoundRobin)
	cores := map[int]bool{}
	for i := 0; i < m.NumCores; i++ {
		_, c, _, err := mgr.Place(context.Background(), workload.ByName("gzip"))
		if err != nil {
			t.Fatal(err)
		}
		cores[c] = true
	}
	if len(cores) != m.NumCores {
		t.Fatalf("round robin used %d distinct cores", len(cores))
	}
}

func TestLeastLoadedBalances(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	mgr := testManager(t, m, LeastLoaded)
	for i := 0; i < 4; i++ {
		if _, _, _, err := mgr.Place(context.Background(), workload.ByName("gzip")); err != nil {
			t.Fatal(err)
		}
	}
	r := mgr.Running()
	if len(r[0]) != 2 || len(r[1]) != 2 {
		t.Fatalf("least-loaded imbalance: %d/%d", len(r[0]), len(r[1]))
	}
}

func TestMaxPerCoreEnforced(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	var mgr *Manager
	if testing.Short() {
		mgr = New(m, sharedPowerModel(t, m), Options{
			Policy:     RoundRobin,
			Features:   &truthSource{m: m},
			MaxPerCore: 1,
		})
	} else {
		pm, err := core.TrainPowerModel(context.Background(), m, workload.ModelSet()[:2], core.PowerTrainOptions{
			Warmup: 0.5, Duration: 1, Seed: 7, MicrobenchWindows: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		mgr = New(m, pm, Options{
			Policy:     RoundRobin,
			Profile:    core.ProfileOptions{Warmup: 0.5, Duration: 1, Seed: 3},
			MaxPerCore: 1,
		})
	}
	for i := 0; i < 2; i++ {
		if _, _, _, err := mgr.Place(context.Background(), workload.ByName("gzip")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := mgr.Place(context.Background(), workload.ByName("gzip")); err == nil {
		t.Fatal("exceeded MaxPerCore")
	}
}

func TestRebalanceMigratesWhenItPays(t *testing.T) {
	// Force a bad layout via round robin with a pathological arrival
	// order, then let Rebalance fix it.
	m := machine.FourCoreServer()
	mgr := testManager(t, m, RoundRobin)
	for _, n := range []string{"mcf", "art", "gzip", "equake"} {
		if _, _, _, err := mgr.Place(context.Background(), workload.ByName(n)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := mgr.EstimatedPower()
	if err != nil {
		t.Fatal(err)
	}
	moved, after, err := mgr.Rebalance(context.Background(), 0.01)
	if err != nil && !errors.Is(err, ErrNoImprovement) {
		t.Fatal(err)
	}
	if after > before+1e-9 {
		t.Fatalf("rebalance increased power %.3f → %.3f", before, after)
	}
	if moved > 0 {
		// The new layout must be internally consistent.
		total := 0
		for _, names := range mgr.Running() {
			total += len(names)
		}
		if total != 4 {
			t.Fatalf("rebalance lost processes: %d resident", total)
		}
	}
	// A second rebalance has nothing left to gain: the typed sentinel
	// replaces the old silent no-op.
	moved2, _, err := mgr.Rebalance(context.Background(), 0.01)
	if !errors.Is(err, ErrNoImprovement) {
		t.Fatalf("second rebalance error %v, want ErrNoImprovement", err)
	}
	if moved2 != 0 {
		t.Fatalf("second rebalance moved %d processes", moved2)
	}
}

func TestPowerAwareBeatsRoundRobinMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("measured-power comparison needs the wall-clock simulator")
	}
	// The end-to-end claim: over an arrival sequence, the power-aware
	// manager's final layout consumes no more measured power than the
	// round-robin baseline's.
	m := machine.FourCoreServer()
	arrivals := []string{"mcf", "art", "gzip", "equake"}
	measure := func(policy Policy) float64 {
		mgr := testManager(t, m, policy)
		for _, n := range arrivals {
			if _, _, _, err := mgr.Place(context.Background(), workload.ByName(n)); err != nil {
				t.Fatal(err)
			}
		}
		run, err := sim.Run(m, sim.Assignment{Procs: mgr.Procs()},
			sim.Options{Warmup: 2, Duration: 5, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return run.AvgMeasuredPower()
	}
	pa := measure(PowerAware)
	rr := measure(RoundRobin)
	if pa > rr+0.5 {
		t.Fatalf("power-aware %.2f W worse than round-robin %.2f W", pa, rr)
	}
}

func TestRebalanceHonoursMaxPerCore(t *testing.T) {
	m := machine.FourCoreServer()
	opts := Options{
		Policy:         RoundRobin,
		Profile:        core.ProfileOptions{Warmup: 1.5, Duration: 3, Seed: 17},
		MaxPerCore:     1,
		SharedProfiles: featShared[m.Name],
	}
	if testing.Short() {
		opts.Features = &truthSource{m: m}
	}
	mgr := New(m, sharedPowerModel(t, m), opts)
	for _, n := range []string{"mcf", "art", "gzip", "equake"} {
		if _, _, _, err := mgr.Place(context.Background(), workload.ByName(n)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := mgr.Rebalance(context.Background(), 0); err != nil && !errors.Is(err, ErrNoImprovement) {
		t.Fatal(err)
	}
	for c, names := range mgr.Running() {
		if len(names) > 1 {
			t.Fatalf("rebalance packed %d processes on core %d despite MaxPerCore=1", len(names), c)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if PowerAware.String() != "power-aware" || RoundRobin.String() != "round-robin" ||
		LeastLoaded.String() != "least-loaded" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy should still format")
	}
}
