// Package manager implements the paper's motivating application
// (Sections 1 and 5): run-time, power-aware process assignment on a CMP.
//
// A Manager owns a machine's current assignment. When a process arrives it
// is profiled once if unknown — the paper: "when a new application makes
// up a significant percentage of the workload, we force it to run alone on
// an idle machine and record profiling information" — and then placed on
// the core that minimizes the combined model's estimated processor power
// (the Figure 1 algorithm, evaluated for every candidate core). Departures
// free their slot; Rebalance re-runs the global search and migrates
// processes when the predicted savings justify it.
package manager

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/parallel"
	"mpmc/internal/workload"
)

// Sentinel errors callers (the serving layer in particular) can test with
// errors.Is to map placement failures onto typed responses.
var (
	// ErrMachineFull reports that no core can accept another process under
	// the configured MaxPerCore cap.
	ErrMachineFull = errors.New("no admissible core")
	// ErrUnknownProcess reports a Remove for an instance name that is not
	// resident.
	ErrUnknownProcess = errors.New("unknown process")
	// ErrNoImprovement reports that Rebalance found no layout change worth
	// making: nothing is resident, no admissible layout beats the current
	// one by the requested saving, or the best layout is the one already in
	// place. The assignment is untouched when it is returned.
	ErrNoImprovement = errors.New("no improving move")
)

// FeatureSource supplies feature vectors for workloads. It abstracts the
// manager's built-in memoizing profiler so a serving layer can substitute
// a shared bounded cache with singleflight deduplication; implementations
// must be safe for concurrent use, deterministic for a given workload
// name (same contract as core.ProfileSeed), and must honour ctx so a
// cancelled request abandons an in-flight profiling sweep promptly.
type FeatureSource interface {
	FeatureOf(ctx context.Context, spec *workload.Spec) (*core.FeatureVector, error)
}

// RollbackError reports that a PlaceAll batch failed after admitting some
// of its instances; the manager has been rolled back to its pre-call
// state, so none of the batch is resident. Unwrap exposes the placement
// failure that triggered the rollback (e.g. ErrMachineFull or ctx's
// error), keeping errors.Is checks on the cause working.
type RollbackError struct {
	// Admitted counts the instances that had been placed before the
	// failure (all since evicted by the rollback).
	Admitted int
	// Err is the underlying placement failure.
	Err error
}

func (e *RollbackError) Error() string {
	return fmt.Sprintf("manager: batch rolled back after %d placement(s): %v", e.Admitted, e.Err)
}

func (e *RollbackError) Unwrap() error { return e.Err }

// Policy selects how arriving processes are placed.
type Policy int

const (
	// PowerAware places each arrival on the core minimizing the combined
	// model's estimated processor power.
	PowerAware Policy = iota
	// RoundRobin is the naive baseline: cores in rotation, ignoring
	// contention and power.
	RoundRobin
	// LeastLoaded places each arrival on a core with the fewest
	// processes, breaking ties by core index.
	LeastLoaded
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PowerAware:
		return "power-aware"
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Options configures a Manager.
type Options struct {
	Policy Policy
	// Profile controls on-demand profiling runs for unknown processes.
	Profile core.ProfileOptions
	// MaxPerCore bounds time-sharing depth (0 = unbounded).
	MaxPerCore int
	// SharedProfiles, when non-nil, is used as the profile cache, letting
	// several managers (or successive sessions) reuse feature vectors
	// instead of re-running the stressmark sweep.
	SharedProfiles map[string]*core.FeatureVector
	// Features, when non-nil, replaces the built-in memoizing profiler
	// entirely: FeatureOf delegates to it, and caching plus concurrent-run
	// deduplication become its responsibility. SharedProfiles is ignored
	// when Features is set.
	Features FeatureSource
	// SolverState, when non-nil, memoizes converged equilibrium solutions
	// across this manager's power estimates (and across managers when
	// shared, as the fleet scheduler does). Estimates are bit-identical
	// with or without it — see core.PredictGroupCached.
	SolverState *core.SolverState
	// Intercept, when non-nil, is consulted at named fault-injection
	// sites; a non-nil return is injected as the guarded operation's
	// error, before any state mutates, so every injected failure must
	// leave the manager exactly as it was. Sites: "manager.place" (key =
	// workload name, ahead of the policy's core choice), "manager.place_at"
	// (key = workload name, ahead of the fleet-directed commit), and
	// "manager.rebalance". It is the chaos-testing seam (internal/chaos);
	// implementations must be safe for concurrent use.
	Intercept func(site, key string) error
}

// intercept consults the configured fault-injection seam.
func (mgr *Manager) intercept(site, key string) error {
	if mgr.opts.Intercept == nil {
		return nil
	}
	return mgr.opts.Intercept(site, key)
}

// Manager tracks the machine's assignment and places arrivals. All
// methods are safe for concurrent use: the placement lock serializes
// assignment mutations, while on-demand profiling runs outside it (see
// FeatureOf and PlaceAll).
type Manager struct {
	mach *machine.Machine
	cm   *core.CombinedModel
	opts Options

	// mu is the placement lock: it guards profiles, procs, features,
	// specs, nextID and rrNext.
	mu       sync.Mutex
	profiles map[string]*core.FeatureVector
	// procs[c] holds the resident process names per core, in arrival
	// order; instances of the same workload get unique instance names.
	procs    [][]string
	features map[string]*core.FeatureVector // by instance name
	specs    map[string]*workload.Spec      // by instance name
	nextID   int
	rrNext   int
	// version counts assignment mutations (placements, removals,
	// restores, rebalances). Callers that cache derived views of the
	// assignment (the fleet's per-node snapshots) compare it to decide
	// whether their copy is current.
	version uint64
	// asgCache memoizes assignmentLocked's model-side view for the current
	// version. The cached value is never written again once handed out —
	// mutations rebuild procs/features and bump version, so a stale cache
	// is simply rebuilt — which keeps the snapshot semantics callers rely
	// on (a held Assignment() result stays the pre-mutation view).
	asgCache  core.Assignment
	asgCacheV uint64
}

// New builds a manager for machine m with a trained power model.
func New(m *machine.Machine, pm *core.PowerModel, opts Options) *Manager {
	profiles := opts.SharedProfiles
	if profiles == nil {
		profiles = map[string]*core.FeatureVector{}
	}
	cm := core.NewCombinedModel(m, pm)
	cm.State = opts.SolverState
	return &Manager{
		mach:     m,
		cm:       cm,
		opts:     opts,
		profiles: profiles,
		procs:    make([][]string, m.NumCores),
		features: map[string]*core.FeatureVector{},
		specs:    map[string]*workload.Spec{},
	}
}

// FeatureOf returns the (memoized) profile of a workload, running the
// stressmark sweep on first sight. The sweep executes outside the
// placement lock, so several unknown workloads can profile concurrently;
// each profiling seed depends only on the configured base seed and the
// workload's name, never on arrival order, so the resulting vectors are
// reproducible at any concurrency. A cancelled ctx abandons the sweep
// between runs and returns ctx's error.
func (mgr *Manager) FeatureOf(ctx context.Context, spec *workload.Spec) (*core.FeatureVector, error) {
	if mgr.opts.Features != nil {
		return mgr.opts.Features.FeatureOf(ctx, spec)
	}
	mgr.mu.Lock()
	f, ok := mgr.profiles[spec.Name]
	mgr.mu.Unlock()
	if ok {
		return f, nil
	}
	opts := mgr.opts.Profile
	opts.Seed = core.ProfileSeed(opts.Seed, spec.Name)
	f, err := core.Profile(ctx, mgr.mach, spec, opts)
	if err != nil {
		return nil, fmt.Errorf("manager: profiling %s: %w", spec.Name, err)
	}
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if prev, ok := mgr.profiles[spec.Name]; ok {
		// A concurrent caller profiled the same workload; both runs are
		// deterministic and identical, keep the first stored vector.
		return prev, nil
	}
	mgr.profiles[spec.Name] = f
	return f, nil
}

// Placement records one instance admitted by PlaceAll.
type Placement struct {
	Name  string
	Core  int
	Watts float64
}

// PlaceAll admits a batch of arrivals transactionally: either every
// instance is admitted, or the manager is rolled back to its pre-call
// state and the error (a *RollbackError when placements had already
// happened) reports why. Unknown workloads are profiled concurrently
// first (bounded by the Profile.Workers option) under the caller's ctx;
// the instances are then placed one at a time in input order under the
// placement lock, so a successful batch yields the same assignment as
// making the same Place calls sequentially.
func (mgr *Manager) PlaceAll(ctx context.Context, specs []*workload.Spec) ([]Placement, error) {
	var unknown []*workload.Spec
	seen := map[string]bool{}
	mgr.mu.Lock()
	for _, s := range specs {
		if _, ok := mgr.profiles[s.Name]; !ok && !seen[s.Name] {
			seen[s.Name] = true
			unknown = append(unknown, s)
		}
	}
	mgr.mu.Unlock()
	err := parallel.ForEach(ctx, mgr.opts.Profile.Workers, len(unknown), func(i int) error {
		_, err := mgr.FeatureOf(ctx, unknown[i])
		return err
	})
	if err != nil {
		return nil, err
	}
	// Resolve every feature before taking the placement lock: from here on
	// no profiling can happen, so the batch commits or rolls back without
	// blocking other callers on a sweep.
	feats := make([]*core.FeatureVector, len(specs))
	for i, s := range specs {
		f, err := mgr.FeatureOf(ctx, s)
		if err != nil {
			return nil, err
		}
		feats[i] = f
	}

	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	snap := mgr.snapshotLocked()
	admitted := 0
	rollback := func(cause error) error {
		mgr.restoreLocked(snap)
		if admitted > 0 {
			return &RollbackError{Admitted: admitted, Err: cause}
		}
		return cause
	}
	out := make([]Placement, len(specs))
	for i, s := range specs {
		if err := ctx.Err(); err != nil {
			return nil, rollback(err)
		}
		name, c, w, err := mgr.placeLocked(ctx, s, feats[i])
		if err != nil {
			return nil, rollback(err)
		}
		admitted++
		out[i] = Placement{Name: name, Core: c, Watts: w}
	}
	return out, nil
}

// Snapshot is a deep copy of a Manager's resident state: the per-core
// instance lists, the instance feature/spec maps, the instance-name
// counter, and the round-robin cursor. It is the transaction primitive
// behind PlaceAll's rollback and the fleet scheduler's cross-machine
// moves: capture a snapshot, mutate, and Restore on failure.
type Snapshot struct {
	procs    [][]string
	features map[string]*core.FeatureVector
	specs    map[string]*workload.Spec
	nextID   int
	rrNext   int
}

// Snapshot captures the manager's resident state. The copy is deep, so
// later mutations of the manager never leak into it and one snapshot can
// be restored any number of times.
func (mgr *Manager) Snapshot() *Snapshot {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.snapshotLocked()
}

func (mgr *Manager) snapshotLocked() *Snapshot {
	s := &Snapshot{
		procs:    make([][]string, len(mgr.procs)),
		features: make(map[string]*core.FeatureVector, len(mgr.features)),
		specs:    make(map[string]*workload.Spec, len(mgr.specs)),
		nextID:   mgr.nextID,
		rrNext:   mgr.rrNext,
	}
	for c, names := range mgr.procs {
		s.procs[c] = append([]string(nil), names...)
	}
	for n, f := range mgr.features {
		s.features[n] = f
	}
	for n, sp := range mgr.specs {
		s.specs[n] = sp
	}
	return s
}

// Restore resets the manager's resident state to a snapshot taken earlier
// on the same manager. The profile cache is deliberately left alone:
// feature vectors are deterministic per workload, so keeping them warm
// after a rollback is always correct.
func (mgr *Manager) Restore(s *Snapshot) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	mgr.restoreLocked(s)
}

func (mgr *Manager) restoreLocked(s *Snapshot) {
	mgr.procs = make([][]string, len(s.procs))
	for c, names := range s.procs {
		mgr.procs[c] = append([]string(nil), names...)
	}
	mgr.features = make(map[string]*core.FeatureVector, len(s.features))
	for n, f := range s.features {
		mgr.features[n] = f
	}
	mgr.specs = make(map[string]*workload.Spec, len(s.specs))
	for n, sp := range s.specs {
		mgr.specs[n] = sp
	}
	mgr.nextID, mgr.rrNext = s.nextID, s.rrNext
	mgr.version++
}

// Machine returns the modeled CMP this manager schedules onto.
func (mgr *Manager) Machine() *machine.Machine { return mgr.mach }

// MaxPerCore reports the configured time-sharing depth bound (0 =
// unbounded). Invariant checkers use it to verify the cap is never
// exceeded, whatever path admitted the residents.
func (mgr *Manager) MaxPerCore() int { return mgr.opts.MaxPerCore }

// Version returns the assignment mutation counter: it changes whenever a
// placement, removal, restore, or rebalance commits, so a caller holding
// a derived view (an Assignment copy, a memo key) can cheaply check
// whether the view is still current. The counter says nothing about
// *what* changed — equal versions mean an identical assignment, different
// versions mean only "re-read".
func (mgr *Manager) Version() uint64 {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.version
}

// Assignment returns the current model-side assignment.
func (mgr *Manager) Assignment() core.Assignment {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.assignmentLocked()
}

func (mgr *Manager) assignmentLocked() core.Assignment {
	if mgr.asgCache != nil && mgr.asgCacheV == mgr.version {
		return mgr.asgCache
	}
	asg := make(core.Assignment, mgr.mach.NumCores)
	for c, names := range mgr.procs {
		for _, n := range names {
			asg[c] = append(asg[c], mgr.features[n])
		}
	}
	mgr.asgCache, mgr.asgCacheV = asg, mgr.version
	return asg
}

// Procs returns the per-core workload specs of the current assignment,
// directly usable as a sim assignment for validation.
func (mgr *Manager) Procs() [][]*workload.Spec {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	out := make([][]*workload.Spec, mgr.mach.NumCores)
	for c, names := range mgr.procs {
		for _, n := range names {
			out[c] = append(out[c], mgr.specs[n])
		}
	}
	return out
}

// EstimatedPower returns the combined model's estimate for the current
// assignment.
func (mgr *Manager) EstimatedPower() (float64, error) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.estimatedPowerLocked()
}

func (mgr *Manager) estimatedPowerLocked() (float64, error) {
	return mgr.cm.EstimateAssignment(mgr.assignmentLocked())
}

// Place admits a new instance of spec and returns its instance name, the
// chosen core, and the estimated processor power after placement. On any
// error — profiling, no admissible core, or a failed power estimate —
// manager state is untouched.
func (mgr *Manager) Place(ctx context.Context, spec *workload.Spec) (name string, coreID int, watts float64, err error) {
	f, err := mgr.FeatureOf(ctx, spec)
	if err != nil {
		return "", 0, 0, err
	}
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.placeLocked(ctx, spec, f)
}

// PlaceAt admits a new instance of spec on a specific core, bypassing the
// manager's own policy: the caller (the fleet scheduler, which scores
// candidate slots across machines itself) has already chosen where the
// process belongs. Admissibility under MaxPerCore is still enforced, the
// round-robin cursor is untouched, and on any error the manager state is
// exactly as it was.
func (mgr *Manager) PlaceAt(ctx context.Context, spec *workload.Spec, c int) (name string, watts float64, err error) {
	f, err := mgr.FeatureOf(ctx, spec)
	if err != nil {
		return "", 0, err
	}
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if err := mgr.intercept("manager.place_at", spec.Name); err != nil {
		return "", 0, err
	}
	if c < 0 || c >= mgr.mach.NumCores {
		return "", 0, fmt.Errorf("manager: core %d out of range [0,%d)", c, mgr.mach.NumCores)
	}
	if !mgr.admissible(c) {
		return "", 0, fmt.Errorf("manager: core %d: %w (MaxPerCore=%d)", c, ErrMachineFull, mgr.opts.MaxPerCore)
	}
	watts, err = mgr.cm.EstimateAdditionContext(ctx, mgr.assignmentLocked(), f, c)
	if err != nil {
		return "", 0, err
	}
	mgr.nextID++
	name = spec.Name + "#" + strconv.Itoa(mgr.nextID)
	mgr.procs[c] = append(mgr.procs[c], name)
	mgr.features[name] = f
	mgr.specs[name] = spec
	mgr.version++
	return name, watts, nil
}

// Adopt reinstates a recovered instance under its original name on a
// specific core — the WAL recovery path. Unlike PlaceAt it allocates no
// instance name: the name is the logbook's, and the ID counter only
// ratchets past any adopted "#<id>" suffix so future placements never
// collide with recovered names. Admissibility is still enforced; no
// power estimate is computed (recovery replays facts, not decisions).
func (mgr *Manager) Adopt(ctx context.Context, spec *workload.Spec, name string, c int) error {
	f, err := mgr.FeatureOf(ctx, spec)
	if err != nil {
		return err
	}
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if c < 0 || c >= mgr.mach.NumCores {
		return fmt.Errorf("manager: core %d out of range [0,%d)", c, mgr.mach.NumCores)
	}
	if _, ok := mgr.specs[name]; ok {
		return fmt.Errorf("manager: instance %q already resident", name)
	}
	if !mgr.admissible(c) {
		return fmt.Errorf("manager: core %d: %w (MaxPerCore=%d)", c, ErrMachineFull, mgr.opts.MaxPerCore)
	}
	if i := strings.LastIndexByte(name, '#'); i >= 0 {
		if id, aerr := strconv.Atoi(name[i+1:]); aerr == nil && id > mgr.nextID {
			mgr.nextID = id
		}
	}
	mgr.procs[c] = append(mgr.procs[c], name)
	mgr.features[name] = f
	mgr.specs[name] = spec
	mgr.version++
	return nil
}

// Resident describes one placed instance: its unique name, the core it
// occupies, and the workload identity behind it.
type Resident struct {
	Name    string
	Core    int
	Spec    *workload.Spec
	Feature *core.FeatureVector
}

// Residents lists the placed instances in deterministic order: core by
// core, arrival order within a core.
func (mgr *Manager) Residents() []Resident {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	var out []Resident
	for c, names := range mgr.procs {
		for _, n := range names {
			out = append(out, Resident{Name: n, Core: c, Spec: mgr.specs[n], Feature: mgr.features[n]})
		}
	}
	return out
}

// placeLocked chooses a core, computes the post-placement power estimate,
// and only then records the instance: every fallible step runs before the
// first mutation, so an error leaves procs, features, specs, nextID and
// rrNext exactly as they were. Called with the placement lock held.
func (mgr *Manager) placeLocked(ctx context.Context, spec *workload.Spec, f *core.FeatureVector) (name string, coreID int, watts float64, err error) {
	if err := mgr.intercept("manager.place", spec.Name); err != nil {
		return "", 0, 0, err
	}
	switch mgr.opts.Policy {
	case PowerAware:
		coreID, watts, err = mgr.placePowerAware(ctx, f)
	case RoundRobin:
		coreID, err = mgr.placeRoundRobin()
	case LeastLoaded:
		coreID, err = mgr.placeLeastLoaded()
	default:
		return "", 0, 0, fmt.Errorf("manager: unknown policy %d", mgr.opts.Policy)
	}
	if err != nil {
		return "", 0, 0, err
	}
	if mgr.opts.Policy != PowerAware {
		// EstimateAddition on the current assignment equals estimating the
		// post-append assignment, without touching state first.
		watts, err = mgr.cm.EstimateAdditionContext(ctx, mgr.assignmentLocked(), f, coreID)
		if err != nil {
			return "", 0, 0, err
		}
	}
	mgr.nextID++
	name = spec.Name + "#" + strconv.Itoa(mgr.nextID)
	mgr.procs[coreID] = append(mgr.procs[coreID], name)
	mgr.features[name] = f
	mgr.specs[name] = spec
	mgr.version++
	if mgr.opts.Policy == RoundRobin {
		mgr.rrNext = (coreID + 1) % mgr.mach.NumCores
	}
	return name, coreID, watts, nil
}

// placePowerAware evaluates Figure 1 for every admissible core. Called
// with the placement lock held.
func (mgr *Manager) placePowerAware(ctx context.Context, f *core.FeatureVector) (int, float64, error) {
	asg := mgr.assignmentLocked()
	best, bestW := -1, 0.0
	for c := 0; c < mgr.mach.NumCores; c++ {
		if !mgr.admissible(c) {
			continue
		}
		w, err := mgr.cm.EstimateAdditionContext(ctx, asg, f, c)
		if err != nil {
			return 0, 0, err
		}
		if best < 0 || w < bestW {
			best, bestW = c, w
		}
	}
	if best < 0 {
		return 0, 0, fmt.Errorf("manager: %w (MaxPerCore=%d)", ErrMachineFull, mgr.opts.MaxPerCore)
	}
	return best, bestW, nil
}

// placeRoundRobin scans cores in rotation without mutating anything; the
// caller commits rrNext = (chosen+1) mod NumCores on success, which keeps
// the cursor bounded on a long-lived server (it previously grew without
// bound) and leaves it untouched when placement fails.
func (mgr *Manager) placeRoundRobin() (int, error) {
	n := mgr.mach.NumCores
	start := mgr.rrNext % n
	for tries := 0; tries < n; tries++ {
		c := (start + tries) % n
		if mgr.admissible(c) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("manager: %w (MaxPerCore=%d)", ErrMachineFull, mgr.opts.MaxPerCore)
}

func (mgr *Manager) placeLeastLoaded() (int, error) {
	best, bestN := -1, 0
	for c := 0; c < mgr.mach.NumCores; c++ {
		if !mgr.admissible(c) {
			continue
		}
		if best < 0 || len(mgr.procs[c]) < bestN {
			best, bestN = c, len(mgr.procs[c])
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("manager: %w (MaxPerCore=%d)", ErrMachineFull, mgr.opts.MaxPerCore)
	}
	return best, nil
}

func (mgr *Manager) admissible(c int) bool {
	return mgr.opts.MaxPerCore == 0 || len(mgr.procs[c]) < mgr.opts.MaxPerCore
}

// Remove evicts the named instance (process exit).
func (mgr *Manager) Remove(name string) error {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	for c, names := range mgr.procs {
		for i, n := range names {
			if n == name {
				mgr.procs[c] = append(names[:i], names[i+1:]...)
				delete(mgr.features, name)
				delete(mgr.specs, name)
				mgr.version++
				return nil
			}
		}
	}
	return fmt.Errorf("manager: %w %q", ErrUnknownProcess, name)
}

// Running returns the instance names currently placed, per core.
func (mgr *Manager) Running() [][]string {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	out := make([][]string, len(mgr.procs))
	for c, names := range mgr.procs {
		out[c] = append([]string(nil), names...)
	}
	return out
}

// Rebalance re-runs the global assignment search over the resident
// processes and migrates to the best layout if it saves at least
// minSavingWatts. Returns the number of processes that moved and the
// estimated power after rebalancing. A cancelled ctx abandons the search
// within one candidate estimate and leaves the assignment unchanged.
//
// Scope: Rebalance only shuffles processes among this machine's own
// cores — it cannot migrate across machines, because a Manager models
// exactly one CMP (the paper's single-machine framework). Cross-machine
// moves are the fleet scheduler's job (internal/fleet), built on the same
// Snapshot/Restore transaction primitives. When no move is worth making,
// the typed ErrNoImprovement sentinel is returned (with the current watts
// estimate still valid) rather than a silent no-op, so callers can
// distinguish "nothing to do" from "migrated to a better layout".
func (mgr *Manager) Rebalance(ctx context.Context, minSavingWatts float64) (moved int, watts float64, err error) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if err := mgr.intercept("manager.rebalance", ""); err != nil {
		return 0, 0, err
	}
	var names []string
	var feats []*core.FeatureVector
	for _, coreNames := range mgr.procs {
		for _, n := range coreNames {
			names = append(names, n)
			feats = append(feats, mgr.features[n])
		}
	}
	current, err := mgr.estimatedPowerLocked()
	if err != nil {
		return 0, 0, err
	}
	if len(names) == 0 {
		return 0, current, fmt.Errorf("manager: %w: nothing resident", ErrNoImprovement)
	}
	results, err := mgr.cm.BestAssignmentContext(ctx, feats, 0)
	if err != nil {
		return 0, 0, err
	}
	// Respect the same time-sharing cap placement honours.
	best := core.AssignmentResult{}
	found := false
	for _, r := range results {
		ok := true
		for _, fs := range r.Assignment {
			if mgr.opts.MaxPerCore > 0 && len(fs) > mgr.opts.MaxPerCore {
				ok = false
				break
			}
		}
		if ok {
			best = r
			found = true
			break
		}
	}
	if !found || current-best.Watts < minSavingWatts {
		return 0, current, fmt.Errorf("manager: %w: best admissible layout saves %.4f W (threshold %.4f W)",
			ErrNoImprovement, current-best.Watts, minSavingWatts)
	}
	// Adopt the new layout. BestAssignment works on features; map the
	// feature identity back to instance names (features are shared per
	// workload, so match multiset-style).
	remaining := map[*core.FeatureVector][]string{}
	for i, f := range feats {
		remaining[f] = append(remaining[f], names[i])
	}
	oldCore := map[string]int{}
	for c, coreNames := range mgr.procs {
		for _, n := range coreNames {
			oldCore[n] = c
		}
	}
	newProcs := make([][]string, mgr.mach.NumCores)
	for c, fs := range best.Assignment {
		for _, f := range fs {
			ns := remaining[f]
			if len(ns) == 0 {
				return 0, 0, fmt.Errorf("manager: rebalance lost track of a process")
			}
			n := ns[0]
			remaining[f] = ns[1:]
			newProcs[c] = append(newProcs[c], n)
			if oldCore[n] != c {
				moved++
			}
		}
	}
	if moved == 0 {
		// The best admissible layout is the one already in place.
		return 0, best.Watts, fmt.Errorf("manager: %w: current layout is already optimal", ErrNoImprovement)
	}
	mgr.procs = newProcs
	mgr.version++
	return moved, best.Watts, nil
}
