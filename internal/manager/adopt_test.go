package manager

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mpmc/internal/machine"
	"mpmc/internal/workload"
)

// TestAdoptReinstatesRecoveredNames exercises the WAL-recovery adoption
// path directly: an instance comes back under its logbook name on its
// recorded core, the ID counter ratchets past the adopted suffix so new
// placements never collide, and admissibility is still enforced.
func TestAdoptReinstatesRecoveredNames(t *testing.T) {
	ctx := context.Background()
	m := machine.TwoCoreWorkstation()
	mgr := New(m, sharedPowerModel(t, m), Options{
		Policy:     RoundRobin,
		Features:   &truthSource{m: m},
		MaxPerCore: 1,
	})

	if err := mgr.Adopt(ctx, workload.ByName("mcf"), "mcf#7", 0); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	res := mgr.Residents()
	if len(res) != 1 || res[0].Name != "mcf#7" || res[0].Core != 0 {
		t.Fatalf("residents after adopt: %+v", res)
	}

	// Same name again, any core: the logbook never replays a duplicate.
	if err := mgr.Adopt(ctx, workload.ByName("mcf"), "mcf#7", 1); err == nil ||
		!strings.Contains(err.Error(), "already resident") {
		t.Fatalf("duplicate adopt err = %v", err)
	}
	// Core out of range and core at MaxPerCore both refuse.
	if err := mgr.Adopt(ctx, workload.ByName("gzip"), "gzip#1", 5); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range adopt err = %v", err)
	}
	if err := mgr.Adopt(ctx, workload.ByName("gzip"), "gzip#1", 0); !errors.Is(err, ErrMachineFull) {
		t.Fatalf("full-core adopt err = %v", err)
	}

	// The counter ratcheted to 7, so the next allocation is #8 — a fresh
	// placement can never collide with a recovered name.
	name, _, err := mgr.PlaceAt(ctx, workload.ByName("gzip"), 1)
	if err != nil {
		t.Fatalf("PlaceAt after adopt: %v", err)
	}
	if name != "gzip#8" {
		t.Fatalf("post-adopt name = %q, want gzip#8", name)
	}
}
