package manager

import (
	"context"
	"reflect"
	"testing"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/workload"
)

// freshManager builds a manager with NO shared profile cache, so the test
// controls exactly which workloads get profiled and in what order.
func freshManager(t *testing.T, m *machine.Machine, policy Policy, workers int) *Manager {
	t.Helper()
	return New(m, sharedPowerModel(t, m), Options{
		Policy:  policy,
		Profile: core.ProfileOptions{Warmup: 1, Duration: 2, Seed: 17, Workers: workers},
	})
}

// TestProfileSeedOrderIndependent pins the fix for the old order-dependent
// seed (derived from the cache size at profiling time): the same workload
// must get the same feature vector no matter how many others were profiled
// before it.
func TestProfileSeedOrderIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("exercises the built-in stressmark profiler's seeding")
	}
	m := machine.FourCoreServer()
	a := freshManager(t, m, PowerAware, 1)
	b := freshManager(t, m, PowerAware, 1)

	// Manager a sees gzip first; manager b sees it after two others.
	fa, err := a.FeatureOf(context.Background(), workload.ByName("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mcf", "art", "gzip"} {
		if _, err := b.FeatureOf(context.Background(), workload.ByName(name)); err != nil {
			t.Fatal(err)
		}
	}
	fb, err := b.FeatureOf(context.Background(), workload.ByName("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fa.MPACurve, fb.MPACurve) || fa.Alpha != fb.Alpha || fa.Beta != fb.Beta {
		t.Fatalf("profile of gzip depends on arrival order:\n%v (α=%v β=%v)\nvs\n%v (α=%v β=%v)",
			fa.MPACurve, fa.Alpha, fa.Beta, fb.MPACurve, fb.Alpha, fb.Beta)
	}
}

// TestPlaceAllMatchesSequentialPlace checks the batch path end to end: a
// PlaceAll with concurrent profiling must produce the same instance names,
// cores, and power estimates as sequential Place calls.
func TestPlaceAllMatchesSequentialPlace(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles with real stressmark sweeps; fast variant: TestShortBatchMatchesSequential")
	}
	m := machine.FourCoreServer()
	arrivals := []*workload.Spec{
		workload.ByName("mcf"),
		workload.ByName("gzip"),
		workload.ByName("mcf"),
		workload.ByName("art"),
	}

	serial := freshManager(t, m, PowerAware, 1)
	var want []Placement
	for _, s := range arrivals {
		name, c, w, err := serial.Place(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, Placement{Name: name, Core: c, Watts: w})
	}

	batch := freshManager(t, m, PowerAware, 4)
	got, err := batch.PlaceAll(context.Background(), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PlaceAll diverged from sequential Place:\ngot  %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(batch.Running(), serial.Running()) {
		t.Fatalf("assignments diverged:\ngot  %v\nwant %v", batch.Running(), serial.Running())
	}
}

// TestConcurrentPlaceIsSafe hammers one manager from several goroutines
// (run under -race in CI) and checks the assignment stays consistent.
func TestConcurrentPlaceIsSafe(t *testing.T) {
	m := machine.FourCoreServer()
	mgr := testManager(t, m, LeastLoaded)
	specs := []*workload.Spec{
		workload.ByName("mcf"),
		workload.ByName("gzip"),
		workload.ByName("art"),
		workload.ByName("vpr"),
	}
	errs := make(chan error, len(specs))
	for _, s := range specs {
		go func(s *workload.Spec) {
			_, _, _, err := mgr.Place(context.Background(), s)
			errs <- err
		}(s)
	}
	for range specs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	placed := 0
	for _, names := range mgr.Running() {
		placed += len(names)
	}
	if placed != len(specs) {
		t.Fatalf("%d processes placed, want %d", placed, len(specs))
	}
	if _, err := mgr.EstimatedPower(); err != nil {
		t.Fatal(err)
	}
}
