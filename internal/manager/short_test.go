package manager

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/workload"
)

// Fast deterministic variants of the stressmark-profiling suites: the
// analytic truth oracle replaces the simulator, so these run in
// milliseconds in every lane (including -short -race) and pin the same
// placement semantics the slow tests validate against real profiles.

// TestShortBatchMatchesSequential is the instant counterpart of
// TestPlaceAllMatchesSequentialPlace: the batch path must produce exactly
// the placements a sequential arrival order would.
func TestShortBatchMatchesSequential(t *testing.T) {
	m := machine.FourCoreServer()
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	arrivals := []*workload.Spec{
		workload.ByName("mcf"),
		workload.ByName("gzip"),
		workload.ByName("mcf"),
		workload.ByName("art"),
		workload.ByName("equake"),
	}

	serial := New(m, pm, Options{Policy: PowerAware, Features: &truthSource{m: m}})
	var want []Placement
	for _, s := range arrivals {
		name, c, w, err := serial.Place(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, Placement{Name: name, Core: c, Watts: w})
	}

	batch := New(m, pm, Options{Policy: PowerAware, Features: &truthSource{m: m}})
	got, err := batch.PlaceAll(context.Background(), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PlaceAll diverged from sequential Place:\ngot  %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(batch.Running(), serial.Running()) {
		t.Fatalf("assignments diverged:\ngot  %v\nwant %v", batch.Running(), serial.Running())
	}
}

// countingSource wraps the truth oracle and counts resolutions, standing
// in for an expensive profiler.
type countingSource struct {
	inner truthSource
	calls int
}

func (s *countingSource) FeatureOf(ctx context.Context, spec *workload.Spec) (*core.FeatureVector, error) {
	s.calls++
	return s.inner.FeatureOf(ctx, spec)
}

// TestShortProfilerMemoized is the fast counterpart of
// TestProfilingIsMemoized: with a SharedProfiles cache, each workload is
// resolved through the profiler exactly once per manager even when the
// delegate source is bypassed — here we pin the built-in memoization by
// serving tiny real profiles through the cache path.
func TestShortProfilerMemoized(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	cache := map[string]*core.FeatureVector{
		"vpr": core.TruthFeature(workload.ByName("vpr"), m),
	}
	mgr := New(m, pm, Options{
		Policy:         PowerAware,
		SharedProfiles: cache,
	})
	f1, err := mgr.FeatureOf(context.Background(), workload.ByName("vpr"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := mgr.FeatureOf(context.Background(), workload.ByName("vpr"))
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("second FeatureOf re-resolved a cached workload")
	}
	if f1 != cache["vpr"] {
		t.Fatal("FeatureOf bypassed the shared profile cache")
	}
}

// TestShortFeatureSourceDelegation pins the Options.Features contract:
// the manager consults the source on every FeatureOf and never layers its
// own memoization on top.
func TestShortFeatureSourceDelegation(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	src := &countingSource{inner: truthSource{m: m}}
	mgr := New(m, pm, Options{Policy: PowerAware, Features: src})
	for i := 0; i < 3; i++ {
		if _, err := mgr.FeatureOf(context.Background(), workload.ByName("gzip")); err != nil {
			t.Fatal(err)
		}
	}
	if src.calls != 3 {
		t.Fatalf("source consulted %d times, want 3 (caching is the source's job)", src.calls)
	}
}

// TestShortRebalanceConvergesAndConserves drives a deliberately bad
// layout through Rebalance with instant features: power must never
// increase, residents are conserved, and a second pass reports
// ErrNoImprovement rather than oscillating.
func TestShortRebalanceConvergesAndConserves(t *testing.T) {
	m := machine.FourCoreServer()
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(m, pm, Options{Policy: RoundRobin, Features: &truthSource{m: m}})
	for _, n := range []string{"mcf", "art", "gzip", "equake", "mcf", "swim"} {
		if _, _, _, err := mgr.Place(context.Background(), workload.ByName(n)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := mgr.EstimatedPower()
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 8; pass++ {
		moved, after, err := mgr.Rebalance(context.Background(), 0)
		if err != nil {
			if errors.Is(err, ErrNoImprovement) {
				break
			}
			t.Fatal(err)
		}
		if moved == 0 {
			t.Fatal("Rebalance reported success without moving anything")
		}
		if after > before+1e-9 {
			t.Fatalf("rebalance increased power %.4f → %.4f", before, after)
		}
		before = after
		total := 0
		for _, names := range mgr.Running() {
			total += len(names)
		}
		if total != 6 {
			t.Fatalf("rebalance lost processes: %d resident", total)
		}
	}
}
