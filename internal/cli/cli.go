// Package cli holds the small amount of parsing shared by the command-line
// tools: machine and solver selection and benchmark-list parsing, with
// error messages that name the valid choices.
package cli

import (
	"fmt"
	"strings"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/workload"
)

// MachineByName maps the CLI machine names to presets.
func MachineByName(name string) (*machine.Machine, error) {
	switch name {
	case "server":
		return machine.FourCoreServer(), nil
	case "workstation":
		return machine.TwoCoreWorkstation(), nil
	case "laptop":
		return machine.TwoCoreLaptop(), nil
	}
	return nil, fmt.Errorf("unknown machine %q (want server, workstation, or laptop)", name)
}

// SolverByName maps CLI solver names to methods.
func SolverByName(name string) (core.SolverMethod, error) {
	switch name {
	case "auto":
		return core.SolverAuto, nil
	case "newton":
		return core.SolverNewton, nil
	case "window":
		return core.SolverWindow, nil
	}
	return 0, fmt.Errorf("unknown solver %q (want auto, newton, or window)", name)
}

// ParseBenches resolves a comma-separated benchmark list.
func ParseBenches(list string) ([]*workload.Spec, error) {
	var out []*workload.Spec
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s := workload.ByName(name)
		if s == nil {
			var known []string
			for _, w := range workload.Suite() {
				known = append(known, w.Name)
			}
			return nil, fmt.Errorf("unknown benchmark %q (want one of %s)", name, strings.Join(known, ", "))
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty benchmark list")
	}
	return out, nil
}
