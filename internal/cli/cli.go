// Package cli holds the request-building helpers shared by the command-line
// tools and the HTTP server: machine, solver, and policy selection,
// benchmark-list parsing, and feature-vector construction (profile, load
// from disk, or analytic oracle), with error messages that name the valid
// choices. Routing every front end through these helpers is what keeps the
// CLI and the service from drifting apart.
package cli

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/workload"
)

// MachineByName maps the CLI machine names to presets.
func MachineByName(name string) (*machine.Machine, error) {
	switch name {
	case "server":
		return machine.FourCoreServer(), nil
	case "workstation":
		return machine.TwoCoreWorkstation(), nil
	case "laptop":
		return machine.TwoCoreLaptop(), nil
	case "little":
		return machine.FourCoreLittle(), nil
	}
	return nil, fmt.Errorf("unknown machine %q (want server, workstation, laptop, or little)", name)
}

// SolverByName maps CLI solver names to methods.
func SolverByName(name string) (core.SolverMethod, error) {
	switch name {
	case "auto":
		return core.SolverAuto, nil
	case "newton":
		return core.SolverNewton, nil
	case "window":
		return core.SolverWindow, nil
	}
	return 0, fmt.Errorf("unknown solver %q (want auto, newton, or window)", name)
}

// ParseBenches resolves a comma-separated benchmark list.
func ParseBenches(list string) ([]*workload.Spec, error) {
	var out []*workload.Spec
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s := workload.ByName(name)
		if s == nil {
			var known []string
			for _, w := range workload.Suite() {
				known = append(known, w.Name)
			}
			return nil, fmt.Errorf("unknown benchmark %q (want one of %s)", name, strings.Join(known, ", "))
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty benchmark list")
	}
	return out, nil
}

// PolicyByName maps CLI/server policy names to placement policies.
func PolicyByName(name string) (manager.Policy, error) {
	switch name {
	case "power-aware":
		return manager.PowerAware, nil
	case "round-robin":
		return manager.RoundRobin, nil
	case "least-loaded":
		return manager.LeastLoaded, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want power-aware, round-robin, or least-loaded)", name)
}

// FeatureConfig describes how feature vectors are obtained. The zero value
// profiles with full-length runs at seed 0 on one worker.
type FeatureConfig struct {
	// Seed is the base profiling seed; each workload's run seed is
	// core.ProfileSeed(Seed, name), so vectors never depend on request or
	// arrival order.
	Seed uint64
	// Quick selects the short profiling runs used by interactive tools and
	// the server's default (warmup 1.5 s, duration 3 s per sweep point).
	Quick bool
	// Workers bounds each profiling sweep's concurrency (<= 0 selects
	// GOMAXPROCS); results are bit-identical at any worker count.
	Workers int
	// Truth substitutes the analytic oracle features for profiling.
	Truth bool
	// LoadDir, when non-empty, is searched for saved <bench>.json feature
	// vectors before profiling (see profiler -json).
	LoadDir string
	// Logf, when non-nil, receives progress messages ("profiling mcf...").
	Logf func(format string, args ...any)
}

// ProfileOptions renders the config into core profiling options for one
// named workload.
func (c FeatureConfig) ProfileOptions(name string) core.ProfileOptions {
	o := core.ProfileOptions{Seed: core.ProfileSeed(c.Seed, name), Workers: c.Workers}
	if c.Quick {
		o.Warmup, o.Duration = 1.5, 3
	}
	return o
}

// BuildFeature obtains the feature vector for one workload per the config:
// oracle feature, saved vector from LoadDir, or a profiling run. ctx
// bounds the profiling sweep (the tools pass their signal context, so ^C
// abandons the sweep between runs).
func (c FeatureConfig) BuildFeature(ctx context.Context, m *machine.Machine, spec *workload.Spec) (*core.FeatureVector, error) {
	logf := c.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if c.Truth {
		return core.TruthFeature(spec, m), nil
	}
	if c.LoadDir != "" {
		path := filepath.Join(c.LoadDir, spec.Name+".json")
		if data, err := os.ReadFile(path); err == nil {
			var f core.FeatureVector
			if err := json.Unmarshal(data, &f); err != nil {
				return nil, fmt.Errorf("loading %s: %w", path, err)
			}
			logf("loaded %s from %s", spec.Name, path)
			return &f, nil
		}
	}
	logf("profiling %s...", spec.Name)
	return core.Profile(ctx, m, spec, c.ProfileOptions(spec.Name))
}

// BuildFeatures obtains feature vectors for every spec, in input order.
func (c FeatureConfig) BuildFeatures(ctx context.Context, m *machine.Machine, specs []*workload.Spec) ([]*core.FeatureVector, error) {
	out := make([]*core.FeatureVector, len(specs))
	for i, s := range specs {
		f, err := c.BuildFeature(ctx, m, s)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// TrainOptions builds power-model training options with the shared quick
// profile (warmup 1 s, duration 3 s, 6 microbenchmark windows).
func TrainOptions(seed uint64, quick bool, workers int) core.PowerTrainOptions {
	o := core.PowerTrainOptions{Seed: seed, Workers: workers}
	if quick {
		o.Warmup, o.Duration, o.MicrobenchWindows = 1, 3, 6
	}
	return o
}
