package cli

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/workload"
)

func TestMachineByName(t *testing.T) {
	for name, cores := range map[string]int{"server": 4, "workstation": 2, "laptop": 2} {
		m, err := MachineByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.NumCores != cores {
			t.Fatalf("%s has %d cores, want %d", name, m.NumCores, cores)
		}
	}
	if _, err := MachineByName("mainframe"); err == nil {
		t.Fatal("accepted unknown machine")
	}
}

func TestSolverByName(t *testing.T) {
	cases := map[string]core.SolverMethod{
		"auto": core.SolverAuto, "newton": core.SolverNewton, "window": core.SolverWindow,
	}
	for name, want := range cases {
		got, err := SolverByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s resolved to %v", name, got)
		}
	}
	if _, err := SolverByName("magic"); err == nil {
		t.Fatal("accepted unknown solver")
	}
}

func TestParseBenches(t *testing.T) {
	specs, err := ParseBenches("mcf, art ,gzip")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].Name != "mcf" || specs[2].Name != "gzip" {
		t.Fatalf("parsed %v", specs)
	}
	if _, err := ParseBenches("mcf,notabench"); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
	if _, err := ParseBenches(" , "); err == nil {
		t.Fatal("accepted empty list")
	}
}

func TestPolicyByName(t *testing.T) {
	cases := map[string]manager.Policy{
		"power-aware": manager.PowerAware, "round-robin": manager.RoundRobin, "least-loaded": manager.LeastLoaded,
	}
	for name, want := range cases {
		got, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s resolved to %v", name, got)
		}
	}
	if _, err := PolicyByName("chaotic"); err == nil {
		t.Fatal("accepted unknown policy")
	}
}

func TestFeatureConfigProfileOptions(t *testing.T) {
	fc := FeatureConfig{Seed: 7, Quick: true, Workers: 3}
	o := fc.ProfileOptions("mcf")
	if o.Seed != core.ProfileSeed(7, "mcf") {
		t.Fatalf("seed %d not name-derived", o.Seed)
	}
	if o.Warmup != 1.5 || o.Duration != 3 || o.Workers != 3 {
		t.Fatalf("quick options wrong: %+v", o)
	}
	// Seeds depend on the name, not list position, so request order can
	// never change a profile.
	if fc.ProfileOptions("mcf").Seed == fc.ProfileOptions("art").Seed {
		t.Fatal("different benchmarks share a profiling seed")
	}
	slow := FeatureConfig{Seed: 7}
	if o := slow.ProfileOptions("mcf"); o.Warmup != 0 || o.Duration != 0 {
		t.Fatalf("non-quick config set durations: %+v", o)
	}
}

func TestBuildFeatureTruthAndLoad(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	spec := workload.ByName("mcf")

	// Truth path: analytic oracle, no profiling run.
	f, err := FeatureConfig{Truth: true}.BuildFeature(context.Background(), m, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := core.TruthFeature(spec, m)
	if f.Name != "mcf" || f.Alpha != want.Alpha || f.Beta != want.Beta {
		t.Fatalf("truth feature differs from oracle: %+v vs %+v", f, want)
	}

	// Load path: a saved vector short-circuits profiling.
	dir := t.TempDir()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "mcf.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	fc := FeatureConfig{LoadDir: dir, Logf: func(format string, args ...any) {
		logged = append(logged, format)
	}}
	f2, err := fc.BuildFeature(context.Background(), m, spec)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Name != "mcf" || f2.API != want.API {
		t.Fatalf("loaded feature differs: %+v", f2)
	}
	if len(logged) != 1 || logged[0] != "loaded %s from %s" {
		t.Fatalf("expected one load log line, got %v", logged)
	}

	// A corrupt saved vector is an error, not a silent re-profile.
	if err := os.WriteFile(filepath.Join(dir, "art.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := (FeatureConfig{LoadDir: dir}).BuildFeature(context.Background(), m, workload.ByName("art")); err == nil {
		t.Fatal("corrupt saved vector accepted")
	}
}

func TestTrainOptions(t *testing.T) {
	o := TrainOptions(3, true, 2)
	if o.Seed != 3 || o.Workers != 2 || o.Warmup != 1 || o.Duration != 3 || o.MicrobenchWindows != 6 {
		t.Fatalf("quick train options wrong: %+v", o)
	}
	if o := TrainOptions(3, false, 0); o.Warmup != 0 || o.MicrobenchWindows != 0 {
		t.Fatalf("full train options should defer to defaults: %+v", o)
	}
}
