package cli

import (
	"testing"

	"mpmc/internal/core"
)

func TestMachineByName(t *testing.T) {
	for name, cores := range map[string]int{"server": 4, "workstation": 2, "laptop": 2} {
		m, err := MachineByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.NumCores != cores {
			t.Fatalf("%s has %d cores, want %d", name, m.NumCores, cores)
		}
	}
	if _, err := MachineByName("mainframe"); err == nil {
		t.Fatal("accepted unknown machine")
	}
}

func TestSolverByName(t *testing.T) {
	cases := map[string]core.SolverMethod{
		"auto": core.SolverAuto, "newton": core.SolverNewton, "window": core.SolverWindow,
	}
	for name, want := range cases {
		got, err := SolverByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s resolved to %v", name, got)
		}
	}
	if _, err := SolverByName("magic"); err == nil {
		t.Fatal("accepted unknown solver")
	}
}

func TestParseBenches(t *testing.T) {
	specs, err := ParseBenches("mcf, art ,gzip")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].Name != "mcf" || specs[2].Name != "gzip" {
		t.Fatalf("parsed %v", specs)
	}
	if _, err := ParseBenches("mcf,notabench"); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
	if _, err := ParseBenches(" , "); err == nil {
		t.Fatal("accepted empty list")
	}
}
