package fleet_test

// Regression tests for the Pump lock-freedom fix and the sharded
// cancel-vs-pump contract. External test package: these drive the
// exported surface only, like queue_race_test.go.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpmc/internal/core"
	"mpmc/internal/fleet"
	"mpmc/internal/machine"
	"mpmc/internal/workload"
)

// TestPumpScoresOutsideFleetLock pins the bugfix for Pump holding the
// fleet lock across candidate scoring: while the pump's first scoring
// call is parked on a gate (simulating a slow equilibrium solve), a
// concurrent Place on the same fleet must still complete. Before the
// fix the scoring pass ran under the fleet lock, so the Place below
// deadlocked until the gate opened.
func TestPumpScoresOutsideFleetLock(t *testing.T) {
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	entered := make(chan struct{})
	var firstScore atomic.Bool
	var nodes []fleet.NodeConfig
	for i := 0; i < 4; i++ {
		nodes = append(nodes, fleet.NodeConfig{
			Name: fmt.Sprintf("m%d", i), Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 2,
		})
	}
	f, err := fleet.New(fleet.Config{
		Nodes:    nodes,
		Policy:   fleet.LeastDegradation,
		QueueCap: 4,
		Profile: func(_ context.Context, m *machine.Machine, spec *workload.Spec, _ core.ProfileOptions) (*core.FeatureVector, error) {
			return core.TruthFeature(spec, m), nil
		},
		Intercept: func(site, key string) error {
			// Park only the very first scoring call (the pump's: the test
			// sequences on `entered` before placing); an atomic claim, not
			// a sync.Once, so later callers pass instead of queueing on it.
			if site == "fleet.score" && firstScore.CompareAndSwap(false, true) {
				close(entered)
				<-gate
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := f.Submit(workload.ByName("mcf"), "queued"); err != nil {
		t.Fatal(err)
	}

	pumpDone := make(chan error, 1)
	go func() {
		_, perr := f.Pump(ctx)
		pumpDone <- perr
	}()
	<-entered // the pump is now mid-scoring, parked on the gate

	placeDone := make(chan error, 1)
	go func() {
		_, perr := f.Place(ctx, workload.ByName("gzip"))
		placeDone <- perr
	}()
	select {
	case perr := <-placeDone:
		if perr != nil {
			t.Fatalf("concurrent Place failed: %v", perr)
		}
	case <-time.After(30 * time.Second):
		close(gate)
		t.Fatal("Place blocked while Pump's scoring was in flight: the pump is holding the fleet lock across the solve")
	}
	select {
	case perr := <-pumpDone:
		close(gate)
		t.Fatalf("Pump finished while its scoring gate was still closed: %v", perr)
	default:
	}
	close(gate)
	if perr := <-pumpDone; perr != nil {
		t.Fatalf("Pump failed: %v", perr)
	}
	if d := f.QueueDepth(); d != 0 {
		t.Fatalf("queue depth %d after pump, want 0", d)
	}
	requireConserved(t, f)
}

// shardedRaceFleet builds a small sharded fleet over instant truth
// features with an optional per-score delay widening the commit window.
func shardedRaceFleet(t *testing.T, machines, shards, queueCap int, scoreDelay time.Duration) *fleet.Sharded {
	t.Helper()
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	var nodes []fleet.NodeConfig
	for i := 0; i < machines; i++ {
		nodes = append(nodes, fleet.NodeConfig{
			Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 1,
		})
	}
	cfg := fleet.Config{
		Nodes:    nodes,
		Policy:   fleet.LeastDegradation,
		QueueCap: queueCap,
		Profile: func(_ context.Context, m *machine.Machine, spec *workload.Spec, _ core.ProfileOptions) (*core.FeatureVector, error) {
			return core.TruthFeature(spec, m), nil
		},
	}
	if scoreDelay > 0 {
		cfg.Intercept = func(site, key string) error {
			if site == "fleet.score" {
				time.Sleep(scoreDelay)
			}
			return nil
		}
	}
	s, err := fleet.NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedCancelVsPumpUnambiguous races CancelQueued against a
// draining Pump on the sharded fleet. The contract: a CancelQueued that
// returns true means the fleet never admitted that ticket (its tag never
// appears among the placements), a false return during the race means
// the pump's commit won, and the queue ledger — submitted = admitted +
// abandoned + dropped + depth — balances afterwards either way.
func TestShardedCancelVsPumpUnambiguous(t *testing.T) {
	ctx := context.Background()
	iters := 25
	if testing.Short() {
		iters = 8
	}
	for iter := 0; iter < iters; iter++ {
		s := shardedRaceFleet(t, 4, 2, 8, 100*time.Microsecond)
		specs := []string{"mcf", "gzip", "vpr"}
		tickets := make([]int, len(specs))
		for i, name := range specs {
			tk, err := s.Submit(workload.ByName(name), fmt.Sprintf("job%d", i))
			if err != nil {
				t.Fatal(err)
			}
			tickets[i] = tk
		}
		var wg sync.WaitGroup
		var placed []fleet.Placed
		var pumpErr error
		cancelled := make([]bool, len(tickets))
		wg.Add(2)
		go func() {
			defer wg.Done()
			placed, pumpErr = s.Pump(ctx)
		}()
		go func() {
			defer wg.Done()
			for i, tk := range tickets {
				cancelled[i] = s.CancelQueued(tk)
			}
		}()
		wg.Wait()
		if pumpErr != nil {
			t.Fatalf("iter %d: pump: %v", iter, pumpErr)
		}
		placedTags := map[string]bool{}
		for _, p := range placed {
			placedTags[p.Tag] = true
		}
		for i, ok := range cancelled {
			if ok && placedTags[fmt.Sprintf("job%d", i)] {
				t.Fatalf("iter %d: ticket %d cancelled AND placed — cancel-vs-pump ambiguity", iter, tickets[i])
			}
		}
		reg := s.Registry()
		submitted := reg.Counter("fleet_queue_submitted_total").Value()
		admitted := reg.Counter("fleet_queue_admitted_total").Value()
		abandoned := reg.Counter("fleet_queue_abandoned_total").Value()
		dropped := reg.Counter("fleet_queue_dropped_total").Value()
		depth := uint64(s.QueueDepth())
		if submitted != admitted+abandoned+dropped+depth {
			t.Fatalf("iter %d: ledger: submitted %d != admitted %d + abandoned %d + dropped %d + depth %d",
				iter, submitted, admitted, abandoned, dropped, depth)
		}
		if got := uint64(len(placed)); got != admitted {
			t.Fatalf("iter %d: pump returned %d placements, admitted counter says %d", iter, got, admitted)
		}
	}
}

// TestShardedPumpCtxCancelKeepsQueue pins the shutdown-drain contract:
// a Pump abandoned by context cancellation returns the error and leaves
// every unadmitted entry in the queue — nothing is silently dropped
// between dequeue and commit.
func TestShardedPumpCtxCancelKeepsQueue(t *testing.T) {
	s := shardedRaceFleet(t, 4, 2, 8, 0)
	for i, name := range []string{"mcf", "gzip", "vpr"} {
		if _, err := s.Submit(workload.ByName(name), fmt.Sprintf("job%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the pump must not consume anything
	placed, err := s.Pump(ctx)
	if err == nil {
		t.Fatal("pump with cancelled context returned nil error")
	}
	if len(placed) != 0 {
		t.Fatalf("pump with cancelled context admitted %d entries", len(placed))
	}
	if d := s.QueueDepth(); d != 3 {
		t.Fatalf("queue depth %d after cancelled pump, want 3 (nothing dropped)", d)
	}
	reg := s.Registry()
	submitted := reg.Counter("fleet_queue_submitted_total").Value()
	admitted := reg.Counter("fleet_queue_admitted_total").Value()
	abandoned := reg.Counter("fleet_queue_abandoned_total").Value()
	dropped := reg.Counter("fleet_queue_dropped_total").Value()
	if submitted != admitted+abandoned+dropped+uint64(s.QueueDepth()) {
		t.Fatalf("ledger: submitted %d != admitted %d + abandoned %d + dropped %d + depth %d",
			submitted, admitted, abandoned, dropped, s.QueueDepth())
	}
}
