package fleet_test

// Short-lane coverage of thread-group placement on the sharded serving
// tier: shaping per policy, sibling anti-affinity across shards, the
// all-shard rollback, and the group ledger counters.

import (
	"context"
	"errors"
	"testing"

	"mpmc/internal/fleet"
	"mpmc/internal/threads"
	"mpmc/internal/workload"
)

func groupOf(t *testing.T, bench string, n int, sharedFrac float64) threads.GroupSpec {
	t.Helper()
	base := workload.ByName(bench)
	if base == nil {
		t.Fatalf("%s missing from suite", bench)
	}
	return threads.GroupSpec{Base: base, Threads: n, SharedFrac: sharedFrac, WriteFrac: 0.5}
}

func TestShardedPlaceGroupColocate(t *testing.T) {
	ctx := context.Background()
	s := surfaceFleet(t, 4, 2, func(c *fleet.Config) { c.Policy = fleet.ColocateSharers })

	placed, err := s.PlaceGroup(ctx, groupOf(t, "gzip", 3, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 1 {
		t.Fatalf("colocate placed %d instances for one group, want 1", len(placed))
	}
	reg := s.Registry()
	for name, want := range map[string]uint64{
		"fleet_group_spawned_members_total": 3,
		"fleet_group_placed_members_total":  3,
		"fleet_groups_placed_total":         1,
		"fleet_groups_rejected_total":       0,
	} {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	// A T=1 group is a legacy single placement of the base spec.
	placed, err = s.PlaceGroup(ctx, groupOf(t, "vpr", 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 1 {
		t.Fatalf("T=1 group placed %d instances, want 1", len(placed))
	}
}

func TestShardedPlaceGroupSpreadAntiAffinity(t *testing.T) {
	ctx := context.Background()
	s := surfaceFleet(t, 4, 2, func(c *fleet.Config) { c.Policy = fleet.SpreadSharers })

	placed, err := s.PlaceGroup(ctx, groupOf(t, "gzip", 4, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 4 {
		t.Fatalf("spread placed %d instances for a 4-thread group, want 4", len(placed))
	}
	nodes := map[string]bool{}
	for _, p := range placed {
		nodes[p.Node] = true
	}
	if len(nodes) != 4 {
		t.Errorf("4 members landed on %d distinct machines, want 4 (anti-affinity across shards)", len(nodes))
	}
}

func TestShardedPlaceGroupFullRollsBack(t *testing.T) {
	ctx := context.Background()
	// 2 machines x 2 cores x MaxPerCore 1 = 4 slots, one per shard.
	s := surfaceFleet(t, 2, 2, func(c *fleet.Config) { c.Policy = fleet.SpreadSharers })

	if _, err := s.PlaceAll(ctx, []*workload.Spec{workload.ByName("mcf"), workload.ByName("art")}); err != nil {
		t.Fatal(err)
	}
	_, err := s.PlaceGroup(ctx, groupOf(t, "gzip", 3, 0.5))
	if !errors.Is(err, fleet.ErrFleetFull) {
		t.Fatalf("oversized group: got %v, want ErrFleetFull", err)
	}
	reg := s.Registry()
	if got := reg.CounterValue("fleet_group_faulted_members_total"); got != 3 {
		t.Errorf("faulted members = %d, want 3 (whole group)", got)
	}
	if got := reg.CounterValue("fleet_groups_rejected_total"); got != 1 {
		t.Errorf("groups rejected = %d, want 1", got)
	}
	if got := reg.CounterValue("fleet_group_placed_members_total"); got != 0 {
		t.Errorf("placed members = %d after rollback, want 0", got)
	}

	// The rollback restored both free slots: a 2-thread group fits.
	placed, err := s.PlaceGroup(ctx, groupOf(t, "gzip", 2, 0.5))
	if err != nil {
		t.Fatalf("post-rollback group: %v", err)
	}
	if len(placed) != 2 {
		t.Fatalf("post-rollback group placed %d, want 2", len(placed))
	}
}
