package fleet

import (
	"context"
	"math"

	"mpmc/internal/core"
	"mpmc/internal/freq"
	"mpmc/internal/machine"
	"mpmc/internal/sched"
	"mpmc/internal/workload"
)

// assignmentSPI returns the total predicted SPI of an assignment, one term
// per RESIDENT: for each cache group, the per-core process choices are
// enumerated exactly like the combined model's Eq. 10 power averaging and
// each combination is solved to equilibrium; a resident's expected SPI is
// then its prediction averaged over the combinations it appears in (its
// round-robin share of the time quantum), and the machine total sums those
// expectations over every resident. Counting per resident — not per core —
// is what makes the metric comparable across layouts: migrating a process
// from a time-shared core to an idle machine keeps the number of terms
// fixed and only changes their contention, so an improvement is a real
// predicted speed-up, not an artifact of the accounting.
// It is the memo-free reference implementation: the differential suite
// replays whole scenarios through it and through the cached nodeSPI path
// and asserts bit equality. The per-group work lives in groupSPITerms
// (scorecache.go); the accumulation here is the order every cached replay
// must reproduce.
func assignmentSPI(ctx context.Context, m *machine.Machine, asg core.Assignment, solver core.SolverMethod) (float64, error) {
	total := 0.0
	for _, group := range m.Groups {
		busy := busyCores(group, asg)
		if len(busy) == 0 {
			continue
		}
		terms, err := groupSPITerms(ctx, m, busy, asg, solver, nil)
		if err != nil {
			return 0, err
		}
		for _, t := range terms {
			total += t
		}
	}
	return total, nil
}

// soloSPI returns a process's predicted SPI running alone on the machine:
// the whole cache to itself, the Eq. 3 line at min(GMax, A) ways. It is
// the interference-free baseline behind BinPack's relative-degradation
// ceiling. The shared solver state makes repeat baselines a recall — the
// solution is a pure function of the feature vector and associativity, so
// warm and cold calls are bit-identical (st == nil solves cold).
func soloSPI(ctx context.Context, m *machine.Machine, f *core.FeatureVector, solver core.SolverMethod, st *core.SolverState) (float64, error) {
	preds, err := core.PredictGroupCached(ctx, []*core.FeatureVector{f}, m.Assoc, solver, st)
	if err != nil {
		return 0, err
	}
	return preds[0].SPI, nil
}

// withAddition returns a copy of asg with f appended to core c; asg itself
// is never mutated, so a scoring pass can evaluate every candidate slot
// against one consistent snapshot.
func withAddition(asg core.Assignment, f *core.FeatureVector, c int) core.Assignment {
	next := make(core.Assignment, len(asg))
	for i, procs := range asg {
		next[i] = append([]*core.FeatureVector(nil), procs...)
	}
	next[c] = append(next[c], f)
	return next
}

// nodeScore is one node's best candidate slot for an arrival under the
// active policy — exactly the pipeline's Score shape (OK false when the
// node has no admissible core, Value the policy metric, Rel BinPack's
// relative-degradation ceiling metric). The alias lets the decision memo,
// the peek fast path, and sched's selectors all speak one type.
type nodeScore = sched.Score

// scoreNode finds the best admissible core of one node for spec under the
// fleet policy. The decision memo short-circuits a node whose exact
// (assignment, arrival) pair has been scored before; the seam and the
// feature resolve always run first, so fault injection and profiling
// semantics are identical warm or cold.
func (f *Fleet) scoreNode(ctx context.Context, n *node, spec *workload.Spec) (nodeScore, error) {
	if f.cfg.Intercept != nil {
		// Injection seam ahead of the equilibrium solves: an injected
		// error surfaces exactly like a solver failure for this node.
		if err := f.cfg.Intercept("fleet.score", n.cfg.Name); err != nil {
			return nodeScore{}, err
		}
	}
	feat, err := f.feats.get(ctx, n.cfg.Machine, spec)
	if err != nil {
		return nodeScore{}, err
	}
	asg := f.assignmentOf(n)
	// CapAware decisions depend on the live cap headroom, which the
	// decision key cannot encode; the memo would replay a decision made
	// under different budget pressure, so the policy always scores cold.
	useMemo := f.scores != nil && f.cfg.Policy != CapAware
	var dkey string
	if useMemo {
		dkey = f.decisionKeyOf(n, feat)
		if s, ok := f.scores.getDecision(dkey); ok {
			return s, nil
		}
	}
	s, err := f.scoreNodeCold(ctx, n, feat, asg, n.freqIx)
	if err == nil && useMemo {
		f.scores.putDecision(dkey, s)
	}
	return s, err
}

// scoreNodeCold computes one node's best candidate slot from scratch (up
// to the term memo), scanning cores in index order with strict less-than
// comparisons so ties resolve to the lowest core. The node's assignment
// was read once by the caller, so the whole scan scores against a
// consistent snapshot; the fleet placement lock guarantees nothing commits
// mid-scan. fix is the node's DVFS rung at capture time: frequency-blind
// policies never read it, while the frequency-aware policies price the
// node's "before" state at it (detached scoring passes the captured rung,
// so a concurrent re-clock is caught by version revalidation, not by a
// torn read here).
func (f *Fleet) scoreNodeCold(ctx context.Context, n *node, feat *core.FeatureVector, asg core.Assignment, fix int) (nodeScore, error) {
	admissible := func(c int) bool {
		return n.cfg.MaxPerCore == 0 || len(asg[c]) < n.cfg.MaxPerCore
	}

	switch f.cfg.Policy {
	case LeastWatts:
		baseW, err := n.cm.EstimateAssignmentContext(ctx, asg)
		if err != nil {
			return nodeScore{}, err
		}
		best := nodeScore{}
		for c := 0; c < n.cfg.Machine.NumCores; c++ {
			if !admissible(c) {
				continue
			}
			w, err := n.cm.EstimateAdditionContext(ctx, asg, feat, c)
			if err != nil {
				return nodeScore{}, err
			}
			added := w - baseW
			if !best.OK || added < best.Value {
				best = nodeScore{OK: true, Core: c, Value: added}
			}
		}
		return best, nil

	case LeastDegradation, BinPack, ColocateSharers, SpreadSharers:
		// Delta evaluation: solve (or recall) the machine's current groups
		// once, then score "add feat to core c" by re-solving only core c's
		// group with the newcomer and replaying the whole-machine term
		// accumulation with that one group's terms swapped in. The replay
		// walks groups in the same order with the same per-group term
		// streams a cold assignmentSPI of the candidate assignment would,
		// so the scores are bit-identical — only the unchanged groups'
		// solves are skipped.
		m := n.cfg.Machine
		baseGroups, err := f.nodeTerms(ctx, m, asg)
		if err != nil {
			return nodeScore{}, err
		}
		baseSPI := replayTerms(baseGroups)
		solo, err := soloSPI(ctx, m, feat, f.cfg.Solver, f.solver)
		if err != nil {
			return nodeScore{}, err
		}
		best := nodeScore{}
		for c := 0; c < m.NumCores; c++ {
			if !admissible(c) {
				continue
			}
			gi := m.GroupOf(c)
			cand := withAdditionShared(asg, feat, c)
			candTerms, err := f.groupTerms(ctx, m, busyCores(m.Groups[gi], cand), cand)
			if err != nil {
				return nodeScore{}, err
			}
			after := 0.0
			for g := range baseGroups {
				terms := baseGroups[g]
				if g == gi {
					terms = candTerms
				}
				for _, t := range terms {
					after += t
				}
			}
			added := after - baseSPI
			if !best.OK || added < best.Value {
				rel := 0.0
				if solo > 0 {
					rel = (added - solo) / solo
				}
				best = nodeScore{OK: true, Core: c, Value: added, Rel: rel}
			}
		}
		return best, nil

	case LeastEnergy:
		// Candidates are (core, state) pairs: the unscaled delta machinery
		// is exactly LeastDegradation's, then each ladder rung scales the
		// candidate's SPI and watts (identity-gated, so the base rung of an
		// out-of-order machine reproduces the legacy floats bit for bit)
		// and the winner minimizes the increase in the node's energy-delay
		// product, scaledWatts·scaledSPI². States iterate from the base
		// rung downward with strict less-than, so ties resolve to the
		// lowest core at the base state — the legacy-shaped decision.
		m := n.cfg.Machine
		baseGroups, err := f.nodeTerms(ctx, m, asg)
		if err != nil {
			return nodeScore{}, err
		}
		baseSPI := replayTerms(baseGroups)
		baseW, err := n.cm.EstimateAssignmentContext(ctx, asg)
		if err != nil {
			return nodeScore{}, err
		}
		st := staticWatts(n)
		cur := m.Freq.State(fix)
		curSPI := freq.ScaleSPI(baseSPI, betaTotal(asg), freq.SPIFactorAt(m.Core, cur))
		curW := freq.ScaleWatts(baseW, st, freq.DynScaleAt(m.Core, cur))
		edpBefore := curW * curSPI * curSPI
		betaAfter := betaTotal(asg) + betaOf(feat)
		best := nodeScore{}
		for c := 0; c < m.NumCores; c++ {
			if !admissible(c) {
				continue
			}
			gi := m.GroupOf(c)
			cand := withAdditionShared(asg, feat, c)
			candTerms, err := f.groupTerms(ctx, m, busyCores(m.Groups[gi], cand), cand)
			if err != nil {
				return nodeScore{}, err
			}
			after := 0.0
			for g := range baseGroups {
				terms := baseGroups[g]
				if g == gi {
					terms = candTerms
				}
				for _, t := range terms {
					after += t
				}
			}
			wAfter, err := n.cm.EstimateAdditionContext(ctx, asg, feat, c)
			if err != nil {
				return nodeScore{}, err
			}
			for ix := m.Freq.BaseIx(); ix >= 0; ix-- {
				s := m.Freq.State(ix)
				sSPI := freq.ScaleSPI(after, betaAfter, freq.SPIFactorAt(m.Core, s))
				sW := freq.ScaleWatts(wAfter, st, freq.DynScaleAt(m.Core, s))
				added := sW*sSPI*sSPI - edpBefore
				if !best.OK || added < best.Value {
					best = nodeScore{OK: true, Core: c, Value: added, Freq: ix + 1}
				}
			}
		}
		return best, nil

	case CapAware:
		// LeastDegradation over (core, state) candidates, with the power
		// cap as an admission filter: a slot is only admissible while the
		// node's scaled post-placement draw fits the remaining fleet
		// headroom. Uncapped, the base state always wins the strict SPI
		// comparison (lower rungs only inflate the compute term), so the
		// values equal LeastDegradation's exactly; commitLocked's
		// tryReserve remains the authoritative gate — this filter only
		// steers the decision toward slots that can still be admitted.
		m := n.cfg.Machine
		baseGroups, err := f.nodeTerms(ctx, m, asg)
		if err != nil {
			return nodeScore{}, err
		}
		baseSPI := replayTerms(baseGroups)
		solo, err := soloSPI(ctx, m, feat, f.cfg.Solver, f.solver)
		if err != nil {
			return nodeScore{}, err
		}
		betaBase := betaTotal(asg)
		cur := m.Freq.State(fix)
		spiBefore := freq.ScaleSPI(baseSPI, betaBase, freq.SPIFactorAt(m.Core, cur))
		betaAfter := betaBase + betaOf(feat)
		st := staticWatts(n)
		capW, usedEx := 0.0, 0.0
		if f.capActive() {
			capW = f.capL.capWatts()
			usedEx = f.capL.usedExcept(n.cfg.Name)
		}
		best := nodeScore{}
		for c := 0; c < m.NumCores; c++ {
			if !admissible(c) {
				continue
			}
			gi := m.GroupOf(c)
			cand := withAdditionShared(asg, feat, c)
			candTerms, err := f.groupTerms(ctx, m, busyCores(m.Groups[gi], cand), cand)
			if err != nil {
				return nodeScore{}, err
			}
			after := 0.0
			for g := range baseGroups {
				terms := baseGroups[g]
				if g == gi {
					terms = candTerms
				}
				for _, t := range terms {
					after += t
				}
			}
			wAfter, err := n.cm.EstimateAdditionContext(ctx, asg, feat, c)
			if err != nil {
				return nodeScore{}, err
			}
			for ix := m.Freq.BaseIx(); ix >= 0; ix-- {
				s := m.Freq.State(ix)
				if capW > 0 {
					sW := freq.ScaleWatts(wAfter, st, freq.DynScaleAt(m.Core, s))
					if usedEx+sW > capW {
						continue
					}
				}
				sSPI := freq.ScaleSPI(after, betaAfter, freq.SPIFactorAt(m.Core, s))
				added := sSPI - spiBefore
				if !best.OK || added < best.Value {
					rel := 0.0
					if solo > 0 {
						rel = (added - solo) / solo
					}
					best = nodeScore{OK: true, Core: c, Value: added, Rel: rel, Freq: ix + 1}
				}
			}
		}
		return best, nil

	case Spread:
		// Spread never consults the model; the spread prioritizer handles
		// live placement. Report admissibility only.
		best := nodeScore{}
		for c := 0; c < n.cfg.Machine.NumCores; c++ {
			if admissible(c) {
				best = nodeScore{OK: true, Core: c, Value: math.NaN()}
				break
			}
		}
		return best, nil
	}
	return nodeScore{}, errUnknownPolicy(f.cfg.Policy)
}
