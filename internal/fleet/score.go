package fleet

import (
	"context"
	"math"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/workload"
)

// assignmentSPI returns the total predicted SPI of an assignment, one term
// per RESIDENT: for each cache group, the per-core process choices are
// enumerated exactly like the combined model's Eq. 10 power averaging and
// each combination is solved to equilibrium; a resident's expected SPI is
// then its prediction averaged over the combinations it appears in (its
// round-robin share of the time quantum), and the machine total sums those
// expectations over every resident. Counting per resident — not per core —
// is what makes the metric comparable across layouts: migrating a process
// from a time-shared core to an idle machine keeps the number of terms
// fixed and only changes their contention, so an improvement is a real
// predicted speed-up, not an artifact of the accounting.
func assignmentSPI(ctx context.Context, m *machine.Machine, asg core.Assignment, solver core.SolverMethod) (float64, error) {
	total := 0.0
	for _, group := range m.Groups {
		var busy []int
		for _, c := range group {
			if len(asg[c]) > 0 {
				busy = append(busy, c)
			}
		}
		if len(busy) == 0 {
			continue
		}
		// perProc[i][k] accumulates proc k of busy core i's SPI over the
		// combinations it participates in.
		perProc := make([][]float64, len(busy))
		for i, c := range busy {
			perProc[i] = make([]float64, len(asg[c]))
		}
		choice := make([]int, len(busy))
		combo := make([]*core.FeatureVector, len(busy))
		combos := 0
		var rec func(i int) error
		rec = func(i int) error {
			if i == len(busy) {
				preds, err := core.PredictGroupContext(ctx, combo, m.Assoc, solver)
				if err != nil {
					return err
				}
				for j, p := range preds {
					perProc[j][choice[j]] += p.SPI
				}
				combos++
				return nil
			}
			for k, f := range asg[busy[i]] {
				choice[i], combo[i] = k, f
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(0); err != nil {
			return 0, err
		}
		// Every proc on busy core i appears in combos/len(asg[busy[i]])
		// combinations (one slot in the core's rotation times every choice
		// on the other cores).
		for i, c := range busy {
			appearances := float64(combos) / float64(len(asg[c]))
			for _, sum := range perProc[i] {
				total += sum / appearances
			}
		}
	}
	return total, nil
}

// soloSPI returns a process's predicted SPI running alone on the machine:
// the whole cache to itself, the Eq. 3 line at min(GMax, A) ways. It is
// the interference-free baseline behind BinPack's relative-degradation
// ceiling.
func soloSPI(ctx context.Context, m *machine.Machine, f *core.FeatureVector, solver core.SolverMethod) (float64, error) {
	preds, err := core.PredictGroupContext(ctx, []*core.FeatureVector{f}, m.Assoc, solver)
	if err != nil {
		return 0, err
	}
	return preds[0].SPI, nil
}

// withAddition returns a copy of asg with f appended to core c; asg itself
// is never mutated, so a scoring pass can evaluate every candidate slot
// against one consistent snapshot.
func withAddition(asg core.Assignment, f *core.FeatureVector, c int) core.Assignment {
	next := make(core.Assignment, len(asg))
	for i, procs := range asg {
		next[i] = append([]*core.FeatureVector(nil), procs...)
	}
	next[c] = append(next[c], f)
	return next
}

// nodeScore is one node's best candidate slot for an arrival under the
// active policy. ok is false when the node has no admissible core.
type nodeScore struct {
	ok    bool
	core  int
	score float64 // policy metric; lower is better
	rel   float64 // relative SPI degradation (BinPack's ceiling metric)
}

// scoreNode finds the best admissible core of one node for spec under the
// fleet policy, scanning cores in index order with strict less-than
// comparisons so ties resolve to the lowest core. The node's assignment is
// read once, so the whole scan scores against a consistent snapshot; the
// fleet placement lock guarantees nothing commits mid-scan.
func (f *Fleet) scoreNode(ctx context.Context, n *node, spec *workload.Spec) (nodeScore, error) {
	if f.cfg.Intercept != nil {
		// Injection seam ahead of the equilibrium solves: an injected
		// error surfaces exactly like a solver failure for this node.
		if err := f.cfg.Intercept("fleet.score", n.cfg.Name); err != nil {
			return nodeScore{}, err
		}
	}
	feat, err := f.feats.get(ctx, n.cfg.Machine, spec)
	if err != nil {
		return nodeScore{}, err
	}
	asg := n.mgr.Assignment()
	admissible := func(c int) bool {
		return n.cfg.MaxPerCore == 0 || len(asg[c]) < n.cfg.MaxPerCore
	}

	switch f.cfg.Policy {
	case LeastWatts:
		baseW, err := n.cm.EstimateAssignmentContext(ctx, asg)
		if err != nil {
			return nodeScore{}, err
		}
		best := nodeScore{}
		for c := 0; c < n.cfg.Machine.NumCores; c++ {
			if !admissible(c) {
				continue
			}
			w, err := n.cm.EstimateAdditionContext(ctx, asg, feat, c)
			if err != nil {
				return nodeScore{}, err
			}
			added := w - baseW
			if !best.ok || added < best.score {
				best = nodeScore{ok: true, core: c, score: added}
			}
		}
		return best, nil

	case LeastDegradation, BinPack:
		baseSPI, err := assignmentSPI(ctx, n.cfg.Machine, asg, f.cfg.Solver)
		if err != nil {
			return nodeScore{}, err
		}
		solo, err := soloSPI(ctx, n.cfg.Machine, feat, f.cfg.Solver)
		if err != nil {
			return nodeScore{}, err
		}
		best := nodeScore{}
		for c := 0; c < n.cfg.Machine.NumCores; c++ {
			if !admissible(c) {
				continue
			}
			after, err := assignmentSPI(ctx, n.cfg.Machine, withAddition(asg, feat, c), f.cfg.Solver)
			if err != nil {
				return nodeScore{}, err
			}
			added := after - baseSPI
			if !best.ok || added < best.score {
				rel := 0.0
				if solo > 0 {
					rel = (added - solo) / solo
				}
				best = nodeScore{ok: true, core: c, score: added, rel: rel}
			}
		}
		return best, nil

	case Spread:
		// Spread never scores; chooseSpread handles it. Report
		// admissibility only.
		best := nodeScore{}
		for c := 0; c < n.cfg.Machine.NumCores; c++ {
			if admissible(c) {
				best = nodeScore{ok: true, core: c, score: math.NaN()}
				break
			}
		}
		return best, nil
	}
	return nodeScore{}, errUnknownPolicy(f.cfg.Policy)
}
