// Package fleet scales the paper's single-machine framework out to a
// cluster: a scheduler that owns N per-machine managers (heterogeneous
// machine presets allowed), admits arriving processes through a bounded
// queue, and scores every candidate (machine, core) slot with the paper's
// own models — predicted SPI degradation via the Section 3 equilibrium
// solver, predicted watts via the Eq. 9 MVLR — instead of load heuristics.
//
// The shape follows cluster schedulers like k8s-cluster-simulator (pending
// queue, per-node scoring, event loop); the substance is the paper's: an
// analytical model cheap enough to evaluate per placement decision is
// exactly what lets a fleet choose slots before running anything.
//
// Scope caveat: machines share nothing. Each node's predictions come from
// its own per-CMP equilibrium solve (the paper's single-machine framework,
// Sections 3–5); cross-machine interference — network, shared storage,
// rack power — is not modeled. Fleet-wide totals are plain sums of
// per-machine estimates.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"mpmc/internal/core"
	"mpmc/internal/freq"
	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/metrics"
	"mpmc/internal/parallel"
	"mpmc/internal/sched"
	"mpmc/internal/wal"
	"mpmc/internal/workload"
)

// Sentinel errors the serving layer maps onto typed responses.
var (
	// ErrFleetFull reports that no machine in the fleet has an admissible
	// core for the arrival.
	ErrFleetFull = errors.New("no admissible machine")
	// ErrQueueFull reports that the admission queue is at capacity (or
	// disabled) and cannot hold another pending arrival.
	ErrQueueFull = errors.New("admission queue full")
	// ErrUnknownNode reports an operation naming a node the fleet does not
	// own.
	ErrUnknownNode = errors.New("unknown node")
)

func errUnknownPolicy(p Policy) error {
	return fmt.Errorf("fleet: unknown policy %d", int(p))
}

// NodeConfig describes one machine in the fleet.
type NodeConfig struct {
	// Name is the node's unique identity ("m0", "rack1-a", ...). Empty
	// names default to "m<index>".
	Name string
	// Machine is the modeled CMP (required). Nodes may use heterogeneous
	// presets; feature vectors are profiled per machine kind.
	Machine *machine.Machine
	// Power is the node's trained Eq. 9 power model (required).
	Power *core.PowerModel
	// MaxPerCore bounds time-sharing depth on this node (0 = unbounded,
	// which also makes the node — and therefore the fleet — never full).
	MaxPerCore int
	// Labels are scheduler-visible key/value pairs for LabelMatch
	// predicates (Config.ExtraPredicates); nil is fine.
	Labels map[string]string
	// Taints lists taint keys. They are inert until a sched.Taint
	// predicate is added through Config.ExtraPredicates; then arrivals
	// must tolerate every key to land here.
	Taints []string
}

// Config assembles a Fleet.
type Config struct {
	// Nodes lists the machines (at least one).
	Nodes []NodeConfig
	// Policy selects the placement scoring policy.
	Policy Policy
	// BinPackCeiling is BinPack's relative SPI-degradation ceiling: a
	// machine is "full enough" once the arrival's best slot would degrade
	// total SPI by more than this fraction of the arrival's solo SPI
	// beyond the solo SPI itself (0 = the 0.25 default).
	BinPackCeiling float64
	// QueueCap bounds the admission queue (<= 0 disables queueing:
	// Submit always reports ErrQueueFull).
	QueueCap int
	// ExtraPredicates appends filters to the policy bundle's pipeline
	// (the bundle always starts with sched.NodeUp). Capacity predicates
	// (sched.FreeSlot, sched.PerCoreCap) prune full nodes before any
	// model solve — the scale configuration — and sched.Taint /
	// sched.LabelMatch enforce the node Labels/Taints. Adding predicates
	// (or a MaxFeasible cut) disables the all-hit peek fast path: the
	// memoized reduction spans every up node, which is only equivalent to
	// the pipeline when nothing else filters.
	ExtraPredicates []sched.Predicate
	// MaxFeasible stops scoring after this many candidates survive the
	// predicates (0 = score everything). See sched.Pipeline.MaxFeasible.
	MaxFeasible int
	// PreemptMaxAttempts / PreemptMaxBackoff tune the preemption retry
	// ledger (0 = the sched.Ledger defaults: 3 attempts, 8-round backoff
	// cap). Preemption itself needs no switch: only arrivals with a
	// positive priority class ever preempt.
	PreemptMaxAttempts int
	PreemptMaxBackoff  int
	// Seed, Quick and Workers configure profiling exactly like the
	// single-machine server: per-workload seeds derive from Seed by name,
	// so vectors are reproducible and shared with the other front ends.
	Seed    uint64
	Quick   bool
	Workers int
	// Solver selects the equilibrium algorithm for SPI scoring
	// (SolverAuto by default).
	Solver core.SolverMethod
	// CacheCap bounds the shared feature-vector LRU (0 = 256 entries).
	CacheCap int
	// PowerCap, when positive, is the fleet-wide watt budget: admissions
	// whose post-placement scaled estimate would push the fleet's total
	// draw above it are rejected (ErrFleetFull), and EnforceCap brings an
	// over-budget fleet back under by down-clocking or migrating. Zero
	// leaves the fleet uncapped (SetPowerCap can engage one later).
	PowerCap float64
	// ScoreCacheCap bounds the group-score memo and the shared equilibrium
	// solver state (0 = 4096 entries each; negative disables both, making
	// every scoring pass solve cold). Caching never changes any result —
	// values are pure functions of their content keys, so cold and cached
	// runs are byte-identical (the differential suite proves it) — it only
	// changes how often the equilibrium solver actually runs.
	ScoreCacheCap int
	// Profile overrides the profiling implementation (nil = core.Profile).
	Profile ProfileFunc
	// Registry receives the fleet metrics (nil = fresh registry).
	Registry *metrics.Registry
	// Journal, when non-nil, receives every completed mutation's events
	// as one batch, under the fleet lock, in commit order — the write-
	// ahead-log hook (internal/wal: one batch = one CRC-framed record, so
	// recovery replays whole operations or nothing). Rolled-back
	// operations emit nothing. Implementations must be fast and must not
	// call back into the fleet.
	Journal func(events []wal.Event)
	// Intercept, when non-nil, is consulted at named fault-injection
	// sites before the guarded operation runs; a non-nil return is
	// injected as that operation's error. It is the chaos-testing seam
	// (internal/chaos): sites are "fleet.profile" (key machine\x00bench,
	// inside the singleflight, so a burst of deduplicated callers all see
	// one injected failure), "fleet.score" (key node name, ahead of the
	// equilibrium solves), "fleet.rebalance" (ahead of the cross-machine
	// pass), and the per-node managers' sites with the node name prefixed
	// onto the key. Implementations must be safe for concurrent use and
	// cheap: the seam is consulted on hot paths.
	Intercept func(site, key string) error

	// sharedFeats/sharedScores/sharedSolver let a Sharded fleet hand its
	// shards one feature cache, score memo, and solver state: content-
	// addressed and concurrency-safe, so sharing them never changes any
	// value — it only avoids profiling one machine kind once per shard.
	sharedFeats  *featureCache
	sharedScores *scoreCache
	sharedSolver *core.SolverState
	// sharedCap hands every shard of a Sharded fleet ONE watt ledger, so
	// the cap is a fleet-wide budget: two shards racing the remaining
	// headroom serialize on the ledger's own lock.
	sharedCap *capLedger
}

// node pairs one machine's manager with its combined model and config.
type node struct {
	cfg NodeConfig
	mgr *manager.Manager
	cm  *core.CombinedModel
	// down marks a lost machine (guarded by the fleet lock): placement,
	// rebalancing, and the model totals all skip it until RestoreNode.
	down bool
	// version counts this node's state changes (guarded by the fleet
	// lock): placements, departures, evictions, migrations, down/up,
	// re-clocks. Detached commits revalidate the WINNING node's stamp
	// only — a concurrent commit on another node never invalidates a
	// decision, which is what lets sharded placements on disjoint
	// machines land without re-scoring each other.
	version uint64
	// freqIx is the node's current rung on its machine's DVFS ladder
	// (guarded by the fleet lock; the base rung for machines without
	// one). Only setFreqLocked, FailNode (reboot-to-base), recovery, and
	// the EnforceCap transaction move it.
	freqIx int

	// asgSnap caches the manager's deep-copied assignment (and asgSuffix
	// the decision-key bytes derived from it), re-read only when the
	// manager's mutation version moves — Assignment() rebuilds per-core
	// slices on every call, which dominated the warm placement path.
	// The snapshot is read-only by contract: every scoring path copies
	// on write (withAdditionShared, withoutResident). Writes happen under
	// the fleet lock, or in fan-out workers that each own one node index
	// with the fleet lock held by their caller.
	asgVersion uint64
	asgSnap    core.Assignment
	asgSuffix  string
	// keyFeat/keyStr are a one-entry cache of the last decision key built
	// for this node (an arrival stream repeats the same workload against
	// an unchanged node); invalidated whenever asgSuffix is rebuilt.
	keyFeat *core.FeatureVector
	keyStr  string
	// peekSpec/peekFeat are a one-entry (workload → feature) cache for the
	// all-hit fast path. It needs no invalidation: profiling is
	// deterministic per (seed, machine kind, workload), so the pointer
	// held here always names the vector the shared cache would hand back
	// (a re-profiled vector after eviction is bit-identical; its fresh
	// pointer only costs downstream memo misses, never wrong bytes).
	peekSpec *workload.Spec
	peekFeat *core.FeatureVector

	// meta tracks scheduler-side facts about residents the node manager
	// does not know: priority class and the submitter's tag (a preempted
	// victim is requeued under both). Keyed by instance name, allocated
	// lazily — legacy flows that never tag or prioritize leave it nil.
	meta map[string]residentMeta
}

// residentMeta is the fleet-side record of one placed instance. key is
// the preemption ledger identity (assigned at first preemption, carried
// through requeue and readmission so repeat preemptions of the same
// logical process escalate its backoff).
type residentMeta struct {
	spec     *workload.Spec
	tag      string
	priority int
	key      string
}

// assignmentOf returns n's current assignment through the per-node
// snapshot cache. Callers must hold the fleet lock (or be the only
// worker touching n under a caller holding it) and must not mutate the
// result.
func (f *Fleet) assignmentOf(n *node) core.Assignment {
	if v := n.mgr.Version(); v != n.asgVersion || n.asgSnap == nil {
		n.asgSnap = n.mgr.Assignment()
		n.asgSuffix = ""
		n.asgVersion = v
	}
	return n.asgSnap
}

// decisionKeyOf builds scoreNode's memo key from the cached assignment
// suffix: one small concatenation instead of a full walk per probe.
func (f *Fleet) decisionKeyOf(n *node, feat *core.FeatureVector) string {
	asg := f.assignmentOf(n)
	if n.asgSuffix == "" {
		n.asgSuffix = decisionSuffix(asg)
		n.keyFeat = nil
	}
	if feat != n.keyFeat {
		n.keyFeat, n.keyStr = feat, n.cfg.Name+"\x00"+feat.Name+n.asgSuffix
		if ix := n.freqIx; ix != n.cfg.Machine.Freq.BaseIx() {
			// Off-base decisions depend on the rung (the frequency-aware
			// policies price SPI/watts at it); base-state keys carry zero
			// extra bytes so legacy memo keys are unchanged.
			n.keyStr += "\x03" + strconv.Itoa(ix)
		}
	}
	return n.keyStr
}

// Fleet is the cluster scheduler. All methods are safe for concurrent
// use: a single fleet lock serializes placement, queue, and rebalancing
// decisions (scoring included, so every decision sees a consistent
// cluster state), while profiling sweeps run outside it through the
// shared singleflight cache.
type Fleet struct {
	cfg   Config
	nodes []*node
	feats *featureCache
	// scores memoizes per-group SPI terms and solver the underlying
	// equilibrium solutions; both nil when ScoreCacheCap < 0 (cold mode).
	scores *scoreCache
	solver *core.SolverState
	// capL is the power-cap ledger (nil until a cap is configured or set;
	// shared across shards in a Sharded fleet). It has its own lock.
	capL *capLedger
	reg  *metrics.Registry

	// pipe is the policy bundle every placement decides through; built
	// once in New (immutable afterwards).
	pipe *bundle
	// allowPeek gates the all-hit decision-memo fast path: it reduces
	// over every up node, which matches the pipeline only when nothing
	// but NodeUp filters (no extra predicates, no feasibility cut, no
	// fault seam, and a policy that consults the memo at all).
	allowPeek bool
	// solves counts executed cache-group equilibrium solves (groupTerms
	// computes; memo hits excluded). See SolverInvocations.
	solves atomic.Uint64

	mu sync.Mutex
	// peekBuf is peekDecisionsLocked's reusable result slice (guarded by
	// mu; never retained past the placement that filled it).
	peekBuf []nodeScore
	// cands/candPtrs are candidatesLocked's reusable buffers (guarded by
	// mu; refreshed per placement).
	cands    []sched.CandidateNode
	candPtrs []*sched.CandidateNode
	rrNode   int // Spread's machine rotation cursor
	queue    []queued
	seq      int // ticket source
	// ledger tracks preemption requeues: exponential backoff per victim
	// key, drop after the attempt budget. pumpRound is the round clock
	// backoff is measured on (one tick per queue pump).
	ledger    sched.Ledger
	pumpRound int
	// version stamps the fleet's placement state: bumped (under mu) by
	// every mutation that can change a scoring outcome — commits,
	// removals, node fail/restore, rebalance moves, recovery. Detached
	// scoring captures it with the view and re-validates at commit time:
	// an unchanged version proves the scored snapshot is still current.
	version uint64
	// jbuf accumulates the current operation's journal events (guarded by
	// mu); flushJournalLocked hands the batch to cfg.Journal, rollbacks
	// discard it.
	jbuf []wal.Event

	placed     *metrics.Counter
	rejected   *metrics.Counter
	rollbacks  *metrics.Counter
	qSubmitted *metrics.Counter
	qAdmitted  *metrics.Counter
	qRejected  *metrics.Counter
	qAbandoned *metrics.Counter
	qDropped   *metrics.Counter
	moves      *metrics.Counter
	noops      *metrics.Counter
}

// queued is one pending arrival: the workload, the caller's tag (the sim
// uses it to map admissions back to trace processes), the FIFO ticket
// CancelQueued takes, the priority class, and the ledger key backoff
// eligibility is tracked under (empty for never-preempted entries).
type queued struct {
	spec     *workload.Spec
	tag      string
	ticket   int
	priority int
	key      string
	// pumping marks an entry whose placement is being scored outside the
	// lock. CancelQueued may still remove it — cancellation wins, the
	// pump's commit-time revalidation finds the ticket gone and never
	// places it — which is what makes CancelQueued's true unambiguous.
	pumping bool
}

// New validates cfg, applies defaults, and assembles the fleet.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("fleet: no nodes configured")
	}
	if cfg.BinPackCeiling == 0 {
		cfg.BinPackCeiling = 0.25
	}
	if cfg.BinPackCeiling < 0 {
		return nil, fmt.Errorf("fleet: negative BinPackCeiling %v", cfg.BinPackCeiling)
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = 256
	}
	if cfg.Profile == nil {
		cfg.Profile = core.Profile
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.ScoreCacheCap == 0 {
		cfg.ScoreCacheCap = 4096
	}
	seen := map[string]bool{}
	f := &Fleet{cfg: cfg, reg: cfg.Registry}
	if cfg.sharedFeats != nil {
		f.feats = cfg.sharedFeats
	} else {
		f.feats = newFeatureCache(cfg, f.reg)
	}
	if cfg.sharedScores != nil {
		f.scores, f.solver = cfg.sharedScores, cfg.sharedSolver
	} else if cfg.ScoreCacheCap > 0 {
		f.scores = newScoreCache(cfg.ScoreCacheCap, cfg.Intercept)
		f.solver = core.NewSolverState(cfg.ScoreCacheCap)
	}
	for i := range cfg.Nodes {
		nc := cfg.Nodes[i]
		if nc.Name == "" {
			nc.Name = fmt.Sprintf("m%d", i)
		}
		if seen[nc.Name] {
			return nil, fmt.Errorf("fleet: duplicate node name %q", nc.Name)
		}
		seen[nc.Name] = true
		if nc.Machine == nil {
			return nil, fmt.Errorf("fleet: node %q has no machine", nc.Name)
		}
		if err := nc.Machine.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: node %q: %w", nc.Name, err)
		}
		if nc.MaxPerCore < 0 {
			return nil, fmt.Errorf("fleet: node %q: negative MaxPerCore", nc.Name)
		}
		if nc.Power == nil {
			return nil, fmt.Errorf("fleet: node %q has no power model", nc.Name)
		}
		var intercept func(site, key string) error
		if cfg.Intercept != nil {
			// Prefix the node identity so an injector can target one
			// machine's commits without a separate seam per node.
			ic, name := cfg.Intercept, nc.Name
			intercept = func(site, key string) error {
				if key == "" {
					return ic(site, name)
				}
				return ic(site, name+"/"+key)
			}
		}
		mgr := manager.New(nc.Machine, nc.Power, manager.Options{
			// The node manager's own policy is never exercised: the fleet
			// scores slots itself and commits with PlaceAt.
			Policy:      manager.PowerAware,
			MaxPerCore:  nc.MaxPerCore,
			Features:    nodeSource{fc: f.feats, m: nc.Machine},
			Intercept:   intercept,
			SolverState: f.solver,
		})
		cm := core.NewCombinedModel(nc.Machine, nc.Power)
		cm.State = f.solver
		f.nodes = append(f.nodes, &node{
			cfg:    nc,
			mgr:    mgr,
			cm:     cm,
			freqIx: nc.Machine.Freq.BaseIx(),
		})
	}
	if cfg.PowerCap < 0 {
		return nil, fmt.Errorf("fleet: negative PowerCap %v", cfg.PowerCap)
	}
	if cfg.sharedCap != nil {
		f.capL = cfg.sharedCap
	} else if cfg.PowerCap > 0 {
		f.capL = newCapLedger()
		f.capL.setCap(cfg.PowerCap)
	}
	if f.capL != nil {
		// An empty node's Eq. 10 estimate is exactly its static floor —
		// per-core idle intercepts — so seeding the ledger needs no solve.
		for _, n := range f.nodes {
			f.capL.setNode(n.cfg.Name, staticWatts(n))
		}
	}
	if cfg.MaxFeasible < 0 {
		return nil, fmt.Errorf("fleet: negative MaxFeasible %d", cfg.MaxFeasible)
	}
	pipe, err := newBundle(f)
	if err != nil {
		return nil, err
	}
	f.pipe = pipe
	f.allowPeek = f.scores != nil && cfg.Intercept == nil &&
		len(cfg.ExtraPredicates) == 0 && cfg.MaxFeasible == 0 &&
		cfg.Policy != Spread && cfg.Policy != CapAware
	f.ledger.MaxAttempts = cfg.PreemptMaxAttempts
	f.ledger.MaxBackoff = cfg.PreemptMaxBackoff
	f.placed = f.reg.Counter("fleet_place_total")
	f.rejected = f.reg.Counter("fleet_place_rejected_total")
	f.rollbacks = f.reg.Counter("fleet_place_rollback_total")
	f.qSubmitted = f.reg.Counter("fleet_queue_submitted_total")
	f.qAdmitted = f.reg.Counter("fleet_queue_admitted_total")
	f.qRejected = f.reg.Counter("fleet_queue_rejected_total")
	f.qAbandoned = f.reg.Counter("fleet_queue_abandoned_total")
	f.qDropped = f.reg.Counter("fleet_queue_dropped_total")
	f.moves = f.reg.Counter("fleet_rebalance_moves_total")
	f.noops = f.reg.Counter("fleet_rebalance_noop_total")
	f.reg.OnCollect(f.collectGauges)
	return f, nil
}

// Registry returns the metrics registry the fleet reports into.
func (f *Fleet) Registry() *metrics.Registry { return f.reg }

// Policy returns the active placement policy.
func (f *Fleet) Policy() Policy { return f.cfg.Policy }

// NodeNames lists the node identities in index order.
func (f *Fleet) NodeNames() []string {
	out := make([]string, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = n.cfg.Name
	}
	return out
}

// Placed records one admitted instance: the node it landed on, the
// instance name the node's manager assigned, the chosen core, the
// machine's estimated watts after the placement, and the policy score of
// the winning slot (0 under Spread, which never scores; NaN would not
// survive JSON encoding).
type Placed struct {
	Node  string  `json:"node"`
	Name  string  `json:"name"`
	Core  int     `json:"core"`
	Watts float64 `json:"watts"`
	Score float64 `json:"score"`

	// Tag echoes the Submit tag when the instance was admitted from the
	// queue (empty for direct placements).
	Tag string `json:"-"`

	// Preempted reports the resident this placement evicted, when the
	// arrival's priority class forced a preemption (nil otherwise — in
	// particular for every priority-0 placement, so legacy transcripts
	// are unchanged). A victim is never dropped silently: it is either
	// requeued through the admission queue or reported here with
	// Requeued false.
	Preempted *PreemptedInfo `json:"preempted,omitempty"`
}

// PreemptedInfo identifies a preemption victim and its disposition.
type PreemptedInfo struct {
	// Node and Name locate the evicted instance; Workload names its spec.
	Node     string `json:"node"`
	Name     string `json:"name"`
	Workload string `json:"workload"`
	// Tag is the victim's original submission tag (requeues keep it).
	Tag string `json:"tag,omitempty"`
	// Priority is the victim's priority class.
	Priority int `json:"priority,omitempty"`
	// Requeued is true when the victim re-entered the admission queue;
	// false when the retry ledger's attempt budget was exhausted or the
	// queue could not hold it (the drop is counted either way).
	Requeued bool `json:"requeued"`
	// Ticket is the victim's new queue ticket when Requeued (it cancels
	// the requeued entry exactly like a Submit ticket would).
	Ticket int `json:"ticket,omitempty"`
}

// resolveFeatures profiles every (machine kind, spec) pair the placement
// will need, outside the fleet lock, so the lock is never held across a
// profiling sweep. The cache singleflight collapses concurrent resolves.
func (f *Fleet) resolveFeatures(ctx context.Context, specs []*workload.Spec) error {
	// The fan-out below checked cancellation implicitly; the warm path
	// must too, so a cancelled Place fails identically warm or cold.
	if err := ctx.Err(); err != nil {
		return err
	}
	type pair struct {
		m    *machine.Machine
		spec *workload.Spec
	}
	// Already-profiled pairs are filtered inline: on the placement hot
	// path everything is resident, and the fan-out (worker goroutines,
	// dedup map) would cost more than the whole probe.
	var pairs []pair
	var seen map[string]bool
	for _, s := range specs {
		for _, n := range f.nodes {
			k := f.feats.keyOf(n.cfg.Machine, s)
			if _, ok := f.feats.lru.Get(k); ok {
				continue
			}
			if seen == nil {
				seen = map[string]bool{}
			}
			if !seen[k] {
				seen[k] = true
				pairs = append(pairs, pair{n.cfg.Machine, s})
			}
		}
	}
	if len(pairs) == 0 {
		return nil
	}
	return parallel.ForEach(ctx, f.cfg.Workers, len(pairs), func(i int) error {
		_, err := f.feats.get(ctx, pairs[i].m, pairs[i].spec)
		return err
	})
}

// PlaceOptions carries the scheduler-side facts of one arrival that are
// not part of the workload itself.
type PlaceOptions struct {
	// Tag is an opaque caller identity echoed on the Placed and preserved
	// across preemption requeues (the simulator maps placements back to
	// trace processes with it).
	Tag string
	// Priority is the arrival's priority class. Positive classes may
	// preempt residents of strictly lower classes when no candidate
	// survives the pipeline; class 0 (every legacy caller) never preempts
	// and is what everything else may preempt.
	Priority int
	// Tolerations lists taint keys the arrival accepts (consulted only
	// when a sched.Taint predicate is configured).
	Tolerations map[string]bool

	// ticket threads a pumped queue entry's ticket into the journal's
	// admitted event, so replay consumes the matching queue entry. Zero
	// for direct placements.
	ticket int
}

// Place admits one arrival at the policy's best slot. A single placement
// is atomic by construction (scoring mutates nothing; the commit either
// happens wholly or not at all), so no snapshot is needed.
func (f *Fleet) Place(ctx context.Context, spec *workload.Spec) (Placed, error) {
	return f.PlaceWith(ctx, spec, PlaceOptions{})
}

// PlaceWith is Place with explicit scheduling options (tag, priority
// class, taint tolerations).
func (f *Fleet) PlaceWith(ctx context.Context, spec *workload.Spec, opts PlaceOptions) (Placed, error) {
	if err := f.resolveFeatures(ctx, []*workload.Spec{spec}); err != nil {
		return Placed{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	p, err := f.placeOneLocked(ctx, spec, opts)
	if err != nil {
		f.discardJournalLocked()
		if errors.Is(err, ErrFleetFull) {
			f.rejected.Inc()
		}
		return Placed{}, err
	}
	f.placed.Inc()
	f.flushJournalLocked()
	return p, nil
}

// PlaceAll admits a batch of arrivals transactionally: either every
// instance is admitted, or every machine's resident set, instance-name
// counter, and the fleet's round-robin cursor are restored to their
// pre-call state and the error reports why (the cause stays reachable
// with errors.Is).
func (f *Fleet) PlaceAll(ctx context.Context, specs []*workload.Spec) ([]Placed, error) {
	if err := f.resolveFeatures(ctx, specs); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	snaps := make([]*manager.Snapshot, len(f.nodes))
	rungs := make([]int, len(f.nodes))
	for i, n := range f.nodes {
		snaps[i], rungs[i] = n.mgr.Snapshot(), n.freqIx
	}
	snapRR := f.rrNode
	admitted := 0
	rollback := func(cause error) error {
		for i, n := range f.nodes {
			n.mgr.Restore(snaps[i])
			if n.freqIx != rungs[i] {
				n.freqIx = rungs[i]
				n.keyFeat, n.keyStr = nil, ""
			}
		}
		f.rrNode = snapRR
		if f.capActive() {
			// Committed reservations from the rolled-back prefix are undone
			// by re-syncing every row against the restored managers.
			for _, n := range f.nodes {
				_ = f.resyncNodeCapLocked(ctx, n)
			}
		}
		// Rolled-back placements must leave no trace in the journal (the
		// version stamp stays bumped — a spurious conflict is harmless,
		// a missed one is not).
		f.discardJournalLocked()
		if errors.Is(cause, ErrFleetFull) {
			f.rejected.Inc()
		}
		if admitted > 0 {
			f.rollbacks.Inc()
			return fmt.Errorf("fleet: batch rolled back after %d placement(s): %w", admitted, cause)
		}
		return cause
	}
	out := make([]Placed, len(specs))
	for i, s := range specs {
		if err := ctx.Err(); err != nil {
			return nil, rollback(err)
		}
		p, err := f.placeOneLocked(ctx, s, PlaceOptions{})
		if err != nil {
			return nil, rollback(err)
		}
		admitted++
		out[i] = p
	}
	f.placed.Add(uint64(len(out)))
	f.flushJournalLocked()
	return out, nil
}

// placeOneLocked runs the policy pipeline for one arrival and commits the
// winning slot; when nothing survives and the arrival outranks a
// resident, it escalates to preemption.
func (f *Fleet) placeOneLocked(ctx context.Context, spec *workload.Spec, opts PlaceOptions) (Placed, error) {
	p, err := f.decideAndCommitLocked(ctx, spec, opts)
	if err != nil && errors.Is(err, ErrFleetFull) && opts.Priority > 0 {
		if pp, ok, perr := f.preemptLocked(ctx, spec, opts); perr != nil {
			return Placed{}, perr
		} else if ok {
			return pp, nil
		}
	}
	return p, err
}

// decideAndCommitLocked decides one arrival through the policy bundle —
// the all-hit memo fast path when eligible, the full pipeline otherwise —
// and commits the winner. Candidate machines are scored concurrently
// through the parallel engine; results land in index-addressed slots and
// the selector reduces serially in node order, so ties always resolve to
// the lowest node index at any worker count.
func (f *Fleet) decideAndCommitLocked(ctx context.Context, spec *workload.Spec, opts PlaceOptions) (Placed, error) {
	if f.allowPeek {
		if scores, ok, err := f.peekDecisionsLocked(ctx, spec); err != nil {
			return Placed{}, err
		} else if ok {
			// The memoized decisions cover every up node (down nodes'
			// zero scores are not OK), so reducing them with the bundle's
			// selector replays exactly the pipeline's reduction.
			pick := f.pipe.pipe.Selector().Pick(scores)
			if pick < 0 {
				return Placed{}, fmt.Errorf("fleet: %w for %s", ErrFleetFull, spec.Name)
			}
			return f.commitLocked(ctx, spec, opts, pick, scores[pick])
		}
	}
	arr := sched.Arrival{Key: spec.Name, Priority: opts.Priority, Tolerations: opts.Tolerations, Payload: spec}
	dec, err := f.pipe.pipe.Decide(ctx, arr, f.candidatesLocked(), f.runner())
	if err != nil {
		return Placed{}, err
	}
	if dec.Node < 0 {
		return Placed{}, fmt.Errorf("fleet: %w for %s", ErrFleetFull, spec.Name)
	}
	return f.commitLocked(ctx, spec, opts, dec.Node, dec.Score)
}

// runner adapts the parallel engine into the pipeline's fan-out contract:
// index-addressed work, first error in serial index order.
func (f *Fleet) runner() sched.Runner {
	return func(ctx context.Context, n int, fn func(i int) error) error {
		return parallel.ForEach(ctx, f.cfg.Workers, n, fn)
	}
}

// commitLocked commits one decided slot through its node manager and
// records the arrival's scheduler-side metadata. When the score carries
// a frequency target (the frequency-aware policies), the node is
// re-clocked as part of the commit; when a power cap is active, the
// node's post-placement scaled draw is reserved in the watt ledger
// BEFORE the manager mutates — a failed reservation surfaces as
// ErrFleetFull with the cluster untouched.
func (f *Fleet) commitLocked(ctx context.Context, spec *workload.Spec, opts PlaceOptions, best int, s nodeScore) (Placed, error) {
	n := f.nodes[best]
	tgt := n.freqIx
	if s.Freq > 0 {
		tgt = s.Freq - 1
	}
	capOld, capHeld := 0.0, false
	if f.capActive() {
		feat, err := f.feats.get(ctx, n.cfg.Machine, spec)
		if err != nil {
			return Placed{}, err
		}
		w, err := n.cm.EstimateAdditionContext(ctx, f.assignmentOf(n), feat, s.Core)
		if err != nil {
			return Placed{}, err
		}
		d := freq.DynScaleAt(n.cfg.Machine.Core, n.cfg.Machine.Freq.State(tgt))
		scaled := freq.ScaleWatts(w, staticWatts(n), d)
		capOld = f.capL.nodeWatts(n.cfg.Name)
		if !f.capL.tryReserve(n.cfg.Name, scaled) {
			return Placed{}, fmt.Errorf("fleet: %w for %s: placing on %s would draw %.6g W against the %.6g W cap",
				ErrFleetFull, spec.Name, n.cfg.Name,
				f.capL.usedExcept(n.cfg.Name)+scaled, f.capL.capWatts())
		}
		capHeld = true
	}
	name, watts, err := n.mgr.PlaceAt(ctx, spec, s.Core)
	if err != nil {
		if capHeld {
			f.capL.setNode(n.cfg.Name, capOld)
		}
		return Placed{}, err
	}
	if tgt != n.freqIx {
		f.setFreqLocked(n, tgt)
	}
	if capHeld {
		// The reservation priced the addition prospectively (the atomic
		// admission gate); re-anchor the row on the canonical
		// whole-assignment estimate so the ledger is bit-identical to what
		// a fresh resync — recovery, enforcement — derives. A failure keeps
		// the reservation's value, equal up to the last ulp.
		_ = f.resyncNodeCapLocked(ctx, n)
	}
	if opts.Tag != "" || opts.Priority != 0 {
		if n.meta == nil {
			n.meta = map[string]residentMeta{}
		}
		n.meta[name] = residentMeta{spec: spec, tag: opts.Tag, priority: opts.Priority}
	}
	score := s.Value
	if f.pipe.zeroScore {
		score = 0
	}
	if f.pipe.advance {
		f.rrNode = (best + 1) % len(f.nodes)
	}
	f.version++
	n.version++
	f.journalLocked(wal.Event{
		Type: wal.EvAdmitted, Node: n.cfg.Name, Name: name, Core: s.Core,
		Bench: spec.Name, Tag: opts.Tag, Priority: opts.Priority, Ticket: opts.ticket,
	})
	// Identity-gated: a base-state out-of-order node reports the exact
	// legacy float64.
	watts = freq.ScaleWatts(watts, staticWatts(n), dynScaleOf(n))
	return Placed{Node: n.cfg.Name, Name: name, Core: s.Core, Watts: watts, Score: score}, nil
}

// peekDecisionsLocked is the steady-state fast path: when every live
// node's decision for this exact (assignment, arrival) pair is already
// memoized, the whole fan-out — worker goroutines included — collapses to
// len(nodes) map probes. Any miss abandons the probe (the parallel path
// recomputes and memoizes); the fault-injection seam disables it entirely
// so injected errors keep firing per scored node.
func (f *Fleet) peekDecisionsLocked(ctx context.Context, spec *workload.Spec) ([]nodeScore, bool, error) {
	if cap(f.peekBuf) < len(f.nodes) {
		f.peekBuf = make([]nodeScore, len(f.nodes))
	}
	scores := f.peekBuf[:len(f.nodes)]
	clear(scores)
	probed := 0
	for i, n := range f.nodes {
		if n.down {
			continue
		}
		feat := n.peekFeat
		if spec != n.peekSpec {
			var ok bool
			if feat, ok = f.feats.peek(n.cfg.Machine, spec); !ok {
				// Not profiled yet (or evicted): the scoring path resolves
				// it with full error/profiling semantics.
				return nil, false, nil
			}
			n.peekSpec, n.peekFeat = spec, feat
		}
		s, ok := f.scores.peekDecision(f.decisionKeyOf(n, feat))
		if !ok {
			return nil, false, nil
		}
		scores[i] = s
		probed++
	}
	// The probes decided a placement: credit them as hits in one shot.
	f.scores.dhits.Add(uint64(probed))
	return scores, true, nil
}

// Submit enqueues an arrival the fleet cannot place right now. tag is an
// opaque caller identity echoed on the eventual Placed (the simulator maps
// admissions back to trace processes with it). The returned ticket cancels
// the submission. FIFO order is strict: queued arrivals are admitted
// oldest first, and a head that still does not fit blocks the rest
// (head-of-line blocking keeps admission order deterministic and fair).
func (f *Fleet) Submit(spec *workload.Spec, tag string) (int, error) {
	return f.SubmitWith(spec, tag, 0)
}

// SubmitWith is Submit with a priority class: the entry is pumped ahead
// of every lower class (FIFO within its own), and pumping it may preempt
// lower-priority residents when the fleet is full.
func (f *Fleet) SubmitWith(spec *workload.Spec, tag string, priority int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.QueueCap <= 0 || len(f.queue) >= f.cfg.QueueCap {
		f.qRejected.Inc()
		return 0, fmt.Errorf("fleet: %w (cap %d) for %s", ErrQueueFull, f.cfg.QueueCap, spec.Name)
	}
	f.seq++
	f.queue = append(f.queue, queued{spec: spec, tag: tag, ticket: f.seq, priority: priority})
	f.qSubmitted.Inc()
	f.journalLocked(wal.Event{Type: wal.EvSubmitted, Bench: spec.Name, Tag: tag, Priority: priority, Ticket: f.seq})
	f.flushJournalLocked()
	return f.seq, nil
}

// CancelQueued withdraws a pending submission (the simulator's "process
// departed before it was ever placed"). It reports whether the ticket was
// still queued — and true is unambiguous: an entry the pump is scoring
// outside the lock is still cancellable, because the pump revalidates the
// ticket under this same lock before committing and a cancelled entry is
// never placed.
func (f *Fleet) CancelQueued(ticket int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, q := range f.queue {
		if q.ticket == ticket {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			if q.key != "" {
				f.ledger.Forget(q.key)
			}
			f.qAbandoned.Inc()
			f.journalLocked(wal.Event{Type: wal.EvCancelled, Ticket: ticket})
			f.flushJournalLocked()
			return true
		}
	}
	return false
}

// QueueDepth returns the number of pending arrivals.
func (f *Fleet) QueueDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queue)
}

// QueuedEntry is one pending arrival's scheduler-visible facts.
type QueuedEntry struct {
	Workload string
	Tag      string
	Ticket   int
	Priority int
	// Eligible reports whether the entry may be tried at the next pump
	// (false while a preemption backoff is still running).
	Eligible bool
}

// QueuedInfo snapshots the admission queue in queue order. The chaos
// invariants read it to prove victims are requeued, never dropped
// silently, and that no eligible entry outranks a resident after a pump.
func (f *Fleet) QueuedInfo() []QueuedEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]QueuedEntry, len(f.queue))
	for i, q := range f.queue {
		out[i] = QueuedEntry{
			Workload: q.spec.Name,
			Tag:      q.tag,
			Ticket:   q.ticket,
			Priority: q.priority,
			Eligible: q.key == "" || f.ledger.Eligible(q.key, f.pumpRound+1),
		}
	}
	return out
}

// Pump tries to admit queued arrivals in admission order (highest
// priority class first, FIFO within a class), stopping at the first head
// that still does not fit anywhere. A head failing for any reason other
// than a full fleet is dropped (and counted) rather than wedging the
// queue. Returns the admissions, tags attached.
//
// For model-scoring policies the equilibrium solves run *outside* the
// fleet lock against a version-stamped view: Submit, CancelQueued,
// QueueDepth, and State are never blocked behind a scoring pass, and a
// commit only lands when the fleet state is provably unchanged since the
// view was captured (otherwise the head is re-scored — same decision a
// fresh in-lock pass would make). A cancelled context returns with every
// unplaced entry still queued: nothing is ever dropped between dequeue
// and commit, so shutdown loses no submissions.
func (f *Fleet) Pump(ctx context.Context) ([]Placed, error) {
	// Resolve features for the current queue outside the lock first.
	f.mu.Lock()
	pending := make([]*workload.Spec, len(f.queue))
	for i, q := range f.queue {
		pending[i] = q.spec
	}
	f.mu.Unlock()
	if err := f.resolveFeatures(ctx, pending); err != nil {
		return nil, err
	}
	if f.cfg.Policy == Spread {
		// Spread scores nothing (its rotation cursor is read during the
		// decision, so there is no coherent detached view) — the in-lock
		// pump holds the lock only for map probes.
		f.mu.Lock()
		defer f.mu.Unlock()
		out, err := f.pumpLocked(ctx)
		f.flushJournalLocked()
		return out, err
	}
	return f.pumpDetached(ctx)
}

// pumpLocked is the in-lock pump loop (queue cascades under Remove and
// RestoreNode, and the Spread policy). Callers flush the journal.
func (f *Fleet) pumpLocked(ctx context.Context) ([]Placed, error) {
	f.pumpRound++
	var out []Placed
	for len(f.queue) > 0 {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		head := f.headLocked()
		if head < 0 {
			break
		}
		q := f.queue[head]
		p, err := f.placeOneLocked(ctx, q.spec, PlaceOptions{Tag: q.tag, Priority: q.priority, ticket: q.ticket})
		if errors.Is(err, ErrFleetFull) {
			break
		}
		if err != nil {
			f.dropQueuedLocked(head, q)
			continue
		}
		f.queue = append(f.queue[:head], f.queue[head+1:]...)
		f.admitQueuedLocked(&p, q)
		out = append(out, p)
	}
	return out, nil
}

// headLocked picks the next pumpable entry: highest priority class first,
// FIFO (ticket order) within a class — for the all-class-0 legacy queue
// that is exactly oldest-first. Entries still serving a preemption
// backoff are skipped, not blocking; everything else keeps the strict
// head-of-line contract. Returns -1 when nothing is eligible.
func (f *Fleet) headLocked() int {
	head := -1
	for i, q := range f.queue {
		if q.key != "" && !f.ledger.Eligible(q.key, f.pumpRound) {
			continue
		}
		if head < 0 || q.priority > f.queue[head].priority {
			head = i
		}
	}
	return head
}

// ticketIndexLocked finds a queue entry by ticket (-1 when gone).
func (f *Fleet) ticketIndexLocked(ticket int) int {
	for i, q := range f.queue {
		if q.ticket == ticket {
			return i
		}
	}
	return -1
}

// dropQueuedLocked discards queue entry i after a non-capacity placement
// failure and journals the drop.
func (f *Fleet) dropQueuedLocked(i int, q queued) {
	f.queue = append(f.queue[:i], f.queue[i+1:]...)
	f.qDropped.Inc()
	f.journalLocked(wal.Event{Type: wal.EvDropped, Ticket: q.ticket})
}

// admitQueuedLocked records a queue entry's successful admission: the
// preemption-ledger key re-attaches to the new instance (attempts
// escalate across repeat preemptions of the same logical process; only a
// clean exit discharges them), the tag is echoed, and the counters move.
func (f *Fleet) admitQueuedLocked(p *Placed, q queued) {
	if q.key != "" {
		f.attachKeyLocked(*p, q)
	}
	p.Tag = q.tag
	f.placed.Inc()
	f.qAdmitted.Inc()
}

// pumpDetached is the scoring-policy pump loop: capture a consistent view
// of the fleet under the lock, score it detached, then revalidate the
// version stamp (and the entry's continued existence — cancellation wins)
// before committing under the lock again.
func (f *Fleet) pumpDetached(ctx context.Context) ([]Placed, error) {
	var out []Placed
	first := true
	for {
		f.mu.Lock()
		if err := ctx.Err(); err != nil {
			// Shutdown contract: an entry is only removed after its commit
			// succeeded, so everything not yet admitted is still queued.
			f.flushJournalLocked()
			f.mu.Unlock()
			return out, err
		}
		if first {
			f.pumpRound++
			first = false
		}
		head := f.headLocked()
		if head < 0 {
			f.flushJournalLocked()
			f.mu.Unlock()
			return out, nil
		}
		q := f.queue[head]
		view, err := f.captureViewLocked(ctx, q.spec)
		if err != nil {
			f.dropQueuedLocked(head, q)
			f.flushJournalLocked()
			f.mu.Unlock()
			continue
		}
		f.queue[head].pumping = true
		f.mu.Unlock()

		scores, serr := f.scoreViewDetached(ctx, view, q.spec, PlaceOptions{Priority: q.priority})
		pick := -1
		if serr == nil {
			pick = f.pipe.pipe.Selector().Pick(scores)
		}

		f.mu.Lock()
		idx := f.ticketIndexLocked(q.ticket)
		if idx < 0 {
			// Cancelled (or failed over) while scoring: nothing committed,
			// nothing to do — CancelQueued's true stays truthful.
			f.mu.Unlock()
			continue
		}
		f.queue[idx].pumping = false
		if serr != nil {
			f.dropQueuedLocked(idx, q)
			f.flushJournalLocked()
			f.mu.Unlock()
			continue
		}
		if pick >= 0 && f.nodes[pick].version != view.nodes[pick].ver {
			// The winning node changed while scoring; its score is stale.
			// Re-score — the fresh pass sees exactly what an in-lock pump
			// would have. Changes on OTHER nodes don't invalidate: the
			// winner's score is still exact, and the selection races the
			// same way concurrent arrivals always have.
			f.mu.Unlock()
			continue
		}
		if pick < 0 && f.version != view.ver {
			// "Nowhere fits" is a fleet-wide claim: any mutation anywhere
			// (a departure may have freed capacity) invalidates it.
			f.mu.Unlock()
			continue
		}
		opts := PlaceOptions{Tag: q.tag, Priority: q.priority, ticket: q.ticket}
		if pick < 0 {
			if q.priority > 0 {
				pp, ok, perr := f.preemptLocked(ctx, q.spec, opts)
				if perr != nil {
					f.discardJournalLocked()
					f.dropQueuedLocked(idx, q)
					f.flushJournalLocked()
					f.mu.Unlock()
					continue
				}
				if ok {
					f.queue = append(f.queue[:idx], f.queue[idx+1:]...)
					f.admitQueuedLocked(&pp, q)
					f.flushJournalLocked()
					f.mu.Unlock()
					out = append(out, pp)
					continue
				}
			}
			// Nowhere fits: the head blocks the queue (strict head-of-line).
			f.flushJournalLocked()
			f.mu.Unlock()
			return out, nil
		}
		p, err := f.commitLocked(ctx, q.spec, opts, pick, scores[pick])
		if err != nil {
			f.discardJournalLocked()
			f.dropQueuedLocked(idx, q)
			f.flushJournalLocked()
			f.mu.Unlock()
			continue
		}
		f.queue = append(f.queue[:idx], f.queue[idx+1:]...)
		f.admitQueuedLocked(&p, q)
		f.flushJournalLocked()
		f.mu.Unlock()
		out = append(out, p)
	}
}

// journalLocked stages one event onto the current operation's batch
// (free when no journal is configured).
func (f *Fleet) journalLocked(e wal.Event) {
	if f.cfg.Journal == nil {
		return
	}
	f.jbuf = append(f.jbuf, e)
}

// flushJournalLocked hands the staged batch to the journal as one atomic
// record and resets the buffer.
func (f *Fleet) flushJournalLocked() {
	if len(f.jbuf) == 0 {
		return
	}
	f.cfg.Journal(f.jbuf)
	f.jbuf = f.jbuf[:0]
}

// discardJournalLocked drops staged events after a rollback: a rolled-
// back operation must leave no trace in the log.
func (f *Fleet) discardJournalLocked() {
	f.jbuf = f.jbuf[:0]
}

// attachKeyLocked re-binds a requeued victim's ledger key (and original
// tag/priority, for entries commitLocked had no reason to record) to the
// freshly admitted instance.
func (f *Fleet) attachKeyLocked(p Placed, q queued) {
	n := f.nodeByNameLocked(p.Node)
	if n == nil {
		return
	}
	if n.meta == nil {
		n.meta = map[string]residentMeta{}
	}
	m := n.meta[p.Name]
	m.spec, m.tag, m.priority, m.key = q.spec, q.tag, q.priority, q.key
	n.meta[p.Name] = m
}

// Remove evicts the named instance from the named node (process exit) and
// then pumps the admission queue into the freed capacity, returning any
// admissions that resulted.
func (f *Fleet) Remove(ctx context.Context, nodeName, instance string) ([]Placed, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.nodeByNameLocked(nodeName)
	if n == nil {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownNode, nodeName)
	}
	if err := n.mgr.Remove(instance); err != nil {
		return nil, err
	}
	f.version++
	n.version++
	f.journalLocked(wal.Event{Type: wal.EvDeparted, Node: nodeName, Name: instance})
	if m, ok := n.meta[instance]; ok {
		// A clean exit discharges the preemption ledger: the next life of
		// this workload starts with a fresh backoff budget.
		if m.key != "" {
			f.ledger.Forget(m.key)
		}
		delete(n.meta, instance)
	}
	if f.capActive() {
		// A stale (over-stated) row is the safe failure direction; the next
		// sync heals it, so an estimate error here never blocks a departure.
		_ = f.resyncNodeCapLocked(ctx, n)
	}
	// The departure and its queue cascade are one operation batch: replay
	// lands on the post-cascade state, never between.
	out, err := f.pumpLocked(ctx)
	f.flushJournalLocked()
	return out, err
}

// FailNode simulates losing a machine: the node is marked down — placement,
// rebalancing, and the model totals all skip it — and every resident is
// evicted (processes die with their machine; the fleet does not pretend a
// lost process can be live-migrated). The evicted residents are returned in
// deterministic core/arrival order so the caller can resubmit or account
// for them. Queued arrivals are untouched: they were never bound to a node.
func (f *Fleet) FailNode(name string) ([]manager.Resident, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.nodeByNameLocked(name)
	if n == nil {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownNode, name)
	}
	if n.down {
		return nil, fmt.Errorf("fleet: node %q is already down", name)
	}
	n.down = true
	// Drop the dead machine's memoized group scores before evicting: the
	// eviction empties its groups, and the pre-fail keys would otherwise
	// linger until the LRU ages them out.
	f.invalidateNodeLocked(n)
	evicted := n.mgr.Residents()
	for _, r := range evicted {
		if err := n.mgr.Remove(r.Name); err != nil {
			// Residents() just listed it under the same lock; Remove can
			// only fail on a name that is not resident.
			return nil, fmt.Errorf("fleet: evicting %s from %s: %w", r.Name, name, err)
		}
	}
	for _, m := range n.meta {
		if m.key != "" {
			f.ledger.Forget(m.key)
		}
	}
	n.meta = nil
	// A dead machine draws nothing, and it reboots at its base rung —
	// replay of EvNodeDown resets both, so no extra event is needed.
	if ix := n.cfg.Machine.Freq.BaseIx(); n.freqIx != ix {
		n.freqIx = ix
		n.keyFeat, n.keyStr = nil, ""
	}
	if f.capL != nil {
		f.capL.setNode(name, 0)
	}
	f.version++
	n.version++
	// One event covers the eviction cascade: replay evicts the node's
	// residents implicitly, so a per-resident departed would double-remove.
	f.journalLocked(wal.Event{Type: wal.EvNodeDown, Node: name})
	f.flushJournalLocked()
	// Registered lazily so fleets that never lose a machine keep their
	// /metrics exposition (and the server e2e golden) unchanged.
	f.reg.Counter("fleet_node_down_total").Inc()
	if len(evicted) > 0 {
		f.reg.Counter("fleet_node_evicted_total").Add(uint64(len(evicted)))
	}
	return evicted, nil
}

// RestoreNode brings a down machine back (empty, as after a reboot) and
// pumps the admission queue into the recovered capacity, returning any
// admissions that resulted.
func (f *Fleet) RestoreNode(ctx context.Context, name string) ([]Placed, error) {
	f.mu.Lock()
	n := f.nodeByNameLocked(name)
	if n == nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownNode, name)
	}
	if !n.down {
		f.mu.Unlock()
		return nil, fmt.Errorf("fleet: node %q is not down", name)
	}
	n.down = false
	if f.capL != nil {
		// Back up, empty: the node draws its static floor again.
		f.capL.setNode(name, staticWatts(n))
	}
	// Symmetric with FailNode: a restored machine comes back empty, so any
	// memoized scores still keyed to its groups (possible when the caller
	// re-placed workloads elsewhere between fail and restore) are hygiene
	// to drop, never a correctness requirement — keys are content-addressed.
	f.invalidateNodeLocked(n)
	f.version++
	n.version++
	f.journalLocked(wal.Event{Type: wal.EvNodeUp, Node: name})
	f.flushJournalLocked()
	f.reg.Counter("fleet_node_up_total").Inc()
	f.mu.Unlock()
	// Pump (not pumpLocked): queued features may need profiling against
	// this node's machine kind, which must happen outside the fleet lock.
	return f.Pump(ctx)
}

// NodeInspection is one node's full scheduler-visible state, exposed for
// invariant checking (internal/chaos): the paper's Eq. 1/Eq. 10 properties
// are statements about exactly this data. Residents carry the feature
// vectors the models actually used, in deterministic core/arrival order.
type NodeInspection struct {
	Name       string
	Machine    *machine.Machine
	MaxPerCore int
	Down       bool
	Residents  []manager.Resident
	// Priorities holds each resident's priority class, indexed like
	// Residents (class 0 for residents placed without options). The
	// chaos priority-inversion invariant reads it.
	Priorities []int
	// Freq is the node's current rung index on its machine's DVFS ladder
	// (the base rung for machines without one). The chaos cap invariants
	// re-price every node's draw from it.
	Freq int
}

// Assignment reconstructs the node's model-side assignment from the
// inspected residents.
func (ni NodeInspection) Assignment() core.Assignment {
	asg := make(core.Assignment, ni.Machine.NumCores)
	for _, r := range ni.Residents {
		asg[r.Core] = append(asg[r.Core], r.Feature)
	}
	return asg
}

// Inspect captures every node's state under one lock acquisition, so the
// snapshot is consistent: no placement can commit between two nodes' rows.
func (f *Fleet) Inspect() []NodeInspection {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]NodeInspection, len(f.nodes))
	for i, n := range f.nodes {
		residents := n.mgr.Residents()
		prios := make([]int, len(residents))
		for j, r := range residents {
			prios[j] = n.meta[r.Name].priority
		}
		out[i] = NodeInspection{
			Name:       n.cfg.Name,
			Machine:    n.cfg.Machine,
			MaxPerCore: n.cfg.MaxPerCore,
			Down:       n.down,
			Residents:  residents,
			Priorities: prios,
			Freq:       n.freqIx,
		}
	}
	return out
}

func (f *Fleet) nodeByNameLocked(name string) *node {
	for _, n := range f.nodes {
		if n.cfg.Name == name {
			return n
		}
	}
	return nil
}

// CoreState is one core's resident instances.
type CoreState struct {
	Core  int      `json:"core"`
	Procs []string `json:"procs"`
}

// NodeState is one machine's view in the fleet state.
type NodeState struct {
	Node           string      `json:"node"`
	Machine        string      `json:"machine"`
	MaxPerCore     int         `json:"max_per_core,omitempty"`
	Cores          []CoreState `json:"cores"`
	Residents      int         `json:"residents"`
	FreeSlots      int         `json:"free_slots"` // -1 = unbounded
	EstimatedWatts float64     `json:"estimated_watts"`
	PredictedSPI   float64     `json:"predicted_spi"`
	// Down marks a lost machine (FailNode): no residents, no capacity,
	// zero model estimates. Omitted while the node is up so existing
	// state consumers (and goldens) see unchanged output.
	Down bool `json:"down,omitempty"`
	// FreqState is the node's DVFS rung index + 1 when the node is off
	// its base state (estimates above are scaled to it); omitted at base
	// so legacy state consumers and goldens see unchanged output.
	FreqState int `json:"freq_state,omitempty"`
}

// State is the fleet-wide view: per-machine residents and model estimates
// plus the totals and the queue.
type State struct {
	Policy            string      `json:"policy"`
	Nodes             []NodeState `json:"nodes"`
	Residents         int         `json:"residents"`
	QueueDepth        int         `json:"queue_depth"`
	Queued            []string    `json:"queued,omitempty"`
	TotalWatts        float64     `json:"total_watts"`
	TotalPredictedSPI float64     `json:"total_predicted_spi"`
	// PowerCap and CapUsage report the watt budget and the ledger's
	// current draw estimate; both omitted while the fleet is uncapped.
	PowerCap float64 `json:"power_cap,omitempty"`
	CapUsage float64 `json:"cap_usage,omitempty"`
}

// State reports the current fleet state, computing each machine's power
// and SPI estimates from the combined model.
func (f *Fleet) State(ctx context.Context) (*State, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := &State{Policy: f.cfg.Policy.String()}
	for _, n := range f.nodes {
		ns, err := f.nodeStateLocked(ctx, n)
		if err != nil {
			return nil, err
		}
		st.Nodes = append(st.Nodes, ns)
		st.Residents += ns.Residents
		st.TotalWatts += ns.EstimatedWatts
		st.TotalPredictedSPI += ns.PredictedSPI
	}
	st.QueueDepth = len(f.queue)
	for _, q := range f.queue {
		st.Queued = append(st.Queued, q.spec.Name)
	}
	if f.capActive() {
		st.PowerCap = f.capL.capWatts()
		st.CapUsage = f.capL.usage()
	}
	return st, nil
}

func (f *Fleet) nodeStateLocked(ctx context.Context, n *node) (NodeState, error) {
	if n.down {
		// A lost machine consumes nothing and runs nothing; report it
		// explicitly rather than pricing an empty-but-powered CMP.
		return NodeState{
			Node:       n.cfg.Name,
			Machine:    n.cfg.Machine.Name,
			MaxPerCore: n.cfg.MaxPerCore,
			Down:       true,
		}, nil
	}
	asg := f.assignmentOf(n)
	running := n.mgr.Running()
	ns := NodeState{
		Node:       n.cfg.Name,
		Machine:    n.cfg.Machine.Name,
		MaxPerCore: n.cfg.MaxPerCore,
		FreeSlots:  -1,
	}
	for c, names := range running {
		procs := append([]string{}, names...)
		ns.Cores = append(ns.Cores, CoreState{Core: c, Procs: procs})
		ns.Residents += len(names)
	}
	if n.cfg.MaxPerCore > 0 {
		ns.FreeSlots = n.cfg.MaxPerCore*n.cfg.Machine.NumCores - ns.Residents
	}
	watts, err := n.cm.EstimateAssignmentContext(ctx, asg)
	if err != nil {
		return NodeState{}, fmt.Errorf("fleet: estimating %s power: %w", n.cfg.Name, err)
	}
	// Scale both estimates to the node's current operating point. The
	// helpers are identity-gated, so an out-of-order node at base reports
	// the exact legacy floats.
	ns.EstimatedWatts = freq.ScaleWatts(watts, staticWatts(n), dynScaleOf(n))
	spi, err := f.nodeSPI(ctx, n.cfg.Machine, asg)
	if err != nil {
		return NodeState{}, fmt.Errorf("fleet: estimating %s SPI: %w", n.cfg.Name, err)
	}
	ns.PredictedSPI = freq.ScaleSPI(spi, betaTotal(asg), spiScaleOf(n))
	if n.freqIx != n.cfg.Machine.Freq.BaseIx() {
		ns.FreqState = n.freqIx + 1
	}
	return ns, nil
}

// Totals returns the fleet-wide predicted SPI and watts sums (the sim's
// per-event integrand) without building the full state.
func (f *Fleet) Totals(ctx context.Context) (spi, watts float64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.nodes {
		if n.down {
			continue
		}
		asg := f.assignmentOf(n)
		w, err := n.cm.EstimateAssignmentContext(ctx, asg)
		if err != nil {
			return 0, 0, err
		}
		s, err := f.nodeSPI(ctx, n.cfg.Machine, asg)
		if err != nil {
			return 0, 0, err
		}
		watts += freq.ScaleWatts(w, staticWatts(n), dynScaleOf(n))
		spi += freq.ScaleSPI(s, betaTotal(asg), spiScaleOf(n))
	}
	return spi, watts, nil
}

// collectGauges refreshes the per-machine and fleet-wide gauges right
// before a metrics scrape. Watts gauges are integer milliwatts (the
// registry's gauges are integral); a machine whose estimate fails scrapes
// as -1 rather than failing the exposition.
func (f *Fleet) collectGauges(r *metrics.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, n := range f.nodes {
		if n.down {
			// A lost machine scrapes as empty with no free slots and zero
			// draw, so dashboards see the capacity loss immediately.
			r.Gauge(fmt.Sprintf("fleet_machine_residents{node=%q}", n.cfg.Name)).Set(0)
			r.Gauge(fmt.Sprintf("fleet_machine_free_slots{node=%q}", n.cfg.Name)).Set(0)
			r.Gauge(fmt.Sprintf("fleet_machine_milliwatts{node=%q}", n.cfg.Name)).Set(0)
			continue
		}
		running := n.mgr.Running()
		count := 0
		for _, names := range running {
			count += len(names)
		}
		total += count
		r.Gauge(fmt.Sprintf("fleet_machine_residents{node=%q}", n.cfg.Name)).Set(int64(count))
		free := int64(-1)
		if n.cfg.MaxPerCore > 0 {
			free = int64(n.cfg.MaxPerCore*n.cfg.Machine.NumCores - count)
		}
		r.Gauge(fmt.Sprintf("fleet_machine_free_slots{node=%q}", n.cfg.Name)).Set(free)
		mw := int64(-1)
		if w, err := n.cm.EstimateAssignment(n.mgr.Assignment()); err == nil {
			mw = int64(freq.ScaleWatts(w, staticWatts(n), dynScaleOf(n)) * 1000)
		}
		r.Gauge(fmt.Sprintf("fleet_machine_milliwatts{node=%q}", n.cfg.Name)).Set(mw)
		if n.freqIx != n.cfg.Machine.Freq.BaseIx() {
			// Lazily registered: fleets that never re-clock keep their
			// exposition (and the server e2e golden) byte-identical.
			r.Gauge(fmt.Sprintf("fleet_machine_freq_state{node=%q}", n.cfg.Name)).Set(int64(n.freqIx + 1))
		}
	}
	r.Gauge("fleet_residents").Set(int64(total))
	r.Gauge("fleet_queue_depth").Set(int64(len(f.queue)))
	r.Gauge("fleet_machines").Set(int64(len(f.nodes)))
	if f.capActive() {
		r.Gauge("fleet_power_cap_milliwatts").Set(int64(f.capL.capWatts() * 1000))
		r.Gauge("fleet_cap_usage_milliwatts").Set(int64(f.capL.usage() * 1000))
	}
}

// SyntheticPowerModel is core.SyntheticPowerModel, re-exported where the
// fleet's callers historically found it. The implementation lives in core
// so packages that must not import fleet (manager's fast test variants,
// the chaos harness's fixtures) can share the same model.
func SyntheticPowerModel() (*core.PowerModel, error) {
	return core.SyntheticPowerModel()
}
