// Package fleet scales the paper's single-machine framework out to a
// cluster: a scheduler that owns N per-machine managers (heterogeneous
// machine presets allowed), admits arriving processes through a bounded
// queue, and scores every candidate (machine, core) slot with the paper's
// own models — predicted SPI degradation via the Section 3 equilibrium
// solver, predicted watts via the Eq. 9 MVLR — instead of load heuristics.
//
// The shape follows cluster schedulers like k8s-cluster-simulator (pending
// queue, per-node scoring, event loop); the substance is the paper's: an
// analytical model cheap enough to evaluate per placement decision is
// exactly what lets a fleet choose slots before running anything.
//
// Scope caveat: machines share nothing. Each node's predictions come from
// its own per-CMP equilibrium solve (the paper's single-machine framework,
// Sections 3–5); cross-machine interference — network, shared storage,
// rack power — is not modeled. Fleet-wide totals are plain sums of
// per-machine estimates.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/metrics"
	"mpmc/internal/parallel"
	"mpmc/internal/workload"
)

// Sentinel errors the serving layer maps onto typed responses.
var (
	// ErrFleetFull reports that no machine in the fleet has an admissible
	// core for the arrival.
	ErrFleetFull = errors.New("no admissible machine")
	// ErrQueueFull reports that the admission queue is at capacity (or
	// disabled) and cannot hold another pending arrival.
	ErrQueueFull = errors.New("admission queue full")
	// ErrUnknownNode reports an operation naming a node the fleet does not
	// own.
	ErrUnknownNode = errors.New("unknown node")
)

func errUnknownPolicy(p Policy) error {
	return fmt.Errorf("fleet: unknown policy %d", int(p))
}

// NodeConfig describes one machine in the fleet.
type NodeConfig struct {
	// Name is the node's unique identity ("m0", "rack1-a", ...). Empty
	// names default to "m<index>".
	Name string
	// Machine is the modeled CMP (required). Nodes may use heterogeneous
	// presets; feature vectors are profiled per machine kind.
	Machine *machine.Machine
	// Power is the node's trained Eq. 9 power model (required).
	Power *core.PowerModel
	// MaxPerCore bounds time-sharing depth on this node (0 = unbounded,
	// which also makes the node — and therefore the fleet — never full).
	MaxPerCore int
}

// Config assembles a Fleet.
type Config struct {
	// Nodes lists the machines (at least one).
	Nodes []NodeConfig
	// Policy selects the placement scoring policy.
	Policy Policy
	// BinPackCeiling is BinPack's relative SPI-degradation ceiling: a
	// machine is "full enough" once the arrival's best slot would degrade
	// total SPI by more than this fraction of the arrival's solo SPI
	// beyond the solo SPI itself (0 = the 0.25 default).
	BinPackCeiling float64
	// QueueCap bounds the admission queue (<= 0 disables queueing:
	// Submit always reports ErrQueueFull).
	QueueCap int
	// Seed, Quick and Workers configure profiling exactly like the
	// single-machine server: per-workload seeds derive from Seed by name,
	// so vectors are reproducible and shared with the other front ends.
	Seed    uint64
	Quick   bool
	Workers int
	// Solver selects the equilibrium algorithm for SPI scoring
	// (SolverAuto by default).
	Solver core.SolverMethod
	// CacheCap bounds the shared feature-vector LRU (0 = 256 entries).
	CacheCap int
	// ScoreCacheCap bounds the group-score memo and the shared equilibrium
	// solver state (0 = 4096 entries each; negative disables both, making
	// every scoring pass solve cold). Caching never changes any result —
	// values are pure functions of their content keys, so cold and cached
	// runs are byte-identical (the differential suite proves it) — it only
	// changes how often the equilibrium solver actually runs.
	ScoreCacheCap int
	// Profile overrides the profiling implementation (nil = core.Profile).
	Profile ProfileFunc
	// Registry receives the fleet metrics (nil = fresh registry).
	Registry *metrics.Registry
	// Intercept, when non-nil, is consulted at named fault-injection
	// sites before the guarded operation runs; a non-nil return is
	// injected as that operation's error. It is the chaos-testing seam
	// (internal/chaos): sites are "fleet.profile" (key machine\x00bench,
	// inside the singleflight, so a burst of deduplicated callers all see
	// one injected failure), "fleet.score" (key node name, ahead of the
	// equilibrium solves), "fleet.rebalance" (ahead of the cross-machine
	// pass), and the per-node managers' sites with the node name prefixed
	// onto the key. Implementations must be safe for concurrent use and
	// cheap: the seam is consulted on hot paths.
	Intercept func(site, key string) error
}

// node pairs one machine's manager with its combined model and config.
type node struct {
	cfg NodeConfig
	mgr *manager.Manager
	cm  *core.CombinedModel
	// down marks a lost machine (guarded by the fleet lock): placement,
	// rebalancing, and the model totals all skip it until RestoreNode.
	down bool

	// asgSnap caches the manager's deep-copied assignment (and asgSuffix
	// the decision-key bytes derived from it), re-read only when the
	// manager's mutation version moves — Assignment() rebuilds per-core
	// slices on every call, which dominated the warm placement path.
	// The snapshot is read-only by contract: every scoring path copies
	// on write (withAdditionShared, withoutResident). Writes happen under
	// the fleet lock, or in fan-out workers that each own one node index
	// with the fleet lock held by their caller.
	asgVersion uint64
	asgSnap    core.Assignment
	asgSuffix  string
	// keyFeat/keyStr are a one-entry cache of the last decision key built
	// for this node (an arrival stream repeats the same workload against
	// an unchanged node); invalidated whenever asgSuffix is rebuilt.
	keyFeat *core.FeatureVector
	keyStr  string
	// peekSpec/peekFeat are a one-entry (workload → feature) cache for the
	// all-hit fast path. It needs no invalidation: profiling is
	// deterministic per (seed, machine kind, workload), so the pointer
	// held here always names the vector the shared cache would hand back
	// (a re-profiled vector after eviction is bit-identical; its fresh
	// pointer only costs downstream memo misses, never wrong bytes).
	peekSpec *workload.Spec
	peekFeat *core.FeatureVector
}

// assignmentOf returns n's current assignment through the per-node
// snapshot cache. Callers must hold the fleet lock (or be the only
// worker touching n under a caller holding it) and must not mutate the
// result.
func (f *Fleet) assignmentOf(n *node) core.Assignment {
	if v := n.mgr.Version(); v != n.asgVersion || n.asgSnap == nil {
		n.asgSnap = n.mgr.Assignment()
		n.asgSuffix = ""
		n.asgVersion = v
	}
	return n.asgSnap
}

// decisionKeyOf builds scoreNode's memo key from the cached assignment
// suffix: one small concatenation instead of a full walk per probe.
func (f *Fleet) decisionKeyOf(n *node, feat *core.FeatureVector) string {
	asg := f.assignmentOf(n)
	if n.asgSuffix == "" {
		n.asgSuffix = decisionSuffix(asg)
		n.keyFeat = nil
	}
	if feat != n.keyFeat {
		n.keyFeat, n.keyStr = feat, n.cfg.Name+"\x00"+feat.Name+n.asgSuffix
	}
	return n.keyStr
}

// Fleet is the cluster scheduler. All methods are safe for concurrent
// use: a single fleet lock serializes placement, queue, and rebalancing
// decisions (scoring included, so every decision sees a consistent
// cluster state), while profiling sweeps run outside it through the
// shared singleflight cache.
type Fleet struct {
	cfg   Config
	nodes []*node
	feats *featureCache
	// scores memoizes per-group SPI terms and solver the underlying
	// equilibrium solutions; both nil when ScoreCacheCap < 0 (cold mode).
	scores *scoreCache
	solver *core.SolverState
	reg    *metrics.Registry

	mu sync.Mutex
	// peekBuf is peekDecisionsLocked's reusable result slice (guarded by
	// mu; never retained past the placement that filled it).
	peekBuf []nodeScore
	rrNode  int // Spread's machine rotation cursor
	queue   []queued
	seq     int // ticket source

	placed     *metrics.Counter
	rejected   *metrics.Counter
	rollbacks  *metrics.Counter
	qSubmitted *metrics.Counter
	qAdmitted  *metrics.Counter
	qRejected  *metrics.Counter
	qAbandoned *metrics.Counter
	qDropped   *metrics.Counter
	moves      *metrics.Counter
	noops      *metrics.Counter
}

// queued is one pending arrival: the workload, the caller's tag (the sim
// uses it to map admissions back to trace processes), and the FIFO ticket
// CancelQueued takes.
type queued struct {
	spec   *workload.Spec
	tag    string
	ticket int
}

// New validates cfg, applies defaults, and assembles the fleet.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("fleet: no nodes configured")
	}
	if cfg.BinPackCeiling == 0 {
		cfg.BinPackCeiling = 0.25
	}
	if cfg.BinPackCeiling < 0 {
		return nil, fmt.Errorf("fleet: negative BinPackCeiling %v", cfg.BinPackCeiling)
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = 256
	}
	if cfg.Profile == nil {
		cfg.Profile = core.Profile
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.ScoreCacheCap == 0 {
		cfg.ScoreCacheCap = 4096
	}
	seen := map[string]bool{}
	f := &Fleet{cfg: cfg, reg: cfg.Registry}
	f.feats = newFeatureCache(cfg, f.reg)
	if cfg.ScoreCacheCap > 0 {
		f.scores = newScoreCache(cfg.ScoreCacheCap, cfg.Intercept)
		f.solver = core.NewSolverState(cfg.ScoreCacheCap)
	}
	for i := range cfg.Nodes {
		nc := cfg.Nodes[i]
		if nc.Name == "" {
			nc.Name = fmt.Sprintf("m%d", i)
		}
		if seen[nc.Name] {
			return nil, fmt.Errorf("fleet: duplicate node name %q", nc.Name)
		}
		seen[nc.Name] = true
		if nc.Machine == nil {
			return nil, fmt.Errorf("fleet: node %q has no machine", nc.Name)
		}
		if err := nc.Machine.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: node %q: %w", nc.Name, err)
		}
		if nc.MaxPerCore < 0 {
			return nil, fmt.Errorf("fleet: node %q: negative MaxPerCore", nc.Name)
		}
		if nc.Power == nil {
			return nil, fmt.Errorf("fleet: node %q has no power model", nc.Name)
		}
		var intercept func(site, key string) error
		if cfg.Intercept != nil {
			// Prefix the node identity so an injector can target one
			// machine's commits without a separate seam per node.
			ic, name := cfg.Intercept, nc.Name
			intercept = func(site, key string) error {
				if key == "" {
					return ic(site, name)
				}
				return ic(site, name+"/"+key)
			}
		}
		mgr := manager.New(nc.Machine, nc.Power, manager.Options{
			// The node manager's own policy is never exercised: the fleet
			// scores slots itself and commits with PlaceAt.
			Policy:      manager.PowerAware,
			MaxPerCore:  nc.MaxPerCore,
			Features:    nodeSource{fc: f.feats, m: nc.Machine},
			Intercept:   intercept,
			SolverState: f.solver,
		})
		cm := core.NewCombinedModel(nc.Machine, nc.Power)
		cm.State = f.solver
		f.nodes = append(f.nodes, &node{
			cfg: nc,
			mgr: mgr,
			cm:  cm,
		})
	}
	f.placed = f.reg.Counter("fleet_place_total")
	f.rejected = f.reg.Counter("fleet_place_rejected_total")
	f.rollbacks = f.reg.Counter("fleet_place_rollback_total")
	f.qSubmitted = f.reg.Counter("fleet_queue_submitted_total")
	f.qAdmitted = f.reg.Counter("fleet_queue_admitted_total")
	f.qRejected = f.reg.Counter("fleet_queue_rejected_total")
	f.qAbandoned = f.reg.Counter("fleet_queue_abandoned_total")
	f.qDropped = f.reg.Counter("fleet_queue_dropped_total")
	f.moves = f.reg.Counter("fleet_rebalance_moves_total")
	f.noops = f.reg.Counter("fleet_rebalance_noop_total")
	f.reg.OnCollect(f.collectGauges)
	return f, nil
}

// Registry returns the metrics registry the fleet reports into.
func (f *Fleet) Registry() *metrics.Registry { return f.reg }

// Policy returns the active placement policy.
func (f *Fleet) Policy() Policy { return f.cfg.Policy }

// NodeNames lists the node identities in index order.
func (f *Fleet) NodeNames() []string {
	out := make([]string, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = n.cfg.Name
	}
	return out
}

// Placed records one admitted instance: the node it landed on, the
// instance name the node's manager assigned, the chosen core, the
// machine's estimated watts after the placement, and the policy score of
// the winning slot (0 under Spread, which never scores; NaN would not
// survive JSON encoding).
type Placed struct {
	Node  string  `json:"node"`
	Name  string  `json:"name"`
	Core  int     `json:"core"`
	Watts float64 `json:"watts"`
	Score float64 `json:"score"`

	// Tag echoes the Submit tag when the instance was admitted from the
	// queue (empty for direct placements).
	Tag string `json:"-"`
}

// resolveFeatures profiles every (machine kind, spec) pair the placement
// will need, outside the fleet lock, so the lock is never held across a
// profiling sweep. The cache singleflight collapses concurrent resolves.
func (f *Fleet) resolveFeatures(ctx context.Context, specs []*workload.Spec) error {
	// The fan-out below checked cancellation implicitly; the warm path
	// must too, so a cancelled Place fails identically warm or cold.
	if err := ctx.Err(); err != nil {
		return err
	}
	type pair struct {
		m    *machine.Machine
		spec *workload.Spec
	}
	// Already-profiled pairs are filtered inline: on the placement hot
	// path everything is resident, and the fan-out (worker goroutines,
	// dedup map) would cost more than the whole probe.
	var pairs []pair
	var seen map[string]bool
	for _, s := range specs {
		for _, n := range f.nodes {
			k := f.feats.keyOf(n.cfg.Machine, s)
			if _, ok := f.feats.lru.Get(k); ok {
				continue
			}
			if seen == nil {
				seen = map[string]bool{}
			}
			if !seen[k] {
				seen[k] = true
				pairs = append(pairs, pair{n.cfg.Machine, s})
			}
		}
	}
	if len(pairs) == 0 {
		return nil
	}
	return parallel.ForEach(ctx, f.cfg.Workers, len(pairs), func(i int) error {
		_, err := f.feats.get(ctx, pairs[i].m, pairs[i].spec)
		return err
	})
}

// Place admits one arrival at the policy's best slot. A single placement
// is atomic by construction (scoring mutates nothing; the commit either
// happens wholly or not at all), so no snapshot is needed.
func (f *Fleet) Place(ctx context.Context, spec *workload.Spec) (Placed, error) {
	if err := f.resolveFeatures(ctx, []*workload.Spec{spec}); err != nil {
		return Placed{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	p, err := f.placeOneLocked(ctx, spec)
	if err != nil {
		if errors.Is(err, ErrFleetFull) {
			f.rejected.Inc()
		}
		return Placed{}, err
	}
	f.placed.Inc()
	return p, nil
}

// PlaceAll admits a batch of arrivals transactionally: either every
// instance is admitted, or every machine's resident set, instance-name
// counter, and the fleet's round-robin cursor are restored to their
// pre-call state and the error reports why (the cause stays reachable
// with errors.Is).
func (f *Fleet) PlaceAll(ctx context.Context, specs []*workload.Spec) ([]Placed, error) {
	if err := f.resolveFeatures(ctx, specs); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	snaps := make([]*manager.Snapshot, len(f.nodes))
	for i, n := range f.nodes {
		snaps[i] = n.mgr.Snapshot()
	}
	snapRR := f.rrNode
	admitted := 0
	rollback := func(cause error) error {
		for i, n := range f.nodes {
			n.mgr.Restore(snaps[i])
		}
		f.rrNode = snapRR
		if errors.Is(cause, ErrFleetFull) {
			f.rejected.Inc()
		}
		if admitted > 0 {
			f.rollbacks.Inc()
			return fmt.Errorf("fleet: batch rolled back after %d placement(s): %w", admitted, cause)
		}
		return cause
	}
	out := make([]Placed, len(specs))
	for i, s := range specs {
		if err := ctx.Err(); err != nil {
			return nil, rollback(err)
		}
		p, err := f.placeOneLocked(ctx, s)
		if err != nil {
			return nil, rollback(err)
		}
		admitted++
		out[i] = p
	}
	f.placed.Add(uint64(len(out)))
	return out, nil
}

// placeOneLocked scores the nodes under the active policy, picks the best
// (machine, core) slot, and commits through the node manager. Candidate
// machines are scored concurrently through the parallel engine; results
// land in per-node slots and the reduction is serial in node order, so
// ties always resolve to the lowest node index at any worker count.
func (f *Fleet) placeOneLocked(ctx context.Context, spec *workload.Spec) (Placed, error) {
	if f.cfg.Policy == Spread {
		return f.placeSpreadLocked(ctx, spec)
	}
	if scores, ok, err := f.peekDecisionsLocked(ctx, spec); err != nil {
		return Placed{}, err
	} else if ok {
		return f.commitBestLocked(ctx, spec, scores)
	}
	scores, err := parallel.Map(ctx, f.cfg.Workers, len(f.nodes), func(i int) (nodeScore, error) {
		if f.nodes[i].down {
			return nodeScore{}, nil
		}
		return f.scoreNode(ctx, f.nodes[i], spec)
	})
	if err != nil {
		return Placed{}, err
	}
	return f.commitBestLocked(ctx, spec, scores)
}

// peekDecisionsLocked is the steady-state fast path: when every live
// node's decision for this exact (assignment, arrival) pair is already
// memoized, the whole fan-out — worker goroutines included — collapses to
// len(nodes) map probes. Any miss abandons the probe (the parallel path
// recomputes and memoizes); the fault-injection seam disables it entirely
// so injected errors keep firing per scored node.
func (f *Fleet) peekDecisionsLocked(ctx context.Context, spec *workload.Spec) ([]nodeScore, bool, error) {
	if f.scores == nil || f.cfg.Intercept != nil {
		return nil, false, nil
	}
	if cap(f.peekBuf) < len(f.nodes) {
		f.peekBuf = make([]nodeScore, len(f.nodes))
	}
	scores := f.peekBuf[:len(f.nodes)]
	clear(scores)
	probed := 0
	for i, n := range f.nodes {
		if n.down {
			continue
		}
		feat := n.peekFeat
		if spec != n.peekSpec {
			var ok bool
			if feat, ok = f.feats.peek(n.cfg.Machine, spec); !ok {
				// Not profiled yet (or evicted): the scoring path resolves
				// it with full error/profiling semantics.
				return nil, false, nil
			}
			n.peekSpec, n.peekFeat = spec, feat
		}
		s, ok := f.scores.peekDecision(f.decisionKeyOf(n, feat))
		if !ok {
			return nil, false, nil
		}
		scores[i] = s
		probed++
	}
	// The probes decided a placement: credit them as hits in one shot.
	f.scores.dhits.Add(uint64(probed))
	return scores, true, nil
}

// commitBestLocked reduces per-node scores serially in node index order
// (ties to the lowest index at any worker count) and commits the winning
// slot through its node manager.
func (f *Fleet) commitBestLocked(ctx context.Context, spec *workload.Spec, scores []nodeScore) (Placed, error) {
	best := -1
	switch f.cfg.Policy {
	case LeastDegradation, LeastWatts:
		for i, s := range scores {
			if s.ok && (best < 0 || s.score < scores[best].score) {
				best = i
			}
		}
	case BinPack:
		// First machine (index order) still under the ceiling; otherwise
		// the least relative degradation anywhere.
		for i, s := range scores {
			if s.ok && s.rel <= f.cfg.BinPackCeiling {
				best = i
				break
			}
		}
		if best < 0 {
			for i, s := range scores {
				if s.ok && (best < 0 || s.rel < scores[best].rel) {
					best = i
				}
			}
		}
	default:
		return Placed{}, errUnknownPolicy(f.cfg.Policy)
	}
	if best < 0 {
		return Placed{}, fmt.Errorf("fleet: %w for %s", ErrFleetFull, spec.Name)
	}
	n := f.nodes[best]
	name, watts, err := n.mgr.PlaceAt(ctx, spec, scores[best].core)
	if err != nil {
		return Placed{}, err
	}
	return Placed{Node: n.cfg.Name, Name: name, Core: scores[best].core, Watts: watts, Score: scores[best].score}, nil
}

// placeSpreadLocked is the round-robin baseline: machines in rotation
// starting at the cursor, the least loaded admissible core within the
// chosen machine (ties to the lowest core index). The cursor advances only
// on success, mirroring the manager's own round-robin contract.
func (f *Fleet) placeSpreadLocked(ctx context.Context, spec *workload.Spec) (Placed, error) {
	nn := len(f.nodes)
	for tries := 0; tries < nn; tries++ {
		i := (f.rrNode + tries) % nn
		n := f.nodes[i]
		if n.down {
			continue
		}
		running := n.mgr.Running()
		bestCore, bestLoad := -1, 0
		for c := 0; c < n.cfg.Machine.NumCores; c++ {
			if n.cfg.MaxPerCore != 0 && len(running[c]) >= n.cfg.MaxPerCore {
				continue
			}
			if bestCore < 0 || len(running[c]) < bestLoad {
				bestCore, bestLoad = c, len(running[c])
			}
		}
		if bestCore < 0 {
			continue
		}
		name, watts, err := n.mgr.PlaceAt(ctx, spec, bestCore)
		if err != nil {
			return Placed{}, err
		}
		f.rrNode = (i + 1) % nn
		return Placed{Node: n.cfg.Name, Name: name, Core: bestCore, Watts: watts}, nil
	}
	return Placed{}, fmt.Errorf("fleet: %w for %s", ErrFleetFull, spec.Name)
}

// Submit enqueues an arrival the fleet cannot place right now. tag is an
// opaque caller identity echoed on the eventual Placed (the simulator maps
// admissions back to trace processes with it). The returned ticket cancels
// the submission. FIFO order is strict: queued arrivals are admitted
// oldest first, and a head that still does not fit blocks the rest
// (head-of-line blocking keeps admission order deterministic and fair).
func (f *Fleet) Submit(spec *workload.Spec, tag string) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.QueueCap <= 0 || len(f.queue) >= f.cfg.QueueCap {
		f.qRejected.Inc()
		return 0, fmt.Errorf("fleet: %w (cap %d) for %s", ErrQueueFull, f.cfg.QueueCap, spec.Name)
	}
	f.seq++
	f.queue = append(f.queue, queued{spec: spec, tag: tag, ticket: f.seq})
	f.qSubmitted.Inc()
	return f.seq, nil
}

// CancelQueued withdraws a pending submission (the simulator's "process
// departed before it was ever placed"). It reports whether the ticket was
// still queued.
func (f *Fleet) CancelQueued(ticket int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, q := range f.queue {
		if q.ticket == ticket {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			f.qAbandoned.Inc()
			return true
		}
	}
	return false
}

// QueueDepth returns the number of pending arrivals.
func (f *Fleet) QueueDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queue)
}

// Pump tries to admit queued arrivals in FIFO order, stopping at the first
// head that still does not fit anywhere. A head failing for any reason
// other than a full fleet is dropped (and counted) rather than wedging the
// queue. Returns the admissions, tags attached.
func (f *Fleet) Pump(ctx context.Context) ([]Placed, error) {
	// Resolve features for the current queue outside the lock first.
	f.mu.Lock()
	pending := make([]*workload.Spec, len(f.queue))
	for i, q := range f.queue {
		pending[i] = q.spec
	}
	f.mu.Unlock()
	if err := f.resolveFeatures(ctx, pending); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pumpLocked(ctx)
}

func (f *Fleet) pumpLocked(ctx context.Context) ([]Placed, error) {
	var out []Placed
	for len(f.queue) > 0 {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		head := f.queue[0]
		p, err := f.placeOneLocked(ctx, head.spec)
		if errors.Is(err, ErrFleetFull) {
			break
		}
		f.queue = f.queue[1:]
		if err != nil {
			f.qDropped.Inc()
			continue
		}
		p.Tag = head.tag
		f.placed.Inc()
		f.qAdmitted.Inc()
		out = append(out, p)
	}
	return out, nil
}

// Remove evicts the named instance from the named node (process exit) and
// then pumps the admission queue into the freed capacity, returning any
// admissions that resulted.
func (f *Fleet) Remove(ctx context.Context, nodeName, instance string) ([]Placed, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.nodeByNameLocked(nodeName)
	if n == nil {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownNode, nodeName)
	}
	if err := n.mgr.Remove(instance); err != nil {
		return nil, err
	}
	return f.pumpLocked(ctx)
}

// FailNode simulates losing a machine: the node is marked down — placement,
// rebalancing, and the model totals all skip it — and every resident is
// evicted (processes die with their machine; the fleet does not pretend a
// lost process can be live-migrated). The evicted residents are returned in
// deterministic core/arrival order so the caller can resubmit or account
// for them. Queued arrivals are untouched: they were never bound to a node.
func (f *Fleet) FailNode(name string) ([]manager.Resident, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.nodeByNameLocked(name)
	if n == nil {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownNode, name)
	}
	if n.down {
		return nil, fmt.Errorf("fleet: node %q is already down", name)
	}
	n.down = true
	// Drop the dead machine's memoized group scores before evicting: the
	// eviction empties its groups, and the pre-fail keys would otherwise
	// linger until the LRU ages them out.
	f.invalidateNodeLocked(n)
	evicted := n.mgr.Residents()
	for _, r := range evicted {
		if err := n.mgr.Remove(r.Name); err != nil {
			// Residents() just listed it under the same lock; Remove can
			// only fail on a name that is not resident.
			return nil, fmt.Errorf("fleet: evicting %s from %s: %w", r.Name, name, err)
		}
	}
	// Registered lazily so fleets that never lose a machine keep their
	// /metrics exposition (and the server e2e golden) unchanged.
	f.reg.Counter("fleet_node_down_total").Inc()
	if len(evicted) > 0 {
		f.reg.Counter("fleet_node_evicted_total").Add(uint64(len(evicted)))
	}
	return evicted, nil
}

// RestoreNode brings a down machine back (empty, as after a reboot) and
// pumps the admission queue into the recovered capacity, returning any
// admissions that resulted.
func (f *Fleet) RestoreNode(ctx context.Context, name string) ([]Placed, error) {
	f.mu.Lock()
	n := f.nodeByNameLocked(name)
	if n == nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownNode, name)
	}
	if !n.down {
		f.mu.Unlock()
		return nil, fmt.Errorf("fleet: node %q is not down", name)
	}
	n.down = false
	// Symmetric with FailNode: a restored machine comes back empty, so any
	// memoized scores still keyed to its groups (possible when the caller
	// re-placed workloads elsewhere between fail and restore) are hygiene
	// to drop, never a correctness requirement — keys are content-addressed.
	f.invalidateNodeLocked(n)
	f.reg.Counter("fleet_node_up_total").Inc()
	f.mu.Unlock()
	// Pump (not pumpLocked): queued features may need profiling against
	// this node's machine kind, which must happen outside the fleet lock.
	return f.Pump(ctx)
}

// NodeInspection is one node's full scheduler-visible state, exposed for
// invariant checking (internal/chaos): the paper's Eq. 1/Eq. 10 properties
// are statements about exactly this data. Residents carry the feature
// vectors the models actually used, in deterministic core/arrival order.
type NodeInspection struct {
	Name       string
	Machine    *machine.Machine
	MaxPerCore int
	Down       bool
	Residents  []manager.Resident
}

// Assignment reconstructs the node's model-side assignment from the
// inspected residents.
func (ni NodeInspection) Assignment() core.Assignment {
	asg := make(core.Assignment, ni.Machine.NumCores)
	for _, r := range ni.Residents {
		asg[r.Core] = append(asg[r.Core], r.Feature)
	}
	return asg
}

// Inspect captures every node's state under one lock acquisition, so the
// snapshot is consistent: no placement can commit between two nodes' rows.
func (f *Fleet) Inspect() []NodeInspection {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]NodeInspection, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = NodeInspection{
			Name:       n.cfg.Name,
			Machine:    n.cfg.Machine,
			MaxPerCore: n.cfg.MaxPerCore,
			Down:       n.down,
			Residents:  n.mgr.Residents(),
		}
	}
	return out
}

func (f *Fleet) nodeByNameLocked(name string) *node {
	for _, n := range f.nodes {
		if n.cfg.Name == name {
			return n
		}
	}
	return nil
}

// CoreState is one core's resident instances.
type CoreState struct {
	Core  int      `json:"core"`
	Procs []string `json:"procs"`
}

// NodeState is one machine's view in the fleet state.
type NodeState struct {
	Node           string      `json:"node"`
	Machine        string      `json:"machine"`
	MaxPerCore     int         `json:"max_per_core,omitempty"`
	Cores          []CoreState `json:"cores"`
	Residents      int         `json:"residents"`
	FreeSlots      int         `json:"free_slots"` // -1 = unbounded
	EstimatedWatts float64     `json:"estimated_watts"`
	PredictedSPI   float64     `json:"predicted_spi"`
	// Down marks a lost machine (FailNode): no residents, no capacity,
	// zero model estimates. Omitted while the node is up so existing
	// state consumers (and goldens) see unchanged output.
	Down bool `json:"down,omitempty"`
}

// State is the fleet-wide view: per-machine residents and model estimates
// plus the totals and the queue.
type State struct {
	Policy            string      `json:"policy"`
	Nodes             []NodeState `json:"nodes"`
	Residents         int         `json:"residents"`
	QueueDepth        int         `json:"queue_depth"`
	Queued            []string    `json:"queued,omitempty"`
	TotalWatts        float64     `json:"total_watts"`
	TotalPredictedSPI float64     `json:"total_predicted_spi"`
}

// State reports the current fleet state, computing each machine's power
// and SPI estimates from the combined model.
func (f *Fleet) State(ctx context.Context) (*State, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := &State{Policy: f.cfg.Policy.String()}
	for _, n := range f.nodes {
		ns, err := f.nodeStateLocked(ctx, n)
		if err != nil {
			return nil, err
		}
		st.Nodes = append(st.Nodes, ns)
		st.Residents += ns.Residents
		st.TotalWatts += ns.EstimatedWatts
		st.TotalPredictedSPI += ns.PredictedSPI
	}
	st.QueueDepth = len(f.queue)
	for _, q := range f.queue {
		st.Queued = append(st.Queued, q.spec.Name)
	}
	return st, nil
}

func (f *Fleet) nodeStateLocked(ctx context.Context, n *node) (NodeState, error) {
	if n.down {
		// A lost machine consumes nothing and runs nothing; report it
		// explicitly rather than pricing an empty-but-powered CMP.
		return NodeState{
			Node:       n.cfg.Name,
			Machine:    n.cfg.Machine.Name,
			MaxPerCore: n.cfg.MaxPerCore,
			Down:       true,
		}, nil
	}
	asg := f.assignmentOf(n)
	running := n.mgr.Running()
	ns := NodeState{
		Node:       n.cfg.Name,
		Machine:    n.cfg.Machine.Name,
		MaxPerCore: n.cfg.MaxPerCore,
		FreeSlots:  -1,
	}
	for c, names := range running {
		procs := append([]string{}, names...)
		ns.Cores = append(ns.Cores, CoreState{Core: c, Procs: procs})
		ns.Residents += len(names)
	}
	if n.cfg.MaxPerCore > 0 {
		ns.FreeSlots = n.cfg.MaxPerCore*n.cfg.Machine.NumCores - ns.Residents
	}
	watts, err := n.cm.EstimateAssignmentContext(ctx, asg)
	if err != nil {
		return NodeState{}, fmt.Errorf("fleet: estimating %s power: %w", n.cfg.Name, err)
	}
	ns.EstimatedWatts = watts
	spi, err := f.nodeSPI(ctx, n.cfg.Machine, asg)
	if err != nil {
		return NodeState{}, fmt.Errorf("fleet: estimating %s SPI: %w", n.cfg.Name, err)
	}
	ns.PredictedSPI = spi
	return ns, nil
}

// Totals returns the fleet-wide predicted SPI and watts sums (the sim's
// per-event integrand) without building the full state.
func (f *Fleet) Totals(ctx context.Context) (spi, watts float64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.nodes {
		if n.down {
			continue
		}
		asg := f.assignmentOf(n)
		w, err := n.cm.EstimateAssignmentContext(ctx, asg)
		if err != nil {
			return 0, 0, err
		}
		s, err := f.nodeSPI(ctx, n.cfg.Machine, asg)
		if err != nil {
			return 0, 0, err
		}
		watts += w
		spi += s
	}
	return spi, watts, nil
}

// collectGauges refreshes the per-machine and fleet-wide gauges right
// before a metrics scrape. Watts gauges are integer milliwatts (the
// registry's gauges are integral); a machine whose estimate fails scrapes
// as -1 rather than failing the exposition.
func (f *Fleet) collectGauges(r *metrics.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, n := range f.nodes {
		if n.down {
			// A lost machine scrapes as empty with no free slots and zero
			// draw, so dashboards see the capacity loss immediately.
			r.Gauge(fmt.Sprintf("fleet_machine_residents{node=%q}", n.cfg.Name)).Set(0)
			r.Gauge(fmt.Sprintf("fleet_machine_free_slots{node=%q}", n.cfg.Name)).Set(0)
			r.Gauge(fmt.Sprintf("fleet_machine_milliwatts{node=%q}", n.cfg.Name)).Set(0)
			continue
		}
		running := n.mgr.Running()
		count := 0
		for _, names := range running {
			count += len(names)
		}
		total += count
		r.Gauge(fmt.Sprintf("fleet_machine_residents{node=%q}", n.cfg.Name)).Set(int64(count))
		free := int64(-1)
		if n.cfg.MaxPerCore > 0 {
			free = int64(n.cfg.MaxPerCore*n.cfg.Machine.NumCores - count)
		}
		r.Gauge(fmt.Sprintf("fleet_machine_free_slots{node=%q}", n.cfg.Name)).Set(free)
		mw := int64(-1)
		if w, err := n.cm.EstimateAssignment(n.mgr.Assignment()); err == nil {
			mw = int64(w * 1000)
		}
		r.Gauge(fmt.Sprintf("fleet_machine_milliwatts{node=%q}", n.cfg.Name)).Set(mw)
	}
	r.Gauge("fleet_residents").Set(int64(total))
	r.Gauge("fleet_queue_depth").Set(int64(len(f.queue)))
	r.Gauge("fleet_machines").Set(int64(len(f.nodes)))
}

// SyntheticPowerModel is core.SyntheticPowerModel, re-exported where the
// fleet's callers historically found it. The implementation lives in core
// so packages that must not import fleet (manager's fast test variants,
// the chaos harness's fixtures) can share the same model.
func SyntheticPowerModel() (*core.PowerModel, error) {
	return core.SyntheticPowerModel()
}
