package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>, rewriting under
// -update. On a mismatch the observed bytes are dumped next to the golden
// as <name minus .json>.got.json so CI can upload the diff pair.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		dump := strings.TrimSuffix(path, ".json") + ".got.json"
		if werr := os.WriteFile(dump, got, 0o644); werr == nil {
			t.Fatalf("%s: output differs from golden file; observed bytes dumped to %s", name, dump)
		}
		t.Fatalf("%s: output differs from golden file\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// renderReport serializes exactly like cmd/fleet, so the golden pins the
// CLI's byte-for-byte output.
func renderReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestSimGolden is the determinism acceptance test: the seeded scenario
// must replay to a byte-identical report at workers 1, 4, and GOMAXPROCS,
// pinned by the golden file the CI smoke step also diffs against.
func TestSimGolden(t *testing.T) {
	sc, err := LoadScenario(filepath.Join("testdata", "scenario_seed1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var ref []byte
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		rep, err := NewSim(sc, w).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := renderReport(t, rep)
		if ref == nil {
			ref = got
			checkGolden(t, "sim_seed1.json", got)
		} else if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d report differs from workers=1", w)
		}
	}
}

// TestSimSmokeGolden pins the tiny heterogeneous scenario CI replays.
func TestSimSmokeGolden(t *testing.T) {
	sc, err := LoadScenario(filepath.Join("testdata", "scenario_smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewSim(sc, 2).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sim_smoke.json", renderReport(t, rep))
}

// TestLeastDegradationBeatsSpread is the policy acceptance criterion: on
// the golden scenario the model-guided policy must deliver lower fleet
// time-weighted predicted SPI than the round-robin baseline, and every
// policy must place the whole trace (no rejections, nothing left behind).
func TestLeastDegradationBeatsSpread(t *testing.T) {
	sc, err := LoadScenario(filepath.Join("testdata", "scenario_seed1.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewSim(sc, 0).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PolicyReport{}
	for _, pr := range rep.Policies {
		byName[pr.Policy] = pr
		if pr.Rejected != 0 || pr.FinalResidents != 0 {
			t.Errorf("%s: %d rejected, %d stranded — want 0/0", pr.Policy, pr.Rejected, pr.FinalResidents)
		}
		if pr.Placed < uint64(sc.Processes) {
			t.Errorf("%s placed %d of %d", pr.Policy, pr.Placed, sc.Processes)
		}
	}
	ld, sp := byName["least-degradation"], byName["spread"]
	if ld.AvgSPI >= sp.AvgSPI {
		t.Fatalf("least-degradation avg SPI %v not better than spread %v", ld.AvgSPI, sp.AvgSPI)
	}
}

// TestScenarioValidation pins the loader's rejection of malformed
// scenarios.
func TestScenarioValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(body string) string {
		p := filepath.Join(dir, "sc.json")
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	bad := []string{
		`{`,
		`{"unknown_field":1}`,
		`{"machines":[],"processes":1,"mean_interarrival":1,"mean_lifetime":1}`,
		`{"machines":[{"preset":"cray"}],"processes":1,"mean_interarrival":1,"mean_lifetime":1}`,
		`{"machines":[{"preset":"laptop"}],"processes":0,"mean_interarrival":1,"mean_lifetime":1}`,
		`{"machines":[{"preset":"laptop"}],"processes":1,"mean_interarrival":0,"mean_lifetime":1}`,
		`{"machines":[{"preset":"laptop"}],"processes":1,"mean_interarrival":1,"mean_lifetime":1,"policies":["fifo"]}`,
		`{"machines":[{"preset":"laptop"}],"processes":1,"mean_interarrival":1,"mean_lifetime":1,"workloads":["doom"]}`,
	}
	for _, body := range bad {
		if _, err := LoadScenario(write(body)); err == nil {
			t.Errorf("LoadScenario accepted %s", body)
		}
	}
	if _, err := LoadScenario(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadScenario accepted a missing file")
	}
}
