// Memoized group scoring: the fleet-level cache over per-group SPI terms.
//
// Every scoring pass — placement candidates, rebalance scans, state and
// totals reports — reduces to solving cache groups to equilibrium, and
// the same group recurs constantly: a machine's resident groups are
// re-solved for every candidate slot, every policy consult, and every
// totals sample between sim events. The scoreCache memoizes the solved
// per-resident SPI *term list* of one cache group, keyed by the exact
// content that determines it (machine kind, solver, busy cores and their
// resident workload names in order), so a recurring group costs one map
// lookup instead of an equilibrium solve.
//
// Byte-identity contract: a cached value must be indistinguishable —
// bit for bit — from recomputing it cold. Three properties deliver that:
//
//  1. Keys are content-addressed. Every input of groupSPITerms appears in
//     the key: the machine kind name fixes the cache geometry (and which
//     profile a workload name resolves to — profiling is deterministic
//     per (fleet seed, kind, name), so equal names imply bit-equal
//     feature vectors within one fleet), the solver method fixes the
//     algorithm, and the per-core name lists fix the Eq. 10 enumeration.
//     A key can therefore never resolve to a stale value: any change to
//     a group's residents changes its key.
//  2. Values are term *lists*, not subtotals. assignmentSPI accumulates
//     one running float total across groups in (group, busy core, proc)
//     order; float addition is not associative, so the memo stores the
//     flattened per-resident terms and callers replay the accumulation
//     in the original order (see replayTerms).
//  3. Hit/miss/shared counters are scheduling-dependent and never appear
//     in any golden or transcript; only the pure values do.
//
// Invalidation: content-addressing makes departures and rebalance moves
// self-invalidating (the old key is simply never built again and ages out
// of the LRU). FailNode/RestoreNode drop the affected node's current
// group keys eagerly, and FlushScoreCache drops everything — the hook a
// power-model retrain (which rebuilds the serving stack's models) uses.

package fleet

import (
	"context"
	"strconv"
	"strings"
	"sync/atomic"

	"mpmc/internal/cache"
	"mpmc/internal/core"
	"mpmc/internal/machine"
)

// ScoreCacheStats is a snapshot of the score memo's counters. The sums
// obey lookups == hits + misses + shared: every lookup resolves to
// exactly one of a cache hit, a solve (counted as a miss even when the
// solve fails), or a ride on another caller's in-flight solve.
type ScoreCacheStats struct {
	Lookups     uint64
	Hits        uint64
	Misses      uint64
	Shared      uint64
	Invalidated uint64
	Entries     int

	// Decision-memo counters (the second memo level: whole scoreNode
	// results keyed by node identity + assignment content + arrival).
	// Every decision actually served from or stored into the memo counts
	// exactly once; placeOneLocked's speculative all-hit probe counts its
	// hits only when the probed decisions are really used.
	DecisionHits    uint64
	DecisionMisses  uint64
	DecisionEntries int
}

// scoreCache memoizes per-group SPI term lists behind a bounded LRU with
// singleflight deduplication, mirroring featureCache's shape. All methods
// are safe for concurrent use.
type scoreCache struct {
	lru    *cache.LRUMap[[]float64]
	flight cache.Flight[[]float64]

	// decisions memoizes whole scoreNode results — the second memo level.
	// A decision is a pure function of the node identity (which fixes the
	// machine kind, power model, and MaxPerCore), the fleet's immutable
	// policy knobs, the assignment content, and the arrival's workload
	// name, so it obeys the same byte-identity contract the term memo
	// does. No singleflight: recomputing a decision is cheap once the
	// term memo is warm, so concurrent first scorers just race benignly.
	decisions *cache.LRUMap[nodeScore]

	// intercept is the fleet's fault-injection seam, consulted at site
	// "fleet.solve" (key = memo key) inside the singleflight before a
	// group is solved — the seam solve-count regression tests observe.
	intercept func(site, key string) error

	lookups, hits, misses, shared, invalidated atomic.Uint64
	dhits, dmisses                             atomic.Uint64
}

func newScoreCache(capacity int, intercept func(site, key string) error) *scoreCache {
	return &scoreCache{
		lru:       cache.NewLRUMap[[]float64](capacity),
		decisions: cache.NewLRUMap[nodeScore](capacity),
		intercept: intercept,
	}
}

func (sc *scoreCache) stats() ScoreCacheStats {
	return ScoreCacheStats{
		Lookups:         sc.lookups.Load(),
		Hits:            sc.hits.Load(),
		Misses:          sc.misses.Load(),
		Shared:          sc.shared.Load(),
		Invalidated:     sc.invalidated.Load(),
		Entries:         sc.lru.Len(),
		DecisionHits:    sc.dhits.Load(),
		DecisionMisses:  sc.dmisses.Load(),
		DecisionEntries: sc.decisions.Len(),
	}
}

// peekDecision probes the decision memo without touching any counter —
// placeOneLocked's all-hit fast path uses it speculatively and credits the
// hits in bulk only when the probed decisions actually decide a placement.
func (sc *scoreCache) peekDecision(key string) (nodeScore, bool) {
	return sc.decisions.Get(key)
}

// getDecision is the counted probe scoreNode uses: exactly one hit or miss
// per scoring pass.
func (sc *scoreCache) getDecision(key string) (nodeScore, bool) {
	s, ok := sc.decisions.Get(key)
	if ok {
		sc.dhits.Add(1)
	} else {
		sc.dmisses.Add(1)
	}
	return s, ok
}

func (sc *scoreCache) putDecision(key string, s nodeScore) {
	sc.decisions.Put(key, s)
}

// get returns the memoized term list for key, solving via compute on a
// miss. Errors are never cached (an injected or solver failure must not
// poison later lookups).
func (sc *scoreCache) get(key string, compute func() ([]float64, error)) ([]float64, error) {
	sc.lookups.Add(1)
	if v, ok := sc.lru.Get(key); ok {
		sc.hits.Add(1)
		return v, nil
	}
	var innerHit bool
	v, err, shared := sc.flight.Do(key, func() ([]float64, error) {
		if v, ok := sc.lru.Get(key); ok {
			innerHit = true
			return v, nil
		}
		if sc.intercept != nil {
			if err := sc.intercept("fleet.solve", key); err != nil {
				return nil, err
			}
		}
		v, err := compute()
		if err != nil {
			return nil, err
		}
		sc.lru.Put(key, v)
		return v, nil
	})
	switch {
	case shared:
		sc.shared.Add(1)
	case err == nil && innerHit:
		sc.hits.Add(1)
	default:
		sc.misses.Add(1)
	}
	return v, err
}

// invalidate drops one key, counting it only if it was resident.
func (sc *scoreCache) invalidate(key string) {
	if sc.lru.Delete(key) {
		sc.invalidated.Add(1)
	}
}

// flush drops every memoized term list and placement decision.
func (sc *scoreCache) flush() {
	for _, k := range sc.lru.Keys() {
		sc.invalidate(k)
	}
	for _, k := range sc.decisions.Keys() {
		if sc.decisions.Delete(k) {
			sc.invalidated.Add(1)
		}
	}
}

// scoreKey builds the content identity of one cache group's term list.
// The busy core IDs are included alongside the per-core workload names:
// today two symmetric groups with equal residents would solve to equal
// terms, but per-core factors (machine.CoreSpeed) may one day enter the
// SPI terms, and the key must already name every input that could. The
// separators cannot occur in machine or workload names.
func scoreKey(m *machine.Machine, solver core.SolverMethod, busy []int, asg core.Assignment) string {
	n := len(m.Name) + 8
	for _, c := range busy {
		n += 4
		for _, f := range asg[c] {
			n += len(f.Name) + 1
		}
	}
	buf := make([]byte, 0, n)
	buf = append(buf, m.Name...)
	buf = append(buf, '\x00')
	buf = strconv.AppendInt(buf, int64(solver), 10)
	for _, c := range busy {
		buf = append(buf, '\x01')
		buf = strconv.AppendInt(buf, int64(c), 10)
		for _, f := range asg[c] {
			buf = append(buf, '\x02')
			buf = append(buf, f.Name...)
		}
	}
	return string(buf)
}

// decisionKey builds the content identity of one node's placement decision
// for an arrival: the node name (which pins the machine kind, power model,
// and MaxPerCore — all immutable per fleet), the arrival's workload name,
// and every core's resident workload names in order (empty cores included:
// admissibility depends on per-core occupancy). The fleet-wide policy,
// ceiling, and solver are constants of the fleet the memo lives in, so they
// need no key bytes.
func decisionKey(n *node, feat *core.FeatureVector, asg core.Assignment) string {
	return n.cfg.Name + "\x00" + feat.Name + decisionSuffix(asg)
}

// decisionSuffix serializes the assignment-content half of a decision key.
// The fleet caches it per node alongside the assignment snapshot, so a
// warm probe pays one concatenation, not a full walk.
func decisionSuffix(asg core.Assignment) string {
	size := 0
	for _, procs := range asg {
		size++
		for _, f := range procs {
			size += len(f.Name) + 1
		}
	}
	buf := make([]byte, 0, size)
	for _, procs := range asg {
		buf = append(buf, '\x01')
		for _, f := range procs {
			buf = append(buf, '\x02')
			buf = append(buf, f.Name...)
		}
	}
	return string(buf)
}

// groupSPITerms solves one cache group and returns its flattened
// per-resident SPI terms in (busy core, proc arrival) order. It is
// assignmentSPI's inner loop verbatim: the Eq. 10 enumeration of per-core
// process choices, each combination solved to equilibrium, every
// resident's prediction averaged over the combinations it appears in.
// The terms are pure — they depend only on the busy cores' feature
// vectors, the machine's associativity, and the solver — which is what
// makes them safe to memoize under a content key.
func groupSPITerms(ctx context.Context, m *machine.Machine, busy []int, asg core.Assignment, solver core.SolverMethod, st *core.SolverState) ([]float64, error) {
	perProc := make([][]float64, len(busy))
	for i, c := range busy {
		perProc[i] = make([]float64, len(asg[c]))
	}
	choice := make([]int, len(busy))
	combo := make([]*core.FeatureVector, len(busy))
	combos := 0
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(busy) {
			preds, err := core.PredictGroupCached(ctx, combo, m.Assoc, solver, st)
			if err != nil {
				return err
			}
			for j, p := range preds {
				perProc[j][choice[j]] += p.SPI
			}
			combos++
			return nil
		}
		for k, f := range asg[busy[i]] {
			choice[i], combo[i] = k, f
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	var terms []float64
	for i, c := range busy {
		appearances := float64(combos) / float64(len(asg[c]))
		for j, sum := range perProc[i] {
			t := sum / appearances
			// A thread-group bundle resident stands for Members
			// co-located threads: its solved SPI is the per-member SPI of
			// the merged stream, so the group total counts it Members
			// times. Legacy features (Members ≤ 1) skip the multiply so
			// their terms stay bit-identical to the pre-threads code.
			if m := asg[c][j].Members; m > 1 {
				t *= float64(m)
			}
			terms = append(terms, t)
		}
	}
	return terms, nil
}

// busyCores returns the group's cores that host at least one process, in
// group order.
func busyCores(group []int, asg core.Assignment) []int {
	var busy []int
	for _, c := range group {
		if len(asg[c]) > 0 {
			busy = append(busy, c)
		}
	}
	return busy
}

// groupTerms returns one group's term list through the memo (or cold when
// caching is disabled). Every actual groupSPITerms execution — a real
// equilibrium solve of one cache group, the unit of work predicates exist
// to avoid — bumps the fleet's solver-invocation counter; memo hits do
// not, so SolverInvocations measures solve work, not demand.
func (f *Fleet) groupTerms(ctx context.Context, m *machine.Machine, busy []int, asg core.Assignment) ([]float64, error) {
	if f.scores == nil {
		f.solves.Add(1)
		return groupSPITerms(ctx, m, busy, asg, f.cfg.Solver, f.solver)
	}
	return f.scores.get(scoreKey(m, f.cfg.Solver, busy, asg), func() ([]float64, error) {
		f.solves.Add(1)
		return groupSPITerms(ctx, m, busy, asg, f.cfg.Solver, f.solver)
	})
}

// nodeTerms returns every group's term list for one assignment, nil for
// idle groups, memoized per group.
func (f *Fleet) nodeTerms(ctx context.Context, m *machine.Machine, asg core.Assignment) ([][]float64, error) {
	out := make([][]float64, len(m.Groups))
	for gi, group := range m.Groups {
		busy := busyCores(group, asg)
		if len(busy) == 0 {
			continue
		}
		terms, err := f.groupTerms(ctx, m, busy, asg)
		if err != nil {
			return nil, err
		}
		out[gi] = terms
	}
	return out, nil
}

// replayTerms accumulates per-group term lists into one total in group
// order — the exact float-addition sequence assignmentSPI performs, so a
// replayed total is bit-identical to a cold one.
func replayTerms(groups [][]float64) float64 {
	total := 0.0
	for _, terms := range groups {
		for _, t := range terms {
			total += t
		}
	}
	return total
}

// nodeSPI is assignmentSPI through the memo: identical bytes, amortized
// solves.
func (f *Fleet) nodeSPI(ctx context.Context, m *machine.Machine, asg core.Assignment) (float64, error) {
	groups, err := f.nodeTerms(ctx, m, asg)
	if err != nil {
		return 0, err
	}
	return replayTerms(groups), nil
}

// withAdditionShared returns asg with feat appended to core c, sharing
// every untouched core's slice with asg (copy-on-write: only the per-core
// slice headers and core c's extended slice are allocated). Callers must
// treat the result as read-only. The full-capacity slice expression
// forces the append to copy, so asg's own backing arrays are never
// written through.
func withAdditionShared(asg core.Assignment, feat *core.FeatureVector, c int) core.Assignment {
	next := make(core.Assignment, len(asg))
	copy(next, asg)
	cur := asg[c]
	next[c] = append(cur[:len(cur):len(cur)], feat)
	return next
}

// invalidateNodeLocked drops the memo entries for the node's current
// groups. Content keys cannot go stale, so this is hygiene, not
// correctness: a failed machine's groups are dead weight the LRU should
// not have to age out. Called with the fleet lock held.
func (f *Fleet) invalidateNodeLocked(n *node) {
	if f.scores == nil {
		return
	}
	m := n.cfg.Machine
	asg := f.assignmentOf(n)
	for _, group := range m.Groups {
		busy := busyCores(group, asg)
		if len(busy) == 0 {
			continue
		}
		f.scores.invalidate(scoreKey(m, f.cfg.Solver, busy, asg))
	}
	// Decision keys embed arrival names the node cannot enumerate, so the
	// node's decisions are found by their unambiguous "<name>\x00" prefix.
	prefix := n.cfg.Name + "\x00"
	for _, k := range f.scores.decisions.Keys() {
		if strings.HasPrefix(k, prefix) && f.scores.decisions.Delete(k) {
			f.scores.invalidated.Add(1)
		}
	}
}

// ScoreCacheStats snapshots the score memo's counters (zero value when
// caching is disabled). The counters are scheduling-dependent under
// concurrency — they belong in logs and tests, never in goldens.
func (f *Fleet) ScoreCacheStats() ScoreCacheStats {
	if f.scores == nil {
		return ScoreCacheStats{}
	}
	return f.scores.stats()
}

// SolverStateStats snapshots the shared equilibrium solver-state counters
// (zero value when caching is disabled).
func (f *Fleet) SolverStateStats() core.SolverStateStats {
	if f.solver == nil {
		return core.SolverStateStats{}
	}
	return f.solver.Stats()
}

// FlushScoreCache drops every memoized group score and recorded
// equilibrium solution. Values are pure functions of their keys, so
// flushing never changes any result; call it when the models behind the
// fleet are rebuilt in place (a power-model retrain) or to release
// memory.
func (f *Fleet) FlushScoreCache() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.scores != nil {
		f.scores.flush()
	}
	if f.solver != nil {
		f.solver.Flush()
	}
}
