package fleet

import "fmt"

// Policy selects how the fleet scheduler picks a (machine, core) slot for
// an arriving process. Every policy scores candidate slots with the
// paper's own models — predicted SPI via the equilibrium solver, predicted
// watts via the Eq. 9 MVLR — rather than load heuristics; the policies
// differ only in which model quantity they optimize and in what order they
// consider machines.
type Policy int

const (
	// LeastDegradation places the arrival on the slot that minimizes the
	// fleet-wide increase in total predicted SPI: the newcomer's own
	// predicted SPI on that machine plus the slowdown it inflicts on the
	// machine's residents through shared-cache contention.
	LeastDegradation Policy = iota
	// LeastWatts places the arrival on the slot that minimizes the
	// predicted added processor power (the Figure 1 estimate after the
	// placement minus the machine's current estimate).
	LeastWatts
	// BinPack fills machines in index order, keeping each machine until
	// the arrival's best slot there would exceed the configured relative
	// SPI-degradation ceiling; only then does it open the next machine.
	// When every machine exceeds the ceiling it falls back to the least
	// relative degradation (never rejecting while capacity remains).
	BinPack
	// Spread is the round-robin baseline: machines in rotation, the least
	// loaded admissible core within the machine, no model consulted.
	Spread
	// ColocateSharers is the thread-group-aware policy that keeps a
	// group's member threads on ONE cache: the group arrives as a single
	// merged bundle (internal/threads), so sharers pay no coherence
	// misses and the shared footprint is counted once. Single-thread
	// arrivals score exactly like LeastDegradation.
	ColocateSharers
	// SpreadSharers is the thread-group-aware policy that scatters a
	// group's member threads across machines, one single-member bundle
	// each, preferring nodes no sibling already occupies: each member
	// keeps undilated private distances but pays the coherence term for
	// its remote siblings. Single-thread arrivals score exactly like
	// LeastDegradation.
	SpreadSharers
	// LeastEnergy is the DVFS-aware policy: candidates are (machine,
	// core, frequency state) triples and the winner minimizes the
	// increase in the node's energy-delay product (scaled watts × scaled
	// total SPI²). It is the policy that voluntarily down-clocks a
	// memory-bound node: when the compute term is a small share of total
	// SPI, a lower state sheds f·V² dynamic watts for little delay.
	LeastEnergy
	// CapAware is LeastDegradation extended with frequency states and a
	// fleet-wide watt budget: among (core, state) slots whose scaled
	// post-placement node watts still fit the remaining power-cap
	// headroom, it minimizes the increase in scaled total SPI. With no
	// cap configured it decides exactly like LeastDegradation (the base
	// state always wins the SPI comparison).
	CapAware
)

// String names the policy, matching ParsePolicy's accepted spellings.
func (p Policy) String() string {
	switch p {
	case LeastDegradation:
		return "least-degradation"
	case LeastWatts:
		return "least-watts"
	case BinPack:
		return "binpack"
	case Spread:
		return "spread"
	case ColocateSharers:
		return "colocate-sharers"
	case SpreadSharers:
		return "spread-sharers"
	case LeastEnergy:
		return "least-energy"
	case CapAware:
		return "cap-aware"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps scenario-file and flag spellings onto policies.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "least-degradation":
		return LeastDegradation, nil
	case "least-watts":
		return LeastWatts, nil
	case "binpack":
		return BinPack, nil
	case "spread":
		return Spread, nil
	case "colocate-sharers":
		return ColocateSharers, nil
	case "spread-sharers":
		return SpreadSharers, nil
	case "least-energy":
		return LeastEnergy, nil
	case "cap-aware":
		return CapAware, nil
	}
	return 0, fmt.Errorf("unknown fleet policy %q (want least-degradation, least-watts, binpack, spread, colocate-sharers, spread-sharers, least-energy, or cap-aware)", name)
}

// Policies lists the four legacy policies in a fixed order (the sim
// report order and the default scenario policy set — the thread-group
// and energy policies are opt-in, so legacy scenario goldens are
// unaffected).
func Policies() []Policy {
	return []Policy{LeastDegradation, LeastWatts, BinPack, Spread}
}

// FreqAware reports whether the policy emits per-slot frequency targets
// (sched.Score.Freq): its decisions may re-clock the winning node at
// commit time.
func (p Policy) FreqAware() bool { return p == LeastEnergy || p == CapAware }

// GroupAware reports whether the policy places thread groups with the
// sharing-aware bundle transformation (internal/threads) rather than
// treating members as independent legacy processes.
func (p Policy) GroupAware() bool { return p == ColocateSharers || p == SpreadSharers }
