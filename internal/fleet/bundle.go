// Policy bundles: the four legacy -policy names expressed as canned
// sched pipelines. The scoring substance is unchanged — the model
// prioritizer is scoreNode verbatim, so the decision memo, the peek fast
// path, and the chaos fault seam all keep their exact legacy semantics —
// only the reduction moved into sched.Selector implementations and the
// candidate pruning into sched.Predicate stages.
//
// Compatibility contract: a legacy bundle filters with NodeUp ONLY. The
// legacy scheduler consulted the "fleet.score" seam (and the decision
// memo) for every up node, full or not, and the chaos goldens pin that
// fault realization; capacity predicates (FreeSlot, PerCoreCap) therefore
// belong to custom pipelines (Config.ExtraPredicates / MaxFeasible),
// where cutting solves is the whole point and no golden constrains the
// consult set.

package fleet

import (
	"context"
	"fmt"

	"mpmc/internal/sched"
	"mpmc/internal/workload"
)

// bundle is one assembled placement pipeline plus the fleet-side quirks
// sched stays agnostic of.
type bundle struct {
	pipe *sched.Pipeline
	// zeroScore blanks Placed.Score (Spread reports no score; its
	// prioritizer value is a rotation distance, not a model quantity).
	zeroScore bool
	// advance moves the round-robin cursor past the winner (Spread).
	advance bool
}

// modelPrioritizer adapts scoreNode — the policy's model scoring, memo
// and fault seam included — into the pipeline.
type modelPrioritizer struct {
	f *Fleet
}

func (p modelPrioritizer) Name() string { return "model:" + p.f.cfg.Policy.String() }

func (p modelPrioritizer) Score(ctx context.Context, a sched.Arrival, n *sched.CandidateNode) (sched.Score, error) {
	return p.f.scoreNode(ctx, p.f.nodes[n.Index], a.Payload.(*workload.Spec))
}

// spreadPrioritizer is the round-robin baseline as a scoring stage: the
// value is the node's rotation distance from the cursor, the core the
// least-loaded admissible one (ties to the lowest index), so MinValue
// reproduces "first admissible machine in rotation" exactly. It reads
// only cached per-core counts — no model, no solver.
type spreadPrioritizer struct {
	f *Fleet
}

func (p spreadPrioritizer) Name() string { return "spread" }

func (p spreadPrioritizer) Score(_ context.Context, _ sched.Arrival, cn *sched.CandidateNode) (sched.Score, error) {
	f := p.f
	n := f.nodes[cn.Index]
	asg := f.assignmentOf(n)
	bestCore, bestLoad := -1, 0
	for c := range asg {
		if n.cfg.MaxPerCore != 0 && len(asg[c]) >= n.cfg.MaxPerCore {
			continue
		}
		if bestCore < 0 || len(asg[c]) < bestLoad {
			bestCore, bestLoad = c, len(asg[c])
		}
	}
	if bestCore < 0 {
		return sched.Score{}, nil
	}
	dist := cn.Index - f.rrNode
	if dist < 0 {
		dist += len(f.nodes)
	}
	return sched.Score{OK: true, Core: bestCore, Value: float64(dist)}, nil
}

// newBundle assembles the active policy's pipeline, appending the
// caller's extra predicates and feasibility cut on top of the canned
// stages.
func newBundle(f *Fleet) (*bundle, error) {
	preds := append([]sched.Predicate{sched.NodeUp{}}, f.cfg.ExtraPredicates...)
	b := &bundle{}
	var prio sched.Prioritizer
	var sel sched.Selector
	switch f.cfg.Policy {
	case LeastDegradation, LeastWatts, ColocateSharers, SpreadSharers, LeastEnergy, CapAware:
		// The thread-group policies differ from LeastDegradation only in
		// how PlaceGroup shapes arrivals into bundles; per-spec scoring
		// is the same least-total-SPI-increase pipeline. The frequency-
		// aware policies widen the per-node scan to (core, state) slots
		// inside scoreNodeCold but still reduce with min-value.
		prio, sel = modelPrioritizer{f}, sched.MinValue{}
	case BinPack:
		prio, sel = modelPrioritizer{f}, sched.CeilingFirstFit{Ceiling: f.cfg.BinPackCeiling}
	case Spread:
		prio, sel = spreadPrioritizer{f}, sched.MinValue{}
		b.zeroScore, b.advance = true, true
	default:
		return nil, errUnknownPolicy(f.cfg.Policy)
	}
	pipe, err := sched.New(f.cfg.Policy.String(), preds, []sched.Weighted{{Prioritizer: prio, Weight: 1}}, sel)
	if err != nil {
		return nil, fmt.Errorf("fleet: assembling %s pipeline: %w", f.cfg.Policy, err)
	}
	pipe.MaxFeasible = f.cfg.MaxFeasible
	b.pipe = pipe
	return b, nil
}

// candidatesLocked refreshes the pipeline's view of every node — the
// cheap, model-free facts predicates filter on — into per-fleet reusable
// buffers. Callers must hold the fleet lock; the result is valid until
// the next placement mutates a node.
func (f *Fleet) candidatesLocked() []*sched.CandidateNode {
	if f.candPtrs == nil {
		f.cands = make([]sched.CandidateNode, len(f.nodes))
		f.candPtrs = make([]*sched.CandidateNode, len(f.nodes))
		for i, n := range f.nodes {
			f.cands[i] = sched.CandidateNode{
				Index:      i,
				Name:       n.cfg.Name,
				MaxPerCore: n.cfg.MaxPerCore,
				Labels:     n.cfg.Labels,
				Taints:     n.cfg.Taints,
				PerCore:    make([]int, n.cfg.Machine.NumCores),
			}
			f.candPtrs[i] = &f.cands[i]
		}
	}
	for i, n := range f.nodes {
		c := &f.cands[i]
		c.Up = !n.down
		if n.down {
			continue
		}
		asg := f.assignmentOf(n)
		residents := 0
		for ci := range asg {
			c.PerCore[ci] = len(asg[ci])
			residents += len(asg[ci])
		}
		c.FreeSlots = -1
		if n.cfg.MaxPerCore > 0 {
			c.FreeSlots = n.cfg.MaxPerCore*n.cfg.Machine.NumCores - residents
		}
	}
	return f.candPtrs
}

// SolverInvocations reports how many cache-group equilibrium solves the
// fleet has actually executed (memo hits excluded). The scale tests pin
// the predicate cut with it: a predicated pipeline must place the same
// trace with an order of magnitude fewer solves than score-everything.
func (f *Fleet) SolverInvocations() uint64 { return f.solves.Load() }
