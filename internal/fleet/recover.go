// Crash recovery: rebuilding a fleet's placement state from a WAL
// snapshot + replay (internal/wal). The log records facts, not
// decisions — recovery adopts each resident at its recorded core under
// its recorded instance name, so the rebuilt fleet is byte-identical to
// the pre-crash one: same per-core arrival order, same instance names,
// same model reduction order, same queue, same next ticket.

package fleet

import (
	"context"
	"errors"
	"fmt"

	"mpmc/internal/threads"
	"mpmc/internal/wal"
)

// Recover reinstates a recovered placement state into a freshly built
// fleet: down nodes are re-marked, residents adopted in global admission
// order, the pending queue rebuilt in queue order, and the ticket source
// resumed above the highest recovered ticket. The fleet must be pristine
// (no residents, empty queue) — recovery composes with construction, not
// with live traffic. Preemption-ledger identities are not persisted;
// recovered requeues start with a fresh backoff budget.
//
// Nothing is journaled here: the caller's log already materializes st,
// and post-recovery mutations append after it.
func (f *Fleet) Recover(ctx context.Context, st *wal.State) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.nodes {
		if len(n.mgr.Residents()) > 0 {
			return errors.New("fleet: recover into a non-empty fleet")
		}
	}
	if len(f.queue) > 0 {
		return errors.New("fleet: recover with a non-empty queue")
	}
	for _, name := range st.Down {
		n := f.nodeByNameLocked(name)
		if n == nil {
			return fmt.Errorf("fleet: %w %q in recovered state", ErrUnknownNode, name)
		}
		n.down = true
	}
	for _, r := range st.Residents {
		n := f.nodeByNameLocked(r.Node)
		if n == nil {
			return fmt.Errorf("fleet: %w %q in recovered state", ErrUnknownNode, r.Node)
		}
		// ResolveSpec covers both suite workloads and thread-group bundle
		// names (rebuilt deterministically from the recorded name).
		spec := threads.ResolveSpec(r.Bench)
		if spec == nil {
			return fmt.Errorf("fleet: recovered resident %s names unknown workload %q", r.Name, r.Bench)
		}
		if err := n.mgr.Adopt(ctx, spec, r.Name, r.Core); err != nil {
			return fmt.Errorf("fleet: adopting %s on %s: %w", r.Name, r.Node, err)
		}
		if r.Tag != "" || r.Priority != 0 {
			if n.meta == nil {
				n.meta = map[string]residentMeta{}
			}
			n.meta[r.Name] = residentMeta{spec: spec, tag: r.Tag, priority: r.Priority}
		}
	}
	for name, rung := range st.Freq {
		n := f.nodeByNameLocked(name)
		if n == nil {
			return fmt.Errorf("fleet: %w %q in recovered frequency state", ErrUnknownNode, name)
		}
		ix := rung - 1
		if ix < 0 || ix >= n.cfg.Machine.Freq.NumStates() {
			return fmt.Errorf("fleet: recovered rung %d for %q outside its %d-state ladder",
				rung, name, n.cfg.Machine.Freq.NumStates())
		}
		n.freqIx = ix
		n.keyFeat, n.keyStr = nil, ""
	}
	for _, qe := range st.Queue {
		spec := threads.ResolveSpec(qe.Bench)
		if spec == nil {
			return fmt.Errorf("fleet: recovered ticket %d names unknown workload %q", qe.Ticket, qe.Bench)
		}
		f.queue = append(f.queue, queued{spec: spec, tag: qe.Tag, ticket: qe.Ticket, priority: qe.Priority})
		// Credit the recovered entry as a submission so this process's
		// queue ledger (submitted = admitted + abandoned + dropped +
		// depth) balances from its first scrape.
		f.qSubmitted.Inc()
	}
	if st.Seq > f.seq {
		f.seq = st.Seq
	}
	f.version++
	for _, n := range f.nodes {
		n.version++
	}
	// Rebuild the watt ledger against the recovered reality: rows for
	// adopted residents at their recovered rungs, zero for down nodes.
	// Uncapped fleets skip the estimates — SetPowerCap resyncs every row
	// when a budget engages.
	if f.capActive() {
		for _, n := range f.nodes {
			if err := f.resyncNodeCapLocked(ctx, n); err != nil {
				return err
			}
		}
	}
	return nil
}
