// Sustained-load lane for the sharded serving tier: many concurrent
// clients churning placements and departures against one Sharded fleet,
// timed wall-clock. Where RunStress proves the predicate stages cut
// solver work on a serial trace, RunServeStress proves the sharding
// moved the concurrency ceiling: placement commits on disjoint shards
// proceed in parallel, so throughput scales past the single-lock fleet,
// and the report pins placements/sec and latency percentiles.
//
// The concurrent phase is intentionally nondeterministic (that is the
// point); decision correctness under sharding is pinned separately by
// the 150-seed equivalence sweep, which this harness does not replace.

package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/workload"
	"mpmc/internal/xrand"
)

// ServeStressConfig sizes one sustained-load run.
type ServeStressConfig struct {
	// Machines is the fleet size (presets cycle like RunStress);
	// Shards the node-group count; Clients the concurrent churn loops.
	Machines int
	Shards   int
	Clients  int
	// Ops is the total number of placement attempts across all clients.
	Ops int
	// Occupancy is each client's resident budget as a fraction of its
	// share of the fleet's slots (0 = 0.75): at budget, the client
	// retires its own oldest resident before placing again.
	Occupancy float64
	// Workers caps per-solve scoring concurrency (0 = 1: the clients
	// provide the parallelism; per-solve fan-out on top of client
	// concurrency oversubscribes the scheduler without changing any
	// decision).
	Workers int
	// Seed drives each client's workload draw (client i uses Seed+i).
	Seed uint64
}

// ServeStressReport is the measured outcome of one run.
type ServeStressReport struct {
	Machines int `json:"machines"`
	Shards   int `json:"shards"`
	Clients  int `json:"clients"`
	Slots    int `json:"slots"`
	Ops      int `json:"ops"`
	Placed   int `json:"placed"`
	Removed  int `json:"removed"`
	Rejected int `json:"rejected"`
	// Conflicts counts optimistic commits that lost a version race and
	// re-scored (fleet_shard_conflict_total).
	Conflicts uint64  `json:"conflicts"`
	Seconds   float64 `json:"seconds"`
	// PlacementsPerSec is successful placements over wall-clock time —
	// the serving tier's sustained admission throughput.
	PlacementsPerSec float64 `json:"placements_per_sec"`
	// Latency percentiles over individual successful placements.
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
	MaxMicros float64 `json:"max_micros"`
}

// RunServeStress builds the sharded fleet and drives the churn.
func RunServeStress(ctx context.Context, cfg ServeStressConfig) (*ServeStressReport, error) {
	if cfg.Machines <= 0 || cfg.Ops <= 0 {
		return nil, fmt.Errorf("fleet: serve-stress needs machines and ops, got %d/%d", cfg.Machines, cfg.Ops)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		return nil, err
	}
	const maxPerCore = 2
	nodes := make([]NodeConfig, cfg.Machines)
	slots := 0
	for i := range nodes {
		m := stressPresets[i%len(stressPresets)]()
		nodes[i] = NodeConfig{Machine: m, Power: pm, MaxPerCore: maxPerCore}
		slots += maxPerCore * m.NumCores
	}
	s, err := NewSharded(Config{
		Nodes:   nodes,
		Policy:  LeastDegradation,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		Profile: func(_ context.Context, m *machine.Machine, spec *workload.Spec, _ core.ProfileOptions) (*core.FeatureVector, error) {
			return core.TruthFeature(spec, m), nil
		},
	}, cfg.Shards)
	if err != nil {
		return nil, err
	}

	pool := workload.Suite()
	// Warm the shared profile cache so the measured loop times placement,
	// not synthetic profiling.
	if err := s.resolveFeatures(ctx, pool); err != nil {
		return nil, err
	}

	occ := cfg.Occupancy
	if occ == 0 {
		occ = 0.75
	}
	budget := int(occ * float64(slots) / float64(cfg.Clients))
	if budget < 1 {
		budget = 1
	}
	opsPer := cfg.Ops / cfg.Clients

	type clientStats struct {
		placed, removed, rejected int
		lat                       []time.Duration
		err                       error
	}
	stats := make([]clientStats, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			st.lat = make([]time.Duration, 0, opsPer)
			r := xrand.New(cfg.Seed + uint64(c))
			type ref struct{ node, name string }
			var own []ref
			for i := 0; i < opsPer; i++ {
				if ctx.Err() != nil {
					st.err = ctx.Err()
					return
				}
				if len(own) >= budget {
					old := own[0]
					own = own[1:]
					if _, err := s.Remove(ctx, old.node, old.name); err != nil {
						st.err = fmt.Errorf("retire %s/%s: %w", old.node, old.name, err)
						return
					}
					st.removed++
				}
				spec := pool[r.Intn(len(pool))]
				t0 := time.Now()
				p, err := s.Place(ctx, spec)
				d := time.Since(t0)
				switch {
				case err == nil:
					st.placed++
					st.lat = append(st.lat, d)
					own = append(own, ref{p.Node, p.Name})
				case errors.Is(err, ErrFleetFull):
					st.rejected++
				default:
					st.err = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &ServeStressReport{
		Machines: cfg.Machines, Shards: cfg.Shards, Clients: cfg.Clients,
		Slots: slots, Ops: opsPer * cfg.Clients, Seconds: elapsed.Seconds(),
	}
	var all []time.Duration
	for c := range stats {
		if stats[c].err != nil {
			return nil, fmt.Errorf("fleet: serve-stress client %d: %w", c, stats[c].err)
		}
		rep.Placed += stats[c].placed
		rep.Removed += stats[c].removed
		rep.Rejected += stats[c].rejected
		all = append(all, stats[c].lat...)
	}
	rep.Conflicts = s.conflicts.Value()
	if elapsed > 0 {
		rep.PlacementsPerSec = float64(rep.Placed) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) float64 {
			i := int(p * float64(len(all)-1))
			return float64(all[i].Microseconds())
		}
		rep.P50Micros = pct(0.50)
		rep.P99Micros = pct(0.99)
		rep.MaxMicros = float64(all[len(all)-1].Microseconds())
	}
	return rep, nil
}
