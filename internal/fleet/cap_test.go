package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/wal"
	"mpmc/internal/workload"
)

// TestCapLedgerAtomicity pins the ledger's unit contract: usage is the
// sorted-row sum (a pure function of the rows), tryReserve is
// check-and-write under one lock, and a failed reservation leaves the
// rows untouched.
func TestCapLedgerAtomicity(t *testing.T) {
	l := newCapLedger()
	l.setNode("b", 10)
	l.setNode("a", 5)
	if got := l.usage(); got != 15 {
		t.Fatalf("usage = %v, want 15", got)
	}
	if got := l.usedExcept("b"); got != 5 {
		t.Fatalf("usedExcept(b) = %v, want 5", got)
	}

	// Uncapped (watts == 0): every reservation is admitted, rows tracked.
	if !l.tryReserve("a", 100) {
		t.Fatal("uncapped tryReserve rejected")
	}
	l.setNode("a", 5)

	l.setCap(16)
	if !l.tryReserve("a", 6) { // 10 + 6 = 16 fits exactly
		t.Fatal("tryReserve rejected a fitting reservation")
	}
	if l.tryReserve("b", 11) { // 6 + 11 = 17 > 16
		t.Fatal("tryReserve admitted an over-budget reservation")
	}
	if got := l.nodeWatts("b"); got != 10 {
		t.Fatalf("failed reservation mutated the row: %v, want 10", got)
	}

	// Replacing a node's own row is measured against the total WITHOUT its
	// old row: b can grow to the remaining headroom even though usage+w
	// would overflow naively.
	if !l.tryReserve("b", 10) {
		t.Fatal("tryReserve rejected a same-size replacement")
	}

	// restoreRows is a full overwrite.
	l.restoreRows(map[string]float64{"x": 1})
	if got := l.usage(); got != 1 {
		t.Fatalf("restoreRows usage = %v, want 1", got)
	}
}

// TestCapAdmissionGate pins the admission contract end to end: with the
// budget set exactly to the current draw, the next arrival (which always
// adds dynamic watts) is rejected as ErrFleetFull with the fleet
// bit-identically untouched, and clearing the cap re-admits it.
func TestCapAdmissionGate(t *testing.T) {
	ctx := context.Background()
	f := testFleet(t, LeastDegradation, nil)
	if _, err := f.PlaceAll(ctx, []*workload.Spec{
		workload.ByName("gzip"), workload.ByName("mcf"),
	}); err != nil {
		t.Fatal(err)
	}
	// Engage tracking first (an uncapped fleet has no ledger to read),
	// then pin the budget to the measured draw.
	if err := f.SetPowerCap(ctx, 1e9); err != nil {
		t.Fatal(err)
	}
	usage := f.CapUsage()
	if err := f.SetPowerCap(ctx, usage); err != nil {
		t.Fatal(err)
	}
	pre, err := f.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	preJSON, _ := json.Marshal(pre)

	if _, err := f.Place(ctx, workload.ByName("art")); !errors.Is(err, ErrFleetFull) {
		t.Fatalf("over-budget arrival: got %v, want ErrFleetFull", err)
	}
	if got := f.CapUsage(); math.Float64bits(got) != math.Float64bits(usage) {
		t.Fatalf("rejected arrival moved the ledger: %v -> %v", usage, got)
	}
	post, err := f.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if postJSON, _ := json.Marshal(post); string(preJSON) != string(postJSON) {
		t.Fatalf("rejected arrival mutated fleet state:\n pre %s\npost %s", preJSON, postJSON)
	}

	// Clearing the budget (watts == 0) disables the gate.
	if err := f.SetPowerCap(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Place(ctx, workload.ByName("art")); err != nil {
		t.Fatalf("uncapped arrival rejected: %v", err)
	}
}

// TestEnforceCapDownclocks drives a loaded fleet over budget and checks
// the enforcement pass: watts shed to within the cap, down-clocks
// reported, some node left below base, and every ledger row re-anchored
// on the canonical live estimate (a second SetPowerCap resync must not
// move a single bit).
func TestEnforceCapDownclocks(t *testing.T) {
	ctx := context.Background()
	f := testFleet(t, LeastDegradation, nil)
	if _, err := f.PlaceAll(ctx, sixteenSpecs()[:8]); err != nil {
		t.Fatal(err)
	}
	if err := f.SetPowerCap(ctx, 1e9); err != nil { // engage tracking
		t.Fatal(err)
	}
	loaded := f.CapUsage()
	static := 0.0
	for _, n := range f.nodes {
		static += staticWatts(n)
	}
	if loaded <= static {
		t.Fatalf("loaded draw %v not above the static floor %v", loaded, static)
	}
	// A budget inside the dynamic band but above the ladder floor (the
	// lowest rung keeps ~43% of dynamic watts) is reachable by shedding
	// dynamic watts alone.
	budget := static + (loaded-static)*0.6
	if err := f.SetPowerCap(ctx, budget); err != nil {
		t.Fatal(err)
	}
	rep, err := f.EnforceCap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied {
		t.Fatalf("enforcement unsatisfied: %+v", rep)
	}
	if rep.WattsAfter > budget {
		t.Fatalf("WattsAfter %v above the %v budget", rep.WattsAfter, budget)
	}
	if rep.Downclocks+rep.Migrations == 0 {
		t.Fatal("enforcement shed watts without reporting any action")
	}
	below := 0
	for name, ix := range f.FreqStates() {
		n := f.nodeByNameLocked(name)
		if ix < n.cfg.Machine.Freq.BaseIx() {
			below++
		}
		if ix < 0 || ix >= n.cfg.Machine.Freq.NumStates() {
			t.Fatalf("node %s rung %d outside its ladder", name, ix)
		}
	}
	if rep.Downclocks > 0 && below == 0 {
		t.Fatal("down-clocks reported but every node still at base")
	}

	// Canonical-row invariant: a fresh full resync (SetPowerCap with the
	// same budget) must reproduce the post-enforcement ledger bit for bit.
	before := f.capL.snapshotRows()
	if err := f.SetPowerCap(ctx, budget); err != nil {
		t.Fatal(err)
	}
	after := f.capL.snapshotRows()
	for name, w := range before {
		if math.Float64bits(after[name]) != math.Float64bits(w) {
			t.Fatalf("row %s not canonical: enforcement left %v, resync computes %v", name, w, after[name])
		}
	}
}

// TestEnforceCapUnsatisfiable pins the Satisfied=false contract: a budget
// below the fleet's static floor cannot be met by any rung or migration,
// so enforcement exhausts its actions and reports honestly.
func TestEnforceCapUnsatisfiable(t *testing.T) {
	ctx := context.Background()
	f := testFleet(t, LeastDegradation, nil)
	if _, err := f.Place(ctx, workload.ByName("gzip")); err != nil {
		t.Fatal(err)
	}
	if err := f.SetPowerCap(ctx, 1.0); err != nil { // far below the idle floor
		t.Fatal(err)
	}
	rep, err := f.EnforceCap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Fatalf("1 W budget reported satisfiable: %+v", rep)
	}
	if rep.WattsAfter <= rep.Cap {
		t.Fatalf("unsatisfied pass claims WattsAfter %v within cap %v", rep.WattsAfter, rep.Cap)
	}
}

// TestEnforceCapRollback forces the migration path (base-only ladders, so
// no down-clock exists) and fails it at the manager.place_at injection
// site: the transaction must restore every manager, rung, and ledger row
// and leave the serialized fleet state byte-identical.
func TestEnforceCapRollback(t *testing.T) {
	ctx := context.Background()
	pm := testPower(t)
	boom := errors.New("injected placement failure")
	var arm bool
	build := func() []NodeConfig {
		// The loaded source has a base-only ladder (no down-clock exists)
		// and the empty target sits at its ladder floor, where dynamic
		// watts cost ~43% of base — so migrating a resident across is the
		// only action that sheds watts, and enforcement must take it.
		src := machine.TwoCoreWorkstation()
		src.Freq = nil
		return []NodeConfig{
			{Machine: src, Power: pm, MaxPerCore: 2},
			{Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 2},
		}
	}
	f, err := New(Config{
		Nodes:    build(),
		Policy:   LeastDegradation,
		QueueCap: 4,
		Seed:     1,
		Workers:  1,
		Profile:  oracle(nil, 0),
		Intercept: func(site, key string) error {
			if arm && site == "manager.place_at" {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One lone resident on m0: migrating it to the floor-clocked twin
	// keeps its unscaled draw but multiplies the dynamic part by ~0.43,
	// so the move sheds watts (a contended source would not — each
	// squeezed resident's draw is already below the floor's fraction of
	// its uncontended draw).
	if _, err := f.FailNode("m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Place(ctx, workload.ByName("gzip")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RestoreNode(ctx, "m1"); err != nil {
		t.Fatal(err)
	}
	// Park the empty target at its ladder floor (an empty node sheds
	// nothing by down-clocking, so enforcement would never get it there
	// itself).
	f.mu.Lock()
	f.setFreqLocked(f.nodes[1], 0)
	f.mu.Unlock()
	if err := f.SetPowerCap(ctx, 1e9); err != nil {
		t.Fatal(err)
	}
	usage := f.CapUsage()
	static := 0.0
	for _, n := range f.nodes {
		static += staticWatts(n)
	}
	if err := f.SetPowerCap(ctx, static+(usage-static)*0.5); err != nil {
		t.Fatal(err)
	}

	pre, err := f.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	preJSON, _ := json.Marshal(pre)
	preRoll := f.rollbacks.Value()

	arm = true
	_, err = f.EnforceCap(ctx)
	arm = false
	if err == nil {
		t.Fatal("no migration candidate shed watts; rollback path not exercised")
	}
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("enforcement error = %v, want rolled-back wrap of the injected failure", err)
	}
	if got := f.rollbacks.Value(); got != preRoll+1 {
		t.Fatalf("rollback counter %d, want %d", got, preRoll+1)
	}
	post, err := f.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if postJSON, _ := json.Marshal(post); string(preJSON) != string(postJSON) {
		t.Fatalf("failed enforcement mutated fleet state:\n pre %s\npost %s", preJSON, postJSON)
	}
}

// TestFailRestoreCapRows pins the accounting on node loss: a down node's
// row drops to zero (its draw is gone, its budget share freed), and a
// restored node re-enters at exactly the constant idle floor.
func TestFailRestoreCapRows(t *testing.T) {
	ctx := context.Background()
	f := testFleet(t, LeastDegradation, func(cfg *Config) { cfg.PowerCap = 1e9 })
	if _, err := f.PlaceAll(ctx, sixteenSpecs()[:4]); err != nil {
		t.Fatal(err)
	}
	name := f.NodeNames()[0]
	if w := f.capL.nodeWatts(name); w <= 0 {
		t.Fatalf("live node row %v, want positive", w)
	}
	if _, err := f.FailNode(name); err != nil {
		t.Fatal(err)
	}
	if w := f.capL.nodeWatts(name); w != 0 {
		t.Fatalf("down node row %v, want 0", w)
	}
	if _, err := f.RestoreNode(ctx, name); err != nil {
		t.Fatal(err)
	}
	n := f.nodeByNameLocked(name)
	if w := f.capL.nodeWatts(name); math.Float64bits(w) != math.Float64bits(staticWatts(n)) {
		t.Fatalf("restored node row %v, want the %v idle floor", w, staticWatts(n))
	}
}

// TestRebalanceCapRejection pins the rebalance budget gate: when the best
// move's post-move fleet draw exceeds the cap, Rebalance refuses it as
// ErrNoImprovement with the budget spelled out, and moves nothing.
func TestRebalanceCapRejection(t *testing.T) {
	ctx := context.Background()
	f := testFleet(t, LeastDegradation, nil)
	// Pile load onto one node so an improving move exists.
	for _, name := range f.NodeNames()[1:] {
		if _, err := f.FailNode(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.PlaceAll(ctx, sixteenSpecs()[:4]); err != nil {
		t.Fatal(err)
	}
	for _, name := range f.NodeNames()[1:] {
		if _, err := f.RestoreNode(ctx, name); err != nil {
			t.Fatal(err)
		}
	}
	if mv, err := f.Rebalance(ctx, 0); err != nil {
		t.Fatalf("uncapped rebalance found no move: %v", err)
	} else if mv.Name == "" {
		t.Fatal("uncapped rebalance returned an empty move")
	}

	// Any further move's post-move draw (~the idle floor) dwarfs a 1 W
	// budget, so the gate must fire.
	if err := f.SetPowerCap(ctx, 1.0); err != nil {
		t.Fatal(err)
	}
	pre := f.CapUsage()
	_, err := f.Rebalance(ctx, 0)
	if !errors.Is(err, manager.ErrNoImprovement) || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("capped rebalance: got %v, want cap-gated ErrNoImprovement", err)
	}
	if got := f.CapUsage(); math.Float64bits(got) != math.Float64bits(pre) {
		t.Fatalf("rejected rebalance moved the ledger: %v -> %v", pre, got)
	}
}

// TestFreqWALRecovery pins the rung journal: enforcement down-clocks are
// recorded as EvFreq, and a fresh fleet recovered from the log reports
// the same rungs and byte-identical state.
func TestFreqWALRecovery(t *testing.T) {
	ctx := context.Background()
	shadow := &wal.State{}
	journal := func(events []wal.Event) {
		for _, e := range events {
			if err := shadow.Apply(e); err != nil {
				t.Fatalf("shadow apply: %v", err)
			}
		}
	}
	mk := func(j func([]wal.Event)) *Fleet {
		return testFleet(t, LeastDegradation, func(cfg *Config) {
			cfg.Journal = j
			cfg.PowerCap = 1e9
		})
	}
	f1 := mk(journal)
	if _, err := f1.PlaceAll(ctx, sixteenSpecs()[:8]); err != nil {
		t.Fatal(err)
	}
	static := 0.0
	for _, n := range f1.nodes {
		static += staticWatts(n)
	}
	budget := static + (f1.CapUsage()-static)*0.25
	if err := f1.SetPowerCap(ctx, budget); err != nil {
		t.Fatal(err)
	}
	rep, err := f1.EnforceCap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Downclocks == 0 {
		t.Fatalf("scenario produced no down-clocks to journal: %+v", rep)
	}
	if len(shadow.Freq) == 0 {
		t.Fatal("EnforceCap down-clocked but journaled no EvFreq")
	}

	f2 := mk(nil)
	if err := f2.SetPowerCap(ctx, budget); err != nil {
		t.Fatal(err)
	}
	if err := f2.Recover(ctx, shadow); err != nil {
		t.Fatalf("recover: %v", err)
	}
	s1, s2 := f1.FreqStates(), f2.FreqStates()
	for name, ix := range s1 {
		if s2[name] != ix {
			t.Fatalf("node %s recovered at rung %d, want %d", name, s2[name], ix)
		}
	}
	pre, err := f1.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	post, err := f2.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	preJSON, _ := json.Marshal(pre)
	postJSON, _ := json.Marshal(post)
	if string(preJSON) != string(postJSON) {
		t.Fatalf("recovered state diverged:\n pre %s\npost %s", preJSON, postJSON)
	}

	// Ladder validation: a recorded rung outside the machine's ladder is a
	// corrupt log, refused with the node named.
	f3 := mk(nil)
	bad := &wal.State{Freq: map[string]int{"m0": 99}}
	if err := f3.Recover(ctx, bad); err == nil || !strings.Contains(err.Error(), "ladder") {
		t.Fatalf("recover with rung 99: got %v, want ladder validation error", err)
	}
}

// TestShardedCapRace races concurrent placements on a Sharded fleet
// against a budget with room for only some of them: the shared ledger's
// tryReserve must serialize admission so the final draw never exceeds the
// cap, and every loser is an ErrFleetFull. Run under -race this also
// exercises the ledger lock discipline across shards.
func TestShardedCapRace(t *testing.T) {
	ctx := context.Background()
	pm := testPower(t)
	mkCfg := func(cap float64) Config {
		var nodes []NodeConfig
		for i := 0; i < 4; i++ {
			nodes = append(nodes, NodeConfig{
				Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 2,
			})
		}
		return Config{
			Nodes: nodes, Policy: LeastDegradation, QueueCap: 0,
			Seed: 1, Workers: 2, Profile: oracle(nil, 0), PowerCap: cap,
		}
	}
	// Calibrate on a throwaway fleet: the idle floor plus roughly half the
	// draw the full batch would add.
	probe, err := NewSharded(mkCfg(1e9), 2)
	if err != nil {
		t.Fatal(err)
	}
	static := probe.CapUsage()
	specs := sixteenSpecs()[:8]
	if _, err := probe.PlaceAll(ctx, specs); err != nil {
		t.Fatal(err)
	}
	budget := static + (probe.CapUsage()-static)*0.5

	s, err := NewSharded(mkCfg(budget), 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec *workload.Spec) {
			defer wg.Done()
			_, errs[i] = s.Place(ctx, spec)
		}(i, spec)
	}
	wg.Wait()
	placed, rejected := 0, 0
	for i, err := range errs {
		switch {
		case err == nil:
			placed++
		case errors.Is(err, ErrFleetFull):
			rejected++
		default:
			t.Fatalf("placement %d: unexpected error %v", i, err)
		}
	}
	if placed == 0 {
		t.Fatal("budget admitted nothing; calibration off")
	}
	if rejected == 0 {
		t.Fatal("budget rejected nothing; race never contended the headroom")
	}
	if usage, cap := s.CapUsage(), s.PowerCap(); usage > cap {
		t.Fatalf("over-admission: draw %v exceeds the %v budget (placed %d)", usage, cap, placed)
	}
}

// TestSimCapEvents pins the simulator's cap wiring: a mid-run CapEvent
// populates the report's energy/enforcement fields, the run is
// byte-identical across worker counts, and a scenario without cap fields
// reports none (the legacy golden surface).
func TestSimCapEvents(t *testing.T) {
	sc := &Scenario{
		Seed: 7,
		Machines: []ScenarioMachine{
			{Preset: "workstation"}, {Preset: "workstation"}, {Preset: "laptop", MaxPerCore: 2},
		},
		Policies:         []string{"least-degradation", "cap-aware"},
		Processes:        16,
		Workloads:        []string{"gzip", "mcf", "art"},
		MeanInterarrival: 0.8,
		MeanLifetime:     10,
		QueueCap:         4,
		CapEvents:        []CapEvent{{Time: 5, Watts: 30.002}},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	var ref []byte
	for _, w := range []int{1, 4} {
		rep, err := NewSim(sc, w).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := renderReport(t, rep)
		if ref == nil {
			ref = got
		} else if string(got) != string(ref) {
			t.Fatalf("workers=%d cap-event report diverged from workers=1", w)
		}
		for _, pr := range rep.Policies {
			if pr.EnergyJ <= 0 {
				t.Fatalf("%s: no energy integrated", pr.Policy)
			}
		}
	}

	// The cap-free twin must keep the legacy surface: no energy, no
	// enforcement counters (their omitempty keeps old goldens byte-stable).
	legacy := *sc
	legacy.CapEvents = nil
	rep, err := NewSim(&legacy, 1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.Policies {
		if pr.EnergyJ != 0 || pr.CapDownclocks != 0 || pr.CapMigrations != 0 || pr.CapUnsatisfied != 0 {
			t.Fatalf("%s: cap fields populated on a cap-free scenario: %+v", pr.Policy, pr)
		}
	}
}

// TestShardedCapLifecycle walks the sharded tier's budget surface the
// way an operator would: tighten the cap mid-flight, force an
// enforcement pass, read the rungs back, then clear the budget. The
// enforcement itself is shard-local (documented divergence), but the
// aggregate report must still account every down-clock and land the
// shared ledger under the budget.
func TestShardedCapLifecycle(t *testing.T) {
	ctx := context.Background()
	pm := testPower(t)
	var nodes []NodeConfig
	for i := 0; i < 4; i++ {
		nodes = append(nodes, NodeConfig{
			Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 2,
		})
	}
	s, err := NewSharded(Config{
		Nodes: nodes, Policy: LeastDegradation, QueueCap: 0,
		Seed: 1, Workers: 2, Profile: oracle(nil, 0), PowerCap: 1e9,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetPowerCap(ctx, -1); err == nil {
		t.Fatal("negative cap accepted")
	}
	static := s.CapUsage()
	if _, err := s.PlaceAll(ctx, sixteenSpecs()[:8]); err != nil {
		t.Fatal(err)
	}
	loaded := s.CapUsage()

	// A cap between the loaded draw and what the ladder floor can reach
	// (the lowest rung keeps ~43% of dynamic watts, so 0.6 is reachable).
	budget := static + (loaded-static)*0.6
	if err := s.SetPowerCap(ctx, budget); err != nil {
		t.Fatal(err)
	}
	if got := s.PowerCap(); got != budget {
		t.Fatalf("PowerCap() = %v, want %v", got, budget)
	}
	rep, err := s.EnforceCap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied || rep.WattsAfter > budget {
		t.Fatalf("enforcement left %v W against a %v W budget: %+v", rep.WattsAfter, budget, rep)
	}
	if rep.Downclocks == 0 {
		t.Fatalf("enforcement shed watts without down-clocks: %+v", rep)
	}
	states := s.FreqStates()
	if len(states) != len(nodes) {
		t.Fatalf("FreqStates reported %d nodes, want %d", len(states), len(nodes))
	}
	lowered := 0
	for name, ix := range states {
		if ix < 0 || ix >= machine.TwoCoreWorkstation().Freq.NumStates() {
			t.Fatalf("node %s at rung %d outside its ladder", name, ix)
		}
		if ix < machine.TwoCoreWorkstation().Freq.BaseIx() {
			lowered++
		}
	}
	if lowered == 0 {
		t.Fatal("no node below base frequency after a down-clocking pass")
	}
	if usage := s.CapUsage(); usage > budget {
		t.Fatalf("ledger draw %v exceeds the %v budget post-enforcement", usage, budget)
	}

	// An already-satisfied pass is a no-op report, and clearing the cap
	// re-opens admission without touching rungs.
	again, err := s.EnforceCap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Satisfied || again.Downclocks != 0 || again.Migrations != 0 {
		t.Fatalf("second pass was not a no-op: %+v", again)
	}
	if err := s.SetPowerCap(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if s.PowerCap() != 0 {
		t.Fatal("cap not cleared")
	}
	uncapped, err := s.EnforceCap(ctx)
	if err != nil || uncapped.Cap != 0 || !uncapped.Satisfied {
		t.Fatalf("uncapped enforcement: %+v, %v", uncapped, err)
	}
}
