// Priority-class preemption: when the pipeline filters every candidate
// out (the fleet is full for this arrival) and the arrival's class
// outranks a resident, the fleet evicts the cheapest victim — lowest
// priority class first, least fleet-wide predicted-SPI loss within the
// class — places the arrival into the freed capacity, and requeues the
// victim through the admission queue with exponential backoff (the
// sched.Ledger). The whole exchange is transactional: every node manager
// is snapshotted first, and any failure after the eviction restores the
// cluster bit-for-bit before the error surfaces.

package fleet

import (
	"context"
	"errors"
	"fmt"

	"mpmc/internal/manager"
	"mpmc/internal/wal"
	"mpmc/internal/workload"
)

// preemptTargets is preemptLocked's victim scan, split out for testing:
// it returns the index of the node hosting the chosen victim and the
// victim itself, or ok false when no resident is outranked. Deterministic
// at any worker count: nodes in index order, residents in the manager's
// core/arrival order, strict less-than comparisons.
func (f *Fleet) victimLocked(ctx context.Context, priority int) (nodeIdx int, victim manager.Resident, ok bool, err error) {
	bestPrio, bestDelta := 0, 0.0
	for i, n := range f.nodes {
		if n.down {
			continue
		}
		residents := n.mgr.Residents()
		if len(residents) == 0 {
			continue
		}
		baseComputed := false
		base := 0.0
		for _, r := range residents {
			prio := n.meta[r.Name].priority
			if prio >= priority {
				continue
			}
			if !baseComputed {
				if base, err = f.nodeSPI(ctx, n.cfg.Machine, f.assignmentOf(n)); err != nil {
					return 0, manager.Resident{}, false, err
				}
				baseComputed = true
			}
			after, err := f.nodeSPI(ctx, n.cfg.Machine, withoutResident(f.assignmentOf(n), r))
			if err != nil {
				return 0, manager.Resident{}, false, err
			}
			// delta is how much fleet-wide predicted SPI the eviction
			// removes; smaller = cheaper victim (the evicted process was
			// contributing little, or relieving much contention).
			delta := base - after
			if !ok || prio < bestPrio || (prio == bestPrio && delta < bestDelta) {
				nodeIdx, victim, ok = i, r, true
				bestPrio, bestDelta = prio, delta
			}
		}
	}
	return nodeIdx, victim, ok, nil
}

// preemptLocked attempts one preemption for an arrival the pipeline just
// rejected as unplaceable. It reports ok false — cluster untouched — when
// no resident is outranked; the caller then surfaces the original
// ErrFleetFull. An error after the eviction starts rolls every machine
// and the cursor back before returning, so a failed preemption is
// indistinguishable from one never attempted.
func (f *Fleet) preemptLocked(ctx context.Context, spec *workload.Spec, opts PlaceOptions) (Placed, bool, error) {
	vi, victim, ok, err := f.victimLocked(ctx, opts.Priority)
	if err != nil || !ok {
		return Placed{}, false, err
	}
	vnode := f.nodes[vi]
	vmeta := vnode.meta[victim.Name]

	// Transaction window: snapshot every manager (placement may choose
	// any node) and the cursor. The queue, ledger, and counters are only
	// touched after the placement commits, so they never need restoring.
	snaps := make([]*manager.Snapshot, len(f.nodes))
	for i, n := range f.nodes {
		snaps[i] = n.mgr.Snapshot()
	}
	snapRR := f.rrNode
	restore := func() {
		for i, n := range f.nodes {
			n.mgr.Restore(snaps[i])
		}
		f.rrNode = snapRR
	}

	if err := vnode.mgr.Remove(victim.Name); err != nil {
		return Placed{}, false, fmt.Errorf("fleet: evicting preemption victim %s from %s: %w",
			victim.Name, vnode.cfg.Name, err)
	}
	p, err := f.decideAndCommitLocked(ctx, spec, opts)
	if err != nil {
		restore()
		f.reg.Counter("fleet_preempt_aborted_total").Inc()
		if errors.Is(err, ErrFleetFull) {
			// Even the freed slot did not admit the arrival (it can only
			// happen under adversarial extra predicates): report the
			// original condition, cluster untouched.
			return Placed{}, false, nil
		}
		return Placed{}, false, fmt.Errorf("fleet: preemption rolled back: %w", err)
	}

	// The arrival is committed (commitLocked stamped its node); the
	// victim's node changed too.
	vnode.version++
	if f.capActive() {
		// The eviction lowered the victim node's draw (commitLocked already
		// re-priced the arrival's node). A failed estimate leaves the stale,
		// higher row — conservative, healed by the next resync.
		_ = f.resyncNodeCapLocked(ctx, vnode)
	}
	// The arrival is committed; now disposition the victim. Ledger key:
	// reuse the victim's recorded identity so repeat preemptions escalate
	// its backoff; first-time victims get the tag or a fresh ticket-based
	// identity.
	delete(vnode.meta, victim.Name)
	key := vmeta.key
	if key == "" {
		if key = vmeta.tag; key == "" {
			f.seq++
			key = fmt.Sprintf("preempt#%d", f.seq)
		}
	}
	info := &PreemptedInfo{
		Node:     vnode.cfg.Name,
		Name:     victim.Name,
		Workload: victim.Spec.Name,
		Tag:      vmeta.tag,
		Priority: vmeta.priority,
	}
	requeue, _ := f.ledger.Record(key, f.pumpRound)
	if requeue && f.cfg.QueueCap > 0 && len(f.queue) < f.cfg.QueueCap {
		f.seq++
		f.queue = append(f.queue, queued{
			spec:     victim.Spec,
			tag:      vmeta.tag,
			ticket:   f.seq,
			priority: vmeta.priority,
			key:      key,
		})
		f.qSubmitted.Inc()
		f.reg.Counter("fleet_preempt_requeued_total").Inc()
		info.Requeued = true
		info.Ticket = f.seq
	} else {
		// Attempt budget exhausted, queueing disabled, or queue full: the
		// victim is dropped — counted and reported, never silent.
		f.ledger.Forget(key)
		f.reg.Counter("fleet_preempt_dropped_total").Inc()
	}
	f.reg.Counter("fleet_preempt_total").Inc()
	// One journal event carries the whole victim disposition; it lands in
	// the same batch as the arrival's admitted event, so replay sees the
	// exchange atomically. (The admitted event precedes it in the batch —
	// the arrival appends at the end of the resident order either way, so
	// replay reproduces per-core arrival order exactly.)
	f.journalLocked(wal.Event{
		Type: wal.EvPreempted, Node: vnode.cfg.Name, Name: victim.Name,
		Bench: victim.Spec.Name, Tag: vmeta.tag, Priority: vmeta.priority,
		Requeued: info.Requeued, Ticket: info.Ticket,
	})
	p.Preempted = info
	return p, true, nil
}
