package fleet

import (
	"context"
	"sort"
	"testing"
	"time"

	"mpmc/internal/workload"
)

// reportP99 records the 99th-percentile per-iteration latency as a
// benchstat-friendly metric: the score cache makes the *tail* the
// interesting number (a steady stream of hits with the occasional cold
// solve), and a mean would bury the misses.
func reportP99(b *testing.B, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns/op")
}

// benchFleetPlace drives one place/remove cycle against a warm 4-machine
// fleet: the cost of scoring every (machine, core) slot with the
// equilibrium solver, which is the fleet scheduler's hot path.
func benchFleetPlace(b *testing.B, scoreCap int) {
	ctx := context.Background()
	f := testFleet(b, LeastDegradation, func(c *Config) { c.ScoreCacheCap = scoreCap })
	// Steady background load and a warm feature cache.
	if _, err := f.PlaceAll(ctx, sixteenSpecs()[:8]); err != nil {
		b.Fatal(err)
	}
	spec := workload.ByName("mcf")
	if err := f.resolveFeatures(ctx, []*workload.Spec{spec}); err != nil {
		b.Fatal(err)
	}
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		p, err := f.Place(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Remove(ctx, p.Node, p.Name); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	reportP99(b, lat)
}

// BenchmarkFleetPlace is the default configuration (score cache on). CI
// records it benchstat-style in BENCH_fleet.json; the acceptance number
// for the caching layer is this benchmark's p99 against
// BenchmarkFleetPlaceCold's.
func BenchmarkFleetPlace(b *testing.B) { benchFleetPlace(b, 0) }

// BenchmarkFleetPlaceCold disables the score cache: every iteration
// re-solves every group. This is the pre-cache cost and the denominator
// of the speedup claim.
func BenchmarkFleetPlaceCold(b *testing.B) { benchFleetPlace(b, -1) }

// BenchmarkFleetPlaceCapAware is the budget-constrained placement path:
// cap-aware scoring scans every (core, frequency-state) slot against the
// live ledger headroom and never uses the decision memo, so this is the
// policy's true per-arrival cost under an active cap.
func BenchmarkFleetPlaceCapAware(b *testing.B) {
	ctx := context.Background()
	f := testFleet(b, CapAware, func(c *Config) { c.PowerCap = 1e9 })
	if _, err := f.PlaceAll(ctx, sixteenSpecs()[:8]); err != nil {
		b.Fatal(err)
	}
	spec := workload.ByName("mcf")
	if err := f.resolveFeatures(ctx, []*workload.Spec{spec}); err != nil {
		b.Fatal(err)
	}
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		p, err := f.Place(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Remove(ctx, p.Node, p.Name); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	reportP99(b, lat)
}

// BenchmarkFleetRebalance measures one full cross-machine rebalance scan
// (the pass is dominated by candidate scoring; the chosen move is never
// executed because the threshold is prohibitive).
func BenchmarkFleetRebalance(b *testing.B) {
	ctx := context.Background()
	f := testFleet(b, LeastDegradation, nil)
	if _, err := f.PlaceAll(ctx, sixteenSpecs()[:8]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Rebalance(ctx, 1e9); err == nil {
			b.Fatal("expected no-improvement sentinel")
		}
	}
}
