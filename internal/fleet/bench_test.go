package fleet

import (
	"context"
	"testing"

	"mpmc/internal/workload"
)

// BenchmarkFleetPlace measures one place/remove cycle against a warm
// 4-machine fleet: the cost of scoring every (machine, core) slot with
// the equilibrium solver, which is the fleet scheduler's hot path. CI
// records it benchstat-style in BENCH_fleet.json.
func BenchmarkFleetPlace(b *testing.B) {
	ctx := context.Background()
	f := testFleet(b, LeastDegradation, nil)
	// Steady background load and a warm feature cache.
	if _, err := f.PlaceAll(ctx, sixteenSpecs()[:8]); err != nil {
		b.Fatal(err)
	}
	spec := workload.ByName("mcf")
	if err := f.resolveFeatures(ctx, []*workload.Spec{spec}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := f.Place(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Remove(ctx, p.Node, p.Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetRebalance measures one full cross-machine rebalance scan
// (the pass is dominated by candidate scoring; the chosen move is never
// executed because the threshold is prohibitive).
func BenchmarkFleetRebalance(b *testing.B) {
	ctx := context.Background()
	f := testFleet(b, LeastDegradation, nil)
	if _, err := f.PlaceAll(ctx, sixteenSpecs()[:8]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Rebalance(ctx, 1e9); err == nil {
			b.Fatal("expected no-improvement sentinel")
		}
	}
}
