package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func renderStress(t testing.TB, rep *StressReport) []byte {
	t.Helper()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestStressSmokeGolden is the scale-smoke gate CI runs under -short: a
// 100-machine, 50k-arrival predicated churn whose full decision stream —
// digested per placement — must be byte-identical to the checked-in
// golden at both worker counts.
func TestStressSmokeGolden(t *testing.T) {
	golden := filepath.Join("testdata", "stress_smoke.json")
	cfg := StressConfig{Machines: 100, Arrivals: 50_000, Predicated: true, Seed: 1}
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		rep, err := RunStress(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := renderStress(t, rep)
		if *updateGolden && workers == 1 {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			dump := golden + fmt.Sprintf(".got-w%d.json", workers)
			os.WriteFile(dump, got, 0o644)
			t.Fatalf("workers=%d: stress report differs from golden; wrote %s", workers, dump)
		}
	}
}

// TestStressPredicateCutsSolverCalls pins the scale claim: on the same
// trace, the predicated pipeline (FreeSlot + PerCoreCap + MaxFeasible 8)
// must reach its decisions with at least 10× fewer equilibrium solves
// than score-everything. Both runs solve cold so SolverInvocations counts
// every scored candidate exactly, with no cache-eviction noise.
func TestStressPredicateCutsSolverCalls(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-cut ratio runs in the full suite")
	}
	ctx := context.Background()
	cfg := StressConfig{Machines: 150, Arrivals: 300, ColdScore: true, Seed: 7}
	base, err := RunStress(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Predicated = true
	pred, err := RunStress(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pred.SolverInvocations == 0 {
		t.Fatal("predicated run never consulted the solver — the pipeline is not scoring at all")
	}
	ratio := float64(base.SolverInvocations) / float64(pred.SolverInvocations)
	t.Logf("solver invocations: score-everything %d, predicated %d (%.1fx cut)",
		base.SolverInvocations, pred.SolverInvocations, ratio)
	if ratio < 10 {
		t.Fatalf("predicates cut solver calls only %.1fx (everything %d, predicated %d); the scale lane demands >= 10x",
			ratio, base.SolverInvocations, pred.SolverInvocations)
	}
	if base.Placed != base.Arrivals || pred.Placed != pred.Arrivals {
		t.Fatalf("churn at 0.75 occupancy must place every arrival (everything %d/%d, predicated %d/%d)",
			base.Placed, base.Arrivals, pred.Placed, pred.Arrivals)
	}
}

// TestStressWorkerAndCacheInvariance: the stress decision stream must not
// depend on concurrency or caching — the same laws the fleet goldens pin,
// restated on the scale pipeline.
func TestStressWorkerAndCacheInvariance(t *testing.T) {
	ctx := context.Background()
	cfg := StressConfig{Machines: 30, Arrivals: 400, Predicated: true, Seed: 11}
	ref, err := RunStress(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []StressConfig{
		{Machines: 30, Arrivals: 400, Predicated: true, Seed: 11, Workers: 3},
		{Machines: 30, Arrivals: 400, Predicated: true, Seed: 11, ColdScore: true},
	} {
		rep, err := RunStress(ctx, variant)
		if err != nil {
			t.Fatal(err)
		}
		if rep.DecisionDigest != ref.DecisionDigest || rep.FinalSPI != ref.FinalSPI {
			t.Fatalf("variant %+v diverged: digest %s vs %s, SPI %v vs %v",
				variant, rep.DecisionDigest, ref.DecisionDigest, rep.FinalSPI, ref.FinalSPI)
		}
	}
}

func TestStressRejectsBadConfig(t *testing.T) {
	if _, err := RunStress(context.Background(), StressConfig{}); err == nil {
		t.Fatal("empty stress config accepted")
	}
}

// benchStress is the benchstat lane: b.N full runs of one configuration,
// reporting arrivals/sec and the solver-invocation count as metrics.
func benchStress(b *testing.B, cfg StressConfig) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rep, err := RunStress(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.SolverInvocations), "solves")
		b.ReportMetric(float64(rep.SolverInvocations)/float64(rep.Arrivals), "solves/arrival")
	}
}

// BenchmarkFleetStress is the small benchstat-friendly stress point
// (bench_fleet.sh runs it at -benchtime 1x alongside the placement
// microbenchmarks' fixed-iteration lane).
func BenchmarkFleetStress(b *testing.B) {
	benchStress(b, StressConfig{Machines: 100, Arrivals: 10_000, Predicated: true, Seed: 1})
}

// BenchmarkFleetStressFull is the headline scalability number: a
// 1000-machine fleet churning through 1,000,000 arrivals behind the
// predicated pipeline. Run via scripts/bench_fleet.sh (separate
// -benchtime 1x invocation); it is far too heavy for the default
// 20000x lane.
func BenchmarkFleetStressFull(b *testing.B) {
	benchStress(b, StressConfig{Machines: 1000, Arrivals: 1_000_000, Predicated: true, Seed: 1})
}
