//go:build !race

package fleet

// raceEnabled reports whether the race detector instruments this build;
// the sustained-load assertions scale their throughput floor by it.
const raceEnabled = false
