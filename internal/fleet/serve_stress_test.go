package fleet

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
)

// TestServeStressThroughput drives the sustained-load scenario and pins
// the serving tier's throughput ceiling. The floor scales with the
// build: an uninstrumented binary must clear the 10k placements/sec
// target even on one core (measured ~21k/s at GOMAXPROCS=1); under the
// race detector — whose instrumentation costs ~10x serially, unpayable
// without spare cores — the run asserts the concurrency machinery
// sustains load without collapsing rather than the ceiling itself.
func TestServeStressThroughput(t *testing.T) {
	cfg := ServeStressConfig{Machines: 24, Shards: 4, Clients: 8, Ops: 40000, Seed: 1}
	if testing.Short() {
		cfg.Ops = 2000
	}
	rep, err := RunServeStress(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(rep)
	t.Logf("serve-stress: %s", b)
	if rep.Placed+rep.Rejected != rep.Ops {
		t.Errorf("ledger: placed %d + rejected %d != ops %d", rep.Placed, rep.Rejected, rep.Ops)
	}
	if rep.Placed == 0 {
		t.Fatal("no placements committed")
	}
	if testing.Short() {
		return // smoke: correctness of the churn, not the ceiling
	}
	floor := 10000.0
	if raceEnabled {
		floor = 250
	} else if runtime.GOMAXPROCS(0) == 1 {
		floor = 5000 // headroom for slow single-core CI machines
	}
	if rep.PlacementsPerSec < floor {
		t.Errorf("sustained %.0f placements/sec, want >= %.0f (race=%v, procs=%d)",
			rep.PlacementsPerSec, floor, raceEnabled, runtime.GOMAXPROCS(0))
	}
	// Bounded tail: p99 placement latency stays in interactive territory.
	p99Bound := 50_000.0 // µs
	if raceEnabled {
		p99Bound = 500_000
	}
	if rep.P99Micros > p99Bound {
		t.Errorf("p99 %.0fµs exceeds %.0fµs bound", rep.P99Micros, p99Bound)
	}
}

// TestServeStressSingleShardMatchesSharded reruns the identical churn
// trace single-client on one shard and on four and verifies both sustain
// the same final ledger (every op placed) — the concurrency-free
// projection of the equivalence sweep onto the serve-stress harness.
func TestServeStressSingleShardMatchesSharded(t *testing.T) {
	var placed [2]int
	for i, shards := range []int{1, 4} {
		rep, err := RunServeStress(context.Background(), ServeStressConfig{
			Machines: 12, Shards: shards, Clients: 1, Ops: 1500, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		placed[i] = rep.Placed
		if rep.Placed+rep.Rejected != rep.Ops {
			t.Errorf("shards=%d: placed %d + rejected %d != ops %d", shards, rep.Placed, rep.Rejected, rep.Ops)
		}
	}
	if placed[0] != placed[1] {
		t.Errorf("placed diverged: 1 shard %d vs 4 shards %d", placed[0], placed[1])
	}
}

// BenchmarkServeSustained is the bench_serve.sh lane: one sustained
// churn of b.N placements across the stress scenario, reporting
// placements/sec and the latency tail as benchmark metrics.
func BenchmarkServeSustained(b *testing.B) {
	rep, err := RunServeStress(context.Background(), ServeStressConfig{
		Machines: 24, Shards: 4, Clients: 8, Ops: b.N, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.PlacementsPerSec, "placements/s")
	b.ReportMetric(rep.P50Micros, "p50-µs")
	b.ReportMetric(rep.P99Micros, "p99-µs")
	b.ReportMetric(float64(rep.Conflicts), "conflicts")
}
