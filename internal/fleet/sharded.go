// Sharded fleet: the serving tier's scale-out form. Nodes are split into
// contiguous, independently-locked groups (each an ordinary Fleet), so
// placements that commit on disjoint groups proceed concurrently instead
// of serializing on one fleet lock. Decisions stay byte-identical to the
// unsharded scheduler: every shard scores its own nodes against a
// version-stamped detached view, the per-shard score vectors concatenate
// in shard order (= global node index order), and one global selector
// reduces them with the same strict less-than tie-breaks — so, absent
// concurrent mutation, a sharded fleet picks exactly the slot the
// unsharded one would (the equivalence sweep pins this). A commit
// revalidates the winning NODE's version stamp — disjoint placements,
// even on the same shard, never invalidate each other; a conflict on
// the chosen node re-scores.
//
// Cross-group operations (PlaceAll, Rebalance, the slow placement path)
// take every shard lock in index order — one canonical order, so two
// concurrent cross-group operations can never deadlock.
//
// The admission queue lives at the sharded layer under its own lock
// (shards run with queueing disabled). Divergences from the unsharded
// fleet, both documented in DESIGN.md: preemption victims are chosen
// shard-locally (first shard in index order with an outranked resident),
// and victims are reported un-requeued rather than re-entering the queue
// with ledger backoff.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"mpmc/internal/core"
	"mpmc/internal/freq"
	"mpmc/internal/manager"
	"mpmc/internal/metrics"
	"mpmc/internal/parallel"
	"mpmc/internal/threads"
	"mpmc/internal/wal"
	"mpmc/internal/workload"
)

// shardedQueued is one pending arrival in the sharded queue.
type shardedQueued struct {
	spec     *workload.Spec
	tag      string
	ticket   int
	priority int
	// committing marks an entry whose placement commit is in flight on a
	// shard: CancelQueued refuses it (the process will land placed), which
	// keeps cancel-vs-pump unambiguous even though the queue lock and the
	// shard locks are different locks.
	committing bool
}

// Sharded is the sharded serving-tier scheduler. All methods are safe
// for concurrent use.
type Sharded struct {
	cfg    Config
	shards []*Fleet
	// start[i] is shard i's first global node index; byName routes node
	// names to (shard, fleet-local operations).
	start  []int
	byName map[string]int
	reg    *metrics.Registry
	// capL is the ONE watt ledger every shard shares: cross-shard
	// admission against the power cap serializes on its lock, so two
	// shards racing the last watts of headroom cannot both win.
	capL *capLedger

	queue *shardedQueue

	placed     *metrics.Counter
	rejected   *metrics.Counter
	conflicts  *metrics.Counter
	qSubmitted *metrics.Counter
	qAdmitted  *metrics.Counter
	qRejected  *metrics.Counter
	qAbandoned *metrics.Counter
	qDropped   *metrics.Counter
}

// shardedQueue is the sharded layer's admission queue (its own lock, so
// no shard lock is ever held while touching it). It reuses the Fleet's
// mutex-free helpers by embedding into a private Fleet-shaped holder.
type shardedQueue struct {
	mu      chMutex
	entries []shardedQueued
	seq     int
	cap     int
}

// chMutex is a channel-based mutex: unlike sync.Mutex it supports
// try-lock-free context-observing patterns if ever needed; here it is
// used as a plain mutex.
type chMutex chan struct{}

func newChMutex() chMutex {
	m := make(chMutex, 1)
	return m
}
func (m chMutex) Lock()   { m <- struct{}{} }
func (m chMutex) Unlock() { <-m }

// NewSharded splits cfg.Nodes into the given number of contiguous,
// independently-locked groups. The profiling cache, score memo, and
// solver state are shared across shards (content-addressed, so sharing
// never changes a value). With more than one shard the Spread policy and
// a MaxFeasible cut are rejected: both are global serial state (a
// rotation cursor, a first-K-feasible cut) that cannot be decided
// per-shard without changing decisions.
func NewSharded(cfg Config, shards int) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("fleet: shards %d < 1", shards)
	}
	if len(cfg.Nodes) < shards {
		return nil, fmt.Errorf("fleet: %d shards for %d nodes", shards, len(cfg.Nodes))
	}
	if shards > 1 {
		if cfg.Policy == Spread {
			return nil, errors.New("fleet: the Spread policy is serial (rotation cursor) and cannot shard")
		}
		if cfg.MaxFeasible > 0 {
			return nil, errors.New("fleet: MaxFeasible is a global cut and cannot shard")
		}
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = 256
	}
	if cfg.ScoreCacheCap == 0 {
		cfg.ScoreCacheCap = 4096
	}
	if cfg.PowerCap < 0 {
		return nil, fmt.Errorf("fleet: negative PowerCap %v", cfg.PowerCap)
	}
	s := &Sharded{
		cfg:    cfg,
		reg:    cfg.Registry,
		byName: map[string]int{},
		queue:  &shardedQueue{mu: newChMutex(), cap: cfg.QueueCap},
		// Always created (even uncapped) so a later SetPowerCap engages
		// one budget across every shard; watts 0 keeps admissions free.
		capL: newCapLedger(),
	}
	s.capL.setCap(cfg.PowerCap)
	shared := cfg
	shared.Registry = s.reg
	feats := newFeatureCache(shared, s.reg)
	var scores *scoreCache
	var solver *core.SolverState
	if cfg.ScoreCacheCap > 0 {
		scores = newScoreCache(cfg.ScoreCacheCap, cfg.Intercept)
		solver = core.NewSolverState(cfg.ScoreCacheCap)
	}
	// Default node names are assigned from the GLOBAL index before the
	// split (a shard would otherwise restart at m0), so sharded node
	// identities match the unsharded fleet's exactly.
	named := append([]NodeConfig(nil), cfg.Nodes...)
	for i := range named {
		if named[i].Name == "" {
			named[i].Name = fmt.Sprintf("m%d", i)
		}
	}
	cfg.Nodes = named
	// Contiguous ranges, the first len%shards groups one node larger, so
	// shard order concatenation reproduces the global node index order.
	per, extra := len(cfg.Nodes)/shards, len(cfg.Nodes)%shards
	startIdx := 0
	for i := 0; i < shards; i++ {
		size := per
		if i < extra {
			size++
		}
		sub := cfg
		sub.Nodes = cfg.Nodes[startIdx : startIdx+size]
		sub.QueueCap = 0 // the queue lives at the sharded layer
		sub.Registry = metrics.NewRegistry()
		sub.sharedFeats = feats
		sub.sharedScores = scores
		sub.sharedSolver = solver
		sub.sharedCap = s.capL
		if scores == nil {
			// Cold mode everywhere: a shard must not build its own caches.
			sub.ScoreCacheCap = cfg.ScoreCacheCap
		}
		sh, err := New(sub)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, sh)
		s.start = append(s.start, startIdx)
		for _, n := range sh.nodes {
			if _, dup := s.byName[n.cfg.Name]; dup {
				return nil, fmt.Errorf("fleet: duplicate node name %q", n.cfg.Name)
			}
			s.byName[n.cfg.Name] = i
		}
		startIdx += size
	}
	s.placed = s.reg.Counter("fleet_place_total")
	s.rejected = s.reg.Counter("fleet_place_rejected_total")
	s.conflicts = s.reg.Counter("fleet_shard_conflict_total")
	s.qSubmitted = s.reg.Counter("fleet_queue_submitted_total")
	s.qAdmitted = s.reg.Counter("fleet_queue_admitted_total")
	s.qRejected = s.reg.Counter("fleet_queue_rejected_total")
	s.qAbandoned = s.reg.Counter("fleet_queue_abandoned_total")
	s.qDropped = s.reg.Counter("fleet_queue_dropped_total")
	s.reg.OnCollect(s.collectGauges)
	return s, nil
}

// Registry returns the metrics registry the sharded fleet reports into.
func (s *Sharded) Registry() *metrics.Registry { return s.reg }

// Policy returns the active placement policy.
func (s *Sharded) Policy() Policy { return s.cfg.Policy }

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// NodeNames lists node identities in global index order.
func (s *Sharded) NodeNames() []string {
	var out []string
	for _, sh := range s.shards {
		out = append(out, sh.NodeNames()...)
	}
	return out
}

// journal hands one completed queue operation's events to the journal.
func (s *Sharded) journal(events []wal.Event) {
	if s.cfg.Journal != nil {
		s.cfg.Journal(events)
	}
}

// selector returns the global reduction (every shard runs the same
// policy, so shard 0's is the fleet's).
func (s *Sharded) selector() interface{ Pick([]nodeScore) int } {
	return s.shards[0].pipe.pipe.Selector()
}

// resolveFeatures warms the shared profile cache for every (machine
// kind, spec) pair, outside any lock.
func (s *Sharded) resolveFeatures(ctx context.Context, specs []*workload.Spec) error {
	for _, sh := range s.shards {
		if err := sh.resolveFeatures(ctx, specs); err != nil {
			return err
		}
	}
	return nil
}

// shardOf locates the shard and shard-local node index of a global pick.
func (s *Sharded) shardOf(global int) (shard, local int) {
	shard = len(s.start) - 1
	for i := 1; i < len(s.start); i++ {
		if global < s.start[i] {
			shard = i - 1
			break
		}
	}
	return shard, global - s.start[shard]
}

// scoreAll scores the arrival on every shard concurrently (each against
// its own version-stamped detached view) and concatenates the vectors in
// shard order. The concatenation is exactly the unsharded fleet's
// node-indexed score vector for the same state; vers[i] is node i's
// version stamp at capture (pass the winner's to commitScored).
func (s *Sharded) scoreAll(ctx context.Context, spec *workload.Spec, opts PlaceOptions) ([]nodeScore, []uint64, error) {
	type res struct {
		scores []nodeScore
		vers   []uint64
	}
	results := make([]res, len(s.shards))
	// One worker per shard, capped at GOMAXPROCS: results land in
	// per-shard slots, so the worker count never changes a decision, and
	// on a small box the serial path skips the goroutine fan-out.
	w := len(s.shards)
	if p := runtime.GOMAXPROCS(0); p < w {
		w = p
	}
	err := parallel.ForEach(ctx, w, len(s.shards), func(i int) error {
		scores, vers, serr := s.shards[i].scoreArrivalDetached(ctx, spec, opts)
		if serr != nil {
			return serr
		}
		results[i] = res{scores, vers}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var all []nodeScore
	var vers []uint64
	for _, r := range results {
		all = append(all, r.scores...)
		vers = append(vers, r.vers...)
	}
	return all, vers, nil
}

// placeAttempts bounds the optimistic place loop before falling back to
// the all-shard-locked slow path (which always terminates).
const placeAttempts = 8

// Place admits one arrival at the policy's best slot across all shards.
func (s *Sharded) Place(ctx context.Context, spec *workload.Spec) (Placed, error) {
	return s.PlaceWith(ctx, spec, PlaceOptions{})
}

// PlaceWith is Place with explicit scheduling options. The fast path is
// optimistic: score every shard without locks held across the solve,
// commit on the winning shard if its version is unchanged; conflicts
// re-score. After placeAttempts conflicts — or when the optimistic pass
// sees no feasible slot, which must be confirmed against a consistent
// cluster state before rejecting — the slow path takes every shard lock
// in index order and decides exactly like the unsharded fleet.
func (s *Sharded) PlaceWith(ctx context.Context, spec *workload.Spec, opts PlaceOptions) (Placed, error) {
	if err := s.resolveFeatures(ctx, []*workload.Spec{spec}); err != nil {
		return Placed{}, err
	}
	var scores []nodeScore
	var vers []uint64
	for attempt := 0; attempt < placeAttempts; attempt++ {
		if scores == nil {
			var err error
			scores, vers, err = s.scoreAll(ctx, spec, opts)
			if err != nil {
				return Placed{}, err
			}
		}
		pick := s.selector().Pick(scores)
		if pick < 0 {
			break // confirm under full lock before rejecting or preempting
		}
		shard, local := s.shardOf(pick)
		p, ok, err := s.shards[shard].commitScored(ctx, spec, opts, local, scores[pick], vers[pick])
		if err != nil {
			return Placed{}, err
		}
		if ok {
			s.placed.Inc()
			return p, nil
		}
		s.conflicts.Inc()
		// Conflict: only the chosen node changed underneath us (its stamp
		// is the one that failed), so refresh just that entry and re-pick.
		// A MaxFeasible cut is a whole-set property, so re-score fully.
		if s.cfg.MaxFeasible > 0 {
			scores = nil
			continue
		}
		ns, nv, rerr := s.shards[shard].rescoreNodeDetached(ctx, local, spec, opts)
		if rerr != nil {
			return Placed{}, rerr
		}
		scores[pick], vers[pick] = ns, nv
	}
	return s.placeSlow(ctx, spec, opts)
}

// lockAll / unlockAll take and release every shard lock in index order —
// the one canonical order every cross-group operation uses.
func (s *Sharded) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

func (s *Sharded) unlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// decideAllLocked scores the arrival over every shard with all locks
// held and returns the concatenated vector. Callers hold every lock.
func (s *Sharded) decideAllLocked(ctx context.Context, spec *workload.Spec, opts PlaceOptions) ([]nodeScore, error) {
	var all []nodeScore
	for _, sh := range s.shards {
		view, err := sh.captureViewLocked(ctx, spec)
		if err != nil {
			return nil, err
		}
		scores, err := sh.scoreViewDetached(ctx, view, spec, opts)
		if err != nil {
			return nil, err
		}
		all = append(all, scores...)
	}
	return all, nil
}

// placeSlow is the all-locked placement path: deterministic, conflict-
// free, and the only authority allowed to reject an arrival or preempt.
func (s *Sharded) placeSlow(ctx context.Context, spec *workload.Spec, opts PlaceOptions) (Placed, error) {
	s.lockAll()
	defer s.unlockAll()
	scores, err := s.decideAllLocked(ctx, spec, opts)
	if err != nil {
		return Placed{}, err
	}
	pick := s.selector().Pick(scores)
	if pick >= 0 {
		shard, local := s.shardOf(pick)
		sh := s.shards[shard]
		p, err := sh.commitLocked(ctx, spec, opts, local, scores[pick])
		if err != nil {
			sh.discardJournalLocked()
			return Placed{}, err
		}
		sh.flushJournalLocked()
		s.placed.Inc()
		return p, nil
	}
	if opts.Priority > 0 {
		// Shard-local preemption, shards in index order (documented
		// divergence: the unsharded fleet picks the globally cheapest
		// victim; the sharded one the first shard's cheapest).
		for _, sh := range s.shards {
			pp, ok, perr := sh.preemptLocked(ctx, spec, opts)
			if perr != nil {
				sh.discardJournalLocked()
				return Placed{}, perr
			}
			if ok {
				sh.flushJournalLocked()
				s.placed.Inc()
				return pp, nil
			}
		}
	}
	s.rejected.Inc()
	return Placed{}, fmt.Errorf("fleet: %w for %s", ErrFleetFull, spec.Name)
}

// PlaceAll admits a batch transactionally across all shards: every
// instance is admitted or every shard's machines are restored.
func (s *Sharded) PlaceAll(ctx context.Context, specs []*workload.Spec) ([]Placed, error) {
	if err := s.resolveFeatures(ctx, specs); err != nil {
		return nil, err
	}
	s.lockAll()
	defer s.unlockAll()
	var snaps [][]*manager.Snapshot
	for _, sh := range s.shards {
		ss := make([]*manager.Snapshot, len(sh.nodes))
		for i, n := range sh.nodes {
			ss[i] = n.mgr.Snapshot()
		}
		snaps = append(snaps, ss)
	}
	admitted := 0
	rollback := func(cause error) error {
		for si, sh := range s.shards {
			for i, n := range sh.nodes {
				n.mgr.Restore(snaps[si][i])
			}
			sh.discardJournalLocked()
		}
		if errors.Is(cause, ErrFleetFull) {
			s.rejected.Inc()
		}
		if admitted > 0 {
			return fmt.Errorf("fleet: batch rolled back after %d placement(s): %w", admitted, cause)
		}
		return cause
	}
	out := make([]Placed, len(specs))
	for i, spec := range specs {
		if err := ctx.Err(); err != nil {
			return nil, rollback(err)
		}
		scores, err := s.decideAllLocked(ctx, spec, PlaceOptions{})
		if err != nil {
			return nil, rollback(err)
		}
		pick := s.selector().Pick(scores)
		if pick < 0 {
			return nil, rollback(fmt.Errorf("fleet: %w for %s", ErrFleetFull, spec.Name))
		}
		shard, local := s.shardOf(pick)
		p, err := s.shards[shard].commitLocked(ctx, spec, PlaceOptions{}, local, scores[pick])
		if err != nil {
			return nil, rollback(err)
		}
		admitted++
		out[i] = p
	}
	for _, sh := range s.shards {
		sh.flushJournalLocked()
	}
	s.placed.Add(uint64(len(out)))
	return out, nil
}

// PlaceGroup admits one thread-group arrival transactionally across all
// shards, mirroring Fleet.PlaceGroup: the policy shapes the group into
// bundle specs (internal/threads), every member is admitted or every
// shard's machines are restored, and the group member ledger balances
// either way. Under SpreadSharers the sibling anti-affinity preference
// spans the whole fleet (global node indices), so decisions match the
// single-lock fleet whenever both see the same scores.
func (s *Sharded) PlaceGroup(ctx context.Context, g threads.GroupSpec) ([]Placed, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	specs, antiAffinity, err := shapeGroup(s.cfg.Policy, g)
	if err != nil {
		return nil, err
	}
	if err := s.resolveFeatures(ctx, specs); err != nil {
		return nil, err
	}
	members := uint64(g.Threads)
	s.lockAll()
	defer s.unlockAll()
	s.reg.Counter("fleet_group_spawned_members_total").Add(members)
	var snaps [][]*manager.Snapshot
	for _, sh := range s.shards {
		ss := make([]*manager.Snapshot, len(sh.nodes))
		for i, n := range sh.nodes {
			ss[i] = n.mgr.Snapshot()
		}
		snaps = append(snaps, ss)
	}
	admitted := 0
	rollback := func(cause error) error {
		for si, sh := range s.shards {
			for i, n := range sh.nodes {
				n.mgr.Restore(snaps[si][i])
			}
			sh.discardJournalLocked()
		}
		s.reg.Counter("fleet_group_faulted_members_total").Add(members)
		s.reg.Counter("fleet_groups_rejected_total").Inc()
		if errors.Is(cause, ErrFleetFull) {
			s.rejected.Inc()
		}
		if admitted > 0 {
			return fmt.Errorf("fleet: group rolled back after %d member placement(s): %w", admitted, cause)
		}
		return cause
	}
	out := make([]Placed, len(specs))
	used := map[int]bool{}
	for i, spec := range specs {
		if err := ctx.Err(); err != nil {
			return nil, rollback(err)
		}
		scores, err := s.decideAllLocked(ctx, spec, PlaceOptions{})
		if err != nil {
			return nil, rollback(err)
		}
		pick := -1
		if antiAffinity {
			// Prefer nodes no sibling of this arrival occupies; fall back
			// to the plain selector when every admissible node is taken.
			for j, sc := range scores {
				if sc.OK && !used[j] && (pick < 0 || sc.Value < scores[pick].Value) {
					pick = j
				}
			}
		}
		if pick < 0 {
			pick = s.selector().Pick(scores)
		}
		if pick < 0 {
			return nil, rollback(fmt.Errorf("fleet: %w for %s", ErrFleetFull, spec.Name))
		}
		shard, local := s.shardOf(pick)
		p, err := s.shards[shard].commitLocked(ctx, spec, PlaceOptions{}, local, scores[pick])
		if err != nil {
			return nil, rollback(err)
		}
		used[pick] = true
		admitted++
		out[i] = p
	}
	for _, sh := range s.shards {
		sh.flushJournalLocked()
	}
	s.placed.Add(uint64(len(out)))
	s.reg.Counter("fleet_group_placed_members_total").Add(members)
	s.reg.Counter("fleet_groups_placed_total").Inc()
	return out, nil
}

// Submit enqueues an arrival; SubmitWith adds a priority class. The
// returned ticket cancels the submission.
func (s *Sharded) Submit(spec *workload.Spec, tag string) (int, error) {
	return s.SubmitWith(spec, tag, 0)
}

// SubmitWith is Submit with a priority class.
func (s *Sharded) SubmitWith(spec *workload.Spec, tag string, priority int) (int, error) {
	q := s.queue
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.cap <= 0 || len(q.entries) >= q.cap {
		s.qRejected.Inc()
		return 0, fmt.Errorf("fleet: %w (cap %d) for %s", ErrQueueFull, q.cap, spec.Name)
	}
	q.seq++
	q.entries = append(q.entries, shardedQueued{spec: spec, tag: tag, ticket: q.seq, priority: priority})
	s.qSubmitted.Inc()
	s.journal([]wal.Event{{Type: wal.EvSubmitted, Bench: spec.Name, Tag: tag, Priority: priority, Ticket: q.seq}})
	return q.seq, nil
}

// CancelQueued withdraws a pending submission. A committing entry — its
// placement commit already in flight on a shard — reports false: that
// process will land placed, so cancel-vs-pump stays unambiguous.
func (s *Sharded) CancelQueued(ticket int) bool {
	q := s.queue
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, e := range q.entries {
		if e.ticket != ticket {
			continue
		}
		if e.committing {
			return false
		}
		q.entries = append(q.entries[:i], q.entries[i+1:]...)
		s.qAbandoned.Inc()
		s.journal([]wal.Event{{Type: wal.EvCancelled, Ticket: ticket}})
		return true
	}
	return false
}

// QueueDepth returns the number of pending arrivals.
func (s *Sharded) QueueDepth() int {
	s.queue.mu.Lock()
	defer s.queue.mu.Unlock()
	return len(s.queue.entries)
}

// QueuedInfo snapshots the sharded admission queue in queue order.
func (s *Sharded) QueuedInfo() []QueuedEntry {
	s.queue.mu.Lock()
	defer s.queue.mu.Unlock()
	out := make([]QueuedEntry, len(s.queue.entries))
	for i, e := range s.queue.entries {
		out[i] = QueuedEntry{Workload: e.spec.Name, Tag: e.tag, Ticket: e.ticket, Priority: e.priority, Eligible: true}
	}
	return out
}

// headLocked picks the pump head (highest priority class, FIFO within a
// class), skipping committing entries. Queue lock held.
func (q *shardedQueue) headLocked() int {
	head := -1
	for i, e := range q.entries {
		if e.committing {
			continue
		}
		if head < 0 || e.priority > q.entries[head].priority {
			head = i
		}
	}
	return head
}

func (q *shardedQueue) indexOf(ticket int) int {
	for i, e := range q.entries {
		if e.ticket == ticket {
			return i
		}
	}
	return -1
}

// dropTicket removes a queued entry after a non-capacity failure,
// mirroring the unsharded pump's drop accounting. A committing entry is
// left alone: its in-flight commit owns the disposition.
func (s *Sharded) dropTicket(ticket int) {
	q := s.queue
	q.mu.Lock()
	if idx := q.indexOf(ticket); idx >= 0 && !q.entries[idx].committing {
		q.entries = append(q.entries[:idx], q.entries[idx+1:]...)
		s.qDropped.Inc()
		s.journal([]wal.Event{{Type: wal.EvDropped, Ticket: ticket}})
	}
	q.mu.Unlock()
}

// pumpFastOutcome enumerates pumpFast's results.
type pumpFastOutcome int

const (
	pumpPlaced pumpFastOutcome = iota // committed; the Placed is valid
	pumpGone                          // head dropped or cancelled: next head
	pumpFull                          // no feasible slot (or attempts spent): confirm via pumpSlow
)

// pumpFast runs the optimistic commit attempts for one queue head
// against its scored vector; conflicts refresh only the conflicted
// node's entry (see PlaceWith) and re-pick.
func (s *Sharded) pumpFast(ctx context.Context, e shardedQueued, opts PlaceOptions, scores []nodeScore, vers []uint64) (Placed, pumpFastOutcome) {
	q := s.queue
	for attempt := 0; attempt < placeAttempts; attempt++ {
		pick := s.selector().Pick(scores)
		if pick < 0 {
			return Placed{}, pumpFull
		}

		// Mark committing before touching the shard: a concurrent cancel
		// must see the claim (and a cancel that won first wins).
		q.mu.Lock()
		idx := q.indexOf(e.ticket)
		if idx < 0 {
			q.mu.Unlock()
			return Placed{}, pumpGone
		}
		q.entries[idx].committing = true
		q.mu.Unlock()

		shard, local := s.shardOf(pick)
		p, ok, cerr := s.shards[shard].commitScored(ctx, e.spec, opts, local, scores[pick], vers[pick])

		q.mu.Lock()
		idx = q.indexOf(e.ticket)
		switch {
		case cerr != nil:
			if idx >= 0 {
				q.entries = append(q.entries[:idx], q.entries[idx+1:]...)
				s.qDropped.Inc()
				s.journal([]wal.Event{{Type: wal.EvDropped, Ticket: e.ticket}})
			}
			q.mu.Unlock()
			return Placed{}, pumpGone
		case ok:
			if idx >= 0 {
				q.entries = append(q.entries[:idx], q.entries[idx+1:]...)
			}
			s.placed.Inc()
			s.qAdmitted.Inc()
			q.mu.Unlock()
			p.Tag = e.tag
			return p, pumpPlaced
		default:
			// Version conflict: release the claim, refresh the conflicted
			// node, re-pick. A MaxFeasible cut cannot refresh per-node.
			if idx >= 0 {
				q.entries[idx].committing = false
			}
			s.conflicts.Inc()
			q.mu.Unlock()
			if s.cfg.MaxFeasible > 0 {
				return Placed{}, pumpFull
			}
			ns, nv, rerr := s.shards[shard].rescoreNodeDetached(ctx, local, e.spec, opts)
			if rerr != nil {
				s.dropTicket(e.ticket)
				return Placed{}, pumpGone
			}
			scores[pick], vers[pick] = ns, nv
		}
	}
	return Placed{}, pumpFull
}

// Pump tries to admit queued arrivals in admission order, stopping at
// the first head that fits nowhere. Scoring runs without any lock held
// across the solves; a cancelled context returns with every unplaced
// entry still queued.
func (s *Sharded) Pump(ctx context.Context) ([]Placed, error) {
	var pending []*workload.Spec
	q := s.queue
	q.mu.Lock()
	for _, e := range q.entries {
		pending = append(pending, e.spec)
	}
	q.mu.Unlock()
	if err := s.resolveFeatures(ctx, pending); err != nil {
		return nil, err
	}
	var out []Placed
	for {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		q.mu.Lock()
		head := q.headLocked()
		if head < 0 {
			q.mu.Unlock()
			return out, nil
		}
		e := q.entries[head]
		q.mu.Unlock()

		opts := PlaceOptions{Tag: e.tag, Priority: e.priority, ticket: e.ticket}
		scores, vers, err := s.scoreAll(ctx, e.spec, opts)
		if err != nil {
			// Non-capacity failure: drop the head like the unsharded pump.
			s.dropTicket(e.ticket)
			continue
		}
		p, outcome := s.pumpFast(ctx, e, opts, scores, vers)
		switch outcome {
		case pumpPlaced:
			out = append(out, p)
			continue
		case pumpGone:
			continue
		}
		// pumpFull: confirm under every shard lock (preempting for
		// positive classes); a confirmed-full head blocks the queue.
		p, ok, serr := s.pumpSlow(ctx, e, opts)
		if serr != nil {
			s.dropTicket(e.ticket)
			continue
		}
		if !ok {
			// Confirmed full for this head: strict head-of-line.
			return out, nil
		}
		out = append(out, p)
	}
}

// pumpSlow confirms a no-fit head under all shard locks, preempting for
// positive classes. ok=false means confirmed full (head blocks).
func (s *Sharded) pumpSlow(ctx context.Context, e shardedQueued, opts PlaceOptions) (Placed, bool, error) {
	// Claim the entry so a concurrent cancel cannot race the commit.
	q := s.queue
	q.mu.Lock()
	idx := q.indexOf(e.ticket)
	if idx < 0 {
		q.mu.Unlock()
		return Placed{}, false, nil
	}
	q.entries[idx].committing = true
	q.mu.Unlock()
	release := func(remove, admitted bool) {
		q.mu.Lock()
		if i := q.indexOf(e.ticket); i >= 0 {
			if remove {
				q.entries = append(q.entries[:i], q.entries[i+1:]...)
			} else {
				q.entries[i].committing = false
			}
		}
		if admitted {
			s.placed.Inc()
			s.qAdmitted.Inc()
		}
		q.mu.Unlock()
	}

	s.lockAll()
	scores, err := s.decideAllLocked(ctx, e.spec, opts)
	if err != nil {
		s.unlockAll()
		release(false, false)
		return Placed{}, false, err
	}
	pick := s.selector().Pick(scores)
	if pick >= 0 {
		shard, local := s.shardOf(pick)
		sh := s.shards[shard]
		p, cerr := sh.commitLocked(ctx, e.spec, opts, local, scores[pick])
		if cerr != nil {
			sh.discardJournalLocked()
			s.unlockAll()
			release(false, false)
			return Placed{}, false, cerr
		}
		sh.flushJournalLocked()
		s.unlockAll()
		release(true, true)
		p.Tag = e.tag
		return p, true, nil
	}
	if opts.Priority > 0 {
		for _, sh := range s.shards {
			pp, ok, perr := sh.preemptLocked(ctx, e.spec, opts)
			if perr != nil {
				sh.discardJournalLocked()
				s.unlockAll()
				release(false, false)
				return Placed{}, false, perr
			}
			if ok {
				sh.flushJournalLocked()
				s.unlockAll()
				release(true, true)
				pp.Tag = e.tag
				return pp, true, nil
			}
		}
	}
	s.unlockAll()
	release(false, false)
	return Placed{}, false, nil
}

// Remove evicts the named instance from the named node and pumps the
// sharded queue into the freed capacity.
func (s *Sharded) Remove(ctx context.Context, nodeName, instance string) ([]Placed, error) {
	si, ok := s.byName[nodeName]
	if !ok {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownNode, nodeName)
	}
	// The shard's own queue is empty, so its internal pump is a no-op;
	// admissions come from the sharded queue below.
	if _, err := s.shards[si].Remove(ctx, nodeName, instance); err != nil {
		return nil, err
	}
	return s.Pump(ctx)
}

// FailNode marks a machine lost on its shard (evicting residents);
// RestoreNode brings it back and pumps the queue.
func (s *Sharded) FailNode(name string) ([]manager.Resident, error) {
	si, ok := s.byName[name]
	if !ok {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownNode, name)
	}
	return s.shards[si].FailNode(name)
}

// RestoreNode brings a down machine back and pumps the sharded queue.
func (s *Sharded) RestoreNode(ctx context.Context, name string) ([]Placed, error) {
	si, ok := s.byName[name]
	if !ok {
		return nil, fmt.Errorf("fleet: %w %q", ErrUnknownNode, name)
	}
	if _, err := s.shards[si].RestoreNode(ctx, name); err != nil {
		return nil, err
	}
	return s.Pump(ctx)
}

// State reports the fleet-wide view: shard states concatenate in shard
// order (= global node order) plus the sharded queue.
func (s *Sharded) State(ctx context.Context) (*State, error) {
	st := &State{Policy: s.cfg.Policy.String()}
	for _, sh := range s.shards {
		ss, err := sh.State(ctx)
		if err != nil {
			return nil, err
		}
		st.Nodes = append(st.Nodes, ss.Nodes...)
		st.Residents += ss.Residents
		st.TotalWatts += ss.TotalWatts
		st.TotalPredictedSPI += ss.TotalPredictedSPI
	}
	s.queue.mu.Lock()
	st.QueueDepth = len(s.queue.entries)
	for _, e := range s.queue.entries {
		st.Queued = append(st.Queued, e.spec.Name)
	}
	s.queue.mu.Unlock()
	// The shared ledger reports once at the sharded layer (the per-shard
	// states' copies are not aggregated — each shard would repeat the
	// same fleet-wide numbers).
	if cap := s.capL.capWatts(); cap > 0 {
		st.PowerCap = cap
		st.CapUsage = s.capL.usage()
	}
	return st, nil
}

// PowerCap returns the active fleet-wide watt budget (0 = uncapped).
func (s *Sharded) PowerCap() float64 { return s.capL.capWatts() }

// CapUsage returns the shared ledger's current fleet draw estimate.
func (s *Sharded) CapUsage() float64 { return s.capL.usage() }

// SetPowerCap sets (watts > 0) or clears (watts == 0) the fleet-wide
// power budget. Every shard's ledger rows are re-synced under all shard
// locks, so the budget starts measured against current reality.
func (s *Sharded) SetPowerCap(ctx context.Context, watts float64) error {
	if watts < 0 {
		return fmt.Errorf("fleet: negative power cap %v", watts)
	}
	s.lockAll()
	defer s.unlockAll()
	for _, sh := range s.shards {
		// Each call sets the SAME shared ledger's budget (idempotent) and
		// re-syncs that shard's own rows.
		if err := sh.setPowerCapLocked(ctx, watts); err != nil {
			return err
		}
	}
	return nil
}

// EnforceCap brings the sharded fleet back under its watt budget under
// every shard lock. Enforcement actions are shard-local (down-clocks are
// per-node anyway; migrations stay within a shard — a documented
// divergence from the unsharded fleet, like preemption victim choice),
// but the budget they enforce is the shared fleet-wide ledger total, so
// shards in index order shed watts until the whole fleet fits.
func (s *Sharded) EnforceCap(ctx context.Context) (CapReport, error) {
	s.lockAll()
	defer s.unlockAll()
	agg := CapReport{Cap: s.capL.capWatts(), Satisfied: true}
	if agg.Cap == 0 {
		return agg, nil
	}
	for i, sh := range s.shards {
		rep, err := sh.enforceCapLocked(ctx)
		if err != nil {
			return CapReport{}, err
		}
		if i == 0 {
			agg.WattsBefore = rep.WattsBefore
		}
		agg.WattsAfter = rep.WattsAfter
		agg.Downclocks += rep.Downclocks
		agg.Migrations += rep.Migrations
		agg.Moves = append(agg.Moves, rep.Moves...)
		agg.Satisfied = rep.Satisfied
		if rep.Satisfied {
			break
		}
	}
	return agg, nil
}

// FreqStates reports every node's current DVFS rung, keyed by node name.
func (s *Sharded) FreqStates() map[string]int {
	out := map[string]int{}
	for _, sh := range s.shards {
		for name, ix := range sh.FreqStates() {
			out[name] = ix
		}
	}
	return out
}

// Totals sums the shards' predicted SPI and watts.
func (s *Sharded) Totals(ctx context.Context) (spi, watts float64, err error) {
	for _, sh := range s.shards {
		sp, w, terr := sh.Totals(ctx)
		if terr != nil {
			return 0, 0, terr
		}
		spi += sp
		watts += w
	}
	return spi, watts, nil
}

// Inspect concatenates every shard's inspection in global node order.
// Rows are per-shard-consistent; cross-shard consistency requires the
// caller to quiesce traffic first (recovery verification does).
func (s *Sharded) Inspect() []NodeInspection {
	var out []NodeInspection
	for _, sh := range s.shards {
		out = append(out, sh.Inspect()...)
	}
	return out
}

// Rebalance finds the single best cross-machine move fleet-wide — source
// and destination may live on different shards — and executes it under
// every shard lock, taken in index order.
func (s *Sharded) Rebalance(ctx context.Context, minImprovement float64) (Move, error) {
	// Warm the shared feature cache for every (kind, resident) pair.
	var specs []*workload.Spec
	for _, sh := range s.shards {
		for _, ni := range sh.Inspect() {
			for _, r := range ni.Residents {
				specs = append(specs, r.Spec)
			}
		}
	}
	if err := s.resolveFeatures(ctx, specs); err != nil {
		return Move{}, err
	}

	s.lockAll()
	defer s.unlockAll()

	if s.cfg.Intercept != nil {
		if err := s.cfg.Intercept("fleet.rebalance", ""); err != nil {
			return Move{}, err
		}
	}

	// Flatten the cluster into (shard, node) rows in global order.
	type row struct {
		sh *Fleet
		n  *node
	}
	var rows []row
	for _, sh := range s.shards {
		for _, n := range sh.nodes {
			if !n.down {
				sh.assignmentOf(n) // warm snapshots serially (see Fleet.Rebalance)
			}
			rows = append(rows, row{sh, n})
		}
	}
	base, err := parallel.Map(ctx, s.cfg.Workers, len(rows), func(i int) (float64, error) {
		r := rows[i]
		if r.n.down {
			return 0, nil
		}
		return r.sh.nodeSPI(ctx, r.n.cfg.Machine, r.sh.assignmentOf(r.n))
	})
	if err != nil {
		return Move{}, err
	}
	baseTotal := 0.0
	for _, b := range base {
		baseTotal += b
	}

	type gcand struct {
		src, dst, dstCore int
		res               manager.Resident
	}
	residents := make([][]manager.Resident, len(rows))
	for i, r := range rows {
		if r.n.down {
			continue
		}
		residents[i] = r.n.mgr.Residents()
	}
	var cands []gcand
	for i := range rows {
		for _, r := range residents[i] {
			for j, dstRow := range rows {
				if j == i || dstRow.n.down {
					continue
				}
				running := dstRow.n.mgr.Running()
				for c := 0; c < dstRow.n.cfg.Machine.NumCores; c++ {
					if dstRow.n.cfg.MaxPerCore != 0 && len(running[c]) >= dstRow.n.cfg.MaxPerCore {
						continue
					}
					cands = append(cands, gcand{src: i, dst: j, dstCore: c, res: r})
				}
			}
		}
	}
	if len(cands) == 0 {
		return Move{}, fmt.Errorf("fleet: %w: no movable process", manager.ErrNoImprovement)
	}

	totals, err := parallel.Map(ctx, s.cfg.Workers, len(cands), func(k int) (float64, error) {
		cd := cands[k]
		srcRow, dstRow := rows[cd.src], rows[cd.dst]
		srcAfter, err := srcRow.sh.nodeSPI(ctx, srcRow.n.cfg.Machine,
			withoutResident(srcRow.sh.assignmentOf(srcRow.n), cd.res))
		if err != nil {
			return 0, err
		}
		feat, err := dstRow.sh.feats.get(ctx, dstRow.n.cfg.Machine, cd.res.Spec)
		if err != nil {
			return 0, err
		}
		dstAfter, err := dstRow.sh.nodeSPI(ctx, dstRow.n.cfg.Machine,
			withAdditionShared(dstRow.sh.assignmentOf(dstRow.n), feat, cd.dstCore))
		if err != nil {
			return 0, err
		}
		return baseTotal - base[cd.src] - base[cd.dst] + srcAfter + dstAfter, nil
	})
	if err != nil {
		return Move{}, err
	}
	best := 0
	for k := range totals {
		if totals[k] < totals[best] {
			best = k
		}
	}
	improvement := baseTotal - totals[best]
	if improvement <= minImprovement || improvement <= 0 {
		return Move{}, fmt.Errorf("fleet: %w: best move saves %.4g SPI (threshold %.4g)",
			manager.ErrNoImprovement, improvement, minImprovement)
	}

	cd := cands[best]
	srcRow, dstRow := rows[cd.src], rows[cd.dst]
	capMove := s.capL.capWatts() > 0
	var srcW, dstW float64
	if capMove {
		// Same budget check as Fleet.Rebalance: the priced post-move draws
		// double as the ledger rows after execution.
		srcWU, err := srcRow.n.cm.EstimateAssignmentContext(ctx, withoutResident(srcRow.sh.assignmentOf(srcRow.n), cd.res))
		if err != nil {
			return Move{}, err
		}
		feat, err := dstRow.sh.feats.get(ctx, dstRow.n.cfg.Machine, cd.res.Spec)
		if err != nil {
			return Move{}, err
		}
		dstWU, err := dstRow.n.cm.EstimateAdditionContext(ctx, dstRow.sh.assignmentOf(dstRow.n), feat, cd.dstCore)
		if err != nil {
			return Move{}, err
		}
		srcW = freq.ScaleWatts(srcWU, staticWatts(srcRow.n), dynScaleOf(srcRow.n))
		dstW = freq.ScaleWatts(dstWU, staticWatts(dstRow.n), dynScaleOf(dstRow.n))
		next := s.capL.usage() - s.capL.nodeWatts(srcRow.n.cfg.Name) - s.capL.nodeWatts(dstRow.n.cfg.Name) + srcW + dstW
		if cap := s.capL.capWatts(); next > cap {
			return Move{}, fmt.Errorf("fleet: %w: best move needs %.4g W against a %.4g W cap",
				manager.ErrNoImprovement, next, cap)
		}
	}
	srcSnap, dstSnap := srcRow.n.mgr.Snapshot(), dstRow.n.mgr.Snapshot()
	rollback := func(cause error) error {
		srcRow.n.mgr.Restore(srcSnap)
		dstRow.n.mgr.Restore(dstSnap)
		return fmt.Errorf("fleet: rebalance rolled back: %w", cause)
	}
	if err := srcRow.n.mgr.Remove(cd.res.Name); err != nil {
		return Move{}, rollback(err)
	}
	newName, _, err := dstRow.n.mgr.PlaceAt(ctx, cd.res.Spec, cd.dstCore)
	if err != nil {
		return Move{}, rollback(err)
	}
	var meta residentMeta
	if m, ok := srcRow.n.meta[cd.res.Name]; ok {
		meta = m
		delete(srcRow.n.meta, cd.res.Name)
		if dstRow.n.meta == nil {
			dstRow.n.meta = map[string]residentMeta{}
		}
		dstRow.n.meta[newName] = m
	}
	srcRow.sh.version++
	dstRow.sh.version++
	srcRow.n.version++
	dstRow.n.version++
	if capMove {
		s.capL.setNode(srcRow.n.cfg.Name, srcW)
		s.capL.setNode(dstRow.n.cfg.Name, dstW)
		// Re-anchor on the canonical whole-assignment estimate (the target
		// was priced via the addition path — last-ulp hazard vs a fresh
		// resync); a failure keeps the priced values.
		_ = srcRow.sh.resyncNodeCapLocked(ctx, srcRow.n)
		_ = dstRow.sh.resyncNodeCapLocked(ctx, dstRow.n)
	}
	s.journal([]wal.Event{
		{Type: wal.EvDeparted, Node: srcRow.n.cfg.Name, Name: cd.res.Name},
		{Type: wal.EvAdmitted, Node: dstRow.n.cfg.Name, Name: newName, Core: cd.dstCore,
			Bench: cd.res.Spec.Name, Tag: meta.tag, Priority: meta.priority},
	})
	return Move{
		From:        srcRow.n.cfg.Name,
		To:          dstRow.n.cfg.Name,
		Name:        cd.res.Name,
		NewName:     newName,
		Workload:    cd.res.Spec.Name,
		Core:        cd.dstCore,
		SPIBefore:   baseTotal,
		SPIAfter:    totals[best],
		Improvement: improvement,
	}, nil
}

// Recover reinstates a WAL-recovered state: residents and down markers
// route to their shards (each adopted in global admission order), the
// queue and ticket source to the sharded layer.
func (s *Sharded) Recover(ctx context.Context, st *wal.State) error {
	subs := make([]*wal.State, len(s.shards))
	for i := range subs {
		subs[i] = &wal.State{}
	}
	for _, name := range st.Down {
		si, ok := s.byName[name]
		if !ok {
			return fmt.Errorf("fleet: %w %q in recovered state", ErrUnknownNode, name)
		}
		subs[si].Down = append(subs[si].Down, name)
	}
	for _, r := range st.Residents {
		si, ok := s.byName[r.Node]
		if !ok {
			return fmt.Errorf("fleet: %w %q in recovered state", ErrUnknownNode, r.Node)
		}
		subs[si].Residents = append(subs[si].Residents, r)
	}
	for name, rung := range st.Freq {
		si, ok := s.byName[name]
		if !ok {
			return fmt.Errorf("fleet: %w %q in recovered frequency state", ErrUnknownNode, name)
		}
		if subs[si].Freq == nil {
			subs[si].Freq = map[string]int{}
		}
		subs[si].Freq[name] = rung
	}
	for i, sh := range s.shards {
		if err := sh.Recover(ctx, subs[i]); err != nil {
			return err
		}
	}
	q := s.queue
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.entries) > 0 {
		return errors.New("fleet: recover with a non-empty queue")
	}
	for _, qe := range st.Queue {
		spec := threads.ResolveSpec(qe.Bench)
		if spec == nil {
			return fmt.Errorf("fleet: recovered ticket %d names unknown workload %q", qe.Ticket, qe.Bench)
		}
		q.entries = append(q.entries, shardedQueued{spec: spec, tag: qe.Tag, ticket: qe.Ticket, priority: qe.Priority})
		// Credit the recovered entry as a submission so the queue ledger
		// balances from this process's first scrape.
		s.qSubmitted.Inc()
	}
	if st.Seq > q.seq {
		q.seq = st.Seq
	}
	return nil
}

// collectGauges mirrors Fleet.collectGauges across every shard plus the
// sharded queue depth and shard count.
func (s *Sharded) collectGauges(r *metrics.Registry) {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, n := range sh.nodes {
			if n.down {
				r.Gauge(fmt.Sprintf("fleet_machine_residents{node=%q}", n.cfg.Name)).Set(0)
				r.Gauge(fmt.Sprintf("fleet_machine_free_slots{node=%q}", n.cfg.Name)).Set(0)
				r.Gauge(fmt.Sprintf("fleet_machine_milliwatts{node=%q}", n.cfg.Name)).Set(0)
				continue
			}
			running := n.mgr.Running()
			count := 0
			for _, names := range running {
				count += len(names)
			}
			total += count
			r.Gauge(fmt.Sprintf("fleet_machine_residents{node=%q}", n.cfg.Name)).Set(int64(count))
			free := int64(-1)
			if n.cfg.MaxPerCore > 0 {
				free = int64(n.cfg.MaxPerCore*n.cfg.Machine.NumCores - count)
			}
			r.Gauge(fmt.Sprintf("fleet_machine_free_slots{node=%q}", n.cfg.Name)).Set(free)
			mw := int64(-1)
			if w, err := n.cm.EstimateAssignment(n.mgr.Assignment()); err == nil {
				mw = int64(freq.ScaleWatts(w, staticWatts(n), dynScaleOf(n)) * 1000)
			}
			r.Gauge(fmt.Sprintf("fleet_machine_milliwatts{node=%q}", n.cfg.Name)).Set(mw)
			if n.freqIx != n.cfg.Machine.Freq.BaseIx() {
				r.Gauge(fmt.Sprintf("fleet_machine_freq_state{node=%q}", n.cfg.Name)).Set(int64(n.freqIx + 1))
			}
		}
		sh.mu.Unlock()
	}
	r.Gauge("fleet_residents").Set(int64(total))
	r.Gauge("fleet_queue_depth").Set(int64(s.QueueDepth()))
	r.Gauge("fleet_machines").Set(int64(len(s.byName)))
	r.Gauge("fleet_shards").Set(int64(len(s.shards)))
	if cap := s.capL.capWatts(); cap > 0 {
		r.Gauge("fleet_power_cap_milliwatts").Set(int64(cap * 1000))
		r.Gauge("fleet_cap_usage_milliwatts").Set(int64(s.capL.usage() * 1000))
	}
}
