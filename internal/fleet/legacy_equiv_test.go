package fleet

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mpmc/internal/machine"
	"mpmc/internal/parallel"
	"mpmc/internal/threads"
	"mpmc/internal/workload"
)

// This file is the pipeline-refactor equivalence sweep: the pre-refactor
// placement logic — the policy switch that used to live in
// commitBestLocked and the rotation loop that was placeSpreadLocked —
// is embedded here verbatim (modulo the nodeScore field renames) and run
// in lockstep against the sched-pipeline scheduler over randomized
// fleets and traces. Both schedulers share one Fleet's caches and state:
// the legacy placer decides, the decision is compared against the
// pipeline's, and only the pipeline's commit mutates the fleet, so any
// divergence is caught at the exact event that produced it.

// legacyDecide reproduces the pre-refactor scoring fan-out and reduction
// for the three model policies. Caller holds f.mu.
func legacyDecide(ctx context.Context, f *Fleet, spec *workload.Spec) (best int, s nodeScore, err error) {
	scores, err := parallel.Map(ctx, f.cfg.Workers, len(f.nodes), func(i int) (nodeScore, error) {
		if f.nodes[i].down {
			return nodeScore{}, nil
		}
		return f.scoreNode(ctx, f.nodes[i], spec)
	})
	if err != nil {
		return -1, nodeScore{}, err
	}
	best = -1
	switch f.cfg.Policy {
	// The sharer-aware policies reuse the model prioritizer with
	// MinValue; at T=1 (no group shaping) they must decide exactly like
	// LeastDegradation did pre-refactor.
	case LeastDegradation, LeastWatts, ColocateSharers, SpreadSharers:
		for i, sc := range scores {
			if sc.OK && (best < 0 || sc.Value < scores[best].Value) {
				best = i
			}
		}
	case BinPack:
		for i, sc := range scores {
			if sc.OK && sc.Rel <= f.cfg.BinPackCeiling {
				best = i
				break
			}
		}
		if best < 0 {
			for i, sc := range scores {
				if sc.OK && (best < 0 || sc.Rel < scores[best].Rel) {
					best = i
				}
			}
		}
	case LeastEnergy, CapAware:
		// The frequency-aware policies reduce exactly like the model
		// policies: strict less-than over node order on the per-node best
		// (core, state) value.
		for i, sc := range scores {
			if sc.OK && (best < 0 || sc.Value < scores[best].Value) {
				best = i
			}
		}
	default:
		return -1, nodeScore{}, errUnknownPolicy(f.cfg.Policy)
	}
	if best < 0 {
		return -1, nodeScore{}, nil
	}
	return best, scores[best], nil
}

// decideColdAs scores every node from scratch under an arbitrary policy
// (bypassing the decision memo, so nothing is poisoned for the fleet's
// real policy) and reduces with the model policies' strict less-than.
// Caller holds f.mu.
func decideColdAs(ctx context.Context, f *Fleet, spec *workload.Spec, policy Policy) (best int, s nodeScore, err error) {
	old := f.cfg.Policy
	f.cfg.Policy = policy
	defer func() { f.cfg.Policy = old }()
	best = -1
	for i, n := range f.nodes {
		if n.down {
			continue
		}
		feat, err := f.feats.get(ctx, n.cfg.Machine, spec)
		if err != nil {
			return -1, nodeScore{}, err
		}
		sc, err := f.scoreNodeCold(ctx, n, feat, f.assignmentOf(n), n.freqIx)
		if err != nil {
			return -1, nodeScore{}, err
		}
		if sc.OK && (best < 0 || sc.Value < s.Value) {
			best, s = i, sc
		}
	}
	return best, s, nil
}

// legacySpreadDecide reproduces the pre-refactor placeSpreadLocked scan:
// machines in rotation from the cursor, least-loaded admissible core
// (ties to the lowest index) within the first admissible machine.
func legacySpreadDecide(f *Fleet) (best, bestCore int) {
	nn := len(f.nodes)
	for tries := 0; tries < nn; tries++ {
		i := (f.rrNode + tries) % nn
		n := f.nodes[i]
		if n.down {
			continue
		}
		running := n.mgr.Running()
		core, load := -1, 0
		for c := 0; c < n.cfg.Machine.NumCores; c++ {
			if n.cfg.MaxPerCore != 0 && len(running[c]) >= n.cfg.MaxPerCore {
				continue
			}
			if core < 0 || len(running[c]) < load {
				core, load = c, len(running[c])
			}
		}
		if core < 0 {
			continue
		}
		return i, core
	}
	return -1, -1
}

func equivFleet(t *testing.T, r *rand.Rand, policy Policy, cacheCap int) *Fleet {
	t.Helper()
	pm := testPower(t)
	kinds := []func() *machine.Machine{
		machine.TwoCoreWorkstation, machine.TwoCoreLaptop, machine.FourCoreServer,
	}
	nNodes := 2 + r.Intn(3)
	nodes := make([]NodeConfig, nNodes)
	for i := range nodes {
		nodes[i] = NodeConfig{
			Machine:    kinds[r.Intn(len(kinds))](),
			Power:      pm,
			MaxPerCore: 1 + r.Intn(2),
		}
	}
	f, err := New(Config{
		Nodes:         nodes,
		Policy:        policy,
		QueueCap:      4,
		Seed:          uint64(r.Int63()),
		Workers:       1 + r.Intn(3),
		ScoreCacheCap: cacheCap,
		Profile:       oracle(nil, 0),
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	return f
}

// runEquivSweep drives one randomized trace through one fleet, deciding
// every arrival with both schedulers and failing on the first divergence.
func runEquivSweep(t *testing.T, seed int64, cacheCap int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	// The rotation covers the four legacy policies, both sharer-aware
	// ones (at T=1 the latter must be indistinguishable from the legacy
	// model path, and half their arrivals go through PlaceGroup to pin
	// that a single-thread group IS a legacy Place), and both
	// frequency-aware ones — on these uncapped, base-state, out-of-order
	// fleets cap-aware must decide bit-identically to least-degradation
	// and neither may ever emit a below-base frequency target.
	pols := append(Policies(), ColocateSharers, SpreadSharers, LeastEnergy, CapAware)
	policy := pols[int(seed)%len(pols)]
	f := equivFleet(t, r, policy, cacheCap)
	ctx := context.Background()
	suite := workload.Suite()
	type placedRef struct{ node, name string }
	var residents []placedRef

	events := 25 + r.Intn(15)
	for ev := 0; ev < events; ev++ {
		switch op := r.Intn(10); {
		case op < 6: // arrival
			spec := suite[r.Intn(len(suite))]
			if err := f.resolveFeatures(ctx, []*workload.Spec{spec}); err != nil {
				t.Fatalf("seed %d ev %d: resolve: %v", seed, ev, err)
			}
			f.mu.Lock()
			var wantNode, wantCore int
			var wantScore float64
			if policy == Spread {
				wantNode, wantCore = legacySpreadDecide(f)
			} else {
				b, s, err := legacyDecide(ctx, f, spec)
				if err != nil {
					f.mu.Unlock()
					t.Fatalf("seed %d ev %d: legacy decide: %v", seed, ev, err)
				}
				wantNode, wantCore, wantScore = b, s.Core, s.Value
				if policy == CapAware {
					// Uncapped on all-out-of-order machines at base state,
					// cap-aware IS least-degradation: same node, core, and
					// bit-identical value, with the winner pinned to base.
					lb, ls, err := decideColdAs(ctx, f, spec, LeastDegradation)
					if err != nil {
						f.mu.Unlock()
						t.Fatalf("seed %d ev %d: LD decide: %v", seed, ev, err)
					}
					if lb != b || (b >= 0 && (ls.Core != s.Core || math.Float64bits(ls.Value) != math.Float64bits(s.Value))) {
						f.mu.Unlock()
						t.Fatalf("seed %d ev %d: uncapped cap-aware chose node %d core %d value %v; least-degradation node %d core %d value %v",
							seed, ev, b, s.Core, s.Value, lb, ls.Core, ls.Value)
					}
				}
				// Uncapped cap-aware never leaves base (lower rungs only
				// inflate the SPI it minimizes); least-energy MAY volunteer
				// a down-clock — that freedom is its whole point — so only
				// cap-aware pins the rung.
				if policy == CapAware && b >= 0 {
					if base := f.nodes[b].cfg.Machine.Freq.BaseIx(); s.Freq != base+1 {
						f.mu.Unlock()
						t.Fatalf("seed %d ev %d: %s emitted frequency target %d (base rung %d) with no cap",
							seed, ev, policy, s.Freq, base)
					}
				}
			}
			var got Placed
			var err error
			if policy.GroupAware() && ev%2 == 1 {
				// Route through the group path as a T=1 group: shapeGroup
				// returns the base spec untouched, so the decision must be
				// bit-identical to a legacy Place of the same spec.
				f.mu.Unlock()
				var ps []Placed
				ps, err = f.PlaceGroup(ctx, threads.GroupSpec{Base: spec, Threads: 1})
				if err == nil {
					got = ps[0]
				}
			} else {
				got, err = f.placeOneLocked(ctx, spec, PlaceOptions{})
				f.mu.Unlock()
			}
			if wantNode < 0 {
				if err == nil {
					t.Fatalf("seed %d ev %d: pipeline placed %s where legacy found the fleet full", seed, ev, spec.Name)
				}
				continue
			}
			if err != nil {
				t.Fatalf("seed %d ev %d: pipeline rejected %s where legacy chose node %d: %v",
					seed, ev, spec.Name, wantNode, err)
			}
			if got.Node != f.nodes[wantNode].cfg.Name || got.Core != wantCore {
				t.Fatalf("seed %d ev %d (%s, %s): pipeline chose %s/core%d, legacy %s/core%d",
					seed, ev, policy, spec.Name, got.Node, got.Core, f.nodes[wantNode].cfg.Name, wantCore)
			}
			if policy != Spread && (got.Score != wantScore && !(math.IsNaN(got.Score) && math.IsNaN(wantScore))) {
				t.Fatalf("seed %d ev %d: score %v != legacy %v (must be bit-identical)", seed, ev, got.Score, wantScore)
			}
			residents = append(residents, placedRef{got.Node, got.Name})
		case op < 9: // departure
			if len(residents) == 0 {
				continue
			}
			i := r.Intn(len(residents))
			ref := residents[i]
			residents = append(residents[:i], residents[i+1:]...)
			if _, err := f.Remove(ctx, ref.node, ref.name); err != nil {
				t.Fatalf("seed %d ev %d: remove %s/%s: %v", seed, ev, ref.node, ref.name, err)
			}
		default: // fail + restore one machine (evicts its residents)
			name := f.NodeNames()[r.Intn(len(f.nodes))]
			if _, err := f.FailNode(name); err != nil {
				continue
			}
			kept := residents[:0]
			for _, ref := range residents {
				if ref.node != name {
					kept = append(kept, ref)
				}
			}
			residents = kept
			if _, err := f.RestoreNode(ctx, name); err != nil {
				t.Fatalf("seed %d ev %d: restore %s: %v", seed, ev, name, err)
			}
		}
	}
}

// TestLegacyPolicyEquivalence is the 150-seed sweep: every legacy policy
// bundle must decide identically to the pre-refactor implementation,
// cold (caching disabled) and cached, across randomized heterogeneous
// fleets, traces, and machine failures.
func TestLegacyPolicyEquivalence(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 24
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			cacheCap := 0 // default: cached
			if seed%3 == 0 {
				cacheCap = -1 // cold: every decision re-solved
			}
			runEquivSweep(t, int64(seed), cacheCap)
		})
	}
}
