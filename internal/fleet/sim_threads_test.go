package fleet

import (
	"bytes"
	"context"
	"path/filepath"
	"runtime"
	"testing"
)

// TestSimThreadsGolden is the thread-group determinism acceptance test:
// the seeded sharing scenario — mixed group sizes 1..4, sharing fractions
// {0, 0.5, 0.9} — must replay to a byte-identical report at workers 1, 4,
// and GOMAXPROCS, pinned by the golden file the CI smoke step also diffs
// against. T=1 draws ride the legacy placement path, so the golden also
// pins that the two paths coexist deterministically in one run.
func TestSimThreadsGolden(t *testing.T) {
	sc, err := LoadScenario(filepath.Join("testdata", "scenario_threads.json"))
	if err != nil {
		t.Fatal(err)
	}
	var ref []byte
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		rep, err := NewSim(sc, w).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := renderReport(t, rep)
		if ref == nil {
			ref = got
			checkGolden(t, "sim_threads.json", got)
		} else if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d report differs from workers=1", w)
		}
	}
}

// TestSimThreadsLedger pins the group-ledger arithmetic on the golden
// sharing scenario: every policy sees the same arrivals, so the group
// counters must agree across policies, members must balance (spawned =
// placed + faulted is chaos's invariant; here none fault), and the
// instance counter must reflect the policy's shaping — one instance per
// group under colocate-sharers, one per member everywhere else.
func TestSimThreadsLedger(t *testing.T) {
	sc, err := LoadScenario(filepath.Join("testdata", "scenario_threads.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewSim(sc, 0).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	singles := 0
	groups, members := uint64(0), uint64(0)
	for _, p := range sc.Trace() {
		if p.Threads > 1 {
			groups++
			members += uint64(p.Threads)
		} else {
			singles++
		}
	}
	if groups == 0 || singles == 0 {
		t.Fatalf("scenario must mix group and single arrivals, got %d groups / %d singles", groups, singles)
	}
	for _, pr := range rep.Policies {
		if pr.GroupsPlaced != groups || pr.MembersPlaced != members {
			t.Errorf("%s: placed %d groups / %d members, want %d / %d",
				pr.Policy, pr.GroupsPlaced, pr.MembersPlaced, groups, members)
		}
		if pr.GroupsRejected != 0 || pr.MembersFaulted != 0 {
			t.Errorf("%s: %d groups rejected, %d members faulted — want 0/0",
				pr.Policy, pr.GroupsRejected, pr.MembersFaulted)
		}
		want := uint64(singles) + members
		if pr.Policy == ColocateSharers.String() {
			want = uint64(singles) + groups
		}
		if pr.Placed != want {
			t.Errorf("%s: %d instances placed, want %d", pr.Policy, pr.Placed, want)
		}
	}
}
