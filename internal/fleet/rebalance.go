package fleet

import (
	"context"
	"fmt"

	"mpmc/internal/core"
	"mpmc/internal/freq"
	"mpmc/internal/manager"
	"mpmc/internal/parallel"
	"mpmc/internal/wal"
	"mpmc/internal/workload"
)

// Move describes one executed cross-machine migration.
type Move struct {
	From     string `json:"from"`
	To       string `json:"to"`
	Name     string `json:"name"`     // instance name on the source node
	NewName  string `json:"new_name"` // instance name on the target node
	Workload string `json:"workload"`
	Core     int    `json:"core"` // target core
	// SPIBefore/SPIAfter are the fleet-wide predicted SPI totals around the
	// move; Improvement is their difference (positive = faster fleet).
	SPIBefore   float64 `json:"spi_before"`
	SPIAfter    float64 `json:"spi_after"`
	Improvement float64 `json:"improvement"`
}

// candidate is one prospective migration: resident r of nodes[src] moving
// to core dstCore of nodes[dst].
type candidate struct {
	src, dst, dstCore int
	res               manager.Resident
}

// Rebalance finds the single best cross-machine move — the one that most
// reduces the fleet-wide total predicted SPI — and executes it when the
// improvement clears minImprovement (in absolute SPI units; 0 accepts any
// strict improvement). Intra-machine layout is the per-node
// manager.Rebalance's job; this pass only ever moves a process between
// machines.
//
// When no move clears the bar the error wraps manager.ErrNoImprovement.
// Execution is transactional: the source and target managers are
// snapshotted, and a failure during remove/re-place restores both before
// the error is returned, so a failed rebalance leaves every machine
// exactly as it was.
func (f *Fleet) Rebalance(ctx context.Context, minImprovement float64) (Move, error) {
	// Warm the feature cache for every (machine kind, resident workload)
	// pair outside the lock: in a heterogeneous fleet a resident has only
	// been profiled against its own machine kind so far.
	f.mu.Lock()
	var specs []*workload.Spec
	for _, n := range f.nodes {
		if n.down {
			continue
		}
		for _, r := range n.mgr.Residents() {
			specs = append(specs, r.Spec)
		}
	}
	f.mu.Unlock()
	if err := f.resolveFeatures(ctx, specs); err != nil {
		return Move{}, err
	}

	f.mu.Lock()
	defer f.mu.Unlock()

	if f.cfg.Intercept != nil {
		// Injection seam ahead of any scoring or mutation: an injected
		// error abandons the pass with every machine untouched.
		if err := f.cfg.Intercept("fleet.rebalance", ""); err != nil {
			return Move{}, err
		}
	}

	// Fleet-wide baseline: each node's total predicted SPI as placed.
	// Down nodes hold no residents and accept no moves; they contribute
	// zero to the baseline and are skipped below.
	// Warm every live node's assignment snapshot serially first: the
	// candidate fan-out below reads the same nodes from many workers at
	// once, and the per-node cache must not see concurrent first fills.
	for _, n := range f.nodes {
		if !n.down {
			f.assignmentOf(n)
		}
	}
	base, err := parallel.Map(ctx, f.cfg.Workers, len(f.nodes), func(i int) (float64, error) {
		if f.nodes[i].down {
			return 0, nil
		}
		return f.nodeSPI(ctx, f.nodes[i].cfg.Machine, f.assignmentOf(f.nodes[i]))
	})
	if err != nil {
		return Move{}, err
	}
	baseTotal := 0.0
	for _, b := range base {
		baseTotal += b
	}

	// Enumerate every (resident, target node, target core) in a fixed
	// order — source nodes by index, residents in core/arrival order,
	// targets by index, cores by index — so the strict less-than reduction
	// below is deterministic at any worker count.
	residents := make([][]manager.Resident, len(f.nodes))
	for i, n := range f.nodes {
		if n.down {
			continue
		}
		residents[i] = n.mgr.Residents()
	}
	var cands []candidate
	for i := range f.nodes {
		for _, r := range residents[i] {
			for j, dst := range f.nodes {
				if j == i || dst.down {
					continue
				}
				running := dst.mgr.Running()
				for c := 0; c < dst.cfg.Machine.NumCores; c++ {
					if dst.cfg.MaxPerCore != 0 && len(running[c]) >= dst.cfg.MaxPerCore {
						continue
					}
					cands = append(cands, candidate{src: i, dst: j, dstCore: c, res: r})
				}
			}
		}
	}
	if len(cands) == 0 {
		f.noops.Inc()
		return Move{}, fmt.Errorf("fleet: %w: no movable process", manager.ErrNoImprovement)
	}

	// Score every candidate concurrently: the fleet total if the move were
	// made. Only the source and target terms change, and both route
	// through the group-score memo — so the source machine minus its
	// departing resident is solved once per (source, resident), not once
	// per (destination, core) candidate as it used to be (every candidate
	// sharing a source resident now recalls the same memoized terms, with
	// the singleflight collapsing concurrent first solves), and candidate
	// target groups recall any terms placement scoring already solved.
	totals, err := parallel.Map(ctx, f.cfg.Workers, len(cands), func(k int) (float64, error) {
		cd := cands[k]
		srcN, dstN := f.nodes[cd.src], f.nodes[cd.dst]
		srcAfter, err := f.nodeSPI(ctx, srcN.cfg.Machine,
			withoutResident(f.assignmentOf(srcN), cd.res))
		if err != nil {
			return 0, err
		}
		feat, err := f.feats.get(ctx, dstN.cfg.Machine, cd.res.Spec)
		if err != nil {
			return 0, err
		}
		dstAfter, err := f.nodeSPI(ctx, dstN.cfg.Machine,
			withAdditionShared(f.assignmentOf(dstN), feat, cd.dstCore))
		if err != nil {
			return 0, err
		}
		return baseTotal - base[cd.src] - base[cd.dst] + srcAfter + dstAfter, nil
	})
	if err != nil {
		return Move{}, err
	}
	best := 0
	for k := range totals {
		if totals[k] < totals[best] {
			best = k
		}
	}
	improvement := baseTotal - totals[best]
	if improvement <= minImprovement || improvement <= 0 {
		f.noops.Inc()
		return Move{}, fmt.Errorf("fleet: %w: best move saves %.4g SPI (threshold %.4g)",
			manager.ErrNoImprovement, improvement, minImprovement)
	}

	// Execute transactionally: snapshot both managers, remove from the
	// source, re-place on the target; restore both on any failure.
	cd := cands[best]
	srcN, dstN := f.nodes[cd.src], f.nodes[cd.dst]
	capMove := f.capActive()
	var srcW, dstW float64
	if capMove {
		// An SPI-improving move must not bust the watt budget: price both
		// ends' post-move draw at their current rungs and reject the move
		// when the fleet total would exceed the cap. The priced draws also
		// become the ledger rows after execution, so admission check and
		// accounting can never disagree.
		srcWU, err := srcN.cm.EstimateAssignmentContext(ctx, withoutResident(f.assignmentOf(srcN), cd.res))
		if err != nil {
			return Move{}, err
		}
		feat, err := f.feats.get(ctx, dstN.cfg.Machine, cd.res.Spec)
		if err != nil {
			return Move{}, err
		}
		dstWU, err := dstN.cm.EstimateAdditionContext(ctx, f.assignmentOf(dstN), feat, cd.dstCore)
		if err != nil {
			return Move{}, err
		}
		srcW = freq.ScaleWatts(srcWU, staticWatts(srcN), dynScaleOf(srcN))
		dstW = freq.ScaleWatts(dstWU, staticWatts(dstN), dynScaleOf(dstN))
		next := f.capL.usage() - f.capL.nodeWatts(srcN.cfg.Name) - f.capL.nodeWatts(dstN.cfg.Name) + srcW + dstW
		if cap := f.capL.capWatts(); next > cap {
			f.noops.Inc()
			return Move{}, fmt.Errorf("fleet: %w: best move needs %.4g W against a %.4g W cap",
				manager.ErrNoImprovement, next, cap)
		}
	}
	srcSnap, dstSnap := srcN.mgr.Snapshot(), dstN.mgr.Snapshot()
	rollback := func(cause error) error {
		srcN.mgr.Restore(srcSnap)
		dstN.mgr.Restore(dstSnap)
		f.rollbacks.Inc()
		return fmt.Errorf("fleet: rebalance rolled back: %w", cause)
	}
	if err := srcN.mgr.Remove(cd.res.Name); err != nil {
		return Move{}, rollback(err)
	}
	newName, _, err := dstN.mgr.PlaceAt(ctx, cd.res.Spec, cd.dstCore)
	if err != nil {
		return Move{}, rollback(err)
	}
	// A migrated resident keeps its scheduler metadata (priority class,
	// tag, preemption-ledger identity) under its new instance name.
	var meta residentMeta
	if m, ok := srcN.meta[cd.res.Name]; ok {
		meta = m
		delete(srcN.meta, cd.res.Name)
		if dstN.meta == nil {
			dstN.meta = map[string]residentMeta{}
		}
		dstN.meta[newName] = m
	}
	f.moves.Inc()
	f.version++
	srcN.version++
	dstN.version++
	if capMove {
		f.capL.setNode(srcN.cfg.Name, srcW)
		f.capL.setNode(dstN.cfg.Name, dstW)
		// Re-anchor both rows on the canonical whole-assignment estimate
		// (the target's dstW was priced via the addition path, which can
		// differ in the last ulp); a failure keeps the priced values.
		_ = f.resyncNodeCapLocked(ctx, srcN)
		_ = f.resyncNodeCapLocked(ctx, dstN)
	}
	// Both halves of the migration land in one journal batch, so replay
	// sees the move atomically (departed first: the new instance appends
	// at the end of the resident order, exactly like PlaceAt did).
	f.journalLocked(wal.Event{Type: wal.EvDeparted, Node: srcN.cfg.Name, Name: cd.res.Name})
	f.journalLocked(wal.Event{
		Type: wal.EvAdmitted, Node: dstN.cfg.Name, Name: newName, Core: cd.dstCore,
		Bench: cd.res.Spec.Name, Tag: meta.tag, Priority: meta.priority,
	})
	f.flushJournalLocked()
	return Move{
		From:        srcN.cfg.Name,
		To:          dstN.cfg.Name,
		Name:        cd.res.Name,
		NewName:     newName,
		Workload:    cd.res.Spec.Name,
		Core:        cd.dstCore,
		SPIBefore:   baseTotal,
		SPIAfter:    totals[best],
		Improvement: improvement,
	}, nil
}

// withoutResident returns a copy of asg with the resident's feature vector
// removed from its core (first pointer match, falling back to the first
// entry if the pointer is not found); asg is never mutated.
func withoutResident(asg core.Assignment, r manager.Resident) core.Assignment {
	next := make(core.Assignment, len(asg))
	for i, procs := range asg {
		next[i] = append([]*core.FeatureVector(nil), procs...)
	}
	procs := next[r.Core]
	idx := 0
	for k, fv := range procs {
		if fv == r.Feature {
			idx = k
			break
		}
	}
	if len(procs) > 0 {
		next[r.Core] = append(procs[:idx:idx], procs[idx+1:]...)
	}
	return next
}
