// Cache-correctness tests for the score memo: counter accounting under
// concurrency, invalidation exactness, staleness (cached vs cold bit
// equality), and the rebalance solve-count regression guarded by the
// "fleet.solve" intercept seam.

package fleet

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"mpmc/internal/core"
	"mpmc/internal/manager"
	"mpmc/internal/workload"
)

// TestScoreCacheConcurrentPlaceHammer hammers Place/Remove from several
// goroutines (run it under -race) and checks the counter invariant the
// stats documentation promises: every lookup resolves to exactly one of a
// hit, a miss, or a shared in-flight ride.
func TestScoreCacheConcurrentPlaceHammer(t *testing.T) {
	for _, pol := range []Policy{LeastDegradation, LeastWatts, BinPack} {
		t.Run(pol.String(), func(t *testing.T) {
			f := testFleet(t, pol, nil)
			ctx := context.Background()
			specs := sixteenSpecs()
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						spec := specs[(w*7+i)%len(specs)]
						p, err := f.Place(ctx, spec)
						if err != nil {
							t.Errorf("worker %d: Place(%s): %v", w, spec.Name, err)
							return
						}
						if _, err := f.Remove(ctx, p.Node, p.Name); err != nil {
							t.Errorf("worker %d: Remove(%s): %v", w, p.Name, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			st := f.ScoreCacheStats()
			if st.Lookups != st.Hits+st.Misses+st.Shared {
				t.Fatalf("counter invariant broken: lookups=%d hits=%d misses=%d shared=%d",
					st.Lookups, st.Hits, st.Misses, st.Shared)
			}
			ss := f.SolverStateStats()
			if pol != LeastWatts && st.Lookups == 0 {
				t.Fatal("expected term-memo traffic")
			}
			if pol == LeastWatts && ss.WattsHits+ss.WattsMisses == 0 {
				t.Fatal("expected watts-memo traffic under LeastWatts")
			}
		})
	}
}

// TestFailNodeInvalidatesExactlyAffectedKeys proves FailNode drops exactly
// the failing node's current group keys and its decision keys — nothing
// belonging to any other node — and counts the drops.
func TestFailNodeInvalidatesExactlyAffectedKeys(t *testing.T) {
	f := testFleet(t, LeastDegradation, nil)
	ctx := context.Background()
	if _, err := f.PlaceAll(ctx, sixteenSpecs()[:8]); err != nil {
		t.Fatal(err)
	}

	target := f.nodes[1]
	name := target.cfg.Name
	asg := target.mgr.Assignment()
	expect := map[string]bool{}
	for _, group := range target.cfg.Machine.Groups {
		busy := busyCores(group, asg)
		if len(busy) > 0 {
			expect[scoreKey(target.cfg.Machine, f.cfg.Solver, busy, asg)] = true
		}
	}
	if len(expect) == 0 {
		t.Fatal("target node unexpectedly idle")
	}

	keySet := func(keys []string) map[string]bool {
		s := make(map[string]bool, len(keys))
		for _, k := range keys {
			s[k] = true
		}
		return s
	}
	beforeG := keySet(f.scores.lru.Keys())
	beforeD := keySet(f.scores.decisions.Keys())
	inv0 := f.ScoreCacheStats().Invalidated

	if _, err := f.FailNode(name); err != nil {
		t.Fatal(err)
	}

	afterG := keySet(f.scores.lru.Keys())
	afterD := keySet(f.scores.decisions.Keys())
	for k := range beforeG {
		if !afterG[k] && !expect[k] {
			t.Errorf("foreign group key dropped: %q", k)
		}
	}
	for k := range expect {
		if beforeG[k] && afterG[k] {
			t.Errorf("stale group key survived FailNode: %q", k)
		}
	}
	prefix := name + "\x00"
	for k := range beforeD {
		switch {
		case strings.HasPrefix(k, prefix) && afterD[k]:
			t.Errorf("stale decision key survived FailNode: %q", k)
		case !strings.HasPrefix(k, prefix) && !afterD[k]:
			t.Errorf("foreign decision key dropped: %q", k)
		}
	}
	if got := f.ScoreCacheStats().Invalidated; got == inv0 {
		t.Error("FailNode invalidated nothing")
	}
}

// TestCachedMatchesColdAcrossMutations drives one cached and one cold
// fleet through an identical mutation sequence — batch placement,
// departures, a node failure and restore, a rebalance — and asserts every
// decision and every reported float is bit-identical at each step. This is
// the staleness proof: no mutation may leave a cached answer behind that a
// cold fleet would not produce.
func TestCachedMatchesColdAcrossMutations(t *testing.T) {
	ctx := context.Background()
	warm := testFleet(t, LeastDegradation, nil)
	cold := testFleet(t, LeastDegradation, func(c *Config) { c.ScoreCacheCap = -1 })

	sameTotals := func(step string) {
		t.Helper()
		ws, ww, err := warm.Totals(ctx)
		if err != nil {
			t.Fatalf("%s: warm totals: %v", step, err)
		}
		cs, cw, err := cold.Totals(ctx)
		if err != nil {
			t.Fatalf("%s: cold totals: %v", step, err)
		}
		if math.Float64bits(ws) != math.Float64bits(cs) || math.Float64bits(ww) != math.Float64bits(cw) {
			t.Fatalf("%s: totals diverge: warm (%.17g SPI, %.17g W) cold (%.17g SPI, %.17g W)",
				step, ws, ww, cs, cw)
		}
	}
	samePlaced := func(step string, a, b []Placed) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d placements", step, len(a), len(b))
		}
		for i := range a {
			if a[i].Node != b[i].Node || a[i].Name != b[i].Name || a[i].Core != b[i].Core ||
				math.Float64bits(a[i].Watts) != math.Float64bits(b[i].Watts) ||
				math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
				t.Fatalf("%s: placement %d diverges: warm %+v cold %+v", step, i, a[i], b[i])
			}
		}
	}

	wp, err := warm.PlaceAll(ctx, sixteenSpecs()[:10])
	if err != nil {
		t.Fatal(err)
	}
	cp, err := cold.PlaceAll(ctx, sixteenSpecs()[:10])
	if err != nil {
		t.Fatal(err)
	}
	samePlaced("place-all", wp, cp)
	sameTotals("place-all")

	for _, p := range wp[:3] {
		if _, err := warm.Remove(ctx, p.Node, p.Name); err != nil {
			t.Fatal(err)
		}
		if _, err := cold.Remove(ctx, p.Node, p.Name); err != nil {
			t.Fatal(err)
		}
	}
	sameTotals("departures")

	wf, err := warm.FailNode(warm.NodeNames()[0])
	if err != nil {
		t.Fatal(err)
	}
	cf, err := cold.FailNode(cold.NodeNames()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(wf) != len(cf) {
		t.Fatalf("fail evicted %d vs %d residents", len(wf), len(cf))
	}
	sameTotals("fail-node")

	wr, err := warm.RestoreNode(ctx, warm.NodeNames()[0])
	if err != nil {
		t.Fatal(err)
	}
	cr, err := cold.RestoreNode(ctx, cold.NodeNames()[0])
	if err != nil {
		t.Fatal(err)
	}
	samePlaced("restore-node", wr, cr)
	sameTotals("restore-node")

	wm, werr := warm.Rebalance(ctx, 0)
	cm, cerr := cold.Rebalance(ctx, 0)
	if (werr == nil) != (cerr == nil) {
		t.Fatalf("rebalance diverges: warm err %v, cold err %v", werr, cerr)
	}
	if werr == nil {
		if wm.From != cm.From || wm.To != cm.To || wm.Name != cm.Name || wm.Core != cm.Core ||
			math.Float64bits(wm.SPIBefore) != math.Float64bits(cm.SPIBefore) ||
			math.Float64bits(wm.SPIAfter) != math.Float64bits(cm.SPIAfter) {
			t.Fatalf("rebalance move diverges: warm %+v cold %+v", wm, cm)
		}
	}
	sameTotals("rebalance")

	// A flush may never change an answer — values are pure functions of
	// their keys.
	warm.FlushScoreCache()
	if st := warm.ScoreCacheStats(); st.Entries != 0 || st.DecisionEntries != 0 {
		t.Fatalf("flush left %d term + %d decision entries", st.Entries, st.DecisionEntries)
	}
	if ss := warm.SolverStateStats(); ss.Entries != 0 || ss.WattsEntries != 0 {
		t.Fatalf("flush left %d solver + %d watts entries", ss.Entries, ss.WattsEntries)
	}
	sameTotals("post-flush")
}

// TestRebalanceSolvesEachKeyOnce is the regression test for the rebalance
// dedupe fix: within one pass, no memo key may be solved more than once —
// every candidate sharing a source resident (or a target group already
// scored) must recall the memoized terms. The "fleet.solve" seam observes
// actual solves.
func TestRebalanceSolvesEachKeyOnce(t *testing.T) {
	var mu sync.Mutex
	solves := map[string]int{}
	f := testFleet(t, LeastDegradation, func(c *Config) {
		c.Intercept = func(site, key string) error {
			if site == "fleet.solve" {
				mu.Lock()
				solves[key]++
				mu.Unlock()
			}
			return nil
		}
	})
	ctx := context.Background()
	if _, err := f.PlaceAll(ctx, sixteenSpecs()[:8]); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	clear(solves) // count only the rebalance pass
	mu.Unlock()

	if _, err := f.Rebalance(ctx, 1e9); !errors.Is(err, manager.ErrNoImprovement) {
		t.Fatalf("want ErrNoImprovement sentinel, got %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(solves) == 0 {
		t.Fatal("expected the pass to solve at least one new key")
	}
	for k, n := range solves {
		if n > 1 {
			t.Errorf("key %q solved %d times in one pass", k, n)
		}
	}
}

// TestDecisionMemoCounters exercises the decision memo end to end: a first
// placement misses and populates it, and replaying the exact same
// (assignment, arrival) state hits on every live node through the all-hit
// fast path, which credits its probes in bulk.
func TestDecisionMemoCounters(t *testing.T) {
	f := testFleet(t, LeastDegradation, nil)
	ctx := context.Background()
	spec := sixteenSpecs()[0]

	p1, err := f.Place(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st := f.ScoreCacheStats()
	if st.DecisionMisses != uint64(len(f.nodes)) {
		t.Fatalf("first place: %d decision misses, want %d", st.DecisionMisses, len(f.nodes))
	}
	if st.DecisionEntries != len(f.nodes) {
		t.Fatalf("first place memoized %d decisions, want %d", st.DecisionEntries, len(f.nodes))
	}
	if st.DecisionHits != 0 {
		t.Fatalf("first place: %d decision hits, want 0", st.DecisionHits)
	}

	// Remove restores the exact pre-place assignment content, so replaying
	// the same arrival must hit every node's memoized decision.
	if _, err := f.Remove(ctx, p1.Node, p1.Name); err != nil {
		t.Fatal(err)
	}
	p2, err := f.Place(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Node != p1.Node || p2.Core != p1.Core ||
		math.Float64bits(p2.Score) != math.Float64bits(p1.Score) {
		t.Fatalf("replayed placement diverges: %+v vs %+v", p2, p1)
	}
	st = f.ScoreCacheStats()
	if st.DecisionHits != uint64(len(f.nodes)) {
		t.Fatalf("replay: %d decision hits, want %d", st.DecisionHits, len(f.nodes))
	}
}

// TestKeyConstruction pins the content-addressing down: any difference in
// machine kind, solver, busy set, per-core grouping, or arrival must
// produce a distinct key, and position must matter (a process on core 0 is
// not a process on core 1).
func TestKeyConstruction(t *testing.T) {
	f := testFleet(t, LeastDegradation, nil)
	ctx := context.Background()
	spec := sixteenSpecs()[0]
	if err := f.resolveFeatures(ctx, []*workload.Spec{spec, sixteenSpecs()[1]}); err != nil {
		t.Fatal(err)
	}
	n := f.nodes[0]
	m := n.cfg.Machine
	fa, err := f.feats.get(ctx, m, spec)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := f.feats.get(ctx, m, sixteenSpecs()[1])
	if err != nil {
		t.Fatal(err)
	}

	keys := map[string]string{}
	add := func(label, k string) {
		t.Helper()
		if prev, dup := keys[k]; dup {
			t.Errorf("key collision: %s and %s share %q", prev, label, k)
		}
		keys[k] = label
	}
	asg0 := core.Assignment{{fa}, nil}
	asg1 := core.Assignment{nil, {fa}}
	asg2 := core.Assignment{{fa}, {fb}}
	asg3 := core.Assignment{{fa, fb}, nil}
	add("core0", scoreKey(m, f.cfg.Solver, busyCores(m.Groups[0], asg0), asg0))
	add("core1", scoreKey(m, f.cfg.Solver, busyCores(m.Groups[0], asg1), asg1))
	add("split", scoreKey(m, f.cfg.Solver, busyCores(m.Groups[0], asg2), asg2))
	add("stacked", scoreKey(m, f.cfg.Solver, busyCores(m.Groups[0], asg3), asg3))
	add("solver", scoreKey(m, core.SolverWindow, busyCores(m.Groups[0], asg0), asg0))

	dk := map[string]string{}
	addD := func(label, k string) {
		t.Helper()
		if prev, dup := dk[k]; dup {
			t.Errorf("decision key collision: %s and %s share %q", prev, label, k)
		}
		dk[k] = label
	}
	addD("empty-a", decisionKey(n, fa, core.Assignment{nil, nil}))
	addD("empty-b", decisionKey(n, fb, core.Assignment{nil, nil}))
	addD("occ0", decisionKey(n, fa, asg0))
	addD("occ1", decisionKey(n, fa, asg1))
	addD("other-node", decisionKey(f.nodes[1], fa, core.Assignment{nil, nil}))
}
