package fleet

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/workload"
)

// oracle returns the analytic truth feature instantly, optionally counting
// invocations and holding each run open for delay so concurrency tests can
// widen the in-flight window.
func oracle(runs *atomic.Int64, delay time.Duration) ProfileFunc {
	return func(ctx context.Context, m *machine.Machine, spec *workload.Spec, opts core.ProfileOptions) (*core.FeatureVector, error) {
		if runs != nil {
			runs.Add(1)
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return core.TruthFeature(spec, m), nil
	}
}

func testPower(t testing.TB) *core.PowerModel {
	t.Helper()
	pm, err := SyntheticPowerModel()
	if err != nil {
		t.Fatalf("SyntheticPowerModel: %v", err)
	}
	return pm
}

// testFleet builds a 4× workstation fleet (2 cores each, 2 per core →
// fleet capacity 16) with oracle profiling. mutate may override any
// Config field.
func testFleet(t testing.TB, policy Policy, mutate func(*Config)) *Fleet {
	t.Helper()
	pm := testPower(t)
	var nodes []NodeConfig
	for i := 0; i < 4; i++ {
		nodes = append(nodes, NodeConfig{
			Machine:    machine.TwoCoreWorkstation(),
			Power:      pm,
			MaxPerCore: 2,
		})
	}
	cfg := Config{
		Nodes:    nodes,
		Policy:   policy,
		QueueCap: 8,
		Seed:     1,
		Workers:  2,
		Profile:  oracle(nil, 0),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	return f
}

// sixteenSpecs cycles the suite into a 16-process arrival batch.
func sixteenSpecs() []*workload.Spec {
	suite := workload.Suite()
	out := make([]*workload.Spec, 16)
	for i := range out {
		out[i] = suite[i%len(suite)]
	}
	return out
}

// checkCapacity asserts that no node holds more residents per core than
// its MaxPerCore allows.
func checkCapacity(t *testing.T, f *Fleet) int {
	t.Helper()
	total := 0
	for _, n := range f.nodes {
		for c, names := range n.mgr.Running() {
			if n.cfg.MaxPerCore != 0 && len(names) > n.cfg.MaxPerCore {
				t.Fatalf("node %s core %d holds %d residents, cap %d",
					n.cfg.Name, c, len(names), n.cfg.MaxPerCore)
			}
			total += len(names)
		}
	}
	return total
}

// fleetSnapshot captures every observable piece of scheduler state the
// transactional guarantees protect: each manager's deep snapshot plus the
// fleet's round-robin cursor and queue.
type fleetSnapshot struct {
	nodes  []*manager.Snapshot
	rrNode int
	queue  int
}

func snapshotFleet(f *Fleet) fleetSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := fleetSnapshot{rrNode: f.rrNode, queue: len(f.queue)}
	for _, n := range f.nodes {
		s.nodes = append(s.nodes, n.mgr.Snapshot())
	}
	return s
}

func requireUnchanged(t *testing.T, f *Fleet, before fleetSnapshot) {
	t.Helper()
	after := snapshotFleet(f)
	if after.rrNode != before.rrNode {
		t.Fatalf("round-robin cursor changed: %d → %d", before.rrNode, after.rrNode)
	}
	if after.queue != before.queue {
		t.Fatalf("queue depth changed: %d → %d", before.queue, after.queue)
	}
	for i := range before.nodes {
		if !reflect.DeepEqual(before.nodes[i], after.nodes[i]) {
			t.Fatalf("node %d state changed across failed operation", i)
		}
	}
}

// TestPoliciesPlaceSixteen is the acceptance scenario: all four policies
// place a 16-process trace on the 4-machine fleet without capacity
// violations, transactionally, in one batch.
func TestPoliciesPlaceSixteen(t *testing.T) {
	for _, p := range Policies() {
		t.Run(p.String(), func(t *testing.T) {
			f := testFleet(t, p, nil)
			placed, err := f.PlaceAll(context.Background(), sixteenSpecs())
			if err != nil {
				t.Fatalf("PlaceAll: %v", err)
			}
			if len(placed) != 16 {
				t.Fatalf("placed %d, want 16", len(placed))
			}
			if got := checkCapacity(t, f); got != 16 {
				t.Fatalf("%d residents, want 16", got)
			}
			if got := f.Registry().CounterValue("fleet_place_total"); got != 16 {
				t.Fatalf("fleet_place_total %d, want 16", got)
			}
			// The fleet is now exactly full: one more arrival must be
			// rejected with the typed sentinel.
			if _, err := f.Place(context.Background(), workload.ByName("gzip")); !errors.Is(err, ErrFleetFull) {
				t.Fatalf("Place on full fleet: %v, want ErrFleetFull", err)
			}
		})
	}
}

// TestBinPackFillsInOrder pins BinPack's shape: with a generous ceiling it
// saturates machine 0 before ever touching machine 1.
func TestBinPackFillsInOrder(t *testing.T) {
	f := testFleet(t, BinPack, func(c *Config) { c.BinPackCeiling = 100 })
	specs := sixteenSpecs()[:4] // exactly one workstation's capacity
	placed, err := f.PlaceAll(context.Background(), specs)
	if err != nil {
		t.Fatalf("PlaceAll: %v", err)
	}
	for i, p := range placed {
		if p.Node != "m0" {
			t.Fatalf("placement %d landed on %s, want m0 (binpack fills in order)", i, p.Node)
		}
	}
	p, err := f.Place(context.Background(), specs[0])
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if p.Node != "m1" {
		t.Fatalf("overflow landed on %s, want m1", p.Node)
	}
}

// TestSpreadRoundRobin pins Spread's rotation: successive arrivals visit
// machines in order, and the cursor only advances on success.
func TestSpreadRoundRobin(t *testing.T) {
	f := testFleet(t, Spread, nil)
	want := []string{"m0", "m1", "m2", "m3", "m0"}
	for i, w := range want {
		p, err := f.Place(context.Background(), workload.ByName("gzip"))
		if err != nil {
			t.Fatalf("Place %d: %v", i, err)
		}
		if p.Node != w {
			t.Fatalf("arrival %d landed on %s, want %s", i, p.Node, w)
		}
	}
}

// TestQueueLifecycle drives the admission queue end to end: overflow
// queues FIFO, departures pump the queue, cancellation withdraws, and a
// full queue rejects with the typed sentinel.
func TestQueueLifecycle(t *testing.T) {
	ctx := context.Background()
	f := testFleet(t, LeastDegradation, func(c *Config) { c.QueueCap = 2 })
	placed, err := f.PlaceAll(ctx, sixteenSpecs())
	if err != nil {
		t.Fatalf("PlaceAll: %v", err)
	}

	// Fleet full: arrivals must queue, in order, until the queue fills.
	t1, err := f.Submit(workload.ByName("mcf"), "first")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := f.Submit(workload.ByName("art"), "second"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := f.Submit(workload.ByName("gzip"), "third"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit over cap: %v, want ErrQueueFull", err)
	}
	if d := f.QueueDepth(); d != 2 {
		t.Fatalf("queue depth %d, want 2", d)
	}

	// Head-of-line cancellation: "second" becomes the head.
	if !f.CancelQueued(t1) {
		t.Fatal("CancelQueued(first) = false, want true")
	}
	if f.CancelQueued(t1) {
		t.Fatal("CancelQueued twice = true, want false")
	}

	// A departure frees one slot and pumps the queue: "second" admits.
	admitted, err := f.Remove(ctx, placed[0].Node, placed[0].Name)
	if err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if len(admitted) != 1 || admitted[0].Tag != "second" {
		t.Fatalf("pump admitted %+v, want exactly tag \"second\"", admitted)
	}
	if got := checkCapacity(t, f); got != 16 {
		t.Fatalf("%d residents after pump, want 16", got)
	}
	if got := f.Registry().CounterValue("fleet_queue_admitted_total"); got != 1 {
		t.Fatalf("fleet_queue_admitted_total %d, want 1", got)
	}
}

// TestSingleflightProfiling hammers one benchmark from many goroutines:
// the shared cache must collapse the burst into exactly one profiling
// sweep per machine kind.
func TestSingleflightProfiling(t *testing.T) {
	var runs atomic.Int64
	pm := testPower(t)
	f, err := New(Config{
		Nodes: []NodeConfig{
			{Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 4},
			{Machine: machine.FourCoreServer(), Power: pm, MaxPerCore: 4},
		},
		Policy:  LeastDegradation,
		Workers: 4,
		Profile: oracle(&runs, 20*time.Millisecond),
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = f.Place(context.Background(), workload.ByName("mcf"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Place %d: %v", i, err)
		}
	}
	// Two machine kinds (workstation, server) → exactly two sweeps for the
	// whole burst, no matter how many goroutines raced.
	if got := runs.Load(); got != 2 {
		t.Fatalf("%d profiling sweeps, want 2 (one per machine kind)", got)
	}
}

// TestHeterogeneousFleet places on a mixed workstation/laptop/server fleet
// and checks vectors are profiled per machine kind.
func TestHeterogeneousFleet(t *testing.T) {
	var runs atomic.Int64
	pm := testPower(t)
	f, err := New(Config{
		Nodes: []NodeConfig{
			{Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 2},
			{Machine: machine.TwoCoreLaptop(), Power: pm, MaxPerCore: 2},
			{Machine: machine.FourCoreServer(), Power: pm, MaxPerCore: 2},
		},
		Policy:  LeastWatts,
		Workers: 2,
		Profile: oracle(&runs, 0),
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	specs := []*workload.Spec{workload.ByName("mcf"), workload.ByName("gzip"), workload.ByName("art")}
	if _, err := f.PlaceAll(context.Background(), specs); err != nil {
		t.Fatalf("PlaceAll: %v", err)
	}
	// 3 machine kinds × 3 workloads: every pair profiled exactly once.
	if got := runs.Load(); got != 9 {
		t.Fatalf("%d profiling sweeps, want 9", got)
	}
	checkCapacity(t, f)
}

// TestRebalanceMovesOffHotMachine piles everything onto one machine (a
// saturated BinPack) and checks the cross-machine pass migrates a process
// to the idle machine with a positive predicted improvement.
func TestRebalanceMovesOffHotMachine(t *testing.T) {
	ctx := context.Background()
	pm := testPower(t)
	f, err := New(Config{
		Nodes: []NodeConfig{
			{Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 2},
			{Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 2},
		},
		Policy:         BinPack,
		BinPackCeiling: 100, // everything lands on m0
		Workers:        2,
		Profile:        oracle(nil, 0),
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	specs := []*workload.Spec{
		workload.ByName("mcf"), workload.ByName("art"),
		workload.ByName("swim"), workload.ByName("equake"),
	}
	if _, err := f.PlaceAll(ctx, specs); err != nil {
		t.Fatalf("PlaceAll: %v", err)
	}

	mv, err := f.Rebalance(ctx, 0)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if mv.From != "m0" || mv.To != "m1" {
		t.Fatalf("move %s → %s, want m0 → m1", mv.From, mv.To)
	}
	if mv.Improvement <= 0 {
		t.Fatalf("non-positive improvement %v", mv.Improvement)
	}
	if mv.SPIBefore-mv.SPIAfter != mv.Improvement {
		t.Fatalf("inconsistent move accounting: %+v", mv)
	}
	if got := checkCapacity(t, f); got != 4 {
		t.Fatalf("%d residents after move, want 4", got)
	}
	if got := f.Registry().CounterValue("fleet_rebalance_moves_total"); got != 1 {
		t.Fatalf("fleet_rebalance_moves_total %d, want 1", got)
	}

	// Repeated passes must terminate at a layout the model cannot improve.
	for i := 0; i < 8; i++ {
		if _, err := f.Rebalance(ctx, 0); err != nil {
			if !errors.Is(err, manager.ErrNoImprovement) {
				t.Fatalf("Rebalance pass %d: %v", i, err)
			}
			return
		}
	}
	t.Fatal("rebalancing never converged")
}

// TestStateAndTotals sanity-checks the state surface against the resident
// layout.
func TestStateAndTotals(t *testing.T) {
	ctx := context.Background()
	f := testFleet(t, LeastDegradation, nil)
	if _, err := f.PlaceAll(ctx, sixteenSpecs()[:6]); err != nil {
		t.Fatalf("PlaceAll: %v", err)
	}
	st, err := f.State(ctx)
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	if st.Residents != 6 {
		t.Fatalf("state residents %d, want 6", st.Residents)
	}
	if st.Policy != "least-degradation" {
		t.Fatalf("state policy %q", st.Policy)
	}
	if len(st.Nodes) != 4 {
		t.Fatalf("%d nodes in state, want 4", len(st.Nodes))
	}
	if st.TotalWatts <= 0 || st.TotalPredictedSPI <= 0 {
		t.Fatalf("degenerate totals: %+v", st)
	}
	spi, watts, err := f.Totals(ctx)
	if err != nil {
		t.Fatalf("Totals: %v", err)
	}
	if spi != st.TotalPredictedSPI || watts != st.TotalWatts {
		t.Fatalf("Totals (%v, %v) disagree with State (%v, %v)",
			spi, watts, st.TotalPredictedSPI, st.TotalWatts)
	}
}

// TestNewValidation pins constructor errors.
func TestNewValidation(t *testing.T) {
	pm := testPower(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no nodes", Config{}},
		{"nil machine", Config{Nodes: []NodeConfig{{Power: pm}}}},
		{"nil power", Config{Nodes: []NodeConfig{{Machine: machine.TwoCoreWorkstation()}}}},
		{"duplicate names", Config{Nodes: []NodeConfig{
			{Name: "a", Machine: machine.TwoCoreWorkstation(), Power: pm},
			{Name: "a", Machine: machine.TwoCoreWorkstation(), Power: pm},
		}}},
		{"negative max per core", Config{Nodes: []NodeConfig{
			{Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: -1},
		}}},
		{"negative ceiling", Config{BinPackCeiling: -1, Nodes: []NodeConfig{
			{Machine: machine.TwoCoreWorkstation(), Power: pm},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Fatal("New accepted an invalid config")
			}
		})
	}
}

// TestParsePolicyRoundTrip pins the name mapping both ways.
func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("power-aware"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown name")
	}
	if s := Policy(99).String(); s != "Policy(99)" {
		t.Fatalf("unknown policy String() = %q", s)
	}
}
