package fleet

import (
	"context"
	"errors"
	"testing"

	"mpmc/internal/machine"
	"mpmc/internal/threads"
	"mpmc/internal/workload"
)

func groupFleet(t *testing.T, policy Policy, machines int) *Fleet {
	t.Helper()
	pm := testPower(t)
	nodes := make([]NodeConfig, machines)
	for i := range nodes {
		nodes[i] = NodeConfig{Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 1}
	}
	f, err := New(Config{Nodes: nodes, Policy: policy, Profile: oracle(nil, 0)})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	return f
}

func testGroup(t *testing.T, bench string, n int, sharedFrac float64) threads.GroupSpec {
	t.Helper()
	base := workload.ByName(bench)
	if base == nil {
		t.Fatalf("%s missing from suite", bench)
	}
	return threads.GroupSpec{Base: base, Threads: n, SharedFrac: sharedFrac, WriteFrac: 0.5}
}

// TestPlaceGroupShaping pins the policy shaping on the single-lock
// fleet: colocate admits one bundle instance, spread admits T member
// instances on distinct machines, and a group-oblivious policy admits T
// independent base-spec instances.
func TestPlaceGroupShaping(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		policy        Policy
		wantInstances int
		wantNodes     int
	}{
		{ColocateSharers, 1, 1},
		{SpreadSharers, 3, 3},
		{LeastDegradation, 3, 0}, // oblivious: any node split is legal
	} {
		f := groupFleet(t, tc.policy, 4)
		placed, err := f.PlaceGroup(ctx, testGroup(t, "gzip", 3, 0.5))
		if err != nil {
			t.Fatalf("%s: %v", tc.policy, err)
		}
		if len(placed) != tc.wantInstances {
			t.Fatalf("%s: placed %d instances, want %d", tc.policy, len(placed), tc.wantInstances)
		}
		nodes := map[string]bool{}
		for _, p := range placed {
			nodes[p.Node] = true
		}
		if tc.wantNodes > 0 && len(nodes) != tc.wantNodes {
			t.Errorf("%s: members on %d machines, want %d", tc.policy, len(nodes), tc.wantNodes)
		}
		if got := f.Registry().CounterValue("fleet_group_placed_members_total"); got != 3 {
			t.Errorf("%s: placed members = %d, want 3", tc.policy, got)
		}
	}
}

// TestPlaceGroupFullRollsBack: a group that cannot fully fit must leave
// the fleet exactly as it was — partial members rolled back, the ledger
// recording the whole group as faulted, and the error carrying both the
// rollback count and ErrFleetFull.
func TestPlaceGroupFullRollsBack(t *testing.T) {
	ctx := context.Background()
	// 2 machines x 2 cores x MaxPerCore 1 = 4 slots.
	f := groupFleet(t, SpreadSharers, 2)
	if _, err := f.PlaceAll(ctx, []*workload.Spec{workload.ByName("mcf"), workload.ByName("art")}); err != nil {
		t.Fatal(err)
	}
	_, err := f.PlaceGroup(ctx, testGroup(t, "gzip", 3, 0.5))
	if !errors.Is(err, ErrFleetFull) {
		t.Fatalf("oversized group: got %v, want ErrFleetFull", err)
	}
	reg := f.Registry()
	if got := reg.CounterValue("fleet_group_faulted_members_total"); got != 3 {
		t.Errorf("faulted members = %d, want 3 (whole group)", got)
	}
	if got := reg.CounterValue("fleet_place_rollback_total"); got != 1 {
		t.Errorf("rollbacks = %d, want 1 (two members were admitted before the failure)", got)
	}
	// The two original residents survived the rollback untouched and the
	// freed slots admit a right-sized group.
	placed, err := f.PlaceGroup(ctx, testGroup(t, "gzip", 2, 0.5))
	if err != nil {
		t.Fatalf("post-rollback group: %v", err)
	}
	if len(placed) != 2 {
		t.Fatalf("post-rollback group placed %d, want 2", len(placed))
	}
}

// TestPlaceGroupContextCancelled: a cancelled context rolls the group
// back and surfaces the cause.
func TestPlaceGroupContextCancelled(t *testing.T) {
	f := groupFleet(t, SpreadSharers, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.PlaceGroup(ctx, testGroup(t, "gzip", 2, 0.5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := f.Registry().CounterValue("fleet_group_placed_members_total"); got != 0 {
		t.Errorf("placed members = %d after cancellation, want 0", got)
	}
}

// TestPlaceGroupRejectsInvalid: validation failures surface before any
// state or ledger movement.
func TestPlaceGroupRejectsInvalid(t *testing.T) {
	f := groupFleet(t, ColocateSharers, 2)
	bad := []threads.GroupSpec{
		{Base: nil, Threads: 2},
		{Base: workload.ByName("gzip"), Threads: 0},
		{Base: workload.ByName("gzip"), Threads: 2, SharedFrac: 1.5},
		{Base: workload.ByName("gzip"), Threads: 2, SharedFrac: 0.5, WriteFrac: -1},
	}
	for _, g := range bad {
		if _, err := f.PlaceGroup(context.Background(), g); err == nil {
			t.Errorf("PlaceGroup accepted invalid group %+v", g)
		}
	}
	if got := f.Registry().CounterValue("fleet_group_spawned_members_total"); got != 0 {
		t.Errorf("spawned members = %d after rejected validation, want 0", got)
	}
}
