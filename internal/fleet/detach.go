// Detached scoring: the queue pump's equilibrium solves run outside the
// fleet lock against a version-stamped view, so Submit/Cancel/State are
// never blocked behind a scoring pass. Correctness rests on three facts:
// captured assignment snapshots are immutable (assignmentOf replaces, and
// every scoring path copies on write), the score/feature caches and the
// solver state are concurrency-safe and content-addressed, and a commit
// only lands when the WINNING node's version still equals the view's
// per-node stamp — a mutation on the chosen node forces a re-score
// (which then decides exactly what a fresh in-lock pass would), while
// mutations on other nodes never invalidate, so disjoint placements
// commit concurrently. A no-fit outcome is the one fleet-wide claim and
// revalidates against the fleet version instead.

package fleet

import (
	"context"

	"mpmc/internal/core"
	"mpmc/internal/parallel"
	"mpmc/internal/sched"
	"mpmc/internal/workload"
)

// viewNode is one node's scoring inputs, captured under the fleet lock.
type viewNode struct {
	n    *node
	ver  uint64 // the node's version at capture time
	cand sched.CandidateNode
	feat *core.FeatureVector
	asg  core.Assignment
	dkey string
	fix  int // the node's DVFS rung at capture time
}

// placeView is a consistent, version-stamped snapshot of every node's
// scoring inputs for one arrival.
type placeView struct {
	nodes []viewNode
	ver   uint64 // fleet version, revalidating no-fit outcomes
}

// captureNodeLocked snapshots one node's scoring inputs for one
// arrival. Callers must hold the fleet lock.
func (f *Fleet) captureNodeLocked(ctx context.Context, i int, spec *workload.Spec) (viewNode, error) {
	n := f.nodes[i]
	vn := viewNode{n: n, ver: n.version, fix: n.freqIx}
	vn.cand = sched.CandidateNode{
		Index:      i,
		Name:       n.cfg.Name,
		Up:         !n.down,
		MaxPerCore: n.cfg.MaxPerCore,
		Labels:     n.cfg.Labels,
		Taints:     n.cfg.Taints,
	}
	if n.down {
		return vn, nil
	}
	feat, ok := f.feats.peek(n.cfg.Machine, spec)
	if !ok {
		// Entries submitted after Pump's resolve sweep (or evicted
		// since) profile here, exactly like the in-lock path would.
		var err error
		if feat, err = f.feats.get(ctx, n.cfg.Machine, spec); err != nil {
			return viewNode{}, err
		}
	}
	asg := f.assignmentOf(n)
	vn.feat, vn.asg = feat, asg
	if f.scores != nil {
		vn.dkey = f.decisionKeyOf(n, feat)
	}
	vn.cand.PerCore = make([]int, len(asg))
	residents := 0
	for ci := range asg {
		vn.cand.PerCore[ci] = len(asg[ci])
		residents += len(asg[ci])
	}
	vn.cand.FreeSlots = -1
	if n.cfg.MaxPerCore > 0 {
		vn.cand.FreeSlots = n.cfg.MaxPerCore*n.cfg.Machine.NumCores - residents
	}
	return vn, nil
}

// captureViewLocked snapshots the fleet for one arrival. Callers must
// hold the fleet lock; the returned view is safe to score after release
// because nothing in it is ever mutated in place.
func (f *Fleet) captureViewLocked(ctx context.Context, spec *workload.Spec) (*placeView, error) {
	v := &placeView{nodes: make([]viewNode, len(f.nodes)), ver: f.version}
	for i := range f.nodes {
		vn, err := f.captureNodeLocked(ctx, i, spec)
		if err != nil {
			return nil, err
		}
		v.nodes[i] = vn
	}
	return v, nil
}

// scoreViewDetached scores spec against a captured view, reproducing
// Pipeline.Decide exactly: feasible candidates collected in index order
// (MaxFeasible cut included), scored into index-addressed slots through
// the parallel engine, infeasible nodes left !OK. The caller reduces the
// returned node-indexed vector with the pipeline's selector — selectors
// skip !OK entries, so the winner is bit-identical to the in-lock
// decision against the same state, at any worker count.
func (f *Fleet) scoreViewDetached(ctx context.Context, v *placeView, spec *workload.Spec, opts PlaceOptions) ([]nodeScore, error) {
	arr := sched.Arrival{Key: spec.Name, Priority: opts.Priority, Tolerations: opts.Tolerations, Payload: spec}
	feasible := make([]int, 0, len(v.nodes))
	for i := range v.nodes {
		vn := &v.nodes[i]
		if !vn.cand.Up || !f.pipe.pipe.Admit(arr, &vn.cand) {
			continue
		}
		feasible = append(feasible, i)
		if f.cfg.MaxFeasible > 0 && len(feasible) == f.cfg.MaxFeasible {
			break
		}
	}
	scores := make([]nodeScore, len(v.nodes))
	err := parallel.ForEach(ctx, f.cfg.Workers, len(feasible), func(i int) error {
		ni := feasible[i]
		s, serr := f.scoreNodeDetached(ctx, &v.nodes[ni], spec)
		if serr != nil {
			return serr
		}
		scores[ni] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// scoreNodeDetached is scoreNode against captured inputs: same fault
// seam, same decision memo, same cold scoring — but reading only the
// view (the decision key was built under the lock at capture time, so
// the per-node key caches are never touched here).
func (f *Fleet) scoreNodeDetached(ctx context.Context, vn *viewNode, spec *workload.Spec) (nodeScore, error) {
	if f.cfg.Intercept != nil {
		if err := f.cfg.Intercept("fleet.score", vn.n.cfg.Name); err != nil {
			return nodeScore{}, err
		}
	}
	// CapAware never memoizes (see scoreNode): the key cannot encode the
	// live cap headroom its decisions depend on.
	useMemo := f.scores != nil && f.cfg.Policy != CapAware
	if useMemo {
		if s, ok := f.scores.getDecision(vn.dkey); ok {
			return s, nil
		}
	}
	s, err := f.scoreNodeCold(ctx, vn.n, vn.feat, vn.asg, vn.fix)
	if err == nil && useMemo {
		f.scores.putDecision(vn.dkey, s)
	}
	return s, err
}

// scoreArrivalDetached captures a view under the lock and scores it
// detached — the sharded fleet's per-shard scoring primitive. The
// returned per-node version stamps revalidate the eventual commit (pass
// the winning node's stamp to commitScored).
func (f *Fleet) scoreArrivalDetached(ctx context.Context, spec *workload.Spec, opts PlaceOptions) ([]nodeScore, []uint64, error) {
	f.mu.Lock()
	view, err := f.captureViewLocked(ctx, spec)
	f.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	scores, err := f.scoreViewDetached(ctx, view, spec, opts)
	if err != nil {
		return nil, nil, err
	}
	vers := make([]uint64, len(view.nodes))
	for i := range view.nodes {
		vers[i] = view.nodes[i].ver
	}
	return scores, vers, nil
}

// rescoreNodeDetached refreshes a single node's entry in a detached
// score vector after a commit conflict: only the conflicted node's
// inputs are recaptured (one node, not the fleet) and re-scored, with a
// fresh version stamp for the retried commit. The other entries stay as
// captured — safe, because an unchanged stamp certifies an unchanged
// assignment, and commitScored revalidates whichever node eventually
// wins. Callers with a MaxFeasible cut must not use this (the cut is a
// property of the whole feasible set); NewSharded rejects that
// combination for shards > 1 and the sharded fast path re-scores fully
// when a cut is configured.
func (f *Fleet) rescoreNodeDetached(ctx context.Context, i int, spec *workload.Spec, opts PlaceOptions) (nodeScore, uint64, error) {
	f.mu.Lock()
	vn, err := f.captureNodeLocked(ctx, i, spec)
	f.mu.Unlock()
	if err != nil {
		return nodeScore{}, 0, err
	}
	arr := sched.Arrival{Key: spec.Name, Priority: opts.Priority, Tolerations: opts.Tolerations, Payload: spec}
	if !vn.cand.Up || !f.pipe.pipe.Admit(arr, &vn.cand) {
		return nodeScore{}, vn.ver, nil
	}
	s, err := f.scoreNodeDetached(ctx, &vn, spec)
	if err != nil {
		return nodeScore{}, 0, err
	}
	return s, vn.ver, nil
}

// commitScored commits a detached decision: under the lock, the winning
// node's version stamp is revalidated (a mismatch returns ok=false and
// commits nothing — the caller re-scores) and the winning slot commits
// through the node manager exactly like an in-lock placement.
func (f *Fleet) commitScored(ctx context.Context, spec *workload.Spec, opts PlaceOptions, best int, s nodeScore, ver uint64) (Placed, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.nodes[best].version != ver {
		return Placed{}, false, nil
	}
	p, err := f.commitLocked(ctx, spec, opts, best, s)
	if err != nil {
		f.discardJournalLocked()
		return Placed{}, false, err
	}
	f.placed.Inc()
	f.flushJournalLocked()
	return p, true, nil
}
