package fleet_test

// Queue edge-case races, run under -race in CI. These live in an external
// test package so they can drive the exported surface only and reuse the
// chaos invariant checker (chaos imports fleet, so the internal test
// package cannot).

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"mpmc/internal/chaos"
	"mpmc/internal/core"
	"mpmc/internal/fleet"
	"mpmc/internal/machine"
	"mpmc/internal/workload"
)

// raceFleet builds a small fleet over instant truth features, with an
// optional per-profile delay to widen Pump's outside-the-lock window.
func raceFleet(t *testing.T, nodes, maxPerCore int, delay time.Duration) *fleet.Fleet {
	t.Helper()
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	var ncfg []fleet.NodeConfig
	for i := 0; i < nodes; i++ {
		ncfg = append(ncfg, fleet.NodeConfig{
			Name:       fmt.Sprintf("m%d", i),
			Machine:    machine.TwoCoreWorkstation(),
			Power:      pm,
			MaxPerCore: maxPerCore,
		})
	}
	f, err := fleet.New(fleet.Config{
		Nodes:    ncfg,
		Policy:   fleet.LeastDegradation,
		QueueCap: 8,
		Profile: func(ctx context.Context, m *machine.Machine, spec *workload.Spec, opts core.ProfileOptions) (*core.FeatureVector, error) {
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return core.TruthFeature(spec, m), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func requireConserved(t *testing.T, f *fleet.Fleet) {
	t.Helper()
	c := &chaos.Checker{}
	if vs := c.CheckFleet(context.Background(), f); len(vs) > 0 {
		t.Fatalf("invariant violations after race: %v", vs)
	}
}

// TestCancelQueuedHeadRacesPump races a CancelQueued of the queue head
// against a Pump that is already draining (its feature-resolution phase
// runs outside the fleet lock, so the head can vanish mid-pump). Whoever
// wins, the ticket must be admitted exactly once or abandoned exactly
// once — never both, never neither.
func TestCancelQueuedHeadRacesPump(t *testing.T) {
	ctx := context.Background()
	for iter := 0; iter < 40; iter++ {
		f := raceFleet(t, 2, 1, 500*time.Microsecond)
		head, err := f.Submit(workload.ByName("mcf"), "head")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Submit(workload.ByName("gzip"), "second"); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Submit(workload.ByName("art"), "third"); err != nil {
			t.Fatal(err)
		}

		var (
			wg        sync.WaitGroup
			admitted  []fleet.Placed
			pumpErr   error
			cancelled bool
		)
		wg.Add(2)
		go func() {
			defer wg.Done()
			admitted, pumpErr = f.Pump(ctx)
		}()
		go func() {
			defer wg.Done()
			cancelled = f.CancelQueued(head)
		}()
		wg.Wait()
		if pumpErr != nil {
			t.Fatalf("iter %d: Pump: %v", iter, pumpErr)
		}

		headAdmitted := false
		for _, p := range admitted {
			if p.Tag == "head" {
				headAdmitted = true
			}
		}
		if cancelled == headAdmitted {
			t.Fatalf("iter %d: cancelled=%v and admitted=%v for the same ticket", iter, cancelled, headAdmitted)
		}
		// The non-head submissions always fit (capacity 4): they must be
		// admitted by this pump or still queued, and the ledger must hold.
		depth := f.QueueDepth()
		if len(admitted)+depth+boolToInt(cancelled) != 3 {
			t.Fatalf("iter %d: admitted %d + depth %d + cancelled %v does not cover 3 submissions",
				iter, len(admitted), depth, cancelled)
		}
		requireConserved(t, f)
	}
}

// TestSubmitRacesDepartureTriggeredPump races a fresh Submit against the
// pump that a departure triggers while holding the fleet lock. FIFO order
// and the conservation ledger must survive every interleaving.
func TestSubmitRacesDepartureTriggeredPump(t *testing.T) {
	ctx := context.Background()
	for iter := 0; iter < 40; iter++ {
		f := raceFleet(t, 1, 1, 0)
		resident, err := f.Place(ctx, workload.ByName("mcf"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Place(ctx, workload.ByName("gzip")); err != nil {
			t.Fatal(err)
		}
		// Fleet is now full (1 node × 2 cores × 1 per core): queue one.
		if _, err := f.Submit(workload.ByName("art"), "q1"); err != nil {
			t.Fatal(err)
		}

		var (
			wg       sync.WaitGroup
			admitted []fleet.Placed
			rmErr    error
		)
		wg.Add(2)
		go func() {
			defer wg.Done()
			admitted, rmErr = f.Remove(ctx, resident.Node, resident.Name)
		}()
		go func() {
			defer wg.Done()
			if _, err := f.Submit(workload.ByName("equake"), "q2"); err != nil {
				t.Errorf("iter %d: Submit: %v", iter, err)
			}
		}()
		wg.Wait()
		if rmErr != nil {
			t.Fatalf("iter %d: Remove: %v", iter, rmErr)
		}

		// The freed slot admits exactly one process, and FIFO means it can
		// be q2 only if q2 was enqueued before the departure pump drained.
		if len(admitted) != 1 {
			t.Fatalf("iter %d: departure admitted %d processes, want 1", iter, len(admitted))
		}
		if got := admitted[0].Tag; got != "q1" {
			t.Fatalf("iter %d: departure admitted %q, want FIFO head q1", iter, got)
		}
		if depth := f.QueueDepth(); depth != 1 {
			t.Fatalf("iter %d: queue depth %d after race, want 1", iter, depth)
		}
		requireConserved(t, f)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
