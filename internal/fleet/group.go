// Thread-group placement: admitting a group of T member threads as one
// transactional unit, shaped into derived bundle specs (internal/threads)
// according to the fleet policy.
//
// The policy decides the (local, remote) split:
//
//   - ColocateSharers admits ONE bundle of all T members: the shared
//     footprint is counted once, no coherence misses, private distances
//     dilated by the co-location.
//   - SpreadSharers admits T single-member bundles, preferring machines
//     no sibling of the same arrival occupies: undilated private
//     distances, but every member pays the coherence term for its T−1
//     remote siblings.
//   - Every other policy is group-OBLIVIOUS: T independent copies of the
//     base spec, exactly as if T unrelated legacy processes arrived
//     back-to-back (the comparison arm the exp study measures against).
//
// A single-thread group (T = 1) is indistinguishable from a legacy
// Place(base) under every policy: the bundle IS the base spec, no group
// shaping happens, and only the group ledger counters (registered lazily,
// so legacy fleets' metrics are untouched) record that a group passed by.
//
// The member ledger balances after every call: spawned = placed +
// faulted, with a group counted wholly placed or wholly faulted —
// chaos.Checker asserts exactly this invariant after every sim event.
package fleet

import (
	"context"
	"errors"
	"fmt"

	"mpmc/internal/manager"
	"mpmc/internal/parallel"
	"mpmc/internal/threads"
	"mpmc/internal/workload"
)

// shapeGroup shapes one group arrival into the member specs the policy
// wants to place, and whether they carry sibling anti-affinity. Both the
// single-lock fleet and the sharded serving tier place through it.
func shapeGroup(policy Policy, g threads.GroupSpec) (specs []*workload.Spec, antiAffinity bool, err error) {
	if g.Threads == 1 {
		return []*workload.Spec{g.Base}, false, nil
	}
	switch policy {
	case ColocateSharers:
		b, err := g.Bundle(g.Threads, 0)
		if err != nil {
			return nil, false, err
		}
		return []*workload.Spec{b}, false, nil
	case SpreadSharers:
		b, err := g.Bundle(1, g.Threads-1)
		if err != nil {
			return nil, false, err
		}
		specs = make([]*workload.Spec, g.Threads)
		for i := range specs {
			specs[i] = b
		}
		return specs, true, nil
	default:
		specs = make([]*workload.Spec, g.Threads)
		for i := range specs {
			specs[i] = g.Base
		}
		return specs, false, nil
	}
}

// PlaceGroup admits one thread-group arrival transactionally: either
// every member instance is admitted, or every machine's resident set and
// the round-robin cursor are restored and the error reports why (the
// cause stays reachable with errors.Is — a full fleet surfaces
// ErrFleetFull). The returned placements are in member order; under
// ColocateSharers a single placement stands for all T members.
func (f *Fleet) PlaceGroup(ctx context.Context, g threads.GroupSpec) ([]Placed, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	specs, antiAffinity, err := shapeGroup(f.cfg.Policy, g)
	if err != nil {
		return nil, err
	}
	if err := f.resolveFeatures(ctx, specs); err != nil {
		return nil, err
	}
	members := uint64(g.Threads)

	f.mu.Lock()
	defer f.mu.Unlock()
	// The group ledger is registered lazily (like fleet_node_down_total)
	// so fleets that never see a thread group keep their /metrics
	// exposition and sim reports byte-identical.
	f.reg.Counter("fleet_group_spawned_members_total").Add(members)

	snaps := make([]*manager.Snapshot, len(f.nodes))
	for i, n := range f.nodes {
		snaps[i] = n.mgr.Snapshot()
	}
	snapRR := f.rrNode
	admitted := 0
	rollback := func(cause error) error {
		for i, n := range f.nodes {
			n.mgr.Restore(snaps[i])
		}
		f.rrNode = snapRR
		f.discardJournalLocked()
		f.reg.Counter("fleet_group_faulted_members_total").Add(members)
		f.reg.Counter("fleet_groups_rejected_total").Inc()
		if errors.Is(cause, ErrFleetFull) {
			f.rejected.Inc()
		}
		if admitted > 0 {
			f.rollbacks.Inc()
			return fmt.Errorf("fleet: group rolled back after %d member placement(s): %w", admitted, cause)
		}
		return cause
	}

	out := make([]Placed, len(specs))
	used := map[int]bool{}
	for i, s := range specs {
		if err := ctx.Err(); err != nil {
			return nil, rollback(err)
		}
		var p Placed
		var err error
		if antiAffinity {
			p, err = f.placeAntiAffinityLocked(ctx, s, used)
		} else {
			p, err = f.placeOneLocked(ctx, s, PlaceOptions{})
		}
		if err != nil {
			return nil, rollback(err)
		}
		admitted++
		out[i] = p
	}
	f.placed.Add(uint64(len(out)))
	f.reg.Counter("fleet_group_placed_members_total").Add(members)
	f.reg.Counter("fleet_groups_placed_total").Inc()
	f.flushJournalLocked()
	return out, nil
}

// placeAntiAffinityLocked decides one spread-sharers member: all up nodes
// are scored concurrently (index-addressed, serial reduction, strict
// less-than — ties to the lowest node index at any worker count), nodes
// already hosting a sibling of this arrival are preferred against, and
// the winner is committed. When every admissible node already hosts a
// sibling, members double up rather than reject — anti-affinity is a
// preference; capacity is the constraint.
func (f *Fleet) placeAntiAffinityLocked(ctx context.Context, spec *workload.Spec, used map[int]bool) (Placed, error) {
	scores := make([]nodeScore, len(f.nodes))
	err := parallel.ForEach(ctx, f.cfg.Workers, len(f.nodes), func(i int) error {
		n := f.nodes[i]
		if n.down {
			return nil // zero score: OK=false
		}
		s, err := f.scoreNode(ctx, n, spec)
		if err != nil {
			return err
		}
		scores[i] = s
		return nil
	})
	if err != nil {
		return Placed{}, err
	}
	best := -1
	for i, s := range scores {
		if s.OK && !used[i] && (best < 0 || s.Value < scores[best].Value) {
			best = i
		}
	}
	if best < 0 {
		for i, s := range scores {
			if s.OK && (best < 0 || s.Value < scores[best].Value) {
				best = i
			}
		}
	}
	if best < 0 {
		return Placed{}, fmt.Errorf("fleet: %w for %s", ErrFleetFull, spec.Name)
	}
	p, err := f.commitLocked(ctx, spec, PlaceOptions{}, best, scores[best])
	if err != nil {
		return Placed{}, err
	}
	used[best] = true
	return p, nil
}
