package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"

	"mpmc/internal/cli"
	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/threads"
	"mpmc/internal/workload"
	"mpmc/internal/xrand"
)

// ScenarioMachine is one machine entry in a scenario file.
type ScenarioMachine struct {
	// Name is the node identity (default "m<index>").
	Name string `json:"name,omitempty"`
	// Preset picks the modeled CMP: server, workstation, or laptop.
	Preset string `json:"preset"`
	// MaxPerCore bounds time-sharing depth (0 = unbounded).
	MaxPerCore int `json:"max_per_core,omitempty"`
}

// Scenario describes one fleet simulation: the machines, the arrival
// process, and the policies to compare. Everything is derived from Seed,
// so a scenario replays identically on every run and at every worker
// count.
type Scenario struct {
	Seed     uint64            `json:"seed"`
	Machines []ScenarioMachine `json:"machines"`
	// Policies lists the policies to replay the trace under (default: all
	// four, in Policies() order).
	Policies []string `json:"policies,omitempty"`
	// Processes is the trace length.
	Processes int `json:"processes"`
	// Workloads restricts the benchmark pool (default: the full suite).
	Workloads []string `json:"workloads,omitempty"`
	// MeanInterarrival and MeanLifetime parameterize the exponential
	// arrival and residence times (simulated seconds).
	MeanInterarrival float64 `json:"mean_interarrival"`
	MeanLifetime     float64 `json:"mean_lifetime"`
	// QueueCap bounds the admission queue (0 = no queue: arrivals that do
	// not fit are rejected outright).
	QueueCap int `json:"queue_cap,omitempty"`
	// BinPackCeiling overrides BinPack's degradation ceiling (0 = 0.25).
	BinPackCeiling float64 `json:"binpack_ceiling,omitempty"`
	// RebalanceEvery inserts a fleet Rebalance pass with this period
	// (simulated seconds; 0 = never).
	RebalanceEvery float64 `json:"rebalance_every,omitempty"`
	// RebalanceMinImprovement is the Rebalance threshold (total SPI).
	RebalanceMinImprovement float64 `json:"rebalance_min_improvement,omitempty"`
	// ThreadGroups, when set, makes arrivals thread GROUPS: each process
	// draws a member count and sharing fraction (after its legacy draws,
	// so scenarios without this block replay byte-identically). Groups
	// with one member take the exact legacy arrival path.
	ThreadGroups *ThreadGroupConfig `json:"thread_groups,omitempty"`
	// PowerCap, when positive, caps the fleet's watt budget from t=0:
	// arrivals that would bust it queue or reject, and every cap change
	// runs an enforcement pass. CapEvents re-set the budget mid-run
	// (watts 0 = uncap). Scenarios without either replay byte-identically
	// to pre-DVFS output.
	PowerCap  float64    `json:"power_cap,omitempty"`
	CapEvents []CapEvent `json:"cap_events,omitempty"`
}

// CapEvent is one scheduled power-budget change in a scenario.
type CapEvent struct {
	Time  float64 `json:"time"`
	Watts float64 `json:"watts"`
}

// ThreadGroupConfig parameterizes thread-group arrivals in a scenario.
type ThreadGroupConfig struct {
	// MaxThreads bounds the per-process member count: T is drawn
	// uniformly from 1..MaxThreads.
	MaxThreads int `json:"max_threads"`
	// SharedFracs is the pool of sharing fractions σ; each group draws
	// one uniformly.
	SharedFracs []float64 `json:"shared_fracs"`
	// WriteFrac is ω, the write intensity on shared data (one value for
	// the whole scenario).
	WriteFrac float64 `json:"write_frac"`
}

// LoadScenario reads and validates a scenario file. Unknown fields are
// rejected so typos fail loudly instead of silently changing the run.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: reading scenario: %w", err)
	}
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("fleet: parsing scenario %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: scenario %s: %w", path, err)
	}
	return &sc, nil
}

// Validate checks the scenario for structural errors.
func (sc *Scenario) Validate() error {
	if len(sc.Machines) == 0 {
		return errors.New("no machines")
	}
	for i, m := range sc.Machines {
		if _, err := cli.MachineByName(m.Preset); err != nil {
			return fmt.Errorf("machine %d: %w", i, err)
		}
		if m.MaxPerCore < 0 {
			return fmt.Errorf("machine %d: negative max_per_core", i)
		}
	}
	if sc.Processes <= 0 {
		return errors.New("processes must be positive")
	}
	if sc.MeanInterarrival <= 0 || sc.MeanLifetime <= 0 {
		return errors.New("mean_interarrival and mean_lifetime must be positive")
	}
	for _, p := range sc.policies() {
		if _, err := ParsePolicy(p); err != nil {
			return err
		}
	}
	for _, w := range sc.workloadNames() {
		if workload.ByName(w) == nil {
			return fmt.Errorf("unknown workload %q", w)
		}
	}
	if sc.RebalanceEvery < 0 {
		return errors.New("negative rebalance_every")
	}
	if sc.PowerCap < 0 {
		return errors.New("negative power_cap")
	}
	for i, ce := range sc.CapEvents {
		if ce.Time < 0 {
			return fmt.Errorf("cap_events[%d]: negative time", i)
		}
		if ce.Watts < 0 {
			return fmt.Errorf("cap_events[%d]: negative watts", i)
		}
	}
	if tg := sc.ThreadGroups; tg != nil {
		if tg.MaxThreads < 1 {
			return fmt.Errorf("thread_groups: max_threads %d < 1", tg.MaxThreads)
		}
		if len(tg.SharedFracs) == 0 {
			return errors.New("thread_groups: empty shared_fracs")
		}
		// Full group validation (σ, ω ranges; MaxThreads·L2RPI ≤ 1 for
		// every pool workload) so a bad scenario fails at load, not at
		// the first wide group's arrival.
		for _, w := range sc.workloadNames() {
			for _, frac := range tg.SharedFracs {
				g := threads.GroupSpec{
					Base: workload.ByName(w), Threads: tg.MaxThreads,
					SharedFrac: frac, WriteFrac: tg.WriteFrac,
				}
				if err := g.Validate(); err != nil {
					return fmt.Errorf("thread_groups: %w", err)
				}
			}
		}
	}
	return nil
}

func (sc *Scenario) policies() []string {
	if len(sc.Policies) > 0 {
		return sc.Policies
	}
	var out []string
	for _, p := range Policies() {
		out = append(out, p.String())
	}
	return out
}

func (sc *Scenario) workloadNames() []string {
	if len(sc.Workloads) > 0 {
		return sc.Workloads
	}
	var out []string
	for _, s := range workload.Suite() {
		out = append(out, s.Name)
	}
	return out
}

// TraceProc is one simulated process: what it runs and when it arrives
// and departs. Threads and SharedFrac describe its thread group when the
// scenario enables them (Threads is 1 — a legacy process — otherwise).
type TraceProc struct {
	ID             int
	Spec           *workload.Spec
	Arrive, Depart float64
	Threads        int
	SharedFrac     float64
}

// expSample draws from Exp(mean) — xrand has no exponential sampler, so
// invert the CDF (1-Float64 keeps the argument of Log away from zero).
func expSample(r *xrand.Rand, mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Trace derives the arrival trace from the scenario seed: cumulative
// exponential interarrivals, exponential lifetimes, workloads drawn
// uniformly from the pool. The trace is generated once and shared by every
// policy (and, in the chaos harness, every replay), so runs are compared
// on identical demand.
func (sc *Scenario) Trace() []TraceProc {
	pool := make([]*workload.Spec, 0, len(sc.workloadNames()))
	for _, name := range sc.workloadNames() {
		pool = append(pool, workload.ByName(name))
	}
	r := xrand.New(sc.Seed)
	t := 0.0
	procs := make([]TraceProc, sc.Processes)
	for i := range procs {
		t += expSample(r, sc.MeanInterarrival)
		life := expSample(r, sc.MeanLifetime)
		procs[i] = TraceProc{
			ID:      i,
			Spec:    pool[r.Intn(len(pool))],
			Arrive:  t,
			Depart:  t + life,
			Threads: 1,
		}
		// Group draws come AFTER every legacy draw of this process, so a
		// scenario without thread_groups consumes the random stream
		// exactly as before and stays byte-identical.
		if tg := sc.ThreadGroups; tg != nil {
			procs[i].Threads = 1 + r.Intn(tg.MaxThreads)
			procs[i].SharedFrac = tg.SharedFracs[r.Intn(len(tg.SharedFracs))]
		}
	}
	return procs
}

// Event kinds, in their same-timestamp processing order: departures free
// capacity before rebalancing considers the layout, and both run before
// arrivals claim slots; cap changes apply last, so a budget that tightens
// at t constrains the state arrivals at t produced.
const (
	evDepart = iota
	evRebalance
	evArrive
	evCap
)

type event struct {
	time float64
	kind int
	seq  int // tiebreak: trace order within (time, kind)
	proc int // trace index (arrive/depart)
}

// Sim replays one scenario under each requested policy on a virtual
// clock. Nothing reads wall time, so a run is a pure function of the
// scenario — byte-identical across runs and worker counts.
type Sim struct {
	sc      *Scenario
	workers int

	// ScoreCacheCap overrides Config.ScoreCacheCap for every replayed
	// fleet (0 = the fleet default, negative = cold solving). Like
	// workers it affects speed, never output — the differential suite
	// replays scenarios at both settings and asserts byte equality.
	ScoreCacheCap int

	// AfterEvent, when non-nil, runs after every processed sim event
	// with the policy's live fleet — the hook the chaos invariant sweep
	// uses to check model and ledger conservation at every step. An
	// error aborts the run. It must not mutate the fleet.
	AfterEvent func(f *Fleet) error
}

// NewSim builds a simulator. workers caps scoring concurrency (0 =
// GOMAXPROCS); it affects speed, never output.
func NewSim(sc *Scenario, workers int) *Sim {
	return &Sim{sc: sc, workers: workers}
}

// PolicyReport is one policy's outcome on the shared trace.
type PolicyReport struct {
	Policy string `json:"policy"`
	// Placed counts every admission (direct and from the queue); Rejected
	// counts arrivals that found no admissible machine; QueueAdmitted,
	// QueueAbandoned and QueueRejected break down the queue's fate.
	Placed         uint64 `json:"placed"`
	Rejected       uint64 `json:"rejected"`
	QueueAdmitted  uint64 `json:"queue_admitted"`
	QueueAbandoned uint64 `json:"queue_abandoned"`
	QueueRejected  uint64 `json:"queue_rejected"`
	Moves          uint64 `json:"moves"`
	ProfileRuns    uint64 `json:"profile_runs"`
	// Thread-group ledger (present only when the scenario places groups,
	// so legacy reports and their goldens are byte-identical): groups
	// admitted/rejected whole, and the member ledger, which conserves as
	// members spawned = placed + faulted.
	GroupsPlaced   uint64 `json:"groups_placed,omitempty"`
	GroupsRejected uint64 `json:"groups_rejected,omitempty"`
	MembersPlaced  uint64 `json:"members_placed,omitempty"`
	MembersFaulted uint64 `json:"members_faulted,omitempty"`
	// AvgSPI and AvgWatts are time-weighted fleet-wide averages over the
	// simulated horizon (first arrival to last departure).
	AvgSPI   float64 `json:"avg_spi"`
	AvgWatts float64 `json:"avg_watts"`
	// FinalResidents should be zero: every trace process departs.
	FinalResidents int `json:"final_residents"`
	// Power-cap ledger (present only when the scenario engages a cap, so
	// legacy reports and their goldens are byte-identical): EnergyJ is the
	// time-weighted watt integral over the horizon (joules of simulated
	// energy), CapDownclocks/CapMigrations count enforcement actions, and
	// CapUnsatisfied counts enforcement passes that could not fit the
	// budget even at every ladder floor.
	EnergyJ        float64 `json:"energy_j,omitempty"`
	CapDownclocks  uint64  `json:"cap_downclocks,omitempty"`
	CapMigrations  uint64  `json:"cap_migrations,omitempty"`
	CapUnsatisfied uint64  `json:"cap_unsatisfied,omitempty"`
}

// Report is the simulation outcome: the scenario identity plus one entry
// per policy, in request order.
type Report struct {
	Seed      uint64         `json:"seed"`
	Machines  []string       `json:"machines"`
	Processes int            `json:"processes"`
	Horizon   float64        `json:"horizon"`
	Policies  []PolicyReport `json:"policies"`
}

// Run replays the trace under every requested policy.
func (s *Sim) Run(ctx context.Context) (*Report, error) {
	trace := s.sc.Trace()
	horizon := 0.0
	for _, p := range trace {
		if p.Depart > horizon {
			horizon = p.Depart
		}
	}
	rep := &Report{
		Seed:      s.sc.Seed,
		Processes: s.sc.Processes,
		Horizon:   horizon,
	}
	for i, m := range s.sc.Machines {
		name := m.Name
		if name == "" {
			name = fmt.Sprintf("m%d", i)
		}
		rep.Machines = append(rep.Machines, name+":"+m.Preset)
	}
	for _, pname := range s.sc.policies() {
		pr, err := s.runPolicy(ctx, pname, trace, horizon)
		if err != nil {
			return nil, fmt.Errorf("fleet: sim policy %s: %w", pname, err)
		}
		rep.Policies = append(rep.Policies, pr)
	}
	return rep, nil
}

// buildFleet assembles the simulated fleet for one policy: machine
// presets from the scenario, the analytic truth oracle in place of
// profiling sweeps, and one shared synthetic power model — everything
// deterministic and instant.
func (s *Sim) buildFleet(pname string) (*Fleet, error) {
	policy, err := ParsePolicy(pname)
	if err != nil {
		return nil, err
	}
	pm, err := SyntheticPowerModel()
	if err != nil {
		return nil, err
	}
	var nodes []NodeConfig
	for _, m := range s.sc.Machines {
		preset, err := cli.MachineByName(m.Preset)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, NodeConfig{
			Name:       m.Name,
			Machine:    preset,
			Power:      pm,
			MaxPerCore: m.MaxPerCore,
		})
	}
	return New(Config{
		Nodes:          nodes,
		Policy:         policy,
		BinPackCeiling: s.sc.BinPackCeiling,
		QueueCap:       s.sc.QueueCap,
		PowerCap:       s.sc.PowerCap,
		Seed:           s.sc.Seed,
		Workers:        s.workers,
		ScoreCacheCap:  s.ScoreCacheCap,
		Profile: func(ctx context.Context, m *machine.Machine, spec *workload.Spec, opts core.ProfileOptions) (*core.FeatureVector, error) {
			return core.TruthFeature(spec, m), nil
		},
	})
}

// procState tracks where one trace process currently lives. A
// thread-group process (Threads > 1) records every member placement;
// single-thread processes use the legacy resident/queued fields.
type procState struct {
	resident bool
	node     string
	instance string
	queued   bool
	ticket   int
	members  []Placed
}

func (s *Sim) runPolicy(ctx context.Context, pname string, trace []TraceProc, horizon float64) (PolicyReport, error) {
	f, err := s.buildFleet(pname)
	if err != nil {
		return PolicyReport{}, err
	}

	var events []event
	for _, p := range trace {
		events = append(events,
			event{time: p.Arrive, kind: evArrive, seq: p.ID, proc: p.ID},
			event{time: p.Depart, kind: evDepart, seq: p.ID, proc: p.ID},
		)
	}
	if s.sc.RebalanceEvery > 0 {
		for k, t := 1, s.sc.RebalanceEvery; t < horizon; k, t = k+1, float64(k+1)*s.sc.RebalanceEvery {
			events = append(events, event{time: t, kind: evRebalance, seq: k})
		}
	}
	for k := range s.sc.CapEvents {
		events = append(events, event{time: s.sc.CapEvents[k].Time, kind: evCap, seq: k, proc: k})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		if events[i].kind != events[j].kind {
			return events[i].kind < events[j].kind
		}
		return events[i].seq < events[j].seq
	})

	states := make([]procState, len(trace))
	admit := func(placed []Placed) error {
		for _, p := range placed {
			if p.Tag == "" {
				continue
			}
			id, err := strconv.Atoi(p.Tag)
			if err != nil {
				return fmt.Errorf("bad queue tag %q: %w", p.Tag, err)
			}
			states[id] = procState{resident: true, node: p.Node, instance: p.Name}
		}
		return nil
	}

	// Time-weighted integrals of the fleet totals: between consecutive
	// event timestamps the fleet is static, so each interval contributes
	// totals × dt.
	prevT := 0.0
	var spiSec, wattSec float64
	var capDownclocks, capMigrations, capUnsatisfied uint64
	integrate := func(now float64) error {
		if now <= prevT {
			return nil
		}
		spi, watts, err := f.Totals(ctx)
		if err != nil {
			return err
		}
		spiSec += spi * (now - prevT)
		wattSec += watts * (now - prevT)
		prevT = now
		return nil
	}
	// Totals are sampled lazily: integrate(now) charges the *current*
	// state for the elapsed interval, so it must run before the state
	// changes at now.

	for _, ev := range events {
		if err := integrate(ev.time); err != nil {
			return PolicyReport{}, err
		}
		switch ev.kind {
		case evArrive:
			p := trace[ev.proc]
			if p.Threads > 1 {
				// Thread groups place as one transactional unit and
				// bypass the admission queue: a group that does not fit
				// is rejected whole (the rejection is counted).
				g := threads.GroupSpec{
					Base: p.Spec, Threads: p.Threads,
					SharedFrac: p.SharedFrac, WriteFrac: s.sc.ThreadGroups.WriteFrac,
				}
				placed, err := f.PlaceGroup(ctx, g)
				switch {
				case err == nil:
					states[ev.proc] = procState{members: placed}
				case errors.Is(err, ErrFleetFull):
				default:
					return PolicyReport{}, err
				}
				break
			}
			placed, err := f.Place(ctx, p.Spec)
			switch {
			case err == nil:
				states[ev.proc] = procState{resident: true, node: placed.Node, instance: placed.Name}
			case errors.Is(err, ErrFleetFull):
				ticket, qerr := f.Submit(p.Spec, strconv.Itoa(p.ID))
				if qerr == nil {
					states[ev.proc] = procState{queued: true, ticket: ticket}
				} else if !errors.Is(qerr, ErrQueueFull) {
					return PolicyReport{}, qerr
				}
			default:
				return PolicyReport{}, err
			}
		case evDepart:
			st := states[ev.proc]
			switch {
			case len(st.members) > 0:
				// The whole group departs: members leave in placement
				// order, and each freed slot may pump queued legacy
				// arrivals in.
				for _, m := range st.members {
					admitted, err := f.Remove(ctx, m.Node, m.Name)
					if err != nil {
						return PolicyReport{}, err
					}
					if err := admit(admitted); err != nil {
						return PolicyReport{}, err
					}
				}
				states[ev.proc] = procState{}
			case st.resident:
				admitted, err := f.Remove(ctx, st.node, st.instance)
				if err != nil {
					return PolicyReport{}, err
				}
				states[ev.proc] = procState{}
				if err := admit(admitted); err != nil {
					return PolicyReport{}, err
				}
			case st.queued:
				f.CancelQueued(st.ticket)
				states[ev.proc] = procState{}
			}
		case evCap:
			// Budget change: engage (or clear) the cap, then enforce —
			// down-clocking or migrating residents until the fleet fits.
			if err := f.SetPowerCap(ctx, s.sc.CapEvents[ev.proc].Watts); err != nil {
				return PolicyReport{}, err
			}
			crep, err := f.EnforceCap(ctx)
			if err != nil {
				return PolicyReport{}, err
			}
			capDownclocks += uint64(crep.Downclocks)
			capMigrations += uint64(crep.Migrations)
			if !crep.Satisfied {
				capUnsatisfied++
			}
			// Enforcement migrations rename residents on their new nodes;
			// keep the departure bookkeeping pointed at them (same fixup as
			// evRebalance, once per executed move).
			for _, mv := range crep.Moves {
			capfix:
				for i := range states {
					if states[i].resident && states[i].node == mv.From && states[i].instance == mv.Name {
						states[i].node, states[i].instance = mv.To, mv.NewName
						break
					}
					for j, m := range states[i].members {
						if m.Node == mv.From && m.Name == mv.Name {
							states[i].members[j].Node, states[i].members[j].Name = mv.To, mv.NewName
							break capfix
						}
					}
				}
			}
		case evRebalance:
			mv, err := f.Rebalance(ctx, s.sc.RebalanceMinImprovement)
			if err != nil && !errors.Is(err, manager.ErrNoImprovement) {
				return PolicyReport{}, err
			}
			if err == nil {
				// The migrated process got a fresh instance name on its
				// new node; keep the departure bookkeeping pointed at it.
			fixup:
				for i := range states {
					if states[i].resident && states[i].node == mv.From && states[i].instance == mv.Name {
						states[i].node, states[i].instance = mv.To, mv.NewName
						break
					}
					for j, m := range states[i].members {
						if m.Node == mv.From && m.Name == mv.Name {
							states[i].members[j].Node, states[i].members[j].Name = mv.To, mv.NewName
							break fixup
						}
					}
				}
			}
		}
		if s.AfterEvent != nil {
			if err := s.AfterEvent(f); err != nil {
				return PolicyReport{}, fmt.Errorf("after event at t=%v: %w", ev.time, err)
			}
		}
	}
	if err := integrate(horizon); err != nil {
		return PolicyReport{}, err
	}

	reg := f.Registry()
	final := 0
	for _, st := range states {
		if st.resident || st.queued {
			final++
		}
	}
	pr := PolicyReport{
		Policy:         pname,
		Placed:         reg.CounterValue("fleet_place_total"),
		Rejected:       reg.CounterValue("fleet_place_rejected_total"),
		QueueAdmitted:  reg.CounterValue("fleet_queue_admitted_total"),
		QueueAbandoned: reg.CounterValue("fleet_queue_abandoned_total"),
		QueueRejected:  reg.CounterValue("fleet_queue_rejected_total"),
		Moves:          reg.CounterValue("fleet_rebalance_moves_total"),
		ProfileRuns:    reg.CounterValue("fleet_profile_runs_total"),
		GroupsPlaced:   reg.CounterValue("fleet_groups_placed_total"),
		GroupsRejected: reg.CounterValue("fleet_groups_rejected_total"),
		MembersPlaced:  reg.CounterValue("fleet_group_placed_members_total"),
		MembersFaulted: reg.CounterValue("fleet_group_faulted_members_total"),
		AvgSPI:         spiSec / horizon,
		AvgWatts:       wattSec / horizon,
		FinalResidents: final,
	}
	if s.sc.PowerCap > 0 || len(s.sc.CapEvents) > 0 {
		// Assigned only when the scenario engages a cap, so legacy report
		// goldens keep their exact bytes.
		pr.EnergyJ = wattSec
		pr.CapDownclocks = capDownclocks
		pr.CapMigrations = capMigrations
		pr.CapUnsatisfied = capUnsatisfied
	}
	return pr, nil
}
