package fleet

import (
	"context"
	"errors"
	"fmt"

	"mpmc/internal/cache"
	"mpmc/internal/cli"
	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/metrics"
	"mpmc/internal/workload"
)

// ProfileFunc runs one profiling sweep. The default is core.Profile; the
// simulator and tests substitute the analytic oracle to keep replays
// instant and deterministic.
type ProfileFunc func(ctx context.Context, m *machine.Machine, spec *workload.Spec, opts core.ProfileOptions) (*core.FeatureVector, error)

// featureCache is the fleet's shared FeatureSource: one bounded LRU of
// profiled feature vectors in front of the profiling sweep, keyed by
// (machine kind, workload) because a feature vector is profiled against a
// specific cache geometry — two nodes of the same preset share vectors,
// heterogeneous presets each get their own. Singleflight deduplication
// guarantees that a burst of placements for one benchmark triggers exactly
// one sweep per machine kind, no matter how many nodes score it
// concurrently.
type featureCache struct {
	lru    *cache.LRUMap[*core.FeatureVector]
	flight cache.Flight[*core.FeatureVector]

	profile   ProfileFunc
	intercept func(site, key string) error
	seed      uint64
	quick     bool
	workers   int

	runs      *metrics.Counter
	dedups    *metrics.Counter
	abandoned *metrics.Counter
}

func newFeatureCache(cfg Config, reg *metrics.Registry) *featureCache {
	return &featureCache{
		lru:       cache.NewLRUMap[*core.FeatureVector](cfg.CacheCap),
		profile:   cfg.Profile,
		intercept: cfg.Intercept,
		seed:      cfg.Seed,
		quick:     cfg.Quick,
		workers:   cfg.Workers,
		runs:      reg.Counter("fleet_profile_runs_total"),
		dedups:    reg.Counter("fleet_profile_dedup_total"),
		abandoned: reg.Counter("fleet_profile_abandoned_total"),
	}
}

// key builds the cache identity of a (machine kind, workload) pair. The
// machine name identifies the preset (and therefore the cache geometry the
// sweep ran against); NUL never appears in either name.
func featureKey(m *machine.Machine, spec *workload.Spec) string {
	return m.Name + "\x00" + spec.Name
}

// get returns the feature vector of spec profiled against machine kind m,
// running the sweep on first sight. Per-workload seeds derive from the
// base seed and the workload name alone (core.ProfileSeed via the shared
// cli.FeatureConfig), so vectors are identical to the ones the
// single-machine server and the CLI tools produce.
func (fc *featureCache) get(ctx context.Context, m *machine.Machine, spec *workload.Spec) (*core.FeatureVector, error) {
	key := featureKey(m, spec)
	if f, ok := fc.lru.Get(key); ok {
		return f, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err, shared := fc.flight.Do(key, func() (*core.FeatureVector, error) {
		if f, ok := fc.lru.Get(key); ok {
			return f, nil
		}
		// The injection seam sits inside the singleflight on purpose: a
		// burst of deduplicated callers must all observe one injected
		// failure (and nothing may be cached from it), exactly like a
		// real profiling error.
		if fc.intercept != nil {
			if err := fc.intercept("fleet.profile", key); err != nil {
				return nil, err
			}
		}
		fc.runs.Inc()
		fcfg := cli.FeatureConfig{Seed: fc.seed, Quick: fc.quick, Workers: fc.workers}
		f, err := fc.profile(ctx, m, spec, fcfg.ProfileOptions(spec.Name))
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fc.abandoned.Inc()
			}
			return nil, fmt.Errorf("fleet: profiling %s on %s: %w", spec.Name, m.Name, err)
		}
		fc.lru.Put(key, f)
		return f, nil
	})
	if shared {
		fc.dedups.Inc()
	}
	return f, err
}

// nodeSource adapts the shared cache to one node's manager.FeatureSource.
type nodeSource struct {
	fc *featureCache
	m  *machine.Machine
}

func (s nodeSource) FeatureOf(ctx context.Context, spec *workload.Spec) (*core.FeatureVector, error) {
	return s.fc.get(ctx, s.m, spec)
}

var _ manager.FeatureSource = nodeSource{}
