package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"mpmc/internal/cache"
	"mpmc/internal/cli"
	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/metrics"
	"mpmc/internal/workload"
)

// ProfileFunc runs one profiling sweep. The default is core.Profile; the
// simulator and tests substitute the analytic oracle to keep replays
// instant and deterministic.
type ProfileFunc func(ctx context.Context, m *machine.Machine, spec *workload.Spec, opts core.ProfileOptions) (*core.FeatureVector, error)

// featureCache is the fleet's shared FeatureSource: one bounded LRU of
// profiled feature vectors in front of the profiling sweep, keyed by
// (machine kind, workload) because a feature vector is profiled against a
// specific cache geometry — two nodes of the same preset share vectors,
// heterogeneous presets each get their own. Singleflight deduplication
// guarantees that a burst of placements for one benchmark triggers exactly
// one sweep per machine kind, no matter how many nodes score it
// concurrently.
type featureCache struct {
	lru    *cache.LRUMap[*core.FeatureVector]
	flight cache.Flight[*core.FeatureVector]

	// keys interns the (machine kind, workload) key strings, keyed by the
	// pointer pair: key construction sits on the placement hot path, and
	// the pair space is tiny (kinds × workloads) while the concatenation
	// was a measurable share of a warm placement. A plain map under an
	// RWMutex beats sync.Map here — struct keys avoid the interface-boxing
	// hash that dominated the warm profile.
	keyMu sync.RWMutex
	keys  map[featPair]string

	profile   ProfileFunc
	intercept func(site, key string) error
	seed      uint64
	quick     bool
	workers   int

	runs      *metrics.Counter
	dedups    *metrics.Counter
	abandoned *metrics.Counter
}

func newFeatureCache(cfg Config, reg *metrics.Registry) *featureCache {
	return &featureCache{
		keys:      map[featPair]string{},
		lru:       cache.NewLRUMap[*core.FeatureVector](cfg.CacheCap),
		profile:   cfg.Profile,
		intercept: cfg.Intercept,
		seed:      cfg.Seed,
		quick:     cfg.Quick,
		workers:   cfg.Workers,
		runs:      reg.Counter("fleet_profile_runs_total"),
		dedups:    reg.Counter("fleet_profile_dedup_total"),
		abandoned: reg.Counter("fleet_profile_abandoned_total"),
	}
}

// key builds the cache identity of a (machine kind, workload) pair. The
// machine name identifies the preset (and therefore the cache geometry the
// sweep ran against); NUL never appears in either name.
func featureKey(m *machine.Machine, spec *workload.Spec) string {
	return m.Name + "\x00" + spec.Name
}

// featPair indexes the interned key strings by identity.
type featPair struct {
	m    *machine.Machine
	spec *workload.Spec
}

// keyOf returns featureKey(m, spec) without rebuilding the string on
// every call.
func (fc *featureCache) keyOf(m *machine.Machine, spec *workload.Spec) string {
	p := featPair{m: m, spec: spec}
	fc.keyMu.RLock()
	k, ok := fc.keys[p]
	fc.keyMu.RUnlock()
	if ok {
		return k
	}
	k = featureKey(m, spec)
	fc.keyMu.Lock()
	fc.keys[p] = k
	fc.keyMu.Unlock()
	return k
}

// peek returns the cached feature vector of (m, spec) without ever
// profiling: a silent probe for fast paths that fall back to get on a
// miss.
func (fc *featureCache) peek(m *machine.Machine, spec *workload.Spec) (*core.FeatureVector, bool) {
	return fc.lru.Get(fc.keyOf(m, spec))
}

// get returns the feature vector of spec profiled against machine kind m,
// running the sweep on first sight. Per-workload seeds derive from the
// base seed and the workload name alone (core.ProfileSeed via the shared
// cli.FeatureConfig), so vectors are identical to the ones the
// single-machine server and the CLI tools produce.
func (fc *featureCache) get(ctx context.Context, m *machine.Machine, spec *workload.Spec) (*core.FeatureVector, error) {
	key := fc.keyOf(m, spec)
	if f, ok := fc.lru.Get(key); ok {
		return f, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err, shared := fc.flight.Do(key, func() (*core.FeatureVector, error) {
		if f, ok := fc.lru.Get(key); ok {
			return f, nil
		}
		// The injection seam sits inside the singleflight on purpose: a
		// burst of deduplicated callers must all observe one injected
		// failure (and nothing may be cached from it), exactly like a
		// real profiling error.
		if fc.intercept != nil {
			if err := fc.intercept("fleet.profile", key); err != nil {
				return nil, err
			}
		}
		fc.runs.Inc()
		fcfg := cli.FeatureConfig{Seed: fc.seed, Quick: fc.quick, Workers: fc.workers}
		f, err := fc.profile(ctx, m, spec, fcfg.ProfileOptions(spec.Name))
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fc.abandoned.Inc()
			}
			return nil, fmt.Errorf("fleet: profiling %s on %s: %w", spec.Name, m.Name, err)
		}
		// Thread-group bundles carry their member count on the spec;
		// stamp it here so every profiler (including injected test
		// profilers that ignore the field) yields group-weighted terms.
		if spec.Members > 1 && f.Members != spec.Members {
			f.Members = spec.Members
		}
		fc.lru.Put(key, f)
		return f, nil
	})
	if shared {
		fc.dedups.Inc()
	}
	return f, err
}

// nodeSource adapts the shared cache to one node's manager.FeatureSource.
type nodeSource struct {
	fc *featureCache
	m  *machine.Machine
}

func (s nodeSource) FeatureOf(ctx context.Context, spec *workload.Spec) (*core.FeatureVector, error) {
	return s.fc.get(ctx, s.m, spec)
}

var _ manager.FeatureSource = nodeSource{}
