package fleet_test

// Short-lane coverage of the sharded serving surface: the read-side
// accessors, the queue pump's fast/slow/preempt paths, node lifecycle,
// and the WAL journal→recover round trip, all deterministic (no races,
// no wall-clock) so they run in -short where the heavy equivalence
// sweeps skip.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"testing"

	"mpmc/internal/core"
	"mpmc/internal/fleet"
	"mpmc/internal/machine"
	"mpmc/internal/manager"
	"mpmc/internal/wal"
	"mpmc/internal/workload"
)

// surfaceFleet builds a deterministic sharded fleet over truth-table
// features; mutate adjusts the config before construction.
func surfaceFleet(t *testing.T, machines, shards int, mutate func(*fleet.Config)) *fleet.Sharded {
	t.Helper()
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	var nodes []fleet.NodeConfig
	for i := 0; i < machines; i++ {
		nodes = append(nodes, fleet.NodeConfig{
			Name: fmt.Sprintf("m%d", i), Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 1,
		})
	}
	cfg := fleet.Config{
		Nodes:    nodes,
		Policy:   fleet.LeastDegradation,
		QueueCap: 8,
		Profile: func(_ context.Context, m *machine.Machine, spec *workload.Spec, _ core.ProfileOptions) (*core.FeatureVector, error) {
			return core.TruthFeature(spec, m), nil
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := fleet.NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardedServingSurface(t *testing.T) {
	ctx := context.Background()
	s := surfaceFleet(t, 4, 2, nil) // 4 machines x 2 cores x MaxPerCore 1 = 8 slots

	if got := s.Policy(); got != fleet.LeastDegradation {
		t.Fatalf("Policy() = %v", got)
	}
	if got := s.Shards(); got != 2 {
		t.Fatalf("Shards() = %d", got)
	}
	names := s.NodeNames()
	if len(names) != 4 || names[0] != "m0" || names[3] != "m3" {
		t.Fatalf("NodeNames() = %v", names)
	}

	// Batch placement across shards.
	batch, err := s.PlaceAll(ctx, []*workload.Spec{
		workload.ByName("gzip"), workload.ByName("vpr"), workload.ByName("mcf"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("PlaceAll placed %d, want 3", len(batch))
	}

	st, err := s.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 4 {
		t.Fatalf("State has %d nodes, want 4", len(st.Nodes))
	}
	residents := 0
	for _, n := range st.Nodes {
		residents += n.Residents
	}
	if residents != 3 {
		t.Fatalf("State shows %d residents, want 3", residents)
	}
	spi, watts, err := s.Totals(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if spi <= 0 || watts <= 0 {
		t.Fatalf("Totals = (%v, %v), want positive", spi, watts)
	}

	// Queue → pump fast path: capacity is free, so Pump admits both.
	for _, name := range []string{"art", "swim"} {
		if _, err := s.Submit(workload.ByName(name), name); err != nil {
			t.Fatal(err)
		}
	}
	if qi := s.QueuedInfo(); len(qi) != 2 {
		t.Fatalf("QueuedInfo = %v, want 2 entries", qi)
	}
	pumped, err := s.Pump(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(pumped) != 2 || s.QueueDepth() != 0 {
		t.Fatalf("Pump admitted %d (depth %d), want 2 (0)", len(pumped), s.QueueDepth())
	}

	// Fill the remaining 3 slots, then confirm the full-fleet paths:
	// a direct Place is rejected (slow-path confirmation) and a queued
	// zero-priority head blocks (pumpSlow confirms no fit).
	for _, name := range []string{"ammp", "applu", "twolf"} {
		if _, err := s.Place(ctx, workload.ByName(name)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Place(ctx, workload.ByName("equake")); err == nil {
		t.Fatal("Place on a full fleet succeeded")
	}
	tk, err := s.Submit(workload.ByName("bzip2"), "blocked")
	if err != nil {
		t.Fatal(err)
	}
	if pumped, err := s.Pump(ctx); err != nil || len(pumped) != 0 {
		t.Fatalf("Pump on full fleet: %v placed, err %v", pumped, err)
	}
	if d := s.QueueDepth(); d != 1 {
		t.Fatalf("blocked head left depth %d, want 1", d)
	}

	// Priority preemption through the pump: the class-2 arrival jumps
	// the zero-priority head and evicts a victim somewhere.
	if _, err := s.SubmitWith(workload.ByName("equake"), "vip", 2); err != nil {
		t.Fatal(err)
	}
	pumped, err = s.Pump(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(pumped) != 1 || pumped[0].Tag != "vip" {
		t.Fatalf("priority pump admitted %v, want the vip entry", pumped)
	}

	// Cancel whatever is still queued (the blocked head, plus any
	// requeued victim), then exercise the node lifecycle.
	s.CancelQueued(tk)
	for _, qe := range s.QueuedInfo() {
		s.CancelQueued(qe.Ticket)
	}
	evicted, err := s.FailNode("m0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FailNode("m0"); err == nil {
		t.Fatal("failing a down node succeeded")
	}
	if _, err := s.RestoreNode(ctx, "m0"); err != nil {
		t.Fatal(err)
	}
	_ = evicted
	if _, err := s.Rebalance(ctx, 0); err != nil && !errors.Is(err, manager.ErrNoImprovement) {
		t.Fatalf("Rebalance: %v", err)
	}

	// Remove one known resident; the freed slot pumps the (now empty)
	// queue without error.
	ins := s.Inspect()
	for _, ni := range ins {
		if len(ni.Residents) > 0 {
			if _, err := s.Remove(ctx, ni.Name, ni.Residents[0].Name); err != nil {
				t.Fatal(err)
			}
			break
		}
	}

	// The gauge collectors run on exposition.
	if err := s.Registry().WriteText(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestShardedColdScorePlacement drives the cold-solve scoring path (no
// score memo, no shared solver state) through the sharded optimistic
// loop: answers must match the warm path placement-for-placement.
func TestShardedColdScorePlacement(t *testing.T) {
	ctx := context.Background()
	var nodes [2][]string
	for i, cold := range []bool{false, true} {
		s := surfaceFleet(t, 4, 2, func(cfg *fleet.Config) {
			if cold {
				cfg.ScoreCacheCap = -1
			}
		})
		for _, name := range []string{"gzip", "vpr", "mcf", "art"} {
			p, err := s.Place(ctx, workload.ByName(name))
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = append(nodes[i], p.Node)
		}
	}
	if fmt.Sprint(nodes[0]) != fmt.Sprint(nodes[1]) {
		t.Fatalf("cold scoring diverged: warm %v cold %v", nodes[0], nodes[1])
	}
}

// recoverBackend is the journal→recover round-trip surface shared by
// *fleet.Fleet and *fleet.Sharded.
type recoverBackend interface {
	PlaceAll(ctx context.Context, specs []*workload.Spec) ([]fleet.Placed, error)
	Place(ctx context.Context, spec *workload.Spec) (fleet.Placed, error)
	Submit(spec *workload.Spec, tag string) (int, error)
	CancelQueued(ticket int) bool
	FailNode(name string) ([]manager.Resident, error)
	State(ctx context.Context) (*fleet.State, error)
	QueuedInfo() []fleet.QueuedEntry
	Recover(ctx context.Context, st *wal.State) error
}

// TestJournalRecoverRoundTrip replays a journaled mutation history into
// a fresh fleet via wal.State and requires the recovered serving state
// to be byte-identical — for the single-lock fleet and the sharded one.
func TestJournalRecoverRoundTrip(t *testing.T) {
	ctx := context.Background()
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	build := func(shards int, journal func([]wal.Event)) recoverBackend {
		var nodes []fleet.NodeConfig
		for i := 0; i < 4; i++ {
			nodes = append(nodes, fleet.NodeConfig{
				Name: fmt.Sprintf("m%d", i), Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 1,
			})
		}
		cfg := fleet.Config{
			Nodes:    nodes,
			Policy:   fleet.LeastDegradation,
			QueueCap: 8,
			Profile: func(_ context.Context, m *machine.Machine, spec *workload.Spec, _ core.ProfileOptions) (*core.FeatureVector, error) {
				return core.TruthFeature(spec, m), nil
			},
			Journal: journal,
		}
		if shards > 1 {
			s, err := fleet.NewSharded(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		f, err := fleet.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			shadow := &wal.State{}
			journal := func(events []wal.Event) {
				for _, e := range events {
					if err := shadow.Apply(e); err != nil {
						t.Fatalf("shadow apply: %v", err)
					}
				}
			}
			f1 := build(shards, journal)
			if _, err := f1.PlaceAll(ctx, []*workload.Spec{
				workload.ByName("gzip"), workload.ByName("vpr"), workload.ByName("mcf"),
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := f1.Place(ctx, workload.ByName("art")); err != nil {
				t.Fatal(err)
			}
			keep, err := f1.Submit(workload.ByName("swim"), "keep")
			if err != nil {
				t.Fatal(err)
			}
			drop, err := f1.Submit(workload.ByName("ammp"), "drop")
			if err != nil {
				t.Fatal(err)
			}
			_ = keep
			if !f1.CancelQueued(drop) {
				t.Fatal("cancel failed")
			}
			if _, err := f1.FailNode("m3"); err != nil {
				t.Fatal(err)
			}

			pre, err := f1.State(ctx)
			if err != nil {
				t.Fatal(err)
			}
			preJSON, _ := json.Marshal(pre)

			f2 := build(shards, nil)
			if err := f2.Recover(ctx, shadow); err != nil {
				t.Fatalf("recover: %v", err)
			}
			post, err := f2.State(ctx)
			if err != nil {
				t.Fatal(err)
			}
			postJSON, _ := json.Marshal(post)
			if string(preJSON) != string(postJSON) {
				t.Fatalf("recovered state diverged:\n pre %s\npost %s", preJSON, postJSON)
			}
			qi1, qi2 := f1.QueuedInfo(), f2.QueuedInfo()
			if fmt.Sprint(qi1) != fmt.Sprint(qi2) {
				t.Fatalf("recovered queue diverged: %v vs %v", qi1, qi2)
			}
			// Recovery into a dirty fleet is refused.
			if err := f2.Recover(ctx, shadow); err == nil {
				t.Fatal("recover into a non-empty fleet succeeded")
			}
		})
	}
}

// TestPumpDropsOnScoreFailure pins the non-capacity failure contract on
// both pump implementations: a queue head whose scoring pass fails is
// dropped (journaled, counted) and the pump moves on, leaving the queue
// empty rather than wedged behind a poisoned entry.
func TestPumpDropsOnScoreFailure(t *testing.T) {
	ctx := context.Background()
	boom := func(site, key string) error {
		if site == "fleet.score" {
			return errors.New("injected score failure")
		}
		return nil
	}

	t.Run("unsharded", func(t *testing.T) {
		pm, err := core.SyntheticPowerModel()
		if err != nil {
			t.Fatal(err)
		}
		f, err := fleet.New(fleet.Config{
			Nodes: []fleet.NodeConfig{
				{Name: "m0", Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 1},
			},
			Policy:   fleet.LeastDegradation,
			QueueCap: 4,
			Profile: func(_ context.Context, m *machine.Machine, spec *workload.Spec, _ core.ProfileOptions) (*core.FeatureVector, error) {
				return core.TruthFeature(spec, m), nil
			},
			Intercept: boom,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Submit(workload.ByName("mcf"), "poisoned"); err != nil {
			t.Fatal(err)
		}
		placed, err := f.Pump(ctx)
		if err != nil {
			t.Fatalf("pump: %v", err)
		}
		if len(placed) != 0 || f.QueueDepth() != 0 {
			t.Fatalf("placed %d, depth %d; want the entry dropped", len(placed), f.QueueDepth())
		}
		if got := f.Registry().CounterValue("fleet_queue_dropped_total"); got != 1 {
			t.Fatalf("dropped counter %d, want 1", got)
		}
	})

	t.Run("sharded", func(t *testing.T) {
		s := surfaceFleet(t, 4, 2, func(cfg *fleet.Config) { cfg.Intercept = boom })
		if _, err := s.Submit(workload.ByName("mcf"), "poisoned"); err != nil {
			t.Fatal(err)
		}
		placed, err := s.Pump(ctx)
		if err != nil {
			t.Fatalf("pump: %v", err)
		}
		if len(placed) != 0 || s.QueueDepth() != 0 {
			t.Fatalf("placed %d, depth %d; want the entry dropped", len(placed), s.QueueDepth())
		}
		if got := s.Registry().CounterValue("fleet_queue_dropped_total"); got != 1 {
			t.Fatalf("dropped counter %d, want 1", got)
		}
	})
}

// TestShardedPlaceAllRollsBack pins batch atomicity across shards: when
// a later placement in the batch finds no capacity, every earlier commit
// is undone — no shard keeps a partial batch.
func TestShardedPlaceAllRollsBack(t *testing.T) {
	ctx := context.Background()
	s := surfaceFleet(t, 2, 2, nil) // 2 machines x 2 cores x MaxPerCore 1 = 4 slots
	var specs []*workload.Spec
	for _, name := range []string{"gzip", "vpr", "mcf", "art", "swim"} {
		specs = append(specs, workload.ByName(name))
	}
	if _, err := s.PlaceAll(ctx, specs); err == nil {
		t.Fatal("PlaceAll of 5 specs on 4 slots succeeded")
	}
	for _, ni := range s.Inspect() {
		if len(ni.Residents) != 0 {
			t.Fatalf("rollback left %d residents on %s", len(ni.Residents), ni.Name)
		}
	}
}

// TestShardedConstructionLimits pins the config surface: the serial
// Spread policy and the global MaxFeasible cut refuse to shard, and the
// unsharded accessors/gauges still work.
func TestShardedConstructionLimits(t *testing.T) {
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	nodes := []fleet.NodeConfig{
		{Name: "m0", Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 1},
		{Name: "m1", Machine: machine.TwoCoreWorkstation(), Power: pm, MaxPerCore: 1},
	}
	base := fleet.Config{Nodes: nodes, Policy: fleet.Spread, Seed: 1}
	if _, err := fleet.NewSharded(base, 2); err == nil {
		t.Fatal("sharded Spread constructed")
	}
	base.Policy = fleet.LeastDegradation
	base.MaxFeasible = 1
	if _, err := fleet.NewSharded(base, 2); err == nil {
		t.Fatal("sharded MaxFeasible constructed")
	}
	if _, err := fleet.ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus")
	}

	f, err := fleet.New(fleet.Config{Nodes: nodes, Policy: fleet.LeastDegradation})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Policy(); got != fleet.LeastDegradation {
		t.Fatalf("Policy() = %v", got)
	}
	if err := f.Registry().WriteText(io.Discard); err != nil {
		t.Fatal(err)
	}
}
