package fleet

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"mpmc/internal/workload"
)

// fillFleet packs the 4×2×2 test fleet to its 16-slot capacity at the
// given priority class and returns the placements.
func fillFleet(t *testing.T, f *Fleet, priority int) []Placed {
	t.Helper()
	ctx := context.Background()
	var out []Placed
	for _, s := range sixteenSpecs() {
		p, err := f.PlaceWith(ctx, s, PlaceOptions{Priority: priority})
		if err != nil {
			t.Fatalf("filling fleet: %v", err)
		}
		out = append(out, p)
	}
	return out
}

func TestPreemptionEvictsAndRequeues(t *testing.T) {
	f := testFleet(t, LeastDegradation, nil)
	ctx := context.Background()
	fillFleet(t, f, 0)
	arrival := workload.Suite()[0]

	// Priority 0 must NOT preempt: the legacy contract is a full fleet.
	if _, err := f.Place(ctx, arrival); !errors.Is(err, ErrFleetFull) {
		t.Fatalf("priority-0 place on full fleet: err = %v, want ErrFleetFull", err)
	}

	p, err := f.PlaceWith(ctx, arrival, PlaceOptions{Priority: 1, Tag: "vip"})
	if err != nil {
		t.Fatalf("priority-1 place: %v", err)
	}
	if p.Preempted == nil {
		t.Fatal("placement on a full fleet must report its victim")
	}
	if !p.Preempted.Requeued {
		t.Fatal("victim must be requeued while the queue has room")
	}
	if p.Preempted.Priority != 0 {
		t.Fatalf("victim priority = %d, want 0", p.Preempted.Priority)
	}
	if got := checkCapacity(t, f); got != 16 {
		t.Fatalf("residents after preemption = %d, want 16 (capacity held)", got)
	}
	qi := f.QueuedInfo()
	if len(qi) != 1 || qi[0].Workload != p.Preempted.Workload {
		t.Fatalf("queue after preemption = %+v, want exactly the victim", qi)
	}
	if qi[0].Priority != 0 {
		t.Fatalf("victim requeued at priority %d, want its original 0", qi[0].Priority)
	}
	// First preemption: one recorded attempt, minimal (1-round) backoff —
	// the victim is eligible again at the very next pump.
	if !qi[0].Eligible {
		t.Fatal("first-attempt backoff is one round; the victim must be eligible at the next pump")
	}

	// The arrival is resident with its class recorded.
	found := false
	for _, ni := range f.Inspect() {
		for j, r := range ni.Residents {
			if r.Name == p.Name && ni.Name == p.Node {
				found = true
				if ni.Priorities[j] != 1 {
					t.Fatalf("arrival's recorded priority = %d, want 1", ni.Priorities[j])
				}
			}
		}
	}
	if !found {
		t.Fatalf("placed instance %s/%s not found in inspection", p.Node, p.Name)
	}

	// Free a slot: the removal's pump advances the round past the
	// victim's backoff and readmits it immediately.
	admitted, err := f.Remove(ctx, p.Node, p.Name)
	if err != nil {
		t.Fatalf("remove: %v", err)
	}
	if len(admitted) != 1 || admitted[0].Preempted != nil {
		t.Fatalf("pump admitted %+v, want exactly the recovered victim", admitted)
	}
	if f.QueueDepth() != 0 {
		t.Fatalf("queue depth after recovery = %d, want 0", f.QueueDepth())
	}
}

func TestPreemptionPicksLowestClassCheapestVictim(t *testing.T) {
	f := testFleet(t, LeastDegradation, nil)
	ctx := context.Background()
	specs := sixteenSpecs()
	// 15 residents at class 2, one at class 1: the class-1 resident is the
	// only victim a class-3 arrival may take, regardless of SPI deltas.
	var lowName, lowNode string
	for i, s := range specs {
		prio := 2
		if i == 7 {
			prio = 1
		}
		p, err := f.PlaceWith(ctx, s, PlaceOptions{Priority: prio})
		if err != nil {
			t.Fatalf("fill: %v", err)
		}
		if i == 7 {
			lowName, lowNode = p.Name, p.Node
		}
	}
	p, err := f.PlaceWith(ctx, workload.Suite()[2], PlaceOptions{Priority: 3})
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	if p.Preempted == nil || p.Preempted.Name != lowName || p.Preempted.Node != lowNode {
		t.Fatalf("victim = %+v, want the sole class-1 resident %s/%s", p.Preempted, lowNode, lowName)
	}
}

func TestPreemptionNoOutrankedResident(t *testing.T) {
	f := testFleet(t, LeastDegradation, nil)
	ctx := context.Background()
	fillFleet(t, f, 5)
	before := snapshotFleet(f)
	_, err := f.PlaceWith(ctx, workload.Suite()[1], PlaceOptions{Priority: 5})
	if !errors.Is(err, ErrFleetFull) {
		t.Fatalf("equal-class arrival: err = %v, want ErrFleetFull", err)
	}
	requireUnchanged(t, f, before)
}

func TestPreemptionDropsVictimWhenQueueDisabled(t *testing.T) {
	f := testFleet(t, LeastDegradation, func(c *Config) { c.QueueCap = -1 })
	ctx := context.Background()
	fillFleet(t, f, 0)
	p, err := f.PlaceWith(ctx, workload.Suite()[3], PlaceOptions{Priority: 2})
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	if p.Preempted == nil || p.Preempted.Requeued {
		t.Fatalf("victim disposition = %+v, want reported drop (no queue to requeue into)", p.Preempted)
	}
	if got := f.Registry().Counter("fleet_preempt_dropped_total").Value(); got != 1 {
		t.Fatalf("fleet_preempt_dropped_total = %d, want 1", got)
	}
}

// TestPreemptionRollsBackOnCommitFailure is the forced-failure
// transaction test: the victim is evicted, then the arrival's commit is
// made to fail through the fault seam — every machine's resident set and
// the queue must be deep-equal to their pre-preemption state.
func TestPreemptionRollsBackOnCommitFailure(t *testing.T) {
	var armed atomic.Bool
	boom := errors.New("injected commit failure")
	f := testFleet(t, LeastDegradation, func(c *Config) {
		c.Intercept = func(site, key string) error {
			if armed.Load() && site == "manager.place_at" {
				return boom
			}
			return nil
		}
	})
	ctx := context.Background()
	fillFleet(t, f, 0)
	if _, err := f.Submit(workload.Suite()[4], "queued-bystander"); err != nil {
		t.Fatalf("submit: %v", err)
	}
	before := snapshotFleet(f)
	ledgerBefore := f.ledger.Snapshot()

	armed.Store(true)
	_, err := f.PlaceWith(ctx, workload.Suite()[0], PlaceOptions{Priority: 9})
	armed.Store(false)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	requireUnchanged(t, f, before)
	if qi := f.QueuedInfo(); len(qi) != 1 || qi[0].Tag != "queued-bystander" {
		t.Fatalf("queue disturbed by rolled-back preemption: %+v", qi)
	}
	if f.ledger.Len() != len(ledgerBefore) {
		t.Fatalf("ledger disturbed by rolled-back preemption: %d entries, want %d",
			f.ledger.Len(), len(ledgerBefore))
	}
	if got := f.Registry().Counter("fleet_preempt_aborted_total").Value(); got != 1 {
		t.Fatalf("fleet_preempt_aborted_total = %d, want 1", got)
	}
	// The cluster is intact: the same arrival succeeds once the fault
	// clears, proving the rollback left a placeable fleet.
	if _, err := f.PlaceWith(ctx, workload.Suite()[0], PlaceOptions{Priority: 9}); err != nil {
		t.Fatalf("place after fault cleared: %v", err)
	}
}

// TestPreemptionBackoffEscalatesToDrop preempts the same logical process
// (pinned by tag) repeatedly: each requeue doubles its backoff, and once
// the attempt budget is spent the victim is dropped with the drop
// reported, never silently.
func TestPreemptionBackoffEscalatesToDrop(t *testing.T) {
	f := testFleet(t, LeastDegradation, func(c *Config) { c.PreemptMaxAttempts = 2 })
	ctx := context.Background()
	specs := sixteenSpecs()
	// One class-0 victim (tagged), the rest class 1: every preemption by a
	// class-2 arrival must take the tagged process.
	for i, s := range specs {
		prio, tag := 1, ""
		if i == 0 {
			prio, tag = 0, "victim"
		}
		if _, err := f.PlaceWith(ctx, s, PlaceOptions{Priority: prio, Tag: tag}); err != nil {
			t.Fatalf("fill: %v", err)
		}
	}
	evictAndRecover := func(wantRequeued bool) {
		t.Helper()
		p, err := f.PlaceWith(ctx, workload.Suite()[0], PlaceOptions{Priority: 2})
		if err != nil {
			t.Fatalf("preempting place: %v", err)
		}
		if p.Preempted == nil || p.Preempted.Tag != "victim" {
			t.Fatalf("victim = %+v, want the tagged class-0 process", p.Preempted)
		}
		if p.Preempted.Requeued != wantRequeued {
			t.Fatalf("requeued = %v, want %v", p.Preempted.Requeued, wantRequeued)
		}
		if !wantRequeued {
			return
		}
		// Free the slot the arrival took and pump until the victim's
		// backoff expires and it readmits.
		if _, err := f.Remove(ctx, p.Node, p.Name); err != nil {
			t.Fatalf("remove: %v", err)
		}
		for i := 0; f.QueueDepth() > 0; i++ {
			if i > 16 {
				t.Fatal("victim never readmitted: backoff did not expire")
			}
			if _, err := f.Pump(ctx); err != nil {
				t.Fatalf("pump: %v", err)
			}
		}
	}
	evictAndRecover(true)  // attempt 1: backoff 1 round
	evictAndRecover(true)  // attempt 2: backoff 2 rounds
	evictAndRecover(false) // attempt 3: budget of 2 spent → reported drop
	if got := f.Registry().Counter("fleet_preempt_requeued_total").Value(); got != 2 {
		t.Fatalf("fleet_preempt_requeued_total = %d, want 2", got)
	}
	if got := f.Registry().Counter("fleet_preempt_dropped_total").Value(); got != 1 {
		t.Fatalf("fleet_preempt_dropped_total = %d, want 1", got)
	}
}
