package fleet

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"mpmc/internal/machine"
	"mpmc/internal/metrics"
	"mpmc/internal/workload"
)

// This file is the sharding equivalence sweep: an unsharded Fleet and a
// Sharded fleet built from the same node list, seed, and policy are
// driven through identical randomized traces, and every placement
// decision — node, core, and bit-identical score — must match, along
// with a running FNV-64a digest of the full decision sequence. The sweep
// covers all shardable policies (Spread is serial and rejected by
// NewSharded), cold and cached scoring, worker counts 1..3, and machine
// failures mid-trace.

// shardablePolicies are the policies NewSharded accepts with shards > 1.
func shardablePolicies() []Policy {
	var out []Policy
	for _, p := range Policies() {
		if p != Spread {
			out = append(out, p)
		}
	}
	return out
}

// equivNodePair builds two structurally identical node lists (fresh
// machine instances, same kinds and limits) so the two fleets never
// share mutable state.
func equivNodePair(t *testing.T, r *rand.Rand, nNodes int) (a, b []NodeConfig) {
	t.Helper()
	pm := testPower(t)
	kinds := []func() *machine.Machine{
		machine.TwoCoreWorkstation, machine.TwoCoreLaptop, machine.FourCoreServer,
	}
	a = make([]NodeConfig, nNodes)
	b = make([]NodeConfig, nNodes)
	for i := 0; i < nNodes; i++ {
		k := r.Intn(len(kinds))
		mpc := 1 + r.Intn(2)
		a[i] = NodeConfig{Machine: kinds[k](), Power: pm, MaxPerCore: mpc}
		b[i] = NodeConfig{Machine: kinds[k](), Power: pm, MaxPerCore: mpc}
	}
	return a, b
}

// runShardedEquivSweep drives one randomized trace through an unsharded
// and a sharded fleet in lockstep, failing at the first divergence and
// comparing decision digests at the end.
func runShardedEquivSweep(t *testing.T, seed int64, cacheCap int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pols := shardablePolicies()
	policy := pols[int(seed)%len(pols)]
	nNodes := 3 + r.Intn(4)
	shards := 2 + r.Intn(2)
	if shards > nNodes {
		shards = nNodes
	}
	flatNodes, shardNodes := equivNodePair(t, r, nNodes)
	fseed := uint64(r.Int63())
	workers := 1 + r.Intn(3)
	flat, err := New(Config{
		Nodes: flatNodes, Policy: policy, QueueCap: 4, Seed: fseed,
		Workers: workers, ScoreCacheCap: cacheCap, Profile: oracle(nil, 0),
		Registry: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	sharded, err := NewSharded(Config{
		Nodes: shardNodes, Policy: policy, QueueCap: 4, Seed: fseed,
		Workers: workers, ScoreCacheCap: cacheCap, Profile: oracle(nil, 0),
		Registry: metrics.NewRegistry(),
	}, shards)
	if err != nil {
		t.Fatalf("fleet.NewSharded: %v", err)
	}

	ctx := context.Background()
	suite := workload.Suite()
	flatDigest, shardDigest := fnv.New64a(), fnv.New64a()
	type placedRef struct{ node, name string }
	var residents []placedRef

	events := 25 + r.Intn(15)
	for ev := 0; ev < events; ev++ {
		switch op := r.Intn(10); {
		case op < 6: // arrival
			spec := suite[r.Intn(len(suite))]
			fp, ferr := flat.Place(ctx, spec)
			sp, serr := sharded.Place(ctx, spec)
			if (ferr == nil) != (serr == nil) {
				t.Fatalf("seed %d ev %d (%s, %s): flat err=%v, sharded err=%v",
					seed, ev, policy, spec.Name, ferr, serr)
			}
			if ferr != nil {
				continue
			}
			if fp.Node != sp.Node || fp.Core != sp.Core || fp.Name != sp.Name {
				t.Fatalf("seed %d ev %d (%s, %s): flat %s/core%d/%s, sharded %s/core%d/%s",
					seed, ev, policy, spec.Name, fp.Node, fp.Core, fp.Name, sp.Node, sp.Core, sp.Name)
			}
			if fp.Score != sp.Score && !(math.IsNaN(fp.Score) && math.IsNaN(sp.Score)) {
				t.Fatalf("seed %d ev %d: score %v != %v (must be bit-identical)", seed, ev, fp.Score, sp.Score)
			}
			fmt.Fprintf(flatDigest, "%s/%d/%s/%x;", fp.Node, fp.Core, fp.Name, math.Float64bits(fp.Score))
			fmt.Fprintf(shardDigest, "%s/%d/%s/%x;", sp.Node, sp.Core, sp.Name, math.Float64bits(sp.Score))
			residents = append(residents, placedRef{fp.Node, fp.Name})
		case op < 9: // departure
			if len(residents) == 0 {
				continue
			}
			i := r.Intn(len(residents))
			ref := residents[i]
			residents = append(residents[:i], residents[i+1:]...)
			if _, err := flat.Remove(ctx, ref.node, ref.name); err != nil {
				t.Fatalf("seed %d ev %d: flat remove %s/%s: %v", seed, ev, ref.node, ref.name, err)
			}
			if _, err := sharded.Remove(ctx, ref.node, ref.name); err != nil {
				t.Fatalf("seed %d ev %d: sharded remove %s/%s: %v", seed, ev, ref.node, ref.name, err)
			}
		default: // fail + restore one machine (evicts its residents)
			name := flat.NodeNames()[r.Intn(nNodes)]
			fev, ferr := flat.FailNode(name)
			sev, serr := sharded.FailNode(name)
			if (ferr == nil) != (serr == nil) {
				t.Fatalf("seed %d ev %d: fail %s: flat err=%v, sharded err=%v", seed, ev, name, ferr, serr)
			}
			if ferr != nil {
				continue
			}
			if len(fev) != len(sev) {
				t.Fatalf("seed %d ev %d: fail %s evicted %d vs %d residents", seed, ev, name, len(fev), len(sev))
			}
			kept := residents[:0]
			for _, ref := range residents {
				if ref.node != name {
					kept = append(kept, ref)
				}
			}
			residents = kept
			if _, err := flat.RestoreNode(ctx, name); err != nil {
				t.Fatalf("seed %d ev %d: flat restore %s: %v", seed, ev, name, err)
			}
			if _, err := sharded.RestoreNode(ctx, name); err != nil {
				t.Fatalf("seed %d ev %d: sharded restore %s: %v", seed, ev, name, err)
			}
		}
	}
	if f, s := flatDigest.Sum64(), shardDigest.Sum64(); f != s {
		t.Fatalf("seed %d: decision digest %016x != sharded %016x", seed, f, s)
	}

	// Terminal cross-check: identical cluster layout, byte for byte.
	fi, si := flat.Inspect(), sharded.Inspect()
	if len(fi) != len(si) {
		t.Fatalf("seed %d: inspect length %d != %d", seed, len(fi), len(si))
	}
	for i := range fi {
		if fi[i].Name != si[i].Name || len(fi[i].Residents) != len(si[i].Residents) {
			t.Fatalf("seed %d: node %d layout diverged: %+v vs %+v", seed, i, fi[i], si[i])
		}
		for j := range fi[i].Residents {
			fr, sr := fi[i].Residents[j], si[i].Residents[j]
			if fr.Name != sr.Name || fr.Core != sr.Core || fr.Spec.Name != sr.Spec.Name {
				t.Fatalf("seed %d: node %s resident %d: %s/core%d/%s vs %s/core%d/%s",
					seed, fi[i].Name, j, fr.Name, fr.Core, fr.Spec.Name, sr.Name, sr.Core, sr.Spec.Name)
			}
		}
	}
}

// TestShardedEquivalence is the 150-seed sweep: a sharded fleet must
// decide identically to the unsharded scheduler — same node, core,
// instance name, and bit-identical score, same decision digest — across
// randomized heterogeneous fleets, shard counts, traces, and failures.
func TestShardedEquivalence(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 24
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			cacheCap := 0 // default: cached
			if seed%3 == 0 {
				cacheCap = -1 // cold: every decision re-solved
			}
			runShardedEquivSweep(t, int64(seed), cacheCap)
		})
	}
}
