// Power-capped, frequency-aware fleet operation.
//
// Every node carries a current DVFS rung (node.freqIx) on its machine's
// frequency ladder (machine.Machine.Freq). All frequency scaling is
// derived from the UNSCALED legacy estimates through internal/freq's
// identity-gated helpers, so a fleet whose nodes all sit at the base
// state produces bit-identical bytes to the pre-DVFS code.
//
// The watt budget is a capLedger: one row per node holding the node's
// scaled Eq. 10 estimate, guarded by its own mutex so a Sharded fleet's
// shards share one ledger (Config.sharedCap) and two shards racing the
// remaining headroom cannot both win it — tryReserve is the single
// atomic admission gate, consulted by commitLocked before any manager
// mutation. Enforcement ordering (DESIGN.md §13):
//
//  1. Admission: commitLocked reserves the node's post-placement scaled
//     watts; a failed reservation surfaces as ErrFleetFull with the
//     cluster untouched.
//  2. Enforcement: EnforceCap transactionally down-clocks or migrates
//     residents until the ledger fits the budget, choosing the action
//     with the least predicted SPI loss per watt shed.
//  3. Accounting: every mutation that changes a node's draw (departure,
//     eviction, migration, fail/restore, recovery) re-syncs that node's
//     ledger row from live estimates.
package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mpmc/internal/core"
	"mpmc/internal/freq"
	"mpmc/internal/manager"
	"mpmc/internal/wal"
)

// freqStateOf returns n's current DVFS operating point.
func freqStateOf(n *node) freq.State { return n.cfg.Machine.Freq.State(n.freqIx) }

// spiScaleOf is n's combined Eq. 3 compute-term multiplier at its
// current state (exactly 1 for an out-of-order core at base).
func spiScaleOf(n *node) float64 {
	return freq.SPIFactorAt(n.cfg.Machine.Core, freqStateOf(n))
}

// dynScaleOf is n's combined Eq. 9 dynamic-power multiplier at its
// current state (exactly 1 for an out-of-order core at base).
func dynScaleOf(n *node) float64 {
	return freq.DynScaleAt(n.cfg.Machine.Core, freqStateOf(n))
}

// staticWatts is n's frequency-invariant power floor: every core's
// fitted Eq. 9 idle intercept. It equals the combined model's estimate
// of an empty assignment, which is what makes ledger initialization
// need no solver call.
func staticWatts(n *node) float64 {
	return float64(n.cfg.Machine.NumCores) * n.cfg.Power.PIdle()
}

// betaTotal sums the residents' compute (Beta) terms exactly as the node
// SPI accumulation counts them: averaging a constant over Eq. 10
// combinations is the constant, and a thread-group bundle's term counts
// once per member. It is the affine shift ScaleSPI applies to a whole
// node's total.
func betaTotal(asg core.Assignment) float64 {
	total := 0.0
	for _, procs := range asg {
		for _, fv := range procs {
			b := fv.Beta
			if fv.Members > 1 {
				b *= float64(fv.Members)
			}
			total += b
		}
	}
	return total
}

// betaOf is one arrival's contribution to betaTotal.
func betaOf(fv *core.FeatureVector) float64 {
	if fv.Members > 1 {
		return fv.Beta * float64(fv.Members)
	}
	return fv.Beta
}

// capLedger is the fleet-wide watt budget and its per-node draw rows.
// It has its own lock so a Sharded fleet's shards can share one instance:
// cross-shard admission is serialized here, not by any fleet lock.
//
// Usage is always derived by summing the rows in sorted-name order, never
// accumulated incrementally: an accumulator's value depends on the whole
// update history (each += rounds), so a recovered ledger with identical
// rows could still differ from the pre-crash one in the last ulp and
// break byte-identical /v1/fleet/state recovery.
type capLedger struct {
	mu      sync.Mutex
	watts   float64 // budget; 0 = no admission checks (tracking only)
	perNode map[string]float64
}

func newCapLedger() *capLedger { return &capLedger{perNode: map[string]float64{}} }

func (l *capLedger) capWatts() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.watts
}

func (l *capLedger) setCap(w float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.watts = w
}

// sumLocked is the fleet draw: rows summed in sorted-name order, so the
// value is a pure function of the rows (caller holds l.mu).
func (l *capLedger) sumLocked() float64 {
	names := make([]string, 0, len(l.perNode))
	for k := range l.perNode {
		names = append(names, k)
	}
	sort.Strings(names)
	total := 0.0
	for _, k := range names {
		total += l.perNode[k]
	}
	return total
}

func (l *capLedger) usage() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sumLocked()
}

func (l *capLedger) nodeWatts(name string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.perNode[name]
}

func (l *capLedger) usedExcept(name string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sumLocked() - l.perNode[name]
}

// setNode overwrites one node's draw row unconditionally (departures and
// enforcement re-syncs; never an admission).
func (l *capLedger) setNode(name string, w float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.perNode[name] = w
}

// tryReserve atomically replaces one node's row with its post-placement
// draw when the fleet total still fits the budget; it reports false —
// ledger untouched — otherwise. This is the admission gate: because the
// check and the write happen under one ledger lock, two shards racing
// the last watts of headroom serialize here and exactly one wins.
func (l *capLedger) tryReserve(name string, w float64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	next := l.sumLocked() - l.perNode[name] + w
	if l.watts > 0 && next > l.watts {
		return false
	}
	l.perNode[name] = w
	return true
}

// snapshotRows deep-copies the per-node rows (EnforceCap's transaction
// window).
func (l *capLedger) snapshotRows() map[string]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]float64, len(l.perNode))
	for k, v := range l.perNode {
		out[k] = v
	}
	return out
}

func (l *capLedger) restoreRows(rows map[string]float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.perNode = make(map[string]float64, len(rows))
	for k, v := range rows {
		l.perNode[k] = v
	}
}

// capActive reports whether admissions and enforcement are constrained
// by a positive watt budget right now.
func (f *Fleet) capActive() bool {
	return f.capL != nil && f.capL.capWatts() > 0
}

// PowerCap returns the active fleet-wide watt budget (0 = uncapped).
func (f *Fleet) PowerCap() float64 {
	if f.capL == nil {
		return 0
	}
	return f.capL.capWatts()
}

// CapUsage returns the ledger's current fleet draw estimate in watts
// (0 when the fleet has never been capped). While a cap is active it is
// maintained exactly: the chaos invariants compare it against a fresh
// Totals pass.
func (f *Fleet) CapUsage() float64 {
	if f.capL == nil {
		return 0
	}
	return f.capL.usage()
}

// SetPowerCap sets (watts > 0) or clears (watts == 0) the fleet-wide
// power budget at runtime. Setting a cap re-syncs every node's ledger
// row from live estimates first, so the budget is measured against
// current reality; it does NOT shed load by itself — call EnforceCap to
// bring an already-over-budget fleet back under.
func (f *Fleet) SetPowerCap(ctx context.Context, watts float64) error {
	if watts < 0 {
		return fmt.Errorf("fleet: negative power cap %v", watts)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.setPowerCapLocked(ctx, watts)
}

func (f *Fleet) setPowerCapLocked(ctx context.Context, watts float64) error {
	if f.capL == nil {
		if watts == 0 {
			return nil
		}
		f.capL = newCapLedger()
	}
	f.capL.setCap(watts)
	if watts > 0 {
		for _, n := range f.nodes {
			if err := f.resyncNodeCapLocked(ctx, n); err != nil {
				return err
			}
		}
	}
	return nil
}

// resyncNodeCapLocked recomputes one node's ledger row from its live
// scaled estimate. Callers hold the fleet lock; cheap mutation paths
// guard with capActive() so uncapped fleets never pay an estimate.
func (f *Fleet) resyncNodeCapLocked(ctx context.Context, n *node) error {
	if f.capL == nil {
		return nil
	}
	if n.down {
		f.capL.setNode(n.cfg.Name, 0)
		return nil
	}
	asg := f.assignmentOf(n)
	empty := true
	for _, procs := range asg {
		if len(procs) > 0 {
			empty = false
			break
		}
	}
	if empty {
		// Same constant New and RestoreNode seed, so an idle node's row is
		// bitwise-stable no matter which path last wrote it (a per-group
		// idle-watts sum can differ from NumCores·PIdle in the last ulp).
		f.capL.setNode(n.cfg.Name, staticWatts(n))
		return nil
	}
	w, err := n.cm.EstimateAssignmentContext(ctx, asg)
	if err != nil {
		return err
	}
	f.capL.setNode(n.cfg.Name, freq.ScaleWatts(w, staticWatts(n), dynScaleOf(n)))
	return nil
}

// setFreqLocked re-clocks a node: the rung moves, the one-entry decision
// key cache is busted (keys embed the rung when off base), the version
// stamps detached scoring revalidates are bumped, and the change is
// journaled so recovery restores the rung. The group-term memo needs no
// invalidation — its terms are unscaled and frequency-independent.
func (f *Fleet) setFreqLocked(n *node, ix int) {
	if ix == n.freqIx {
		return
	}
	n.freqIx = ix
	n.keyFeat, n.keyStr = nil, ""
	f.version++
	n.version++
	f.journalLocked(wal.Event{Type: wal.EvFreq, Node: n.cfg.Name, Freq: ix + 1})
}

// FreqStates reports every node's current DVFS rung index, keyed by node
// name (the chaos invariants and tests read it).
func (f *Fleet) FreqStates() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.nodes))
	for _, n := range f.nodes {
		out[n.cfg.Name] = n.freqIx
	}
	return out
}

// CapReport summarizes one EnforceCap pass.
type CapReport struct {
	Cap         float64 `json:"cap"`
	WattsBefore float64 `json:"watts_before"`
	WattsAfter  float64 `json:"watts_after"`
	Downclocks  int     `json:"downclocks,omitempty"`
	Migrations  int     `json:"migrations,omitempty"`
	// Moves details each migration (the SPI fields are the fleet deltas
	// already priced by the action scan, not a fresh solve), so callers
	// tracking residents by (node, instance) can re-point them.
	Moves []Move `json:"moves,omitempty"`
	// Satisfied is false when every rung is at its floor and no migration
	// sheds watts, yet the fleet still draws above the cap (the idle
	// floor alone can exceed a low enough budget).
	Satisfied bool `json:"satisfied"`
}

// EnforceCap transactionally brings the fleet back under its watt
// budget: while the ledger exceeds the cap, it applies whichever single
// action — down-clock one node one rung, or migrate one resident to
// another machine — sheds watts at the least predicted SPI cost per watt
// (strict less-than over a deterministic enumeration: down-clocks in
// node order first, then migrations in source/resident/target/core
// order). Every manager, rung, and ledger row is snapshotted first; any
// failure restores all three and discards the staged journal, so a
// failed enforcement leaves the fleet exactly as it was. With no active
// cap it reports Satisfied and does nothing.
func (f *Fleet) EnforceCap(ctx context.Context) (CapReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.enforceCapLocked(ctx)
}

func (f *Fleet) enforceCapLocked(ctx context.Context) (CapReport, error) {
	if !f.capActive() {
		return CapReport{Satisfied: true}, nil
	}
	// Measure against live estimates, not whatever the rows last held.
	for _, n := range f.nodes {
		if err := f.resyncNodeCapLocked(ctx, n); err != nil {
			return CapReport{}, err
		}
	}
	budget := f.capL.capWatts()
	rep := CapReport{Cap: budget, WattsBefore: f.capL.usage()}
	if rep.WattsBefore <= budget {
		rep.WattsAfter, rep.Satisfied = rep.WattsBefore, true
		return rep, nil
	}

	snaps := make([]*manager.Snapshot, len(f.nodes))
	rungs := make([]int, len(f.nodes))
	for i, n := range f.nodes {
		snaps[i], rungs[i] = n.mgr.Snapshot(), n.freqIx
	}
	rows := f.capL.snapshotRows()
	fail := func(cause error) (CapReport, error) {
		for i, n := range f.nodes {
			n.mgr.Restore(snaps[i])
			n.freqIx = rungs[i]
			n.keyFeat, n.keyStr = nil, ""
		}
		f.capL.restoreRows(rows)
		f.discardJournalLocked()
		f.rollbacks.Inc()
		return CapReport{}, fmt.Errorf("fleet: cap enforcement rolled back: %w", cause)
	}

	// Bound the loop structurally: each node can only descend its ladder
	// once per rung, and each migration strictly sheds watts, so real
	// enforcement converges long before this guard trips.
	limit := 0
	residents := 0
	for _, n := range f.nodes {
		limit += n.cfg.Machine.Freq.NumStates()
		residents += len(n.mgr.Residents())
	}
	limit += residents * len(f.nodes)
	for iter := 0; f.capL.usage() > budget && iter < limit; iter++ {
		act, ok, err := f.bestCapActionLocked(ctx)
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		if err := f.applyCapActionLocked(ctx, act, &rep); err != nil {
			return fail(err)
		}
	}
	rep.WattsAfter = f.capL.usage()
	rep.Satisfied = rep.WattsAfter <= budget
	f.version++
	f.flushJournalLocked()
	// Lazily registered so uncapped fleets keep their exposition (and the
	// server e2e golden) unchanged.
	if rep.Downclocks > 0 {
		f.reg.Counter("fleet_cap_downclocks_total").Add(uint64(rep.Downclocks))
	}
	if rep.Migrations > 0 {
		f.reg.Counter("fleet_cap_migrations_total").Add(uint64(rep.Migrations))
	}
	return rep, nil
}

// capAction is one candidate enforcement step.
type capAction struct {
	migrate bool
	// down-clock: node's index and target rung; afterW its new scaled draw.
	node, rung int
	// migration: resident res leaves node, lands on dst at dstCore.
	res          manager.Resident
	dst, dstCore int
	afterW       float64 // source (or down-clocked) node's scaled draw after
	afterDstW    float64 // target node's scaled draw after (migrations)
	dw, dspi     float64 // fleet deltas (dw < 0: watts shed)
}

// bestCapActionLocked scans every admissible enforcement action and
// returns the one with the least dspi/(−dw) — predicted SPI lost per
// watt shed; migrations that also improve SPI score negative and win
// outright. ok is false when nothing sheds watts.
func (f *Fleet) bestCapActionLocked(ctx context.Context) (capAction, bool, error) {
	var best capAction
	found := false
	bestScore := 0.0
	consider := func(a capAction) {
		if a.dw >= 0 {
			return
		}
		score := a.dspi / -a.dw
		if !found || score < bestScore {
			best, bestScore, found = a, score, true
		}
	}

	type nodeEval struct {
		spiU, wU, beta float64 // unscaled SPI, unscaled watts, compute sum
	}
	evals := make([]nodeEval, len(f.nodes))
	for i, n := range f.nodes {
		if n.down {
			continue
		}
		asg := f.assignmentOf(n)
		spiU, err := f.nodeSPI(ctx, n.cfg.Machine, asg)
		if err != nil {
			return capAction{}, false, err
		}
		wU, err := n.cm.EstimateAssignmentContext(ctx, asg)
		if err != nil {
			return capAction{}, false, err
		}
		evals[i] = nodeEval{spiU: spiU, wU: wU, beta: betaTotal(asg)}
	}

	// Down-clocks: one rung down per node.
	for i, n := range f.nodes {
		if n.down || n.freqIx == 0 {
			continue
		}
		m := n.cfg.Machine
		st := staticWatts(n)
		ev := evals[i]
		curW := freq.ScaleWatts(ev.wU, st, dynScaleOf(n))
		curSPI := freq.ScaleSPI(ev.spiU, ev.beta, spiScaleOf(n))
		lower := m.Freq.State(n.freqIx - 1)
		nextW := freq.ScaleWatts(ev.wU, st, freq.DynScaleAt(m.Core, lower))
		nextSPI := freq.ScaleSPI(ev.spiU, ev.beta, freq.SPIFactorAt(m.Core, lower))
		consider(capAction{
			node: i, rung: n.freqIx - 1, afterW: nextW,
			dw: nextW - curW, dspi: nextSPI - curSPI,
		})
	}

	// Migrations: each resident to each other live machine's admissible
	// cores, both ends priced at their own current rungs.
	for i, n := range f.nodes {
		if n.down {
			continue
		}
		srcM, srcSt := n.cfg.Machine, staticWatts(n)
		srcEv := evals[i]
		srcW1 := freq.ScaleWatts(srcEv.wU, srcSt, dynScaleOf(n))
		srcSPI1 := freq.ScaleSPI(srcEv.spiU, srcEv.beta, spiScaleOf(n))
		for _, r := range n.mgr.Residents() {
			srcAsg2 := withoutResident(f.assignmentOf(n), r)
			srcSPIU2, err := f.nodeSPI(ctx, srcM, srcAsg2)
			if err != nil {
				return capAction{}, false, err
			}
			srcWU2, err := n.cm.EstimateAssignmentContext(ctx, srcAsg2)
			if err != nil {
				return capAction{}, false, err
			}
			srcW2 := freq.ScaleWatts(srcWU2, srcSt, dynScaleOf(n))
			srcSPI2 := freq.ScaleSPI(srcSPIU2, srcEv.beta-betaOf(r.Feature), spiScaleOf(n))
			for j, dst := range f.nodes {
				if j == i || dst.down {
					continue
				}
				feat, err := f.feats.get(ctx, dst.cfg.Machine, r.Spec)
				if err != nil {
					return capAction{}, false, err
				}
				dstEv := evals[j]
				dstSt := staticWatts(dst)
				dstW1 := freq.ScaleWatts(dstEv.wU, dstSt, dynScaleOf(dst))
				dstSPI1 := freq.ScaleSPI(dstEv.spiU, dstEv.beta, spiScaleOf(dst))
				dstAsg := f.assignmentOf(dst)
				for c := 0; c < dst.cfg.Machine.NumCores; c++ {
					if dst.cfg.MaxPerCore != 0 && len(dstAsg[c]) >= dst.cfg.MaxPerCore {
						continue
					}
					dstSPIU2, err := f.nodeSPI(ctx, dst.cfg.Machine, withAdditionShared(dstAsg, feat, c))
					if err != nil {
						return capAction{}, false, err
					}
					dstWU2, err := dst.cm.EstimateAdditionContext(ctx, dstAsg, feat, c)
					if err != nil {
						return capAction{}, false, err
					}
					dstW2 := freq.ScaleWatts(dstWU2, dstSt, dynScaleOf(dst))
					dstSPI2 := freq.ScaleSPI(dstSPIU2, dstEv.beta+betaOf(feat), spiScaleOf(dst))
					consider(capAction{
						migrate: true, node: i, res: r, dst: j, dstCore: c,
						afterW: srcW2, afterDstW: dstW2,
						dw:   (srcW2 - srcW1) + (dstW2 - dstW1),
						dspi: (srcSPI2 - srcSPI1) + (dstSPI2 - dstSPI1),
					})
				}
			}
		}
	}
	return best, found, nil
}

// applyCapActionLocked executes one chosen enforcement action, updating
// ledger rows from the action's already-priced after values and staging
// the journal events (the caller's transaction flushes or discards them).
func (f *Fleet) applyCapActionLocked(ctx context.Context, act capAction, rep *CapReport) error {
	n := f.nodes[act.node]
	if !act.migrate {
		f.setFreqLocked(n, act.rung)
		f.capL.setNode(n.cfg.Name, act.afterW)
		rep.Downclocks++
		return nil
	}
	dst := f.nodes[act.dst]
	if err := n.mgr.Remove(act.res.Name); err != nil {
		return err
	}
	newName, _, err := dst.mgr.PlaceAt(ctx, act.res.Spec, act.dstCore)
	if err != nil {
		return err
	}
	var meta residentMeta
	if m, ok := n.meta[act.res.Name]; ok {
		meta = m
		delete(n.meta, act.res.Name)
		if dst.meta == nil {
			dst.meta = map[string]residentMeta{}
		}
		dst.meta[newName] = m
	}
	f.capL.setNode(n.cfg.Name, act.afterW)
	f.capL.setNode(dst.cfg.Name, act.afterDstW)
	f.version++
	n.version++
	dst.version++
	// Re-anchor both rows on the canonical whole-assignment estimate: the
	// scan priced the target via the addition path, which can differ from
	// a fresh resync — recovery, the next enforcement pass — in the last
	// ulp. An error propagates into the caller's rollback.
	if err := f.resyncNodeCapLocked(ctx, n); err != nil {
		return err
	}
	if err := f.resyncNodeCapLocked(ctx, dst); err != nil {
		return err
	}
	f.journalLocked(wal.Event{Type: wal.EvDeparted, Node: n.cfg.Name, Name: act.res.Name})
	f.journalLocked(wal.Event{
		Type: wal.EvAdmitted, Node: dst.cfg.Name, Name: newName, Core: act.dstCore,
		Bench: act.res.Spec.Name, Tag: meta.tag, Priority: meta.priority,
	})
	rep.Migrations++
	rep.Moves = append(rep.Moves, Move{
		From: n.cfg.Name, To: dst.cfg.Name, Name: act.res.Name, NewName: newName,
		Workload: act.res.Spec.Name, Core: act.dstCore, Improvement: -act.dspi,
	})
	return nil
}
