package fleet

import (
	"context"
	"errors"
	"testing"

	"mpmc/internal/manager"
	"mpmc/internal/workload"
)

// TestPlaceAllRollbackOnFull is the transactional acceptance test: a batch
// that overflows the fleet mid-way must admit nothing — every machine's
// resident set, instance-name counter, and the fleet's round-robin cursor
// deep-equal their pre-call state — and the error must carry both the
// rollback context and the ErrFleetFull cause.
func TestPlaceAllRollbackOnFull(t *testing.T) {
	ctx := context.Background()
	for _, p := range Policies() {
		t.Run(p.String(), func(t *testing.T) {
			f := testFleet(t, p, nil)
			// 13 residents: room for 3 more, so a batch of 5 fails on its
			// fourth placement with three already admitted.
			if _, err := f.PlaceAll(ctx, sixteenSpecs()[:13]); err != nil {
				t.Fatalf("seeding PlaceAll: %v", err)
			}
			before := snapshotFleet(f)
			placedBefore := f.Registry().CounterValue("fleet_place_total")

			_, err := f.PlaceAll(ctx, sixteenSpecs()[:5])
			if !errors.Is(err, ErrFleetFull) {
				t.Fatalf("overflow batch error %v, want ErrFleetFull cause", err)
			}
			requireUnchanged(t, f, before)
			if got := f.Registry().CounterValue("fleet_place_total"); got != placedBefore {
				t.Fatalf("fleet_place_total moved %d → %d across a rolled-back batch", placedBefore, got)
			}
			if got := f.Registry().CounterValue("fleet_place_rollback_total"); got != 1 {
				t.Fatalf("fleet_place_rollback_total %d, want 1", got)
			}

			// The fleet must still work after the rollback: the 3 free
			// slots are intact.
			placed, err := f.PlaceAll(ctx, sixteenSpecs()[:3])
			if err != nil {
				t.Fatalf("post-rollback PlaceAll: %v", err)
			}
			if len(placed) != 3 || checkCapacity(t, f) != 16 {
				t.Fatalf("post-rollback fleet in bad shape: %d placed", len(placed))
			}
		})
	}
}

// TestPlaceAllCancelled checks a cancelled batch admits nothing.
func TestPlaceAllCancelled(t *testing.T) {
	f := testFleet(t, LeastDegradation, nil)
	// Warm the feature cache so cancellation hits the placement loop, not
	// the profiling stage.
	if _, err := f.PlaceAll(context.Background(), sixteenSpecs()[:2]); err != nil {
		t.Fatalf("warming PlaceAll: %v", err)
	}
	before := snapshotFleet(f)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.PlaceAll(ctx, sixteenSpecs()[:4])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled PlaceAll error %v, want context.Canceled", err)
	}
	requireUnchanged(t, f, before)
}

// TestRebalanceNoImprovementLeavesStateAlone: a pass that finds nothing
// worth moving must change nothing and report the typed sentinel.
func TestRebalanceNoImprovementLeavesStateAlone(t *testing.T) {
	ctx := context.Background()
	f := testFleet(t, LeastDegradation, nil)
	if _, err := f.PlaceAll(ctx, sixteenSpecs()[:4]); err != nil {
		t.Fatalf("PlaceAll: %v", err)
	}
	before := snapshotFleet(f)

	// An absurd threshold guarantees the sentinel path even if some move
	// would pay a little.
	_, err := f.Rebalance(ctx, 1e9)
	if !errors.Is(err, manager.ErrNoImprovement) {
		t.Fatalf("Rebalance error %v, want ErrNoImprovement", err)
	}
	requireUnchanged(t, f, before)
	if got := f.Registry().CounterValue("fleet_rebalance_noop_total"); got != 1 {
		t.Fatalf("fleet_rebalance_noop_total %d, want 1", got)
	}
}

// TestRebalanceCancelledLeavesStateAlone: cancellation anywhere in the
// pass must leave the fleet deep-equal to its pre-call state.
func TestRebalanceCancelledLeavesStateAlone(t *testing.T) {
	f := testFleet(t, BinPack, func(c *Config) { c.BinPackCeiling = 100 })
	if _, err := f.PlaceAll(context.Background(), sixteenSpecs()[:4]); err != nil {
		t.Fatalf("PlaceAll: %v", err)
	}
	before := snapshotFleet(f)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.Rebalance(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Rebalance error %v, want context.Canceled", err)
	}
	requireUnchanged(t, f, before)
}

// TestRebalanceEmptyFleet pins the trivial sentinel path.
func TestRebalanceEmptyFleet(t *testing.T) {
	f := testFleet(t, LeastDegradation, nil)
	_, err := f.Rebalance(context.Background(), 0)
	if !errors.Is(err, manager.ErrNoImprovement) {
		t.Fatalf("empty-fleet Rebalance error %v, want ErrNoImprovement", err)
	}
}

// TestRemoveUnknownNode pins the typed sentinel for a bad node name.
func TestRemoveUnknownNode(t *testing.T) {
	f := testFleet(t, LeastDegradation, nil)
	_, err := f.Remove(context.Background(), "nope", "mcf#1")
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Remove error %v, want ErrUnknownNode", err)
	}
	if _, err := f.Place(context.Background(), workload.ByName("mcf")); err != nil {
		t.Fatalf("Place after bad Remove: %v", err)
	}
}
