// Differential replay suite: the proof that "faster" means "byte
// identical". Every seeded scenario — simulator traces and the chaos
// schedule — is replayed cold (no score memo, no solver state, no
// decision memo) and cached, at several worker counts, and the rendered
// reports/transcripts must agree byte for byte. Any divergence is a
// correctness bug in a cache layer, never acceptable noise.
//
// The package is external (fleet_test) because the chaos harness imports
// fleet; replaying its transcript from inside package fleet would be an
// import cycle.

package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"runtime"
	"testing"

	"mpmc/internal/chaos"
	"mpmc/internal/fleet"
)

// render marshals exactly like the CLIs and the golden tests do, so a
// differential pass really covers the bytes CI pins.
func render(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

func loadScenario(t *testing.T, path string) *fleet.Scenario {
	t.Helper()
	sc, err := fleet.LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// workerCounts are the concurrency levels every differential replay runs
// at; output must not depend on any of them.
func workerCounts() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// TestDifferentialSimColdVsCached replays the simulator scenarios cold and
// cached at every worker count and asserts one byte-identical report. The
// heavier seeded scenario is skipped under -short; the smoke scenario
// keeps the fast -short -race lane covered.
func TestDifferentialSimColdVsCached(t *testing.T) {
	scenarios := []string{filepath.Join("testdata", "scenario_smoke.json")}
	if !testing.Short() {
		scenarios = append(scenarios, filepath.Join("testdata", "scenario_seed1.json"))
	}
	for _, path := range scenarios {
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc := loadScenario(t, path)
			var ref []byte
			for _, w := range workerCounts() {
				for _, cap := range []int{-1, 0} {
					sim := fleet.NewSim(sc, w)
					sim.ScoreCacheCap = cap
					rep, err := sim.Run(context.Background())
					if err != nil {
						t.Fatalf("workers=%d cap=%d: %v", w, cap, err)
					}
					got := render(t, rep)
					if ref == nil {
						ref = got
					} else if !bytes.Equal(got, ref) {
						t.Fatalf("workers=%d cap=%d: report diverges from cold workers=1", w, cap)
					}
				}
			}
		})
	}
}

// TestDifferentialChaosColdVsCached replays the chaos schedule — node
// failures, injected faults, queue pressure, invariant checks after every
// event — cold and cached at every worker count, asserting one
// byte-identical transcript. Chaos is the adversarial half of the proof:
// fault injection and invalidation run mid-stream, so a stale cache entry
// or a warm/cold divergence in error paths surfaces here.
func TestDifferentialChaosColdVsCached(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos differential replay is the long-lane variant")
	}
	sc := loadScenario(t, filepath.Join("..", "chaos", "testdata", "scenario_chaos.json"))
	var ref []byte
	for _, w := range workerCounts() {
		for _, cold := range []bool{true, false} {
			tr, err := chaos.NewHarness(sc, chaos.Options{
				Seed: 1, Rate: 0.25, Workers: w, ColdScore: cold,
			}).Run(context.Background())
			if err != nil {
				t.Fatalf("workers=%d cold=%v: %v", w, cold, err)
			}
			got := render(t, tr)
			if ref == nil {
				ref = got
			} else if !bytes.Equal(got, ref) {
				t.Fatalf("workers=%d cold=%v: transcript diverges from cold workers=1", w, cold)
			}
		}
	}
}

// TestDifferentialChaosShortSmoke keeps a small chaos differential in the
// -short lane: one worker count, cold vs cached, full transcript bytes.
func TestDifferentialChaosShortSmoke(t *testing.T) {
	if !testing.Short() {
		t.Skip("covered exhaustively by TestDifferentialChaosColdVsCached")
	}
	sc := loadScenario(t, filepath.Join("..", "chaos", "testdata", "scenario_chaos.json"))
	var ref []byte
	for _, cold := range []bool{true, false} {
		tr, err := chaos.NewHarness(sc, chaos.Options{
			Seed: 1, Rate: 0.25, Workers: 2, ColdScore: cold,
		}).Run(context.Background())
		if err != nil {
			t.Fatalf("cold=%v: %v", cold, err)
		}
		got := render(t, tr)
		if ref == nil {
			ref = got
		} else if !bytes.Equal(got, ref) {
			t.Fatal("cold and cached chaos transcripts diverge")
		}
	}
}
