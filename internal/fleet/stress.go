// Scale-stress lane: a synthetic churn trace over a large fleet, sized to
// prove the predicate stages earn their keep. A score-everything pipeline
// consults the model for every up node on every arrival; a predicated one
// (FreeSlot + PerCoreCap + a MaxFeasible cut) prunes on cheap candidate
// facts first and solves for a handful of survivors. RunStress replays
// the identical trace either way and reports the solver-invocation count,
// so the ≥10× cut is a pinned number, not a slogan.

package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/sched"
	"mpmc/internal/workload"
	"mpmc/internal/xrand"
)

// StressConfig sizes one synthetic scale run.
type StressConfig struct {
	// Machines is the fleet size; presets cycle workstation, server,
	// laptop so assignments diverge. Arrivals is the trace length.
	Machines int
	Arrivals int
	// Predicated installs the scale pipeline: FreeSlot and PerCoreCap
	// predicates plus the MaxFeasible cut (0 = 8). Off, the fleet scores
	// every up node exactly like the legacy policy bundles.
	Predicated  bool
	MaxFeasible int
	// Occupancy holds the fleet at this fraction of its slot capacity
	// (0 = 0.75): once the resident count reaches it, each arrival first
	// retires the oldest resident, so the steady state is a full, churning
	// fleet rather than a monotone fill.
	Occupancy float64
	// Workers caps scoring concurrency (0 = GOMAXPROCS). It never affects
	// the report: decisions reduce serially in index order.
	Workers int
	// Seed drives the workload draw. ColdScore disables the score memo
	// and solver state, making SolverInvocations count every scored
	// candidate exactly.
	Seed      uint64
	ColdScore bool
}

// StressReport is the deterministic outcome of one stress run. Everything
// serialized is byte-identical for a fixed (config minus Workers);
// SolverInvocations stays out of the golden because the score memo's LRU
// eviction order — and with it the exact recompute count — may shift with
// scheduling when the working set outgrows the cache.
type StressReport struct {
	Machines       int     `json:"machines"`
	Slots          int     `json:"slots"`
	Arrivals       int     `json:"arrivals"`
	Predicated     bool    `json:"predicated"`
	Placed         int     `json:"placed"`
	Rejected       int     `json:"rejected"`
	Retired        int     `json:"retired"`
	FinalResidents int     `json:"final_residents"`
	FinalSPI       float64 `json:"final_spi"`
	FinalWatts     float64 `json:"final_watts"`
	// DecisionDigest is an FNV-64a hash over the placement stream (node,
	// core, or a rejection mark, per arrival): any divergence anywhere in
	// the run changes it.
	DecisionDigest string `json:"decision_digest"`

	SolverInvocations uint64 `json:"-"`
}

// stressPresets cycle so neighbouring nodes differ in kind: identical
// machines in identical states would collapse into one memo entry and
// understate the score-everything cost.
var stressPresets = []func() *machine.Machine{
	machine.TwoCoreWorkstation,
	machine.FourCoreServer,
	machine.TwoCoreLaptop,
}

// RunStress builds the fleet and replays the churn trace.
func RunStress(ctx context.Context, cfg StressConfig) (*StressReport, error) {
	if cfg.Machines <= 0 || cfg.Arrivals <= 0 {
		return nil, fmt.Errorf("fleet: stress needs machines and arrivals, got %d/%d", cfg.Machines, cfg.Arrivals)
	}
	pm, err := core.SyntheticPowerModel()
	if err != nil {
		return nil, err
	}
	const maxPerCore = 2
	nodes := make([]NodeConfig, cfg.Machines)
	slots := 0
	for i := range nodes {
		m := stressPresets[i%len(stressPresets)]()
		nodes[i] = NodeConfig{Machine: m, Power: pm, MaxPerCore: maxPerCore}
		slots += maxPerCore * m.NumCores
	}
	fcfg := Config{
		Nodes:   nodes,
		Policy:  LeastDegradation,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		Profile: func(_ context.Context, m *machine.Machine, spec *workload.Spec, _ core.ProfileOptions) (*core.FeatureVector, error) {
			return core.TruthFeature(spec, m), nil
		},
	}
	if cfg.ColdScore {
		fcfg.ScoreCacheCap = -1
	}
	if cfg.Predicated {
		fcfg.ExtraPredicates = []sched.Predicate{sched.FreeSlot{}, sched.PerCoreCap{}}
		fcfg.MaxFeasible = cfg.MaxFeasible
		if fcfg.MaxFeasible == 0 {
			fcfg.MaxFeasible = 8
		}
	}
	f, err := New(fcfg)
	if err != nil {
		return nil, err
	}

	occ := cfg.Occupancy
	if occ == 0 {
		occ = 0.75
	}
	target := int(occ * float64(slots))
	if target < 1 {
		target = 1
	}

	rep := &StressReport{
		Machines:   cfg.Machines,
		Slots:      slots,
		Arrivals:   cfg.Arrivals,
		Predicated: cfg.Predicated,
	}
	r := xrand.New(cfg.Seed)
	pool := workload.Suite()
	digest := fnv.New64a()
	type ref struct{ node, name string }
	fifo := make([]ref, 0, target+1)
	head := 0

	for i := 0; i < cfg.Arrivals; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(fifo)-head >= target {
			old := fifo[head]
			head++
			if _, err := f.Remove(ctx, old.node, old.name); err != nil {
				return nil, fmt.Errorf("fleet: stress retire %s/%s: %w", old.node, old.name, err)
			}
			rep.Retired++
			// Compact the retired prefix in place instead of letting the
			// backing array grow with the whole trace.
			if head == cap(fifo)/2 {
				fifo = append(fifo[:0], fifo[head:]...)
				head = 0
			}
		}
		spec := pool[r.Intn(len(pool))]
		p, err := f.Place(ctx, spec)
		switch {
		case err == nil:
			rep.Placed++
			fifo = append(fifo, ref{p.Node, p.Name})
			digest.Write([]byte(p.Node))
			digest.Write([]byte{0, byte(p.Core)})
		case errors.Is(err, ErrFleetFull):
			rep.Rejected++
			digest.Write([]byte{0xff})
		default:
			return nil, err
		}
	}

	rep.FinalResidents = len(fifo) - head
	rep.FinalSPI, rep.FinalWatts, err = f.Totals(ctx)
	if err != nil {
		return nil, err
	}
	rep.DecisionDigest = fmt.Sprintf("%016x", digest.Sum64())
	rep.SolverInvocations = f.SolverInvocations()
	return rep, nil
}
