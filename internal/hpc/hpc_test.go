package hpc

import (
	"math"
	"testing"
)

func TestVectorRoundTrip(t *testing.T) {
	r := Rates{L1RPS: 1, L2RPS: 2, L2MPS: 3, BRPS: 4, FPPS: 5}
	v := r.Vector()
	if len(v) != NumEvents {
		t.Fatalf("vector length %d", len(v))
	}
	if FromVector(v) != r {
		t.Fatalf("round trip mismatch: %+v", FromVector(v))
	}
}

func TestVectorOrderMatchesEq9(t *testing.T) {
	// Eq. 9 order: L1RPS, L2RPS, L2MPS, BRPS, FPPS.
	v := Rates{L1RPS: 10, L2RPS: 20, L2MPS: 30, BRPS: 40, FPPS: 50}.Vector()
	want := []float64{10, 20, 30, 40, 50}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("position %d: %v want %v", i, v[i], want[i])
		}
	}
}

func TestFromVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromVector([]float64{1, 2})
}

func TestAddScale(t *testing.T) {
	a := Rates{L1RPS: 1, L2RPS: 2, L2MPS: 3, BRPS: 4, FPPS: 5}
	b := a.Add(a)
	if b != a.Scale(2) {
		t.Fatalf("Add/Scale disagree: %+v vs %+v", b, a.Scale(2))
	}
}

func TestCountsSubAndRates(t *testing.T) {
	c1 := Counts{Instructions: 1000, L1Refs: 500, L2Refs: 50, L2Misses: 10, Branches: 100, FPOps: 20}
	c0 := Counts{Instructions: 400, L1Refs: 200, L2Refs: 20, L2Misses: 4, Branches: 40, FPOps: 8}
	d := c1.Sub(c0)
	if d.Instructions != 600 || d.L2Misses != 6 {
		t.Fatalf("delta %+v", d)
	}
	r := d.RatesOver(0.03)
	if math.Abs(r.L2MPS-200) > 1e-9 {
		t.Fatalf("L2MPS %v want 200", r.L2MPS)
	}
	if math.Abs(r.L1RPS-10000) > 1e-9 {
		t.Fatalf("L1RPS %v want 10000", r.L1RPS)
	}
}

func TestRatesOverPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Counts{}.RatesOver(0)
}
