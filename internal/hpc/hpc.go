// Package hpc defines the hardware-performance-counter quantities the
// paper's power model consumes, in the shape PAPI exposes them: per-core
// event rates sampled on a fixed period (30 ms in the paper's setup).
//
// The five rates are the ones the paper selected for their correlation
// with core power (Section 4.1): L1 data cache references, L2 references,
// L2 misses, retired branches, and retired floating-point instructions,
// each per second.
package hpc

import "fmt"

// NumEvents is the number of monitored event rates (the regressors of
// Eq. 9, excluding the idle-power intercept).
const NumEvents = 5

// Rates holds one core's event rates over a sampling window, in events per
// second of wall-clock (simulated) time.
type Rates struct {
	L1RPS float64 // L1 data cache references per second
	L2RPS float64 // L2 cache references per second
	L2MPS float64 // L2 cache misses per second
	BRPS  float64 // branch instructions retired per second
	FPPS  float64 // floating-point instructions retired per second
}

// Vector returns the rates in the fixed regressor order of Eq. 9:
// [L1RPS, L2RPS, L2MPS, BRPS, FPPS].
func (r Rates) Vector() []float64 {
	return []float64{r.L1RPS, r.L2RPS, r.L2MPS, r.BRPS, r.FPPS}
}

// FromVector reconstructs Rates from the Eq. 9 regressor order.
func FromVector(v []float64) Rates {
	if len(v) != NumEvents {
		panic(fmt.Sprintf("hpc: rate vector length %d, want %d", len(v), NumEvents))
	}
	return Rates{L1RPS: v[0], L2RPS: v[1], L2MPS: v[2], BRPS: v[3], FPPS: v[4]}
}

// Add returns the element-wise sum of two rate vectors.
func (r Rates) Add(o Rates) Rates {
	return Rates{
		L1RPS: r.L1RPS + o.L1RPS,
		L2RPS: r.L2RPS + o.L2RPS,
		L2MPS: r.L2MPS + o.L2MPS,
		BRPS:  r.BRPS + o.BRPS,
		FPPS:  r.FPPS + o.FPPS,
	}
}

// Scale returns the rates multiplied by f.
func (r Rates) Scale(f float64) Rates {
	return Rates{
		L1RPS: r.L1RPS * f,
		L2RPS: r.L2RPS * f,
		L2MPS: r.L2MPS * f,
		BRPS:  r.BRPS * f,
		FPPS:  r.FPPS * f,
	}
}

// Counts holds raw cumulative event counts for one core or process, from
// which windowed Rates are derived.
type Counts struct {
	Instructions float64
	L1Refs       float64
	L2Refs       float64
	L2Misses     float64
	Branches     float64
	FPOps        float64
}

// Sub returns c − o (the delta over a sampling window).
func (c Counts) Sub(o Counts) Counts {
	return Counts{
		Instructions: c.Instructions - o.Instructions,
		L1Refs:       c.L1Refs - o.L1Refs,
		L2Refs:       c.L2Refs - o.L2Refs,
		L2Misses:     c.L2Misses - o.L2Misses,
		Branches:     c.Branches - o.Branches,
		FPOps:        c.FPOps - o.FPOps,
	}
}

// RatesOver converts a count delta into rates over a window of dt seconds.
func (c Counts) RatesOver(dt float64) Rates {
	if dt <= 0 {
		panic("hpc: non-positive sampling window")
	}
	return Rates{
		L1RPS: c.L1Refs / dt,
		L2RPS: c.L2Refs / dt,
		L2MPS: c.L2Misses / dt,
		BRPS:  c.Branches / dt,
		FPPS:  c.FPOps / dt,
	}
}

// Sample is one HPC observation: a core's rates over the window ending at
// Time, together with the instruction throughput needed by SPI bookkeeping.
type Sample struct {
	Time  float64 // window end, seconds of simulated time
	Core  int
	Rates Rates
	IPS   float64 // instructions per second over the window
}
