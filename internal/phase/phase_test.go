package phase

import (
	"math"
	"testing"
	"testing/quick"

	"mpmc/internal/xrand"
)

func flatSeries(v float64, n int, noise float64, r *xrand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v + noise*r.NormFloat64()
	}
	return out
}

func TestDetectSinglePhase(t *testing.T) {
	r := xrand.New(1)
	series := flatSeries(0.4, 200, 0.02, r)
	segs := Detect(series, Options{})
	if len(segs) != 1 {
		t.Fatalf("flat series split into %d phases", len(segs))
	}
	if math.Abs(segs[0].Mean-0.4) > 0.01 {
		t.Fatalf("phase mean %v", segs[0].Mean)
	}
}

func TestDetectTwoPhases(t *testing.T) {
	r := xrand.New(2)
	series := append(flatSeries(0.2, 120, 0.01, r), flatSeries(0.7, 80, 0.01, r)...)
	segs := Detect(series, Options{})
	if len(segs) != 2 {
		t.Fatalf("expected 2 phases, got %d: %+v", len(segs), segs)
	}
	// Boundary near window 120 (within the detector's MinLen lag).
	if b := segs[0].End; b < 110 || b > 130 {
		t.Fatalf("boundary at %d, want ≈120", b)
	}
	if math.Abs(segs[0].Mean-0.2) > 0.03 || math.Abs(segs[1].Mean-0.7) > 0.03 {
		t.Fatalf("phase means %v / %v", segs[0].Mean, segs[1].Mean)
	}
	dom := Dominant(segs)
	if dom.Start != segs[0].Start {
		t.Fatal("dominant phase should be the longer first phase")
	}
}

func TestDetectIgnoresBlips(t *testing.T) {
	r := xrand.New(3)
	series := flatSeries(0.3, 100, 0.01, r)
	// A 3-window blip shorter than MinLen must not split the phase.
	series[50], series[51], series[52] = 0.9, 0.9, 0.9
	segs := Detect(series, Options{})
	if len(segs) != 1 {
		t.Fatalf("blip split the series into %d phases", len(segs))
	}
}

func TestDetectTilesProperty(t *testing.T) {
	// Segments always tile [0, n) regardless of input.
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%300 + 1
		r := xrand.New(seed)
		series := make([]float64, n)
		level := r.Float64()
		for i := range series {
			if r.Float64() < 0.02 {
				level = r.Float64() // occasional regime change
			}
			series[i] = level + 0.01*r.NormFloat64()
		}
		segs := Detect(series, Options{})
		if len(segs) == 0 || segs[0].Start != 0 || segs[len(segs)-1].End != n {
			return false
		}
		for i := 1; i < len(segs); i++ {
			if segs[i].Start != segs[i-1].End {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectEmpty(t *testing.T) {
	if segs := Detect(nil, Options{}); segs != nil {
		t.Fatal("empty series produced segments")
	}
}

func TestDominantPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dominant(nil)
}

func TestCount(t *testing.T) {
	segs := []Segment{{0, 90, 0.1}, {90, 100, 0.9}}
	if Count(segs, 0.2) != 1 {
		t.Fatalf("significant phases %d, want 1", Count(segs, 0.2))
	}
	if Count(segs, 0.05) != 2 {
		t.Fatalf("significant phases %d, want 2", Count(segs, 0.05))
	}
}

func TestCountPanicsOnBadFrac(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Count([]Segment{{0, 1, 0}}, 0)
}
