// Package phase implements the program-phase detection the paper's
// profiling methodology relies on (Section 6.1): "We record the program
// phase information for each benchmark during profiling. … The longest
// phases in art and mcf were used."
//
// The detector segments a per-window metric series (typically the miss
// rate of HPC sampling windows) into maximal runs with stable mean, using
// an online change-point rule: a boundary is declared when the recent
// window mean departs from the running segment mean by more than a
// threshold. It is deliberately simple — the same spirit as the RapidMRC
// phase tracking the paper cites — and fully deterministic.
package phase

import (
	"fmt"
	"math"
)

// Segment is one detected phase: windows [Start, End) with the given mean
// metric value.
type Segment struct {
	Start, End int
	Mean       float64
}

// Len returns the segment length in windows.
func (s Segment) Len() int { return s.End - s.Start }

// Options tunes the detector.
type Options struct {
	// MinLen is the minimum phase length in windows (default 8): shorter
	// fluctuations are absorbed into the current phase.
	MinLen int
	// Threshold is the relative mean shift that opens a new phase
	// (default 0.25): a boundary needs |recent − segment| >
	// Threshold·max(segment, floor).
	Threshold float64
	// Floor guards the relative comparison for near-zero metrics
	// (default 0.01).
	Floor float64
}

func (o Options) withDefaults() Options {
	if o.MinLen == 0 {
		o.MinLen = 8
	}
	if o.Threshold == 0 {
		o.Threshold = 0.25
	}
	if o.Floor == 0 {
		o.Floor = 0.01
	}
	return o
}

// Detect segments the series into phases. An empty series yields no
// segments; the segments exactly tile [0, len(series)).
func Detect(series []float64, opts Options) []Segment {
	o := opts.withDefaults()
	n := len(series)
	if n == 0 {
		return nil
	}
	var segs []Segment
	start := 0
	segSum := 0.0
	for i := 0; i < n; i++ {
		segSum += series[i]
		segLen := i - start + 1
		if segLen < 2*o.MinLen {
			continue
		}
		// Compare the trailing MinLen windows with the preceding part of
		// the segment. The recent statistic is a median so that
		// fluctuations shorter than MinLen cannot fake a phase change.
		recent := median(series[i-o.MinLen+1 : i+1])
		headSum := 0.0
		for j := start; j <= i-o.MinLen; j++ {
			headSum += series[j]
		}
		head := headSum / float64(segLen-o.MinLen)
		scale := math.Max(math.Abs(head), o.Floor)
		if math.Abs(recent-head) > o.Threshold*scale {
			// Boundary at the start of the recent run.
			cut := i - o.MinLen + 1
			segs = append(segs, Segment{Start: start, End: cut, Mean: head})
			start = cut
			segSum = 0
			for j := start; j <= i; j++ {
				segSum += series[j]
			}
		}
	}
	mean := segSum / float64(n-start)
	segs = append(segs, Segment{Start: start, End: n, Mean: mean})
	return mergeSlivers(segs, o.MinLen)
}

// mergeSlivers absorbs transition segments shorter than minLen into the
// neighbour with the closer mean. Boundary detection lags by up to MinLen
// windows, which can carve a short mixed-regime sliver at each change.
func mergeSlivers(segs []Segment, minLen int) []Segment {
	for {
		idx := -1
		for i, s := range segs {
			if s.Len() <= minLen && len(segs) > 1 {
				idx = i
				break
			}
		}
		if idx < 0 {
			return segs
		}
		s := segs[idx]
		// Pick the neighbour with the closer mean.
		target := idx - 1
		if idx == 0 {
			target = 1
		} else if idx+1 < len(segs) &&
			math.Abs(segs[idx+1].Mean-s.Mean) < math.Abs(segs[idx-1].Mean-s.Mean) {
			target = idx + 1
		}
		t := segs[target]
		merged := Segment{
			Start: minInt(s.Start, t.Start),
			End:   maxInt(s.End, t.End),
			Mean: (s.Mean*float64(s.Len()) + t.Mean*float64(t.Len())) /
				float64(s.Len()+t.Len()),
		}
		lo := minInt(idx, target)
		segs = append(segs[:lo], append([]Segment{merged}, segs[lo+2:]...)...)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// median returns the median of xs without modifying it.
func median(xs []float64) float64 {
	tmp := append([]float64(nil), xs...)
	// Insertion sort: MinLen-sized slices only.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Dominant returns the longest segment (ties: the earliest). It panics on
// an empty slice — callers must have at least one window of data.
func Dominant(segs []Segment) Segment {
	if len(segs) == 0 {
		panic("phase: no segments")
	}
	best := segs[0]
	for _, s := range segs[1:] {
		if s.Len() > best.Len() {
			best = s
		}
	}
	return best
}

// Count returns the number of "significant" phases: segments at least
// minFrac of the whole series. The paper reports that all but two
// benchmarks have a single significant phase.
func Count(segs []Segment, minFrac float64) int {
	if minFrac <= 0 || minFrac > 1 {
		panic(fmt.Sprintf("phase: minFrac %v outside (0,1]", minFrac))
	}
	total := 0
	for _, s := range segs {
		total += s.Len()
	}
	n := 0
	for _, s := range segs {
		if float64(s.Len()) >= minFrac*float64(total) {
			n++
		}
	}
	return n
}
