// Package machine defines the simulated CMP configurations standing in for
// the paper's three test systems:
//
//   - a 4-core server modeled on the Intel Core 2 Quad Q6600: two dies,
//     two cores per die, each die pair sharing a 16-way L2;
//   - a 2-core workstation modeled on the Pentium Dual-Core E2220 with a
//     smaller shared L2;
//   - a 2-core laptop modeled on the Core 2 Duo used for the second
//     performance validation, with a 12-way shared L2.
//
// Geometries keep the real associativities (16/8/12 ways — associativity
// is what the effective-cache-size model partitions) while scaling the set
// count down so steady state is reached in simulable time. The time base
// is scaled to a ~1 MIPS core (see workload package docs); each machine's
// power oracle has distinct nominal parameters, mirroring the paper's
// claim that the modeling procedure transfers across architectures without
// changes.
package machine

import (
	"fmt"

	"mpmc/internal/cache"
	"mpmc/internal/freq"
	"mpmc/internal/power"
)

// Machine is a full description of one simulated platform.
type Machine struct {
	Name     string
	NumCores int
	// Groups lists the cores sharing each last-level cache; every core
	// appears in exactly one group.
	Groups [][]int
	// NumSets and Assoc give the geometry of each group's shared L2.
	NumSets int
	Assoc   int
	// Policy is the L2 replacement policy (LRU unless an ablation says
	// otherwise).
	Policy cache.Policy
	// Prefetch enables the next-line L2 prefetcher (off by default, per
	// the paper's no-prefetch assumption).
	Prefetch bool

	// CoreSpeed optionally gives per-core speed factors for heterogeneous
	// (big.LITTLE-style) processors: core c executes instructions in
	// BaseSPI/CoreSpeed[c] seconds, while memory latency is unchanged.
	// Empty means every core runs at factor 1. The paper claims its
	// models "are general enough to accommodate heterogeneous tasks and
	// processors"; this knob is how that claim is exercised.
	CoreSpeed []float64

	// MemLatency is the time a last-level miss stalls the core, seconds.
	MemLatency float64
	// MemBandwidth optionally bounds the shared memory bus of each cache
	// group, in misses served per second (0 = unconstrained). When the
	// aggregate miss rate approaches it, misses queue and the effective
	// miss penalty grows — the "constrained processor-memory bandwidth"
	// regime the paper invokes in Section 3.1, and a deliberate violation
	// of the model's fixed-penalty assumption.
	MemBandwidth float64
	// MLPOverlap models memory-level parallelism: when an access misses
	// and the previous access also missed, the new miss overlaps the old
	// one and only costs (1−MLPOverlap)·MemLatency. This makes true SPI
	// mildly concave in MPA, so the linear Eq. 3 carries the same kind of
	// model-form error it has on real hardware.
	MLPOverlap float64
	// Timeslice is the scheduler quantum for time sharing, seconds.
	Timeslice float64
	// CtxSwitch is the direct context-switch overhead, seconds.
	CtxSwitch float64
	// SamplePeriod is the HPC sampling period, seconds (paper: 30 ms).
	SamplePeriod float64

	// Oracle and Sensor parameterize the ground-truth power and the
	// measurement chain.
	Oracle power.OracleParams
	Sensor power.SensorParams

	// Freq is the machine's discrete DVFS ladder (nil = one fixed state,
	// the base — exactly the pre-DVFS behavior). The fleet scheduler may
	// clock a machine to any rung; every model quantity scales per the
	// internal/freq contract and is bit-identical to the unscaled value
	// at the base rung.
	Freq *freq.Domain
	// Core tags the preset's core microarchitecture (big/LITTLE-style
	// parameter sets). The zero value reads as the out-of-order baseline
	// with both scaling factors exactly 1.
	Core freq.CoreType
}

// Validate reports configuration inconsistencies.
func (m *Machine) Validate() error {
	if m.NumCores <= 0 {
		return fmt.Errorf("machine %s: no cores", m.Name)
	}
	seen := make([]bool, m.NumCores)
	for _, g := range m.Groups {
		if len(g) == 0 {
			return fmt.Errorf("machine %s: empty cache group", m.Name)
		}
		for _, c := range g {
			if c < 0 || c >= m.NumCores {
				return fmt.Errorf("machine %s: core %d out of range", m.Name, c)
			}
			if seen[c] {
				return fmt.Errorf("machine %s: core %d in two cache groups", m.Name, c)
			}
			seen[c] = true
		}
	}
	for c, ok := range seen {
		if !ok {
			return fmt.Errorf("machine %s: core %d not in any cache group", m.Name, c)
		}
	}
	if m.NumSets <= 0 || m.Assoc <= 0 {
		return fmt.Errorf("machine %s: bad cache geometry", m.Name)
	}
	if m.MemLatency <= 0 || m.Timeslice <= 0 || m.SamplePeriod <= 0 {
		return fmt.Errorf("machine %s: non-positive timing parameter", m.Name)
	}
	if m.MLPOverlap < 0 || m.MLPOverlap >= 1 {
		return fmt.Errorf("machine %s: MLPOverlap %v outside [0,1)", m.Name, m.MLPOverlap)
	}
	if m.MemBandwidth < 0 {
		return fmt.Errorf("machine %s: negative memory bandwidth", m.Name)
	}
	if m.CtxSwitch < 0 {
		return fmt.Errorf("machine %s: negative context-switch cost", m.Name)
	}
	if len(m.CoreSpeed) != 0 {
		if len(m.CoreSpeed) != m.NumCores {
			return fmt.Errorf("machine %s: %d core speeds for %d cores", m.Name, len(m.CoreSpeed), m.NumCores)
		}
		for c, v := range m.CoreSpeed {
			if v <= 0 {
				return fmt.Errorf("machine %s: non-positive speed for core %d", m.Name, c)
			}
		}
	}
	if err := m.Freq.Validate(); err != nil {
		return fmt.Errorf("machine %s: %w", m.Name, err)
	}
	if err := m.Core.Validate(); err != nil {
		return fmt.Errorf("machine %s: %w", m.Name, err)
	}
	return nil
}

// SpeedOf returns core c's speed factor (1 for homogeneous machines).
func (m *Machine) SpeedOf(c int) float64 {
	if len(m.CoreSpeed) == 0 {
		return 1
	}
	return m.CoreSpeed[c]
}

// GroupOf returns the index of the cache group containing core, or -1.
func (m *Machine) GroupOf(core int) int {
	for gi, g := range m.Groups {
		for _, c := range g {
			if c == core {
				return gi
			}
		}
	}
	return -1
}

// Partners returns the other cores sharing core's cache — the paper's
// partner set PS_C.
func (m *Machine) Partners(core int) []int {
	gi := m.GroupOf(core)
	if gi < 0 {
		return nil
	}
	var out []int
	for _, c := range m.Groups[gi] {
		if c != core {
			out = append(out, c)
		}
	}
	return out
}

// CacheConfig returns the cache.Config of one shared L2 instance.
func (m *Machine) CacheConfig(seed uint64) cache.Config {
	return cache.Config{
		NumSets:  m.NumSets,
		Assoc:    m.Assoc,
		Policy:   m.Policy,
		Prefetch: m.Prefetch,
		Seed:     seed,
	}
}

// StandardLadder is the three-rung DVFS domain every stock preset
// carries: two reduced points plus the base. Adding the ladder changes
// nothing at the base rung (the scaling helpers are identity-gated), so
// pre-DVFS goldens stay byte-identical; it only gives the energy-aware
// policies and the power-cap enforcer rungs to move along.
func StandardLadder() *freq.Domain {
	return &freq.Domain{States: []freq.State{
		{Ratio: 0.6, Voltage: 0.85},
		{Ratio: 0.8, Voltage: 0.92},
		{Ratio: 1, Voltage: 1},
	}}
}

// FourCoreServer returns the Q6600-like reference machine used for
// Table 1, Table 3, Table 4, and Figure 2.
func FourCoreServer() *Machine {
	m := &Machine{
		Name:         "4-core-server",
		NumCores:     4,
		Groups:       [][]int{{0, 1}, {2, 3}},
		NumSets:      64,
		Assoc:        16,
		Policy:       cache.LRU,
		MemLatency:   6.0e-5,
		MLPOverlap:   0.25,
		Timeslice:    2.0,
		CtxSwitch:    1.0e-4,
		SamplePeriod: 0.03,
		Oracle: power.OracleParams{
			CoreIdle:  8.0,
			Uncore:    12.0,
			L1Ref:     1.2e-5,
			L2Ref:     2.0e-4,
			L2Miss:    -2.5e-4,
			Branch:    1.1e-5,
			FPOp:      9.0e-6,
			SatL1:     4.5e5,
			QuadL2:    1.6e-9,
			NoiseStd:  0.45,
			WanderStd: 0.9,
			WanderTau: 17,
		},
		Sensor: power.DefaultSensor(),
		Freq:   StandardLadder(),
		Core:   freq.OutOfOrder(),
	}
	mustValidate(m)
	return m
}

// TwoCoreWorkstation returns the E2220-like machine used for Table 2.
// Its nominal power is lower and its shared L2 smaller (8 ways).
func TwoCoreWorkstation() *Machine {
	m := &Machine{
		Name:         "2-core-workstation",
		NumCores:     2,
		Groups:       [][]int{{0, 1}},
		NumSets:      32,
		Assoc:        8,
		Policy:       cache.LRU,
		MemLatency:   6.4e-5,
		MLPOverlap:   0.20,
		Timeslice:    2.0,
		CtxSwitch:    1.0e-4,
		SamplePeriod: 0.03,
		Oracle: power.OracleParams{
			CoreIdle:  6.0,
			Uncore:    8.0,
			L1Ref:     9.0e-6,
			L2Ref:     1.6e-4,
			L2Miss:    -1.8e-4,
			Branch:    8.0e-6,
			FPOp:      7.0e-6,
			SatL1:     4.0e5,
			QuadL2:    2.0e-9,
			NoiseStd:  0.40,
			WanderStd: 0.7,
			WanderTau: 17,
		},
		Sensor: power.DefaultSensor(),
		Freq:   StandardLadder(),
		Core:   freq.OutOfOrder(),
	}
	mustValidate(m)
	return m
}

// TwoCoreLaptop returns the Core 2 Duo-like machine (12-way shared L2)
// used for the second performance-model validation (55 pairs of 10
// benchmarks, Section 6.2).
func TwoCoreLaptop() *Machine {
	m := &Machine{
		Name:         "2-core-laptop",
		NumCores:     2,
		Groups:       [][]int{{0, 1}},
		NumSets:      48,
		Assoc:        12,
		Policy:       cache.LRU,
		MemLatency:   6.2e-5,
		MLPOverlap:   0.22,
		Timeslice:    2.0,
		CtxSwitch:    1.0e-4,
		SamplePeriod: 0.03,
		Oracle: power.OracleParams{
			CoreIdle:  4.0,
			Uncore:    6.0,
			L1Ref:     7.0e-6,
			L2Ref:     1.2e-4,
			L2Miss:    -1.5e-4,
			Branch:    7.0e-6,
			FPOp:      6.0e-6,
			SatL1:     3.5e5,
			QuadL2:    2.0e-9,
			NoiseStd:  0.30,
			WanderStd: 0.5,
			WanderTau: 17,
		},
		Sensor: power.DefaultSensor(),
		Freq:   StandardLadder(),
		Core:   freq.OutOfOrder(),
	}
	mustValidate(m)
	return m
}

// FourCoreLittle returns a little-core variant of the server: same cache
// geometry and die layout, but in-order cores (higher compute SPI, lower
// dynamic event energy) — the heterogeneous half of a big/LITTLE fleet.
func FourCoreLittle() *Machine {
	m := &Machine{
		Name:         "4-core-little",
		NumCores:     4,
		Groups:       [][]int{{0, 1}, {2, 3}},
		NumSets:      64,
		Assoc:        16,
		Policy:       cache.LRU,
		MemLatency:   6.0e-5,
		MLPOverlap:   0.15,
		Timeslice:    2.0,
		CtxSwitch:    1.0e-4,
		SamplePeriod: 0.03,
		Oracle: power.OracleParams{
			CoreIdle:  3.5,
			Uncore:    9.0,
			L1Ref:     5.5e-6,
			L2Ref:     9.0e-5,
			L2Miss:    -1.1e-4,
			Branch:    5.0e-6,
			FPOp:      4.0e-6,
			SatL1:     4.5e5,
			QuadL2:    1.6e-9,
			NoiseStd:  0.30,
			WanderStd: 0.5,
			WanderTau: 17,
		},
		Sensor: power.DefaultSensor(),
		Freq:   StandardLadder(),
		Core:   freq.InOrder(),
	}
	mustValidate(m)
	return m
}

func mustValidate(m *Machine) {
	if err := m.Validate(); err != nil {
		panic(err)
	}
}
