package machine

import (
	"testing"

	"mpmc/internal/cache"
	"mpmc/internal/freq"
	"mpmc/internal/power"
)

func TestPresetsValid(t *testing.T) {
	for _, m := range []*Machine{FourCoreServer(), TwoCoreWorkstation(), TwoCoreLaptop(), FourCoreLittle()} {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestLittlePresetIsTheServersInOrderTwin(t *testing.T) {
	big, little := FourCoreServer(), FourCoreLittle()
	if little.NumCores != big.NumCores || little.Assoc != big.Assoc ||
		little.NumSets != big.NumSets || len(little.Groups) != len(big.Groups) {
		t.Fatalf("little geometry %+v diverges from the server's", little)
	}
	if little.Core.Name != "in-order" {
		t.Fatalf("little core type %q, want in-order", little.Core.Name)
	}
	if big.Core.Name != "out-of-order" {
		t.Fatalf("server core type %q, want out-of-order", big.Core.Name)
	}
	if little.Freq.NumStates() < 2 {
		t.Fatalf("little ladder has %d states, want a real DVFS range", little.Freq.NumStates())
	}
	// The LITTLE trade: cheaper dynamic events, not a different die.
	if little.Oracle.L2Ref >= big.Oracle.L2Ref || little.Oracle.CoreIdle >= big.Oracle.CoreIdle {
		t.Fatalf("little oracle %+v not below the server's %+v", little.Oracle, big.Oracle)
	}
}

func TestPresetGeometriesMatchPaper(t *testing.T) {
	if m := FourCoreServer(); m.Assoc != 16 || m.NumCores != 4 || len(m.Groups) != 2 {
		t.Fatalf("4-core server geometry %+v", m)
	}
	if m := TwoCoreWorkstation(); m.Assoc != 8 || m.NumCores != 2 {
		t.Fatalf("workstation geometry %+v", m)
	}
	if m := TwoCoreLaptop(); m.Assoc != 12 || m.NumCores != 2 {
		t.Fatalf("laptop geometry %+v", m)
	}
}

func TestGroupOfAndPartners(t *testing.T) {
	m := FourCoreServer()
	if m.GroupOf(0) != 0 || m.GroupOf(1) != 0 || m.GroupOf(2) != 1 || m.GroupOf(3) != 1 {
		t.Fatal("GroupOf wrong")
	}
	p := m.Partners(0)
	if len(p) != 1 || p[0] != 1 {
		t.Fatalf("Partners(0) = %v", p)
	}
	if m.GroupOf(99) != -1 || m.Partners(99) != nil {
		t.Fatal("out-of-range core should have no group")
	}
}

func TestCacheConfig(t *testing.T) {
	m := TwoCoreLaptop()
	cfg := m.CacheConfig(7)
	if cfg.NumSets != m.NumSets || cfg.Assoc != m.Assoc || cfg.Seed != 7 {
		t.Fatalf("cache config %+v", cfg)
	}
	// The config must construct a working cache.
	c := cache.New(cfg)
	if c.Assoc() != 12 {
		t.Fatal("constructed cache wrong")
	}
}

func TestValidateCatchesBadMachines(t *testing.T) {
	base := func() *Machine {
		return &Machine{
			Name: "t", NumCores: 2, Groups: [][]int{{0, 1}},
			NumSets: 4, Assoc: 2,
			MemLatency: 1e-5, Timeslice: 1, SamplePeriod: 0.03,
		}
	}
	cases := []func(*Machine){
		func(m *Machine) { m.NumCores = 0 },
		func(m *Machine) { m.Groups = [][]int{{0}} },         // core 1 unassigned
		func(m *Machine) { m.Groups = [][]int{{0, 1}, {1}} }, // core 1 twice
		func(m *Machine) { m.Groups = [][]int{{0, 1, 5}} },   // out of range
		func(m *Machine) { m.Groups = [][]int{{}, {0, 1}} },  // empty group
		func(m *Machine) { m.NumSets = 0 },
		func(m *Machine) { m.MemLatency = 0 },
		func(m *Machine) { m.CtxSwitch = -1 },
		func(m *Machine) { m.MLPOverlap = 1 },
		func(m *Machine) { m.MemBandwidth = -1 },
		func(m *Machine) { m.Freq = &freq.Domain{} }, // empty ladder
		func(m *Machine) { m.Core = freq.CoreType{SPIFactor: -1} },
	}
	for i, mut := range cases {
		m := base()
		mut(m)
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d: invalid machine accepted", i)
		}
	}
}

func TestMustValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mustValidate accepted a coreless machine")
		}
	}()
	mustValidate(&Machine{Name: "broken"})
}

func TestOraclesDiffer(t *testing.T) {
	// The paper validates on machines with distinct nominal power; our
	// presets must not share oracle parameters.
	a := FourCoreServer().Oracle
	b := TwoCoreWorkstation().Oracle
	if a == (power.OracleParams{}) || a == b {
		t.Fatal("machine oracles should be distinct and non-zero")
	}
}

func TestL2MissCoefficientNegative(t *testing.T) {
	// Section 4.2 relies on c3 < 0; the ground truth must have that sign.
	for _, m := range []*Machine{FourCoreServer(), TwoCoreWorkstation(), TwoCoreLaptop()} {
		if m.Oracle.L2Miss >= 0 {
			t.Fatalf("%s: L2 miss energy should be negative", m.Name)
		}
	}
}

func TestSpeedOf(t *testing.T) {
	m := TwoCoreWorkstation()
	if m.SpeedOf(0) != 1 || m.SpeedOf(1) != 1 {
		t.Fatal("homogeneous machine should report unit speeds")
	}
	m.CoreSpeed = []float64{1.0, 0.5}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.SpeedOf(1) != 0.5 {
		t.Fatalf("SpeedOf(1) = %v", m.SpeedOf(1))
	}
	m.CoreSpeed = []float64{1.0}
	if err := m.Validate(); err == nil {
		t.Fatal("accepted speed list shorter than core count")
	}
	m.CoreSpeed = []float64{1.0, 0}
	if err := m.Validate(); err == nil {
		t.Fatal("accepted zero core speed")
	}
}
