// Package cache implements the set-associative last-level cache model that
// stands in for the paper's hardware (Intel Core 2 shared L2 caches).
//
// The cache identifies lines by (owner, lineID): co-scheduled processes
// have disjoint address spaces, so two owners never share a line, but they
// do contend for the ways of the sets their lines map into — exactly the
// contention the paper models. Line lineID maps to set lineID mod NumSets.
//
// True LRU replacement is the paper's modeling assumption; random and
// tree-PLRU policies are provided for the "assumptions violated" ablation.
// An optional next-line prefetcher supports the Section 3.1 prefetching
// study.
package cache

import (
	"fmt"

	"mpmc/internal/xrand"
)

// Policy selects the replacement policy of a Cache.
type Policy int

const (
	// LRU is true least-recently-used replacement (the paper's assumption).
	LRU Policy = iota
	// Random evicts a uniformly random way.
	Random
	// PLRU is tree-based pseudo-LRU, the policy real Core 2 L2 caches
	// approximate; used to test the model when the LRU assumption is bent.
	PLRU
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case Random:
		return "Random"
	case PLRU:
		return "PLRU"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// MaxOwners bounds the number of distinct processes a cache tracks.
const MaxOwners = 64

type way struct {
	valid      bool
	owner      uint8
	id         uint64
	prefetched bool
}

type set struct {
	ways []way
	// recency holds way indices from MRU (front) to LRU (back); LRU policy
	// only. len == number of valid ways.
	recency []uint8
	// plruBits holds the PLRU tree state; PLRU policy only.
	plruBits uint32
}

// OwnerStats aggregates the demand-access statistics for one owner.
type OwnerStats struct {
	Accesses     uint64 // demand accesses
	Misses       uint64 // demand misses
	PrefetchFill uint64 // lines installed by the prefetcher
	PrefetchHit  uint64 // demand hits on prefetched lines
}

// MPA returns demand misses per demand access, or 0 with no accesses.
func (s OwnerStats) MPA() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Config describes a cache geometry and behaviour.
type Config struct {
	NumSets  int    // number of sets (> 0)
	Assoc    int    // ways per set (> 0)
	Policy   Policy // replacement policy
	Prefetch bool   // enable next-line prefetch on demand misses
	Seed     uint64 // RNG seed (Random policy and tie-breaking)
}

// Cache is a set-associative cache with per-owner statistics.
// It is not safe for concurrent use; the simulator is single-threaded per
// machine (hardware is inherently serialized at the shared cache).
type Cache struct {
	cfg       Config
	sets      []set
	rng       *xrand.Rand
	stats     [MaxOwners]OwnerStats
	occupancy [MaxOwners]int // lines currently resident per owner
}

// New constructs a cache. It panics on invalid geometry (these are static
// experiment configurations, not runtime inputs).
func New(cfg Config) *Cache {
	if cfg.NumSets <= 0 || cfg.Assoc <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry %d sets × %d ways", cfg.NumSets, cfg.Assoc))
	}
	if cfg.Assoc > 255 {
		panic("cache: associativity above 255 unsupported")
	}
	c := &Cache{
		cfg:  cfg,
		sets: make([]set, cfg.NumSets),
		rng:  xrand.New(cfg.Seed ^ 0xcafef00d),
	}
	for i := range c.sets {
		c.sets[i].ways = make([]way, cfg.Assoc)
		c.sets[i].recency = make([]uint8, 0, cfg.Assoc)
	}
	return c
}

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.cfg.NumSets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.cfg.Assoc }

// SetIndex returns the set a line maps to.
func (c *Cache) SetIndex(lineID uint64) int {
	return int(lineID % uint64(c.cfg.NumSets))
}

// Access performs a demand access by owner to lineID and reports whether it
// hit. A miss installs the line (evicting per policy) and, if prefetching
// is enabled, also fills lineID+1.
func (c *Cache) Access(owner int, lineID uint64) bool {
	c.checkOwner(owner)
	st := &c.stats[owner]
	st.Accesses++
	hit := c.touch(owner, lineID, false)
	if hit {
		return true
	}
	st.Misses++
	if c.cfg.Prefetch {
		c.prefetchFill(owner, lineID+1)
	}
	return false
}

// prefetchFill installs lineID for owner if absent, without touching demand
// statistics (beyond the PrefetchFill counter).
func (c *Cache) prefetchFill(owner int, lineID uint64) {
	s := &c.sets[c.SetIndex(lineID)]
	if c.find(s, owner, lineID) >= 0 {
		return
	}
	c.install(s, owner, lineID, true)
	c.stats[owner].PrefetchFill++
}

// touch looks up (owner, lineID); on hit it promotes the line, on miss it
// installs it. Returns hit.
func (c *Cache) touch(owner int, lineID uint64, prefetched bool) bool {
	s := &c.sets[c.SetIndex(lineID)]
	if w := c.find(s, owner, lineID); w >= 0 {
		if s.ways[w].prefetched {
			s.ways[w].prefetched = false
			c.stats[owner].PrefetchHit++
		}
		c.promote(s, w)
		return true
	}
	c.install(s, owner, lineID, prefetched)
	return false
}

func (c *Cache) find(s *set, owner int, lineID uint64) int {
	for i := range s.ways {
		w := &s.ways[i]
		if w.valid && w.id == lineID && w.owner == uint8(owner) {
			return i
		}
	}
	return -1
}

// promote updates replacement metadata after a hit on way w.
func (c *Cache) promote(s *set, w int) {
	switch c.cfg.Policy {
	case LRU:
		moveToFront(s.recency, uint8(w))
	case PLRU:
		c.plruTouch(s, w)
	case Random:
		// stateless
	}
}

// install places (owner, lineID) into s, evicting if the set is full.
func (c *Cache) install(s *set, owner int, lineID uint64, prefetched bool) {
	victim := -1
	for i := range s.ways {
		if !s.ways[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = c.chooseVictim(s)
		c.occupancy[s.ways[victim].owner]--
	}
	wasValid := s.ways[victim].valid
	s.ways[victim] = way{valid: true, owner: uint8(owner), id: lineID, prefetched: prefetched}
	c.occupancy[owner]++
	switch c.cfg.Policy {
	case LRU:
		if wasValid {
			removeVal(&s.recency, uint8(victim))
		}
		if prefetched {
			// Speculative fills enter at the LRU end: a wrong prefetch
			// is evicted first and barely pollutes the set.
			s.recency = append(s.recency, uint8(victim))
		} else {
			s.recency = append(s.recency, 0)
			copy(s.recency[1:], s.recency)
			s.recency[0] = uint8(victim)
		}
	case PLRU:
		c.plruTouch(s, victim)
	case Random:
		// stateless
	}
}

// chooseVictim picks a way to evict from a full set per the policy.
func (c *Cache) chooseVictim(s *set) int {
	switch c.cfg.Policy {
	case LRU:
		return int(s.recency[len(s.recency)-1])
	case Random:
		return c.rng.Intn(len(s.ways))
	case PLRU:
		return c.plruVictim(s)
	}
	panic("cache: unknown policy")
}

// plruTouch flips the tree bits on the path to way w so the path points
// away from it.
func (c *Cache) plruTouch(s *set, w int) {
	n := len(s.ways)
	node := 0
	lo, hi := 0, n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if w < mid {
			s.plruBits |= 1 << uint(node) // point right (away from w)
			node = 2*node + 1
			hi = mid
		} else {
			s.plruBits &^= 1 << uint(node) // point left (away from w)
			node = 2*node + 2
			lo = mid
		}
	}
}

// plruVictim walks the tree bits toward the pseudo-LRU way.
func (c *Cache) plruVictim(s *set) int {
	n := len(s.ways)
	node := 0
	lo, hi := 0, n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.plruBits&(1<<uint(node)) != 0 {
			// bit set → go right
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// Stats returns the accumulated statistics for owner.
func (c *Cache) Stats(owner int) OwnerStats {
	c.checkOwner(owner)
	return c.stats[owner]
}

// ResetStats clears access statistics (occupancy is preserved: it reflects
// cache contents, not history). Used to discard warm-up transients.
func (c *Cache) ResetStats() {
	for i := range c.stats {
		c.stats[i] = OwnerStats{}
	}
}

// Occupancy returns the number of lines owner currently holds.
func (c *Cache) Occupancy(owner int) int {
	c.checkOwner(owner)
	return c.occupancy[owner]
}

// AvgWays returns the average number of ways per set owner currently holds
// — the instantaneous effective cache size S_i of the paper.
func (c *Cache) AvgWays(owner int) float64 {
	return float64(c.Occupancy(owner)) / float64(c.cfg.NumSets)
}

// Flush invalidates all lines and clears occupancy (statistics persist).
func (c *Cache) Flush() {
	for i := range c.sets {
		s := &c.sets[i]
		for j := range s.ways {
			s.ways[j] = way{}
		}
		s.recency = s.recency[:0]
		s.plruBits = 0
	}
	for i := range c.occupancy {
		c.occupancy[i] = 0
	}
}

// FlushOwner invalidates every line belonging to owner (process exit).
func (c *Cache) FlushOwner(owner int) {
	c.checkOwner(owner)
	for i := range c.sets {
		s := &c.sets[i]
		for j := range s.ways {
			if s.ways[j].valid && s.ways[j].owner == uint8(owner) {
				s.ways[j] = way{}
				if c.cfg.Policy == LRU {
					removeVal(&s.recency, uint8(j))
				}
			}
		}
	}
	c.occupancy[owner] = 0
}

func (c *Cache) checkOwner(owner int) {
	if owner < 0 || owner >= MaxOwners {
		panic(fmt.Sprintf("cache: owner %d out of range", owner))
	}
}

// moveToFront moves value v to the front of order; v must be present.
func moveToFront(order []uint8, v uint8) {
	for i, x := range order {
		if x == v {
			copy(order[1:i+1], order[:i])
			order[0] = v
			return
		}
	}
	panic("cache: recency list corrupt")
}

// removeVal deletes value v from *order if present.
func removeVal(order *[]uint8, v uint8) {
	o := *order
	for i, x := range o {
		if x == v {
			*order = append(o[:i], o[i+1:]...)
			return
		}
	}
}
