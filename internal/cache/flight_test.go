package cache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightDeduplicates pins the core singleflight property with no
// registration race: the leader parks inside fn until every other caller
// is provably queued behind the in-flight call, so exactly one invocation
// of fn is guaranteed, observed by all waiters as shared.
func TestFlightDeduplicates(t *testing.T) {
	const waiters = 8
	var g Flight[string]
	var runs atomic.Int64
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Do("k", func() (string, error) {
			close(leaderIn)
			<-release
			runs.Add(1)
			return "v", nil
		})
	}()
	<-leaderIn
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (string, error) {
				runs.Add(1)
				return "v", nil
			})
			if v != "v" || err != nil || !shared {
				t.Errorf("waiter got %q, %v, shared=%v; want v, nil, true", v, err, shared)
			}
		}()
	}
	// The waiters' Do calls must register before the leader finishes. Their
	// registration takes the same mutex the leader needs to unregister, and
	// each either finds the in-flight call (and will share) or starts after
	// the leader fully completed — impossible while release is unclosed.
	// Spin until all waiters are queued behind the call.
	for {
		g.mu.Lock()
		c, ok := g.calls["k"]
		dups := 0
		if ok {
			dups = c.dups
		}
		g.mu.Unlock()
		if dups == waiters {
			break
		}
	}
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times; want exactly 1", got)
	}
}

// TestFlightErrorShared verifies every waiter sees the leader's error.
func TestFlightErrorShared(t *testing.T) {
	var g Flight[int]
	wantErr := errors.New("profiling failed")
	_, err, _ := g.Do("k", func() (int, error) { return 0, wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v; want %v", err, wantErr)
	}
	// A later call runs fresh (errors are not cached).
	v, err, shared := g.Do("k", func() (int, error) { return 7, nil })
	if v != 7 || err != nil || shared {
		t.Fatalf("retry = %d, %v, shared=%v; want 7, nil, false", v, err, shared)
	}
}

// TestFlightDistinctKeys checks keys do not serialize each other.
func TestFlightDistinctKeys(t *testing.T) {
	var g Flight[int]
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do(string(rune('a'+i)), func() (int, error) { return i, nil })
			if err != nil || v != i {
				t.Errorf("key %d: got %d, %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
}
