// Singleflight-style call deduplication.
//
// Profiling an unknown process is the one expensive operation of the
// paper's run-time manager (A co-runs, Section 3.4). When a burst of
// requests all name the same unprofiled benchmark, exactly one sweep
// should run; the rest wait for its result. Flight provides that
// guarantee as a small generic primitive so the serving layer can wrap
// any loader with it.

package cache

import "sync"

// flightCall is one in-progress invocation awaited by dups+1 callers.
type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
	dups int
}

// Flight deduplicates concurrent calls by key: while one call for a key is
// in progress, additional Do calls for the same key block and receive the
// same result instead of invoking fn again. The zero value is ready to use.
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

// Do invokes fn once per key at a time. The boolean reports whether this
// caller shared another caller's invocation rather than running fn itself.
// Results are not cached beyond the in-progress window: once the leader's
// fn returns and all waiters are released, the next Do runs fn again
// (persistent memoization is the LRU's job, not Flight's).
func (g *Flight[V]) Do(key string, fn func() (V, error)) (val V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall[V])
	}
	if c, ok := g.calls[key]; ok {
		c.dups++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
