// Bounded LRU key-value cache for derived model state.
//
// The hardware cache model above simulates LRU *sets*; this file reuses the
// same replacement intuition at the software layer: profiling a process
// costs A simulated co-runs (Section 3.4), so a long-running service keeps
// the resulting feature vectors resident and evicts the least recently
// requested one when the working set outgrows the configured capacity —
// the amortization argument PPT-Multicore and the reuse-distance-histogram
// literature make for reusing profiles across many predictions.

package cache

import "sync"

// LRUStats is a snapshot of an LRU's counters.
type LRUStats struct {
	Hits      uint64 // Get found the key
	Misses    uint64 // Get did not find the key
	Evictions uint64 // entries displaced by Put at capacity
	Len       int    // entries currently resident
	Cap       int    // configured capacity
}

// lruEntry is a node of the intrusive recency list, most recent at front.
type lruEntry[V any] struct {
	key        string
	val        V
	prev, next *lruEntry[V]
}

// LRUMap is a bounded least-recently-used map from string keys to values.
// All methods are safe for concurrent use.
type LRUMap[V any] struct {
	mu      sync.Mutex
	cap     int
	items   map[string]*lruEntry[V]
	head    *lruEntry[V] // most recently used
	tail    *lruEntry[V] // least recently used
	hits    uint64
	misses  uint64
	evicted uint64
}

// NewLRUMap builds an LRUMap holding at most capacity entries. It panics on a
// non-positive capacity (a service misconfiguration, not a runtime input).
func NewLRUMap[V any](capacity int) *LRUMap[V] {
	if capacity <= 0 {
		panic("cache: LRU capacity must be positive")
	}
	return &LRUMap[V]{cap: capacity, items: make(map[string]*lruEntry[V], capacity)}
}

// Get returns the value for key and whether it was present, promoting the
// entry to most recently used on a hit.
func (l *LRUMap[V]) Get(key string) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.items[key]
	if !ok {
		l.misses++
		var zero V
		return zero, false
	}
	l.hits++
	l.moveToFront(e)
	return e.val, true
}

// Put inserts or overwrites key, promoting it to most recently used and
// evicting the least recently used entry if the cache is at capacity.
func (l *LRUMap[V]) Put(key string, val V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.items[key]; ok {
		e.val = val
		l.moveToFront(e)
		return
	}
	if len(l.items) >= l.cap {
		victim := l.tail
		l.unlink(victim)
		delete(l.items, victim.key)
		l.evicted++
	}
	e := &lruEntry[V]{key: key, val: val}
	l.items[key] = e
	l.pushFront(e)
}

// Delete removes key and reports whether it was present. Targeted
// invalidation for callers whose values can go stale (e.g. a memoized
// score whose machine failed); a miss is not an error.
func (l *LRUMap[V]) Delete(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.items[key]
	if !ok {
		return false
	}
	l.unlink(e)
	delete(l.items, key)
	return true
}

// Len returns the number of resident entries.
func (l *LRUMap[V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.items)
}

// Stats returns a consistent snapshot of the counters.
func (l *LRUMap[V]) Stats() LRUStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LRUStats{Hits: l.hits, Misses: l.misses, Evictions: l.evicted, Len: len(l.items), Cap: l.cap}
}

// Keys returns the resident keys from most to least recently used.
func (l *LRUMap[V]) Keys() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.items))
	for e := l.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

// unlink removes e from the recency list. Called with the lock held.
func (l *LRUMap[V]) unlink(e *lruEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry. Called with the lock held.
func (l *LRUMap[V]) pushFront(e *lruEntry[V]) {
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *LRUMap[V]) moveToFront(e *lruEntry[V]) {
	if l.head == e {
		return
	}
	l.unlink(e)
	l.pushFront(e)
}
