package cache

import (
	"testing"
	"testing/quick"

	"mpmc/internal/xrand"
)

func newLRU(sets, assoc int) *Cache {
	return New(Config{NumSets: sets, Assoc: assoc, Policy: LRU, Seed: 1})
}

func TestBasicHitMiss(t *testing.T) {
	c := newLRU(1, 2)
	if c.Access(0, 0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0, 0) {
		t.Fatal("warm access missed")
	}
	st := c.Stats(0)
	if st.Accesses != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.MPA() != 0.5 {
		t.Fatalf("MPA %v", st.MPA())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 1 set, 2 ways: lines 0,1 fill it; accessing 0 makes 1 the LRU;
	// inserting 2 must evict 1.
	c := newLRU(1, 2)
	c.Access(0, 0)
	c.Access(0, 1)
	c.Access(0, 0)
	c.Access(0, 2) // evicts 1
	if !c.Access(0, 0) {
		t.Fatal("line 0 should have survived")
	}
	if c.Access(0, 1) {
		t.Fatal("line 1 should have been evicted")
	}
}

func TestLRUCyclicPathology(t *testing.T) {
	// Classic LRU property: cycling over assoc+1 lines in one set misses
	// every access after warm-up.
	c := newLRU(1, 4)
	for warm := 0; warm < 5; warm++ {
		for id := uint64(0); id < 5; id++ {
			c.Access(0, id)
		}
	}
	c.ResetStats()
	for rep := 0; rep < 10; rep++ {
		for id := uint64(0); id < 5; id++ {
			c.Access(0, id)
		}
	}
	st := c.Stats(0)
	if st.Misses != st.Accesses {
		t.Fatalf("expected all misses, got %d/%d", st.Misses, st.Accesses)
	}
}

func TestLRUWorkingSetFits(t *testing.T) {
	// Cycling over exactly assoc lines hits every access after warm-up.
	c := newLRU(1, 4)
	for id := uint64(0); id < 4; id++ {
		c.Access(0, id)
	}
	c.ResetStats()
	for rep := 0; rep < 10; rep++ {
		for id := uint64(0); id < 4; id++ {
			if !c.Access(0, id) {
				t.Fatalf("unexpected miss on line %d rep %d", id, rep)
			}
		}
	}
}

func TestSetMapping(t *testing.T) {
	c := newLRU(4, 1)
	// Lines 0 and 4 map to set 0 and conflict; lines 1,2,3 do not.
	c.Access(0, 0)
	c.Access(0, 1)
	c.Access(0, 2)
	c.Access(0, 3)
	if !c.Access(0, 0) {
		t.Fatal("distinct sets should not conflict")
	}
	c.Access(0, 4) // evicts 0 in set 0
	if c.Access(0, 0) {
		t.Fatal("conflicting line should have evicted 0")
	}
}

func TestOwnersAreDisjoint(t *testing.T) {
	c := newLRU(1, 2)
	c.Access(0, 7)
	if c.Access(1, 7) {
		t.Fatal("owner 1 hit on owner 0's line")
	}
	if !c.Access(0, 7) || !c.Access(1, 7) {
		t.Fatal("both owners should now hit their own copies")
	}
}

func TestContentionEviction(t *testing.T) {
	// Owner 1 streaming through a set pushes owner 0's line out.
	c := newLRU(1, 2)
	c.Access(0, 0)
	c.Access(1, 1)
	c.Access(1, 2) // set full of owner 1... wait: way count 2; 0 evicted here
	if c.Access(0, 0) {
		t.Fatal("owner 0's line should have been evicted by owner 1's stream")
	}
}

func TestOccupancyAccounting(t *testing.T) {
	c := newLRU(2, 2)
	c.Access(0, 0) // set 0
	c.Access(0, 1) // set 1
	c.Access(1, 2) // set 0
	if c.Occupancy(0) != 2 || c.Occupancy(1) != 1 {
		t.Fatalf("occupancy %d %d", c.Occupancy(0), c.Occupancy(1))
	}
	if c.AvgWays(0) != 1.0 {
		t.Fatalf("avg ways %v", c.AvgWays(0))
	}
	// Fill set 0 and push owner 0's line out.
	c.Access(1, 4) // set 0: ways now hold owner1:{2,4}, owner0's 0 evicted
	if c.Occupancy(0) != 1 || c.Occupancy(1) != 2 {
		t.Fatalf("after eviction: occupancy %d %d", c.Occupancy(0), c.Occupancy(1))
	}
}

func TestOccupancyInvariantProperty(t *testing.T) {
	// Σ occupancy == number of valid lines ≤ sets × assoc, for random
	// access streams across policies.
	for _, pol := range []Policy{LRU, Random, PLRU} {
		pol := pol
		if err := quick.Check(func(seed uint64) bool {
			r := xrand.New(seed)
			c := New(Config{NumSets: 4, Assoc: 4, Policy: pol, Seed: seed})
			owners := 3
			for i := 0; i < 2000; i++ {
				c.Access(r.Intn(owners), uint64(r.Intn(64)))
			}
			total := 0
			for o := 0; o < owners; o++ {
				total += c.Occupancy(o)
			}
			if total > 4*4 {
				return false
			}
			// Recount from actual contents.
			count := 0
			for i := range c.sets {
				for _, w := range c.sets[i].ways {
					if w.valid {
						count++
					}
				}
			}
			return count == total
		}, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
	}
}

func TestNoDuplicateLinesProperty(t *testing.T) {
	// A (owner, lineID) pair never occupies two ways of a set.
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		c := New(Config{NumSets: 2, Assoc: 4, Policy: LRU, Seed: seed, Prefetch: seed%2 == 0})
		for i := 0; i < 3000; i++ {
			c.Access(r.Intn(2), uint64(r.Intn(24)))
		}
		for i := range c.sets {
			seen := map[[2]uint64]bool{}
			for _, w := range c.sets[i].ways {
				if !w.valid {
					continue
				}
				key := [2]uint64{uint64(w.owner), w.id}
				if seen[key] {
					return false
				}
				seen[key] = true
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLRURecencyConsistencyProperty(t *testing.T) {
	// The recency list always holds exactly the valid ways, each once.
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		c := newLRU(2, 8)
		for i := 0; i < 5000; i++ {
			c.Access(r.Intn(3), uint64(r.Intn(48)))
		}
		for i := range c.sets {
			s := &c.sets[i]
			valid := 0
			for _, w := range s.ways {
				if w.valid {
					valid++
				}
			}
			if len(s.recency) != valid {
				return false
			}
			seen := map[uint8]bool{}
			for _, w := range s.recency {
				if seen[w] || !s.ways[w].valid {
					return false
				}
				seen[w] = true
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchNextLine(t *testing.T) {
	c := New(Config{NumSets: 4, Assoc: 2, Policy: LRU, Prefetch: true, Seed: 1})
	c.Access(0, 0) // miss; prefetches line 1 (set 1)
	if !c.Access(0, 1) {
		t.Fatal("next line should have been prefetched")
	}
	st := c.Stats(0)
	if st.PrefetchFill == 0 || st.PrefetchHit == 0 {
		t.Fatalf("prefetch counters %+v", st)
	}
	if st.Misses != 1 {
		t.Fatalf("prefetch hit should not count as miss: %+v", st)
	}
}

func TestPrefetchHelpsStreaming(t *testing.T) {
	// Sequential streaming: with prefetch, steady-state misses halve
	// (every other line comes from the prefetcher).
	run := func(prefetch bool) float64 {
		c := New(Config{NumSets: 16, Assoc: 4, Policy: LRU, Prefetch: prefetch, Seed: 1})
		for id := uint64(0); id < 100000; id++ {
			c.Access(0, id)
		}
		return c.Stats(0).MPA()
	}
	without := run(false)
	with := run(true)
	if without < 0.99 {
		t.Fatalf("streaming without prefetch should always miss, MPA=%v", without)
	}
	if with > 0.55 {
		t.Fatalf("next-line prefetch should roughly halve misses, MPA=%v", with)
	}
}

func TestRandomPolicyStillBounded(t *testing.T) {
	c := New(Config{NumSets: 2, Assoc: 2, Policy: Random, Seed: 3})
	r := xrand.New(4)
	for i := 0; i < 1000; i++ {
		c.Access(0, uint64(r.Intn(8)))
	}
	if c.Occupancy(0) > 4 {
		t.Fatalf("occupancy %d exceeds capacity", c.Occupancy(0))
	}
}

func TestPLRUApproximatesLRU(t *testing.T) {
	// On a small working set that fits, PLRU must also converge to all
	// hits (it never evicts the just-touched line).
	c := New(Config{NumSets: 1, Assoc: 8, Policy: PLRU, Seed: 5})
	for rep := 0; rep < 3; rep++ {
		for id := uint64(0); id < 8; id++ {
			c.Access(0, id)
		}
	}
	c.ResetStats()
	for rep := 0; rep < 10; rep++ {
		for id := uint64(0); id < 8; id++ {
			c.Access(0, id)
		}
	}
	if st := c.Stats(0); st.Misses != 0 {
		t.Fatalf("PLRU evicted resident working set: %+v", st)
	}
}

func TestFlushAndFlushOwner(t *testing.T) {
	c := newLRU(2, 2)
	c.Access(0, 0)
	c.Access(1, 1)
	c.FlushOwner(0)
	if c.Occupancy(0) != 0 {
		t.Fatal("FlushOwner left lines")
	}
	if !c.Access(1, 1) {
		t.Fatal("FlushOwner removed other owner's lines")
	}
	c.Flush()
	if c.Occupancy(1) != 0 {
		t.Fatal("Flush left lines")
	}
	if c.Access(1, 1) {
		t.Fatal("hit after full flush")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := newLRU(1, 2)
	c.Access(0, 0)
	c.ResetStats()
	if st := c.Stats(0); st.Accesses != 0 || st.Misses != 0 {
		t.Fatal("stats not cleared")
	}
	if !c.Access(0, 0) {
		t.Fatal("contents should survive ResetStats")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{{NumSets: 0, Assoc: 1}, {NumSets: 1, Assoc: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestOwnerRangePanics(t *testing.T) {
	c := newLRU(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Access(MaxOwners, 0)
}

func TestSoloMPAMatchesStackDistance(t *testing.T) {
	// Ground-truth check that underpins the whole performance model: a
	// process whose accesses have reuse distance d hits in an A-way cache
	// iff d ≤ A. Generate a stream with known distances and verify.
	const assoc = 4
	c := newLRU(1, assoc)
	// Prime lines 0..5 (6 lines, distances will exceed assoc for the deep ones).
	for id := uint64(0); id < 6; id++ {
		c.Access(0, id)
	}
	c.ResetStats()
	// Access line 5's neighbourhood: line 5 has distance 1 (hit), line 2
	// has distance 4 (boundary hit), line 0 now has distance 6 (miss).
	if !c.Access(0, 5) {
		t.Fatal("distance-1 access missed")
	}
	if !c.Access(0, 2) {
		t.Fatal("distance-4 access should hit in 4-way set")
	}
	if c.Access(0, 0) {
		t.Fatal("distance-6 access should miss in 4-way set")
	}
}

func BenchmarkAccessLRU(b *testing.B) {
	c := New(Config{NumSets: 64, Assoc: 16, Policy: LRU, Seed: 1})
	r := xrand.New(2)
	ids := make([]uint64, 4096)
	for i := range ids {
		ids[i] = uint64(r.Intn(64 * 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, ids[i&4095])
	}
}

func BenchmarkAccessPLRU(b *testing.B) {
	c := New(Config{NumSets: 64, Assoc: 16, Policy: PLRU, Seed: 1})
	r := xrand.New(2)
	ids := make([]uint64, 4096)
	for i := range ids {
		ids[i] = uint64(r.Intn(64 * 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, ids[i&4095])
	}
}

func TestPLRUNeverEvictsJustTouched(t *testing.T) {
	// Tree-PLRU invariant: the way touched most recently is never the
	// next victim.
	c := New(Config{NumSets: 1, Assoc: 8, Policy: PLRU, Seed: 7})
	r := xrand.New(11)
	// Fill the set.
	for id := uint64(0); id < 8; id++ {
		c.Access(0, id)
	}
	resident := map[uint64]bool{}
	for id := uint64(0); id < 8; id++ {
		resident[id] = true
	}
	next := uint64(8)
	for i := 0; i < 5000; i++ {
		// Touch a random resident line, then insert a fresh one; the
		// fresh insertion must not evict the just-touched line.
		var touch uint64
		k := r.Intn(len(resident))
		for id := range resident {
			if k == 0 {
				touch = id
				break
			}
			k--
		}
		if !c.Access(0, touch) {
			t.Fatalf("resident line %d missed", touch)
		}
		c.Access(0, next)
		resident[next] = true
		next++
		if c.Access(0, touch) {
			// still resident — fine; re-touch counted, carry on
		} else {
			t.Fatalf("iteration %d: PLRU evicted the just-touched line", i)
		}
		// Rebuild the resident set from actual contents to stay in sync.
		for id := range resident {
			delete(resident, id)
		}
		s := &c.sets[0]
		for _, w := range s.ways {
			if w.valid {
				resident[w.id] = true
			}
		}
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || Random.String() != "Random" || PLRU.String() != "PLRU" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy should still format")
	}
}
