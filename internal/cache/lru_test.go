package cache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRUMap[int](2)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	// "a" is now MRU, so inserting "c" must evict "b".
	l.Put("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Fatal("b survived eviction; want LRU entry displaced")
	}
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("a evicted instead of b (got %d, %v)", v, ok)
	}
	if v, ok := l.Get("c"); !ok || v != 3 {
		t.Fatalf("Get(c) = %d, %v; want 3, true", v, ok)
	}
	st := l.Stats()
	if st.Len != 2 || st.Cap != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v; want Len=2 Cap=2 Evictions=1", st)
	}
	if st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("stats = %+v; want Hits=3 Misses=2", st)
	}
}

func TestLRUOverwritePromotes(t *testing.T) {
	l := NewLRUMap[int](2)
	l.Put("a", 1)
	l.Put("b", 2)
	l.Put("a", 10) // overwrite promotes a; c must evict b
	l.Put("c", 3)
	if v, ok := l.Get("a"); !ok || v != 10 {
		t.Fatalf("Get(a) = %d, %v; want 10, true", v, ok)
	}
	if _, ok := l.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if got, want := l.Keys(), []string{"a", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys() = %v; want %v", got, want)
	}
}

func TestLRUCapacityOne(t *testing.T) {
	l := NewLRUMap[string](1)
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		l.Put(k, k)
		if v, ok := l.Get(k); !ok || v != k {
			t.Fatalf("just-inserted %s missing", k)
		}
	}
	if st := l.Stats(); st.Len != 1 || st.Evictions != 9 {
		t.Fatalf("stats = %+v; want Len=1 Evictions=9", st)
	}
}

func TestLRUInvalidCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLRUMap(0) did not panic")
		}
	}()
	NewLRUMap[int](0)
}

// TestLRUDelete pins the targeted-invalidation primitive the fleet's
// score memo builds on: Delete removes exactly its key, reports presence,
// keeps the recency list and map consistent, and never counts as an
// eviction.
func TestLRUDelete(t *testing.T) {
	l := NewLRUMap[int](3)
	l.Put("a", 1)
	l.Put("b", 2)
	l.Put("c", 3)
	if !l.Delete("b") {
		t.Fatal("Delete(b) = false; want true for a resident key")
	}
	if l.Delete("b") {
		t.Fatal("second Delete(b) = true; want false once removed")
	}
	if l.Delete("nope") {
		t.Fatal("Delete of a never-inserted key reported true")
	}
	if _, ok := l.Get("b"); ok {
		t.Fatal("b still readable after Delete")
	}
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	if v, ok := l.Get("c"); !ok || v != 3 {
		t.Fatalf("Get(c) = %d, %v; want 3, true", v, ok)
	}
	if got, want := l.Keys(), []string{"c", "a"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys() = %v; want %v", got, want)
	}
	st := l.Stats()
	if st.Len != 2 || st.Evictions != 0 {
		t.Fatalf("stats = %+v; want Len=2 Evictions=0", st)
	}
	// The freed slot must be reusable without evicting survivors.
	l.Put("d", 4)
	if st := l.Stats(); st.Len != 3 || st.Evictions != 0 {
		t.Fatalf("stats after refill = %+v; want Len=3 Evictions=0", st)
	}
}

// TestLRUConcurrent hammers a small cache from many goroutines so evictions
// race with gets and puts; the race detector plus the final invariant check
// (Len never exceeds capacity, list and map agree) make this the satellite
// "LRU eviction is safe under parallel get/put" test.
func TestLRUConcurrent(t *testing.T) {
	const (
		goroutines = 8
		keys       = 32
		capacity   = 8
		iters      = 2000
	)
	l := NewLRUMap[int](capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%keys)
				if i%3 == 0 {
					l.Put(k, i)
				} else {
					l.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	st := l.Stats()
	if st.Len > capacity {
		t.Fatalf("Len %d exceeds capacity %d", st.Len, capacity)
	}
	if got := len(l.Keys()); got != st.Len {
		t.Fatalf("recency list has %d entries, map has %d", got, st.Len)
	}
}
