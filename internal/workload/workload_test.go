package workload

import (
	"math"
	"testing"

	"mpmc/internal/cache"
	"mpmc/internal/hist"
	"mpmc/internal/trace"
)

func TestSuiteValidAndNamed(t *testing.T) {
	suite := Suite()
	if len(suite) != 10 {
		t.Fatalf("suite size %d", len(suite))
	}
	seen := map[string]bool{}
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate name %s", s.Name)
		}
		seen[s.Name] = true
	}
	if len(ModelSet()) != 8 {
		t.Fatal("model set should have 8 benchmarks")
	}
	if ByName("mcf") == nil || ByName("nope") != nil {
		t.Fatal("ByName lookup broken")
	}
}

func TestSuiteSpansIntensityRange(t *testing.T) {
	// The suite must include CPU-bound and memory-bound members for the
	// contention experiments to be meaningful.
	var minMPA, maxMPA = 1.0, 0.0
	for _, s := range Suite() {
		m := s.EffectiveMPA(16)
		if m < minMPA {
			minMPA = m
		}
		if m > maxMPA {
			maxMPA = m
		}
	}
	if minMPA > 0.1 {
		t.Fatalf("no CPU-bound benchmark: min full-cache MPA %v", minMPA)
	}
	if maxMPA < 0.4 {
		t.Fatalf("no memory-bound benchmark: max full-cache MPA %v", maxMPA)
	}
}

func TestEffectiveMPAMixesStreaming(t *testing.T) {
	s := ByName("equake")
	if s.SeqFrac == 0 {
		t.Fatal("equake should stream")
	}
	// Even with an infinite cache the streaming fraction still misses.
	if got := s.EffectiveMPA(1000); got < s.SeqFrac {
		t.Fatalf("effective MPA %v below streaming fraction %v", got, s.SeqFrac)
	}
	if got, want := s.EffectiveMPA(0), 1.0; got != want {
		t.Fatalf("MPA(0) = %v", got)
	}
}

func TestTrueSPIShape(t *testing.T) {
	s := ByName("mcf")
	const lat, ov = 2e-5, 0.25
	beta := s.TrueSPI(lat, ov, 0)
	if beta != s.BaseSPI {
		t.Fatal("zero-miss SPI should be BaseSPI")
	}
	// Without overlap the relationship is exactly linear with slope
	// lat·L2RPI; with overlap it is concave (below the linear chord).
	linear := s.TrueSPI(lat, 0, 1) - beta
	if math.Abs(linear-lat*s.L2RPI) > 1e-18 {
		t.Fatalf("slope %v want %v", linear, lat*s.L2RPI)
	}
	mid := s.TrueSPI(lat, ov, 0.5)
	chord := beta + 0.5*(s.TrueSPI(lat, ov, 1)-beta)
	if mid <= chord {
		t.Fatalf("SPI not concave: mid %v chord %v", mid, chord)
	}
	// Monotone increasing in mpa over [0,1] for ov < 0.5.
	prev := beta
	for mpa := 0.1; mpa <= 1.0; mpa += 0.1 {
		v := s.TrueSPI(lat, ov, mpa)
		if v <= prev {
			t.Fatalf("SPI not increasing at mpa=%v", mpa)
		}
		prev = v
	}
}

func TestGeneratorMatchesEffectiveMPA(t *testing.T) {
	// End-to-end ground truth: each spec's generator, run solo in an
	// A-way cache, produces MPA ≈ EffectiveMPA(A).
	for _, name := range []string{"gzip", "mcf", "equake"} {
		s := ByName(name)
		const numSets, assoc = 16, 8
		gen := s.NewGenerator(numSets, 7)
		c := cache.New(cache.Config{NumSets: numSets, Assoc: assoc, Policy: cache.LRU, Seed: 1})
		for i := 0; i < 60000; i++ {
			c.Access(0, gen.Next())
		}
		c.ResetStats()
		for i := 0; i < 250000; i++ {
			c.Access(0, gen.Next())
		}
		got := c.Stats(0).MPA()
		want := s.EffectiveMPA(assoc)
		if math.Abs(got-want) > 0.015 {
			t.Fatalf("%s: measured MPA %.4f, analytic %.4f", name, got, want)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	h := hist.MustNew([]float64{1}, 0)
	bad := []*Spec{
		{Name: "", Reuse: h, FootprintCap: 1, L2RPI: 0.1, BaseSPI: 1e-6},
		{Name: "x", Reuse: nil, FootprintCap: 1, L2RPI: 0.1, BaseSPI: 1e-6},
		{Name: "x", Reuse: h, SeqFrac: 2, FootprintCap: 1, L2RPI: 0.1, BaseSPI: 1e-6},
		{Name: "x", Reuse: h, SeqFrac: 0.5, FootprintCap: 1, L2RPI: 0.1, BaseSPI: 1e-6},
		{Name: "x", Reuse: h, FootprintCap: 0, L2RPI: 0.1, BaseSPI: 1e-6},
		{Name: "x", Reuse: h, FootprintCap: 1, L2RPI: 0, BaseSPI: 1e-6},
		{Name: "x", Reuse: h, FootprintCap: 1, L2RPI: 0.1, BaseSPI: 0},
		{Name: "x", Reuse: h, FootprintCap: 1, L2RPI: 0.1, BaseSPI: 1e-6, BRPI: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
}

func TestStressmarkPinsWays(t *testing.T) {
	// The stressmark with S ways, run solo in an S-way cache, always hits
	// after warm-up; its occupancy is exactly S ways per set.
	const numSets, ways = 8, 4
	s := Stressmark(ways)
	gen := s.NewGenerator(numSets, 3)
	c := cache.New(cache.Config{NumSets: numSets, Assoc: ways, Policy: cache.LRU, Seed: 2})
	for i := 0; i < 20000; i++ {
		c.Access(0, gen.Next())
	}
	c.ResetStats()
	for i := 0; i < 50000; i++ {
		c.Access(0, gen.Next())
	}
	if mpa := c.Stats(0).MPA(); mpa != 0 {
		t.Fatalf("steady-state stressmark MPA %v", mpa)
	}
	if got := c.AvgWays(0); got != float64(ways) {
		t.Fatalf("stressmark occupies %v ways, want %v", got, ways)
	}
}

func TestStressmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Stressmark(0)
}

func TestStressmarkIsFasterThanBenchmarks(t *testing.T) {
	// The profiling assumption S_B = A − S_stress needs the stressmark to
	// dominate the access race: its hit-rate APS must exceed every
	// benchmark's maximum APS by a wide margin.
	st := Stressmark(4)
	stressAPS := st.L2RPI / st.BaseSPI // all-hit access rate
	for _, s := range Suite() {
		benchAPS := s.L2RPI / s.BaseSPI
		if stressAPS < 10*benchAPS {
			t.Fatalf("stressmark APS %.3g not ≫ %s APS %.3g", stressAPS, s.Name, benchAPS)
		}
	}
}

func TestMicrobenchSchedule(t *testing.T) {
	maxRates := [5]float64{6e5, 5e4, 4e4, 2.5e5, 4e5}
	sched := Microbench(maxRates)
	if len(sched) != 1+5*8 {
		t.Fatalf("schedule length %d", len(sched))
	}
	// First phase idle.
	for _, v := range sched[0] {
		if v != 0 {
			t.Fatal("idle phase not idle")
		}
	}
	// Physicality: L2 misses never exceed L2 references.
	for i, r := range sched {
		if r[2] > r[1] {
			t.Fatalf("step %d: L2MPS %v > L2RPS %v", i, r[2], r[1])
		}
	}
	// Each component reaches its peak somewhere.
	for comp := 0; comp < 5; comp++ {
		peak := 0.0
		for _, r := range sched {
			if r[comp] > peak {
				peak = r[comp]
			}
		}
		if comp == 1 {
			// L2RPS may be raised above its nominal peak to stay physical.
			if peak < maxRates[comp] {
				t.Fatalf("component %d peak %v below %v", comp, peak, maxRates[comp])
			}
			continue
		}
		if math.Abs(peak-maxRates[comp]) > 1e-9 {
			t.Fatalf("component %d peak %v want %v", comp, peak, maxRates[comp])
		}
	}
}

func TestGeneratorKindMatchesSpec(t *testing.T) {
	if _, ok := Stressmark(3).NewGenerator(4, 1).(*trace.CyclicGen); !ok {
		t.Fatal("stressmark should use the cyclic generator")
	}
	if _, ok := ByName("gzip").NewGenerator(4, 1).(*trace.ReuseGen); !ok {
		t.Fatal("gzip should use the reuse generator")
	}
	if _, ok := ByName("equake").NewGenerator(4, 1).(*trace.ReuseGen); !ok {
		t.Fatal("equake should use the reuse generator with streaming")
	}
}

func TestPhasedSpecGenerator(t *testing.T) {
	small := hist.MustNew([]float64{0.7, 0.3}, 0)
	broad := hist.MustNew([]float64{0.1, 0.1, 0.1, 0.1}, 0.6)
	mix := hist.MustNew([]float64{0.4, 0.2, 0.05, 0.05}, 0.3)
	s := &Spec{
		Name: "phased", Reuse: mix, FootprintCap: 8,
		L2RPI: 0.02, L1RPI: 0.4, BRPI: 0.1, FPPI: 0.0, BaseSPI: 1e-6,
		Phases: []PhaseSpec{{Reuse: small, Accesses: 100}, {Reuse: broad, Accesses: 100}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	g := s.NewGenerator(4, 3)
	if _, ok := g.(*trace.PhasedGen); !ok {
		t.Fatalf("phased spec built %T", g)
	}
	// The generator must actually alternate behaviour: measure MPA over
	// a window per phase in a 2-way cache; the broad phase misses more.
	c := cache.New(cache.Config{NumSets: 4, Assoc: 2, Policy: cache.LRU, Seed: 1})
	for i := 0; i < 2000; i++ { // warm
		c.Access(0, g.Next())
	}
	var mpas []float64
	for p := 0; p < 8; p++ {
		c.ResetStats()
		for i := 0; i < 100; i++ {
			c.Access(0, g.Next())
		}
		mpas = append(mpas, c.Stats(0).MPA())
	}
	// Alternating windows must differ substantially.
	var lo, hi float64 = 1, 0
	for _, m := range mpas {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi-lo < 0.2 {
		t.Fatalf("phases not visible: window MPAs %v", mpas)
	}
}
