// Property tests for thread-group scenario generation: the group draws
// ride the fleet scenario's trace, so the properties are checked through
// the external test package (workload_test imports fleet; the reverse
// import would cycle).
package workload_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"mpmc/internal/fleet"
	"mpmc/internal/workload"
)

// randScenario draws a small random sharing scenario. Everything is
// derived from r, so a failing seed reproduces exactly.
func randScenario(r *rand.Rand) *fleet.Scenario {
	suite := workload.Suite()
	pool := make([]string, 0, 3)
	for _, i := range r.Perm(len(suite))[:3] {
		pool = append(pool, suite[i].Name)
	}
	fracs := make([]float64, 1+r.Intn(3))
	for i := range fracs {
		fracs[i] = float64(r.Intn(11)) / 10
	}
	return &fleet.Scenario{
		Seed: r.Uint64(),
		Machines: []fleet.ScenarioMachine{
			{Preset: "server", MaxPerCore: 2},
			{Preset: "workstation", MaxPerCore: 2},
		},
		Policies:         []string{"colocate-sharers", "spread-sharers"},
		Processes:        4 + r.Intn(8),
		Workloads:        pool,
		MeanInterarrival: 0.5 + r.Float64(),
		MeanLifetime:     2 + 4*r.Float64(),
		ThreadGroups: &fleet.ThreadGroupConfig{
			MaxThreads:  1 + r.Intn(4),
			SharedFracs: fracs,
			WriteFrac:   r.Float64(),
		},
	}
}

// TestScenarioGroupDrawProperties: for any valid sharing scenario, every
// drawn group size is in [1, MaxThreads], every sharing fraction comes
// from the configured pool (so it is in [0,1]), and the trace is a pure
// function of the scenario — repeated calls agree exactly.
func TestScenarioGroupDrawProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		sc := randScenario(r)
		if err := sc.Validate(); err != nil {
			t.Fatalf("trial %d: generated scenario invalid: %v", trial, err)
		}
		inPool := map[float64]bool{}
		for _, f := range sc.ThreadGroups.SharedFracs {
			inPool[f] = true
		}
		trace := sc.Trace()
		if len(trace) != sc.Processes {
			t.Fatalf("trial %d: trace length %d != processes %d", trial, len(trace), sc.Processes)
		}
		for i, p := range trace {
			if p.Threads < 1 || p.Threads > sc.ThreadGroups.MaxThreads {
				t.Fatalf("trial %d proc %d: %d threads outside [1,%d]",
					trial, i, p.Threads, sc.ThreadGroups.MaxThreads)
			}
			if !inPool[p.SharedFrac] || p.SharedFrac < 0 || p.SharedFrac > 1 {
				t.Fatalf("trial %d proc %d: shared_frac %v not from the configured pool %v",
					trial, i, p.SharedFrac, sc.ThreadGroups.SharedFracs)
			}
			if workload.ByName(p.Spec.Name) == nil {
				t.Fatalf("trial %d proc %d: spec %q not in the suite", trial, i, p.Spec.Name)
			}
		}
		again := sc.Trace()
		for i := range trace {
			if trace[i].Threads != again[i].Threads || trace[i].SharedFrac != again[i].SharedFrac ||
				trace[i].Spec.Name != again[i].Spec.Name {
				t.Fatalf("trial %d: Trace() not deterministic at proc %d", trial, i)
			}
		}
	}
}

// TestScenarioSimWorkerInvariance: a random sharing scenario must replay
// to a byte-identical report at every worker count — the determinism
// contract extended to group arrivals.
func TestScenarioSimWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps in -short")
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3; trial++ {
		sc := randScenario(r)
		if err := sc.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var ref []byte
		for _, w := range []int{1, 3} {
			rep, err := fleet.NewSim(sc, w).Run(context.Background())
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			got, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = got
			} else if !bytes.Equal(got, ref) {
				t.Fatalf("trial %d: workers=3 report differs from workers=1", trial)
			}
		}
	}
}

// TestSpecMembersValidation pins the Members field's contract in the
// workload package itself: non-negative, with 0 and 1 both meaning an
// ordinary single-thread process.
func TestSpecMembersValidation(t *testing.T) {
	base := workload.ByName("gzip")
	if base == nil {
		t.Fatal("gzip missing from suite")
	}
	for _, m := range []int{0, 1, 4} {
		s := *base
		s.Members = m
		if err := s.Validate(); err != nil {
			t.Errorf("Members=%d rejected: %v", m, err)
		}
	}
	s := *base
	s.Members = -1
	if err := s.Validate(); err == nil {
		t.Error("negative Members accepted")
	}
}
