// Package workload defines the synthetic processes that stand in for the
// paper's SPEC CPU2000 benchmarks, the configurable cache stressmark of
// Section 3.4, and the 6-phase power-model micro-benchmark of Section 4.1.
//
// Each benchmark is a Spec: a per-set reuse-distance distribution (the
// ground truth the model should recover by profiling), an optional
// sequential streaming component, an L2 access intensity, an instruction
// mix (L1 references, branches, FP operations per instruction), and a base
// SPI. The ten specs are tuned to span the same qualitative range as the
// paper's suite: CPU-bound (gzip) through memory-bound (mcf, art), with
// equake as the streaming, prefetch-friendly outlier.
//
// Time scale: the simulated machines run at ~1 MIPS (BaseSPI ≈ 1 µs) so
// that tens of simulated seconds stay tractable; all model-relevant ratios
// (miss penalty vs instruction time, refill vs timeslice) are preserved.
// See DESIGN.md §2.
package workload

import (
	"fmt"

	"mpmc/internal/hist"
	"mpmc/internal/trace"
)

// Spec describes one synthetic process.
type Spec struct {
	Name string

	// Reuse is the per-set reuse-distance distribution of the structured
	// (non-streaming) part of the access stream.
	Reuse *hist.Histogram
	// SeqFrac is the fraction of L2 accesses that stream sequentially
	// through SeqFootprint lines (reuse distance effectively infinite).
	SeqFrac float64
	// SeqFootprint is the wrap-around footprint of the streaming part.
	SeqFootprint uint64
	// FootprintCap bounds the tracked per-set stack depth of the reuse
	// generator; it must be ≥ Reuse.MaxDistance().
	FootprintCap int

	// L2RPI is the number of L2 references per instruction: the paper's
	// API (accesses per instruction) for the last-level cache.
	L2RPI float64
	// L1RPI, BRPI, FPPI are instruction-related event rates: L1 data
	// references, branches, and FP operations per instruction. They are
	// process properties unaffected by contention (Section 5).
	L1RPI float64
	BRPI  float64
	FPPI  float64

	// BaseSPI is seconds per instruction with zero L2 misses — the
	// paper's β in Eq. 3 (the α slope is MemLatency·L2RPI, supplied by
	// the machine).
	BaseSPI float64

	// Cyclic selects the strict per-set rotation generator instead of the
	// stochastic reuse generator. Only the stressmark uses it: rotation
	// claims contested ways as fast as possible.
	Cyclic bool

	// Phases, when non-empty, makes the process alternate between
	// distinct reuse behaviours — a deliberate violation of the paper's
	// single-phase assumption, used by the assumption-violation study.
	// Reuse must then hold the access-weighted mixture distribution (the
	// best single-phase approximation a profiler would recover).
	Phases []PhaseSpec

	// Members is the number of member threads this spec stands for when it
	// is a thread-group bundle (internal/threads): the bundle's Reuse and
	// event rates already describe the combined stream of Members
	// co-located threads, and per-group equilibrium terms are weighted by
	// it. Zero or one means an ordinary single-thread process.
	Members int
}

// PhaseSpec is one phase of a multi-phase process.
type PhaseSpec struct {
	Reuse    *hist.Histogram
	Accesses uint64 // accesses before switching to the next phase
}

// Validate reports whether the spec is internally consistent.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: unnamed spec")
	case s.Reuse == nil:
		return fmt.Errorf("workload %s: nil reuse histogram", s.Name)
	case s.SeqFrac < 0 || s.SeqFrac > 1:
		return fmt.Errorf("workload %s: SeqFrac %v outside [0,1]", s.Name, s.SeqFrac)
	case s.SeqFrac > 0 && s.SeqFootprint == 0:
		return fmt.Errorf("workload %s: streaming component without footprint", s.Name)
	case s.FootprintCap < s.Reuse.MaxDistance():
		return fmt.Errorf("workload %s: footprint cap %d below max distance %d",
			s.Name, s.FootprintCap, s.Reuse.MaxDistance())
	case s.L2RPI <= 0 || s.L2RPI > 1:
		return fmt.Errorf("workload %s: L2RPI %v outside (0,1]", s.Name, s.L2RPI)
	case s.L1RPI < 0 || s.BRPI < 0 || s.FPPI < 0:
		return fmt.Errorf("workload %s: negative instruction-mix rate", s.Name)
	case s.BaseSPI <= 0:
		return fmt.Errorf("workload %s: non-positive BaseSPI", s.Name)
	case s.Members < 0:
		return fmt.Errorf("workload %s: negative Members", s.Name)
	}
	return nil
}

// NewGenerator builds the process's L2 reference generator over a cache
// with numSets sets. Seed isolates the process's random stream.
func (s *Spec) NewGenerator(numSets int, seed uint64) trace.Generator {
	if s.Cyclic {
		return trace.NewCyclicGen(numSets, s.Reuse.MaxDistance(), seed)
	}
	if len(s.Phases) > 0 {
		phases := make([]trace.Phase, len(s.Phases))
		for i, p := range s.Phases {
			phases[i] = trace.Phase{
				Gen:      trace.NewReuseGen(p.Reuse, numSets, s.FootprintCap, seed+uint64(i)*7),
				Accesses: p.Accesses,
			}
		}
		return trace.NewPhasedGen(phases)
	}
	return trace.NewReuseGenOpts(s.Reuse, numSets, s.FootprintCap, seed, trace.ReuseOpts{
		SeqFrac:      s.SeqFrac,
		SeqFootprint: s.SeqFootprint,
	})
}

// EffectiveMPA returns the analytic ground-truth miss probability at an
// effective cache size of s ways, accounting for the streaming component
// (which always misses: its reuse distance is the streaming footprint).
func (sp *Spec) EffectiveMPA(s float64) float64 {
	return (1-sp.SeqFrac)*sp.Reuse.MPA(s) + sp.SeqFrac
}

// TrueSPI returns the ground-truth expected seconds per instruction at
// steady miss rate mpa on a machine with the given memory latency and
// miss-overlap factor. Consecutive misses overlap by mlpOverlap (the
// simulator charges a miss only (1−mlpOverlap)·memLatency when the
// previous access also missed); with independent accesses the previous
// access misses with probability mpa, so
//
//	SPI(mpa) = BaseSPI + memLatency·L2RPI·mpa·(1 − mlpOverlap·mpa).
//
// The mild concavity is deliberate: it gives the linear Eq. 3 the same
// kind of model-form error it has on hardware.
func (sp *Spec) TrueSPI(memLatency, mlpOverlap, mpa float64) float64 {
	return sp.BaseSPI + memLatency*sp.L2RPI*mpa*(1-mlpOverlap*mpa)
}

// geom returns n geometrically decaying weights starting at first.
func geom(first, ratio float64, n int) []float64 {
	w := make([]float64, n)
	v := first
	for i := range w {
		w[i] = v
		v *= ratio
	}
	return w
}

// flat returns n equal weights of value v.
func flat(v float64, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = v
	}
	return w
}

// concat concatenates weight slices.
func concat(parts ...[]float64) []float64 {
	var out []float64
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Suite returns the ten SPEC-CPU2000-like specs. The first eight are the
// paper's model-construction set (gzip, vpr, mcf, bzip2, twolf, art,
// equake, ammp); swim and applu extend it to the ten-benchmark set used
// for the second-machine validation and the prefetching study.
func Suite() []*Spec {
	specs := []*Spec{
		{
			// Tight integer loops, tiny working set: CPU bound.
			Name:         "gzip",
			Reuse:        hist.MustNew(geom(0.42, 0.55, 6), 0.03),
			FootprintCap: 48,
			L2RPI:        0.004, L1RPI: 0.42, BRPI: 0.22, FPPI: 0.002,
			BaseSPI: 1.0e-6,
		},
		{
			// Place-and-route: medium working set, gradual MPA curve.
			Name:         "vpr",
			Reuse:        hist.MustNew(geom(0.17, 0.87, 12), 0.06),
			FootprintCap: 48,
			L2RPI:        0.016, L1RPI: 0.46, BRPI: 0.18, FPPI: 0.03,
			BaseSPI: 1.1e-6,
		},
		{
			// Sparse network simplex: huge working set, memory bound.
			Name:         "mcf",
			Reuse:        hist.MustNew(concat(flat(0.02, 8), flat(0.03, 12), flat(0.02, 4)), 0.40),
			FootprintCap: 48,
			L2RPI:        0.060, L1RPI: 0.38, BRPI: 0.24, FPPI: 0.001,
			BaseSPI: 0.9e-6,
		},
		{
			// Block-sorting compression: bimodal reuse.
			Name: "bzip2",
			Reuse: hist.MustNew(concat(
				[]float64{0.30, 0.20, 0.05, 0.03, 0.02, 0.02},
				[]float64{0.03, 0.05, 0.08, 0.07, 0.05, 0.03}), 0.07),
			FootprintCap: 48,
			L2RPI:        0.012, L1RPI: 0.44, BRPI: 0.16, FPPI: 0.002,
			BaseSPI: 1.0e-6,
		},
		{
			// Standard-cell placement: cache-size sensitive.
			Name:         "twolf",
			Reuse:        hist.MustNew(geom(0.15, 0.90, 12), 0.05),
			FootprintCap: 48,
			L2RPI:        0.022, L1RPI: 0.48, BRPI: 0.20, FPPI: 0.02,
			BaseSPI: 1.2e-6,
		},
		{
			// Neural-network image recognition: large flat footprint.
			Name:         "art",
			Reuse:        hist.MustNew(flat(1.0/30, 24), 0.20),
			FootprintCap: 48,
			L2RPI:        0.050, L1RPI: 0.52, BRPI: 0.10, FPPI: 0.34,
			BaseSPI: 1.0e-6,
		},
		{
			// Seismic wave propagation: dominated by streaming sweeps —
			// the prefetch-friendly workload of the Section 3.1 study.
			Name:         "equake",
			Reuse:        hist.MustNew([]float64{0.50, 0.28, 0.12, 0.05}, 0.05),
			SeqFrac:      0.70,
			SeqFootprint: 1 << 22,
			FootprintCap: 48,
			L2RPI:        0.035, L1RPI: 0.50, BRPI: 0.08, FPPI: 0.30,
			BaseSPI: 1.0e-6,
		},
		{
			// Molecular dynamics: moderate reuse, FP heavy.
			Name:         "ammp",
			Reuse:        hist.MustNew(geom(0.13, 0.88, 16), 0.10),
			FootprintCap: 48,
			L2RPI:        0.028, L1RPI: 0.47, BRPI: 0.09, FPPI: 0.28,
			BaseSPI: 1.1e-6,
		},
		{
			// Shallow water modeling: part streaming, part blocked reuse.
			Name:         "swim",
			Reuse:        hist.MustNew(flat(0.11, 8), 0.12),
			SeqFrac:      0.35,
			SeqFootprint: 1 << 21,
			FootprintCap: 48,
			L2RPI:        0.030, L1RPI: 0.49, BRPI: 0.06, FPPI: 0.38,
			BaseSPI: 1.0e-6,
		},
		{
			// Parabolic PDE solver: moderate reuse, FP heavy.
			Name:         "applu",
			Reuse:        hist.MustNew(geom(0.14, 0.85, 12), 0.08),
			FootprintCap: 48,
			L2RPI:        0.024, L1RPI: 0.45, BRPI: 0.07, FPPI: 0.40,
			BaseSPI: 1.0e-6,
		},
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			panic(err)
		}
	}
	return specs
}

// ModelSet returns the first eight benchmarks — the set used for model
// construction and for Table 1 / Tables 2–4.
func ModelSet() []*Spec { return Suite()[:8] }

// ByName returns the named spec from the suite, or nil.
func ByName(name string) *Spec {
	for _, s := range Suite() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Stressmark returns the Section 3.4 profiling stressmark configured to
// occupy ways ways of each set. Its cyclic pattern gives every access a
// reuse distance of exactly ways, and its access rate is made much higher
// than any benchmark's so it wins the contention race and pins its ways.
func Stressmark(ways int) *Spec {
	if ways <= 0 {
		panic("workload: stressmark needs at least one way")
	}
	// A degenerate histogram: all mass at distance = ways.
	w := make([]float64, ways)
	w[ways-1] = 1
	s := &Spec{
		Name:         fmt.Sprintf("stressmark-%d", ways),
		Reuse:        hist.MustNew(w, 0),
		FootprintCap: ways,
		// One L2 access per ~1.1 instructions: when the stressmark holds
		// its ways it accesses the cache an order of magnitude faster
		// than any benchmark, so it wins the contention race; when it is
		// missing, the memory latency throttles it to benchmark speed.
		L2RPI: 0.9, L1RPI: 1.0, BRPI: 0.05, FPPI: 0,
		BaseSPI: 1.2e-6,
		Cyclic:  true,
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// Microbench returns the event-rate schedule of the Section 4.1 power
// micro-benchmark: an idle phase followed by five phases, each explicitly
// exercising one monitored component at eight decreasing access
// frequencies (the paper steps the frequency down every 10 s within an
// 80 s phase). maxRates gives the peak rate for each component in Eq. 9
// order; the small baseline keeps the other components realistic (a core
// cannot, e.g., retire branches without touching the L1).
func Microbench(maxRates [5]float64) [][5]float64 {
	const steps = 8
	var out [][5]float64
	out = append(out, [5]float64{}) // idle phase
	for comp := 0; comp < 5; comp++ {
		for step := 0; step < steps; step++ {
			frac := float64(steps-step) / steps
			var r [5]float64
			for j := range r {
				r[j] = 0.02 * maxRates[j] // background activity
			}
			r[comp] = frac * maxRates[comp]
			// L2 misses cannot exceed L2 references; keep the stream
			// physical when stressing the miss counter.
			if r[2] > r[1] {
				r[1] = r[2] * 1.1
			}
			out = append(out, r)
		}
	}
	return out
}
