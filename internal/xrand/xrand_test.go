package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collide %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream should not replay the parent stream.
	p := New(7)
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child stream mirrors parent at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.08*want {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for n := 0; n < 50; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(19)
	s := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle altered multiset: %v", s)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	c := NewCategorical(weights)
	r := New(23)
	const draws = 400000
	counts := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		counts[c.Sample(r)]++
	}
	total := 10.0
	for i, w := range weights {
		got := counts[i] / draws
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalSingle(t *testing.T) {
	c := NewCategorical([]float64{5})
	r := New(29)
	for i := 0; i < 100; i++ {
		if c.Sample(r) != 0 {
			t.Fatal("single-category sampler returned nonzero index")
		}
	}
}

func TestCategoricalZeroWeightNeverSampled(t *testing.T) {
	c := NewCategorical([]float64{0, 1, 0, 2})
	r := New(31)
	for i := 0; i < 50000; i++ {
		v := c.Sample(r)
		if v == 0 || v == 2 {
			t.Fatalf("sampled zero-weight category %d", v)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{{}, {0, 0}, {-1, 2}, {math.NaN()}, {math.Inf(1)}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for weights %v", w)
				}
			}()
			NewCategorical(w)
		}()
	}
}

func TestCategoricalPropertyValidIndex(t *testing.T) {
	r := New(37)
	if err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		positive := false
		for i, v := range raw {
			weights[i] = float64(v)
			if v > 0 {
				positive = true
			}
		}
		if !positive {
			return true
		}
		c := NewCategorical(weights)
		for i := 0; i < 32; i++ {
			idx := c.Sample(r)
			if idx < 0 || idx >= len(weights) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkCategoricalSample(b *testing.B) {
	w := make([]float64, 64)
	for i := range w {
		w[i] = float64(i + 1)
	}
	c := NewCategorical(w)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Sample(r)
	}
}
