// Package xrand provides a small, deterministic, seedable random number
// generator used throughout the simulator and the experiment harness.
//
// Reproducibility is a hard requirement for the experiment suite: every
// table and figure is regenerated from a fixed seed, so validation errors
// are stable across runs and machines. The standard library's math/rand
// global state is shared and order-dependent; instead each simulated
// process, oracle, and experiment owns its own *Rand.
//
// The core generator is SplitMix64 (Steele, Lea, Flood; JPDC 2014): a
// 64-bit counter-based generator with excellent statistical quality for
// simulation workloads, a one-word state, and trivially splittable streams.
package xrand

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random number generator. The zero value is
// a valid generator seeded with 0; prefer New to make streams distinct.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators created with
// different seeds produce statistically independent streams.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives a new, independent generator from r. The derived stream is
// decorrelated from the parent by advancing the parent and re-dispersing
// its output, so handing one generator per simulated process out of a
// single experiment seed is safe.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using
// the Box–Muller transform. Two uniforms are consumed per call; the spare
// deviate is not cached so the stream is stateless aside from the counter.
func (r *Rand) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Categorical samples from a discrete distribution in O(1) per draw using
// Walker's alias method. Construction is O(n).
type Categorical struct {
	prob  []float64 // acceptance probability per column
	alias []int     // alias index per column
}

// NewCategorical builds an alias table for the given non-negative weights.
// Weights need not be normalized. It panics if no weight is positive or if
// any weight is negative or non-finite.
func NewCategorical(weights []float64) *Categorical {
	n := len(weights)
	if n == 0 {
		panic("xrand: empty categorical distribution")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic("xrand: invalid categorical weight")
		}
		total += w
	}
	if total <= 0 {
		panic("xrand: categorical distribution has zero mass")
	}
	c := &Categorical{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scaled probabilities; columns with scaled mass < 1 are "small".
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		c.prob[s] = scaled[s]
		c.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers: both queues drain to probability 1.
	for _, i := range large {
		c.prob[i] = 1
		c.alias[i] = i
	}
	for _, i := range small {
		c.prob[i] = 1
		c.alias[i] = i
	}
	return c
}

// Len returns the number of categories.
func (c *Categorical) Len() int { return len(c.prob) }

// Sample draws one category index using r.
func (c *Categorical) Sample(r *Rand) int {
	i := r.Intn(len(c.prob))
	if r.Float64() < c.prob[i] {
		return i
	}
	return c.alias[i]
}
