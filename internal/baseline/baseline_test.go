package baseline

import (
	"math"
	"testing"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
)

func features(t *testing.T, names ...string) []*core.FeatureVector {
	t.Helper()
	m := machine.TwoCoreWorkstation()
	var out []*core.FeatureVector
	for _, n := range names {
		out = append(out, core.TruthFeature(workload.ByName(n), m))
	}
	return out
}

func TestFOASymmetric(t *testing.T) {
	fs := features(t, "mcf", "mcf")
	preds, err := FOA(fs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(preds[0].S-4) > 1e-9 || math.Abs(preds[1].S-4) > 1e-9 {
		t.Fatalf("symmetric FOA split %v/%v", preds[0].S, preds[1].S)
	}
}

func TestFOACapacity(t *testing.T) {
	fs := features(t, "mcf", "gzip")
	preds, err := FOA(fs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(preds[0].S+preds[1].S-8) > 1e-9 {
		t.Fatal("FOA does not fill the cache")
	}
	if preds[0].S <= preds[1].S {
		t.Fatal("FOA should favour the frequent accessor")
	}
}

func TestSDCCapacityAndOrdering(t *testing.T) {
	fs := features(t, "mcf", "twolf")
	preds, err := SDC(fs, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum := preds[0].S + preds[1].S
	// SDC allocates whole ways (plus the 0.5 starvation floor).
	if sum < 7.5 || sum > 9 {
		t.Fatalf("SDC total allocation %v", sum)
	}
	for _, p := range preds {
		if p.S <= 0 {
			t.Fatal("non-positive allocation")
		}
	}
}

func TestBaselineErrors(t *testing.T) {
	if _, err := FOA(nil, 4); err == nil {
		t.Fatal("FOA accepted empty group")
	}
	if _, err := SDC(nil, 4); err == nil {
		t.Fatal("SDC accepted empty group")
	}
	fs := features(t, "mcf")
	if _, err := FOA(fs, 0); err == nil {
		t.Fatal("FOA accepted zero assoc")
	}
	if _, err := SDC(fs, 0); err == nil {
		t.Fatal("SDC accepted zero assoc")
	}
}

func TestOurModelBeatsBaselinesOnAverage(t *testing.T) {
	// The reason the paper improves on Chandra et al.: feeding solo
	// frequencies into FOA/SDC misses the APS feedback the equilibrium
	// model captures. Averaged over heterogeneous pairs, the paper's
	// model should have lower MPA error.
	m := machine.TwoCoreWorkstation()
	pairs := [][2]string{{"mcf", "gzip"}, {"mcf", "twolf"}, {"art", "vpr"}, {"equake", "bzip2"}}
	var errOurs, errFOA, errSDC float64
	for _, pair := range pairs {
		fs := features(t, pair[0], pair[1])
		ours, err := core.PredictGroup(fs, m.Assoc, core.SolverAuto)
		if err != nil {
			t.Fatal(err)
		}
		foa, err := FOA(fs, m.Assoc)
		if err != nil {
			t.Fatal(err)
		}
		sdc, err := SDC(fs, m.Assoc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(m, sim.Single(workload.ByName(pair[0]), workload.ByName(pair[1])),
			sim.Options{Warmup: 3, Duration: 6, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		for i := range fs {
			meas := res.Procs[i].MPA()
			errOurs += math.Abs(ours[i].MPA - meas)
			errFOA += math.Abs(foa[i].MPA - meas)
			errSDC += math.Abs(sdc[i].MPA - meas)
		}
	}
	if errOurs >= errFOA {
		t.Errorf("equilibrium model (%.3f) not better than FOA (%.3f)", errOurs, errFOA)
	}
	if errOurs >= errSDC {
		t.Errorf("equilibrium model (%.3f) not better than SDC (%.3f)", errOurs, errSDC)
	}
}

func TestProbSymmetric(t *testing.T) {
	fs := features(t, "twolf", "twolf")
	preds, err := Prob(fs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(preds[0].MPA-preds[1].MPA) > 1e-9 {
		t.Fatalf("symmetric Prob MPAs differ: %v vs %v", preds[0].MPA, preds[1].MPA)
	}
	// Contention must raise the miss rate above the solo full-cache level.
	if preds[0].MPA <= fs[0].MPA(8) {
		t.Fatalf("Prob MPA %v not above solo %v", preds[0].MPA, fs[0].MPA(8))
	}
}

func TestProbBounds(t *testing.T) {
	fs := features(t, "mcf", "gzip")
	preds, err := Prob(fs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		if p.MPA < 0 || p.MPA > 1 {
			t.Fatalf("MPA %v out of bounds", p.MPA)
		}
		if p.S <= 0 || p.S > 8 {
			t.Fatalf("S %v out of bounds", p.S)
		}
	}
}

func TestProbErrors(t *testing.T) {
	if _, err := Prob(nil, 8); err == nil {
		t.Fatal("accepted empty group")
	}
	fs := features(t, "mcf")
	if _, err := Prob(fs, 0); err == nil {
		t.Fatal("accepted zero assoc")
	}
}

func TestSDCExhaustedProfiles(t *testing.T) {
	// Profiles with max distance 2 exhaust their stack counters before 8
	// ways are assigned; the remainder goes to the most frequent accessor.
	short := []float64{1, 0.5, 0.2}
	fa, err := core.NewFeatureVector("a", short, 1e-6, 1e-6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := core.NewFeatureVector("b", short, 1e-6, 1e-6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := SDC([]*core.FeatureVector{fa, fb}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// fa is 5× more frequent: it receives the leftover ways.
	if preds[0].S <= preds[1].S {
		t.Fatalf("leftover ways should favour the frequent accessor: %v vs %v",
			preds[0].S, preds[1].S)
	}
}
