package baseline

import (
	"fmt"
	"math"

	"mpmc/internal/core"
)

// Prob implements the third Chandra et al. model, the inductive
// probability model: for each access of process i at reuse distance d,
// estimate how many distinct lines every co-runner inserts into the set
// during the reuse interval, and declare a miss when the effective stack
// position d + Σ_j D_j exceeds the associativity.
//
// The co-runner's distinct-line count over an interval of n_i accesses by
// process i is its own cache-occupancy growth curve evaluated at the
// access-rate ratio: D_j = G_j(d · APS_j / APS_i) — the same Eq. 4/5
// machinery the paper's model uses, but evaluated at *solo* access rates
// with no equilibrium feedback, which is exactly the gap the paper's
// contribution closes.
func Prob(features []*core.FeatureVector, assoc int) ([]Prediction, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("baseline: empty group")
	}
	if assoc <= 0 {
		return nil, fmt.Errorf("baseline: non-positive associativity")
	}
	freqs := make([]float64, len(features))
	for i, f := range features {
		if err := f.Validate(); err != nil {
			return nil, err
		}
		freqs[i] = soloFrequency(f)
	}
	a := float64(assoc)
	out := make([]Prediction, len(features))
	for i, f := range features {
		// Walk the reuse-distance histogram; an access at distance d
		// hits iff its inflated stack position stays within the ways.
		missMass := f.Hist.Overflow()
		deepest := 0.0
		for d := 1; d <= f.Hist.MaxDistance(); d++ {
			p := f.Hist.P(d)
			if p == 0 {
				continue
			}
			pos := float64(d)
			for j, g := range features {
				if j == i {
					continue
				}
				interleaved := g.G(float64(d) * freqs[j] / freqs[i])
				pos += math.Min(interleaved, a)
			}
			if pos > a {
				missMass += p
			} else if float64(d) > deepest {
				deepest = float64(d)
			}
		}
		if missMass > 1 {
			missMass = 1
		}
		// Effective size: the deepest own stack position that still hits
		// (at least one way is always retained).
		s := math.Max(deepest, 0.5)
		out[i] = Prediction{Feature: f, S: s, MPA: missMass, SPI: f.SPI(missMass)}
	}
	return out, nil
}
