// Package baseline implements the inter-thread cache-contention models of
// Chandra, Guo, Kim and Solihin (HPCA 2005), the closest related work the
// paper compares itself against conceptually: FOA (frequency of access)
// and SDC (stack distance competition).
//
// Both consume per-process stack-distance profiles and access frequencies.
// As the paper points out, Chandra's models need each process's *steady
// state* access frequency under co-execution — unknowable without running
// the combination — so the practical instantiation feeds them solo
// frequencies. That approximation is exactly what the baseline-comparison
// experiment quantifies.
package baseline

import (
	"fmt"

	"mpmc/internal/core"
)

// Prediction mirrors core.Prediction for the baseline models.
type Prediction struct {
	Feature *core.FeatureVector
	S       float64
	MPA     float64
	SPI     float64
}

// soloFrequency returns the process's solo accesses-per-second: APS at
// its full-cache miss rate (the only frequency observable without running
// the combination).
func soloFrequency(f *core.FeatureVector) float64 {
	return f.APS(f.MPA(float64(f.Assoc)))
}

func predAt(f *core.FeatureVector, s float64) Prediction {
	mpa := f.MPA(s)
	return Prediction{Feature: f, S: s, MPA: mpa, SPI: f.SPI(mpa)}
}

// FOA implements the frequency-of-access model: each process receives
// cache space proportional to its access frequency.
func FOA(features []*core.FeatureVector, assoc int) ([]Prediction, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("baseline: empty group")
	}
	if assoc <= 0 {
		return nil, fmt.Errorf("baseline: non-positive associativity")
	}
	total := 0.0
	freqs := make([]float64, len(features))
	for i, f := range features {
		if err := f.Validate(); err != nil {
			return nil, err
		}
		freqs[i] = soloFrequency(f)
		total += freqs[i]
	}
	out := make([]Prediction, len(features))
	for i, f := range features {
		out[i] = predAt(f, float64(assoc)*freqs[i]/total)
	}
	return out, nil
}

// SDC implements stack distance competition: the per-process
// stack-distance counters (scaled by access frequency) are merged
// greedily, and each process's effective space is the number of its
// counters among the first A merged positions.
func SDC(features []*core.FeatureVector, assoc int) ([]Prediction, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("baseline: empty group")
	}
	if assoc <= 0 {
		return nil, fmt.Errorf("baseline: non-positive associativity")
	}
	k := len(features)
	freqs := make([]float64, k)
	pos := make([]int, k)   // next stack-distance position per process (1-based)
	alloc := make([]int, k) // ways granted so far
	for i, f := range features {
		if err := f.Validate(); err != nil {
			return nil, err
		}
		freqs[i] = soloFrequency(f)
		pos[i] = 1
	}
	for way := 0; way < assoc; way++ {
		best, bestVal := -1, -1.0
		for i, f := range features {
			if pos[i] > f.Assoc {
				continue
			}
			v := freqs[i] * f.Hist.P(pos[i])
			if v > bestVal {
				best, bestVal = i, v
			}
		}
		if best < 0 {
			// All profiles exhausted; give the rest to the most frequent.
			best = argmax(freqs)
		}
		alloc[best]++
		pos[best]++
	}
	out := make([]Prediction, k)
	for i, f := range features {
		s := float64(alloc[i])
		if s == 0 {
			// SDC can starve a process entirely; hold the minimum the
			// replacement policy cannot take away (its most recent line).
			s = 0.5
		}
		out[i] = predAt(f, s)
	}
	return out, nil
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
