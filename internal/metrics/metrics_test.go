package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(`requests_total{endpoint="predict",code="200"}`)
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d; want 3", got)
	}
	// Same name returns the same instrument.
	if r.Counter(`requests_total{endpoint="predict",code="200"}`) != c {
		t.Fatal("same name produced a different counter")
	}
	if got := r.CounterValue(`requests_total{endpoint="predict",code="200"}`); got != 3 {
		t.Fatalf("CounterValue = %d; want 3", got)
	}
	if got := r.CounterValue("absent"); got != 0 {
		t.Fatalf("CounterValue(absent) = %d; want 0", got)
	}

	g := r.Gauge("profile_inflight")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d; want 1", got)
	}
	g.Set(5)
	if got := r.GaugeValue("profile_inflight"); got != 5 {
		t.Fatalf("GaugeValue = %d; want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	bounds, cum, sum, count := h.Snapshot()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("snapshot shape: %d bounds, %d buckets", len(bounds), len(cum))
	}
	// le semantics: 0.1 falls in the 0.1 bucket.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d; want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if count != 5 || sum != 102.65 {
		t.Fatalf("sum=%v count=%d; want 102.65, 5", sum, count)
	}
}

func TestWriteTextFormatAndDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Counter(`requests_total{endpoint="b"}`).Inc()
	r.Counter(`requests_total{endpoint="a"}`).Add(2)
	r.Gauge("cache_entries").Set(7)
	r.Histogram(`req_seconds{endpoint="a"}`, []float64{0.5}).Observe(0.2)

	var b1, b2 strings.Builder
	if err := r.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("two renders differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		`requests_total{endpoint="a"} 2`,
		`requests_total{endpoint="b"} 1`,
		"# TYPE cache_entries gauge",
		"cache_entries 7",
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{endpoint="a",le="0.5"} 1`,
		`req_seconds_bucket{endpoint="a",le="+Inf"} 1`,
		`req_seconds_sum{endpoint="a"} 0.2`,
		`req_seconds_count{endpoint="a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Ordered samples: endpoint="a" before endpoint="b".
	if strings.Index(out, `endpoint="a"} 2`) > strings.Index(out, `endpoint="b"} 1`) {
		t.Fatalf("samples not sorted:\n%s", out)
	}
	// TYPE header appears exactly once per family.
	if strings.Count(out, "# TYPE requests_total") != 1 {
		t.Fatalf("duplicate TYPE header:\n%s", out)
	}
}

func TestOnCollect(t *testing.T) {
	r := NewRegistry()
	r.OnCollect(func(reg *Registry) {
		reg.Gauge("synced").Set(42)
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "synced 42") {
		t.Fatalf("collector did not run:\n%s", b.String())
	}
}

// TestConcurrentUse exercises create-on-demand and observation from many
// goroutines under the race detector.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Inc()
				r.Histogram("h", nil).Observe(float64(j) / 100)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.CounterValue("c"); got != 4000 {
		t.Fatalf("counter = %d; want 4000", got)
	}
	_, _, _, count := r.Histogram("h", nil).Snapshot()
	if count != 4000 {
		t.Fatalf("histogram count = %d; want 4000", count)
	}
}
