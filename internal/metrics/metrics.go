// Package metrics is the observability layer of the serving stack: a small
// dependency-free registry of counters, gauges, and latency histograms with
// a Prometheus-compatible text exposition.
//
// Metric names carry their labels inline in the standard sample syntax,
// e.g. `requests_total{endpoint="predict",code="200"}`; the registry treats
// the full string as the sample identity and groups samples into families
// (the name before '{') when rendering `# TYPE` headers. That keeps the
// API one line per instrument — Counter/Gauge/Histogram create on first
// use — which is all a single-process model server needs, while staying
// scrapable by standard collectors.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (or be set outright).
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets is the default latency histogram layout, in seconds. It spans
// sub-millisecond cache hits through multi-minute profiling sweeps.
var DefBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10, 30, 60, 120}

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Snapshot returns the cumulative bucket counts (per bound, then +Inf),
// the sum, and the total count.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return bounds, cumulative, h.sum, h.count
}

// Registry holds named instruments and renders them as text.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	collectors []func(*Registry)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter with the given full sample name, creating it
// on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given full sample name, creating it on
// first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given full sample name, creating
// it with the given bucket bounds on first use (nil selects DefBuckets).
// Later calls ignore the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if bounds == nil {
			bounds = DefBuckets
		}
		h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// OnCollect registers a hook run at the start of every WriteText, letting
// owners refresh gauges from external state (e.g. cache occupancy) right
// before a scrape.
func (r *Registry) OnCollect(fn func(*Registry)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// CounterValue returns the value of a counter, or 0 if it does not exist.
// Intended for tests and admission checks, not hot paths.
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.Lock()
	c, ok := r.counters[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	return c.Value()
}

// GaugeValue returns the value of a gauge, or 0 if it does not exist.
func (r *Registry) GaugeValue(name string) int64 {
	r.mu.Lock()
	g, ok := r.gauges[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	return g.Value()
}

// family splits a full sample name into its family (metric name without
// labels) and the label list without braces ("" if unlabeled).
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// WriteText renders every instrument in the Prometheus text format, sorted
// by sample name so output is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	hooks := make([]func(*Registry), len(r.collectors))
	copy(hooks, r.collectors)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn(r)
	}

	r.mu.Lock()
	type sample struct {
		name string
		kind string
		text func() string
	}
	var samples []sample
	for name, c := range r.counters {
		c := c
		samples = append(samples, sample{name, "counter", func() string {
			return fmt.Sprintf("%s %d\n", name, c.Value())
		}})
	}
	for name, g := range r.gauges {
		g := g
		samples = append(samples, sample{name, "gauge", func() string {
			return fmt.Sprintf("%s %d\n", name, g.Value())
		}})
	}
	for name, h := range r.histograms {
		name, h := name, h
		samples = append(samples, sample{name, "histogram", func() string {
			fam, labels := family(name)
			bounds, cum, sum, count := h.Snapshot()
			var b strings.Builder
			for i, ub := range bounds {
				fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", fam, joinLabels(labels), formatFloat(ub), cum[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d\n", fam, joinLabels(labels), cum[len(cum)-1])
			if labels == "" {
				fmt.Fprintf(&b, "%s_sum %v\n%s_count %d\n", fam, sum, fam, count)
			} else {
				fmt.Fprintf(&b, "%s_sum{%s} %v\n%s_count{%s} %d\n", fam, labels, sum, fam, labels, count)
			}
			return b.String()
		}})
	}
	r.mu.Unlock()

	sort.Slice(samples, func(i, j int) bool { return samples[i].name < samples[j].name })
	seenFam := map[string]bool{}
	for _, s := range samples {
		fam, _ := family(s.name)
		if !seenFam[fam] {
			seenFam[fam] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, s.kind); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, s.text()); err != nil {
			return err
		}
	}
	return nil
}

// joinLabels renders a label prefix for bucket lines: "" stays empty,
// otherwise the labels gain a trailing comma.
func joinLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// formatFloat renders a bucket bound the way Prometheus does (shortest
// representation, no trailing zeros).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%v", v)
}
