package exp

import (
	"fmt"
	"math"
	"strings"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/power"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
	"mpmc/internal/xrand"
)

// PowerScenario is one row of Table 2 or Table 3.
type PowerScenario struct {
	Name        string
	Assignments int
	// Sample-based comparison: per-window estimated vs measured power.
	SampleAvgErr, SampleMaxErr float64
	// Average-power comparison per assignment.
	AvgAvgErr, AvgMaxErr float64
}

// PowerTableResult holds a full power-model validation table.
type PowerTableResult struct {
	Machine   string
	Title     string
	Scenarios []PowerScenario
}

// Format renders the paper's Table 2/3 layout.
func (r *PowerTableResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%s)\n", r.Title, r.Machine)
	fmt.Fprintf(&sb, "%-28s %12s %24s %24s\n", "Scenario", "Assignments",
		"Avg./max. sample err (%)", "Avg./max. avg-power err (%)")
	for _, s := range r.Scenarios {
		fmt.Fprintf(&sb, "%-28s %12d %15.2f / %5.2f %16.2f / %5.2f\n",
			s.Name, s.Assignments, s.SampleAvgErr, s.SampleMaxErr, s.AvgAvgErr, s.AvgMaxErr)
	}
	return sb.String()
}

// powerAssignment validates the power model on one assignment: the model
// consumes the runtime per-core HPC rates (exactly what PAPI would give)
// and its per-window estimates are compared against the measured trace.
func powerAssignment(m *machine.Machine, pm *core.PowerModel, procs [][]*workload.Spec, opts sim.Options) (sampleErrs []float64, avgErr float64, run *sim.Result, err error) {
	run, err = sim.Run(m, specAssignment(m, procs), opts)
	if err != nil {
		return nil, 0, nil, err
	}
	windows := run.WindowRates(m.NumCores)
	var estSum float64
	for w, cores := range windows {
		est := pm.ProcessorPower(cores)
		meas := run.MeasuredPower[w].Power
		sampleErrs = append(sampleErrs, math.Abs(est-meas)/meas)
		estSum += est
	}
	estAvg := estSum / float64(len(windows))
	avgErr = math.Abs(estAvg-run.AvgMeasuredPower()) / run.AvgMeasuredPower()
	return sampleErrs, avgErr, run, nil
}

// scenarioStats folds per-assignment results into one table row.
type scenarioStats struct {
	name                 string
	n                    int
	sampleSum, sampleMax float64
	sampleN              int
	avgErrSum, avgErrMax float64
}

func (s *scenarioStats) add(sampleErrs []float64, avgErr float64) {
	s.n++
	for _, e := range sampleErrs {
		s.sampleSum += e
		s.sampleN++
		if e > s.sampleMax {
			s.sampleMax = e
		}
	}
	s.avgErrSum += avgErr
	if avgErr > s.avgErrMax {
		s.avgErrMax = avgErr
	}
}

func (s *scenarioStats) row() PowerScenario {
	out := PowerScenario{Name: s.name, Assignments: s.n}
	if s.sampleN > 0 {
		out.SampleAvgErr = 100 * s.sampleSum / float64(s.sampleN)
		out.SampleMaxErr = 100 * s.sampleMax
	}
	if s.n > 0 {
		out.AvgAvgErr = 100 * s.avgErrSum / float64(s.n)
		out.AvgMaxErr = 100 * s.avgErrMax
	}
	return out
}

// randomSpecs draws n benchmarks (with replacement across draws but
// distinct within one assignment when possible).
func randomSpecs(rng *xrand.Rand, n int) []*workload.Spec {
	suite := workload.ModelSet()
	out := make([]*workload.Spec, n)
	perm := rng.Perm(len(suite))
	for i := 0; i < n; i++ {
		out[i] = suite[perm[i%len(perm)]]
	}
	return out
}

// Table2 reproduces E4: power model validation on the 2-core workstation.
// Scenario 1: all 36 unordered benchmark pairs, one process per core.
// Scenario 2: 24 random assignments with two processes per core.
func Table2(x *Context) (*PowerTableResult, error) {
	m := machine.TwoCoreWorkstation()
	pm, err := x.PowerModel(m)
	if err != nil {
		return nil, err
	}
	res := &PowerTableResult{Machine: m.Name, Title: "Table 2: Power Model Validation"}
	seed := x.Cfg.Seed + hash(m.Name+"/table2")

	s1 := &scenarioStats{name: "1 proc./core"}
	suite := workload.ModelSet()
	for i := 0; i < len(suite); i++ {
		for j := i; j < len(suite); j++ {
			seed++
			se, ae, _, err := powerAssignment(m, pm,
				[][]*workload.Spec{{suite[i]}, {suite[j]}}, x.Cfg.corunOpts(seed))
			if err != nil {
				return nil, err
			}
			s1.add(se, ae)
		}
	}
	res.Scenarios = append(res.Scenarios, s1.row())

	s2 := &scenarioStats{name: "2 proc./core"}
	rng := xrand.New(seed ^ 0xBEEF)
	for a := 0; a < 24; a++ {
		specs := randomSpecs(rng, 4)
		seed++
		se, ae, _, err := powerAssignment(m, pm,
			[][]*workload.Spec{{specs[0], specs[1]}, {specs[2], specs[3]}}, x.Cfg.corunOpts(seed))
		if err != nil {
			return nil, err
		}
		s2.add(se, ae)
	}
	res.Scenarios = append(res.Scenarios, s2.row())
	return res, nil
}

// Table3 reproduces E5: power model validation on the 4-core server.
// 24 random assignments with 1 process per core, 3 with 2 processes per
// core, and 10 with 4 processes and one or two cores unused.
func Table3(x *Context) (*PowerTableResult, error) {
	m := machine.FourCoreServer()
	pm, err := x.PowerModel(m)
	if err != nil {
		return nil, err
	}
	res := &PowerTableResult{Machine: m.Name, Title: "Table 3: Power Model Validation"}
	seed := x.Cfg.Seed + hash(m.Name+"/table3")
	rng := xrand.New(seed ^ 0xD00D)

	s1 := &scenarioStats{name: "1 proc./core"}
	for a := 0; a < 24; a++ {
		sp := randomSpecs(rng, 4)
		seed++
		se, ae, _, err := powerAssignment(m, pm,
			[][]*workload.Spec{{sp[0]}, {sp[1]}, {sp[2]}, {sp[3]}}, x.Cfg.corunOpts(seed))
		if err != nil {
			return nil, err
		}
		s1.add(se, ae)
	}
	res.Scenarios = append(res.Scenarios, s1.row())

	s2 := &scenarioStats{name: "2 proc./core"}
	for a := 0; a < 3; a++ {
		sp := append(randomSpecs(rng, 4), randomSpecs(rng, 4)...)
		seed++
		se, ae, _, err := powerAssignment(m, pm, [][]*workload.Spec{
			{sp[0], sp[1]}, {sp[2], sp[3]}, {sp[4], sp[5]}, {sp[6], sp[7]},
		}, x.Cfg.corunOpts(seed))
		if err != nil {
			return nil, err
		}
		s2.add(se, ae)
	}
	res.Scenarios = append(res.Scenarios, s2.row())

	s3 := &scenarioStats{name: "4 proc. with unused cores"}
	for a := 0; a < 10; a++ {
		sp := randomSpecs(rng, 4)
		var procs [][]*workload.Spec
		if a%2 == 0 {
			// One core unused: 2+1+1 layout.
			procs = [][]*workload.Spec{{sp[0], sp[1]}, {sp[2]}, {sp[3]}, nil}
		} else {
			// Two cores unused: 2+2 layout.
			procs = [][]*workload.Spec{{sp[0], sp[1]}, {sp[2], sp[3]}, nil, nil}
		}
		seed++
		se, ae, _, err := powerAssignment(m, pm, procs, x.Cfg.corunOpts(seed))
		if err != nil {
			return nil, err
		}
		s3.add(se, ae)
	}
	res.Scenarios = append(res.Scenarios, s3.row())
	return res, nil
}

// Figure2Result holds E3: the estimated and measured power traces of the
// maximum- and minimum-power assignments.
type Figure2Result struct {
	Machine  string
	MaxName  string
	MinName  string
	MaxTrace [2]power.Trace // [estimated, measured]
	MinTrace [2]power.Trace
	MaxErr   float64 // average sample error, percent
	MinErr   float64
}

// Format summarizes the traces with a coarse time series.
func (r *Figure2Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2: Power model sample traces (%s)\n", r.Machine)
	fmt.Fprintf(&sb, "max-power assignment %-28s avg sample err %.2f%%\n", r.MaxName, r.MaxErr)
	fmt.Fprintf(&sb, "min-power assignment %-28s avg sample err %.2f%%\n", r.MinName, r.MinErr)
	dump := func(label string, tr [2]power.Trace) {
		fmt.Fprintf(&sb, "%s: time(s)  est(W)  meas(W)\n", label)
		step := len(tr[0]) / 12
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(tr[0]); i += step {
			fmt.Fprintf(&sb, "  %7.2f %7.2f %8.2f\n", tr[0][i].Time, tr[0][i].Power, tr[1][i].Power)
		}
	}
	dump("max", r.MaxTrace)
	dump("min", r.MinTrace)
	return sb.String()
}

// Figure2 reproduces E3. The paper plots the assignments with the maximum
// and minimum average power among its test cases; here the extremes are
// found among the 1-proc/core corner cases (the heaviest and lightest
// homogeneous-intensity mixes), then traced sample by sample.
func Figure2(x *Context) (*Figure2Result, error) {
	m := machine.FourCoreServer()
	pm, err := x.PowerModel(m)
	if err != nil {
		return nil, err
	}
	// Heaviest mix: FP/memory intensive; lightest: a single CPU-bound
	// process with three idle cores.
	maxProcs := [][]*workload.Spec{
		{workload.ByName("art")}, {workload.ByName("equake")},
		{workload.ByName("swim")}, {workload.ByName("ammp")},
	}
	minProcs := [][]*workload.Spec{{workload.ByName("gzip")}, nil, nil, nil}

	trace := func(procs [][]*workload.Spec, seed uint64) ([2]power.Trace, float64, error) {
		opts := x.Cfg.corunOpts(seed)
		run, err := sim.Run(m, specAssignment(m, procs), opts)
		if err != nil {
			return [2]power.Trace{}, 0, err
		}
		windows := run.WindowRates(m.NumCores)
		est := make(power.Trace, len(windows))
		var errSum float64
		for w, cores := range windows {
			est[w] = power.TracePoint{Time: run.MeasuredPower[w].Time, Power: pm.ProcessorPower(cores)}
			errSum += math.Abs(est[w].Power-run.MeasuredPower[w].Power) / run.MeasuredPower[w].Power
		}
		return [2]power.Trace{est, run.MeasuredPower}, 100 * errSum / float64(len(windows)), nil
	}
	seed := x.Cfg.Seed + hash(m.Name+"/figure2")
	maxTr, maxErr, err := trace(maxProcs, seed)
	if err != nil {
		return nil, err
	}
	minTr, minErr, err := trace(minProcs, seed+1)
	if err != nil {
		return nil, err
	}
	return &Figure2Result{
		Machine:  m.Name,
		MaxName:  "art+equake+swim+ammp",
		MinName:  "gzip alone",
		MaxTrace: maxTr, MinTrace: minTr,
		MaxErr: maxErr, MinErr: minErr,
	}, nil
}
