package exp

import (
	"context"
	"fmt"
	"math"
	"strings"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/parallel"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
	"mpmc/internal/xrand"
)

// CombinedScenario is one row of Table 4.
type CombinedScenario struct {
	Name        string
	Assignments int
	AvgErr      float64 // percent
	MaxErr      float64 // percent
}

// Table4Result holds E6.
type Table4Result struct {
	Machine   string
	Scenarios []CombinedScenario
}

// Format renders the paper's Table 4 layout.
func (r *Table4Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 4: Validating the Combined Model (%s)\n", r.Machine)
	fmt.Fprintf(&sb, "%-28s %12s %26s\n", "Scenario", "Assignments", "Avg./max. avg-power err (%)")
	for _, s := range r.Scenarios {
		fmt.Fprintf(&sb, "%-28s %12d %17.2f / %5.2f\n", s.Name, s.Assignments, s.AvgErr, s.MaxErr)
	}
	return sb.String()
}

// table4Case lays out one scenario generator: the name, the number of
// assignments, and a function producing the per-core spec layout for the
// a-th assignment.
type table4Case struct {
	name   string
	count  int
	layout func(rng *xrand.Rand) [][]*workload.Spec
}

// Table4 reproduces E6: combined-model validation on the 4-core server.
// The estimate uses ONLY profiling data (feature vectors + trained power
// model); no runtime counters from the validated run are consumed.
func Table4(x *Context) (*Table4Result, error) {
	m := machine.FourCoreServer()
	pm, err := x.PowerModel(m)
	if err != nil {
		return nil, err
	}
	cm := core.NewCombinedModel(m, pm)
	feats := map[string]*core.FeatureVector{}
	for _, s := range workload.ModelSet() {
		f, err := x.Feature(m, s)
		if err != nil {
			return nil, err
		}
		feats[s.Name] = f
	}

	cases := []table4Case{
		{"1 proc./core", 32, func(rng *xrand.Rand) [][]*workload.Spec {
			sp := randomSpecs(rng, 4)
			return [][]*workload.Spec{{sp[0]}, {sp[1]}, {sp[2]}, {sp[3]}}
		}},
		{"2 proc./core", 10, func(rng *xrand.Rand) [][]*workload.Spec {
			sp := append(randomSpecs(rng, 4), randomSpecs(rng, 4)...)
			return [][]*workload.Spec{{sp[0], sp[1]}, {sp[2], sp[3]}, {sp[4], sp[5]}, {sp[6], sp[7]}}
		}},
		{"4 proc., 1 core unused", 16, func(rng *xrand.Rand) [][]*workload.Spec {
			sp := randomSpecs(rng, 4)
			return [][]*workload.Spec{{sp[0], sp[1]}, {sp[2]}, {sp[3]}, nil}
		}},
		{"4 proc., 2 core unused", 16, func(rng *xrand.Rand) [][]*workload.Spec {
			sp := randomSpecs(rng, 4)
			return [][]*workload.Spec{{sp[0], sp[1]}, {sp[2], sp[3]}, nil, nil}
		}},
		{"4 proc., 3 core unused", 9, func(rng *xrand.Rand) [][]*workload.Spec {
			sp := randomSpecs(rng, 4)
			return [][]*workload.Spec{{sp[0], sp[1], sp[2], sp[3]}, nil, nil, nil}
		}},
	}

	res := &Table4Result{Machine: m.Name}
	seed := x.Cfg.Seed + hash(m.Name+"/table4")
	rng := xrand.New(seed ^ 0xF00D)
	// The layouts consume a single sequential RNG stream, so they are all
	// drawn up front in the serial visiting order (with that assignment's
	// seed attached); only the independent estimate+measure work fans out.
	type t4task struct {
		caseIdx int
		procs   [][]*workload.Spec
		seed    uint64
	}
	var tasks []t4task
	for ci, c := range cases {
		for a := 0; a < c.count; a++ {
			procs := c.layout(rng)
			seed++
			tasks = append(tasks, t4task{caseIdx: ci, procs: procs, seed: seed})
		}
	}
	errs, err := parallel.Map(context.Background(), x.Cfg.Workers, len(tasks), func(k int) (float64, error) {
		t := tasks[k]
		// Build the model-side assignment from profiles only.
		asg := make(core.Assignment, m.NumCores)
		for ci, sl := range t.procs {
			for _, sp := range sl {
				asg[ci] = append(asg[ci], feats[sp.Name])
			}
		}
		est, err := cm.EstimateAssignment(asg)
		if err != nil {
			return 0, fmt.Errorf("exp: table4 %s: %w", cases[t.caseIdx].name, err)
		}
		opts := x.Cfg.corunOpts(t.seed)
		if len(t.procs[0]) >= 3 {
			// Deep time sharing needs several full rotations of the
			// schedule for a stable average.
			opts.Duration *= 2
		}
		run, err := simRun(m, t.procs, opts)
		if err != nil {
			return 0, err
		}
		return math.Abs(est-run) / run, nil
	})
	if err != nil {
		return nil, err
	}
	k := 0
	for _, c := range cases {
		var sum, max float64
		for a := 0; a < c.count; a++ {
			e := errs[k]
			k++
			sum += e
			if e > max {
				max = e
			}
		}
		res.Scenarios = append(res.Scenarios, CombinedScenario{
			Name:        c.name,
			Assignments: c.count,
			AvgErr:      100 * sum / float64(c.count),
			MaxErr:      100 * max,
		})
	}
	return res, nil
}

// simRun measures the average power of one assignment.
func simRun(m *machine.Machine, procs [][]*workload.Spec, opts sim.Options) (float64, error) {
	run, err := sim.Run(m, specAssignment(m, procs), opts)
	if err != nil {
		return 0, err
	}
	return run.AvgMeasuredPower(), nil
}
