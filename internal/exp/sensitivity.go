package exp

import (
	"fmt"
	"math"
	"strings"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
)

// SensitivityResult holds the geometry-sensitivity study: the performance
// model's accuracy as the shared cache's associativity varies. The paper
// validates on 16-, 12- and 8-way machines and claims generality; this
// study sweeps the dimension directly on otherwise-identical machines.
type SensitivityResult struct {
	Assocs    []int
	MPAErrPct []float64 // mean |MPA err| in points at each associativity
	SPIErrPct []float64 // mean relative SPI error (%) at each associativity
}

// Format renders the sweep.
func (r *SensitivityResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Geometry sensitivity: performance-model error vs associativity\n")
	fmt.Fprintf(&sb, "  %6s %12s %12s\n", "ways", "MPA err pts", "SPI err %")
	for i, a := range r.Assocs {
		fmt.Fprintf(&sb, "  %6d %12.2f %12.2f\n", a, r.MPAErrPct[i], r.SPIErrPct[i])
	}
	return sb.String()
}

// SensitivitySweep predicts and measures a fixed set of probe pairs on
// 4-, 8-, 16- and 24-way variants of the workstation, using oracle
// features (so the sweep isolates model structure from profiling noise).
func SensitivitySweep(x *Context) (*SensitivityResult, error) {
	base := machine.TwoCoreWorkstation()
	pairs := [][2]string{{"mcf", "twolf"}, {"art", "vpr"}, {"ammp", "bzip2"}, {"mcf", "gzip"}}
	res := &SensitivityResult{}
	seed := x.Cfg.Seed + hash("sensitivity")
	for _, assoc := range []int{4, 8, 16, 24} {
		m := *base
		m.Assoc = assoc
		var mpaSum, spiSum float64
		var n int
		for _, pair := range pairs {
			a, b := workload.ByName(pair[0]), workload.ByName(pair[1])
			fs := []*core.FeatureVector{core.TruthFeature(a, &m), core.TruthFeature(b, &m)}
			preds, err := core.PredictGroup(fs, m.Assoc, core.SolverAuto)
			if err != nil {
				return nil, fmt.Errorf("exp: sensitivity at %d ways: %w", assoc, err)
			}
			seed++
			run, err := sim.Run(&m, sim.Single(a, b), x.Cfg.corunOpts(seed))
			if err != nil {
				return nil, err
			}
			for i := range fs {
				meas := run.Procs[i]
				mpaSum += math.Abs(preds[i].MPA - meas.MPA())
				spiSum += math.Abs(preds[i].SPI-meas.SPI()) / meas.SPI()
				n++
			}
		}
		res.Assocs = append(res.Assocs, assoc)
		res.MPAErrPct = append(res.MPAErrPct, 100*mpaSum/float64(n))
		res.SPIErrPct = append(res.SPIErrPct, 100*spiSum/float64(n))
	}
	return res, nil
}
