package exp

import (
	"context"
	"fmt"
	"math"
	"strings"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/parallel"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
)

// SensitivityResult holds the geometry-sensitivity study: the performance
// model's accuracy as the shared cache's associativity varies. The paper
// validates on 16-, 12- and 8-way machines and claims generality; this
// study sweeps the dimension directly on otherwise-identical machines.
type SensitivityResult struct {
	Assocs    []int
	MPAErrPct []float64 // mean |MPA err| in points at each associativity
	SPIErrPct []float64 // mean relative SPI error (%) at each associativity
}

// Format renders the sweep.
func (r *SensitivityResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Geometry sensitivity: performance-model error vs associativity\n")
	fmt.Fprintf(&sb, "  %6s %12s %12s\n", "ways", "MPA err pts", "SPI err %")
	for i, a := range r.Assocs {
		fmt.Fprintf(&sb, "  %6d %12.2f %12.2f\n", a, r.MPAErrPct[i], r.SPIErrPct[i])
	}
	return sb.String()
}

// SensitivitySweep predicts and measures a fixed set of probe pairs on
// 4-, 8-, 16- and 24-way variants of the workstation, using oracle
// features (so the sweep isolates model structure from profiling noise).
func SensitivitySweep(x *Context) (*SensitivityResult, error) {
	base := machine.TwoCoreWorkstation()
	pairs := [][2]string{{"mcf", "twolf"}, {"art", "vpr"}, {"ammp", "bzip2"}, {"mcf", "gzip"}}
	assocs := []int{4, 8, 16, 24}
	res := &SensitivityResult{}
	seed := x.Cfg.Seed + hash("sensitivity")
	// The serial loops drew one seed per (assoc, pair) in row-major order;
	// flatten to that index space and fan out, returning per-process error
	// terms so the per-associativity sums accumulate in serial order.
	type sensOut struct{ mpa, spi [2]float64 }
	outs, err := parallel.Map(context.Background(), x.Cfg.Workers, len(assocs)*len(pairs), func(k int) (sensOut, error) {
		assoc := assocs[k/len(pairs)]
		pair := pairs[k%len(pairs)]
		m := *base
		m.Assoc = assoc
		a, b := workload.ByName(pair[0]), workload.ByName(pair[1])
		fs := []*core.FeatureVector{core.TruthFeature(a, &m), core.TruthFeature(b, &m)}
		preds, err := core.PredictGroup(fs, m.Assoc, core.SolverAuto)
		if err != nil {
			return sensOut{}, fmt.Errorf("exp: sensitivity at %d ways: %w", assoc, err)
		}
		run, err := sim.Run(&m, sim.Single(a, b), x.Cfg.corunOpts(seed+uint64(k)+1))
		if err != nil {
			return sensOut{}, err
		}
		var out sensOut
		for i := range fs {
			meas := run.Procs[i]
			out.mpa[i] = math.Abs(preds[i].MPA - meas.MPA())
			out.spi[i] = math.Abs(preds[i].SPI-meas.SPI()) / meas.SPI()
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for ai, assoc := range assocs {
		var mpaSum, spiSum float64
		var n int
		for pi := range pairs {
			out := outs[ai*len(pairs)+pi]
			for i := 0; i < 2; i++ {
				mpaSum += out.mpa[i]
				spiSum += out.spi[i]
				n++
			}
		}
		res.Assocs = append(res.Assocs, assoc)
		res.MPAErrPct = append(res.MPAErrPct, 100*mpaSum/float64(n))
		res.SPIErrPct = append(res.SPIErrPct, 100*spiSum/float64(n))
	}
	return res, nil
}
