package exp

import (
	"context"
	"fmt"
	"strings"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/parallel"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
)

// PrefetchResult holds E7: the per-benchmark speedup from enabling the
// next-line prefetcher (Section 3.1's justification for the no-prefetch
// modeling assumption).
type PrefetchResult struct {
	Machine    string
	Names      []string
	SpeedupPct []float64
	AvgPct     float64
}

// Format renders the study.
func (r *PrefetchResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Prefetching study (%s): speedup from next-line L2 prefetch\n", r.Machine)
	for i, n := range r.Names {
		fmt.Fprintf(&sb, "  %-8s %6.2f%%\n", n, r.SpeedupPct[i])
	}
	fmt.Fprintf(&sb, "  %-8s %6.2f%%\n", "Avg.", r.AvgPct)
	return sb.String()
}

// PrefetchStudy reproduces E7: run all 10 benchmarks solo with the
// prefetcher off and on; report speedups. The paper observed a 3.25%
// average improvement with only equake benefitting significantly.
func PrefetchStudy(x *Context) (*PrefetchResult, error) {
	base := machine.TwoCoreLaptop()
	res := &PrefetchResult{Machine: base.Name}
	seed := x.Cfg.Seed + hash("prefetch")
	suite := workload.Suite()
	// Benchmark k's off/on runs share seed+k (the serial loop incremented
	// the seed only between benchmarks), so the pairs fan out cleanly.
	speedups, err := parallel.Map(context.Background(), x.Cfg.Workers, len(suite), func(k int) (float64, error) {
		spec := suite[k]
		spi := map[bool]float64{}
		for _, pf := range []bool{false, true} {
			m := *base
			m.Prefetch = pf
			procs := make([][]*workload.Spec, m.NumCores)
			procs[0] = []*workload.Spec{spec}
			run, err := sim.Run(&m, specAssignment(&m, procs), x.Cfg.corunOpts(seed+uint64(k)))
			if err != nil {
				return 0, err
			}
			spi[pf] = run.Procs[0].SPI()
		}
		return 100 * (spi[false]/spi[true] - 1), nil
	})
	if err != nil {
		return nil, err
	}
	var sum float64
	for k, speedup := range speedups {
		res.Names = append(res.Names, suite[k].Name)
		res.SpeedupPct = append(res.SpeedupPct, speedup)
		sum += speedup
	}
	res.AvgPct = sum / float64(len(res.Names))
	return res, nil
}

// MVLRvsNNResult holds E8.
type MVLRvsNNResult struct {
	Machine string
	MVLRAcc float64
	NNAcc   float64
	MVLRR2  float64
	Samples int
}

// Format renders the comparison.
func (r *MVLRvsNNResult) Format() string {
	return fmt.Sprintf(
		"MVLR vs NN (%s, %d samples): MVLR accuracy %.2f%% (R²=%.4f), NN accuracy %.2f%%\n",
		r.Machine, r.Samples, r.MVLRAcc, r.MVLRR2, r.NNAcc)
}

// MVLRvsNN reproduces E8: both models trained on the Section 4.1 dataset;
// the paper reports 96.2% (MVLR) vs 96.8% (NN) and picks MVLR for its
// construction simplicity.
func MVLRvsNN(x *Context) (*MVLRvsNNResult, error) {
	m := machine.TwoCoreWorkstation()
	ds, err := x.PowerDataset(m)
	if err != nil {
		return nil, err
	}
	pm, err := x.PowerModel(m)
	if err != nil {
		return nil, err
	}
	nnEpochs := 0 // default
	if x.Cfg.Quick {
		nnEpochs = 1500
	}
	nn, err := core.TrainNNModel(ds, core.NNOptions{Seed: x.Cfg.Seed, Epochs: nnEpochs})
	if err != nil {
		return nil, err
	}
	return &MVLRvsNNResult{
		Machine: m.Name,
		MVLRAcc: ds.Accuracy(pm.CorePower),
		NNAcc:   ds.Accuracy(nn.CorePower),
		MVLRR2:  pm.R2(),
		Samples: len(ds.Features),
	}, nil
}

// CtxSwitchResult holds E9: the cache-refill cost after context switches
// relative to the timeslice length.
type CtxSwitchResult struct {
	Machine       string
	Timeslice     float64
	RefillSeconds float64 // average per resume
	RefillPct     float64 // of the timeslice
	Resumes       int
}

// Format renders the study.
func (r *CtxSwitchResult) Format() string {
	return fmt.Sprintf(
		"Context-switch study (%s): avg refill %.4f s after %d resumes = %.2f%% of the %.0f s timeslice\n",
		r.Machine, r.RefillSeconds, r.Resumes, r.RefillPct, r.Timeslice)
}

// ContextSwitchStudy reproduces E9: two processes time-share one core;
// after each resume the returning process re-fetches its evicted working
// set. The refill cost is the excess miss time in the first windows after
// each resume versus the steady-state miss rate; the paper found it to be
// about 1% of the timeslice.
func ContextSwitchStudy(x *Context) (*CtxSwitchResult, error) {
	m := machine.TwoCoreWorkstation()
	a, b := workload.ByName("twolf"), workload.ByName("vpr")
	opts := x.Cfg.corunOpts(x.Cfg.Seed + hash("ctxswitch"))
	// Several full scheduling rotations are needed.
	opts.Duration = m.Timeslice * 12
	opts.Warmup = m.Timeslice * 2
	opts.CollectProcSamples = true
	run, err := sim.Run(m, sim.Assignment{Procs: [][]*workload.Spec{{a, b}, nil}}, opts)
	if err != nil {
		return nil, err
	}
	// Group proc 0's samples; detect resume points (inactive → active)
	// and accumulate excess misses in the first windows after each.
	var samples []sim.ProcSample
	for _, s := range run.ProcSamples {
		if s.Proc == 0 {
			samples = append(samples, s)
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("exp: no process samples collected")
	}
	// Steady-state MPA from the second half of each active burst.
	var steadyMisses, steadyRefs uint64
	burstLen := 0
	for _, s := range samples {
		if s.Active {
			burstLen++
			if burstLen > 20 { // past the refill transient
				steadyMisses += s.L2Misses
				steadyRefs += s.L2Refs
			}
		} else {
			burstLen = 0
		}
	}
	if steadyRefs == 0 {
		return nil, fmt.Errorf("exp: no steady-state activity observed")
	}
	steadyMPA := float64(steadyMisses) / float64(steadyRefs)
	// Excess misses right after each resume.
	var excess float64
	resumes := 0
	prevActive := true
	burstLen = 0
	for _, s := range samples {
		if s.Active && !prevActive {
			resumes++
			burstLen = 0
		}
		if s.Active {
			burstLen++
			if burstLen <= 20 && s.L2Refs > 0 {
				e := float64(s.L2Misses) - steadyMPA*float64(s.L2Refs)
				if e > 0 {
					excess += e
				}
			}
		}
		prevActive = s.Active
	}
	if resumes == 0 {
		return nil, fmt.Errorf("exp: no context-switch resumes observed")
	}
	refill := excess / float64(resumes) * m.MemLatency
	return &CtxSwitchResult{
		Machine:       m.Name,
		Timeslice:     m.Timeslice,
		RefillSeconds: refill,
		RefillPct:     100 * refill / m.Timeslice,
		Resumes:       resumes,
	}, nil
}
