package exp

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// equivWorkerCounts is the contract's worker-count matrix {1, 4,
// GOMAXPROCS}, deduplicated for single-CPU machines.
func equivWorkerCounts() []int {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: output differs from golden file\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestStudyEquivalence runs a slice of the experiment harness at Workers
// 1, 4 and GOMAXPROCS — a fresh Context each time, so nothing is shared —
// and requires the serialized results to be byte-identical across worker
// counts and equal to the checked-in golden files. SolverAblation's two
// wall-clock Duration fields are zeroed before marshaling; everything
// else is compared verbatim.
func TestStudyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps in -short")
	}
	studies := []struct {
		golden string
		run    func(*Context) (any, error)
	}{
		{"solver_ablation.json", func(x *Context) (any, error) {
			r, err := SolverAblation(x)
			if r != nil {
				r.NewtonTime, r.WindowTime = 0, 0
			}
			return r, err
		}},
		{"seed_stability.json", func(x *Context) (any, error) { return SeedStability(x) }},
		{"prefetch_study.json", func(x *Context) (any, error) { return PrefetchStudy(x) }},
		{"sensitivity_sweep.json", func(x *Context) (any, error) { return SensitivitySweep(x) }},
		{"threads_study.json", func(x *Context) (any, error) { return ThreadsStudy(x) }},
		{"powercap_study.json", func(x *Context) (any, error) { return PowerCapStudy(x) }},
	}
	for _, st := range studies {
		var ref []byte
		for _, w := range equivWorkerCounts() {
			x := NewContext(Config{Quick: true, Seed: 42, Workers: w})
			r, err := st.run(x)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", st.golden, w, err)
			}
			got, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			if ref == nil {
				ref = got
				checkGolden(t, st.golden, got)
				continue
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("%s: workers=%d diverged from workers=1\ngot:\n%s\nwant:\n%s",
					st.golden, w, got, ref)
			}
		}
	}
}
