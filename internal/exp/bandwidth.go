package exp

import (
	"fmt"
	"math"
	"strings"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
)

// BandwidthResult quantifies the "constrained processor-memory bandwidth"
// regime of Section 3.1: with a bounded shared bus, misses queue and the
// effective miss penalty grows with load, violating the model's fixed-α
// assumption (Eq. 3). The study sweeps bus utilization and reports how
// MPA error (cache behaviour — should stay put) and SPI error (timing —
// should degrade) respond.
type BandwidthResult struct {
	Machine string
	// Rows, one per bus configuration.
	Labels     []string
	UtilPct    []float64 // measured bus utilization (aggregate misses/s ÷ bandwidth)
	MPAErrPct  []float64 // mean |MPA err| (points)
	SPIErrPct  []float64 // mean relative SPI error (%)
}

// Format renders the sweep.
func (r *BandwidthResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Memory-bandwidth study (%s): model error vs bus saturation\n", r.Machine)
	fmt.Fprintf(&sb, "  %-14s %10s %12s %12s\n", "bus", "util %", "MPA err pts", "SPI err %")
	for i, l := range r.Labels {
		util := "—"
		if r.UtilPct[i] > 0 {
			util = fmt.Sprintf("%.0f", r.UtilPct[i])
		}
		fmt.Fprintf(&sb, "  %-14s %10s %12.2f %12.2f\n", l, util, r.MPAErrPct[i], r.SPIErrPct[i])
	}
	return sb.String()
}

// BandwidthStudy predicts probe pairs with the standard (fixed-penalty)
// model and measures them on machines whose bus is unconstrained, loaded,
// and near saturation.
func BandwidthStudy(x *Context) (*BandwidthResult, error) {
	base := machine.TwoCoreWorkstation()
	pairs := [][2]string{{"mcf", "art"}, {"mcf", "twolf"}, {"art", "ammp"}}
	// Aggregate miss rate of these pairs is roughly 25–30k misses/s on
	// this machine; the configurations below put the bus at ~0%, ~45%,
	// and ~80% utilization (queueing throttles the access rate, so
	// utilization saturates below the no-feedback estimate).
	configs := []struct {
		label string
		bw    float64
	}{
		{"unconstrained", 0},
		{"loaded", 50_000},
		{"saturated", 26_000},
	}
	res := &BandwidthResult{Machine: base.Name}
	seed := x.Cfg.Seed + hash("bandwidth")
	for _, cfg := range configs {
		m := *base
		m.MemBandwidth = cfg.bw
		var mpaSum, spiSum, missRate float64
		var n int
		var dur float64
		for pi, pair := range pairs {
			a, b := workload.ByName(pair[0]), workload.ByName(pair[1])
			// The model is built for the unconstrained machine — the
			// point is what happens when reality adds queueing.
			fs := []*core.FeatureVector{core.TruthFeature(a, base), core.TruthFeature(b, base)}
			preds, err := core.PredictGroup(fs, m.Assoc, core.SolverAuto)
			if err != nil {
				return nil, err
			}
			opts := x.Cfg.corunOpts(seed + uint64(pi)*13)
			run, err := sim.Run(&m, sim.Single(a, b), opts)
			if err != nil {
				return nil, err
			}
			dur = opts.Duration
			for i := range fs {
				meas := run.Procs[i]
				mpaSum += math.Abs(preds[i].MPA - meas.MPA())
				spiSum += math.Abs(preds[i].SPI-meas.SPI()) / meas.SPI()
				missRate += float64(meas.L2Misses)
				n++
			}
		}
		seed += 1000
		res.Labels = append(res.Labels, cfg.label)
		util := 0.0
		if cfg.bw > 0 {
			// Average over the pairs: total misses across both procs per
			// run second, relative to bandwidth.
			util = 100 * missRate / float64(len(pairs)) / dur / cfg.bw
		}
		res.UtilPct = append(res.UtilPct, util)
		res.MPAErrPct = append(res.MPAErrPct, 100*mpaSum/float64(n))
		res.SPIErrPct = append(res.SPIErrPct, 100*spiSum/float64(n))
	}
	return res, nil
}
