package exp

import (
	"strings"
	"testing"
)

// The profiling-heavy experiments run here; `go test -short` skips them.

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling-heavy; skipped with -short")
	}
	r, err := Table1(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Pairs != 36 || len(r.Benchmarks) != 8 {
		t.Fatalf("shape: %d pairs, %d benchmarks", r.Pairs, len(r.Benchmarks))
	}
	// The paper's bands: MPA avg 1.76%, SPI avg 3.38%. Hold the
	// reproduction to the same few-percent regime.
	if a := r.AvgMPAErr(); a <= 0 || a > 5 {
		t.Errorf("avg MPA error %.2f points outside band", a)
	}
	if a := r.AvgSPIErr(); a <= 0 || a > 6 {
		t.Errorf("avg SPI error %.2f%% outside band", a)
	}
	if o := r.SPIOver5(); o > 30 {
		t.Errorf("%.1f%% of cases above 5%% SPI error", o)
	}
	out := r.Format()
	for _, name := range []string{"gzip", "mcf", "equake", "Avg."} {
		if !strings.Contains(out, name) {
			t.Errorf("Format missing %q", name)
		}
	}
}

func TestPerfSecondMachineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling-heavy; skipped with -short")
	}
	r, err := PerfSecondMachine(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Pairs != 55 || len(r.Benchmarks) != 10 {
		t.Fatalf("shape: %d pairs, %d benchmarks", r.Pairs, len(r.Benchmarks))
	}
	// Paper: 1.57% average SPI error on this machine.
	if a := r.AvgSPIErr(); a <= 0 || a > 5 {
		t.Errorf("avg SPI error %.2f%% outside band", a)
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling-heavy; skipped with -short")
	}
	r, err := Table4(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 5 {
		t.Fatalf("scenarios %d", len(r.Scenarios))
	}
	wantCounts := []int{32, 10, 16, 16, 9}
	for i, s := range r.Scenarios {
		if s.Assignments != wantCounts[i] {
			t.Errorf("scenario %q count %d want %d", s.Name, s.Assignments, wantCounts[i])
		}
		// Paper band: avg errors 0.49–2.84%, max ≤ 6.29%.
		if s.AvgErr <= 0 || s.AvgErr > 8 {
			t.Errorf("%s: avg error %.2f%% outside band", s.Name, s.AvgErr)
		}
		if s.MaxErr > 20 {
			t.Errorf("%s: max error %.2f%% outside band", s.Name, s.MaxErr)
		}
	}
}

func TestProfilingAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling-heavy; skipped with -short")
	}
	r, err := ProfilingAblation(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 8 {
		t.Fatalf("benchmarks %d", len(r.Names))
	}
	var sumS, sumI float64
	for i := range r.Names {
		sumS += r.StressErrPct[i]
		sumI += r.IdealErrPct[i]
	}
	if sumI > sumS+2 {
		t.Errorf("ideal profiling (%.2f total) worse than stressmark (%.2f)", sumI, sumS)
	}
}

func TestBaselineComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling-heavy; skipped with -short")
	}
	r, err := BaselineComparison(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Pairs != 36 {
		t.Fatalf("pairs %d", r.Pairs)
	}
	if r.OursPct >= r.FOAPct || r.OursPct >= r.SDCPct {
		t.Errorf("equilibrium model (%.2f) not ahead of FOA (%.2f) / SDC (%.2f)",
			r.OursPct, r.FOAPct, r.SDCPct)
	}
}
