package exp

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"mpmc/internal/baseline"
	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/parallel"
	"mpmc/internal/sim"
	"mpmc/internal/stats"
	"mpmc/internal/workload"
)

// SolverAblationResult compares the paper's Newton–Raphson equilibrium
// solver against the scalar-window bisection on the same instances.
type SolverAblationResult struct {
	Pairs          int
	NewtonFailures int
	MaxSizeDelta   float64       // max |S difference| between solvers, ways
	NewtonTime     time.Duration // total
	WindowTime     time.Duration
}

// Format renders the ablation.
func (r *SolverAblationResult) Format() string {
	return fmt.Sprintf(
		"Solver ablation: %d pairs; Newton failures %d; max ΔS %.4f ways; Newton %v vs window %v\n",
		r.Pairs, r.NewtonFailures, r.MaxSizeDelta, r.NewtonTime, r.WindowTime)
}

// SolverAblation runs both equilibrium solvers over every benchmark pair.
func SolverAblation(x *Context) (*SolverAblationResult, error) {
	m := machine.FourCoreServer()
	suite := workload.ModelSet()
	type pairIdx struct{ i, j int }
	var pairs []pairIdx
	for i := 0; i < len(suite); i++ {
		for j := i; j < len(suite); j++ {
			pairs = append(pairs, pairIdx{i, j})
		}
	}
	type solveOut struct {
		newtonFail       bool
		maxDelta         float64
		newtonT, windowT time.Duration
	}
	outs, err := parallel.Map(context.Background(), x.Cfg.Workers, len(pairs), func(k int) (solveOut, error) {
		i, j := pairs[k].i, pairs[k].j
		fs := []*core.FeatureVector{
			core.TruthFeature(suite[i], m),
			core.TruthFeature(suite[j], m),
		}
		var out solveOut
		t0 := time.Now()
		pn, errN := core.PredictGroup(fs, m.Assoc, core.SolverNewton)
		out.newtonT = time.Since(t0)
		t0 = time.Now()
		pw, errW := core.PredictGroup(fs, m.Assoc, core.SolverWindow)
		out.windowT = time.Since(t0)
		if errW != nil {
			return solveOut{}, fmt.Errorf("exp: window solver failed on %s+%s: %w",
				suite[i].Name, suite[j].Name, errW)
		}
		if errN != nil {
			out.newtonFail = true
			return out, nil
		}
		for k := range pw {
			if d := math.Abs(pw[k].S - pn[k].S); d > out.maxDelta {
				out.maxDelta = d
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	res := &SolverAblationResult{}
	for _, out := range outs {
		res.Pairs++
		res.NewtonTime += out.newtonT
		res.WindowTime += out.windowT
		if out.newtonFail {
			res.NewtonFailures++
			continue
		}
		if out.maxDelta > res.MaxSizeDelta {
			res.MaxSizeDelta = out.maxDelta
		}
	}
	return res, nil
}

// ProfilingAblationResult compares stressmark profiling against ideal
// way-partitioned profiling and against the analytic truth.
type ProfilingAblationResult struct {
	Machine string
	Names   []string
	// Mean absolute MPA-curve error (percentage points) per benchmark.
	StressErrPct []float64
	IdealErrPct  []float64
}

// Format renders the ablation.
func (r *ProfilingAblationResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Profiling ablation (%s): mean |MPA curve error| in points\n", r.Machine)
	fmt.Fprintf(&sb, "  %-8s %10s %10s\n", "bench", "stressmark", "ideal")
	for i, n := range r.Names {
		fmt.Fprintf(&sb, "  %-8s %10.2f %10.2f\n", n, r.StressErrPct[i], r.IdealErrPct[i])
	}
	fmt.Fprintf(&sb, "  %-8s %10.2f %10.2f\n", "Avg.",
		stats.Mean(r.StressErrPct), stats.Mean(r.IdealErrPct))
	return sb.String()
}

// ProfilingAblation quantifies how much accuracy the paper's stressmark
// procedure loses to an exact partitioner.
func ProfilingAblation(x *Context) (*ProfilingAblationResult, error) {
	m := machine.TwoCoreWorkstation()
	specs := workload.ModelSet()
	type profOut struct{ stressErr, idealErr float64 }
	outs, err := parallel.Map(context.Background(), x.Cfg.Workers, len(specs), func(k int) (profOut, error) {
		spec := specs[k]
		fs, err := x.Feature(m, spec) // stressmark (memoized)
		if err != nil {
			return profOut{}, err
		}
		opts := x.Cfg.profileOpts(x.Cfg.Seed + hash("ideal/"+spec.Name))
		opts.Method = core.ProfileIdeal
		fi, err := core.Profile(context.Background(), m, spec, opts)
		if err != nil {
			return profOut{}, err
		}
		var es, ei float64
		for s := 1; s <= m.Assoc; s++ {
			want := spec.EffectiveMPA(float64(s))
			es += math.Abs(fs.MPACurve[s] - want)
			ei += math.Abs(fi.MPACurve[s] - want)
		}
		return profOut{stressErr: 100 * es / float64(m.Assoc), idealErr: 100 * ei / float64(m.Assoc)}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &ProfilingAblationResult{Machine: m.Name}
	for k, out := range outs {
		res.Names = append(res.Names, specs[k].Name)
		res.StressErrPct = append(res.StressErrPct, out.stressErr)
		res.IdealErrPct = append(res.IdealErrPct, out.idealErr)
	}
	return res, nil
}

// PowerAblationResult quantifies the value of the L2MPS term (the
// negative coefficient the paper highlights) by refitting without it.
type PowerAblationResult struct {
	Machine     string
	FullAcc     float64
	NoMissAcc   float64 // model without the L2MPS regressor
	IdleOnlyAcc float64 // intercept-only strawman
}

// Format renders the ablation.
func (r *PowerAblationResult) Format() string {
	return fmt.Sprintf(
		"Power ablation (%s): full MVLR %.2f%%, without L2MPS %.2f%%, idle-only %.2f%%\n",
		r.Machine, r.FullAcc, r.NoMissAcc, r.IdleOnlyAcc)
}

// PowerAblation refits the power model with the miss-rate regressor
// removed and with no regressors at all.
func PowerAblation(x *Context) (*PowerAblationResult, error) {
	m := machine.FourCoreServer()
	ds, err := x.PowerDataset(m)
	if err != nil {
		return nil, err
	}
	full, err := core.FitPowerModel(ds)
	if err != nil {
		return nil, err
	}
	res := &PowerAblationResult{Machine: m.Name, FullAcc: ds.Accuracy(full.CorePower)}

	// Without L2MPS: drop feature index 2.
	reduced := make([][]float64, len(ds.Features))
	for i, f := range ds.Features {
		reduced[i] = []float64{f[0], f[1], f[3], f[4]}
	}
	fit, err := stats.FitMVLR(reduced, ds.Watts)
	if err != nil {
		return nil, err
	}
	pred := make([]float64, len(ds.Watts))
	for i, f := range reduced {
		pred[i] = fit.Predict(f)
	}
	res.NoMissAcc = stats.Accuracy(pred, ds.Watts)

	// Intercept only.
	mean := stats.Mean(ds.Watts)
	for i := range pred {
		pred[i] = mean
	}
	res.IdleOnlyAcc = stats.Accuracy(pred, ds.Watts)
	return res, nil
}

// BaselineComparisonResult compares the paper's equilibrium model against
// the Chandra FOA and SDC baselines on measured pairwise co-runs.
type BaselineComparisonResult struct {
	Machine string
	Pairs   int
	// Mean absolute MPA error (percentage points).
	OursPct, FOAPct, SDCPct, ProbPct float64
}

// Format renders the comparison.
func (r *BaselineComparisonResult) Format() string {
	return fmt.Sprintf(
		"Baseline comparison (%s, %d pairs): mean |MPA err| ours %.2f, FOA %.2f, SDC %.2f, Prob %.2f points\n",
		r.Machine, r.Pairs, r.OursPct, r.FOAPct, r.SDCPct, r.ProbPct)
}

// BaselineComparison runs all pairwise co-runs on the workstation and
// scores the three contention models against measurement.
func BaselineComparison(x *Context) (*BaselineComparisonResult, error) {
	m := machine.TwoCoreWorkstation()
	suite := workload.ModelSet()
	features, err := x.Features(m, suite)
	if err != nil {
		return nil, err
	}
	res := &BaselineComparisonResult{Machine: m.Name}
	seed := x.Cfg.Seed + hash("baselinecmp")
	type pairIdx struct{ i, j int }
	var pairs []pairIdx
	for i := 0; i < len(suite); i++ {
		for j := i; j < len(suite); j++ {
			pairs = append(pairs, pairIdx{i, j})
		}
	}
	// Each task returns the per-process error terms rather than a local
	// sum, so the serial merge below accumulates them in exactly the
	// order the serial loop did (floating-point addition order matters
	// for bit-identical output).
	type cmpOut struct {
		ours, foa, sdc, prob [2]float64
	}
	outs, err := parallel.Map(context.Background(), x.Cfg.Workers, len(pairs), func(k int) (cmpOut, error) {
		i, j := pairs[k].i, pairs[k].j
		fs := []*core.FeatureVector{features[i], features[j]}
		ours, err := core.PredictGroup(fs, m.Assoc, core.SolverAuto)
		if err != nil {
			return cmpOut{}, err
		}
		foa, err := baseline.FOA(fs, m.Assoc)
		if err != nil {
			return cmpOut{}, err
		}
		sdc, err := baseline.SDC(fs, m.Assoc)
		if err != nil {
			return cmpOut{}, err
		}
		prob, err := baseline.Prob(fs, m.Assoc)
		if err != nil {
			return cmpOut{}, err
		}
		run, err := sim.Run(m, sim.Single(suite[i], suite[j]), x.Cfg.corunOpts(seed+uint64(k)+1))
		if err != nil {
			return cmpOut{}, err
		}
		var out cmpOut
		for k := range fs {
			meas := run.Procs[k].MPA()
			out.ours[k] = 100 * math.Abs(ours[k].MPA-meas)
			out.foa[k] = 100 * math.Abs(foa[k].MPA-meas)
			out.sdc[k] = 100 * math.Abs(sdc[k].MPA-meas)
			out.prob[k] = 100 * math.Abs(prob[k].MPA-meas)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var n int
	for _, out := range outs {
		res.Pairs++
		for k := 0; k < 2; k++ {
			res.OursPct += out.ours[k]
			res.FOAPct += out.foa[k]
			res.SDCPct += out.sdc[k]
			res.ProbPct += out.prob[k]
			n++
		}
	}
	res.OursPct /= float64(n)
	res.FOAPct /= float64(n)
	res.SDCPct /= float64(n)
	res.ProbPct /= float64(n)
	return res, nil
}
