package exp

import (
	"context"
	"fmt"
	"strings"

	"mpmc/internal/fleet"
)

// PowerCapArm is one (budget, policy) cell of the power-cap study.
type PowerCapArm struct {
	Policy   string
	AvgSPI   float64
	AvgWatts float64
	EnergyJ  float64
	// EDP is the energy-delay product proxy AvgSPI·EnergyJ — the objective
	// the least-energy policy optimizes per placement.
	EDP         float64
	Downclocks  uint64
	Migrations  uint64
	Unsatisfied uint64
	// Pareto marks arms on the study-wide (AvgSPI, EnergyJ) front: no
	// other arm is at least as good on both axes and better on one.
	Pareto bool
}

// PowerCapRow is one watt budget's outcome across policies.
type PowerCapRow struct {
	Cap  float64
	Arms []PowerCapArm
}

// PowerCapResult is the budget sweep: the same arrival trace replayed
// under each (cap, policy) pair.
type PowerCapResult struct {
	Machines  int
	Processes int
	Rows      []PowerCapRow
}

// Format renders one line per (cap, policy) arm with the front marked.
func (r *PowerCapResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Power-cap study (%d machines, %d arrivals per arm):\n", r.Machines, r.Processes)
	b.WriteString("cap_w    policy              avg-SPI      energy-J     EDP          clk  mig  unsat  front\n")
	for _, row := range r.Rows {
		for _, a := range row.Arms {
			front := ""
			if a.Pareto {
				front = "*"
			}
			fmt.Fprintf(&b, "%-8.4f %-19s %-12.3e %-12.6g %-12.4g %-4d %-4d %-6d %s\n",
				row.Cap, a.Policy, a.AvgSPI, a.EnergyJ, a.EDP,
				a.Downclocks, a.Migrations, a.Unsatisfied, front)
		}
	}
	return b.String()
}

// powerCapScenario builds the per-budget scenario: the fleet loads up
// uncapped, then the budget engages at t=6 — forcing one enforcement
// pass (down-clocks and migrations) and gating every later admission.
// Every budget uses the SAME seed, so the arrival trace is identical
// across rows and only the watt budget moves.
func powerCapScenario(x *Context, cap float64) *fleet.Scenario {
	processes := 24
	if x.Cfg.Quick {
		processes = 12
	}
	sc := &fleet.Scenario{
		Seed: x.Cfg.Seed + hash("powercap"),
		Machines: []fleet.ScenarioMachine{
			{Name: "m0", Preset: "workstation", MaxPerCore: 2},
			{Name: "m1", Preset: "workstation", MaxPerCore: 2},
			{Name: "m2", Preset: "laptop", MaxPerCore: 2},
		},
		Policies:         []string{"least-degradation", "least-energy", "cap-aware"},
		Processes:        processes,
		Workloads:        []string{"gzip", "mcf", "art", "equake"},
		MeanInterarrival: 0.8,
		MeanLifetime:     12.0,
		QueueCap:         4,
	}
	if cap > 0 {
		sc.CapEvents = []fleet.CapEvent{{Time: 6, Watts: cap}}
	}
	return sc
}

// powerCapBudgets slices the fleet's dynamic band: its idle floor is
// exactly 30 W (static power dominates the synthetic models) and its
// fully loaded draw ≈ 30.003 W, so budgets a few milliwatts above the
// floor are what separates generous from tight.
var powerCapBudgets = []float64{30.0030, 30.0022, 30.0014, 30.0008}

// PowerCapStudy sweeps the fleet watt budget and replays one arrival
// trace under the cap-blind least-degradation baseline, the EDP-greedy
// least-energy policy, and the headroom-aware cap-aware policy. The
// expectation: tightening the budget trades performance (higher SPI) for
// energy on every policy, and the frequency-aware policies populate the
// low-energy end of the Pareto front the baseline cannot reach.
func PowerCapStudy(x *Context) (*PowerCapResult, error) {
	res := &PowerCapResult{Machines: 3}
	for _, cap := range powerCapBudgets {
		sc := powerCapScenario(x, cap)
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		res.Processes = sc.Processes
		rep, err := fleet.NewSim(sc, x.Cfg.Workers).Run(context.Background())
		if err != nil {
			return nil, fmt.Errorf("cap %v: %w", cap, err)
		}
		row := PowerCapRow{Cap: cap}
		for _, pr := range rep.Policies {
			row.Arms = append(row.Arms, PowerCapArm{
				Policy:      pr.Policy,
				AvgSPI:      pr.AvgSPI,
				AvgWatts:    pr.AvgWatts,
				EnergyJ:     pr.EnergyJ,
				EDP:         pr.AvgSPI * pr.EnergyJ,
				Downclocks:  pr.CapDownclocks,
				Migrations:  pr.CapMigrations,
				Unsatisfied: pr.CapUnsatisfied,
			})
		}
		res.Rows = append(res.Rows, row)
	}
	markPareto(res)
	return res, nil
}

// markPareto flags every arm not dominated on (AvgSPI, EnergyJ) by any
// other arm in the sweep (dominated: the other is ≤ on both axes and <
// on at least one).
func markPareto(res *PowerCapResult) {
	type cell struct{ spi, e float64 }
	var all []cell
	for _, row := range res.Rows {
		for _, a := range row.Arms {
			all = append(all, cell{a.AvgSPI, a.EnergyJ})
		}
	}
	for i := range res.Rows {
		for j := range res.Rows[i].Arms {
			a := &res.Rows[i].Arms[j]
			dominated := false
			for _, c := range all {
				if c.spi <= a.AvgSPI && c.e <= a.EnergyJ &&
					(c.spi < a.AvgSPI || c.e < a.EnergyJ) {
					dominated = true
					break
				}
			}
			a.Pareto = !dominated
		}
	}
}
