package exp

import (
	"fmt"
	"math"

	"mpmc/internal/cache"
	"mpmc/internal/core"
	"mpmc/internal/hist"
	"mpmc/internal/machine"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
)

// AssumptionResult quantifies model error when the paper's two main
// modeling assumptions are violated (Section 3.1): true-LRU replacement
// and single-phased processes.
type AssumptionResult struct {
	Machine string
	// Mean absolute MPA error (percentage points) across the probe pairs
	// under each condition.
	LRUErrPct        float64 // baseline: assumptions hold
	PLRUErrPct       float64 // pseudo-LRU replacement (real Core 2 behaviour)
	MultiPhaseErrPct float64 // a two-phase process modeled as single-phase
}

// Format renders the study.
func (r *AssumptionResult) Format() string {
	return fmt.Sprintf(
		"Assumption study (%s): mean |MPA err| LRU %.2f pts; PLRU %.2f pts; multi-phase %.2f pts\n",
		r.Machine, r.LRUErrPct, r.PLRUErrPct, r.MultiPhaseErrPct)
}

// twoPhaseProbe builds a deliberately phase-alternating process: a small
// hot working set in one phase, a broad one in the other. Reuse holds the
// access-weighted mixture — what a single-phase profiler would recover.
func twoPhaseProbe() *workload.Spec {
	small := hist.MustNew([]float64{0.55, 0.25, 0.12}, 0.08)
	broad := hist.MustNew([]float64{
		0.06, 0.06, 0.06, 0.06, 0.06, 0.06, 0.06, 0.06,
		0.06, 0.06, 0.06, 0.06}, 0.28)
	// Equal access counts per phase → mixture is the plain average.
	maxD := broad.MaxDistance()
	weights := make([]float64, maxD)
	for d := 1; d <= maxD; d++ {
		weights[d-1] = 0.5*small.P(d) + 0.5*broad.P(d)
	}
	mix := hist.MustNew(weights, 0.5*small.Overflow()+0.5*broad.Overflow())
	s := &workload.Spec{
		Name:         "twophase",
		Reuse:        mix,
		FootprintCap: 48,
		L2RPI:        0.03, L1RPI: 0.45, BRPI: 0.15, FPPI: 0.05,
		BaseSPI: 1.0e-6,
		Phases: []workload.PhaseSpec{
			{Reuse: small, Accesses: 40000},
			{Reuse: broad, Accesses: 40000},
		},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// AssumptionStudy runs the probe pairs under (a) the modeled conditions,
// (b) PLRU replacement, and (c) with a two-phase process in the mix, and
// reports how much the prediction error grows. The paper's position: the
// model is built on LRU and single-phase assumptions but degrades
// gracefully when they are bent.
func AssumptionStudy(x *Context) (*AssumptionResult, error) {
	base := machine.TwoCoreWorkstation()
	res := &AssumptionResult{Machine: base.Name}
	pairs := [][2]string{{"mcf", "twolf"}, {"art", "vpr"}, {"ammp", "bzip2"}}
	seed := x.Cfg.Seed + hash("assumptions")

	run := func(m *machine.Machine, a, b *workload.Spec, fa, fb *core.FeatureVector, s uint64) (float64, error) {
		preds, err := core.PredictGroup([]*core.FeatureVector{fa, fb}, m.Assoc, core.SolverAuto)
		if err != nil {
			return 0, err
		}
		r, err := sim.Run(m, sim.Single(a, b), x.Cfg.corunOpts(s))
		if err != nil {
			return 0, err
		}
		e := math.Abs(preds[0].MPA-r.Procs[0].MPA()) + math.Abs(preds[1].MPA-r.Procs[1].MPA())
		return e / 2, nil
	}

	// (a) LRU baseline and (b) PLRU, same pairs and features.
	plru := *base
	plru.Policy = cache.PLRU
	var lruSum, plruSum float64
	for _, p := range pairs {
		a, b := workload.ByName(p[0]), workload.ByName(p[1])
		fa, fb := core.TruthFeature(a, base), core.TruthFeature(b, base)
		seed++
		e, err := run(base, a, b, fa, fb, seed)
		if err != nil {
			return nil, err
		}
		lruSum += e
		seed++
		e, err = run(&plru, a, b, fa, fb, seed)
		if err != nil {
			return nil, err
		}
		plruSum += e
	}
	res.LRUErrPct = 100 * lruSum / float64(len(pairs))
	res.PLRUErrPct = 100 * plruSum / float64(len(pairs))

	// (c) Multi-phase probe against each partner, modeled by its
	// single-phase mixture histogram.
	probe := twoPhaseProbe()
	fProbe := core.TruthFeature(probe, base)
	var mpSum float64
	partners := []string{"twolf", "vpr", "bzip2"}
	for _, name := range partners {
		b := workload.ByName(name)
		fb := core.TruthFeature(b, base)
		seed++
		e, err := run(base, probe, b, fProbe, fb, seed)
		if err != nil {
			return nil, err
		}
		mpSum += e
	}
	res.MultiPhaseErrPct = 100 * mpSum / float64(len(partners))
	return res, nil
}
