// Package exp contains one driver per table and figure of the paper's
// evaluation (Section 6), plus the in-text studies and the design-choice
// ablations listed in DESIGN.md. Each driver returns a result struct with
// a Format method that prints rows in the shape the paper reports.
//
// Experiment IDs (see DESIGN.md §4):
//
//	E1 Table 1    performance model, 4-core server, 36 pairs
//	E2 Sec. 6.2   performance model, 2-core laptop, 55 pairs
//	E3 Figure 2   power traces, max/min-power assignments
//	E4 Table 2    power model, 2-core workstation
//	E5 Table 3    power model, 4-core server
//	E6 Table 4    combined model, 4-core server
//	E7 Sec. 3.1   prefetching study
//	E8 Sec. 4.1   MVLR vs NN accuracy
//	E9 Sec. 4.2   context-switch refill cost
//	E10 Sec. 3.1  assumption-violation study (PLRU, multi-phase)
//
// plus the DESIGN.md §6 ablations (solver, profiling, power-term,
// baselines) and the extension studies: geometry sensitivity, complexity
// scaling, heterogeneous cores, and seed stability.
package exp

import (
	"context"
	"fmt"
	"sync"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/parallel"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
)

// Config scales the experiment suite.
type Config struct {
	// Quick shortens run durations for tests and smoke runs; the full
	// setting is used for the recorded EXPERIMENTS.md numbers.
	Quick bool
	// Seed drives all randomness (profiling runs, assignment selection,
	// measurement noise).
	Seed uint64
	// Workers bounds how many independent runs the drivers execute
	// concurrently (<= 0 selects GOMAXPROCS). Every run's seed is a pure
	// function of its task index, and partial results are merged in index
	// order, so every driver's output is bit-identical at any worker
	// count.
	Workers int
}

// Durations per run type.
func (c Config) profileOpts(seed uint64) core.ProfileOptions {
	if c.Quick {
		return core.ProfileOptions{Warmup: 1.5, Duration: 3, Seed: seed, Workers: c.Workers}
	}
	return core.ProfileOptions{Warmup: 3, Duration: 6, Seed: seed, Workers: c.Workers}
}

func (c Config) corunOpts(seed uint64) sim.Options {
	if c.Quick {
		return sim.Options{Warmup: 2, Duration: 4, Seed: seed}
	}
	return sim.Options{Warmup: 3, Duration: 8, Seed: seed}
}

func (c Config) trainOpts(seed uint64) core.PowerTrainOptions {
	if c.Quick {
		return core.PowerTrainOptions{Warmup: 1, Duration: 3, Seed: seed, MicrobenchWindows: 6, Workers: c.Workers}
	}
	return core.PowerTrainOptions{Warmup: 2, Duration: 8, Seed: seed, Workers: c.Workers}
}

// Context memoizes the expensive shared artifacts — stressmark profiles
// and trained power models — across experiments, the way a lab would
// profile each benchmark once per machine. Safe for concurrent use.
type Context struct {
	Cfg Config

	mu       sync.Mutex
	profiles map[string]*core.FeatureVector
	models   map[string]*core.PowerModel
	datasets map[string]*core.PowerDataset
}

// NewContext builds an empty experiment context.
func NewContext(cfg Config) *Context {
	return &Context{
		Cfg:      cfg,
		profiles: map[string]*core.FeatureVector{},
		models:   map[string]*core.PowerModel{},
		datasets: map[string]*core.PowerDataset{},
	}
}

// Feature profiles one benchmark on one machine (memoized).
func (x *Context) Feature(m *machine.Machine, spec *workload.Spec) (*core.FeatureVector, error) {
	key := m.Name + "/" + spec.Name
	x.mu.Lock()
	f, ok := x.profiles[key]
	x.mu.Unlock()
	if ok {
		return f, nil
	}
	f, err := core.Profile(context.Background(), m, spec, x.Cfg.profileOpts(x.Cfg.Seed+hash(key)))
	if err != nil {
		return nil, err
	}
	x.mu.Lock()
	x.profiles[key] = f
	x.mu.Unlock()
	return f, nil
}

// Features profiles a benchmark list (memoized per entry). Unprofiled
// entries run concurrently; each profile's seed depends only on its
// machine/benchmark key, so the vectors are identical to serial profiling.
func (x *Context) Features(m *machine.Machine, specs []*workload.Spec) ([]*core.FeatureVector, error) {
	return parallel.Map(context.Background(), x.Cfg.Workers, len(specs), func(i int) (*core.FeatureVector, error) {
		return x.Feature(m, specs[i])
	})
}

// PowerDataset collects (memoized) the Section 4.1 training data.
func (x *Context) PowerDataset(m *machine.Machine) (*core.PowerDataset, error) {
	x.mu.Lock()
	ds, ok := x.datasets[m.Name]
	x.mu.Unlock()
	if ok {
		return ds, nil
	}
	ds, err := core.CollectPowerDataset(context.Background(), m, workload.ModelSet(), x.Cfg.trainOpts(x.Cfg.Seed+hash(m.Name)))
	if err != nil {
		return nil, err
	}
	x.mu.Lock()
	x.datasets[m.Name] = ds
	x.mu.Unlock()
	return ds, nil
}

// PowerModel trains (memoized) the MVLR power model for a machine.
func (x *Context) PowerModel(m *machine.Machine) (*core.PowerModel, error) {
	x.mu.Lock()
	pm, ok := x.models[m.Name]
	x.mu.Unlock()
	if ok {
		return pm, nil
	}
	ds, err := x.PowerDataset(m)
	if err != nil {
		return nil, err
	}
	pm, err = core.FitPowerModel(ds)
	if err != nil {
		return nil, err
	}
	x.mu.Lock()
	x.models[m.Name] = pm
	x.mu.Unlock()
	return pm, nil
}

// hash gives a stable per-key seed offset.
func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// specAssignment converts a per-core spec layout into a sim assignment.
func specAssignment(m *machine.Machine, procs [][]*workload.Spec) sim.Assignment {
	asg := sim.Assignment{Procs: make([][]*workload.Spec, m.NumCores)}
	copy(asg.Procs, procs)
	return asg
}

func fmtPct(v float64) string { return fmt.Sprintf("%.2f", v) }
