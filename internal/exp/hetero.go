package exp

import (
	"fmt"
	"math"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
)

// HeteroResult quantifies the paper's contribution-(4) claim: the models
// accommodate heterogeneous processors. Probe pairs co-run on a
// big.LITTLE-style workstation (core 1 at 60% compute speed); predictions
// use the Eq. 3 β-rescaling adjustment, against both the measurement and
// the naive homogeneous prediction.
type HeteroResult struct {
	Machine string
	Pairs   int
	// Mean relative SPI error (%) of the slow-core process.
	AdjustedErrPct float64
	NaiveErrPct    float64
	// Mean absolute MPA error (points), adjusted prediction.
	MPAErrPct float64
}

// Format renders the study.
func (r *HeteroResult) Format() string {
	return fmt.Sprintf(
		"Heterogeneous-core study (%s, %d pairs): slow-core SPI err %.2f%% adjusted vs %.2f%% naive; MPA err %.2f pts\n",
		r.Machine, r.Pairs, r.AdjustedErrPct, r.NaiveErrPct, r.MPAErrPct)
}

// HeteroStudy runs the heterogeneous validation.
func HeteroStudy(x *Context) (*HeteroResult, error) {
	homo := machine.TwoCoreWorkstation()
	m := machine.TwoCoreWorkstation()
	m.CoreSpeed = []float64{1.0, 0.6}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	pairs := [][2]string{{"twolf", "art"}, {"gzip", "mcf"}, {"vpr", "ammp"}, {"bzip2", "equake"}}
	res := &HeteroResult{Machine: m.Name + "+60%-core"}
	seed := x.Cfg.Seed + hash("hetero")
	var adjSum, naiveSum, mpaSum float64
	for _, pair := range pairs {
		a, b := workload.ByName(pair[0]), workload.ByName(pair[1])
		fa, fb := core.TruthFeature(a, homo), core.TruthFeature(b, homo)
		adj, err := core.PredictGroupOnCores(
			[]*core.FeatureVector{fa, fb}, []float64{1.0, 0.6}, m.Assoc, core.SolverAuto)
		if err != nil {
			return nil, err
		}
		naive, err := core.PredictGroup([]*core.FeatureVector{fa, fb}, m.Assoc, core.SolverAuto)
		if err != nil {
			return nil, err
		}
		seed++
		run, err := sim.Run(m, sim.Single(a, b), x.Cfg.corunOpts(seed))
		if err != nil {
			return nil, err
		}
		meas := run.Procs[1] // the slow-core process
		adjSum += math.Abs(adj[1].SPI-meas.SPI()) / meas.SPI()
		naiveSum += math.Abs(naive[1].SPI-meas.SPI()) / meas.SPI()
		mpaSum += math.Abs(adj[1].MPA - meas.MPA())
		res.Pairs++
	}
	res.AdjustedErrPct = 100 * adjSum / float64(res.Pairs)
	res.NaiveErrPct = 100 * naiveSum / float64(res.Pairs)
	res.MPAErrPct = 100 * mpaSum / float64(res.Pairs)
	return res, nil
}
