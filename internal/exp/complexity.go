package exp

import (
	"fmt"
	"strings"
	"time"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/workload"
)

// ComplexityResult quantifies the paper's headline complexity claim
// (Section 3.4): k feature vectors — O(k·A) profiling runs — suffice to
// predict any of the 2^k − 1 non-empty process subsets, whereas a
// measurement-based approach must execute every combination. On hardware
// every run costs the same wall time (an application must reach steady
// state), so the comparison is in run counts; the per-decision cost at
// runtime is a model prediction (microseconds) versus a measurement run
// (minutes).
type ComplexityResult struct {
	Assoc int
	// Rows for k = 4, 8, 12, 16.
	Ks            []int
	ProfilingRuns []int // k·A
	Combinations  []int // 2^k − 1
	// PredictTime is the measured wall time of one equilibrium
	// prediction on warmed growth tables.
	PredictTime time.Duration
}

// Format renders the scaling table.
func (r *ComplexityResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Complexity: runs needed to cover every subset of k processes (A=%d)\n", r.Assoc)
	fmt.Fprintf(&sb, "  %4s %18s %22s %10s\n", "k", "model (k·A runs)", "brute force (2^k−1)", "advantage")
	for i, k := range r.Ks {
		fmt.Fprintf(&sb, "  %4d %18d %22d %9.1f×\n",
			k, r.ProfilingRuns[i], r.Combinations[i],
			float64(r.Combinations[i])/float64(r.ProfilingRuns[i]))
	}
	fmt.Fprintf(&sb, "  per runtime decision: one prediction (%v) replaces one measurement run\n",
		r.PredictTime.Round(time.Microsecond))
	return sb.String()
}

// ComplexityStudy builds the scaling table and times one prediction.
func ComplexityStudy(x *Context) (*ComplexityResult, error) {
	m := machine.FourCoreServer()
	res := &ComplexityResult{Assoc: m.Assoc}
	for _, k := range []int{4, 8, 12, 16} {
		res.Ks = append(res.Ks, k)
		res.ProfilingRuns = append(res.ProfilingRuns, k*m.Assoc)
		res.Combinations = append(res.Combinations, 1<<k-1)
	}
	fa := core.TruthFeature(workload.ByName("twolf"), m)
	fb := core.TruthFeature(workload.ByName("mcf"), m)
	if _, err := core.PredictGroup([]*core.FeatureVector{fa, fb}, m.Assoc, core.SolverAuto); err != nil {
		return nil, err
	}
	t0 := time.Now()
	const reps = 50
	for i := 0; i < reps; i++ {
		if _, err := core.PredictGroup([]*core.FeatureVector{fa, fb}, m.Assoc, core.SolverAuto); err != nil {
			return nil, err
		}
	}
	res.PredictTime = time.Since(t0) / reps
	return res, nil
}
