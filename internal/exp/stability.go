package exp

import (
	"context"
	"fmt"
	"math"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/parallel"
	"mpmc/internal/sim"
	"mpmc/internal/stats"
	"mpmc/internal/workload"
)

// StabilityResult reports how much the headline validation numbers move
// across seeds — the check a reviewer asks for when a reproduction quotes
// a single deterministic run. Each seed re-draws every random stream:
// generator interleavings, oracle noise, sensor noise.
type StabilityResult struct {
	Seeds []uint64
	// Per-seed mean absolute MPA error (points) over the probe pairs.
	MPAErrPct []float64
	Mean, Std float64
}

// Format renders the spread.
func (r *StabilityResult) Format() string {
	s := "Seed stability: mean |MPA err| of the probe pairs per seed\n"
	for i, seed := range r.Seeds {
		s += fmt.Sprintf("  seed %-6d %6.2f pts\n", seed, r.MPAErrPct[i])
	}
	s += fmt.Sprintf("  mean %.2f ± %.2f pts across seeds\n", r.Mean, r.Std)
	return s
}

// SeedStability re-runs a fixed probe set (truth features, so the spread
// is pure measurement randomness) under several seeds.
func SeedStability(x *Context) (*StabilityResult, error) {
	m := machine.TwoCoreWorkstation()
	pairs := [][2]string{{"mcf", "twolf"}, {"art", "vpr"}, {"ammp", "bzip2"}, {"equake", "gzip"}}
	seedOffs := []uint64{0, 101, 202, 303, 404}
	res := &StabilityResult{}
	// Flatten the seed × pair grid and fan out; per-seed sums are rebuilt
	// from per-process terms in the serial accumulation order.
	outs, err := parallel.Map(context.Background(), x.Cfg.Workers, len(seedOffs)*len(pairs), func(k int) ([2]float64, error) {
		seed := x.Cfg.Seed + seedOffs[k/len(pairs)]
		pi := k % len(pairs)
		pair := pairs[pi]
		a, b := workload.ByName(pair[0]), workload.ByName(pair[1])
		fs := []*core.FeatureVector{core.TruthFeature(a, m), core.TruthFeature(b, m)}
		preds, err := core.PredictGroup(fs, m.Assoc, core.SolverAuto)
		if err != nil {
			return [2]float64{}, err
		}
		run, err := sim.Run(m, sim.Single(a, b), x.Cfg.corunOpts(seed+uint64(pi)*7))
		if err != nil {
			return [2]float64{}, err
		}
		var out [2]float64
		for i := range fs {
			out[i] = math.Abs(preds[i].MPA - run.Procs[i].MPA())
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for si, seedOff := range seedOffs {
		res.Seeds = append(res.Seeds, x.Cfg.Seed+seedOff)
		var sum float64
		var n int
		for pi := range pairs {
			for i := 0; i < 2; i++ {
				sum += outs[si*len(pairs)+pi][i]
				n++
			}
		}
		res.MPAErrPct = append(res.MPAErrPct, 100*sum/float64(n))
	}
	res.Mean = stats.Mean(res.MPAErrPct)
	res.Std = stats.StdDev(res.MPAErrPct)
	return res, nil
}
