package exp

import (
	"strings"
	"testing"
)

// TestPowerCapStudyLaws is the study's acceptance criterion: the budget
// sweep must actually engage enforcement (down-clocks or migrations on
// every arm once the cap binds), the generous budget must be satisfiable,
// the EDP-greedy least-energy policy must beat the cap-blind baseline on
// EDP at every budget, and the marked Pareto front must be exactly the
// non-dominated arms.
func TestPowerCapStudyLaws(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps in -short")
	}
	x := NewContext(Config{Quick: true, Seed: 42, Workers: 0})
	r, err := PowerCapStudy(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(powerCapBudgets) {
		t.Fatalf("expected %d rows, got %d", len(powerCapBudgets), len(r.Rows))
	}
	var all []PowerCapArm
	for ri, row := range r.Rows {
		if len(row.Arms) != 3 {
			t.Fatalf("row %d: expected 3 policy arms, got %d", ri, len(row.Arms))
		}
		byPolicy := map[string]PowerCapArm{}
		for _, a := range row.Arms {
			byPolicy[a.Policy] = a
			all = append(all, a)
			if a.EnergyJ <= 0 {
				t.Errorf("cap %v %s: no energy integrated", row.Cap, a.Policy)
			}
			if a.Downclocks+a.Migrations == 0 {
				t.Errorf("cap %v %s: enforcement never acted", row.Cap, a.Policy)
			}
		}
		le, ld := byPolicy["least-energy"], byPolicy["least-degradation"]
		if le.EDP >= ld.EDP {
			t.Errorf("cap %v: least-energy EDP %v not below least-degradation %v",
				row.Cap, le.EDP, ld.EDP)
		}
		if ri == 0 && le.Unsatisfied+ld.Unsatisfied+byPolicy["cap-aware"].Unsatisfied != 0 {
			t.Errorf("generous budget %v reported unsatisfiable enforcement", row.Cap)
		}
	}
	// The front marking must be exactly the non-dominated set.
	front := 0
	for _, a := range all {
		dominated := false
		for _, b := range all {
			if b.AvgSPI <= a.AvgSPI && b.EnergyJ <= a.EnergyJ &&
				(b.AvgSPI < a.AvgSPI || b.EnergyJ < a.EnergyJ) {
				dominated = true
				break
			}
		}
		if a.Pareto == dominated {
			t.Errorf("%s at spi=%v energy=%v: pareto=%v but dominated=%v",
				a.Policy, a.AvgSPI, a.EnergyJ, a.Pareto, dominated)
		}
		if a.Pareto {
			front++
		}
	}
	if front == 0 {
		t.Error("empty Pareto front")
	}
}

// TestMarkParetoAndFormat is the short-lane unit cover for the study's
// pure pieces: front marking on a hand-built sweep (incl. the tie rule:
// equal points dominate nothing, both stay on the front) and the Format
// row shape.
func TestMarkParetoAndFormat(t *testing.T) {
	res := &PowerCapResult{
		Machines:  3,
		Processes: 12,
		Rows: []PowerCapRow{
			{Cap: 30.003, Arms: []PowerCapArm{
				{Policy: "least-degradation", AvgSPI: 2, EnergyJ: 1, EDP: 2},
				{Policy: "least-energy", AvgSPI: 1, EnergyJ: 2, EDP: 2},
			}},
			{Cap: 30.001, Arms: []PowerCapArm{
				{Policy: "least-degradation", AvgSPI: 2, EnergyJ: 2, EDP: 4}, // dominated by (2,1)
				{Policy: "least-energy", AvgSPI: 1, EnergyJ: 2, EDP: 2},      // tie with row 0: both stay
			}},
		},
	}
	markPareto(res)
	want := []bool{true, true, false, true}
	i := 0
	for _, row := range res.Rows {
		for _, a := range row.Arms {
			if a.Pareto != want[i] {
				t.Errorf("arm %d (%s cap %v): pareto %v, want %v", i, a.Policy, row.Cap, a.Pareto, want[i])
			}
			i++
		}
	}

	out := res.Format()
	if !strings.Contains(out, "3 machines, 12 arrivals") {
		t.Fatalf("header missing from:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+4 {
		t.Fatalf("expected 2 header + 4 arm lines, got %d:\n%s", len(lines), out)
	}
	starred := 0
	for _, l := range lines[2:] {
		if strings.HasSuffix(l, "*") {
			starred++
		}
	}
	if starred != 3 {
		t.Fatalf("expected 3 front markers, got %d:\n%s", starred, out)
	}
}

// TestPowerCapScenarioShape pins the sweep's controlled-variable design:
// every budget replays the identical seed and trace, only the cap event
// moves, and cap 0 means a genuinely uncapped scenario (no event at all,
// preserving the legacy report surface).
func TestPowerCapScenarioShape(t *testing.T) {
	x := NewContext(Config{Quick: true, Seed: 42})
	a, b := powerCapScenario(x, 30.003), powerCapScenario(x, 30.0008)
	if a.Seed != b.Seed || a.Processes != b.Processes {
		t.Fatalf("budgets drew different traces: %+v vs %+v", a, b)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.CapEvents) != 1 || a.CapEvents[0].Watts != 30.003 || a.CapEvents[0].Time <= 0 {
		t.Fatalf("cap event %+v", a.CapEvents)
	}
	if free := powerCapScenario(x, 0); free.PowerCap != 0 || len(free.CapEvents) != 0 {
		t.Fatalf("cap 0 scenario still capped: %+v", free)
	}
	if len(a.Policies) != 3 {
		t.Fatalf("policies %v", a.Policies)
	}
}
