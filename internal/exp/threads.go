package exp

import (
	"context"
	"fmt"
	"strings"

	"mpmc/internal/fleet"
)

// ThreadsRow is one sharing-fraction point of the thread-group placement
// study: the time-weighted fleet SPI under each placement arm for the
// same arrival trace.
type ThreadsRow struct {
	SharedFrac float64
	// ColocateSPI / SpreadSPI are the sharer-aware arms; ObliviousSPI is
	// the legacy least-degradation policy placing every member as an
	// independent process (no shared-footprint or coherence modeling).
	ColocateSPI  float64
	SpreadSPI    float64
	ObliviousSPI float64
}

// ThreadsResult is the co-locate vs. spread vs. oblivious study across
// sharing fractions.
type ThreadsResult struct {
	Machines  int
	Processes int
	Rows      []ThreadsRow
}

// Format renders one row per sharing fraction plus the headline: which
// arm wins at each extreme.
func (r *ThreadsResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Thread-group placement study (%d machines, %d group arrivals per arm):\n",
		r.Machines, r.Processes)
	b.WriteString("shared_frac  colocate-SPI  spread-SPI    oblivious-SPI  winner\n")
	for _, row := range r.Rows {
		winner := "colocate"
		if row.SpreadSPI < row.ColocateSPI {
			winner = "spread"
		}
		fmt.Fprintf(&b, "%-12.2f %-13.3e %-13.3e %-14.3e %s\n",
			row.SharedFrac, row.ColocateSPI, row.SpreadSPI, row.ObliviousSPI, winner)
	}
	return b.String()
}

// threadsScenario builds the per-σ scenario. Every σ uses the SAME seed,
// so the arrival trace (timing, workloads, group sizes) is identical
// across rows and only the sharing fraction moves.
func threadsScenario(x *Context, sharedFrac float64) *fleet.Scenario {
	processes := 24
	if x.Cfg.Quick {
		processes = 12
	}
	return &fleet.Scenario{
		Seed: x.Cfg.Seed + hash("threads"),
		Machines: []fleet.ScenarioMachine{
			{Name: "m0", Preset: "server", MaxPerCore: 2},
			{Name: "m1", Preset: "server", MaxPerCore: 2},
		},
		Policies:         []string{"colocate-sharers", "spread-sharers", "least-degradation"},
		Processes:        processes,
		Workloads:        []string{"gzip", "vpr", "twolf", "bzip2", "ammp"},
		MeanInterarrival: 1.0,
		MeanLifetime:     8.0,
		ThreadGroups: &fleet.ThreadGroupConfig{
			MaxThreads:  4,
			SharedFracs: []float64{sharedFrac},
			WriteFrac:   0.5,
		},
	}
}

// ThreadsStudy sweeps the sharing fraction and replays one arrival trace
// under the two sharer-aware policies and the group-oblivious baseline.
// The model's prediction: at high sharing, co-locating members merges
// their shared footprint into one occupancy and avoids coherence misses,
// so colocate wins; with nothing shared, co-location only dilates every
// private reuse distance by the member count, so spreading wins.
func ThreadsStudy(x *Context) (*ThreadsResult, error) {
	res := &ThreadsResult{Machines: 2}
	for _, sf := range []float64{0, 0.25, 0.5, 0.9} {
		sc := threadsScenario(x, sf)
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		res.Processes = sc.Processes
		rep, err := fleet.NewSim(sc, x.Cfg.Workers).Run(context.Background())
		if err != nil {
			return nil, fmt.Errorf("shared_frac %v: %w", sf, err)
		}
		row := ThreadsRow{SharedFrac: sf}
		for _, pr := range rep.Policies {
			switch pr.Policy {
			case "colocate-sharers":
				row.ColocateSPI = pr.AvgSPI
			case "spread-sharers":
				row.SpreadSPI = pr.AvgSPI
			case "least-degradation":
				row.ObliviousSPI = pr.AvgSPI
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
