package exp

import "testing"

// TestThreadsStudyCrossover is the study's acceptance criterion: with
// nothing shared, co-locating members only dilates their private reuse
// distances, so spreading must win; at 90% sharing the merged footprint
// and absent coherence misses must flip the order. The oblivious arm
// models no sharing at all, so its SPI must not move with σ.
func TestThreadsStudyCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps in -short")
	}
	x := NewContext(Config{Quick: true, Seed: 42, Workers: 0})
	r, err := ThreadsStudy(x)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[float64]ThreadsRow{}
	for _, row := range r.Rows {
		rows[row.SharedFrac] = row
	}
	lo, hi := rows[0], rows[0.9]
	if lo.SpreadSPI > lo.ColocateSPI {
		t.Errorf("shared_frac 0: spread SPI %v worse than colocate %v — dilation cost not modeled",
			lo.SpreadSPI, lo.ColocateSPI)
	}
	if hi.ColocateSPI >= hi.SpreadSPI {
		t.Errorf("shared_frac 0.9: colocate SPI %v not better than spread %v — shared-footprint merge not paying off",
			hi.ColocateSPI, hi.SpreadSPI)
	}
	for _, row := range r.Rows {
		if row.ObliviousSPI != lo.ObliviousSPI {
			t.Errorf("oblivious arm moved with shared_frac %v: %v != %v",
				row.SharedFrac, row.ObliviousSPI, lo.ObliviousSPI)
		}
	}
	// The colocate arm's cost must fall monotonically as sharing rises:
	// more merged mass, less dilation, same trace.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].ColocateSPI >= r.Rows[i-1].ColocateSPI {
			t.Errorf("colocate SPI not decreasing in sharing: %v at %v, %v at %v",
				r.Rows[i-1].ColocateSPI, r.Rows[i-1].SharedFrac,
				r.Rows[i].ColocateSPI, r.Rows[i].SharedFrac)
		}
	}
}
