package exp

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// sharedCtx amortizes profiling and power-model training across the
// package's tests, as the harness itself does across experiments.
var (
	sharedOnce sync.Once
	shared     *Context
)

func ctx(t *testing.T) *Context {
	t.Helper()
	sharedOnce.Do(func() {
		shared = NewContext(Config{Quick: true, Seed: 42})
	})
	return shared
}

func TestTable2Shape(t *testing.T) {
	r, err := Table2(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 2 {
		t.Fatalf("scenarios %d", len(r.Scenarios))
	}
	if r.Scenarios[0].Assignments != 36 || r.Scenarios[1].Assignments != 24 {
		t.Fatalf("assignment counts %d/%d", r.Scenarios[0].Assignments, r.Scenarios[1].Assignments)
	}
	for _, s := range r.Scenarios {
		if s.SampleAvgErr <= 0 || s.SampleAvgErr > 10 {
			t.Errorf("%s: sample avg err %.2f%% outside plausible band", s.Name, s.SampleAvgErr)
		}
		if s.AvgAvgErr > s.SampleAvgErr+1e-9 {
			t.Errorf("%s: avg-power error %.2f%% above sample error %.2f%%",
				s.Name, s.AvgAvgErr, s.SampleAvgErr)
		}
		if s.SampleMaxErr < s.SampleAvgErr || s.AvgMaxErr < s.AvgAvgErr {
			t.Errorf("%s: max below average", s.Name)
		}
	}
	if !strings.Contains(r.Format(), "Table 2") {
		t.Error("Format missing title")
	}
}

func TestTable3Shape(t *testing.T) {
	r, err := Table3(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 3 {
		t.Fatalf("scenarios %d", len(r.Scenarios))
	}
	wantCounts := []int{24, 3, 10}
	for i, s := range r.Scenarios {
		if s.Assignments != wantCounts[i] {
			t.Errorf("scenario %d count %d want %d", i, s.Assignments, wantCounts[i])
		}
		if s.SampleAvgErr <= 0 || s.SampleAvgErr > 10 {
			t.Errorf("%s: sample avg err %.2f%%", s.Name, s.SampleAvgErr)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	r, err := Figure2(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MaxTrace[0]) != len(r.MaxTrace[1]) || len(r.MaxTrace[0]) == 0 {
		t.Fatal("max trace malformed")
	}
	// The max-power assignment must actually draw more power.
	if r.MaxTrace[1].Mean() <= r.MinTrace[1].Mean() {
		t.Fatalf("max assignment %.2f W not above min %.2f W",
			r.MaxTrace[1].Mean(), r.MinTrace[1].Mean())
	}
	// Estimation errors in the paper's band (2.46% / 2.51%).
	if r.MaxErr > 8 || r.MinErr > 8 {
		t.Errorf("trace errors %.2f%%/%.2f%% too high", r.MaxErr, r.MinErr)
	}
	if !strings.Contains(r.Format(), "Figure 2") {
		t.Error("Format missing title")
	}
}

func TestMVLRvsNNShape(t *testing.T) {
	r, err := MVLRvsNN(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.MVLRAcc < 90 || r.MVLRAcc > 99.5 {
		t.Errorf("MVLR accuracy %.2f%% outside plausible band", r.MVLRAcc)
	}
	if r.NNAcc < r.MVLRAcc-1.5 {
		t.Errorf("NN accuracy %.2f%% far below MVLR %.2f%%", r.NNAcc, r.MVLRAcc)
	}
}

func TestPrefetchStudyShape(t *testing.T) {
	r, err := PrefetchStudy(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Only the streaming workloads benefit significantly.
	byName := map[string]float64{}
	for i, n := range r.Names {
		byName[n] = r.SpeedupPct[i]
	}
	if byName["equake"] < 10 {
		t.Errorf("equake speedup %.2f%%, expected significant", byName["equake"])
	}
	for _, n := range []string{"gzip", "vpr", "mcf", "twolf"} {
		if byName[n] > 3 || byName[n] < -5 {
			t.Errorf("%s speedup %.2f%% should be insignificant", n, byName[n])
		}
	}
	if r.AvgPct < -1 || r.AvgPct > 10 {
		t.Errorf("average speedup %.2f%% outside the paper's band", r.AvgPct)
	}
}

func TestContextSwitchStudyShape(t *testing.T) {
	r, err := ContextSwitchStudy(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	// The paper: refill ≈ 1% of the timeslice. Allow 0.1–5%.
	if r.RefillPct < 0.1 || r.RefillPct > 5 {
		t.Errorf("refill %.2f%% of timeslice outside band", r.RefillPct)
	}
	if r.Resumes == 0 {
		t.Error("no resumes observed")
	}
}

func TestSolverAblationShape(t *testing.T) {
	r, err := SolverAblation(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Pairs != 36 {
		t.Fatalf("pairs %d", r.Pairs)
	}
	if r.NewtonFailures > r.Pairs/4 {
		t.Errorf("Newton failed on %d/%d pairs", r.NewtonFailures, r.Pairs)
	}
	if r.MaxSizeDelta > 0.5 {
		t.Errorf("solvers disagree by %.3f ways", r.MaxSizeDelta)
	}
}

func TestPowerAblationShape(t *testing.T) {
	r, err := PowerAblation(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if !(r.FullAcc > r.NoMissAcc && r.NoMissAcc > r.IdleOnlyAcc) {
		t.Errorf("ablation ordering violated: full %.2f, no-miss %.2f, idle %.2f",
			r.FullAcc, r.NoMissAcc, r.IdleOnlyAcc)
	}
}

func TestHashStable(t *testing.T) {
	if hash("a") == hash("b") {
		t.Fatal("hash collision on trivial inputs")
	}
	if hash("x") != hash("x") {
		t.Fatal("hash unstable")
	}
}

func TestAssumptionStudyShape(t *testing.T) {
	r, err := AssumptionStudy(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Violating assumptions should cost accuracy, but gracefully: errors
	// grow, yet stay within a few points.
	if r.PLRUErrPct < r.LRUErrPct-0.5 {
		t.Errorf("PLRU error %.2f below LRU baseline %.2f", r.PLRUErrPct, r.LRUErrPct)
	}
	if r.MultiPhaseErrPct < r.LRUErrPct-0.5 {
		t.Errorf("multi-phase error %.2f below baseline %.2f", r.MultiPhaseErrPct, r.LRUErrPct)
	}
	if r.PLRUErrPct > 10 || r.MultiPhaseErrPct > 10 {
		t.Errorf("assumption violations degrade too hard: %.2f / %.2f",
			r.PLRUErrPct, r.MultiPhaseErrPct)
	}
}

func TestSensitivitySweepShape(t *testing.T) {
	r, err := SensitivitySweep(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Assocs) != 4 {
		t.Fatalf("swept %d geometries", len(r.Assocs))
	}
	for i := range r.Assocs {
		if r.MPAErrPct[i] <= 0 || r.MPAErrPct[i] > 8 {
			t.Errorf("%d ways: MPA error %.2f pts outside band", r.Assocs[i], r.MPAErrPct[i])
		}
		if r.SPIErrPct[i] > 8 {
			t.Errorf("%d ways: SPI error %.2f%% outside band", r.Assocs[i], r.SPIErrPct[i])
		}
	}
}

func TestComplexityStudyShape(t *testing.T) {
	r, err := ComplexityStudy(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ks) != 4 || r.Ks[1] != 8 {
		t.Fatalf("rows %v", r.Ks)
	}
	if r.ProfilingRuns[1] != 8*16 || r.Combinations[1] != 255 {
		t.Fatalf("k=8 counts %d/%d", r.ProfilingRuns[1], r.Combinations[1])
	}
	// The advantage must grow with k (linear vs exponential).
	prev := 0.0
	for i := range r.Ks {
		adv := float64(r.Combinations[i]) / float64(r.ProfilingRuns[i])
		if adv < prev {
			t.Fatalf("advantage not growing at k=%d", r.Ks[i])
		}
		prev = adv
	}
	if r.PredictTime <= 0 || r.PredictTime > time.Second {
		t.Fatalf("prediction time %v implausible", r.PredictTime)
	}
}

func TestHeteroStudyShape(t *testing.T) {
	r, err := HeteroStudy(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Pairs != 4 {
		t.Fatalf("pairs %d", r.Pairs)
	}
	if r.AdjustedErrPct >= r.NaiveErrPct {
		t.Errorf("β-rescaling did not help: %.2f%% vs %.2f%%", r.AdjustedErrPct, r.NaiveErrPct)
	}
	if r.AdjustedErrPct > 12 {
		t.Errorf("adjusted error %.2f%% too high", r.AdjustedErrPct)
	}
}

func TestSeedStabilityShape(t *testing.T) {
	r, err := SeedStability(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Seeds) != 5 {
		t.Fatalf("seeds %d", len(r.Seeds))
	}
	if r.Mean <= 0 || r.Mean > 5 {
		t.Errorf("mean error %.2f pts outside band", r.Mean)
	}
	// The reported numbers must not be seed-lucky: spread well below the
	// mean.
	if r.Std > r.Mean {
		t.Errorf("seed spread %.2f exceeds mean %.2f", r.Std, r.Mean)
	}
}

func TestBandwidthStudyShape(t *testing.T) {
	r, err := BandwidthStudy(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labels) != 3 {
		t.Fatalf("configs %d", len(r.Labels))
	}
	// Queueing breaks the timing model but not the cache model: SPI error
	// must grow monotonically with saturation while MPA error stays low.
	if !(r.SPIErrPct[0] < r.SPIErrPct[1] && r.SPIErrPct[1] < r.SPIErrPct[2]) {
		t.Errorf("SPI error not growing with load: %v", r.SPIErrPct)
	}
	for i, e := range r.MPAErrPct {
		if e > 3 {
			t.Errorf("config %d: MPA error %.2f pts should stay low", i, e)
		}
	}
	if r.UtilPct[2] < 50 {
		t.Errorf("saturated config only reaches %.0f%% utilization", r.UtilPct[2])
	}
}
