package exp

import (
	"context"
	"fmt"
	"math"
	"strings"

	"mpmc/internal/core"
	"mpmc/internal/machine"
	"mpmc/internal/parallel"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
)

// BenchmarkErrors accumulates per-benchmark validation statistics in the
// layout of Table 1: average error and the fraction of test cases whose
// error exceeds 5%.
type BenchmarkErrors struct {
	Name    string
	MPAErrs []float64 // absolute MPA error × 100 (percentage points)
	SPIErrs []float64 // relative SPI error × 100 (percent)
}

func (b *BenchmarkErrors) avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func (b *BenchmarkErrors) over5(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > 5 {
			n++
		}
	}
	return 100 * float64(n) / float64(len(xs))
}

// Table1Result holds the E1 output.
type Table1Result struct {
	Machine    string
	Benchmarks []*BenchmarkErrors
	Pairs      int
}

// AvgMPAErr returns the suite-average MPA error (percentage points).
func (r *Table1Result) AvgMPAErr() float64 {
	var s float64
	var n int
	for _, b := range r.Benchmarks {
		s += b.avg(b.MPAErrs) * float64(len(b.MPAErrs))
		n += len(b.MPAErrs)
	}
	return s / float64(n)
}

// AvgSPIErr returns the suite-average relative SPI error (percent).
func (r *Table1Result) AvgSPIErr() float64 {
	var s float64
	var n int
	for _, b := range r.Benchmarks {
		s += b.avg(b.SPIErrs) * float64(len(b.SPIErrs))
		n += len(b.SPIErrs)
	}
	return s / float64(n)
}

// SPIOver5 returns the fraction (percent) of all cases above 5% SPI error.
func (r *Table1Result) SPIOver5() float64 {
	var over, n int
	for _, b := range r.Benchmarks {
		for _, e := range b.SPIErrs {
			if e > 5 {
				over++
			}
			n++
		}
	}
	return 100 * float64(over) / float64(n)
}

// Format renders the paper's Table 1 layout.
func (r *Table1Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: Performance Model Validation (%s, %d pairwise co-runs)\n", r.Machine, r.Pairs)
	header := "Benchmark      "
	for _, b := range r.Benchmarks {
		header += fmt.Sprintf("%8s", b.Name)
	}
	header += "    Avg."
	sb.WriteString(header + "\n")
	row := func(label string, get func(*BenchmarkErrors) float64, avg float64) {
		line := fmt.Sprintf("%-15s", label)
		for _, b := range r.Benchmarks {
			line += fmt.Sprintf("%8s", fmtPct(get(b)))
		}
		line += fmt.Sprintf("%8s", fmtPct(avg))
		sb.WriteString(line + "\n")
	}
	row("MPA E (%)", func(b *BenchmarkErrors) float64 { return b.avg(b.MPAErrs) }, r.AvgMPAErr())
	var o5m, o5s float64
	var nAll int
	for _, b := range r.Benchmarks {
		o5m += b.over5(b.MPAErrs) * float64(len(b.MPAErrs))
		o5s += b.over5(b.SPIErrs) * float64(len(b.SPIErrs))
		nAll += len(b.MPAErrs)
	}
	row("MPA >5% (%)", func(b *BenchmarkErrors) float64 { return b.over5(b.MPAErrs) }, o5m/float64(nAll))
	row("SPI E (%)", func(b *BenchmarkErrors) float64 { return b.avg(b.SPIErrs) }, r.AvgSPIErr())
	row("SPI >5% (%)", func(b *BenchmarkErrors) float64 { return b.over5(b.SPIErrs) }, o5s/float64(nAll))
	return sb.String()
}

// Table1 reproduces E1: profile the 8-benchmark model set on the 4-core
// server with the stressmark, predict every pairwise co-run (including a
// benchmark with itself: 36 unordered pairs), simulate each pair on two
// cache-sharing cores, and report per-benchmark MPA and SPI errors.
func Table1(x *Context) (*Table1Result, error) {
	return perfValidation(x, machine.FourCoreServer(), workload.ModelSet())
}

// PerfSecondMachine reproduces E2: the same validation on the 2-core
// laptop with all 10 benchmarks (55 pairs). The paper reports only the
// average SPI error (1.57%).
func PerfSecondMachine(x *Context) (*Table1Result, error) {
	return perfValidation(x, machine.TwoCoreLaptop(), workload.Suite())
}

func perfValidation(x *Context, m *machine.Machine, specs []*workload.Spec) (*Table1Result, error) {
	features, err := x.Features(m, specs)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Machine: m.Name}
	byName := map[string]*BenchmarkErrors{}
	for _, s := range specs {
		be := &BenchmarkErrors{Name: s.Name}
		byName[s.Name] = be
		res.Benchmarks = append(res.Benchmarks, be)
	}
	// Co-runs happen on the first cache group's first two cores.
	g := m.Groups[0]
	if len(g) < 2 {
		return nil, fmt.Errorf("exp: machine %s cannot host a pairwise co-run", m.Name)
	}
	seed := x.Cfg.Seed + hash(m.Name+"/table1")
	type pairIdx struct{ i, j int }
	var pairs []pairIdx
	for i := 0; i < len(specs); i++ {
		for j := i; j < len(specs); j++ {
			pairs = append(pairs, pairIdx{i, j})
		}
	}
	// Pair k draws seed+k+1, the value the serial seed++ loop gave it, so
	// the co-runs fan out across workers; the per-benchmark error lists
	// are then filled in pair order, exactly as the serial loop appended.
	type pairOut struct {
		preds []core.Prediction
		run   *sim.Result
	}
	outs, err := parallel.Map(context.Background(), x.Cfg.Workers, len(pairs), func(k int) (pairOut, error) {
		i, j := pairs[k].i, pairs[k].j
		preds, err := core.PredictGroup(
			[]*core.FeatureVector{features[i], features[j]}, m.Assoc, core.SolverAuto)
		if err != nil {
			return pairOut{}, fmt.Errorf("exp: predicting %s+%s: %w", specs[i].Name, specs[j].Name, err)
		}
		procs := make([][]*workload.Spec, m.NumCores)
		procs[g[0]] = []*workload.Spec{specs[i]}
		procs[g[1]] = []*workload.Spec{specs[j]}
		run, err := sim.Run(m, specAssignment(m, procs), x.Cfg.corunOpts(seed+uint64(k)+1))
		if err != nil {
			return pairOut{}, fmt.Errorf("exp: co-running %s+%s: %w", specs[i].Name, specs[j].Name, err)
		}
		return pairOut{preds: preds, run: run}, nil
	})
	if err != nil {
		return nil, err
	}
	for k, out := range outs {
		res.Pairs++
		i, j := pairs[k].i, pairs[k].j
		for pi, spec := range []*workload.Spec{specs[i], specs[j]} {
			meas := out.run.Procs[pi]
			pred := out.preds[pi]
			be := byName[spec.Name]
			be.MPAErrs = append(be.MPAErrs, 100*math.Abs(pred.MPA-meas.MPA()))
			be.SPIErrs = append(be.SPIErrs, 100*math.Abs(pred.SPI-meas.SPI())/meas.SPI())
		}
	}
	return res, nil
}
