package core

import (
	"context"
	"fmt"

	"mpmc/internal/hpc"
	"mpmc/internal/machine"
	"mpmc/internal/parallel"
	"mpmc/internal/sim"
	"mpmc/internal/stats"
	"mpmc/internal/workload"
)

// PowerModel is the Eq. 9 per-core power model:
//
//	P_core = P_idle + c1·L1RPS + c2·L2RPS + c3·L2MPS + c4·BRPS + c5·FPPS
//
// trained by multi-variable linear regression on measured (rates, power)
// samples. The intercept P_idle absorbs the per-core share of always-on
// uncore power, so summing CorePower over all cores estimates total
// processor power.
type PowerModel struct {
	fit *stats.MVLRFit
}

// PIdle returns the fitted idle power per core (the Eq. 9 intercept).
func (pm *PowerModel) PIdle() float64 { return pm.fit.Coef[0] }

// Coefficients returns c1..c5 in Eq. 9 order.
func (pm *PowerModel) Coefficients() []float64 {
	return append([]float64(nil), pm.fit.Coef[1:]...)
}

// R2 returns the training-set coefficient of determination.
func (pm *PowerModel) R2() float64 { return pm.fit.R2 }

// CorePower estimates one core's power from its event rates.
func (pm *PowerModel) CorePower(r hpc.Rates) float64 {
	return pm.fit.Predict(r.Vector())
}

// AtState rescales the trained Eq. 9 coefficients to a DVFS operating
// point with combined dynamic multiplier d (see internal/freq): the event
// energies c1..c5 scale by d, the static intercept P_idle stays fixed.
// Identity-gated: d == 1 returns the receiver itself, so base-state
// predictions are the exact legacy float64s.
func (pm *PowerModel) AtState(d float64) *PowerModel {
	if d == 1 {
		return pm
	}
	coef := append([]float64(nil), pm.fit.Coef...)
	for i := 1; i < len(coef); i++ {
		coef[i] *= d
	}
	return &PowerModel{fit: &stats.MVLRFit{Coef: coef, R2: pm.fit.R2}}
}

// ProcessorPower estimates total processor power from per-core rates
// (idle cores contribute P_idle via zero rates).
func (pm *PowerModel) ProcessorPower(cores []hpc.Rates) float64 {
	total := 0.0
	for _, r := range cores {
		total += pm.CorePower(r)
	}
	return total
}

// PowerTrainOptions controls power-model training data collection.
type PowerTrainOptions struct {
	// Warmup and Duration apply to each homogeneous benchmark run.
	// Zero selects defaults (2 s and 8 s).
	Warmup   float64
	Duration float64
	Seed     uint64
	// SkipMicrobench omits the synthetic micro-benchmark phases
	// (Section 4.1); used by ablations only.
	SkipMicrobench bool
	// MicrobenchWindows is the number of sampling windows measured per
	// micro-benchmark step (default 12).
	MicrobenchWindows int
	// Workers bounds how many training runs execute concurrently; <= 0
	// selects GOMAXPROCS. Row order and values are independent of the
	// worker count: every run's seed is a pure function of its index and
	// rows are appended in index order.
	Workers int
}

func (o *PowerTrainOptions) withDefaults() PowerTrainOptions {
	out := *o
	if out.Warmup == 0 {
		out.Warmup = 2
	}
	if out.Duration == 0 {
		out.Duration = 8
	}
	if out.MicrobenchWindows == 0 {
		out.MicrobenchWindows = 12
	}
	return out
}

// PowerDataset is a measured training set for power models: each row is a
// per-core rate vector in Eq. 9 order with the corresponding per-core
// measured power (total processor power divided by core count, per the
// paper's homogeneous-run assumption).
type PowerDataset struct {
	Features [][]float64
	Watts    []float64
}

// CollectPowerDataset gathers the Section 4.1 model-construction data:
// for every benchmark, N instances run on the N cores while the sensor
// records processor power; the micro-benchmark then sweeps each monitored
// component across eight access frequencies. A cancelled ctx stops the
// collection between runs and returns ctx's error.
func CollectPowerDataset(ctx context.Context, m *machine.Machine, specs []*workload.Spec, opts PowerTrainOptions) (*PowerDataset, error) {
	o := opts.withDefaults()
	ds := &PowerDataset{}
	n := float64(m.NumCores)
	// Every benchmark run and micro-benchmark step seeds from its own
	// index, so both collection loops fan out; each task returns its rows
	// as a batch and the batches are concatenated in index order, keeping
	// the dataset byte-identical to the serial collection.
	batches, err := parallel.Map(ctx, o.Workers, len(specs), func(bi int) (PowerDataset, error) {
		spec := specs[bi]
		asg := sim.Assignment{Procs: make([][]*workload.Spec, m.NumCores)}
		for c := 0; c < m.NumCores; c++ {
			asg.Procs[c] = []*workload.Spec{spec}
		}
		res, err := sim.Run(m, asg, sim.Options{
			Warmup:   o.Warmup,
			Duration: o.Duration,
			Seed:     o.Seed + uint64(bi)*7919,
		})
		if err != nil {
			return PowerDataset{}, fmt.Errorf("core: power training run %s: %w", spec.Name, err)
		}
		windows := res.WindowRates(m.NumCores)
		if len(windows) != len(res.MeasuredPower) {
			return PowerDataset{}, fmt.Errorf("core: power training %s: %d rate windows vs %d power samples",
				spec.Name, len(windows), len(res.MeasuredPower))
		}
		var batch PowerDataset
		for w, cores := range windows {
			// Homogeneous run: average the per-core rates (they are
			// statistically identical) and attribute power/N per core.
			var avg hpc.Rates
			for _, r := range cores {
				avg = avg.Add(r)
			}
			avg = avg.Scale(1 / n)
			batch.Features = append(batch.Features, avg.Vector())
			batch.Watts = append(batch.Watts, res.MeasuredPower[w].Power/n)
		}
		return batch, nil
	})
	if err != nil {
		return nil, err
	}
	for _, b := range batches {
		ds.Features = append(ds.Features, b.Features...)
		ds.Watts = append(ds.Watts, b.Watts...)
	}
	if !o.SkipMicrobench {
		steps := workload.Microbench(microbenchPeaks(specs))
		batches, err := parallel.Map(ctx, o.Workers, len(steps), func(si int) (PowerDataset, error) {
			r := hpc.FromVector(steps[si][:])
			// The paper's phases are equal length: the idle phase runs a
			// full 80 s while each component frequency gets 10 s, so the
			// idle operating point carries 8× the weight of one step.
			// That weight is what anchors the P_idle intercept.
			windows := o.MicrobenchWindows
			if si == 0 {
				windows *= 8
			}
			watts := sim.MeasureSyntheticRates(m, r, windows, o.Seed+uint64(si)*104729)
			var batch PowerDataset
			for _, wv := range watts {
				batch.Features = append(batch.Features, r.Vector())
				batch.Watts = append(batch.Watts, wv/n)
			}
			return batch, nil
		})
		if err != nil {
			return nil, err
		}
		for _, b := range batches {
			ds.Features = append(ds.Features, b.Features...)
			ds.Watts = append(ds.Watts, b.Watts...)
		}
	}
	if len(ds.Features) == 0 {
		return nil, fmt.Errorf("core: empty power training set")
	}
	return ds, nil
}

// microbenchPeaks derives the micro-benchmark's peak event rates from the
// benchmark suite so the training set covers the rate ranges validation
// assignments will occupy.
func microbenchPeaks(specs []*workload.Spec) [5]float64 {
	var peak [5]float64
	for _, s := range specs {
		// Rates at full speed (no misses): events/instr ÷ BaseSPI.
		cand := [5]float64{
			s.L1RPI / s.BaseSPI,
			s.L2RPI / s.BaseSPI,
			s.L2RPI / s.BaseSPI, // misses bounded by references
			s.BRPI / s.BaseSPI,
			s.FPPI / s.BaseSPI,
		}
		for i, v := range cand {
			if v > peak[i] {
				peak[i] = v
			}
		}
	}
	for i := range peak {
		peak[i] *= 1.2 // headroom above any benchmark
	}
	return peak
}

// FitPowerModel fits the Eq. 9 MVLR model to a dataset.
func FitPowerModel(ds *PowerDataset) (*PowerModel, error) {
	fit, err := stats.FitMVLR(ds.Features, ds.Watts)
	if err != nil {
		return nil, fmt.Errorf("core: MVLR power fit: %w", err)
	}
	return &PowerModel{fit: fit}, nil
}

// TrainPowerModel is the one-call Section 4.1 pipeline: collect the
// dataset and fit the MVLR model.
func TrainPowerModel(ctx context.Context, m *machine.Machine, specs []*workload.Spec, opts PowerTrainOptions) (*PowerModel, error) {
	ds, err := CollectPowerDataset(ctx, m, specs, opts)
	if err != nil {
		return nil, err
	}
	return FitPowerModel(ds)
}

// Accuracy evaluates a power predictor on a dataset, returning the
// paper's accuracy figure (100 − mean absolute percentage error).
func (ds *PowerDataset) Accuracy(predict func(hpc.Rates) float64) float64 {
	pred := make([]float64, len(ds.Watts))
	for i, f := range ds.Features {
		pred[i] = predict(hpc.FromVector(f))
	}
	return stats.Accuracy(pred, ds.Watts)
}
