package core

import (
	"math"
	"testing"
	"testing/quick"

	"mpmc/internal/xrand"
)

// randomFeature builds a structurally valid feature vector from arbitrary
// randomness: a monotone MPA curve over a random associativity plus
// positive Eq. 3 coefficients and API.
func randomFeature(r *xrand.Rand) *FeatureVector {
	assoc := 2 + r.Intn(15)
	curve := make([]float64, assoc+1)
	curve[0] = 1
	v := 1.0
	for s := 1; s <= assoc; s++ {
		v *= 0.3 + 0.7*r.Float64() // multiplicative decay keeps it monotone
		curve[s] = v
	}
	alpha := r.Float64() * 5e-6
	beta := 5e-7 + r.Float64()*2e-6
	api := 0.001 + r.Float64()*0.1
	f, err := NewFeatureVector("rand", curve, alpha, beta, api)
	if err != nil {
		panic(err)
	}
	return f
}

func TestPropertyGMonotoneAndBounded(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		f := randomFeature(r)
		prev := 0.0
		for n := 0.25; n < 1e5; n *= 1.7 {
			g := f.G(n)
			if g < prev-1e-9 || g > float64(f.Assoc)+1e-9 || math.IsNaN(g) {
				return false
			}
			prev = g
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGInverseIsInverse(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		f := randomFeature(r)
		gmax := f.GMax()
		for i := 0; i < 8; i++ {
			s := 0.1 + r.Float64()*(gmax-0.2)
			n := f.GInverse(s)
			if math.IsInf(n, 1) {
				return false
			}
			if math.Abs(f.G(n)-s) > 0.05 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEquilibriumInvariants(t *testing.T) {
	// For random co-run groups: every size positive and ≤ min(A, GMax);
	// sizes sum to ≤ A (equality when contended); predicted MPA within
	// [overflow, 1]; predicted SPI ≥ beta.
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		assoc := 4 + r.Intn(13)
		k := 2 + r.Intn(3)
		features := make([]*FeatureVector, k)
		for i := range features {
			f := randomFeature(r)
			// Re-shape the curve onto this group's associativity.
			curve := make([]float64, assoc+1)
			for s := 0; s <= assoc; s++ {
				frac := float64(s) / float64(assoc) * float64(f.Assoc)
				curve[s] = f.MPA(frac)
			}
			nf, err := NewFeatureVector("g", curve, f.Alpha, f.Beta, f.API)
			if err != nil {
				return false
			}
			features[i] = nf
		}
		preds, err := PredictGroup(features, assoc, SolverWindow)
		if err != nil {
			return false
		}
		sum := 0.0
		for i, p := range preds {
			f := features[i]
			if p.S <= 0 || p.S > math.Min(float64(assoc), f.GMax())+1e-6 {
				return false
			}
			if p.MPA < f.Hist.Overflow()-1e-9 || p.MPA > 1+1e-9 {
				return false
			}
			if p.SPI < f.Beta-1e-15 {
				return false
			}
			sum += p.S
		}
		return sum <= float64(assoc)+1e-6
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEquilibriumSymmetry(t *testing.T) {
	// Identical processes always split the cache evenly, whatever their
	// shape.
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		f := randomFeature(r)
		assoc := f.Assoc
		preds, err := PredictGroup([]*FeatureVector{f, f}, assoc, SolverWindow)
		if err != nil {
			return false
		}
		return math.Abs(preds[0].S-preds[1].S) < 0.02
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMorePressureSmallerShare(t *testing.T) {
	// Scaling one process's API up never increases its partner's share.
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		a := randomFeature(r)
		bCurve := make([]float64, a.Assoc+1)
		bCurve[0] = 1
		v := 1.0
		for s := 1; s <= a.Assoc; s++ {
			v *= 0.4 + 0.55*r.Float64()
			bCurve[s] = v
		}
		b1, err := NewFeatureVector("b", bCurve, 1e-6, 1e-6, 0.01)
		if err != nil {
			return false
		}
		b2, err := NewFeatureVector("b2", bCurve, 1e-6, 1e-6, 0.05) // 5× hungrier
		if err != nil {
			return false
		}
		p1, err := PredictGroup([]*FeatureVector{a, b1}, a.Assoc, SolverWindow)
		if err != nil {
			return false
		}
		p2, err := PredictGroup([]*FeatureVector{a, b2}, a.Assoc, SolverWindow)
		if err != nil {
			return false
		}
		// a's share must not grow when b gets hungrier.
		return p2[0].S <= p1[0].S+0.05
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPredictionDeterministic(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r1 := xrand.New(seed)
		r2 := xrand.New(seed)
		fa1, fa2 := randomFeature(r1), randomFeature(r2)
		fb1, fb2 := randomFeature(r1), randomFeature(r2)
		assoc := fa1.Assoc
		if fb1.Assoc < assoc {
			assoc = fb1.Assoc
		}
		// Rebuild on the common associativity.
		shrink := func(f *FeatureVector) *FeatureVector {
			nf, err := NewFeatureVector(f.Name, f.MPACurve[:assoc+1], f.Alpha, f.Beta, f.API)
			if err != nil {
				panic(err)
			}
			return nf
		}
		p1, e1 := PredictGroup([]*FeatureVector{shrink(fa1), shrink(fb1)}, assoc, SolverWindow)
		p2, e2 := PredictGroup([]*FeatureVector{shrink(fa2), shrink(fb2)}, assoc, SolverWindow)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 != nil {
			return true
		}
		for i := range p1 {
			if p1[i].S != p2[i].S || p1[i].SPI != p2[i].SPI {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
