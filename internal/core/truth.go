package core

import (
	"mpmc/internal/machine"
	"mpmc/internal/stats"
	"mpmc/internal/workload"
)

// TruthFeature builds the *oracle* feature vector of a workload: the exact
// analytic MPA curve implied by the spec, with the Eq. 3 line fitted to
// the machine's true (mildly concave) SPI–MPA relationship over the same
// operating points profiling would observe.
//
// The experiments never use it for the headline results — those profile
// with the stressmark like the paper — but it isolates model-form error
// from profiling error in the profiling ablation, and it gives tests an
// exact reference.
func TruthFeature(spec *workload.Spec, m *machine.Machine) *FeatureVector {
	curve := make([]float64, m.Assoc+1)
	for s := 0; s <= m.Assoc; s++ {
		curve[s] = spec.EffectiveMPA(float64(s))
	}
	// Fit SPI = α·MPA + β across the effective-size operating points,
	// exactly the regression the stressmark sweep performs (Eq. 3).
	mpas := make([]float64, 0, m.Assoc)
	spis := make([]float64, 0, m.Assoc)
	for s := 1; s <= m.Assoc; s++ {
		mpas = append(mpas, curve[s])
		spis = append(spis, spec.TrueSPI(m.MemLatency, m.MLPOverlap, curve[s]))
	}
	alpha, beta := m.MemLatency*spec.L2RPI, spec.BaseSPI
	if fit, err := stats.FitLinear(mpas, spis); err == nil {
		alpha, beta = fit.Slope, fit.Intercept
	}
	f, err := NewFeatureVector(spec.Name, curve, alpha, beta, spec.L2RPI)
	if err != nil {
		panic(err) // specs are validated; the analytic curve is always well formed
	}
	f.L1RPI = spec.L1RPI
	f.BRPI = spec.BRPI
	f.FPPI = spec.FPPI
	f.Members = spec.Members
	return f
}
