package core

import (
	"context"
	"math"
	"testing"

	"mpmc/internal/hpc"
	"mpmc/internal/machine"
	"mpmc/internal/sim"
	"mpmc/internal/workload"
)

// trainTestModel trains a power model quickly for tests.
func trainTestModel(t *testing.T, m *machine.Machine) (*PowerModel, *PowerDataset) {
	t.Helper()
	ds, err := CollectPowerDataset(context.Background(), m, workload.ModelSet(), PowerTrainOptions{
		Warmup: 1, Duration: 3, Seed: 202, MicrobenchWindows: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := FitPowerModel(ds)
	if err != nil {
		t.Fatal(err)
	}
	return pm, ds
}

func TestPowerModelShape(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	pm, ds := trainTestModel(t, m)

	// The intercept approximates per-core idle power plus the per-core
	// share of uncore power.
	wantIdle := m.Oracle.CoreIdle + m.Oracle.Uncore/float64(m.NumCores)
	if math.Abs(pm.PIdle()-wantIdle)/wantIdle > 0.15 {
		t.Errorf("P_idle %.2f want ~%.2f", pm.PIdle(), wantIdle)
	}
	// The L2-miss coefficient must come out negative (Section 4.2).
	coef := pm.Coefficients()
	if coef[2] >= 0 {
		t.Errorf("c3 (L2MPS) = %v, want negative", coef[2])
	}
	// Training accuracy in the paper's ballpark (~96%).
	acc := ds.Accuracy(pm.CorePower)
	if acc < 92 || acc > 99.9 {
		t.Errorf("MVLR accuracy %.1f%% outside plausible band", acc)
	}
	if pm.R2() < 0.9 {
		t.Errorf("R² %.3f too low", pm.R2())
	}
}

func TestPowerModelPredictsHeldOutAssignment(t *testing.T) {
	// Validate like Table 2: a heterogeneous assignment the model never
	// saw, compared window by window.
	m := machine.TwoCoreWorkstation()
	pm, _ := trainTestModel(t, m)
	res, err := sim.Run(m, sim.Single(workload.ByName("mcf"), workload.ByName("gzip")),
		sim.Options{Warmup: 2, Duration: 5, Seed: 404})
	if err != nil {
		t.Fatal(err)
	}
	windows := res.WindowRates(m.NumCores)
	var sumErr, maxErr float64
	for w, cores := range windows {
		est := pm.ProcessorPower(cores)
		meas := res.MeasuredPower[w].Power
		e := math.Abs(est-meas) / meas
		sumErr += e
		if e > maxErr {
			maxErr = e
		}
	}
	avg := sumErr / float64(len(windows))
	if avg > 0.08 {
		t.Errorf("sample-based avg error %.1f%% too high", avg*100)
	}
	// Average power comparison.
	var estAvg float64
	for _, cores := range windows {
		estAvg += pm.ProcessorPower(cores)
	}
	estAvg /= float64(len(windows))
	if rel := math.Abs(estAvg-res.AvgMeasuredPower()) / res.AvgMeasuredPower(); rel > 0.06 {
		t.Errorf("avg power est %.2f vs measured %.2f (%.1f%%)",
			estAvg, res.AvgMeasuredPower(), rel*100)
	}
}

func TestPowerModelIdleCores(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	pm, _ := trainTestModel(t, m)
	est := pm.ProcessorPower([]hpc.Rates{{}, {}})
	want := m.Oracle.Uncore + 2*m.Oracle.CoreIdle
	if math.Abs(est-want)/want > 0.2 {
		t.Errorf("idle estimate %.2f want ~%.2f", est, want)
	}
}

func TestNNModelBeatsOrMatchesMVLR(t *testing.T) {
	// E8's shape: the NN captures the oracle's saturation nonlinearity,
	// so its training accuracy is at least MVLR's.
	m := machine.TwoCoreWorkstation()
	pm, ds := trainTestModel(t, m)
	nn, err := TrainNNModel(ds, NNOptions{Seed: 5, Epochs: 1500})
	if err != nil {
		t.Fatal(err)
	}
	accMVLR := ds.Accuracy(pm.CorePower)
	accNN := ds.Accuracy(nn.CorePower)
	if accNN < accMVLR-0.5 {
		t.Errorf("NN accuracy %.2f%% below MVLR %.2f%%", accNN, accMVLR)
	}
	if accNN < 90 {
		t.Errorf("NN accuracy %.2f%% implausibly low", accNN)
	}
}

func TestNNDeterministic(t *testing.T) {
	ds := &PowerDataset{}
	// Tiny synthetic dataset: y = 1 + x0.
	for i := 0; i < 32; i++ {
		x := float64(i) / 32
		ds.Features = append(ds.Features, []float64{x, 0, 0, 0, 0})
		ds.Watts = append(ds.Watts, 1+x)
	}
	a, err := TrainNNModel(ds, NNOptions{Seed: 7, Epochs: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainNNModel(ds, NNOptions{Seed: 7, Epochs: 500})
	if err != nil {
		t.Fatal(err)
	}
	r := hpc.Rates{L1RPS: 0.3}
	if a.CorePower(r) != b.CorePower(r) {
		t.Fatal("NN training not deterministic")
	}
	// And it should fit the linear function decently.
	if math.Abs(a.CorePower(hpc.Rates{L1RPS: 0.5})-1.5) > 0.1 {
		t.Fatalf("NN fit poor: %v", a.CorePower(hpc.Rates{L1RPS: 0.5}))
	}
}

func TestNNErrors(t *testing.T) {
	if _, err := TrainNNModel(&PowerDataset{}, NNOptions{}); err == nil {
		t.Fatal("accepted empty dataset")
	}
	ds := &PowerDataset{
		Features: [][]float64{{1, 0, 0, 0, 0}, {2, 0, 0, 0, 0}},
		Watts:    []float64{5, 5},
	}
	if _, err := TrainNNModel(ds, NNOptions{}); err == nil {
		t.Fatal("accepted constant-power dataset")
	}
}

func TestMicrobenchPeaksCoverSuite(t *testing.T) {
	peaks := microbenchPeaks(workload.ModelSet())
	for _, s := range workload.ModelSet() {
		if s.L1RPI/s.BaseSPI > peaks[0] {
			t.Fatalf("%s L1 rate exceeds microbench peak", s.Name)
		}
		if s.FPPI/s.BaseSPI > peaks[4] {
			t.Fatalf("%s FP rate exceeds microbench peak", s.Name)
		}
	}
}

func TestCollectPowerDatasetSkipMicrobench(t *testing.T) {
	m := machine.TwoCoreWorkstation()
	full, err := CollectPowerDataset(context.Background(), m, workload.ModelSet()[:2], PowerTrainOptions{
		Warmup: 0.5, Duration: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	lean, err := CollectPowerDataset(context.Background(), m, workload.ModelSet()[:2], PowerTrainOptions{
		Warmup: 0.5, Duration: 1, Seed: 1, SkipMicrobench: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lean.Features) >= len(full.Features) {
		t.Fatal("SkipMicrobench did not reduce the dataset")
	}
}
