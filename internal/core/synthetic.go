package core

// SyntheticPowerModel fits the Eq. 9 MVLR to a fixed full-rank synthetic
// dataset generated from known coefficients. The simulator and fast test
// suites use it where power *truth* is irrelevant but determinism and
// instant startup matter; production fleets train real models per machine
// kind.
func SyntheticPowerModel() (*PowerModel, error) {
	coef := []float64{5, 2e-9, 3e-9, 4e-8, 1e-9, 2.5e-9}
	ds := &PowerDataset{}
	for i := 0; i < 16; i++ {
		v := []float64{
			float64(i%5+1) * 1e8,
			float64(i%3+1) * 5e7,
			float64(i%7+1) * 1e6,
			float64(i%4+1) * 2e8,
			float64(i%6+1) * 1e7,
		}
		w := coef[0]
		for j, c := range coef[1:] {
			w += c * v[j]
		}
		ds.Features = append(ds.Features, v)
		ds.Watts = append(ds.Watts, w)
	}
	return FitPowerModel(ds)
}
