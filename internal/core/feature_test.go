package core

import (
	"math"
	"testing"

	"mpmc/internal/machine"
	"mpmc/internal/workload"
)

// simpleFeature builds a small feature vector for unit tests: a 4-way
// cache with a known MPA curve.
func simpleFeature(t *testing.T) *FeatureVector {
	t.Helper()
	// hist: h(1)=0.4 h(2)=0.2 h(3)=0.1 h(4)=0.1 overflow=0.2
	curve := []float64{1, 0.6, 0.4, 0.3, 0.2}
	f, err := NewFeatureVector("test", curve, 2e-5*0.02, 1e-6, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFeatureVectorValidates(t *testing.T) {
	if _, err := NewFeatureVector("x", []float64{1}, 1, 1, 1); err == nil {
		t.Fatal("accepted 1-point curve")
	}
	if _, err := NewFeatureVector("x", []float64{1, 0.5, 0.2}, 1, 1, 0); err == nil {
		t.Fatal("accepted zero API")
	}
	if _, err := NewFeatureVector("x", []float64{1, 0.5, 0.2}, 1, 0, 0.1); err == nil {
		t.Fatal("accepted zero beta")
	}
	if _, err := NewFeatureVector("x", []float64{1, 2, 0.2}, 1, 1, 0.1); err == nil {
		t.Fatal("accepted MPA > 1")
	}
}

func TestFeatureMPAInterpolates(t *testing.T) {
	f := simpleFeature(t)
	if got := f.MPA(0); got != 1 {
		t.Fatalf("MPA(0) = %v", got)
	}
	if got := f.MPA(1); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("MPA(1) = %v", got)
	}
	if got := f.MPA(1.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MPA(1.5) = %v", got)
	}
	if got := f.MPA(10); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("MPA(10) = %v", got)
	}
}

func TestSPIAndAPS(t *testing.T) {
	f := simpleFeature(t)
	if got := f.SPI(0); got != f.Beta {
		t.Fatal("SPI(0) != beta")
	}
	if got := f.SPI(1); math.Abs(got-(f.Alpha+f.Beta)) > 1e-18 {
		t.Fatal("SPI(1) != alpha+beta")
	}
	if got := f.APS(0); math.Abs(got-f.API/f.Beta) > 1e-9 {
		t.Fatalf("APS(0) = %v", got)
	}
}

func TestGBasicProperties(t *testing.T) {
	f := simpleFeature(t)
	if got := f.G(0); got != 0 {
		t.Fatalf("G(0) = %v", got)
	}
	if got := f.G(1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("G(1) = %v", got)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for n := 0.5; n < 10000; n *= 1.3 {
		g := f.G(n)
		if g < prev-1e-12 {
			t.Fatalf("G not monotone at n=%v: %v < %v", n, g, prev)
		}
		if g > float64(f.Assoc)+1e-9 {
			t.Fatalf("G(%v) = %v exceeds associativity", n, g)
		}
		prev = g
	}
	// With overflow mass 0.2 the process eventually fills the cache.
	if f.GMax() < float64(f.Assoc)-0.01 {
		t.Fatalf("GMax = %v, want ~%d", f.GMax(), f.Assoc)
	}
}

func TestGMatchesHandComputedRecursion(t *testing.T) {
	// Tiny 2-way case computed by hand from Eq. 4.
	// curve: MPA(0)=1, MPA(1)=0.5, MPA(2)=0.25.
	f, err := NewFeatureVector("hand", []float64{1, 0.5, 0.25}, 1e-6, 1e-6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// n=1: P1=1 → G=1.
	// n=2: P1 = 1·(1−0.5) = 0.5; P2 = 1·0.5 = 0.5 → G = 1.5.
	// n=3: P1 = 0.5·0.5 = 0.25; P2 = 0.5·0.5 + 0.5 = 0.75 → G = 1.75.
	cases := map[float64]float64{1: 1, 2: 1.5, 3: 1.75}
	for n, want := range cases {
		if got := f.G(n); math.Abs(got-want) > 1e-12 {
			t.Fatalf("G(%v) = %v want %v", n, got, want)
		}
	}
}

func TestGInverseRoundTrip(t *testing.T) {
	f := simpleFeature(t)
	for _, s := range []float64{0.5, 1, 1.7, 2.5, 3.2, 3.9} {
		n := f.GInverse(s)
		if math.IsInf(n, 1) {
			t.Fatalf("GInverse(%v) infinite below GMax %v", s, f.GMax())
		}
		back := f.G(n)
		if math.Abs(back-s) > 0.02 {
			t.Fatalf("G(GInverse(%v)) = %v", s, back)
		}
	}
	if got := f.GInverse(0); got != 0 {
		t.Fatalf("GInverse(0) = %v", got)
	}
	if !math.IsInf(f.GInverse(float64(f.Assoc)+1), 1) {
		t.Fatal("GInverse above GMax should be +Inf")
	}
}

func TestGMaxBoundedByWorkingSet(t *testing.T) {
	// No overflow mass beyond distance 2: the process can never occupy
	// more than 2 ways, so GMax must stop there even in a 4-way cache.
	f, err := NewFeatureVector("small", []float64{1, 0.5, 0, 0, 0}, 1e-6, 1e-6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if f.GMax() > 2+1e-9 {
		t.Fatalf("GMax %v exceeds working set", f.GMax())
	}
}

func TestTruthFeatureConsistency(t *testing.T) {
	m := machine.FourCoreServer()
	for _, spec := range workload.ModelSet() {
		f := TruthFeature(spec, m)
		if err := f.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		// The reconstructed histogram must reproduce the analytic curve.
		for s := 0; s <= m.Assoc; s++ {
			want := spec.EffectiveMPA(float64(s))
			if got := f.MPA(float64(s)); math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s: MPA(%d) = %v want %v", spec.Name, s, got, want)
			}
		}
		// The Eq. 3 line must track the true (mildly concave) SPI curve
		// closely over the operating range.
		for s := 1; s <= m.Assoc; s++ {
			mpa := f.MPA(float64(s))
			want := spec.TrueSPI(m.MemLatency, m.MLPOverlap, mpa)
			if got := f.SPI(mpa); math.Abs(got-want)/want > 0.03 {
				t.Fatalf("%s: Eq.3 at S=%d: %v vs true %v", spec.Name, s, got, want)
			}
		}
	}
}

func TestGTableInterpolationAccuracy(t *testing.T) {
	// The growth table thins its storage geometrically beyond n=1024;
	// interpolated values must stay close to a directly computed dense
	// recursion. Use a slow-growing feature so large n matters.
	curve := []float64{1, 0.3, 0.1, 0.04, 0.02, 0.012, 0.008, 0.005, 0.003}
	f, err := NewFeatureVector("slow", curve, 1e-6, 1e-6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Dense reference recursion.
	a := f.Assoc
	mpaAt := make([]float64, a+1)
	for i := 0; i <= a; i++ {
		mpaAt[i] = f.Hist.MPA(float64(i))
	}
	p := make([]float64, a+1)
	q := make([]float64, a+1)
	p[1] = 1
	dense := map[int]float64{1: 1}
	maxN := 60000
	for n := 2; n <= maxN; n++ {
		for i := 1; i <= a; i++ {
			stay := p[i] * (1 - mpaAt[i])
			if i == a {
				stay = p[i]
			}
			grow := 0.0
			if i > 1 {
				grow = p[i-1] * mpaAt[i-1]
			}
			q[i] = stay + grow
		}
		p, q = q, p
		g := 0.0
		for i := 1; i <= a; i++ {
			g += float64(i) * p[i]
		}
		dense[n] = g
	}
	for _, n := range []int{10, 100, 1000, 5000, 20000, 55000} {
		want := dense[n]
		got := f.G(float64(n))
		if math.Abs(got-want) > 0.01 {
			t.Errorf("G(%d) interpolated %.5f, dense %.5f", n, got, want)
		}
	}
}
