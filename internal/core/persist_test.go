package core

import (
	"encoding/json"
	"math"
	"testing"

	"mpmc/internal/hpc"
	"mpmc/internal/machine"
	"mpmc/internal/stats"
	"mpmc/internal/workload"
)

func TestFeatureVectorJSONRoundTrip(t *testing.T) {
	m := machine.FourCoreServer()
	orig := TruthFeature(workload.ByName("twolf"), m)
	orig.PAloneProcessor = 51.2
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back FeatureVector
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Assoc != orig.Assoc {
		t.Fatal("identity fields lost")
	}
	if back.Alpha != orig.Alpha || back.Beta != orig.Beta || back.API != orig.API {
		t.Fatal("Eq. 3 parameters lost")
	}
	if back.PAloneProcessor != 51.2 || back.L1RPI != orig.L1RPI {
		t.Fatal("power profile lost")
	}
	// Derived state must be rebuilt identically: MPA and G agree.
	for s := 0.0; s <= float64(m.Assoc); s += 0.5 {
		if math.Abs(back.MPA(s)-orig.MPA(s)) > 1e-12 {
			t.Fatalf("MPA(%v) differs after round trip", s)
		}
	}
	if math.Abs(back.G(100)-orig.G(100)) > 1e-9 {
		t.Fatal("growth curve differs after round trip")
	}
	// And it still predicts.
	if _, err := PredictGroup([]*FeatureVector{&back, orig}, m.Assoc, SolverAuto); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureVectorJSONRejectsBad(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","mpa_curve":[1],"alpha":1,"beta":1,"api":0.1}`,   // 1-point curve
		`{"name":"x","mpa_curve":[1,0.5],"alpha":1,"beta":1,"api":0}`, // zero API
		`{"name":"x","mpa_curve":[1,2],"alpha":1,"beta":1,"api":0.1}`, // MPA > 1
		`{"name":"x","mpa_curve":[1,0.5],"alpha":1,"beta":0,"api":,}`, // syntax
	}
	for i, c := range cases {
		var f FeatureVector
		if err := json.Unmarshal([]byte(c), &f); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPowerModelJSONRoundTrip(t *testing.T) {
	fit, err := stats.FitMVLR([][]float64{
		{1, 0, 0, 0, 0}, {0, 1, 0, 0, 0}, {0, 0, 1, 0, 0},
		{0, 0, 0, 1, 0}, {0, 0, 0, 0, 1}, {1, 1, 1, 1, 1}, {2, 1, 0, 1, 2},
	}, []float64{11, 12, 9, 11.5, 10.8, 14, 15})
	if err != nil {
		t.Fatal(err)
	}
	orig := &PowerModel{fit: fit}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back PowerModel
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	r := hpc.Rates{L1RPS: 2, L2RPS: 1, BRPS: 1, FPPS: 2}
	if math.Abs(back.CorePower(r)-orig.CorePower(r)) > 1e-12 {
		t.Fatal("power model differs after round trip")
	}
	if back.PIdle() != orig.PIdle() || back.R2() != orig.R2() {
		t.Fatal("metadata lost")
	}
}

func TestPowerModelJSONRejectsBad(t *testing.T) {
	for i, c := range []string{`{`, `{"coef":[1,2,3]}`} {
		var pm PowerModel
		if err := json.Unmarshal([]byte(c), &pm); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
