package core

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// AssignmentResult pairs a candidate assignment with its estimated power.
type AssignmentResult struct {
	Assignment Assignment
	Watts      float64
}

// BestAssignment exhaustively searches process-to-core mappings of the
// given processes and returns them sorted by estimated average processor
// power — the power-aware assignment application of Section 5. The search
// space is coreCount^k, reduced by the estimation cost being linear in
// profiling effort rather than exponential in co-run measurements (the
// paper's headline complexity win).
//
// maxResults bounds the returned slice (0 = all). It is
// BestAssignmentContext without a caller deadline.
func (cm *CombinedModel) BestAssignment(procs []*FeatureVector, maxResults int) ([]AssignmentResult, error) {
	return cm.BestAssignmentContext(context.Background(), procs, maxResults)
}

// BestAssignmentContext is BestAssignment under a caller-supplied context,
// checked once per candidate assignment: an abandoned request stops the
// exhaustive search within one estimation step.
func (cm *CombinedModel) BestAssignmentContext(ctx context.Context, procs []*FeatureVector, maxResults int) ([]AssignmentResult, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("core: no processes to assign")
	}
	n := cm.Machine.NumCores
	total := 1
	for range procs {
		total *= n
	}
	if total > 1<<20 {
		return nil, fmt.Errorf("core: %d processes on %d cores: search space too large", len(procs), n)
	}
	var results []AssignmentResult
	choice := make([]int, len(procs))
	for idx := 0; idx < total; idx++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v := idx
		for i := range choice {
			choice[i] = v % n
			v /= n
		}
		if !canonicalChoice(choice, cm.Machine.Groups) {
			continue
		}
		asg := make(Assignment, n)
		for i, c := range choice {
			asg[c] = append(asg[c], procs[i])
		}
		watts, err := cm.EstimateAssignmentContext(ctx, asg)
		if err != nil {
			return nil, err
		}
		results = append(results, AssignmentResult{Assignment: asg, Watts: watts})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Watts < results[j].Watts })
	if maxResults > 0 && len(results) > maxResults {
		results = results[:maxResults]
	}
	return results, nil
}

// canonicalChoice suppresses assignments equivalent under permuting cores
// within a cache group (the model is symmetric in them): it keeps only the
// representative where, within each group, cores are "used" in order and
// the first process index on each used core increases.
func canonicalChoice(choice []int, groups [][]int) bool {
	for _, g := range groups {
		// first[i] = index of the first process assigned to g[i], or -1.
		first := make([]int, len(g))
		for i := range first {
			first[i] = -1
		}
		for pi, c := range choice {
			for i, gc := range g {
				if gc == c && first[i] < 0 {
					first[i] = pi
				}
			}
		}
		// Cores inside a group must be used in increasing first-process
		// order, with unused cores trailing.
		prev := -1
		seenEmpty := false
		for _, f := range first {
			if f < 0 {
				seenEmpty = true
				continue
			}
			if seenEmpty || f < prev {
				return false
			}
			prev = f
		}
	}
	return true
}

// SpreadBaseline assigns processes round-robin across cores (the naive
// load balancer), for comparison against the power-aware choice.
func SpreadBaseline(machineCores int, procs []*FeatureVector) Assignment {
	asg := make(Assignment, machineCores)
	for i, f := range procs {
		c := i % machineCores
		asg[c] = append(asg[c], f)
	}
	return asg
}

// EnergyEstimate converts an assignment's power estimate and the procs'
// predicted throughputs into an energy-per-work figure: watts divided by
// aggregate predicted instructions per second. Lower is better when
// choosing assignments for energy rather than power.
func (cm *CombinedModel) EnergyEstimate(asg Assignment) (joulesPerGigaInstr float64, err error) {
	watts, err := cm.EstimateAssignment(asg)
	if err != nil {
		return 0, err
	}
	ips := 0.0
	for _, group := range cm.Machine.Groups {
		var members []*FeatureVector
		var share []float64 // time share of each member on its core
		for _, c := range group {
			k := len(asg[c])
			for _, f := range asg[c] {
				members = append(members, f)
				share = append(share, 1/float64(k))
			}
		}
		if len(members) == 0 {
			continue
		}
		preds, err := PredictGroup(members, cm.Machine.Assoc, cm.Solver)
		if err != nil {
			return 0, err
		}
		for i, p := range preds {
			ips += share[i] / p.SPI
		}
	}
	if ips == 0 {
		return math.Inf(1), nil
	}
	return watts / ips * 1e9, nil
}
