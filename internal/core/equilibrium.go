package core

import (
	"context"
	"fmt"
	"math"

	"mpmc/internal/linalg"
)

// Prediction is the performance model's output for one process in a
// co-running group (Section 3): its equilibrium effective cache size, the
// resulting miss rate, and the Eq. 3 throughput.
type Prediction struct {
	Feature *FeatureVector
	S       float64 // effective cache size, ways per set
	MPA     float64 // misses per access at S (== the paper's L2MPR)
	SPI     float64 // seconds per instruction
}

// MPI returns predicted L2 misses per instruction (API · MPA).
func (p Prediction) MPI() float64 { return p.Feature.API * p.MPA }

// SolverMethod selects the equilibrium solving algorithm.
type SolverMethod int

const (
	// SolverAuto runs the paper's Newton–Raphson and falls back to the
	// window bisection when it fails to converge.
	SolverAuto SolverMethod = iota
	// SolverNewton is the paper's formulation: Newton–Raphson on the k
	// equations of Eq. 7 plus the Eq. 1 capacity constraint.
	SolverNewton
	// SolverWindow is the equivalent scalar formulation: bisection on the
	// shared time window T of Section 3.3, with S_i(T) as the largest
	// fixed point of S = G_i(APS_i(S)·T). Monotonicity of every piece
	// makes it unconditionally convergent.
	SolverWindow
)

// PredictGroup predicts the steady-state behaviour of the processes whose
// feature vectors are given, co-running on cores that share one A-way
// cache. A solo process simply receives the whole cache. It is
// PredictGroupContext without a caller deadline.
func PredictGroup(features []*FeatureVector, assoc int, method SolverMethod) ([]Prediction, error) {
	return PredictGroupContext(context.Background(), features, assoc, method)
}

// PredictGroupContext is PredictGroup under a caller-supplied context: the
// equilibrium solvers check ctx every iteration, so a cancelled request
// abandons the solve promptly instead of running the search to
// convergence. The returned error is ctx's error when cancellation (not a
// solver failure) ended the solve.
func PredictGroupContext(ctx context.Context, features []*FeatureVector, assoc int, method SolverMethod) ([]Prediction, error) {
	return PredictGroupCached(ctx, features, assoc, method, nil)
}

// PredictGroupCached is PredictGroupContext with a solver-state handle:
// when st has recorded a converged solution for this exact group (same
// feature-vector identities, associativity, and method), the solve is
// seeded with it and — because the recorded sizes already satisfy the
// Eq. 1/Eq. 7 system the cold start would converge to — accepted at
// iteration zero, returning bit-identical Predictions without running the
// search. A seed that fails validation (diverged state) falls back to the
// cold start, whose result replaces it. st == nil is exactly
// PredictGroupContext. Only contended groups consult st; the solo and
// uncontended paths are already O(k).
func PredictGroupCached(ctx context.Context, features []*FeatureVector, assoc int, method SolverMethod, st *SolverState) ([]Prediction, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("core: empty co-run group")
	}
	if assoc <= 0 {
		return nil, fmt.Errorf("core: non-positive associativity")
	}
	if method != SolverAuto && method != SolverNewton && method != SolverWindow {
		return nil, fmt.Errorf("core: unknown solver method %d", method)
	}
	for _, f := range features {
		if err := f.Validate(); err != nil {
			return nil, err
		}
	}
	a := float64(assoc)
	if len(features) == 1 {
		f := features[0]
		s := math.Min(f.GMax(), a)
		return []Prediction{predAt(f, s)}, nil
	}
	// If the combined appetites cannot fill the cache there is no
	// contention: everyone gets their asymptotic size.
	total := 0.0
	for _, f := range features {
		total += f.GMax()
	}
	if total <= a {
		out := make([]Prediction, len(features))
		for i, f := range features {
			out[i] = predAt(f, f.GMax())
		}
		return out, nil
	}

	var stateKey string
	if st != nil {
		stateKey = st.key(features, assoc, method)
		if sizes, ok := st.seed(stateKey, features, a); ok {
			out := make([]Prediction, len(features))
			for i, f := range features {
				out[i] = predAt(f, sizes[i])
			}
			return out, nil
		}
	}

	var sizes []float64
	var err error
	switch method {
	case SolverWindow:
		sizes, err = solveWindow(ctx, features, a)
	case SolverNewton:
		sizes, err = solveNewton(ctx, features, a)
	case SolverAuto:
		sizes, err = solveNewton(ctx, features, a)
		if err != nil {
			// Only fall back when Newton itself failed; a cancelled
			// request must not start a second solve.
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			sizes, err = solveWindow(ctx, features, a)
		}
	default:
		return nil, fmt.Errorf("core: unknown solver method %d", method)
	}
	if err != nil {
		return nil, err
	}
	if st != nil {
		st.record(stateKey, sizes)
	}
	out := make([]Prediction, len(features))
	for i, f := range features {
		out[i] = predAt(f, sizes[i])
	}
	return out, nil
}

func predAt(f *FeatureVector, s float64) Prediction {
	mpa := f.MPA(s)
	return Prediction{Feature: f, S: s, MPA: mpa, SPI: f.SPI(mpa)}
}

// sizeAtWindow returns S_i(T): the largest fixed point of
// S = G_i(APS_i(S)·T), found by monotone iteration from S = GMax.
func sizeAtWindow(f *FeatureVector, t, assoc float64) float64 {
	s := math.Min(f.GMax(), assoc)
	for iter := 0; iter < 200; iter++ {
		n := f.APS(f.MPA(s)) * t
		next := f.G(n)
		if next > assoc {
			next = assoc
		}
		if math.Abs(next-s) < 1e-10 {
			return next
		}
		s = next
	}
	return s
}

// solveWindow finds the shared window T with Σ S_i(T) = A by bisection.
func solveWindow(ctx context.Context, features []*FeatureVector, assoc float64) ([]float64, error) {
	sum := func(t float64) float64 {
		total := 0.0
		for _, f := range features {
			total += sizeAtWindow(f, t, assoc)
		}
		return total
	}
	lo, hi := 0.0, 1e-6
	for iter := 0; sum(hi) < assoc; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lo = hi
		hi *= 4
		if iter > 80 {
			return nil, fmt.Errorf("core: window solver could not bracket the capacity constraint")
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-14*hi; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mid := (lo + hi) / 2
		if sum(mid) < assoc {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (lo + hi) / 2
	sizes := make([]float64, len(features))
	total := 0.0
	for i, f := range features {
		sizes[i] = sizeAtWindow(f, t, assoc)
		total += sizes[i]
	}
	// Distribute the residual rounding so Eq. 1 (Σ S_i = A) holds exactly.
	// Shrinking is a plain rescale; growth must respect each process's
	// min(A, GMax) box, so whatever a cap absorbs is redistributed to the
	// still-growable processes (at most one process saturates per pass).
	if total > assoc {
		scale := assoc / total
		for i := range sizes {
			sizes[i] *= scale
		}
	} else if total > 0 && total < assoc {
		deficit := assoc - total
		for pass := 0; pass < len(sizes) && deficit > 0; pass++ {
			growable := 0.0
			for i, f := range features {
				if sizes[i] < math.Min(assoc, f.GMax()) {
					growable += sizes[i]
				}
			}
			if growable <= 0 {
				break
			}
			scale := 1 + deficit/growable
			deficit = 0
			for i, f := range features {
				box := math.Min(assoc, f.GMax())
				if sizes[i] >= box {
					continue
				}
				grown := sizes[i] * scale
				if grown > box {
					deficit += grown - box
					grown = box
				}
				sizes[i] = grown
			}
		}
	}
	return sizes, nil
}

// solveNewton is the paper's Eq. 7 Newton–Raphson: unknowns S_1..S_k,
// equations f_1 = ΣS_i − A and, for i ≥ 2,
//
//	f_i = G₁⁻¹(S₁)/G_i⁻¹(S_i) − API₁·(α_i·MPA_i(S_i)+β_i) /
//	      (API_i·(α₁·MPA₁(S₁)+β₁))
//
// with a numerically differenced Jacobian, damped steps, and box
// constraints keeping every S_i in (0, min(A, GMax_i)]. ctx is checked at
// the top of every Newton iteration.
func solveNewton(ctx context.Context, features []*FeatureVector, assoc float64) ([]float64, error) {
	k := len(features)
	upper := make([]float64, k)
	for i, f := range features {
		upper[i] = math.Min(assoc, f.GMax())
	}
	// Start from a proportional-appetite split.
	s := make([]float64, k)
	total := 0.0
	for i := range features {
		total += upper[i]
	}
	for i := range s {
		s[i] = upper[i] / total * assoc
		if s[i] > upper[i] {
			s[i] = upper[i]
		}
		if s[i] < 0.05 {
			s[i] = 0.05
		}
	}
	// The Eq. 7 residuals are ratios whose scales differ by orders of
	// magnitude across heterogeneous processes; taking logarithms turns
	// them into well-conditioned differences with the same roots.
	resid := func(s []float64) []float64 {
		r := make([]float64, k)
		sum := 0.0
		for _, v := range s {
			sum += v
		}
		r[0] = sum - assoc
		f1 := features[0]
		inv1 := f1.GInverse(s[0])
		spi1 := f1.SPI(f1.MPA(s[0]))
		for i := 1; i < k; i++ {
			fi := features[i]
			invi := fi.GInverse(s[i])
			spii := fi.SPI(fi.MPA(s[i]))
			r[i] = math.Log(inv1/invi) - math.Log((f1.API*spii)/(fi.API*spi1))
		}
		return r
	}
	const tol = 1e-9
	for iter := 0; iter < 100; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := resid(s)
		if linalg.NormInf(r) < tol {
			return s, nil
		}
		// Forward-difference Jacobian.
		jac := linalg.NewMatrix(k, k)
		for j := 0; j < k; j++ {
			h := 1e-6 * math.Max(1, s[j])
			if s[j]+h > upper[j] {
				h = -h
			}
			sp := append([]float64(nil), s...)
			sp[j] += h
			rp := resid(sp)
			for i := 0; i < k; i++ {
				jac.Set(i, j, (rp[i]-r[i])/h)
			}
		}
		step, err := linalg.SolveLU(jac, r)
		if err != nil {
			return nil, fmt.Errorf("core: Newton–Raphson Jacobian singular: %w", err)
		}
		// Damped update with box clamping.
		lambda := 1.0
		for j := 0; j < k; j++ {
			ns := s[j] - step[j]
			if ns < 0.02 {
				lambda = math.Min(lambda, (s[j]-0.02)/step[j])
			}
			if ns > upper[j] {
				lambda = math.Min(lambda, (s[j]-upper[j])/step[j])
			}
		}
		if lambda <= 0 || math.IsNaN(lambda) {
			lambda = 0.1
		}
		improved := false
		base := linalg.NormInf(r)
		for ; lambda > 1e-4; lambda /= 2 {
			trial := append([]float64(nil), s...)
			ok := true
			for j := 0; j < k; j++ {
				trial[j] -= lambda * step[j]
				if trial[j] < 0.02 || trial[j] > upper[j]+1e-12 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if linalg.NormInf(resid(trial)) < base {
				copy(s, trial)
				improved = true
				break
			}
		}
		if !improved {
			return nil, fmt.Errorf("core: Newton–Raphson stalled at residual %.3g", base)
		}
	}
	return nil, fmt.Errorf("core: Newton–Raphson did not converge")
}
