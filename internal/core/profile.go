package core

import (
	"context"
	"fmt"

	"mpmc/internal/machine"
	"mpmc/internal/parallel"
	"mpmc/internal/phase"
	"mpmc/internal/sim"
	"mpmc/internal/stats"
	"mpmc/internal/workload"
)

// ProfileMethod selects how a process is characterized.
type ProfileMethod int

const (
	// ProfileStressmark is the paper's Section 3.4 procedure: co-run the
	// process with the stressmark pinned to i ways for i = 0..A−1 and
	// read the MPA curve off the sweep (Eq. 8). It needs no hardware or
	// OS support, only co-scheduling.
	ProfileStressmark ProfileMethod = iota
	// ProfileIdeal measures the process alone against caches of every
	// associativity 1..A: an exact way-partitioning oracle. It isolates
	// the stressmark's imperfection in the profiling ablation.
	ProfileIdeal
)

// ProfileOptions controls the profiling runs.
type ProfileOptions struct {
	// Warmup and Duration apply to each of the A runs (simulated
	// seconds). Zero selects the defaults (3 s and 6 s).
	Warmup   float64
	Duration float64
	Seed     uint64
	Method   ProfileMethod
	// DominantPhase restricts each run's measurement to the longest
	// detected program phase, the Section 6.1 treatment for benchmarks
	// with multiple significant phases ("the longest phases in art and
	// mcf were used").
	DominantPhase bool
	// Workers bounds how many of the A profiling runs execute
	// concurrently; <= 0 selects GOMAXPROCS. Every run's seed is a pure
	// function of its sweep index, so the resulting feature vector is
	// bit-identical at any worker count.
	Workers int
}

func (o *ProfileOptions) withDefaults() ProfileOptions {
	out := *o
	if out.Warmup == 0 {
		out.Warmup = 3
	}
	if out.Duration == 0 {
		out.Duration = 6
	}
	return out
}

// ProfileSeed derives the profiling seed for the named workload from a
// base seed: SplitSeed(base ^ FNV-1a(name), 0). It is a pure function of
// (base, name), so feature vectors are reproducible regardless of arrival
// order or concurrency — the convention shared by the manager, the CLI
// tools, and the serving layer.
func ProfileSeed(base uint64, name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return parallel.SplitSeed(base^h, 0)
}

// Profile characterizes spec on machine m and returns its feature vector,
// using only quantities a real profiling run could measure: HPC counters
// and the power sensor. The paper's O(k) profiling cost for k processes
// corresponds to one Profile call per process.
//
// The sweep honours ctx between runs: a cancelled context stops the sweep
// before the next co-run starts and returns ctx's error, so a caller's
// deadline bounds the work to at most one in-flight profiling step.
func Profile(ctx context.Context, m *machine.Machine, spec *workload.Spec, opts ProfileOptions) (*FeatureVector, error) {
	o := opts.withDefaults()
	var f *FeatureVector
	var err error
	switch o.Method {
	case ProfileStressmark:
		f, err = profileStressmark(ctx, m, spec, o)
	case ProfileIdeal:
		f, err = profileIdeal(ctx, m, spec, o)
	default:
		return nil, fmt.Errorf("core: unknown profile method %d", o.Method)
	}
	if err != nil {
		return nil, err
	}
	// Thread-group width rides along from the spec: it is placement
	// metadata, not a measured quantity, so both methods share the stamp.
	f.Members = spec.Members
	return f, nil
}

// profileStressmark implements the Section 3.4 sweep.
func profileStressmark(ctx context.Context, m *machine.Machine, spec *workload.Spec, o ProfileOptions) (*FeatureVector, error) {
	target := m.Groups[0][0]
	partners := m.Partners(target)
	if len(partners) == 0 {
		return nil, fmt.Errorf("core: machine %s has no cache-sharing partner core for the stressmark", m.Name)
	}
	partner := partners[0]

	a := m.Assoc
	// Each sweep point is an independent simulated co-run whose seed
	// depends only on the stress index, so the A runs fan out across
	// workers; the curve and regression inputs are then assembled in
	// ascending stress order, exactly as the serial loop did. Cancellation
	// propagates through the pool: no new run starts once ctx is done.
	points, err := parallel.Map(ctx, o.Workers, a, func(stress int) (sweepPoint, error) {
		asg := sim.Assignment{Procs: make([][]*workload.Spec, m.NumCores)}
		asg.Procs[target] = []*workload.Spec{spec}
		if stress > 0 {
			asg.Procs[partner] = []*workload.Spec{workload.Stressmark(stress)}
		}
		res, err := sim.Run(m, asg, sim.Options{
			Warmup:             o.Warmup,
			Duration:           o.Duration,
			Seed:               o.Seed + uint64(stress)*1000003,
			CollectProcSamples: o.DominantPhase,
		})
		if err != nil {
			return sweepPoint{}, fmt.Errorf("core: profiling %s at stress %d: %w", spec.Name, stress, err)
		}
		p := res.Procs[0]
		if p.L2Refs == 0 || p.Instructions == 0 {
			return sweepPoint{}, fmt.Errorf("core: profiling %s at stress %d: no activity measured", spec.Name, stress)
		}
		pt := sweepPoint{mpa: p.MPA(), spi: p.SPI()}
		if o.DominantPhase {
			if dm, ds, ok := dominantPhaseStats(res, 0, spec, m.SamplePeriod); ok {
				pt.mpa, pt.spi = dm, ds
			}
		}
		if stress == 0 {
			// Solo run: record the power-profiling vector of Section 5.
			// The instruction-related rates are counter ratios; they are
			// deterministic process properties (Section 5), so the
			// measured values equal the spec's.
			pt.api = float64(p.L2Refs) / p.Instructions
			pt.pAlone = res.AvgMeasuredPower()
			pt.l1rpi = spec.L1RPI
			pt.brpi = spec.BRPI
			pt.fppi = spec.FPPI
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	curve := make([]float64, a+1)
	curve[0] = 1
	mpas := make([]float64, 0, a)
	spis := make([]float64, 0, a)
	for stress, pt := range points {
		// The stressmark holds `stress` ways, leaving A−stress to the
		// process (the paper's S_{B,i} control).
		curve[a-stress] = pt.mpa
		mpas = append(mpas, pt.mpa)
		spis = append(spis, pt.spi)
	}
	solo := points[0]
	return assembleFeature(spec.Name, curve, mpas, spis, solo.api, solo.pAlone, solo.l1rpi, solo.brpi, solo.fppi)
}

// sweepPoint is one profiling run's measurements; the power-profiling
// fields are filled only by the run that observes the process alone.
type sweepPoint struct {
	mpa, spi          float64
	api, pAlone       float64
	l1rpi, brpi, fppi float64
}

// profileIdeal measures the exact MPA curve with dedicated caches of each
// associativity.
func profileIdeal(ctx context.Context, m *machine.Machine, spec *workload.Spec, o ProfileOptions) (*FeatureVector, error) {
	a := m.Assoc
	points, err := parallel.Map(ctx, o.Workers, a, func(i int) (sweepPoint, error) {
		ways := i + 1
		mm := *m
		mm.Assoc = ways
		asg := sim.Assignment{Procs: make([][]*workload.Spec, m.NumCores)}
		asg.Procs[m.Groups[0][0]] = []*workload.Spec{spec}
		res, err := sim.Run(&mm, asg, sim.Options{
			Warmup:   o.Warmup,
			Duration: o.Duration,
			Seed:     o.Seed + uint64(ways)*999983,
		})
		if err != nil {
			return sweepPoint{}, fmt.Errorf("core: ideal-profiling %s at %d ways: %w", spec.Name, ways, err)
		}
		p := res.Procs[0]
		if p.L2Refs == 0 || p.Instructions == 0 {
			return sweepPoint{}, fmt.Errorf("core: ideal-profiling %s at %d ways: no activity", spec.Name, ways)
		}
		pt := sweepPoint{mpa: p.MPA(), spi: p.SPI()}
		if ways == a {
			pt.api = float64(p.L2Refs) / p.Instructions
			pt.pAlone = res.AvgMeasuredPower()
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	curve := make([]float64, a+1)
	curve[0] = 1
	mpas := make([]float64, 0, a)
	spis := make([]float64, 0, a)
	for i, pt := range points {
		curve[i+1] = pt.mpa
		mpas = append(mpas, pt.mpa)
		spis = append(spis, pt.spi)
	}
	full := points[a-1]
	return assembleFeature(spec.Name, curve, mpas, spis, full.api, full.pAlone, spec.L1RPI, spec.BRPI, spec.FPPI)
}

// dominantPhaseStats recomputes MPA and SPI over the longest detected
// program phase of one process's window series (Section 6.1). The process
// must run alone on its core (true during profiling), so window wall time
// equals run time. Returns ok=false when the series is too short to
// segment.
func dominantPhaseStats(res *sim.Result, proc int, spec *workload.Spec, period float64) (mpa, spi float64, ok bool) {
	var series []float64
	var samples []sim.ProcSample
	for _, s := range res.ProcSamples {
		if s.Proc != proc {
			continue
		}
		samples = append(samples, s)
		if s.L2Refs == 0 {
			series = append(series, 0)
		} else {
			series = append(series, float64(s.L2Misses)/float64(s.L2Refs))
		}
	}
	if len(series) < 32 {
		return 0, 0, false
	}
	dom := phase.Dominant(phase.Detect(series, phase.Options{}))
	var refs, misses uint64
	for _, s := range samples[dom.Start:dom.End] {
		refs += s.L2Refs
		misses += s.L2Misses
	}
	if refs == 0 {
		return 0, 0, false
	}
	instructions := float64(refs) / spec.L2RPI
	return float64(misses) / float64(refs),
		float64(dom.Len()) * period / instructions,
		true
}

// assembleFeature runs the Eq. 3 regression with fallbacks for degenerate
// sweeps (processes whose MPA barely moves across cache sizes give the
// regression no leverage) and builds the validated feature vector.
func assembleFeature(name string, curve []float64, mpas, spis []float64, api, pAlone, l1rpi, brpi, fppi float64) (*FeatureVector, error) {
	alpha, beta := eq3Fit(mpas, spis)
	f, err := NewFeatureVector(name, curve, alpha, beta, api)
	if err != nil {
		return nil, err
	}
	f.PAloneProcessor = pAlone
	f.L1RPI = l1rpi
	f.BRPI = brpi
	f.FPPI = fppi
	return f, nil
}

// eq3Fit estimates SPI = α·MPA + β, guarding against the degenerate cases
// an automated profiler must survive: flat MPA curves and noise-dominated
// slopes. α is clamped non-negative (more misses never speed a process
// up) and β positive (instructions take time).
func eq3Fit(mpas, spis []float64) (alpha, beta float64) {
	meanMPA := stats.Mean(mpas)
	meanSPI := stats.Mean(spis)
	fit, err := stats.FitLinear(mpas, spis)
	if err == nil {
		alpha, beta = fit.Slope, fit.Intercept
	} else {
		alpha, beta = 0, meanSPI
	}
	if alpha < 0 {
		alpha = 0
		beta = meanSPI
	}
	if beta <= 0 {
		// Anchor the line at the mean operating point with a positive
		// intercept: predictions stay exact near the measured range.
		beta = 0.1 * stats.Min(spis)
		if meanMPA > 0 {
			alpha = (meanSPI - beta) / meanMPA
		}
	}
	return alpha, beta
}
